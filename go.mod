module github.com/p2pkeyword/keysearch

go 1.22
