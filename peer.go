package keysearch

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/dht/chord"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/resilience"
	"github.com/p2pkeyword/keysearch/internal/store"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Telemetry re-exports the telemetry registry type so embedders can
// construct one without importing the internal package.
type Telemetry = telemetry.Registry

// NewTelemetry returns a registry with the given search-trace span
// capacity (<= 0 selects the default).
func NewTelemetry(spanCapacity int) *Telemetry { return telemetry.New(spanCapacity) }

// Config tunes a Peer. The zero value is usable; defaults are applied
// by NewPeer.
type Config struct {
	// Dim is the hypercube dimensionality r (default 10, the paper's
	// empirically best value for its corpus). All peers of a
	// deployment must agree on Dim, HashSeed and Instance.
	Dim int
	// HashSeed perturbs the keyword→dimension hash (default 0).
	HashSeed uint64
	// Instance names the index instance, salting the mapping of
	// logical hypercube vertices onto DHT nodes (default "main").
	Instance string
	// CacheCapacity is the per-node query-result cache size in
	// object-ID units (default 0 = disabled).
	CacheCapacity int
	// CachePolicy selects the result-cache replacement policy: "hot"
	// (default) — popularity-tracked segmented LRU with frequency-
	// sketch admission and capacity auto-tuning — or "fifo", the
	// fixed-size insertion-order cache of earlier releases.
	CachePolicy string
	// CacheTargetHit is the hit ratio the hot cache policy auto-tunes
	// its capacity toward (growing up to 4× CacheCapacity while below
	// it). 0 disables auto-tuning; ignored under "fifo".
	CacheTargetHit float64
	// HotReplicas soft-replicates each promoted hot root vertex onto
	// this many extra peers, spreading its query load (0 = disabled,
	// the default). See DESIGN "Hot-vertex layer".
	HotReplicas int
	// HotPromoteThreshold is the fresh-query count that promotes a
	// root when HotReplicas > 0 (default 64).
	HotPromoteThreshold int
	// HotSpread makes this peer's clients round-robin one-shot
	// searches for promoted roots across owner + advertised soft
	// replicas. Off by default.
	HotSpread bool
	// IndexReplicas is the number of independent index instances
	// (Section 3.4's "secondary hypercube" replication). Each replica
	// has its own keyword hash and vertex mapping; writes fan out to
	// all replicas and reads fail over. Default 1 (no replication).
	IndexReplicas int
	// SuccessorListLen is Chord's fault-tolerance parameter
	// (default 4).
	SuccessorListLen int
	// MaintenanceInterval is the period of the background Chord
	// stabilization loop started by Create/Join (default 500ms; set
	// negative to disable the background loop — simulations drive
	// maintenance manually).
	MaintenanceInterval time.Duration
	// Telemetry receives metrics and search-trace spans from every
	// layer of the peer (DHT, index server, replication). Nil disables
	// instrumentation at zero cost.
	Telemetry *telemetry.Registry
	// Resilience, when non-nil, routes every outbound RPC of this peer
	// — Chord maintenance and lookups, index waves, client operations —
	// through a resilience middleware applying the policy: retry with
	// full-jitter backoff, per-destination circuit breakers, and hedged
	// sends for read-only RPCs. Nil disables the layer (raw transport
	// semantics, as before). See DefaultResilience for the recommended
	// production policy.
	Resilience *ResiliencePolicy
	// BatchWaves controls wave batching for ParallelLevels searches
	// this peer roots: each frontier wave is coalesced into one RPC
	// frame per distinct physical peer instead of one per logical
	// vertex (default BatchOn). Logical message accounting and result
	// contents are identical either way; see Stats.PhysFrames.
	BatchWaves BatchMode
	// Shards is the number of lock stripes the peer's index-server
	// table state is split across (0 = GOMAXPROCS rounded up to a
	// power of two; 1 = a single read-write lock). See
	// core.ServerConfig.Shards.
	Shards int
	// ScanParallelism bounds the worker pool a batched sub-query
	// frame's table scans fan out across on this peer (0 = GOMAXPROCS;
	// 1 = sequential). Results are byte-identical at any setting. See
	// core.ServerConfig.ScanParallelism.
	ScanParallelism int
	// DataDir, when non-empty, makes this peer's index durable: every
	// table mutation is appended to a write-ahead log under the
	// directory before it applies, periodically compacted into a
	// snapshot, and replayed on the next start from the same directory.
	// Empty (default) keeps the index purely in memory.
	DataDir string
	// FsyncPolicy selects how the WAL reaches disk when DataDir is
	// set: "always" (fsync per mutation), "interval" (group commit,
	// default), or "off" (flush only at snapshots and shutdown).
	FsyncPolicy string
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// logged mutations (0 = library default, negative disables
	// compaction). Only meaningful with DataDir set.
	SnapshotEvery int
	// Admission, when non-nil, installs server-side admission control on
	// this peer: client-facing requests (searches, pin queries, inserts,
	// deletes) beyond MaxInflight wait in a bounded deadline-aware queue
	// and are shed with a typed overload error carrying a Retry-After
	// hint once the queue fills, their deadline can't be met, or their
	// client exceeds its fair-queuing rate. Interior wave traffic —
	// including migration chunks — is never gated. Nil (default) admits
	// everything.
	Admission *AdmissionPolicy
	// MigrateChunkEntries caps the entries per chunk an inbound index
	// migration pulls from the old owner (0 = library default, 512).
	MigrateChunkEntries int
	// MigrateChunkBytes caps the approximate payload bytes per migration
	// chunk (0 = library default, 256 KiB).
	MigrateChunkBytes int
	// MigrateThrottle pauses between migration chunks, bounding the
	// transfer's bandwidth and lock footprint (0 = back to back).
	MigrateThrottle time.Duration
}

func (c Config) withDefaults() Config {
	if c.Dim == 0 {
		c.Dim = 10
	}
	if c.Instance == "" {
		c.Instance = "main"
	}
	if c.IndexReplicas < 1 {
		c.IndexReplicas = 1
	}
	if c.MaintenanceInterval == 0 {
		c.MaintenanceInterval = 500 * time.Millisecond
	}
	return c
}

// Peer is one participant process: it hosts a Chord DHT node, serves
// its share of the hypercube index, and exposes the client API for
// publishing and searching objects.
type Peer struct {
	cfg      Config
	addr     transport.Addr
	network  transport.Network
	sender   transport.Sender // network, or the resilience middleware over it
	endpoint transport.Node
	chord    *chord.Node
	server   *core.Server
	index    *core.Replicated
	resolver *core.OverlayResolver
}

// NewPeer creates a peer bound at addr on the given transport network.
// The peer is inert until Create (first node of a network) or Join is
// called.
func NewPeer(network transport.Network, addr Addr, cfg Config) (*Peer, error) {
	cfg = cfg.withDefaults()
	hasher, err := keyword.NewHasher(cfg.Dim, cfg.HashSeed)
	if err != nil {
		return nil, err
	}
	// Bind first through an indirection so the peer's identity (and
	// its Chord ring ID) derives from the RESOLVED address — a TCP
	// ":0" bind only learns its port here.
	var mux atomic.Value // of transport.Handler
	endpoint, err := network.Bind(addr, func(ctx context.Context, from transport.Addr, body any) (any, error) {
		h, ok := mux.Load().(transport.Handler)
		if !ok {
			return nil, fmt.Errorf("keysearch: peer %q still initializing", addr)
		}
		return h(ctx, from, body)
	})
	if err != nil {
		return nil, fmt.Errorf("bind peer %q: %w", addr, err)
	}
	resolved := endpoint.Addr()

	// Every outbound RPC of this peer goes through one sender; with a
	// resilience policy configured that sender is the policy middleware
	// (retry/breakers/hedging) over the raw network. Binding stays on
	// the raw network either way.
	var sender transport.Sender = network
	if cfg.Resilience != nil {
		mw := resilience.Wrap(network, *cfg.Resilience)
		mw.SetReadOnly(resilience.AnyOf(core.ReadOnlyMessage, chord.ReadOnlyRPC))
		mw.SetTelemetry(cfg.Telemetry)
		sender = mw
	}

	fsync, err := store.ParseFsyncPolicy(cfg.FsyncPolicy)
	if err != nil {
		endpoint.Close()
		return nil, err
	}
	node := chord.New(resolved, sender, chord.Config{
		SuccessorListLen: cfg.SuccessorListLen,
		Telemetry:        cfg.Telemetry,
	})
	resolver := core.NewOverlayResolver(node)
	server, err := core.NewServer(core.ServerConfig{
		Hasher:          hasher,
		Resolver:        resolver,
		Sender:          sender,
		CacheCapacity:   cfg.CacheCapacity,
		CachePolicy:     cfg.CachePolicy,
		CacheTargetHit:  cfg.CacheTargetHit,
		BatchWaves:      cfg.BatchWaves,
		Shards:          cfg.Shards,
		ScanParallelism: cfg.ScanParallelism,
		DataDir:         cfg.DataDir,
		Fsync:           fsync,
		SnapshotEvery:   cfg.SnapshotEvery,
		Admission:       cfg.Admission,
		Owner:           node.Owns,
		Telemetry:       cfg.Telemetry,
		HotReplicas:     cfg.HotReplicas,

		HotPromoteThreshold: cfg.HotPromoteThreshold,
		Migration: core.MigrationConfig{
			ChunkEntries: cfg.MigrateChunkEntries,
			ChunkBytes:   cfg.MigrateChunkBytes,
			Throttle:     cfg.MigrateThrottle,
		},
	})
	if err != nil {
		endpoint.Close()
		return nil, err
	}
	// Stabilization-driven ownership changes enqueue migrations: when
	// this node discovers a (new) live immediate successor, it pulls
	// whatever entries of its own range that successor still holds.
	// Duplicate triggers for an in-flight range are no-ops.
	node.OnSuccessorChange(func(succ chord.NodeInfo) {
		server.EnqueueMigration(succ.Addr, uint64(node.ID()), uint64(succ.ID))
	})

	// One client per index replica: replica i has its own keyword hash
	// (seeded off the deployment seed) and its own vertex→node salt,
	// so no node is responsible for the same keyword set in two
	// replicas. The single index server hosts every instance's tables.
	clients := make([]*core.Client, cfg.IndexReplicas)
	for i := range clients {
		instance := cfg.Instance
		seed := cfg.HashSeed
		if i > 0 {
			instance = fmt.Sprintf("%s-replica-%d", cfg.Instance, i)
			seed = cfg.HashSeed + uint64(i)*0x9e3779b97f4a7c15
		}
		replicaHasher, err := keyword.NewHasher(cfg.Dim, seed)
		if err != nil {
			endpoint.Close()
			return nil, err
		}
		clients[i], err = core.NewInstanceClient(instance, replicaHasher, resolver, sender)
		if err != nil {
			endpoint.Close()
			return nil, err
		}
		clients[i].SetSpread(cfg.HotSpread)
	}
	index, err := core.NewReplicated(clients...)
	if err != nil {
		endpoint.Close()
		return nil, err
	}
	if cfg.Telemetry != nil {
		index.SetTelemetry(cfg.Telemetry)
	}

	mux.Store(transport.Mux(node.Handler, server.Handler))
	return &Peer{
		cfg:      cfg,
		addr:     resolved,
		network:  network,
		sender:   sender,
		endpoint: endpoint,
		chord:    node,
		server:   server,
		index:    index,
		resolver: resolver,
	}, nil
}

// Addr returns the peer's bound transport address.
func (p *Peer) Addr() Addr { return p.addr }

// SetClientID attaches a client identity to every index request this
// peer initiates (all replicas). Servers running with admission
// control key their per-client fair queuing on it; the empty default
// is anonymous and bypasses fair queuing. Call before issuing traffic.
func (p *Peer) SetClientID(id string) {
	for i := 0; ; i++ {
		c := p.index.Replica(i)
		if c == nil {
			return
		}
		c.SetClientID(id)
	}
}

// Create starts a new network with this peer as the first member.
func (p *Peer) Create() {
	p.chord.Create()
	p.server.ResumeMigrations()
	if p.cfg.MaintenanceInterval > 0 {
		p.chord.StartMaintenance(p.cfg.MaintenanceInterval)
	}
}

// Join connects this peer to the network containing the peer at seed
// and schedules a background migration of the index entries it now
// owns from its ring successor: a chunked, cursor-paged, crash-safe
// pull during which the successor keeps serving the range and this
// peer double-reads it, so the entries never go invisible (DESIGN
// §11). Migrations whose durable cursor was recovered from DataDir
// resume where they left off.
func (p *Peer) Join(ctx context.Context, seed Addr) error {
	if err := p.chord.Join(ctx, seed); err != nil {
		return err
	}
	if succ := p.chord.Successor(); succ.Addr != "" && succ.Addr != p.addr {
		p.server.EnqueueMigration(succ.Addr, uint64(p.chord.ID()), uint64(succ.ID))
	}
	p.server.ResumeMigrations()
	if p.cfg.MaintenanceInterval > 0 {
		p.chord.StartMaintenance(p.cfg.MaintenanceInterval)
	}
	return nil
}

// MigrationStats reports the peer's inbound index-migration counters:
// in-flight transfers, chunks/entries/bytes applied, crash resumes,
// and double-reads served during open windows.
func (p *Peer) MigrationStats() core.MigrationStats { return p.server.MigrationStats() }

// WaitMigrationsIdle blocks until every in-flight inbound migration
// has finished (committed or aborted) or ctx expires. Tests and
// simulations use it to quiesce churn before asserting on state.
func (p *Peer) WaitMigrationsIdle(ctx context.Context) error {
	return p.server.WaitMigrationsIdle(ctx)
}

// StabilizeOnce runs one round of DHT maintenance synchronously;
// simulations and tests use it instead of the background loop.
func (p *Peer) StabilizeOnce(ctx context.Context) error {
	return p.chord.MaintainOnce(ctx)
}

// Close stops background maintenance, unbinds the endpoint and flushes
// the durability layer (when DataDir is set). The peer's stored
// references and index entries become unreachable (crash-stop); the
// remaining network heals via Chord stabilization. A durable peer
// restarted from the same DataDir recovers its index. Use Leave for a
// graceful departure that transfers state instead.
func (p *Peer) Close() error {
	p.chord.Shutdown()
	var err error
	if p.endpoint != nil {
		err = p.endpoint.Close()
	}
	if serr := p.server.Close(); serr != nil && err == nil {
		err = serr
	}
	return err
}

// Leave departs the network gracefully: the peer's DHT references and
// index entries transfer to its ring successor (which owns the peer's
// key range after departure), both neighbors splice it out, and the
// endpoint closes. It returns the number of index entries actually
// transferred — on errors that count may cover only a prefix of the
// table, and the network still heals via stabilization.
func (p *Peer) Leave(ctx context.Context) (transferred int, err error) {
	succ := p.chord.Successor()
	leaveErr := p.chord.Leave(ctx)
	if succ.Addr != "" && succ.Addr != p.addr {
		sent, err := p.server.DrainTo(ctx, p.sender, succ.Addr)
		transferred = sent
		if err != nil && leaveErr == nil {
			leaveErr = err
		}
	}
	if p.endpoint != nil {
		if err := p.endpoint.Close(); err != nil && leaveErr == nil {
			leaveErr = err
		}
	}
	// The drain was logged (OpClear), so a later restart from this
	// DataDir correctly recovers an empty index.
	if err := p.server.Close(); err != nil && leaveErr == nil {
		leaveErr = err
	}
	return transferred, leaveErr
}

// Publish shares a copy of an object held by this peer: it inserts the
// replica reference into the DHT and, if this is the object's first
// copy, creates the keyword-index entry (the paper's Insert
// operation). location is an application-defined locator of the copy
// within this peer (e.g. a path).
func (p *Peer) Publish(ctx context.Context, obj Object, location string) error {
	if err := obj.Validate(); err != nil {
		return err
	}
	first, err := p.chord.Insert(ctx, dht.Reference{
		ObjectID: obj.ID,
		Holder:   p.addr,
		Location: location,
	})
	if err != nil {
		return fmt.Errorf("publish %q: %w", obj.ID, err)
	}
	if !first {
		return nil
	}
	if _, err := p.index.Insert(ctx, obj); err != nil {
		return fmt.Errorf("publish %q index entry: %w", obj.ID, err)
	}
	return nil
}

// Unpublish withdraws this peer's copy of the object: it removes the
// replica reference and, when no copies remain, the keyword-index
// entry (the paper's Delete operation).
func (p *Peer) Unpublish(ctx context.Context, obj Object, location string) error {
	if err := obj.Validate(); err != nil {
		return err
	}
	remaining, err := p.chord.Delete(ctx, dht.Reference{
		ObjectID: obj.ID,
		Holder:   p.addr,
		Location: location,
	})
	if err != nil && !errors.Is(err, dht.ErrNoSuchReference) {
		return fmt.Errorf("unpublish %q: %w", obj.ID, err)
	}
	if remaining > 0 {
		return nil
	}
	if _, _, err := p.index.Delete(ctx, obj); err != nil {
		return fmt.Errorf("unpublish %q index entry: %w", obj.ID, err)
	}
	return nil
}

// PinSearch returns the IDs of objects associated with exactly the
// keyword set k.
func (p *Peer) PinSearch(ctx context.Context, k Set) ([]string, Stats, error) {
	return p.index.PinSearch(ctx, k)
}

// Search returns up to threshold objects whose keyword sets contain k
// (pass All for every match).
func (p *Peer) Search(ctx context.Context, k Set, threshold int, opts SearchOptions) (Result, error) {
	return p.index.SupersetSearch(ctx, k, threshold, opts)
}

// PrefixSearch returns up to threshold objects whose keyword sets
// contain at least one keyword starting with prefix (pass All for
// every match). The query multicasts one SBT branch per hypercube
// dimension; use PrefixSearchMasked with Hasher().PrefixMask to
// constrain the multicast to the dimensions a known vocabulary can
// hash to.
func (p *Peer) PrefixSearch(ctx context.Context, prefix string, threshold int, opts SearchOptions) (Result, error) {
	return p.index.PrefixSearch(ctx, prefix, threshold, opts)
}

// PrefixSearchMasked is PrefixSearch constrained to the SBT branches
// rooted at the dimensions set in mask (zero means all dimensions).
// It always queries the primary replica.
func (p *Peer) PrefixSearchMasked(ctx context.Context, prefix string, mask uint64, threshold int, opts SearchOptions) (Result, error) {
	return p.index.Primary().PrefixSearchMasked(ctx, prefix, mask, threshold, opts)
}

// Hasher returns the primary index instance's keyword hasher — the
// deployment-wide (dimension, seed) pair. Use its PrefixMask with a
// known vocabulary to constrain PrefixSearchMasked.
func (p *Peer) Hasher() keyword.Hasher {
	return p.index.Primary().Hasher()
}

// Refine narrows a previously searched base query to a superset query
// refined ⊇ base without re-traversing: the base root's owner derives
// the refined answer from its cached complete result (Lemma 3.3).
// Falls back to a plain Search transparently when no usable cached
// state exists; Stats.RefineHit reports which path answered. Uses the
// primary replica (refinement state lives on the node that served the
// base search).
func (p *Peer) Refine(ctx context.Context, base, refined Set, threshold int, opts SearchOptions) (Result, error) {
	return p.index.Primary().RefineSearch(ctx, base, refined, threshold, opts)
}

// SearchCursor starts a cumulative search for paging through large
// result sets.
// Cursors are pinned to the primary replica's responsible node, which
// retains the traversal frontier between pages.
func (p *Peer) SearchCursor(k Set, opts SearchOptions) (*Cursor, error) {
	return p.index.Primary().CumulativeSearch(k, opts)
}

// Fetch returns the replica references of an object found via search,
// resolving its ID through the DHT (the paper's Read operation).
func (p *Peer) Fetch(ctx context.Context, objectID string) ([]Reference, error) {
	return p.chord.Read(ctx, objectID)
}

// FamilyConfig configures one attribute family of a decomposed index
// (Section 3.4's decomposition remark): the family gets its own
// smaller hypercube with its own hash.
type FamilyConfig struct {
	// Dim is the family's hypercube dimensionality (default: the
	// peer's Dim).
	Dim int
	// HashSeed perturbs the family's keyword hash (default: derived
	// from the family name).
	HashSeed uint64
}

// DecomposedIndex splits the keyword universe into disjoint attribute
// families, each indexed by its own (typically smaller) hypercube;
// cross-family queries are answered by per-family searches and
// client-side intersection.
type DecomposedIndex = core.Decomposed

// NewDecomposedIndex builds a decomposed index over this peer's
// network. classify must map every normalized keyword to one of the
// family names in families. The family hypercubes share the peer
// fleet's physical nodes; entries are namespaced per family instance.
func (p *Peer) NewDecomposedIndex(classify func(word string) string, families map[string]FamilyConfig) (*DecomposedIndex, error) {
	if len(families) == 0 {
		return nil, fmt.Errorf("keysearch: decomposed index needs at least one family")
	}
	clients := make(map[string]*core.Client, len(families))
	for name, fc := range families {
		dim := fc.Dim
		if dim == 0 {
			dim = p.cfg.Dim
		}
		seed := fc.HashSeed
		if seed == 0 {
			seed = p.cfg.HashSeed ^ uint64(dht.HashString("family:"+name))
		}
		hasher, err := keyword.NewHasher(dim, seed)
		if err != nil {
			return nil, fmt.Errorf("family %q: %w", name, err)
		}
		instance := p.cfg.Instance + "/family/" + name
		client, err := core.NewInstanceClient(instance, hasher, p.resolver, p.sender)
		if err != nil {
			return nil, fmt.Errorf("family %q: %w", name, err)
		}
		clients[name] = client
	}
	return core.NewDecomposed(classify, clients)
}

// resolveRoot resolves the physical address responsible for keyword
// set k in the given index replica (0 = primary); used by tests and
// diagnostics.
func (p *Peer) resolveRoot(ctx context.Context, replica int, k Set) (Addr, error) {
	c := p.index.Replica(replica)
	if c == nil {
		return "", fmt.Errorf("keysearch: no index replica %d", replica)
	}
	return c.ResolveRoot(ctx, k)
}

// IndexStats reports this peer's index storage load.
func (p *Peer) IndexStats() core.TableStats { return p.server.Stats() }

// CacheStats reports this peer's result-cache hit/miss counters.
func (p *Peer) CacheStats() (hits, misses uint64) { return p.server.CacheStats() }

// CacheSnapshot reports the result cache's policy, capacity, occupancy
// and per-instance hit ratios at this moment.
func (p *Peer) CacheSnapshot() core.CacheSnapshot { return p.server.CacheSnapshot() }

// Telemetry returns the registry this peer reports into (nil when
// instrumentation is disabled).
func (p *Peer) Telemetry() *Telemetry { return p.cfg.Telemetry }
