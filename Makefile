GO ?= go

.PHONY: all build test race cover bench figures fmt vet clean ci

all: build test

# Full verification gate: static checks, build, and the race-enabled
# test suite (includes the telemetry concurrency hammer).
ci: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure at full scale into results/.
figures:
	mkdir -p results
	$(GO) run ./cmd/ksbench -fig 5 > results/fig5.txt
	$(GO) run ./cmd/ksbench -fig 6 > results/fig6.txt
	$(GO) run ./cmd/ksbench -fig 7 > results/fig7.txt
	$(GO) run ./cmd/ksbench -fig eq1 > results/eq1.txt
	$(GO) run ./cmd/ksbench -fig costs > results/costs.txt
	$(GO) run ./cmd/ksbench -fig 8 > results/fig8.txt
	$(GO) run ./cmd/ksbench -fig 9 -fig9-max 60000 > results/fig9.txt
	$(GO) run ./cmd/ksbench -fig ft > results/ft.txt

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
