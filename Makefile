GO ?= go

.PHONY: all build test race cover bench bench-smoke crash-smoke load-smoke churn-smoke fuzz-smoke zipf-smoke prefix-smoke figures fmt vet clean ci chaos

all: build test

# Full verification gate: static checks, build, the race-enabled test
# suite (includes the telemetry concurrency hammer), the seeded chaos
# suite, the SIGKILL crash-recovery smoke, the live-churn migration
# smoke, the open-loop load-rig smoke, the wire-decoder fuzz smoke,
# the Zipf hotspot-storm smoke, the prefix-multicast smoke, and a
# single-iteration benchmark smoke pass.
ci: vet build race chaos crash-smoke churn-smoke load-smoke fuzz-smoke zipf-smoke prefix-smoke bench-smoke

# One iteration of every benchmark, as a smoke test: the figure
# pipelines still run end to end, BenchmarkWaveBatching enforces its
# >= 3x physical-frame reduction on the 64-peer fleet at r = 10,
# BenchmarkParallelBatchScan enforces >= 2x scan throughput from
# sharding + parallel batch scans, and BenchmarkDurableIndexingOverhead
# gates the WAL's end-to-end indexing overhead at 10% with
# fsync=interval (both gates engage on machines with 4+ cores). The
# durability benchmarks are also recorded into results/wal.txt.
# BenchmarkWireCodec and BenchmarkWireRPC gate the v2 wire protocol —
# <= 0.5x bytes per RPC unconditionally (byte sizes are deterministic)
# and >= 2x RPCs/sec under concurrency on 4+ cores — and are recorded
# into results/wire.txt. BenchmarkHotQueryCache gates the popularity
# cache at >= 2x better p99 than FIFO on the Zipf mix at equal
# capacity (miss-count comparison asserted unconditionally, timing
# gate on 4+ cores) and is recorded into results/cache.txt.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...
	mkdir -p results
	$(GO) test -run '^$$' -bench BenchmarkWALAppend -benchtime 5000x ./internal/store/ \
		| tee results/wal.txt
	$(GO) test -run '^$$' -bench BenchmarkDurableIndexingOverhead -benchtime=1x ./internal/sim/ \
		| tee -a results/wal.txt
	$(GO) test -run '^$$' -bench BenchmarkWireCodec -benchtime=1x -benchmem ./internal/core/ \
		| tee results/wire.txt
	$(GO) test -run '^$$' -bench BenchmarkWireRPC -benchtime=1x ./internal/transport/tcpnet/ \
		| tee -a results/wire.txt
	$(GO) test -run '^$$' -bench BenchmarkHotQueryCache -benchtime=1x ./internal/sim/ \
		| tee results/cache.txt

# Open-loop load-rig smoke: a short seeded ksload-style run against an
# inmem fleet with admission control on, asserting the accounting
# identities the BENCH files rely on (outcome buckets partition the
# offered load; server-side admission decisions reconcile with the
# rig's view) plus a BENCH file round trip.
load-smoke:
	$(GO) test -count=1 -run 'TestLoadSmoke' ./internal/load/

# SIGKILL crash-recovery smoke: a child process publishes through a
# durable fsync=always peer, is killed without any shutdown path, and
# a restart over the same data directory must answer pin and superset
# searches exactly.
crash-smoke:
	$(GO) test -count=1 -run 'CrashRecovery' .

# Live-churn migration smoke: the SIGKILL crash-resume transfer (a
# durable puller killed between chunks must resume from its WAL cursor
# with no entry lost or duplicated), the frozen double-read window
# equivalence check (answers byte-identical to a static fleet mid-
# transfer), and the seeded churn fingerprint replay. Also records the
# churn chaos study into results/churn.txt.
churn-smoke:
	$(GO) test -count=1 -run 'MigrateCrash|SearchDuringMigration|ChurnFingerprint' .
	mkdir -p results
	$(GO) run ./cmd/ksbench -fig churn -objects 5000 > results/churn.txt

# Prefix-multicast smoke: byte-identical prefix answers across the
# batching × cache-policy matrix, prefix/superset cache isolation, the
# prefix-under-migration double-read check, and the cost study —
# exclusion-mask multicast vs naive per-dimension fan-out (the DII-
# style per-keyword-index model) — recorded into results/prefix.txt.
prefix-smoke:
	$(GO) test -count=1 -run 'TestPrefix' ./internal/core/ ./internal/sim/
	mkdir -p results
	$(GO) run ./cmd/ksbench -fig prefix -objects 5000 > results/prefix.txt

# Zipf hotspot-storm smoke: a short Zipf-popular query-log replay with
# the full hot-vertex layer on (popularity cache, refinement reuse,
# soft replication, client spreading), asserting byte-identical
# answers versus a cache-off fleet and the cache-hit accounting
# identities the BENCH fields rely on.
zipf-smoke:
	$(GO) test -count=1 -run 'TestZipfSmoke' ./internal/sim/

# Wire-decoder fuzz smoke: ten seconds of coverage-guided fuzzing over
# the v2 frame decoder — arbitrary bytes must produce a clean error,
# never a panic, an over-allocation, or a frame that fails to round
# trip. The full corpus lives under the standard go fuzz cache.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime 10s ./internal/transport/tcpnet/

# Seeded chaos suite: deterministic fault-schedule replays, the
# resilience policy tests, the server concurrency hammer (parallel
# inserts/deletes/batch scans on one sharded server), and the churn
# hammer (searches and mutations racing join/leave cycles with live
# migrations), all under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Breaker|Retry|Hedge|Latency|ListenerClose|Hammer' \
		. ./internal/sim/ ./internal/resilience/ ./internal/transport/... ./internal/core/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure at full scale into results/.
figures:
	mkdir -p results
	$(GO) run ./cmd/ksbench -fig 5 > results/fig5.txt
	$(GO) run ./cmd/ksbench -fig 6 > results/fig6.txt
	$(GO) run ./cmd/ksbench -fig 7 > results/fig7.txt
	$(GO) run ./cmd/ksbench -fig eq1 > results/eq1.txt
	$(GO) run ./cmd/ksbench -fig costs > results/costs.txt
	$(GO) run ./cmd/ksbench -fig 8 > results/fig8.txt
	$(GO) run ./cmd/ksbench -fig 9 -fig9-max 60000 > results/fig9.txt
	$(GO) run ./cmd/ksbench -fig ft > results/ft.txt
	$(GO) run ./cmd/ksbench -fig batch > results/batch.txt
	$(GO) run ./cmd/ksbench -fig churn > results/churn.txt
	$(GO) run ./cmd/ksbench -fig prefix > results/prefix.txt

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
