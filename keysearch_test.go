package keysearch

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"testing"
)

func newCluster(t *testing.T, n int, cfg Config) *Cluster {
	t.Helper()
	c, err := NewLocalCluster(n, cfg)
	if err != nil {
		t.Fatalf("NewLocalCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterPublishAndPinSearch(t *testing.T) {
	c := newCluster(t, 5, Config{Dim: 8})
	ctx := context.Background()
	publisher := c.Peers[1]

	obj := Object{ID: "hinet", Keywords: NewKeywordSet("ISP", "telecommunication", "network", "download")}
	if err := publisher.Publish(ctx, obj, "/www/hinet"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	// Searchable from every peer.
	for _, p := range c.Peers {
		ids, _, err := p.PinSearch(ctx, obj.Keywords)
		if err != nil {
			t.Fatalf("PinSearch via %s: %v", p.Addr(), err)
		}
		if len(ids) != 1 || ids[0] != "hinet" {
			t.Fatalf("PinSearch via %s = %v", p.Addr(), ids)
		}
	}
	// Fetch resolves the replica reference.
	refs, err := c.Peers[4].Fetch(ctx, "hinet")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if len(refs) != 1 || refs[0].Holder != publisher.Addr() || refs[0].Location != "/www/hinet" {
		t.Errorf("Fetch = %+v", refs)
	}
}

func TestPublishSecondCopyKeepsSingleIndexEntry(t *testing.T) {
	c := newCluster(t, 4, Config{Dim: 8})
	ctx := context.Background()
	obj := Object{ID: "song", Keywords: NewKeywordSet("mp3", "jazz")}

	if err := c.Peers[0].Publish(ctx, obj, "/a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Peers[1].Publish(ctx, obj, "/b"); err != nil {
		t.Fatal(err)
	}
	refs, err := c.Peers[2].Fetch(ctx, "song")
	if err != nil || len(refs) != 2 {
		t.Fatalf("Fetch = %v, %v; want 2 replicas", refs, err)
	}
	ids, _, err := c.Peers[3].PinSearch(ctx, obj.Keywords)
	if err != nil || len(ids) != 1 {
		t.Fatalf("PinSearch = %v, %v; want single index entry", ids, err)
	}

	// Withdrawing one copy keeps the index entry; the last removal
	// drops it.
	if err := c.Peers[0].Unpublish(ctx, obj, "/a"); err != nil {
		t.Fatal(err)
	}
	ids, _, _ = c.Peers[3].PinSearch(ctx, obj.Keywords)
	if len(ids) != 1 {
		t.Fatalf("after first unpublish, PinSearch = %v", ids)
	}
	if err := c.Peers[1].Unpublish(ctx, obj, "/b"); err != nil {
		t.Fatal(err)
	}
	ids, _, _ = c.Peers[3].PinSearch(ctx, obj.Keywords)
	if len(ids) != 0 {
		t.Fatalf("after last unpublish, PinSearch = %v", ids)
	}
	if _, err := c.Peers[2].Fetch(ctx, "song"); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("Fetch after unpublish: %v", err)
	}
}

func TestSupersetSearchAcrossCluster(t *testing.T) {
	c := newCluster(t, 6, Config{Dim: 9})
	ctx := context.Background()
	vocab := []string{"news", "sports", "tv", "music", "movie"}
	var wantNews []string
	for i := 0; i < 40; i++ {
		words := []string{vocab[i%len(vocab)], vocab[(i+1)%len(vocab)], "extra" + strconv.Itoa(i%3)}
		id := "obj-" + strconv.Itoa(i)
		obj := Object{ID: id, Keywords: NewKeywordSet(words...)}
		if err := c.Peers[i%len(c.Peers)].Publish(ctx, obj, "/"+id); err != nil {
			t.Fatalf("Publish %s: %v", id, err)
		}
		if obj.Keywords.Has("news") {
			wantNews = append(wantNews, id)
		}
	}
	res, err := c.Peers[5].Search(ctx, NewKeywordSet("news"), All, SearchOptions{})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	var got []string
	for _, m := range res.Matches {
		got = append(got, m.ObjectID)
	}
	sort.Strings(got)
	sort.Strings(wantNews)
	if fmt.Sprint(got) != fmt.Sprint(wantNews) {
		t.Errorf("Search news: got %v, want %v", got, wantNews)
	}
	if !res.Exhausted {
		t.Error("exhaustive search not marked exhausted")
	}
}

func TestSearchCursorPagesThroughCluster(t *testing.T) {
	c := newCluster(t, 4, Config{Dim: 8})
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		id := "page-" + strconv.Itoa(i)
		obj := Object{ID: id, Keywords: NewKeywordSet("common", "tag"+strconv.Itoa(i))}
		if err := c.Peers[0].Publish(ctx, obj, "/"+id); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := c.Peers[2].SearchCursor(NewKeywordSet("common"), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for !cur.Exhausted() {
		page, _, err := cur.Next(ctx, 5)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		for _, m := range page {
			if seen[m.ObjectID] {
				t.Fatalf("duplicate %s", m.ObjectID)
			}
			seen[m.ObjectID] = true
		}
	}
	if len(seen) != 12 {
		t.Errorf("paged %d objects, want 12", len(seen))
	}
}

func TestRankingHelpersOnClusterResults(t *testing.T) {
	c := newCluster(t, 3, Config{Dim: 8})
	ctx := context.Background()
	objs := []Object{
		{ID: "exact", Keywords: NewKeywordSet("jazz")},
		{ID: "one-extra", Keywords: NewKeywordSet("jazz", "piano")},
		{ID: "two-extra", Keywords: NewKeywordSet("jazz", "piano", "live")},
	}
	for _, o := range objs {
		if err := c.Peers[0].Publish(ctx, o, "/x"); err != nil {
			t.Fatal(err)
		}
	}
	q := NewKeywordSet("jazz")
	res, err := c.Peers[1].Search(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %d", len(res.Matches))
	}
	cats := Categorize(q, res.Matches)
	if len(cats) != 3 {
		t.Errorf("categories = %d, want 3", len(cats))
	}
	SortSpecificFirst(res.Matches)
	if res.Matches[0].ObjectID != "two-extra" {
		t.Errorf("specific-first head = %s", res.Matches[0].ObjectID)
	}
	SortGeneralFirst(res.Matches)
	if res.Matches[0].ObjectID != "exact" {
		t.Errorf("general-first head = %s", res.Matches[0].ObjectID)
	}
}

func TestClusterSurvivesPeerFailure(t *testing.T) {
	c := newCluster(t, 8, Config{Dim: 8})
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		id := "robust-" + strconv.Itoa(i)
		obj := Object{ID: id, Keywords: NewKeywordSet("shared", "k"+strconv.Itoa(i))}
		if err := c.Peers[i%8].Publish(ctx, obj, "/"+id); err != nil {
			t.Fatal(err)
		}
	}
	// Fail one peer and heal the ring.
	victim := c.Peers[3]
	c.Network().SetDown(victim.Addr(), true)
	c.Heal(ctx)

	// Searches from the surviving peers still succeed and return
	// correct (surviving) matches.
	res, err := c.Peers[0].Search(ctx, NewKeywordSet("shared"), All, SearchOptions{})
	if err != nil {
		t.Fatalf("Search after failure: %v", err)
	}
	for _, m := range res.Matches {
		if !NewKeywordSet("shared").SubsetOf(m.Keywords()) {
			t.Errorf("false positive %s", m.ObjectID)
		}
	}
	if len(res.Matches) == 0 {
		t.Error("no matches survived single-node failure")
	}
}

func TestPeerPublishValidation(t *testing.T) {
	c := newCluster(t, 1, Config{Dim: 6})
	ctx := context.Background()
	if err := c.Peers[0].Publish(ctx, Object{}, "/"); !errors.Is(err, ErrBadObject) {
		t.Errorf("Publish empty: %v", err)
	}
	if err := c.Peers[0].Unpublish(ctx, Object{}, "/"); !errors.Is(err, ErrBadObject) {
		t.Errorf("Unpublish empty: %v", err)
	}
	if _, err := c.Peers[0].Search(ctx, Set{}, All, SearchOptions{}); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("Search empty: %v", err)
	}
}

func TestNewLocalClusterValidation(t *testing.T) {
	if _, err := NewLocalCluster(0, Config{}); err == nil {
		t.Error("0-peer cluster accepted")
	}
}

func TestPeerCacheStats(t *testing.T) {
	c := newCluster(t, 2, Config{Dim: 6, CacheCapacity: 100})
	ctx := context.Background()
	obj := Object{ID: "c1", Keywords: NewKeywordSet("cached", "thing")}
	if err := c.Peers[0].Publish(ctx, obj, "/"); err != nil {
		t.Fatal(err)
	}
	q := NewKeywordSet("cached")
	for i := 0; i < 3; i++ {
		if _, err := c.Peers[1].Search(ctx, q, 5, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	hits := uint64(0)
	for _, p := range c.Peers {
		h, _ := p.CacheStats()
		hits += h
	}
	if hits == 0 {
		t.Error("no cache hits recorded across cluster")
	}
}

func TestIndexStatsAccumulate(t *testing.T) {
	c := newCluster(t, 3, Config{Dim: 8})
	ctx := context.Background()
	const n = 20
	for i := 0; i < n; i++ {
		obj := Object{ID: "s" + strconv.Itoa(i), Keywords: NewKeywordSet("a"+strconv.Itoa(i), "b")}
		if err := c.Peers[0].Publish(ctx, obj, "/"); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, p := range c.Peers {
		total += p.IndexStats().Objects
	}
	if total != n {
		t.Errorf("indexed %d objects across cluster, want %d", total, n)
	}
}
