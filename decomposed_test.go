package keysearch

import (
	"context"
	"strings"
	"testing"
)

func TestDecomposedIndexOverCluster(t *testing.T) {
	c := newCluster(t, 5, Config{Dim: 10})
	ctx := context.Background()

	classify := func(w string) string {
		if strings.HasPrefix(w, "type:") {
			return "type"
		}
		return "text"
	}
	dec, err := c.Peers[0].NewDecomposedIndex(classify, map[string]FamilyConfig{
		"type": {Dim: 4},
		"text": {Dim: 10},
	})
	if err != nil {
		t.Fatalf("NewDecomposedIndex: %v", err)
	}

	objects := []Object{
		{ID: "song", Keywords: NewKeywordSet("type:audio", "jazz", "live")},
		{ID: "clip", Keywords: NewKeywordSet("type:video", "jazz")},
		{ID: "text", Keywords: NewKeywordSet("type:document", "history")},
	}
	for _, o := range objects {
		if _, err := dec.Insert(ctx, o); err != nil {
			t.Fatalf("Insert %s: %v", o.ID, err)
		}
	}

	// Single-family query (text).
	res, err := dec.SupersetSearch(ctx, NewKeywordSet("jazz"), All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ObjectIDs) != 2 {
		t.Errorf("jazz search = %v", res.ObjectIDs)
	}
	if !res.Exhausted || res.Completeness != 1 || res.FailedSubtrees != 0 {
		t.Errorf("healthy search degraded: %+v", res)
	}

	// Cross-family intersection.
	res, err = dec.SupersetSearch(ctx, NewKeywordSet("type:audio", "jazz"), All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ObjectIDs) != 1 || res.ObjectIDs[0] != "song" {
		t.Errorf("cross-family search = %v, want [song]", res.ObjectIDs)
	}

	// The small type family exhausts within its own 2^4 cube.
	res, err = dec.SupersetSearch(ctx, NewKeywordSet("type:video"), All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NodesContacted > 16 {
		t.Errorf("type-family search contacted %d nodes, want ≤ 2^4", res.Stats.NodesContacted)
	}

	// Delete removes from all involved families.
	if _, err := dec.Delete(ctx, objects[0]); err != nil {
		t.Fatal(err)
	}
	res, _ = dec.SupersetSearch(ctx, NewKeywordSet("type:audio", "jazz"), All, SearchOptions{})
	if len(res.ObjectIDs) != 0 {
		t.Errorf("after delete: %v", res.ObjectIDs)
	}
}

func TestDecomposedIndexValidation(t *testing.T) {
	c := newCluster(t, 1, Config{Dim: 6})
	if _, err := c.Peers[0].NewDecomposedIndex(func(string) string { return "x" }, nil); err == nil {
		t.Error("empty family map accepted")
	}
}
