// Package keysearch is a keyword/attribute search layer for DHT-based
// peer-to-peer networks, implementing the hypercube index scheme of
// Joung, Fang and Yang, "Keyword Search in DHT-based Peer-to-Peer
// Networks" (ICDCS 2005).
//
// Each shared object is described by a keyword set and indexed at
// exactly one logical node of an r-dimensional hypercube, determined
// by hashing its keywords to hypercube dimensions. The hypercube is
// mapped onto a Chord DHT built from scratch in this module. On top of
// that structure the layer offers:
//
//   - Pin search: find objects with exactly a given keyword set in a
//     single lookup.
//   - Superset search: find objects whose keyword sets contain the
//     query, by walking the spanning binomial tree of the induced
//     subhypercube — general-first, specific-first, or parallel.
//   - Cumulative search: page through large result sets with the
//     traversal frontier kept at the responsible node.
//   - Built-in load balance under Zipf keyword popularity, per-node
//     result caching, and ranking by "extra keyword" depth.
//
// A Peer bundles everything one process needs: the transport endpoint,
// the Chord node, the index server, and the client API. See
// NewLocalCluster for an in-process test cluster and the examples/
// directory for runnable programs.
package keysearch

import (
	"time"

	"github.com/p2pkeyword/keysearch/internal/admission"
	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/dht/chord"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/resilience"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
	"github.com/p2pkeyword/keysearch/internal/transport/tcpnet"
)

// Re-exported core types: these form the public vocabulary of the
// library.
type (
	// Object is an indexable item: an application object ID plus the
	// keyword set describing it.
	Object = core.Object
	// Match is one search hit.
	Match = core.Match
	// Result is the outcome of a superset search.
	Result = core.Result
	// Stats reports operation costs in nodes contacted and messages.
	Stats = core.Stats
	// SearchOptions tunes a superset search.
	SearchOptions = core.SearchOptions
	// TraversalOrder selects the subhypercube traversal strategy.
	TraversalOrder = core.TraversalOrder
	// Cursor pages through a cumulative search.
	Cursor = core.Cursor
	// Set is an immutable keyword set.
	Set = keyword.Set
	// Reference points to one replica of an object in the DHT.
	Reference = dht.Reference
	// Addr is a transport address (a logical name in-memory, host:port
	// over TCP).
	Addr = transport.Addr
	// Category groups matches by their extra keywords for refinement.
	Category = core.Category
	// ResiliencePolicy configures the retry/backoff, circuit-breaker
	// and hedging behaviour applied to a peer's RPCs when set on
	// Config.Resilience.
	ResiliencePolicy = resilience.Policy
	// BreakerPolicy configures the per-destination circuit breakers
	// within a ResiliencePolicy.
	BreakerPolicy = resilience.BreakerPolicy
	// BatchMode selects wave batching for ParallelLevels searches (see
	// Config.BatchWaves).
	BatchMode = core.BatchMode
	// AdmissionPolicy configures server-side admission control and load
	// shedding when set on Config.Admission: bounded inflight
	// client-facing requests, a bounded deadline-aware wait queue, and
	// per-client fair queuing via token buckets.
	AdmissionPolicy = admission.Policy
	// OverloadError is the typed error a shedding server returns; it
	// carries the shed reason and a Retry-After hint. Use IsOverload /
	// OverloadRetryAfter to detect it across transports.
	OverloadError = admission.Overload
	// CacheSnapshot is a point-in-time view of a peer's result cache
	// (policy, occupancy, per-instance hit ratios); see
	// Peer.CacheSnapshot.
	CacheSnapshot = core.CacheSnapshot
	// InstanceCacheStats is one index instance's slice of a
	// CacheSnapshot.
	InstanceCacheStats = core.InstanceCacheStats
	// DecomposedResult is the intersection answer of a decomposed-index
	// search, with aggregate cost and weakest-family quality signals.
	DecomposedResult = core.DecomposedResult
)

// DefaultResilience returns the recommended production resilience
// policy: three attempts with 10ms–2s full-jitter backoff, breakers
// opening after five consecutive failures for one second, hedging
// disabled (enable it by setting HedgeDelay).
func DefaultResilience() ResiliencePolicy { return resilience.DefaultPolicy() }

// Traversal orders.
const (
	// TopDown returns more general objects first (the default).
	TopDown = core.TopDown
	// BottomUp returns more specific objects first.
	BottomUp = core.BottomUp
	// ParallelLevels queries each tree level concurrently.
	ParallelLevels = core.ParallelLevels
)

// All is a search threshold meaning "every matching object".
const All = core.All

// Result-cache policies (Config.CachePolicy).
const (
	// CachePolicyHot is the popularity-tracked cache with frequency
	// admission (the default).
	CachePolicyHot = core.CachePolicyHot
	// CachePolicyFIFO is the legacy fixed-size FIFO cache.
	CachePolicyFIFO = core.CachePolicyFIFO
)

// Wave-batching modes (Config.BatchWaves).
const (
	// BatchAuto resolves to the default (BatchOn).
	BatchAuto = core.BatchAuto
	// BatchOn coalesces each parallel wave into one RPC frame per
	// distinct physical peer.
	BatchOn = core.BatchOn
	// BatchOff sends one RPC per logical vertex (the paper's literal
	// per-node exchange).
	BatchOff = core.BatchOff
)

// Re-exported sentinel errors.
var (
	ErrEmptyQuery    = core.ErrEmptyQuery
	ErrExhausted     = core.ErrExhausted
	ErrNoSuchSession = core.ErrNoSuchSession
	ErrBadObject     = core.ErrBadObject
	ErrNoSuchObject  = dht.ErrNoSuchObject
	ErrUnreachable   = transport.ErrUnreachable
	// ErrOverload matches (via errors.Is) any error caused by a server
	// shedding load under admission control.
	ErrOverload = admission.ErrOverload
)

// IsOverload reports whether err was caused by a server shedding the
// request under admission control, including errors that crossed a
// transport boundary (where typed errors flatten to strings).
func IsOverload(err error) bool { return admission.IsOverload(err) }

// OverloadRetryAfter extracts the server's Retry-After hint from an
// overload error (ok=false when err is not an overload). Clients
// honoring the hint converge to the server's sustainable rate instead
// of retry-storming it.
func OverloadRetryAfter(err error) (retryAfter time.Duration, ok bool) {
	o, ok := admission.FromError(err)
	if !ok {
		return 0, false
	}
	return o.RetryAfter, true
}

// NewKeywordSet normalizes, deduplicates and sorts raw keywords into a
// Set. Objects and queries must both use it (or equivalent
// normalization) so that the deterministic mapping agrees.
func NewKeywordSet(words ...string) Set { return keyword.NewSet(words...) }

// Ranking helpers re-exported from the index layer.
var (
	// GroupByDepth buckets matches by extra-keyword depth.
	GroupByDepth = core.GroupByDepth
	// Categorize groups matches by their exact extra keyword set.
	Categorize = core.Categorize
	// SampleCategories returns a few matches per refinement category.
	SampleCategories = core.Sample
	// SortGeneralFirst orders matches fewest-extra-keywords first.
	SortGeneralFirst = core.SortGeneralFirst
	// SortSpecificFirst orders matches most-extra-keywords first.
	SortSpecificFirst = core.SortSpecificFirst
)

// RegisterTypes registers every wire message of the library with the
// gob registry. Call it once at startup in each process that uses the
// TCP transport; it is a no-op-safe idempotent call.
func RegisterTypes() {
	chord.RegisterTypes()
	core.RegisterTypes()
}

// NewInMemoryTransport returns a process-local transport suitable for
// simulations, tests and single-process clusters. The seed drives
// probabilistic fault injection only.
func NewInMemoryTransport(seed int64) *inmem.Network { return inmem.New(seed) }

// NewTCPTransport returns a TCP-backed transport for multi-process
// deployments with the default configuration (binary wire protocol).
// Call RegisterTypes before using it.
func NewTCPTransport() *tcpnet.Network { return tcpnet.New() }

// TCPConfig tunes a TCP transport: the wire protocol generation
// (WireBinary or WireGob) and the listener-side handler pool size.
type TCPConfig = tcpnet.Config

// Wire protocol names for TCPConfig.Wire.
const (
	WireBinary = tcpnet.WireBinary
	WireGob    = tcpnet.WireGob
)

// NewTCPTransportConfig returns a TCP-backed transport tuned by cfg.
// Call RegisterTypes before using it.
func NewTCPTransportConfig(cfg TCPConfig) (*tcpnet.Network, error) {
	return tcpnet.NewWithConfig(cfg)
}
