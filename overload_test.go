package keysearch

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/admission"
	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/sim"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

// fairQueuePolicy sheds a client's second request deterministically:
// one burst token, with a refill rate so slow the Retry-After hint
// saturates at the controller's cap.
func fairQueuePolicy() AdmissionPolicy {
	return AdmissionPolicy{MaxInflight: 64, PerClientRate: 0.0001, PerClientBurst: 1}
}

// TestOverloadShedsWithRetryAfterInMem: a shed request must surface a
// detectable overload error with a positive Retry-After hint after
// crossing the in-memory transport, while other clients (and anonymous
// internal traffic) keep working.
func TestOverloadShedsWithRetryAfterInMem(t *testing.T) {
	pol := fairQueuePolicy()
	cluster, err := NewLocalCluster(4, Config{Dim: 6, Admission: &pol})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	// Anonymous publish traffic is never fair-queued.
	obj := Object{ID: "o1", Keywords: NewKeywordSet("alpha", "beta")}
	if err := cluster.Peers[0].Publish(ctx, obj, "/o1"); err != nil {
		t.Fatalf("publish: %v", err)
	}

	greedy := cluster.Peers[2]
	greedy.SetClientID("greedy")
	opts := SearchOptions{NoCache: true}
	if _, err := greedy.Search(ctx, NewKeywordSet("alpha"), All, opts); err != nil {
		t.Fatalf("first search: %v", err)
	}
	_, err = greedy.Search(ctx, NewKeywordSet("alpha"), All, opts)
	if !IsOverload(err) {
		t.Fatalf("second search err = %v, want overload", err)
	}
	retry, ok := OverloadRetryAfter(err)
	if !ok || retry <= 0 {
		t.Fatalf("Retry-After = %v, %v, want positive hint", retry, ok)
	}
	if !strings.Contains(err.Error(), admission.ReasonClientRate) {
		t.Fatalf("err %q does not carry the shed reason", err)
	}

	// A different client is unaffected by greedy's exhaustion.
	other := cluster.Peers[3]
	other.SetClientID("polite")
	if _, err := other.Search(ctx, NewKeywordSet("alpha"), All, opts); err != nil {
		t.Fatalf("other client's search shed: %v", err)
	}
}

// TestOverloadShedsWithRetryAfterTCP repeats the contract over real
// sockets, where typed errors flatten to strings inside the RPC reply.
func TestOverloadShedsWithRetryAfterTCP(t *testing.T) {
	RegisterTypes()
	net := NewTCPTransport()
	defer net.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	pol := fairQueuePolicy()
	cfg := Config{Dim: 4, MaintenanceInterval: -1, Admission: &pol}
	var peers []*Peer
	for i := 0; i < 2; i++ {
		p, err := NewPeer(net, "127.0.0.1:0", cfg)
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		defer p.Close()
		if i == 0 {
			p.Create()
		} else if err := p.Join(ctx, peers[0].Addr()); err != nil {
			t.Fatalf("join: %v", err)
		}
		peers = append(peers, p)
		for round := 0; round < 8; round++ {
			for _, q := range peers {
				_ = q.StabilizeOnce(ctx)
			}
		}
	}

	obj := Object{ID: "t1", Keywords: NewKeywordSet("gamma", "delta")}
	if err := peers[0].Publish(ctx, obj, "/t1"); err != nil {
		t.Fatalf("publish: %v", err)
	}

	peers[1].SetClientID("greedy")
	opts := SearchOptions{NoCache: true}
	if _, err := peers[1].Search(ctx, NewKeywordSet("gamma"), All, opts); err != nil {
		t.Fatalf("first search over TCP: %v", err)
	}
	_, err := peers[1].Search(ctx, NewKeywordSet("gamma"), All, opts)
	if !IsOverload(err) {
		t.Fatalf("second search err = %v, want overload across TCP", err)
	}
	if retry, ok := OverloadRetryAfter(err); !ok || retry <= 0 {
		t.Fatalf("Retry-After across TCP = %v, %v, want positive hint", retry, ok)
	}
}

// TestCancelledSearchAbandonsWaves: a search whose deadline expires
// mid-traversal must abandon its remaining waves (counted by the root),
// return the deadline error to the initiator, and leave the fleet able
// to serve the next search immediately. Admission counters reconcile:
// every gated request was decided exactly once.
func TestCancelledSearchAbandonsWaves(t *testing.T) {
	reg := telemetry.New(0)
	d, err := sim.NewCustomDeployment(sim.DeployConfig{
		R: 8, Peers: 8, Telemetry: reg,
		Admission: &admission.Policy{MaxInflight: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()

	objs := []core.Object{
		{ID: "a", Keywords: NewKeywordSet("alpha", "one")},
		{ID: "b", Keywords: NewKeywordSet("alpha", "two")},
		{ID: "c", Keywords: NewKeywordSet("alpha", "three")},
		{ID: "d", Keywords: NewKeywordSet("alpha", "four")},
		{ID: "e", Keywords: NewKeywordSet("alpha", "five")},
	}
	for _, o := range objs {
		if _, err := d.Client.Insert(ctx, o); err != nil {
			t.Fatalf("insert %s: %v", o.ID, err)
		}
	}

	// 5ms per hop makes the 2^7-vertex sequential traversal of the
	// single-keyword subcube vastly outlast a 30ms deadline.
	for _, addr := range d.Addrs {
		d.Net.SetLatency(addr, 5*time.Millisecond)
	}
	short, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	_, err = d.Client.SupersetSearch(short, NewKeywordSet("alpha"), core.All,
		core.SearchOptions{NoCache: true})
	cancel()
	if err == nil || !strings.Contains(err.Error(), context.DeadlineExceeded.Error()) {
		t.Fatalf("expired search err = %v, want deadline exceeded", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["core_search_abandoned_total"] < 1 {
		t.Fatalf("core_search_abandoned_total = %d, want >= 1 (root must abandon the traversal)",
			snap.Counters["core_search_abandoned_total"])
	}

	// The fleet is immediately healthy once the latency injection ends:
	// no scan worker is stuck finishing the dead search's subcube.
	for _, addr := range d.Addrs {
		d.Net.SetLatency(addr, 0)
	}
	res, err := d.Client.SupersetSearch(ctx, NewKeywordSet("alpha"), core.All,
		core.SearchOptions{NoCache: true})
	if err != nil {
		t.Fatalf("follow-up search: %v", err)
	}
	if len(res.Matches) != len(objs) {
		t.Fatalf("follow-up search found %d matches, want %d", len(res.Matches), len(objs))
	}

	// Reconcile: every gated request (5 inserts + 2 searches) got
	// exactly one admission decision, and nothing leaked.
	snap = reg.Snapshot()
	decided := snap.Counters["admission_admitted_total"] + snap.Counters["admission_shed_total"]
	if want := uint64(len(objs) + 2); decided != want {
		t.Fatalf("admission decisions = %d, want %d", decided, want)
	}
	if snap.Gauges["admission_queue_depth"] != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", snap.Gauges["admission_queue_depth"])
	}
}
