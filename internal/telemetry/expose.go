package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Snapshot is a point-in-time copy of every registered instrument,
// suitable for JSON encoding and diffing across runs. CounterVec
// children are flattened to `name{label="value"}` keys; summed
// GaugeFunc callbacks appear alongside plain gauges. Map keys encode
// in sorted order, so two snapshots of the same deployment diff
// cleanly line by line.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	SpansTotal uint64                       `json:"spans_total,omitempty"`
}

// Snapshot captures the current value of every instrument. A nil
// Registry yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, vec := range r.vecs {
		vec.mu.RLock()
		for value, c := range vec.m {
			snap.Counters[fmt.Sprintf("%s{%s=%q}", name, vec.label, value)] = c.Value()
		}
		vec.mu.RUnlock()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, fns := range r.gaugeFuncs {
		var sum int64
		for _, fn := range fns {
			sum += fn()
		}
		snap.Gauges[name] += sum
	}
	for name, h := range r.histograms {
		snap.Histograms[name] = h.snapshot()
	}
	if r.spans != nil {
		r.spans.mu.Lock()
		snap.SpansTotal = r.spans.total
		r.spans.mu.Unlock()
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes every instrument in the Prometheus text
// exposition format (text/plain; version 0.0.4): counters and vec
// children as `counter`, gauges (including summed GaugeFuncs) as
// `gauge`, histograms as cumulative `_bucket{le=…}` series with
// `_sum` and `_count`. A nil Registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	for _, name := range sortedKeys(r.counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n",
			name, name, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.vecs) {
		vec := r.vecs[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", name); err != nil {
			return err
		}
		vec.mu.RLock()
		values := sortedKeys(vec.m)
		for _, value := range values {
			if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n",
				name, vec.label, value, vec.m[value].Value()); err != nil {
				vec.mu.RUnlock()
				return err
			}
		}
		vec.mu.RUnlock()
	}

	gauges := make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	for name, fns := range r.gaugeFuncs {
		var sum int64
		for _, fn := range fns {
			sum += fn()
		}
		gauges[name] += sum
	}
	lastFamily := ""
	for _, name := range sortedKeys(gauges) {
		// Gauges registered with inline labels (name{label="v"}) share
		// one metric family: the TYPE line carries the bare family name
		// and is emitted once per family, not per labelled series.
		family := name
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, gauges[name]); err != nil {
			return err
		}
	}

	for _, name := range sortedKeys(r.histograms) {
		snap := r.histograms[name].snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, b := range snap.Buckets {
			le := "+Inf"
			if b.UpperBound != infBound {
				le = fmt.Sprintf("%d", b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n",
			name, snap.Sum, name, snap.Count); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusString renders WritePrometheus to a string (test and
// diagnostic helper).
func (r *Registry) PrometheusString() string {
	var sb strings.Builder
	_ = r.WritePrometheus(&sb)
	return sb.String()
}
