// Package telemetry is the zero-dependency observability layer of the
// keysearch stack: a Registry of named atomic counters, gauges and
// fixed-bucket histograms, a bounded ring of search-trace spans, and
// Prometheus-text / JSON exposition (see expose.go and http.go).
//
// The hot path is lock-free: instruments are resolved once at wiring
// time and incremented with sync/atomic operations. Reads are
// snapshot-on-read and never block writers beyond the atomics.
//
// A nil *Registry is the no-op registry: every method on a nil
// Registry returns nil instruments, and every method on a nil
// instrument (Counter.Add, Histogram.Observe, …) returns immediately.
// Instrumented code therefore needs no conditionals on the disabled
// path — wiring `var reg *telemetry.Registry` through unchanged keeps
// all instrumentation free.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultSpanCapacity is the span-ring size used when New is given a
// non-positive capacity.
const DefaultSpanCapacity = 128

// Registry holds named instruments and the span ring. Construct with
// New; a nil Registry is the valid no-op instance.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string][]func() int64
	histograms map[string]*Histogram
	vecs       map[string]*CounterVec
	spans      *spanRing
}

// New returns an empty registry whose span ring retains the last
// spanCapacity search traces (non-positive means DefaultSpanCapacity).
func New(spanCapacity int) *Registry {
	if spanCapacity <= 0 {
		spanCapacity = DefaultSpanCapacity
	}
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string][]func() int64),
		histograms: make(map[string]*Histogram),
		vecs:       make(map[string]*CounterVec),
		spans:      newSpanRing(spanCapacity),
	}
}

// Noop returns the no-op registry (nil). It exists purely to make
// wiring sites read as intent: cfg.Telemetry = telemetry.Noop().
func Noop() *Registry { return nil }

// Counter is a monotonically increasing uint64. The zero value is
// usable; a nil Counter discards updates.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. The zero value is usable; a nil Gauge
// discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 on a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// CounterVec is a family of counters partitioned by one label (e.g.
// message type). Children are created on first use; the hot path is a
// read-locked map lookup plus an atomic add. A nil CounterVec discards
// updates.
type CounterVec struct {
	label string
	mu    sync.RWMutex
	m     map[string]*Counter
}

// With returns the child counter for the given label value, creating
// it on first use. Returns nil on a nil CounterVec.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[value]; c == nil {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

// Add increments the child for the given label value by delta.
func (v *CounterVec) Add(value string, delta uint64) { v.With(value).Add(delta) }

// Inc increments the child for the given label value by one.
func (v *CounterVec) Inc(value string) { v.With(value).Add(1) }

// Counter returns the registered counter with the given name, creating
// it on first use. Repeated calls with the same name share one
// instrument. Returns nil (the no-op counter) on a nil Registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the registered gauge with the given name, creating it
// on first use. Returns nil on a nil Registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback sampled at snapshot time. Multiple
// callbacks under one name are summed, so every server of a shared
// deployment can register the same gauge and the exposition reports
// the deployment-wide total. No-op on a nil Registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = append(r.gaugeFuncs[name], fn)
}

// Histogram returns the registered histogram with the given name,
// creating it with the given bucket upper bounds on first use (the
// first registration's buckets win; bounds are sorted and
// deduplicated, and an implicit +Inf bucket is appended). Returns nil
// on a nil Registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// CounterVec returns the registered counter family with the given name
// and label key, creating it on first use (the first registration's
// label wins). Returns nil on a nil Registry.
func (r *Registry) CounterVec(name, label string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vecs[name]
	if !ok {
		v = &CounterVec{label: label, m: make(map[string]*Counter)}
		r.vecs[name] = v
	}
	return v
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LinearBuckets returns n upper bounds start, start+width, … — e.g.
// LinearBuckets(1, 1, 16) for hop counts.
func LinearBuckets(start, width int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start·factor, … — e.g.
// ExpBuckets(int64(100*time.Microsecond), 4, 8) for RPC latencies.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	out := make([]int64, n)
	f := float64(start)
	for i := range out {
		out[i] = int64(f)
		f *= factor
	}
	return out
}
