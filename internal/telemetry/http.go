package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the Prometheus text exposition of the
// registry. Works on a nil Registry (serves an empty body).
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// TracesHandler serves the retained search-trace spans as JSON:
// {"total": <spans ever recorded>, "spans": [...oldest first...]}.
func (r *Registry) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		spans, total := r.Spans()
		if spans == nil {
			spans = []Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total uint64 `json:"total"`
			Spans []Span `json:"spans"`
		}{Total: total, Spans: spans})
	})
}

// NewHTTPMux returns a mux serving the registry's /metrics
// (Prometheus text) and /traces (JSON spans) plus the standard
// /debug/pprof/* runtime-profiling endpoints, so one listener covers
// metrics scraping and live profiling of a running node.
func NewHTTPMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/traces", r.TracesHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
