package telemetry

import (
	"testing"
)

// TestQuantileKnownDistribution pins the quantile estimator on a fully
// known distribution: observations 1..1000 over bounds 100, 200, …,
// 1000 put exactly 100 samples in each bucket, so linear interpolation
// must reproduce the true quantiles exactly.
func TestQuantileKnownDistribution(t *testing.T) {
	h := newHistogram(LinearBuckets(100, 100, 10))
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	snap := h.snapshot()
	if snap.Count != 1000 {
		t.Fatalf("count = %d, want 1000", snap.Count)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0.50, 500},
		{0.90, 900},
		{0.99, 990},
		{0.999, 999},
		{1.0, 1000},
	} {
		if got := snap.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	// The snapshot's pre-computed fields agree with the method.
	if snap.P50 != 500 || snap.P90 != 900 || snap.P99 != 990 || snap.P999 != 999 {
		t.Errorf("snapshot quantile fields = %d/%d/%d/%d, want 500/900/990/999",
			snap.P50, snap.P90, snap.P99, snap.P999)
	}
}

// TestQuantileInterpolatesWithinBucket checks sub-bucket
// interpolation: 4 samples in (0, 100] put p50 at rank 2 of 4 — half
// way into the bucket.
func TestQuantileInterpolatesWithinBucket(t *testing.T) {
	h := newHistogram([]int64{100, 200})
	for i := 0; i < 4; i++ {
		h.Observe(50)
	}
	snap := h.snapshot()
	if got := snap.Quantile(0.5); got != 50 {
		t.Fatalf("Quantile(0.5) = %d, want 50 (rank 2/4 of bucket (0,100])", got)
	}
}

// TestQuantileOverflowBucket pins the +Inf behaviour: samples beyond
// the largest finite bound report that bound (a lower-bound estimate,
// Prometheus semantics).
func TestQuantileOverflowBucket(t *testing.T) {
	h := newHistogram([]int64{10})
	h.Observe(5)
	h.Observe(1_000_000) // overflow
	snap := h.snapshot()
	if got := snap.Quantile(0.999); got != 10 {
		t.Fatalf("Quantile(0.999) = %d, want 10 (largest finite bound)", got)
	}
}

// TestQuantileEmpty returns zero rather than panicking.
func TestQuantileEmpty(t *testing.T) {
	h := newHistogram([]int64{10})
	if got := h.snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("Quantile on empty histogram = %d, want 0", got)
	}
}
