package telemetry

import (
	"sync"
	"time"
)

// Span step kinds mirror the paper's superset-search protocol
// messages: the root handles the initiator's T_QUERY itself, drives
// the frontier with T_CONT sub-queries, and T_STOP marks the visit at
// which the threshold was met and the traversal halted.
const (
	StepQuery = "T_QUERY"
	StepCont  = "T_CONT"
	StepStop  = "T_STOP"
)

// MaxSpanSteps bounds the per-span wave tree so one exhaustive search
// over a large subhypercube cannot balloon the ring; the span records
// how many steps were dropped.
const MaxSpanSteps = 512

// SpanStep is one node visit of a superset-search traversal.
type SpanStep struct {
	Kind    string `json:"kind"` // T_QUERY (root), T_CONT, or T_STOP
	Vertex  uint64 `json:"vertex"`
	Depth   int    `json:"depth"` // Hamming distance from the query root
	Matches int    `json:"matches"`
	Failed  bool   `json:"failed,omitempty"`
}

// Span is one recorded superset-search trace: the wave tree the root
// drove over the spanning binomial tree, plus the aggregate cost the
// paper's Section 3.5 reports.
type Span struct {
	Op             string     `json:"op"`
	Instance       string     `json:"instance"`
	Query          string     `json:"query"`
	Root           uint64     `json:"root"`
	Order          string     `json:"order"`
	Start          time.Time  `json:"start"`
	DurationNS     int64      `json:"duration_ns"`
	Nodes          int        `json:"nodes"`
	Msgs           int        `json:"msgs"`
	Failed         int        `json:"failed,omitempty"`
	Rounds         int        `json:"rounds"`
	Matches        int        `json:"matches"`
	CacheHit       bool       `json:"cache_hit,omitempty"`
	Exhausted      bool       `json:"exhausted,omitempty"`
	Steps          []SpanStep `json:"steps,omitempty"`
	DroppedSteps   int        `json:"dropped_steps,omitempty"`
	ContinuedFrom  uint64     `json:"continued_from,omitempty"` // session ID resumed, 0 for fresh queries
	SessionPending uint64     `json:"session_pending,omitempty"`
}

// spanRing is a bounded ring buffer of recent spans.
type spanRing struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
}

func newSpanRing(capacity int) *spanRing {
	return &spanRing{buf: make([]Span, 0, capacity)}
}

// RecordSpan appends a span to the ring, evicting the oldest when
// full. Steps beyond MaxSpanSteps must already be truncated by the
// caller (see Span.DroppedSteps). No-op on a nil Registry.
func (r *Registry) RecordSpan(s Span) {
	if r == nil {
		return
	}
	ring := r.spans
	ring.mu.Lock()
	defer ring.mu.Unlock()
	ring.total++
	if len(ring.buf) < cap(ring.buf) {
		ring.buf = append(ring.buf, s)
		return
	}
	ring.buf[ring.next] = s
	ring.next = (ring.next + 1) % cap(ring.buf)
}

// Spans returns the retained spans, oldest first, plus the total
// number ever recorded (so callers can tell how many were evicted).
// Nil Registry returns nothing.
func (r *Registry) Spans() (spans []Span, total uint64) {
	if r == nil {
		return nil, 0
	}
	ring := r.spans
	ring.mu.Lock()
	defer ring.mu.Unlock()
	out := make([]Span, 0, len(ring.buf))
	if len(ring.buf) == cap(ring.buf) {
		out = append(out, ring.buf[ring.next:]...)
		out = append(out, ring.buf[:ring.next]...)
	} else {
		out = append(out, ring.buf...)
	}
	return out, ring.total
}
