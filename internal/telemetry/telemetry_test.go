package telemetry

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New(0)
	c := r.Counter("ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("ops_total") != c {
		t.Error("same name should return the same counter")
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}

	v := r.CounterVec("msgs_total", "type")
	v.Inc("a")
	v.Add("b", 2)
	if v.With("a").Value() != 1 || v.With("b").Value() != 2 {
		t.Errorf("vec values = %d/%d, want 1/2", v.With("a").Value(), v.With("b").Value())
	}
}

func TestNilRegistryAndInstrumentsAreNoops(t *testing.T) {
	var r *Registry // the Noop registry
	if r != Noop() {
		t.Error("Noop() should be nil")
	}
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter should stay 0")
	}
	g := r.Gauge("y")
	g.Set(9)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge should stay 0")
	}
	h := r.Histogram("z", LinearBuckets(1, 1, 3))
	h.Observe(2)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram should stay empty")
	}
	v := r.CounterVec("w", "type")
	v.Inc("t")
	if v.With("t").Value() != 0 {
		t.Error("nil vec should stay 0")
	}
	r.GaugeFunc("f", func() int64 { return 42 })
	r.RecordSpan(Span{Op: "x"})
	if spans, total := r.Spans(); spans != nil || total != 0 {
		t.Error("nil registry should retain no spans")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
	if r.PrometheusString() != "" {
		t.Error("nil registry should expose nothing")
	}
}

// TestConcurrentHammer drives every instrument kind from many
// goroutines and asserts exact totals — the sync/atomic hot path must
// lose no updates (run under -race).
func TestConcurrentHammer(t *testing.T) {
	const (
		goroutines = 32
		perG       = 2000
	)
	r := New(64)
	c := r.Counter("hammer_total")
	g := r.Gauge("hammer_level")
	h := r.Histogram("hammer_hist", LinearBuckets(100, 100, 10))
	v := r.CounterVec("hammer_vec", "type")

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(j % 1200))
				if worker%2 == 0 {
					v.Inc("even")
				} else {
					v.Inc("odd")
				}
				if j%100 == 0 {
					r.RecordSpan(Span{Op: "hammer", Nodes: j})
					_ = r.Snapshot() // readers must not block or corrupt writers
				}
			}
		}(i)
	}
	wg.Wait()

	const total = goroutines * perG
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %d, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	var wantSum int64
	for j := 0; j < perG; j++ {
		wantSum += int64(j % 1200)
	}
	wantSum *= goroutines
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %d, want %d", got, wantSum)
	}
	snap := h.snapshot()
	last := snap.Buckets[len(snap.Buckets)-1]
	if last.UpperBound != infBound || last.Count != total {
		t.Errorf("+Inf bucket = %+v, want cumulative %d", last, total)
	}
	even, odd := v.With("even").Value(), v.With("odd").Value()
	if even+odd != total || even != total/2 {
		t.Errorf("vec split = %d/%d, want %d/%d", even, odd, total/2, total/2)
	}
	if _, spanTotal := r.Spans(); spanTotal != goroutines*(perG/100) {
		t.Errorf("span total = %d, want %d", spanTotal, goroutines*(perG/100))
	}
}

// TestHistogramBucketProperty checks, for random bounds and random
// observations, that each observation lands in exactly the first
// bucket whose upper bound is >= the value, that cumulative bucket
// counts are monotone, and that the +Inf bucket equals the total.
func TestHistogramBucketProperty(t *testing.T) {
	prop := func(rawBounds []int64, values []int64) bool {
		if len(rawBounds) > 24 {
			rawBounds = rawBounds[:24]
		}
		for i, b := range rawBounds { // keep bounds in a sane range
			rawBounds[i] = b % 10_000
		}
		h := newHistogram(rawBounds)
		want := make([]uint64, len(h.bounds)+1)
		var wantSum int64
		for _, v := range values {
			v %= 20_000
			h.Observe(v)
			wantSum += v
			idx := len(h.bounds)
			for i, b := range h.bounds {
				if v <= b {
					idx = i
					break
				}
			}
			want[idx]++
		}
		snap := h.snapshot()
		var cum uint64
		for i := range want {
			cum += want[i]
			if snap.Buckets[i].Count != cum {
				return false
			}
			if i > 0 && snap.Buckets[i].Count < snap.Buckets[i-1].Count {
				return false
			}
		}
		return snap.Count == uint64(len(values)) && snap.Sum == wantSum &&
			snap.Buckets[len(snap.Buckets)-1].Count == uint64(len(values))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBoundsSortedDeduped(t *testing.T) {
	h := newHistogram([]int64{30, 10, 20, 10, 30})
	if len(h.bounds) != 3 || h.bounds[0] != 10 || h.bounds[1] != 20 || h.bounds[2] != 30 {
		t.Errorf("bounds = %v, want [10 20 30]", h.bounds)
	}
	h.Observe(10) // boundary lands in the le=10 bucket
	if h.counts[0].Load() != 1 {
		t.Error("boundary observation should land in its own bucket")
	}
	h.Observe(math.MaxInt64) // overflow bucket
	if h.counts[3].Load() != 1 {
		t.Error("overflow observation should land in +Inf")
	}
}

func TestGaugeFuncSumsAcrossRegistrations(t *testing.T) {
	r := New(0)
	r.GaugeFunc("index_objects", func() int64 { return 3 })
	r.GaugeFunc("index_objects", func() int64 { return 4 })
	r.Gauge("index_objects").Set(10) // plain gauge under the same name adds in
	snap := r.Snapshot()
	if got := snap.Gauges["index_objects"]; got != 17 {
		t.Errorf("summed gauge = %d, want 17", got)
	}
}

func TestSpanRingEvictsOldest(t *testing.T) {
	r := New(3)
	for i := 0; i < 5; i++ {
		r.RecordSpan(Span{Nodes: i})
	}
	spans, total := r.Spans()
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
	if len(spans) != 3 || spans[0].Nodes != 2 || spans[2].Nodes != 4 {
		t.Errorf("ring = %+v, want nodes 2..4 oldest first", spans)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 4)
	if len(lin) != 4 || lin[0] != 1 || lin[3] != 7 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(100, 10, 3)
	if len(exp) != 3 || exp[0] != 100 || exp[1] != 1000 || exp[2] != 10000 {
		t.Errorf("ExpBuckets = %v", exp)
	}
}
