package telemetry

import (
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram of int64 observations
// (typically nanoseconds or hop counts). Bucket i counts observations
// v with v <= bounds[i] and v > bounds[i-1]; the last bucket is the
// implicit +Inf overflow. Observations and reads are lock-free; a
// snapshot taken concurrently with writes may be mid-update by at most
// the in-flight observations. A nil Histogram discards observations.
type Histogram struct {
	bounds []int64 // sorted, deduplicated upper bounds (exclusive of +Inf)
	counts []atomic.Uint64
	sum    atomic.Int64
	count  atomic.Uint64
}

// DefaultLatencyBuckets spans 50µs to ~13s in powers of 4 — wide
// enough for in-memory calls and slow TCP RPCs alike.
var DefaultLatencyBuckets = ExpBuckets(int64(50*time.Microsecond), 4, 10)

func newHistogram(bounds []int64) *Histogram {
	sorted := make([]int64, len(bounds))
	copy(sorted, bounds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	dedup := sorted[:0]
	for i, b := range sorted {
		if i == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{bounds: dedup, counts: make([]atomic.Uint64, len(dedup)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the elapsed time since start in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// bucketIndex returns the index of the first bucket whose upper bound
// is >= v, or len(bounds) for the +Inf overflow bucket.
func (h *Histogram) bucketIndex(v int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket is one histogram bucket in a snapshot: the cumulative count
// of observations <= UpperBound (Prometheus "le" semantics).
type Bucket struct {
	UpperBound int64  `json:"le"` // math.MaxInt64 stands for +Inf
	Count      uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Buckets []Bucket `json:"buckets"` // cumulative, ending with +Inf
	Count   uint64   `json:"total"`
	Sum     int64    `json:"sum"`
}

// snapshot copies the histogram with cumulative bucket counts.
func (h *Histogram) snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Buckets: make([]Bucket, len(h.counts)),
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := int64(infBound)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		snap.Buckets[i] = Bucket{UpperBound: bound, Count: cum}
	}
	return snap
}

// infBound is the sentinel upper bound of the overflow bucket.
const infBound = int64(^uint64(0) >> 1) // math.MaxInt64
