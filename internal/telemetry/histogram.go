package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram of int64 observations
// (typically nanoseconds or hop counts). Bucket i counts observations
// v with v <= bounds[i] and v > bounds[i-1]; the last bucket is the
// implicit +Inf overflow. Observations and reads are lock-free; a
// snapshot taken concurrently with writes may be mid-update by at most
// the in-flight observations. A nil Histogram discards observations.
type Histogram struct {
	bounds []int64 // sorted, deduplicated upper bounds (exclusive of +Inf)
	counts []atomic.Uint64
	sum    atomic.Int64
	count  atomic.Uint64
}

// DefaultLatencyBuckets spans 50µs to ~13s in powers of 4 — wide
// enough for in-memory calls and slow TCP RPCs alike.
var DefaultLatencyBuckets = ExpBuckets(int64(50*time.Microsecond), 4, 10)

func newHistogram(bounds []int64) *Histogram {
	sorted := make([]int64, len(bounds))
	copy(sorted, bounds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	dedup := sorted[:0]
	for i, b := range sorted {
		if i == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{bounds: dedup, counts: make([]atomic.Uint64, len(dedup)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the elapsed time since start in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// bucketIndex returns the index of the first bucket whose upper bound
// is >= v, or len(bounds) for the +Inf overflow bucket.
func (h *Histogram) bucketIndex(v int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket is one histogram bucket in a snapshot: the cumulative count
// of observations <= UpperBound (Prometheus "le" semantics).
type Bucket struct {
	UpperBound int64  `json:"le"` // math.MaxInt64 stands for +Inf
	Count      uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. P50/P90/
// P99/P999 are bucket-interpolated quantile estimates (see Quantile) so
// offline consumers (ksload, BENCH files) and /metrics report the same
// tail numbers from the same data; Count is the exact sample count.
type HistogramSnapshot struct {
	Buckets []Bucket `json:"buckets"` // cumulative, ending with +Inf
	Count   uint64   `json:"total"`
	Sum     int64    `json:"sum"`
	P50     int64    `json:"p50"`
	P90     int64    `json:"p90"`
	P99     int64    `json:"p99"`
	P999    int64    `json:"p999"`
}

// snapshot copies the histogram with cumulative bucket counts.
func (h *Histogram) snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Buckets: make([]Bucket, len(h.counts)),
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := int64(infBound)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		snap.Buckets[i] = Bucket{UpperBound: bound, Count: cum}
	}
	snap.P50 = snap.Quantile(0.50)
	snap.P90 = snap.Quantile(0.90)
	snap.P99 = snap.Quantile(0.99)
	snap.P999 = snap.Quantile(0.999)
	return snap
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the snapshot's
// cumulative buckets, interpolating linearly within the bucket holding
// the target rank (the Prometheus histogram_quantile estimator on
// int64 bounds). Observations landing in the +Inf overflow bucket are
// reported as the largest finite bound — the estimate is then a lower
// bound, exactly as in Prometheus. Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var prevBound int64
	var prevCum uint64
	for _, b := range s.Buckets {
		if b.Count >= rank {
			if b.UpperBound == infBound {
				return prevBound
			}
			in := b.Count - prevCum
			if in == 0 {
				return b.UpperBound
			}
			frac := float64(rank-prevCum) / float64(in)
			return prevBound + int64(frac*float64(b.UpperBound-prevBound))
		}
		prevBound, prevCum = b.UpperBound, b.Count
	}
	return prevBound
}

// infBound is the sentinel upper bound of the overflow bucket.
const infBound = int64(^uint64(0) >> 1) // math.MaxInt64
