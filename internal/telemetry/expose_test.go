package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func exampleRegistry() *Registry {
	r := New(8)
	r.Counter("core_searches_total").Add(7)
	r.CounterVec("msgs_total", "type").Add("core.msgTQuery", 3)
	r.Gauge("sessions").Set(2)
	r.GaugeFunc("index_objects", func() int64 { return 5 })
	h := r.Histogram("rpc_ns", []int64{1000, 2000})
	h.Observe(500)
	h.Observe(1500)
	h.Observe(9999)
	r.RecordSpan(Span{Op: "superset-search", Query: "a b", Nodes: 4, Msgs: 8})
	return r
}

func TestWritePrometheusFormat(t *testing.T) {
	out := exampleRegistry().PrometheusString()
	for _, want := range []string{
		"# TYPE core_searches_total counter",
		"core_searches_total 7",
		`msgs_total{type="core.msgTQuery"} 3`,
		"# TYPE sessions gauge",
		"sessions 2",
		"index_objects 5",
		"# TYPE rpc_ns histogram",
		`rpc_ns_bucket{le="1000"} 1`,
		`rpc_ns_bucket{le="2000"} 2`,
		`rpc_ns_bucket{le="+Inf"} 3`,
		"rpc_ns_sum 11999",
		"rpc_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := exampleRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Counters["core_searches_total"] != 7 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Counters[`msgs_total{type="core.msgTQuery"}`] != 3 {
		t.Errorf("vec flattening = %v", snap.Counters)
	}
	if snap.Gauges["sessions"] != 2 || snap.Gauges["index_objects"] != 5 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	hist := snap.Histograms["rpc_ns"]
	if hist.Count != 3 || hist.Sum != 11999 || len(hist.Buckets) != 3 {
		t.Errorf("histogram = %+v", hist)
	}
	if snap.SpansTotal != 1 {
		t.Errorf("spans_total = %d, want 1", snap.SpansTotal)
	}
}

func TestHTTPMuxServesMetricsTracesAndPprof(t *testing.T) {
	srv := httptest.NewServer(NewHTTPMux(exampleRegistry()))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "core_searches_total 7") {
		t.Errorf("/metrics -> %d:\n%s", code, body)
	}
	code, body := get("/traces")
	if code != 200 || !strings.Contains(body, `"op": "superset-search"`) {
		t.Errorf("/traces -> %d:\n%s", code, body)
	}
	var traces struct {
		Total uint64 `json:"total"`
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &traces); err != nil || traces.Total != 1 || len(traces.Spans) != 1 {
		t.Errorf("traces JSON = %s (err %v)", body, err)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ -> %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline -> %d", code)
	}
}
