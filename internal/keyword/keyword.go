// Package keyword implements keyword sets and the hash mappings of the
// hypercube index scheme: the uniform dimension hash h : W → {0..r-1}
// and the node mapping F_h : 2^W → V of Section 3.3.
package keyword

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
)

// ErrEmptySet is returned when an operation requires a non-empty
// keyword set.
var ErrEmptySet = errors.New("keyword: empty keyword set")

// Normalize canonicalizes a raw keyword: trimmed, lower-cased, and with
// ASCII control characters removed. Objects and queries must agree on
// keyword spelling for the deterministic mapping to work, so both go
// through Normalize.
func Normalize(raw string) string {
	w := strings.ToLower(strings.TrimSpace(raw))
	if strings.IndexFunc(w, isControl) < 0 {
		return w
	}
	var b strings.Builder
	b.Grow(len(w))
	for _, r := range w {
		if !isControl(r) {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func isControl(r rune) bool { return r < 0x20 || r == 0x7f }

// Set is an immutable, deduplicated, sorted keyword set K ⊆ W.
// The zero value is the empty set.
type Set struct {
	words []string
}

// NewSet builds a Set from raw keywords, normalizing and deduplicating.
// Empty keywords (after normalization) are dropped.
func NewSet(raw ...string) Set {
	words := make([]string, 0, len(raw))
	seen := make(map[string]bool, len(raw))
	for _, r := range raw {
		w := Normalize(r)
		if w == "" || seen[w] {
			continue
		}
		seen[w] = true
		words = append(words, w)
	}
	sort.Strings(words)
	return Set{words: words}
}

// Words returns the keywords in sorted order. The result is a copy.
func (s Set) Words() []string {
	out := make([]string, len(s.words))
	copy(out, s.words)
	return out
}

// Len returns |K|.
func (s Set) Len() int { return len(s.words) }

// IsEmpty reports whether the set has no keywords.
func (s Set) IsEmpty() bool { return len(s.words) == 0 }

// Has reports whether the set contains word (already-normalized form).
func (s Set) Has(word string) bool {
	i := sort.SearchStrings(s.words, word)
	return i < len(s.words) && s.words[i] == word
}

// HasPrefix reports whether any keyword of the set starts with prefix
// (already-normalized form). The sorted word list makes this a binary
// search: the first word ≥ prefix is the only candidate.
func (s Set) HasPrefix(prefix string) bool {
	i := sort.SearchStrings(s.words, prefix)
	return i < len(s.words) && strings.HasPrefix(s.words[i], prefix)
}

// SubsetOf reports whether s ⊆ other (the paper's "other can be
// described by s" relation when other is an object's keyword set).
func (s Set) SubsetOf(other Set) bool {
	if s.Len() > other.Len() {
		return false
	}
	i, j := 0, 0
	for i < len(s.words) && j < len(other.words) {
		switch {
		case s.words[i] == other.words[j]:
			i++
			j++
		case s.words[i] > other.words[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s.words)
}

// Equal reports whether the two sets hold exactly the same keywords.
func (s Set) Equal(other Set) bool {
	if len(s.words) != len(other.words) {
		return false
	}
	for i := range s.words {
		if s.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Union returns s ∪ other.
func (s Set) Union(other Set) Set {
	return NewSet(append(s.Words(), other.words...)...)
}

// Diff returns the keywords of s not present in other.
func (s Set) Diff(other Set) Set {
	out := make([]string, 0, len(s.words))
	for _, w := range s.words {
		if !other.Has(w) {
			out = append(out, w)
		}
	}
	return Set{words: out}
}

// Key returns a canonical string encoding of the set, usable as a map
// key and as the wire representation of keyword_set in index entries.
// Keywords are joined with '\x1f' (unit separator), which Normalize
// strips from keywords, so the encoding is unambiguous; ParseKey is the
// inverse.
func (s Set) Key() string {
	return strings.Join(s.words, "\x1f")
}

// ParseKey reconstructs a Set from Key's encoding.
func ParseKey(key string) Set {
	if key == "" {
		return Set{}
	}
	return NewSet(strings.Split(key, "\x1f")...)
}

// String renders the set as {a, b, c} for logs and errors.
func (s Set) String() string {
	return "{" + strings.Join(s.words, ", ") + "}"
}

// Hasher maps keywords to hypercube dimensions and keyword sets to
// hypercube vertices. It implements h and F_h of Section 3.3 for a
// fixed dimensionality r and seed. The same (r, seed) pair must be
// shared by every node of a deployment.
type Hasher struct {
	r    int
	seed uint64
}

// NewHasher returns a Hasher for an r-dimensional hypercube. The seed
// perturbs h so that decomposed indexes (or unlucky vocabularies) can
// use independent hash functions.
func NewHasher(r int, seed uint64) (Hasher, error) {
	if r < 1 || r > hypercube.MaxDim {
		return Hasher{}, fmt.Errorf("keyword: dimension %d outside [1, %d]", r, hypercube.MaxDim)
	}
	return Hasher{r: r, seed: seed}, nil
}

// MustNewHasher is NewHasher for statically-known parameters.
func MustNewHasher(r int, seed uint64) Hasher {
	h, err := NewHasher(r, seed)
	if err != nil {
		panic(err)
	}
	return h
}

// Dim returns the hypercube dimensionality r.
func (h Hasher) Dim() int { return h.r }

// Seed returns the hash seed.
func (h Hasher) Seed() uint64 { return h.seed }

// Hash implements h(w): a uniform map from a keyword to a dimension in
// {0, …, r-1}. It uses 64-bit FNV-1a over the seed and the normalized
// keyword.
func (h Hasher) Hash(word string) int {
	f := fnv.New64a()
	var seedBuf [8]byte
	binary.LittleEndian.PutUint64(seedBuf[:], h.seed)
	f.Write(seedBuf[:])   //nolint:errcheck // fnv never fails
	f.Write([]byte(word)) //nolint:errcheck
	return int(f.Sum64() % uint64(h.r))
}

// Vertex implements F_h(K): the hypercube vertex whose one-bits are the
// hashed dimensions of K's keywords. The empty set maps to vertex 0.
func (h Hasher) Vertex(k Set) hypercube.Vertex {
	var v hypercube.Vertex
	for _, w := range k.words {
		v |= hypercube.Vertex(1) << uint(h.Hash(w))
	}
	return v
}

// Dimensions returns the distinct dimensions {h(w) : w ∈ K} in
// ascending order; |Dimensions| = |One(F_h(K))|.
func (h Hasher) Dimensions(k Set) []int {
	return h.Vertex(k).One(h.r)
}

// PrefixMask returns the dimension bitmask a prefix query must cover
// given a vocabulary: the OR of 1<<h(w) over every vocabulary word
// that starts with the prefix. With no matching words (or an empty
// vocabulary) it returns 0, which query layers treat as "all
// dimensions" — h is not invertible, so without vocabulary knowledge
// every dimension may host a matching keyword.
func (h Hasher) PrefixMask(vocab []string, prefix string) uint64 {
	var mask uint64
	p := Normalize(prefix)
	if p == "" {
		return 0
	}
	for _, raw := range vocab {
		w := Normalize(raw)
		if strings.HasPrefix(w, p) {
			mask |= 1 << uint(h.Hash(w))
		}
	}
	return mask
}
