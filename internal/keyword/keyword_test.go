package keyword

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"  MP3 ", "mp3"},
		{"News", "news"},
		{"", ""},
		{"a\x1fb", "ab"},
		{"TVBS\n", "tvbs"},
	}
	for _, tt := range tests {
		if got := Normalize(tt.in); got != tt.want {
			t.Errorf("Normalize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNewSetDedupAndSort(t *testing.T) {
	s := NewSet("news", "ISP", "isp", "  Network ", "", "download")
	want := []string{"download", "isp", "network", "news"}
	if got := s.Words(); !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
}

func TestSetHas(t *testing.T) {
	s := NewSet("isp", "news")
	if !s.Has("isp") || !s.Has("news") || s.Has("mp3") {
		t.Error("Has membership wrong")
	}
	var empty Set
	if empty.Has("isp") {
		t.Error("empty set Has = true")
	}
}

func TestSubsetOf(t *testing.T) {
	tests := []struct {
		a, b []string
		want bool
	}{
		{nil, nil, true},
		{nil, []string{"a"}, true},
		{[]string{"a"}, nil, false},
		{[]string{"a"}, []string{"a", "b"}, true},
		{[]string{"a", "c"}, []string{"a", "b", "c"}, true},
		{[]string{"a", "d"}, []string{"a", "b", "c"}, false},
		{[]string{"a", "b"}, []string{"a", "b"}, true},
	}
	for _, tt := range tests {
		a, b := NewSet(tt.a...), NewSet(tt.b...)
		if got := a.SubsetOf(b); got != tt.want {
			t.Errorf("%v ⊆ %v = %v, want %v", a, b, got, tt.want)
		}
	}
}

func TestEqualUnionDiff(t *testing.T) {
	a := NewSet("isp", "news")
	b := NewSet("news", "isp")
	if !a.Equal(b) {
		t.Error("Equal failed on same sets")
	}
	c := NewSet("news", "mp3")
	if a.Equal(c) {
		t.Error("Equal true on different sets")
	}
	u := a.Union(c)
	if got := u.Words(); !reflect.DeepEqual(got, []string{"isp", "mp3", "news"}) {
		t.Errorf("Union = %v", got)
	}
	d := a.Diff(c)
	if got := d.Words(); !reflect.DeepEqual(got, []string{"isp"}) {
		t.Errorf("Diff = %v", got)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	sets := []Set{
		{},
		NewSet("isp"),
		NewSet("isp", "telecommunication", "network", "download"),
	}
	for _, s := range sets {
		got := ParseKey(s.Key())
		if !got.Equal(s) {
			t.Errorf("ParseKey(Key(%v)) = %v", s, got)
		}
	}
}

func TestNewHasherValidation(t *testing.T) {
	if _, err := NewHasher(0, 0); err == nil {
		t.Error("NewHasher(0) succeeded")
	}
	if _, err := NewHasher(65, 0); err == nil {
		t.Error("NewHasher(65) succeeded")
	}
	h, err := NewHasher(10, 7)
	if err != nil {
		t.Fatalf("NewHasher: %v", err)
	}
	if h.Dim() != 10 || h.Seed() != 7 {
		t.Errorf("Dim/Seed = %d/%d", h.Dim(), h.Seed())
	}
}

func TestHashDeterministicAndInRange(t *testing.T) {
	h := MustNewHasher(10, 42)
	for i := 0; i < 1000; i++ {
		w := "word" + strconv.Itoa(i)
		d := h.Hash(w)
		if d < 0 || d >= 10 {
			t.Fatalf("Hash(%q) = %d out of range", w, d)
		}
		if d != h.Hash(w) {
			t.Fatalf("Hash(%q) not deterministic", w)
		}
	}
}

func TestHashSeedChangesMapping(t *testing.T) {
	h1 := MustNewHasher(16, 1)
	h2 := MustNewHasher(16, 2)
	diff := 0
	for i := 0; i < 200; i++ {
		w := "word" + strconv.Itoa(i)
		if h1.Hash(w) != h2.Hash(w) {
			diff++
		}
	}
	if diff < 100 {
		t.Errorf("only %d/200 keywords moved under a different seed", diff)
	}
}

func TestHashUniformity(t *testing.T) {
	const r, n = 16, 16000
	h := MustNewHasher(r, 3)
	counts := make([]int, r)
	for i := 0; i < n; i++ {
		counts[h.Hash("kw-"+strconv.Itoa(i))]++
	}
	// Each bucket expects n/r = 1000; allow ±25 %.
	for d, c := range counts {
		if c < 750 || c > 1250 {
			t.Errorf("dimension %d received %d keywords, want ≈1000", d, c)
		}
	}
}

func TestVertexSetsHashedBits(t *testing.T) {
	h := MustNewHasher(12, 9)
	k := NewSet("isp", "news", "download")
	v := h.Vertex(k)
	wantBits := map[int]bool{}
	for _, w := range k.Words() {
		wantBits[h.Hash(w)] = true
	}
	if got := v.OnesCount(); got != len(wantBits) {
		t.Errorf("OnesCount = %d, want %d", got, len(wantBits))
	}
	for _, d := range h.Dimensions(k) {
		if !wantBits[d] {
			t.Errorf("unexpected dimension %d set", d)
		}
	}
	if h.Vertex(Set{}) != 0 {
		t.Error("empty set must map to vertex 0")
	}
}

func TestPropertySupersetMapsIntoSubcube(t *testing.T) {
	// Lemma 3.1's basis: K1 ⊆ K2 implies F_h(K2) contains F_h(K1).
	h := MustNewHasher(14, 5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		words := make([]string, n)
		for i := range words {
			words[i] = "w" + strconv.Itoa(rng.Intn(200))
		}
		k2 := NewSet(words...)
		// Random subset of k2.
		sub := make([]string, 0, k2.Len())
		for _, w := range k2.Words() {
			if rng.Intn(2) == 0 {
				sub = append(sub, w)
			}
		}
		k1 := NewSet(sub...)
		return h.Vertex(k2).Contains(h.Vertex(k1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyVertexIsUnionOfBits(t *testing.T) {
	// F_h(K1 ∪ K2) = F_h(K1) | F_h(K2).
	h := MustNewHasher(10, 11)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Set {
			n := rng.Intn(8)
			ws := make([]string, n)
			for i := range ws {
				ws[i] = "t" + strconv.Itoa(rng.Intn(100))
			}
			return NewSet(ws...)
		}
		k1, k2 := mk(), mk()
		return h.Vertex(k1.Union(k2)) == h.Vertex(k1)|h.Vertex(k2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVertexWithinCube(t *testing.T) {
	h := MustNewHasher(8, 0)
	c := hypercube.MustNew(8)
	for i := 0; i < 100; i++ {
		k := NewSet("a"+strconv.Itoa(i), "b"+strconv.Itoa(i*3))
		if !c.Valid(h.Vertex(k)) {
			t.Fatalf("vertex for %v outside cube", k)
		}
	}
}
