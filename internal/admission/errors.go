package admission

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Shed reasons carried in Overload.Reason (and the reason label of
// admission_shed_reason_total).
const (
	// ReasonQueueFull: the inflight limit and the wait queue were both
	// full at arrival.
	ReasonQueueFull = "queue-full"
	// ReasonQueueTimeout: the request waited QueueTimeout without a
	// slot freeing up.
	ReasonQueueTimeout = "queue-timeout"
	// ReasonDeadline: the request's own deadline was (or would have
	// been) exceeded before a slot freed up.
	ReasonDeadline = "deadline"
	// ReasonClientRate: the client exceeded its fair per-client rate.
	ReasonClientRate = "client-rate"
	// ReasonCancelled: the caller's context was cancelled while queued
	// (reported as ctx.Err(), not as an Overload).
	ReasonCancelled = "cancelled"
)

// ErrOverload is the sentinel matched by errors.Is for in-process
// Overload values. Across a transport hop use FromError/IsOverload
// instead: both transports flatten handler errors to strings, so
// errors.Is cannot see through them.
var ErrOverload = errors.New(overloadMarker)

// overloadMarker is the canonical prefix of every Overload error
// string. FromError recovers the structured error by parsing it, so
// Retry-After survives the transports' error stringification.
const overloadMarker = "admission: overload"

// retryAfterSep separates the reason from the Retry-After duration in
// the canonical encoding.
const retryAfterSep = ", retry after "

// Overload reports that a request was shed by admission control. The
// client should back off at least RetryAfter before retrying.
type Overload struct {
	// Reason is one of the Reason* constants.
	Reason string
	// RetryAfter is the server's estimate of when capacity will be
	// available again.
	RetryAfter time.Duration
}

// Error renders the canonical, parseable encoding:
//
//	admission: overload (queue-full, retry after 50ms)
//
// The format is a wire contract: FromError parses it back out of
// stringified transport errors. Change it only with the parser.
func (e *Overload) Error() string {
	return fmt.Sprintf("%s (%s%s%s)", overloadMarker, e.Reason, retryAfterSep, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverload) match in-process values.
func (e *Overload) Is(target error) bool { return target == ErrOverload }

// FromError recovers the structured Overload from err: by unwrapping
// when the value survived in-process, or by parsing the canonical
// encoding out of the error string when the value crossed a transport
// (both inmem and tcpnet flatten handler errors to strings).
func FromError(err error) (*Overload, bool) {
	if err == nil {
		return nil, false
	}
	var o *Overload
	if errors.As(err, &o) {
		return o, true
	}
	s := err.Error()
	i := strings.Index(s, overloadMarker+" (")
	if i < 0 {
		return nil, false
	}
	rest := s[i+len(overloadMarker)+2:]
	end := strings.Index(rest, ")")
	if end < 0 {
		return nil, false
	}
	rest = rest[:end]
	sep := strings.Index(rest, retryAfterSep)
	if sep < 0 {
		return nil, false
	}
	d, perr := time.ParseDuration(rest[sep+len(retryAfterSep):])
	if perr != nil {
		return nil, false
	}
	return &Overload{Reason: rest[:sep], RetryAfter: d}, true
}

// IsOverload reports whether err is (or wraps, or stringifies) an
// admission Overload.
func IsOverload(err error) bool {
	_, ok := FromError(err)
	return ok
}
