package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

func TestAcquireReleaseFastPath(t *testing.T) {
	c := New(Policy{MaxInflight: 2}, nil)
	ctx := context.Background()
	rel1, err := c.Acquire(ctx, "a")
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	rel2, err := c.Acquire(ctx, "b")
	if err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if got := c.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	rel1()
	rel2()
	if got := c.Inflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

func TestShedWhenQueueFull(t *testing.T) {
	// One slot, no queue: the second concurrent request must shed
	// immediately with a queue-full Overload.
	c := New(Policy{MaxInflight: 1, MaxQueue: -1}, nil)
	ctx := context.Background()
	rel, err := c.Acquire(ctx, "")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer rel()
	_, err = c.Acquire(ctx, "")
	var o *Overload
	if !errors.As(err, &o) {
		t.Fatalf("second acquire err = %v, want *Overload", err)
	}
	if o.Reason != ReasonQueueFull {
		t.Fatalf("reason = %q, want %q", o.Reason, ReasonQueueFull)
	}
	if o.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", o.RetryAfter)
	}
	if !errors.Is(err, ErrOverload) {
		t.Fatal("errors.Is(err, ErrOverload) = false, want true")
	}
}

func TestQueuedRequestAdmittedWhenSlotFrees(t *testing.T) {
	c := New(Policy{MaxInflight: 1, MaxQueue: 1, QueueTimeout: time.Second}, nil)
	ctx := context.Background()
	rel, err := c.Acquire(ctx, "")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		rel2, err := c.Acquire(ctx, "")
		if err == nil {
			rel2()
		}
		done <- err
	}()
	// Let the second request park in the queue, then free the slot.
	deadline := time.Now().Add(time.Second)
	for c.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rel()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if got := c.Queued(); got != 0 {
		t.Fatalf("queued after drain = %d, want 0", got)
	}
}

func TestQueueTimeoutSheds(t *testing.T) {
	c := New(Policy{MaxInflight: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond}, nil)
	ctx := context.Background()
	rel, err := c.Acquire(ctx, "")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer rel()
	_, err = c.Acquire(ctx, "")
	var o *Overload
	if !errors.As(err, &o) || o.Reason != ReasonQueueTimeout {
		t.Fatalf("err = %v, want queue-timeout Overload", err)
	}
}

func TestDeadlineAwareShedding(t *testing.T) {
	c := New(Policy{MaxInflight: 1, MaxQueue: 4, QueueTimeout: time.Second}, nil)
	rel, err := c.Acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer rel()

	// An already-expired deadline sheds without waiting at all.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	start := time.Now()
	_, err = c.Acquire(expired, "")
	var o *Overload
	if !errors.As(err, &o) || o.Reason != ReasonDeadline {
		t.Fatalf("err = %v, want deadline Overload", err)
	}
	if waited := time.Since(start); waited > 200*time.Millisecond {
		t.Fatalf("expired-deadline acquire waited %v, want immediate shed", waited)
	}

	// A near deadline bounds the wait below QueueTimeout.
	near, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	start = time.Now()
	_, err = c.Acquire(near, "")
	if !errors.As(err, &o) || o.Reason != ReasonDeadline {
		t.Fatalf("err = %v, want deadline Overload", err)
	}
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Fatalf("near-deadline acquire waited %v, want ≈20ms", waited)
	}
}

func TestCancelledWhileQueuedReturnsCtxErr(t *testing.T) {
	c := New(Policy{MaxInflight: 1, MaxQueue: 4, QueueTimeout: time.Second}, nil)
	rel, err := c.Acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, "")
		done <- err
	}()
	deadline := time.Now().Add(time.Second)
	for c.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPerClientFairness(t *testing.T) {
	// A virtual clock makes the token math deterministic.
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := New(Policy{
		MaxInflight:    100,
		PerClientRate:  10, // 10 req/s
		PerClientBurst: 2,
		Now:            clock,
	}, nil)
	ctx := context.Background()

	// The hot client burns its burst, then sheds.
	for i := 0; i < 2; i++ {
		rel, err := c.Acquire(ctx, "hot")
		if err != nil {
			t.Fatalf("hot acquire %d: %v", i, err)
		}
		rel()
	}
	_, err := c.Acquire(ctx, "hot")
	var o *Overload
	if !errors.As(err, &o) || o.Reason != ReasonClientRate {
		t.Fatalf("hot over-burst err = %v, want client-rate Overload", err)
	}
	if o.RetryAfter <= 0 || o.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 1s] at 10 req/s", o.RetryAfter)
	}

	// A cold client is unaffected by the hot client's exhaustion.
	rel, err := c.Acquire(ctx, "cold")
	if err != nil {
		t.Fatalf("cold client shed alongside hot one: %v", err)
	}
	rel()

	// Anonymous requests bypass fair queuing entirely.
	rel, err = c.Acquire(ctx, "")
	if err != nil {
		t.Fatalf("anonymous request rate-limited: %v", err)
	}
	rel()

	// After 100ms one token (10/s) refills for the hot client.
	now = now.Add(100 * time.Millisecond)
	rel, err = c.Acquire(ctx, "hot")
	if err != nil {
		t.Fatalf("hot acquire after refill: %v", err)
	}
	rel()
}

func TestClientBucketLRUEviction(t *testing.T) {
	c := New(Policy{MaxInflight: 100, PerClientRate: 1000, PerClientBurst: 1, MaxClients: 2}, nil)
	ctx := context.Background()
	for _, id := range []string{"a", "b", "c"} {
		rel, err := c.Acquire(ctx, id)
		if err != nil {
			t.Fatalf("acquire %s: %v", id, err)
		}
		rel()
	}
	c.mu.Lock()
	n := len(c.buckets)
	_, aTracked := c.buckets["a"]
	c.mu.Unlock()
	if n != 2 || aTracked {
		t.Fatalf("tracked buckets = %d (a tracked: %v), want 2 with oldest evicted", n, aTracked)
	}
}

func TestOverloadErrorRoundTrip(t *testing.T) {
	orig := &Overload{Reason: ReasonQueueFull, RetryAfter: 25 * time.Millisecond}

	// In-process: errors.As through wrapping.
	wrapped := fmt.Errorf("superset search: %w", orig)
	got, ok := FromError(wrapped)
	if !ok || got.RetryAfter != orig.RetryAfter || got.Reason != orig.Reason {
		t.Fatalf("FromError(wrapped) = %+v, %v", got, ok)
	}

	// Across a transport: both transports flatten handler errors to
	// strings; simulate both shapes and require full recovery.
	for _, flat := range []error{
		fmt.Errorf("%w: %v", transport.ErrRemote, orig),                                // inmem
		fmt.Errorf("%w: %s", transport.ErrRemote, orig.Error()),                        // tcpnet
		fmt.Errorf("superset search [a b]: %w: %s", transport.ErrRemote, orig.Error()), // client wrap
	} {
		got, ok := FromError(flat)
		if !ok {
			t.Fatalf("FromError(%q) failed to recover", flat)
		}
		if got.Reason != orig.Reason || got.RetryAfter != orig.RetryAfter {
			t.Fatalf("FromError(%q) = %+v, want %+v", flat, got, orig)
		}
		if !IsOverload(flat) {
			t.Fatalf("IsOverload(%q) = false", flat)
		}
	}

	if IsOverload(errors.New("some other error")) {
		t.Fatal("IsOverload matched an unrelated error")
	}
	if IsOverload(nil) {
		t.Fatal("IsOverload(nil) = true")
	}
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	rel, err := c.Acquire(context.Background(), "x")
	if err != nil {
		t.Fatalf("nil controller: %v", err)
	}
	rel()
	if c.Inflight() != 0 || c.Queued() != 0 {
		t.Fatal("nil controller reported non-zero load")
	}
}

func TestCountersReconcile(t *testing.T) {
	reg := telemetry.New(0)
	c := New(Policy{MaxInflight: 2, MaxQueue: 2, QueueTimeout: 5 * time.Millisecond}, reg)
	ctx := context.Background()

	const offered = 200
	var wg sync.WaitGroup
	for i := 0; i < offered; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := c.Acquire(ctx, "")
			if err == nil {
				time.Sleep(200 * time.Microsecond)
				rel()
			}
		}()
	}
	wg.Wait()

	snap := reg.Snapshot()
	admitted := snap.Counters["admission_admitted_total"]
	shed := snap.Counters["admission_shed_total"]
	if admitted+shed != offered {
		t.Fatalf("admitted(%d) + shed(%d) = %d, want offered %d", admitted, shed, admitted+shed, offered)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if c.Inflight() != 0 || c.Queued() != 0 {
		t.Fatalf("leaked load: inflight=%d queued=%d", c.Inflight(), c.Queued())
	}
	if snap.Gauges["admission_queue_depth"] != 0 {
		t.Fatalf("queue depth gauge = %d, want 0 after drain", snap.Gauges["admission_queue_depth"])
	}
}
