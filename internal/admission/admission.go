// Package admission implements server-side admission control for the
// index request path: a bounded inflight limit with a bounded,
// deadline-aware wait queue, and per-client token-bucket fair queuing.
// Requests the controller cannot serve in time are shed immediately
// with an Overload error carrying a Retry-After hint, so that under
// sustained overload the server keeps doing useful work at capacity
// instead of queueing itself into latency collapse.
//
// The controller gates only client-facing root operations (searches,
// pin queries, inserts, deletes). Interior wave traffic — sub-queries a
// root fans out mid-search — is never gated: shedding a sub-query
// wastes root-side work already admitted and paid for, while shedding
// at the root costs almost nothing.
package admission

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

// Policy configures a Controller. The zero value selects defaults
// suitable for a single peer process (see withDefaults).
type Policy struct {
	// MaxInflight bounds the gated requests being served concurrently
	// (default 64). The limit is per controller, i.e. per peer.
	MaxInflight int
	// MaxQueue bounds requests waiting for an inflight slot beyond
	// MaxInflight. 0 selects the default (2×MaxInflight); negative
	// disables queuing entirely, shedding as soon as inflight is full.
	MaxQueue int
	// QueueTimeout is the longest a request may wait for a slot before
	// it is shed (default 100ms). A request whose context deadline is
	// nearer than this waits only until the deadline: admitting work
	// the client has already given up on is pure waste.
	QueueTimeout time.Duration
	// PerClientRate is the sustained request rate (requests/second)
	// allowed per client ID; 0 disables fair queuing. Requests with an
	// empty client ID are exempt — fairness protects identified
	// clients from each other, and internal traffic carries no ID.
	PerClientRate float64
	// PerClientBurst is each client's token-bucket capacity (default
	// max(1, PerClientRate/4)).
	PerClientBurst float64
	// MaxClients bounds the tracked token buckets; the least recently
	// active client is evicted beyond it (default 4096).
	MaxClients int
	// RetryAfterHint is the Retry-After returned before any service
	// time has been observed (default 50ms). Once the controller has
	// an EWMA of service time, hints are derived from queue depth.
	RetryAfterHint time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

func (p Policy) withDefaults() Policy {
	if p.MaxInflight <= 0 {
		p.MaxInflight = 64
	}
	if p.MaxQueue == 0 {
		p.MaxQueue = 2 * p.MaxInflight
	}
	if p.MaxQueue < 0 {
		p.MaxQueue = 0
	}
	if p.QueueTimeout <= 0 {
		p.QueueTimeout = 100 * time.Millisecond
	}
	if p.PerClientBurst <= 0 {
		p.PerClientBurst = p.PerClientRate / 4
		if p.PerClientBurst < 1 {
			p.PerClientBurst = 1
		}
	}
	if p.MaxClients <= 0 {
		p.MaxClients = 4096
	}
	if p.RetryAfterHint <= 0 {
		p.RetryAfterHint = 50 * time.Millisecond
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	return p
}

// maxRetryAfter caps derived Retry-After hints: beyond a few seconds
// the exact value carries no information and only delays recovery
// probes.
const maxRetryAfter = 5 * time.Second

// Controller is one peer's admission gate. A nil Controller admits
// everything at zero cost (the telemetry nil-object convention).
type Controller struct {
	pol    Policy
	sem    chan struct{}
	queued atomic.Int64
	// serviceEWMA tracks mean service time (ns) of admitted requests;
	// it feeds the Retry-After estimate. Racy read-modify-write is
	// fine: the value is a smoothed hint, not an invariant.
	serviceEWMA atomic.Int64

	mu      sync.Mutex
	buckets map[string]*list.Element
	lru     *list.List // front = most recently active client

	metAdmitted   *telemetry.Counter    // admission_admitted_total
	metShed       *telemetry.Counter    // admission_shed_total
	metShedReason *telemetry.CounterVec // admission_shed_reason_total{reason}
	metQueueDepth *telemetry.Gauge      // admission_queue_depth
	metWait       *telemetry.Histogram  // admission_wait_ns
}

// bucket is one client's token bucket.
type bucket struct {
	client string
	tokens float64
	last   time.Time
}

// New builds a controller for pol, reporting its decisions into reg
// (nil disables instrumentation).
func New(pol Policy, reg *telemetry.Registry) *Controller {
	c := &Controller{
		pol:     pol.withDefaults(),
		buckets: make(map[string]*list.Element),
		lru:     list.New(),
	}
	c.sem = make(chan struct{}, c.pol.MaxInflight)
	if reg != nil {
		c.metAdmitted = reg.Counter("admission_admitted_total")
		c.metShed = reg.Counter("admission_shed_total")
		c.metShedReason = reg.CounterVec("admission_shed_reason_total", "reason")
		c.metQueueDepth = reg.Gauge("admission_queue_depth")
		c.metWait = reg.Histogram("admission_wait_ns", telemetry.ExpBuckets(int64(time.Microsecond), 4, 12))
		reg.GaugeFunc("admission_inflight", func() int64 { return int64(len(c.sem)) })
	}
	return c
}

// Policy returns the effective (defaulted) policy.
func (c *Controller) Policy() Policy { return c.pol }

// Inflight returns the number of admitted requests currently holding a
// slot (0 on nil).
func (c *Controller) Inflight() int {
	if c == nil {
		return 0
	}
	return len(c.sem)
}

// Queued returns the number of requests waiting for a slot (0 on nil).
func (c *Controller) Queued() int {
	if c == nil {
		return 0
	}
	return int(c.queued.Load())
}

// Acquire admits one request or sheds it. On admission it returns a
// release function the caller must invoke exactly once when the
// request finishes. On shed it returns an *Overload error (or the
// context's own error if the caller vanished while queued). A nil
// controller admits everything.
func (c *Controller) Acquire(ctx context.Context, clientID string) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	if over := c.takeToken(clientID); over != nil {
		c.shed(over.Reason)
		return nil, over
	}
	// Fast path: a free slot, no queuing.
	select {
	case c.sem <- struct{}{}:
		c.metAdmitted.Inc()
		c.metWait.Observe(0)
		return c.releaseFunc(), nil
	default:
	}
	// Slot contention: join the bounded queue or shed now.
	if q := c.queued.Add(1); q > int64(c.pol.MaxQueue) {
		c.queued.Add(-1)
		c.shed(ReasonQueueFull)
		return nil, &Overload{Reason: ReasonQueueFull, RetryAfter: c.retryAfter()}
	}
	c.metQueueDepth.Add(1)
	defer func() {
		c.queued.Add(-1)
		c.metQueueDepth.Add(-1)
	}()

	// Deadline-aware wait: never hold a request past the point its
	// caller stops caring about the answer.
	wait := c.pol.QueueTimeout
	reason := ReasonQueueTimeout
	if d, ok := ctx.Deadline(); ok {
		if until := time.Until(d); until < wait {
			wait = until
			reason = ReasonDeadline
		}
	}
	if wait <= 0 {
		c.shed(ReasonDeadline)
		return nil, &Overload{Reason: ReasonDeadline, RetryAfter: c.retryAfter()}
	}
	start := c.pol.Now()
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case c.sem <- struct{}{}:
		c.metAdmitted.Inc()
		c.metWait.Observe(c.pol.Now().Sub(start).Nanoseconds())
		return c.releaseFunc(), nil
	case <-timer.C:
		c.shed(reason)
		return nil, &Overload{Reason: reason, RetryAfter: c.retryAfter()}
	case <-ctx.Done():
		c.shed(ReasonCancelled)
		return nil, ctx.Err()
	}
}

// releaseFunc frees the caller's inflight slot and feeds the service
// time EWMA that Retry-After hints derive from.
func (c *Controller) releaseFunc() func() {
	admitted := c.pol.Now()
	return func() {
		<-c.sem
		sample := c.pol.Now().Sub(admitted).Nanoseconds()
		old := c.serviceEWMA.Load()
		c.serviceEWMA.Store(old + (sample-old)/8)
	}
}

// shed counts one shed decision.
func (c *Controller) shed(reason string) {
	c.metShed.Inc()
	c.metShedReason.Inc(reason)
}

// retryAfter estimates when a shed client should try again: the time
// for the current queue to drain through the inflight slots at the
// observed service rate, floored at one observed service time and
// capped at maxRetryAfter. Before any observation it falls back to
// the policy hint.
func (c *Controller) retryAfter() time.Duration {
	svc := time.Duration(c.serviceEWMA.Load())
	if svc <= 0 {
		return c.pol.RetryAfterHint
	}
	est := svc + time.Duration(float64(svc)*float64(c.queued.Load())/float64(c.pol.MaxInflight))
	if est > maxRetryAfter {
		est = maxRetryAfter
	}
	return est
}

// takeToken consumes one token from the client's bucket, returning an
// Overload (with the time until the next token as Retry-After) when
// the client is over its fair rate. Anonymous requests pass freely.
func (c *Controller) takeToken(clientID string) *Overload {
	if c.pol.PerClientRate <= 0 || clientID == "" {
		return nil
	}
	now := c.pol.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.buckets[clientID]
	var b *bucket
	if !ok {
		b = &bucket{client: clientID, tokens: c.pol.PerClientBurst, last: now}
		el = c.lru.PushFront(b)
		c.buckets[clientID] = el
		if c.lru.Len() > c.pol.MaxClients {
			oldest := c.lru.Remove(c.lru.Back()).(*bucket)
			delete(c.buckets, oldest.client)
		}
	} else {
		c.lru.MoveToFront(el)
		b = el.Value.(*bucket)
		b.tokens += now.Sub(b.last).Seconds() * c.pol.PerClientRate
		if b.tokens > c.pol.PerClientBurst {
			b.tokens = c.pol.PerClientBurst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return nil
	}
	wait := time.Duration((1 - b.tokens) / c.pol.PerClientRate * float64(time.Second))
	if wait > maxRetryAfter {
		wait = maxRetryAfter
	}
	return &Overload{Reason: ReasonClientRate, RetryAfter: wait}
}
