package analytic

import (
	"math"
	"math/rand"
	"testing"
)

func TestOneBitsPMFValidation(t *testing.T) {
	if _, err := OneBitsPMF(0, 1, 1); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := OneBitsPMF(4, -1, 1); err == nil {
		t.Error("m<0 accepted")
	}
	if _, err := OneBitsPMF(4, 1, -1); err == nil {
		t.Error("j<0 accepted")
	}
}

func TestOneBitsPMFEdgeCases(t *testing.T) {
	// m = 0: all mass at j = 0.
	if p, _ := OneBitsPMF(8, 0, 0); p != 1 {
		t.Errorf("P(j=0 | m=0) = %g", p)
	}
	// m = 1: all mass at j = 1.
	if p, _ := OneBitsPMF(8, 1, 1); math.Abs(p-1) > 1e-12 {
		t.Errorf("P(j=1 | m=1) = %g", p)
	}
	// j beyond min(r, m) is impossible.
	if p, _ := OneBitsPMF(8, 3, 4); p != 0 {
		t.Errorf("P(j=4 | m=3) = %g", p)
	}
	if p, _ := OneBitsPMF(3, 10, 4); p != 0 {
		t.Errorf("P(j=4 | r=3) = %g", p)
	}
}

func TestOneBitsDistributionSumsToOne(t *testing.T) {
	for _, tc := range []struct{ r, m int }{
		{8, 1}, {8, 5}, {10, 7}, {12, 20}, {16, 3}, {64, 10},
	} {
		pmf, err := OneBitsDistribution(tc.r, tc.m)
		if err != nil {
			t.Fatalf("r=%d m=%d: %v", tc.r, tc.m, err)
		}
		sum := 0.0
		for _, p := range pmf {
			if p < 0 || p > 1 {
				t.Fatalf("r=%d m=%d: probability %g out of range", tc.r, tc.m, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("r=%d m=%d: PMF sums to %g", tc.r, tc.m, sum)
		}
	}
}

func TestExpectedOneBitsMatchesPMF(t *testing.T) {
	for _, tc := range []struct{ r, m int }{{8, 3}, {10, 7}, {12, 12}, {16, 5}} {
		pmf, _ := OneBitsDistribution(tc.r, tc.m)
		fromPMF := 0.0
		for j, p := range pmf {
			fromPMF += float64(j) * p
		}
		closed, err := ExpectedOneBits(tc.r, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fromPMF-closed) > 1e-8 {
			t.Errorf("r=%d m=%d: E from PMF %g, closed form %g", tc.r, tc.m, fromPMF, closed)
		}
	}
}

func TestOneBitsPMFMatchesMonteCarlo(t *testing.T) {
	// Equation (1) against simulation: throw m balls into r buckets,
	// count non-empty buckets.
	const trials = 200000
	rng := rand.New(rand.NewSource(9))
	for _, tc := range []struct{ r, m int }{{10, 7}, {8, 3}} {
		counts := make([]int, tc.r+1)
		var occupied [64]bool
		for trial := 0; trial < trials; trial++ {
			for i := 0; i < tc.r; i++ {
				occupied[i] = false
			}
			j := 0
			for b := 0; b < tc.m; b++ {
				k := rng.Intn(tc.r)
				if !occupied[k] {
					occupied[k] = true
					j++
				}
			}
			counts[j]++
		}
		for j := 1; j <= min(tc.r, tc.m); j++ {
			analytic, _ := OneBitsPMF(tc.r, tc.m, j)
			empirical := float64(counts[j]) / trials
			if math.Abs(analytic-empirical) > 0.005 {
				t.Errorf("r=%d m=%d j=%d: analytic %g vs empirical %g",
					tc.r, tc.m, j, analytic, empirical)
			}
		}
	}
}

func TestNodeOnesPMF(t *testing.T) {
	// Binomial(4, 1/2): 1/16, 4/16, 6/16, 4/16, 1/16.
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for x, w := range want {
		got, err := NodeOnesPMF(4, x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("NodeOnesPMF(4, %d) = %g, want %g", x, got, w)
		}
	}
	if p, _ := NodeOnesPMF(4, 5); p != 0 {
		t.Error("x > r should be 0")
	}
	if _, err := NodeOnesPMF(0, 0); err == nil {
		t.Error("r=0 accepted")
	}
}

func TestObjectOnesPMFMixesSizes(t *testing.T) {
	// All objects have exactly 1 keyword → object distribution is a
	// point mass at x=1.
	sizePMF := []float64{0, 1} // P(m=1) = 1
	p1, err := ObjectOnesPMF(10, sizePMF, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-1) > 1e-12 {
		t.Errorf("P(x=1) = %g, want 1", p1)
	}
	p2, _ := ObjectOnesPMF(10, sizePMF, 2)
	if p2 != 0 {
		t.Errorf("P(x=2) = %g, want 0", p2)
	}
}

func TestChooseDimensionPrefersMatchedR(t *testing.T) {
	// With mean keyword-set size ≈ 7.3 (the paper's corpus), the best
	// dimension lands around 10 — the paper's empirical optimum.
	sizePMF := make([]float64, 31)
	// Rough discretized unimodal distribution with mean ≈ 7.3.
	weights := []float64{0, 0.5, 2, 5, 9, 12, 13, 12, 10, 8, 6, 5, 4, 3, 2.5, 2, 1.5, 1.2, 1, 0.8, 0.6, 0.5, 0.4, 0.3, 0.25, 0.2, 0.15, 0.12, 0.1, 0.08, 0.06}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		sizePMF[i] = w / total
	}
	r, err := ChooseDimension(sizePMF, 6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r < 8 || r > 12 {
		t.Errorf("ChooseDimension = %d, want ≈ 10", r)
	}
}

func TestChooseDimensionValidation(t *testing.T) {
	if _, err := ChooseDimension([]float64{1}, 0, 4); err == nil {
		t.Error("minR=0 accepted")
	}
	if _, err := ChooseDimension([]float64{1}, 8, 4); err == nil {
		t.Error("maxR<minR accepted")
	}
}

func TestBinom(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {5, 6, 0}, {5, -1, 0},
	}
	for _, tt := range tests {
		if got := binom(tt.n, tt.k); got != tt.want {
			t.Errorf("binom(%d,%d) = %g, want %g", tt.n, tt.k, got, tt.want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
