// Package analytic implements the closed-form results of Section 3.5:
// the distribution of |One(F_h(K))| (Equation 1) — the number of
// distinct hypercube dimensions hit by m keywords hashed uniformly
// into r buckets — its expectation, and the dimension-selection
// heuristic derived from the Figure 7 discussion (choose r so the
// object distribution over |One(u)| tracks the binomial node
// distribution).
package analytic

import (
	"fmt"
	"math"
)

// OneBitsPMF returns P(|One(F_h(K))| = j) for |K| = m keywords hashed
// uniformly and independently into r dimensions (Equation 1):
//
//	P(j) = C(r, j) · Σ_{i=0..j} (-1)^i C(j, i) (1 - (i + r - j)/r)^m
//
// equivalently the classic occupancy probability that exactly j of r
// buckets are non-empty after m balls. It returns 0 outside the
// feasible range 1 ≤ j ≤ min(r, m) (or j = 0 when m = 0).
func OneBitsPMF(r, m, j int) (float64, error) {
	if r < 1 {
		return 0, fmt.Errorf("analytic: r must be ≥ 1, got %d", r)
	}
	if m < 0 || j < 0 {
		return 0, fmt.Errorf("analytic: m and j must be non-negative (m=%d, j=%d)", m, j)
	}
	if m == 0 {
		if j == 0 {
			return 1, nil
		}
		return 0, nil
	}
	if j == 0 || j > r || j > m {
		return 0, nil
	}
	// Compute in log space for numerical stability with alternating
	// signs accumulated in ordinary space: terms are modest for the
	// r ≤ 64 regime this package targets, so direct evaluation with
	// binomials as floats is accurate enough; guard against negative
	// rounding at the end.
	sum := 0.0
	for i := 0; i <= j; i++ {
		term := binom(j, i) * math.Pow(float64(j-i)/float64(r), float64(m))
		if i%2 == 0 {
			sum += term
		} else {
			sum -= term
		}
	}
	p := binom(r, j) * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}

// OneBitsDistribution returns the full PMF over j = 0..min(r, m).
func OneBitsDistribution(r, m int) ([]float64, error) {
	maxJ := r
	if m < r {
		maxJ = m
	}
	out := make([]float64, maxJ+1)
	for j := 0; j <= maxJ; j++ {
		p, err := OneBitsPMF(r, m, j)
		if err != nil {
			return nil, err
		}
		out[j] = p
	}
	return out, nil
}

// ExpectedOneBits returns E[|One(F_h(K))|] for |K| = m over r
// dimensions. It uses the exact closed form r·(1 - (1 - 1/r)^m),
// which equals the expectation of Equation 1's distribution.
func ExpectedOneBits(r, m int) (float64, error) {
	if r < 1 {
		return 0, fmt.Errorf("analytic: r must be ≥ 1, got %d", r)
	}
	if m < 0 {
		return 0, fmt.Errorf("analytic: m must be non-negative, got %d", m)
	}
	return float64(r) * (1 - math.Pow(1-1/float64(r), float64(m))), nil
}

// NodeOnesPMF returns the node-side distribution of Figure 7: the
// fraction of the 2^r hypercube vertices with exactly x one-bits,
// i.e. Binomial(r, 1/2).
func NodeOnesPMF(r, x int) (float64, error) {
	if r < 1 || r > 1023 {
		return 0, fmt.Errorf("analytic: r out of range: %d", r)
	}
	if x < 0 || x > r {
		return 0, nil
	}
	return binom(r, x) * math.Pow(0.5, float64(r)), nil
}

// ObjectOnesPMF returns the object-side distribution of Figure 7 for a
// given keyword-set-size distribution sizePMF (sizePMF[m] =
// P(|K_σ| = m)): the probability that an object's indexing vertex has
// exactly x one-bits.
func ObjectOnesPMF(r int, sizePMF []float64, x int) (float64, error) {
	total := 0.0
	for m, pm := range sizePMF {
		if pm == 0 {
			continue
		}
		pj, err := OneBitsPMF(r, m, x)
		if err != nil {
			return 0, err
		}
		total += pm * pj
	}
	return total, nil
}

// ChooseDimension selects the hypercube dimensionality r in
// [minR, maxR] that minimizes the total-variation distance between the
// object distribution (induced by the keyword-set-size distribution)
// and the binomial node distribution — the paper's recipe for picking
// r from Figure 5's histogram without running the experiment.
func ChooseDimension(sizePMF []float64, minR, maxR int) (int, error) {
	if minR < 1 || maxR < minR {
		return 0, fmt.Errorf("analytic: invalid dimension range [%d, %d]", minR, maxR)
	}
	bestR, bestDist := minR, math.Inf(1)
	for r := minR; r <= maxR; r++ {
		dist := 0.0
		for x := 0; x <= r; x++ {
			pn, err := NodeOnesPMF(r, x)
			if err != nil {
				return 0, err
			}
			po, err := ObjectOnesPMF(r, sizePMF, x)
			if err != nil {
				return 0, err
			}
			dist += math.Abs(pn - po)
		}
		if dist < bestDist {
			bestDist = dist
			bestR = r
		}
	}
	return bestR, nil
}

// binom returns C(n, k) as a float64, exact for the modest arguments
// used here (n ≤ 64 keeps well inside float64 integer precision for
// the products involved; larger n degrade gracefully).
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}
