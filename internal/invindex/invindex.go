// Package invindex implements the distributed inverted index baseline
// the paper compares against ("DII" in Figure 6): every keyword is
// hashed to a single node of the same 2^r logical node space used by
// the hypercube scheme, and that node stores the posting list of every
// object containing the keyword. Object insert/delete touches one node
// per keyword; a query fetches each keyword's posting list and
// intersects them.
package invindex

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// NodeFor hashes a keyword to its responsible logical node in an
// r-dimensional node space (Figure 6's "hash the keyword to determine
// a node in the hypercube").
func NodeFor(word string, r int) hypercube.Vertex {
	mask := hypercube.MustNew(r).Mask()
	return hypercube.Vertex(dht.HashString("dii:"+word)) & mask
}

// Wire messages.
type (
	msgInsertPosting struct {
		Vertex   uint64
		Word     string
		ObjectID string
	}
	msgDeletePosting struct {
		Vertex   uint64
		Word     string
		ObjectID string
	}
	respDeletePosting struct{ Found bool }
	msgFetchPostings  struct {
		Vertex uint64
		Word   string
	}
	respFetchPostings struct{ ObjectIDs []string }
	respAck           struct{}
)

// RegisterTypes registers the baseline's wire messages for networked
// transports.
func RegisterTypes() {
	for _, v := range []any{
		msgInsertPosting{}, respAck{},
		msgDeletePosting{}, respDeletePosting{},
		msgFetchPostings{}, respFetchPostings{},
	} {
		transport.RegisterType(v)
	}
	registerWireCodecs()
}

// Server stores posting lists for the logical nodes assigned to one
// physical node. Fetches and load scans — the read-mostly query path —
// take the lock in read mode, so concurrent searches never serialize
// on each other.
type Server struct {
	mu       sync.RWMutex
	postings map[hypercube.Vertex]map[string]map[string]struct{} // vertex → word → object IDs
}

// NewServer builds an empty baseline server.
func NewServer() *Server {
	return &Server{postings: make(map[hypercube.Vertex]map[string]map[string]struct{})}
}

// Handler processes baseline protocol messages.
func (s *Server) Handler(ctx context.Context, from transport.Addr, body any) (any, error) {
	switch msg := body.(type) {
	case msgInsertPosting:
		s.insert(hypercube.Vertex(msg.Vertex), msg.Word, msg.ObjectID)
		return respAck{}, nil
	case msgDeletePosting:
		return respDeletePosting{Found: s.delete(hypercube.Vertex(msg.Vertex), msg.Word, msg.ObjectID)}, nil
	case msgFetchPostings:
		return respFetchPostings{ObjectIDs: s.fetch(hypercube.Vertex(msg.Vertex), msg.Word)}, nil
	default:
		return nil, fmt.Errorf("%w: %T", core.ErrUnhandledMessage, body)
	}
}

func (s *Server) insert(v hypercube.Vertex, word, objectID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byWord, ok := s.postings[v]
	if !ok {
		byWord = make(map[string]map[string]struct{})
		s.postings[v] = byWord
	}
	ids, ok := byWord[word]
	if !ok {
		ids = make(map[string]struct{})
		byWord[word] = ids
	}
	ids[objectID] = struct{}{}
}

func (s *Server) delete(v hypercube.Vertex, word, objectID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	byWord, ok := s.postings[v]
	if !ok {
		return false
	}
	ids, ok := byWord[word]
	if !ok {
		return false
	}
	if _, ok := ids[objectID]; !ok {
		return false
	}
	delete(ids, objectID)
	if len(ids) == 0 {
		delete(byWord, word)
		if len(byWord) == 0 {
			delete(s.postings, v)
		}
	}
	return true
}

func (s *Server) fetch(v hypercube.Vertex, word string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byWord, ok := s.postings[v]
	if !ok {
		return nil
	}
	ids, ok := byWord[word]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(ids))
	for id := range ids {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Load returns the total number of object references stored (the
// Figure 6 load metric: one reference per keyword per object).
func (s *Server) Load() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, byWord := range s.postings {
		for _, ids := range byWord {
			total += len(ids)
		}
	}
	return total
}

// Client is the initiator-side baseline API.
type Client struct {
	r        int
	resolver core.Resolver
	sender   transport.Sender
}

// NewClient builds a baseline client over an r-dimensional logical
// node space.
func NewClient(r int, resolver core.Resolver, sender transport.Sender) (*Client, error) {
	if r < 1 || r > hypercube.MaxDim {
		return nil, fmt.Errorf("invindex: dimension %d outside [1, %d]", r, hypercube.MaxDim)
	}
	if resolver == nil || sender == nil {
		return nil, fmt.Errorf("invindex: client needs a Resolver and a Sender")
	}
	return &Client{r: r, resolver: resolver, sender: sender}, nil
}

// Insert indexes the object under every one of its keywords: k
// lookups and k messages for a k-keyword object, the per-object cost
// the paper contrasts with the hypercube scheme's single message.
func (c *Client) Insert(ctx context.Context, obj core.Object) (core.Stats, error) {
	if err := obj.Validate(); err != nil {
		return core.Stats{}, err
	}
	var st core.Stats
	for _, w := range obj.Keywords.Words() {
		v := NodeFor(w, c.r)
		addr, err := c.resolver.Resolve(ctx, "dii", v)
		if err != nil {
			return st, fmt.Errorf("insert %q: %w", obj.ID, err)
		}
		if _, err := c.sender.Send(ctx, addr, msgInsertPosting{
			Vertex: uint64(v), Word: w, ObjectID: obj.ID,
		}); err != nil {
			return st, fmt.Errorf("insert %q keyword %q: %w", obj.ID, w, err)
		}
		st.NodesContacted++
		st.Messages += 2
	}
	return st, nil
}

// Delete removes the object's posting from every keyword node.
func (c *Client) Delete(ctx context.Context, obj core.Object) (core.Stats, error) {
	if err := obj.Validate(); err != nil {
		return core.Stats{}, err
	}
	var st core.Stats
	for _, w := range obj.Keywords.Words() {
		v := NodeFor(w, c.r)
		addr, err := c.resolver.Resolve(ctx, "dii", v)
		if err != nil {
			return st, fmt.Errorf("delete %q: %w", obj.ID, err)
		}
		if _, err := c.sender.Send(ctx, addr, msgDeletePosting{
			Vertex: uint64(v), Word: w, ObjectID: obj.ID,
		}); err != nil {
			return st, fmt.Errorf("delete %q keyword %q: %w", obj.ID, w, err)
		}
		st.NodesContacted++
		st.Messages += 2
	}
	return st, nil
}

// Search returns the objects containing every keyword of k, by
// fetching each keyword's posting list and intersecting. Lists are
// fetched in query order; an empty intermediate intersection stops
// further fetches.
func (c *Client) Search(ctx context.Context, k keyword.Set) ([]string, core.Stats, error) {
	if k.IsEmpty() {
		return nil, core.Stats{}, core.ErrEmptyQuery
	}
	var (
		st        core.Stats
		intersect map[string]bool
	)
	for _, w := range k.Words() {
		v := NodeFor(w, c.r)
		addr, err := c.resolver.Resolve(ctx, "dii", v)
		if err != nil {
			return nil, st, fmt.Errorf("search %q: %w", w, err)
		}
		raw, err := c.sender.Send(ctx, addr, msgFetchPostings{Vertex: uint64(v), Word: w})
		if err != nil {
			return nil, st, fmt.Errorf("search %q at %s: %w", w, addr, err)
		}
		st.NodesContacted++
		st.Messages += 2
		resp, ok := raw.(respFetchPostings)
		if !ok {
			return nil, st, fmt.Errorf("search %q: unexpected response %T", w, raw)
		}
		ids := make(map[string]bool, len(resp.ObjectIDs))
		for _, id := range resp.ObjectIDs {
			ids[id] = true
		}
		if intersect == nil {
			intersect = ids
		} else {
			for id := range intersect {
				if !ids[id] {
					delete(intersect, id)
				}
			}
		}
		if len(intersect) == 0 {
			break
		}
	}
	out := make([]string, 0, len(intersect))
	for id := range intersect {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, st, nil
}
