package invindex

import (
	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

// Wire type IDs of the inverted-index baseline. Package core owns
// 1–31, chord 32–63, invindex 64–95. Never reuse or renumber a live ID.
const (
	wireMsgInsertPosting  = 64
	wireRespAck           = 65
	wireMsgDeletePosting  = 66
	wireRespDeletePosting = 67
	wireMsgFetchPostings  = 68
	wireRespFetchPostings = 69
)

func registerWireCodecs() {
	wire.Register[msgInsertPosting](wireMsgInsertPosting)
	wire.Register[respAck](wireRespAck)
	wire.Register[msgDeletePosting](wireMsgDeletePosting)
	wire.Register[respDeletePosting](wireRespDeletePosting)
	wire.Register[msgFetchPostings](wireMsgFetchPostings)
	wire.Register[respFetchPostings](wireRespFetchPostings)
}

func (m *msgInsertPosting) MarshalWire(w *wire.Writer) {
	w.Uvarint(m.Vertex)
	w.String(m.Word)
	w.String(m.ObjectID)
}

func (m *msgInsertPosting) UnmarshalWire(r *wire.Reader) error {
	m.Vertex = r.Uvarint()
	m.Word = r.String()
	m.ObjectID = r.String()
	return r.Err()
}

func (m *respAck) MarshalWire(w *wire.Writer)         {}
func (m *respAck) UnmarshalWire(r *wire.Reader) error { return r.Err() }

func (m *msgDeletePosting) MarshalWire(w *wire.Writer) {
	w.Uvarint(m.Vertex)
	w.String(m.Word)
	w.String(m.ObjectID)
}

func (m *msgDeletePosting) UnmarshalWire(r *wire.Reader) error {
	m.Vertex = r.Uvarint()
	m.Word = r.String()
	m.ObjectID = r.String()
	return r.Err()
}

func (m *respDeletePosting) MarshalWire(w *wire.Writer)         { w.Bool(m.Found) }
func (m *respDeletePosting) UnmarshalWire(r *wire.Reader) error { m.Found = r.Bool(); return r.Err() }

func (m *msgFetchPostings) MarshalWire(w *wire.Writer) {
	w.Uvarint(m.Vertex)
	w.String(m.Word)
}

func (m *msgFetchPostings) UnmarshalWire(r *wire.Reader) error {
	m.Vertex = r.Uvarint()
	m.Word = r.String()
	return r.Err()
}

func (m *respFetchPostings) MarshalWire(w *wire.Writer) {
	w.Uvarint(uint64(len(m.ObjectIDs)))
	for _, id := range m.ObjectIDs {
		w.String(id)
	}
}

func (m *respFetchPostings) UnmarshalWire(r *wire.Reader) error {
	n := r.Count(1)
	if n > 0 {
		m.ObjectIDs = make([]string, n)
		for i := range m.ObjectIDs {
			m.ObjectIDs[i] = r.String()
		}
	}
	return r.Err()
}
