package invindex

import (
	"reflect"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

func TestInvindexWireRoundTrip(t *testing.T) {
	RegisterTypes()
	for _, msg := range []any{
		msgInsertPosting{Vertex: 42, Word: "alpha", ObjectID: "doc-1"},
		msgInsertPosting{},
		respAck{},
		msgDeletePosting{Vertex: 7, Word: "beta", ObjectID: "doc-2"},
		respDeletePosting{Found: true},
		msgFetchPostings{Vertex: 1 << 30, Word: "gamma"},
		respFetchPostings{ObjectIDs: []string{"a", "b"}},
		respFetchPostings{},
	} {
		c, ok := wire.Lookup(msg)
		if !ok {
			t.Fatalf("no wire codec registered for %T", msg)
		}
		w := wire.GetWriter()
		c.Encode(w, msg)
		r := wire.NewReader(w.Buf)
		got, err := c.Decode(r)
		wire.PutWriter(w)
		if err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		if err := r.Finish(); err != nil {
			t.Fatalf("decode %T trailing bytes: %v", msg, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("%T round trip mismatch:\n got %+v\nwant %+v", msg, got, msg)
		}
	}
}
