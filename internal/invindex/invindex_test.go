package invindex

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

type deployment struct {
	net     *inmem.Network
	servers []*Server
	addrs   []transport.Addr
	client  *Client
}

func newDeployment(t *testing.T, r, nServers int) *deployment {
	t.Helper()
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	addrs := make([]transport.Addr, nServers)
	servers := make([]*Server, nServers)
	for i := range addrs {
		addrs[i] = transport.Addr("dii-" + strconv.Itoa(i))
		servers[i] = NewServer()
		if _, err := net.Bind(addrs[i], servers[i].Handler); err != nil {
			t.Fatal(err)
		}
	}
	resolver := core.FuncResolver(func(v hypercube.Vertex) transport.Addr {
		return addrs[int(uint64(v)%uint64(nServers))]
	})
	client, err := NewClient(r, resolver, net)
	if err != nil {
		t.Fatal(err)
	}
	return &deployment{net: net, servers: servers, addrs: addrs, client: client}
}

func obj(id string, words ...string) core.Object {
	return core.Object{ID: id, Keywords: keyword.NewSet(words...)}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(0, nil, nil); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := NewClient(8, nil, nil); err == nil {
		t.Error("nil resolver accepted")
	}
}

func TestNodeForDeterministicAndBounded(t *testing.T) {
	for i := 0; i < 100; i++ {
		w := "word" + strconv.Itoa(i)
		v := NodeFor(w, 10)
		if v != NodeFor(w, 10) {
			t.Fatal("NodeFor not deterministic")
		}
		if uint64(v) >= 1<<10 {
			t.Fatalf("NodeFor(%q, 10) = %d out of range", w, v)
		}
	}
}

func TestInsertSearchDelete(t *testing.T) {
	d := newDeployment(t, 10, 4)
	ctx := context.Background()
	objects := []core.Object{
		obj("hinet", "isp", "network", "download"),
		obj("tvbs", "tvbs", "news"),
		obj("portal", "news", "network"),
	}
	for _, o := range objects {
		st, err := d.client.Insert(ctx, o)
		if err != nil {
			t.Fatalf("Insert %s: %v", o.ID, err)
		}
		// One message round trip per keyword (the paper's k-lookup cost).
		if st.Messages != 2*o.Keywords.Len() {
			t.Errorf("insert %s messages = %d, want %d", o.ID, st.Messages, 2*o.Keywords.Len())
		}
	}

	ids, st, err := d.client.Search(ctx, keyword.NewSet("news"))
	if err != nil {
		t.Fatal(err)
	}
	if !equal(ids, []string{"portal", "tvbs"}) {
		t.Errorf("news search = %v", ids)
	}
	if st.NodesContacted != 1 {
		t.Errorf("single-keyword search contacted %d nodes", st.NodesContacted)
	}

	ids, st, err = d.client.Search(ctx, keyword.NewSet("news", "network"))
	if err != nil {
		t.Fatal(err)
	}
	if !equal(ids, []string{"portal"}) {
		t.Errorf("intersection = %v", ids)
	}
	if st.NodesContacted != 2 {
		t.Errorf("two-keyword search contacted %d nodes", st.NodesContacted)
	}

	if _, err := d.client.Delete(ctx, objects[2]); err != nil {
		t.Fatal(err)
	}
	ids, _, _ = d.client.Search(ctx, keyword.NewSet("news", "network"))
	if len(ids) != 0 {
		t.Errorf("after delete, intersection = %v", ids)
	}
}

func TestSearchEmptyIntersectionShortCircuits(t *testing.T) {
	d := newDeployment(t, 10, 2)
	ctx := context.Background()
	d.client.Insert(ctx, obj("a", "only-a"))
	ids, _, err := d.client.Search(ctx, keyword.NewSet("missing", "only-a", "another"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("got %v", ids)
	}
}

func TestSearchValidation(t *testing.T) {
	d := newDeployment(t, 8, 1)
	if _, _, err := d.client.Search(context.Background(), keyword.Set{}); !errors.Is(err, core.ErrEmptyQuery) {
		t.Errorf("empty search: %v", err)
	}
	if _, err := d.client.Insert(context.Background(), core.Object{}); !errors.Is(err, core.ErrBadObject) {
		t.Errorf("bad insert: %v", err)
	}
}

func TestLoadCountsReferences(t *testing.T) {
	d := newDeployment(t, 8, 1)
	ctx := context.Background()
	d.client.Insert(ctx, obj("a", "x", "y", "z"))
	d.client.Insert(ctx, obj("b", "x"))
	if got := d.servers[0].Load(); got != 4 {
		t.Errorf("Load = %d, want 4 (3 + 1 keyword references)", got)
	}
}

func TestStorageRedundancyVersusHypercube(t *testing.T) {
	// The storage-redundancy claim of the paper: DII stores one
	// reference per keyword per object, the hypercube scheme exactly
	// one per object.
	d := newDeployment(t, 10, 4)
	ctx := context.Background()
	totalKeywords := 0
	for i := 0; i < 30; i++ {
		words := []string{"w" + strconv.Itoa(i%7), "v" + strconv.Itoa(i%5), "u" + strconv.Itoa(i%3)}
		totalKeywords += keyword.NewSet(words...).Len()
		if _, err := d.client.Insert(ctx, obj("o"+strconv.Itoa(i), words...)); err != nil {
			t.Fatal(err)
		}
	}
	load := 0
	for _, s := range d.servers {
		load += s.Load()
	}
	if load != totalKeywords {
		t.Errorf("total DII load = %d, want %d (sum of keyword-set sizes)", load, totalKeywords)
	}
}

func TestHandlerRejectsUnknown(t *testing.T) {
	s := NewServer()
	if _, err := s.Handler(context.Background(), "", 42); !errors.Is(err, core.ErrUnhandledMessage) {
		t.Errorf("unknown message: %v", err)
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Strings(a)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
