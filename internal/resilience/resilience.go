// Package resilience is the fault-handling policy layer of the
// keysearch stack: configurable retry with exponential backoff and
// full jitter, per-attempt timeouts, per-destination circuit breakers,
// and optional hedged sends for read-only RPCs — packaged as a
// transport middleware (see Wrap) so the same policy protects tcpnet,
// the Chord RPCs and the index protocol without touching any of them.
//
// The paper's superset search is a multi-round wave over a spanning
// binomial tree, so a single unreachable vertex mid-traversal hides
// index entries; Section 3.4 gestures at replication as the fix. This
// package supplies the principled half of that fix: transient faults
// (a dropped connection, a slow peer, a node mid-restart) are absorbed
// by retries and hedges, persistent faults are fenced off quickly by
// breakers so waves do not stall re-probing dead nodes, and everything
// above the transport keeps its exactly-once-per-vertex logic.
//
// Time and randomness are injectable (Clock, Policy.Rand) so tests
// replay identical schedules deterministically.
package resilience

import (
	"errors"
	"math/rand"
	"time"
)

// Clock abstracts time so tests can drive backoff, breaker recovery
// and hedge timers deterministically. The zero Policy uses the system
// clock.
type Clock interface {
	// Now returns the current time (drives breaker open windows).
	Now() time.Time
	// After returns a channel that fires once d has elapsed (drives
	// backoff sleeps and hedge delays).
	After(d time.Duration) <-chan time.Time
}

// systemClock is the production Clock.
type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SystemClock returns the wall clock used when Policy.Clock is nil.
func SystemClock() Clock { return systemClock{} }

// BreakerPolicy configures the per-destination circuit breakers.
type BreakerPolicy struct {
	// FailureThreshold is the number of consecutive transport-level
	// failures that opens a destination's breaker. 0 disables breakers
	// entirely.
	FailureThreshold int
	// OpenFor is how long an open breaker rejects sends before moving
	// to half-open and admitting trial probes.
	OpenFor time.Duration
	// HalfOpenProbes bounds the concurrent trial sends admitted while
	// half-open; the first success closes the breaker, any failure
	// reopens it.
	HalfOpenProbes int
}

// Policy configures the resilience middleware. The zero value is
// usable but does nothing beyond pass-through (one attempt, no
// breaker, no hedging); DefaultPolicy returns the recommended
// production configuration.
type Policy struct {
	// MaxAttempts is the total number of tries per send, including the
	// first (minimum 1).
	MaxAttempts int
	// BaseDelay is the backoff cap before the first retry; the cap
	// doubles (times Multiplier) per subsequent retry up to MaxDelay,
	// and the actual sleep is drawn uniformly from [0, cap) — "full
	// jitter", which decorrelates retry storms after a wave hits a
	// dead node.
	BaseDelay time.Duration
	// MaxDelay caps the backoff window growth.
	MaxDelay time.Duration
	// Multiplier is the per-retry backoff growth factor (default 2).
	Multiplier float64
	// AttemptTimeout bounds each individual attempt (0 = only the
	// caller's context applies). Expiry counts as a failure and, for
	// read-only sends, is retried.
	AttemptTimeout time.Duration
	// HedgeDelay, when positive, launches a duplicate of a still
	// unanswered read-only send after this delay; the first response
	// wins. Writes are never hedged.
	HedgeDelay time.Duration
	// MaxHedges bounds the extra sends a hedged request may launch
	// (default 1).
	MaxHedges int
	// Breaker configures the per-destination circuit breakers.
	Breaker BreakerPolicy
	// Clock supplies time (nil = system clock). Injectable so tests
	// replay backoff/breaker/hedge schedules deterministically.
	Clock Clock
	// Rand supplies the jitter draw in [0, 1) (nil = math/rand global).
	// Injectable for deterministic tests; called under an internal
	// mutex, so a rand.Rand's Float64 method is safe to pass.
	Rand func() float64
}

// DefaultPolicy returns the recommended production policy: three
// attempts with 10ms..2s full-jitter backoff, breakers opening after
// five consecutive failures for one second, hedging disabled.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts: 3,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		MaxHedges:   1,
		Breaker: BreakerPolicy{
			FailureThreshold: 5,
			OpenFor:          time.Second,
			HalfOpenProbes:   1,
		},
	}
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = p.BaseDelay
	}
	if p.MaxHedges < 1 {
		p.MaxHedges = 1
	}
	if p.Breaker.HalfOpenProbes < 1 {
		p.Breaker.HalfOpenProbes = 1
	}
	if p.Breaker.OpenFor <= 0 {
		p.Breaker.OpenFor = time.Second
	}
	if p.Clock == nil {
		p.Clock = systemClock{}
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	return p
}

// ErrOpen reports a send rejected without touching the network because
// the destination's circuit breaker is open. The middleware wraps it
// together with transport.ErrUnreachable so existing unreachability
// handling (replica failover, subtree skipping) applies unchanged.
var ErrOpen = errors.New("resilience: circuit breaker open")

// AnyOf combines read-only classifiers: the result reports true when
// any of the given classifiers does. Use it to mux the per-protocol
// classifiers (core.ReadOnlyMessage, chord.ReadOnlyRPC) behind one
// endpoint, mirroring transport.Mux for handlers.
func AnyOf(classifiers ...func(body any) bool) func(body any) bool {
	return func(body any) bool {
		for _, c := range classifiers {
			if c != nil && c(body) {
				return true
			}
		}
		return false
	}
}
