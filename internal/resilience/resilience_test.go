package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// fakeClock is a deterministic Clock: Now is advanced manually, and
// After records the requested duration and (unless block is set) fires
// immediately, so backoff sleeps and hedge delays complete instantly
// while remaining observable.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	block   bool
	afters  []time.Duration
	pending []chan time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.afters = append(c.afters, d)
	now := c.now
	block := c.block
	ch := make(chan time.Time, 1)
	if block {
		c.pending = append(c.pending, ch)
	}
	c.mu.Unlock()
	if !block {
		ch <- now
	}
	return ch
}

// fire releases every timer handed out while block was set.
func (c *fakeClock) fire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ch := range c.pending {
		ch <- c.now
	}
	c.pending = nil
}

func (c *fakeClock) sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.afters...)
}

// scriptedSender counts calls and delegates each to fn with its
// 1-based sequence number.
type scriptedSender struct {
	mu sync.Mutex
	n  int
	fn func(call int, ctx context.Context) (any, error)
}

func (s *scriptedSender) Send(ctx context.Context, to transport.Addr, body any) (any, error) {
	s.mu.Lock()
	s.n++
	call := s.n
	s.mu.Unlock()
	return s.fn(call, ctx)
}

func (s *scriptedSender) calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func counter(t *testing.T, reg *telemetry.Registry, name string) uint64 {
	t.Helper()
	return reg.Snapshot().Counters[name]
}

func TestRetrySucceedsAfterUnreachable(t *testing.T) {
	clk := newFakeClock()
	sender := &scriptedSender{fn: func(call int, _ context.Context) (any, error) {
		if call < 3 {
			return nil, transport.ErrUnreachable
		}
		return "ok", nil
	}}
	mw := Wrap(sender, Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		Clock:       clk,
		Rand:        func() float64 { return 0.5 },
	})
	reg := telemetry.New(8)
	mw.SetTelemetry(reg)

	resp, err := mw.Send(context.Background(), "dest", "req")
	if err != nil || resp != "ok" {
		t.Fatalf("Send = %v, %v; want ok, nil", resp, err)
	}
	if got := sender.calls(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if got := counter(t, reg, "resilience_retries_total"); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	// MaxDelay defaults to BaseDelay, so both full-jitter windows are
	// 1ms and the 0.5 draw makes each sleep exactly 500µs.
	sleeps := clk.sleeps()
	if len(sleeps) != 2 || sleeps[0] != 500*time.Microsecond || sleeps[1] != 500*time.Microsecond {
		t.Errorf("sleeps = %v, want [500µs 500µs]", sleeps)
	}
}

func TestRemoteErrorNotRetried(t *testing.T) {
	boom := fmt.Errorf("%w: index rejected it", transport.ErrRemote)
	sender := &scriptedSender{fn: func(int, context.Context) (any, error) { return nil, boom }}
	mw := Wrap(sender, Policy{
		MaxAttempts: 3,
		Clock:       newFakeClock(),
		Breaker:     BreakerPolicy{FailureThreshold: 1, OpenFor: time.Minute},
	})
	reg := telemetry.New(8)
	mw.SetTelemetry(reg)

	_, err := mw.Send(context.Background(), "dest", "req")
	if !errors.Is(err, transport.ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if got := sender.calls(); got != 1 {
		t.Errorf("attempts = %d, want 1 (application errors are conclusive)", got)
	}
	if got := counter(t, reg, "resilience_retries_total"); got != 0 {
		t.Errorf("retries = %d, want 0", got)
	}
	// The destination answered, so even a 1-failure threshold must not
	// have tripped.
	if got := mw.BreakerState("dest"); got != Closed {
		t.Errorf("breaker = %v, want closed", got)
	}
}

func TestDeadlineRetriedOnlyForReads(t *testing.T) {
	for _, tc := range []struct {
		name      string
		readOnly  bool
		wantCalls int
	}{
		{"write", false, 1},
		{"read", true, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sender := &scriptedSender{fn: func(int, context.Context) (any, error) {
				return nil, context.DeadlineExceeded
			}}
			mw := Wrap(sender, Policy{MaxAttempts: 2, Clock: newFakeClock()})
			mw.SetReadOnly(func(any) bool { return tc.readOnly })

			_, err := mw.Send(context.Background(), "dest", "req")
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want DeadlineExceeded", err)
			}
			if got := sender.calls(); got != tc.wantCalls {
				t.Errorf("attempts = %d, want %d", got, tc.wantCalls)
			}
		})
	}
}

func TestBreakerOpensAndShortCircuits(t *testing.T) {
	clk := newFakeClock()
	sender := &scriptedSender{fn: func(int, context.Context) (any, error) {
		return nil, transport.ErrUnreachable
	}}
	mw := Wrap(sender, Policy{
		MaxAttempts: 1,
		Clock:       clk,
		Breaker:     BreakerPolicy{FailureThreshold: 2, OpenFor: time.Minute, HalfOpenProbes: 1},
	})
	reg := telemetry.New(8)
	mw.SetTelemetry(reg)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := mw.Send(ctx, "dest", "req"); !errors.Is(err, transport.ErrUnreachable) {
			t.Fatalf("send %d: err = %v, want ErrUnreachable", i, err)
		}
	}
	if got := mw.BreakerState("dest"); got != Open {
		t.Fatalf("breaker = %v, want open after %d failures", got, 2)
	}
	if got := counter(t, reg, "resilience_breaker_opens_total"); got != 1 {
		t.Errorf("opens = %d, want 1", got)
	}

	// The third send must be rejected without touching the transport,
	// with an error that still reads as unreachability to callers.
	_, err := mw.Send(ctx, "dest", "req")
	if !errors.Is(err, ErrOpen) || !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrOpen wrapped in ErrUnreachable", err)
	}
	if got := sender.calls(); got != 2 {
		t.Errorf("transport sends = %d, want 2 (third was short-circuited)", got)
	}
	if got := counter(t, reg, "resilience_breaker_short_circuits_total"); got != 1 {
		t.Errorf("short circuits = %d, want 1", got)
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["resilience_breaker_state"]; got != 1 {
		t.Errorf("resilience_breaker_state = %d, want 1 open breaker", got)
	}
	if got := snap.Gauges["resilience_breakers_closed"]; got != 0 {
		t.Errorf("resilience_breakers_closed = %d, want 0", got)
	}
}

func TestBreakerHalfOpenReopensAndRecloses(t *testing.T) {
	clk := newFakeClock()
	var ok bool // flip to let the probe succeed
	sender := &scriptedSender{fn: func(int, context.Context) (any, error) {
		if ok {
			return "ok", nil
		}
		return nil, transport.ErrUnreachable
	}}
	mw := Wrap(sender, Policy{
		MaxAttempts: 1,
		Clock:       clk,
		Breaker:     BreakerPolicy{FailureThreshold: 1, OpenFor: time.Minute, HalfOpenProbes: 1},
	})
	reg := telemetry.New(8)
	mw.SetTelemetry(reg)
	ctx := context.Background()

	if _, err := mw.Send(ctx, "dest", "req"); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatal(err)
	}
	if got := mw.BreakerState("dest"); got != Open {
		t.Fatalf("breaker = %v, want open", got)
	}

	// After OpenFor the breaker admits one probe; a failed probe reopens.
	clk.Advance(2 * time.Minute)
	if _, err := mw.Send(ctx, "dest", "req"); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatal(err)
	}
	if got := mw.BreakerState("dest"); got != Open {
		t.Fatalf("breaker = %v, want re-opened after failed probe", got)
	}
	if got := counter(t, reg, "resilience_breaker_opens_total"); got != 2 {
		t.Errorf("opens = %d, want 2 (initial + reopen)", got)
	}

	// A successful probe closes it and normal traffic resumes.
	clk.Advance(2 * time.Minute)
	ok = true
	if resp, err := mw.Send(ctx, "dest", "req"); err != nil || resp != "ok" {
		t.Fatalf("probe = %v, %v; want ok, nil", resp, err)
	}
	if got := mw.BreakerState("dest"); got != Closed {
		t.Errorf("breaker = %v, want closed after successful probe", got)
	}
}

func TestHedgeWins(t *testing.T) {
	clk := newFakeClock()
	clk.block = true // the hedge timer fires only when the test says so
	primaryIn := make(chan struct{})
	release := make(chan struct{})
	sender := &scriptedSender{fn: func(call int, ctx context.Context) (any, error) {
		if call == 1 {
			// Primary: stuck until the hedged race is decided.
			close(primaryIn)
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		}
		return "hedge-ok", nil
	}}
	mw := Wrap(sender, Policy{
		MaxAttempts: 1,
		HedgeDelay:  10 * time.Millisecond,
		MaxHedges:   1,
		Clock:       clk,
	})
	mw.SetReadOnly(func(any) bool { return true })
	reg := telemetry.New(8)
	mw.SetTelemetry(reg)

	type result struct {
		resp any
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := mw.Send(context.Background(), "dest", "req")
		done <- result{resp, err}
	}()
	<-primaryIn // the stuck primary owns call 1 before the hedge can launch
	clk.fire()
	res := <-done
	close(release)
	if res.err != nil || res.resp != "hedge-ok" {
		t.Fatalf("Send = %v, %v; want hedge-ok, nil", res.resp, res.err)
	}
	if got := counter(t, reg, "resilience_hedges_total"); got != 1 {
		t.Errorf("hedges = %d, want 1", got)
	}
	if got := counter(t, reg, "resilience_hedge_wins_total"); got != 1 {
		t.Errorf("hedge wins = %d, want 1", got)
	}
}

func TestHedgedFastFailureSkipsHedge(t *testing.T) {
	clk := newFakeClock()
	clk.block = true // hedge timer never fires
	sender := &scriptedSender{fn: func(int, context.Context) (any, error) {
		return nil, transport.ErrUnreachable
	}}
	mw := Wrap(sender, Policy{
		MaxAttempts: 1,
		HedgeDelay:  10 * time.Millisecond,
		Clock:       clk,
	})
	mw.SetReadOnly(func(any) bool { return true })
	reg := telemetry.New(8)
	mw.SetTelemetry(reg)

	// The primary fails fast; the attempt must conclude without waiting
	// out the hedge delay (the blocked timer would hang the test
	// otherwise) and without launching a hedge.
	done := make(chan error, 1)
	go func() {
		_, err := mw.Send(context.Background(), "dest", "req")
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, transport.ErrUnreachable) {
			t.Fatalf("err = %v, want ErrUnreachable", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hedged send hung waiting for the hedge timer")
	}
	if got := sender.calls(); got != 1 {
		t.Errorf("attempts = %d, want 1", got)
	}
	if got := counter(t, reg, "resilience_hedges_total"); got != 0 {
		t.Errorf("hedges = %d, want 0", got)
	}
}

func TestCallerDeadlineBypassesBreaker(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done() // guarantee the caller's deadline has expired

	sender := &scriptedSender{fn: func(_ int, ctx context.Context) (any, error) {
		return nil, ctx.Err()
	}}
	mw := Wrap(sender, Policy{
		MaxAttempts: 3,
		Clock:       newFakeClock(),
		Breaker:     BreakerPolicy{FailureThreshold: 1, OpenFor: time.Minute},
	})
	reg := telemetry.New(8)
	mw.SetTelemetry(reg)

	if _, err := mw.Send(ctx, "dest", "req"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if got := sender.calls(); got != 1 {
		t.Errorf("attempts = %d, want 1", got)
	}
	// The caller ran out of time; that is not evidence against the
	// destination, so the breaker must not have tripped.
	if got := mw.BreakerState("dest"); got != Closed {
		t.Errorf("breaker = %v, want closed", got)
	}
	if got := counter(t, reg, "resilience_retries_total"); got != 0 {
		t.Errorf("retries = %d, want 0", got)
	}
}

func TestBindDelegatesToWrappedNetwork(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	mw := Wrap(net, DefaultPolicy())

	node, err := mw.Bind("srv", func(_ context.Context, _ transport.Addr, body any) (any, error) {
		return body, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	resp, err := mw.Send(context.Background(), "srv", "echo")
	if err != nil || resp != "echo" {
		t.Fatalf("Send = %v, %v; want echo, nil", resp, err)
	}
}

func TestBindRequiresNetwork(t *testing.T) {
	mw := Wrap(&scriptedSender{fn: func(int, context.Context) (any, error) { return nil, nil }}, Policy{})
	if _, err := mw.Bind("srv", nil); err == nil {
		t.Fatal("Bind over a bare Sender should fail")
	}
}

func TestBackoffCapGrowth(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Multiplier: 2}.withDefaults()
	for retry, want := range map[int]time.Duration{
		1: 10 * time.Millisecond,
		2: 20 * time.Millisecond,
		3: 40 * time.Millisecond,
		4: 40 * time.Millisecond, // capped
	} {
		if got := p.backoffCap(retry); got != want {
			t.Errorf("backoffCap(%d) = %v, want %v", retry, got, want)
		}
	}
	if got := (Policy{}.withDefaults()).backoffCap(1); got != 0 {
		t.Errorf("zero BaseDelay backoffCap = %v, want 0", got)
	}
}

func TestAnyOf(t *testing.T) {
	isString := func(b any) bool { _, ok := b.(string); return ok }
	isInt := func(b any) bool { _, ok := b.(int); return ok }
	cl := AnyOf(nil, isString, isInt)
	if !cl("x") || !cl(7) {
		t.Error("AnyOf should accept bodies matched by any classifier")
	}
	if cl(3.14) {
		t.Error("AnyOf should reject bodies matched by none")
	}
}
