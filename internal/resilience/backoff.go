package resilience

import "time"

// backoffCap returns the exponential backoff window before retry n
// (n = 1 is the first retry): BaseDelay·Multiplier^(n-1), capped at
// MaxDelay. The actual sleep is a full-jitter draw from [0, cap).
func (p Policy) backoffCap(retry int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := float64(p.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if d > float64(p.MaxDelay) {
		return p.MaxDelay
	}
	return time.Duration(d)
}
