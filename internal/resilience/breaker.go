package resilience

import "time"

// BreakerState is a circuit breaker's position: Closed (traffic flows,
// consecutive failures are counted), Open (traffic is rejected without
// touching the network), HalfOpen (a bounded number of trial probes is
// admitted to test recovery).
type BreakerState int

const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// breaker is one destination's circuit breaker. Callers hold the
// middleware's lock around every method; the struct itself is not
// concurrency-safe.
type breaker struct {
	pol      BreakerPolicy
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probes   int       // trial sends in flight while half-open
}

func newBreaker(pol BreakerPolicy) *breaker {
	return &breaker{pol: pol}
}

// allow reports whether a send may proceed now. When the open window
// has elapsed it transitions to half-open and admits up to
// HalfOpenProbes trial sends.
func (b *breaker) allow(now time.Time) bool {
	switch b.state {
	case Closed:
		return true
	case Open:
		if now.Sub(b.openedAt) < b.pol.OpenFor {
			return false
		}
		b.state = HalfOpen
		b.probes = 0
		fallthrough
	case HalfOpen:
		if b.probes >= b.pol.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	default:
		return true
	}
}

// onSuccess records a successful (or application-level, i.e. the
// destination is alive) response. Any success closes the breaker.
func (b *breaker) onSuccess() {
	b.state = Closed
	b.failures = 0
	b.probes = 0
}

// onFailure records a transport-level failure and reports whether the
// breaker transitioned to Open as a result.
func (b *breaker) onFailure(now time.Time) (opened bool) {
	switch b.state {
	case HalfOpen:
		// A failed probe reopens immediately for a fresh window.
		b.state = Open
		b.openedAt = now
		b.probes = 0
		return true
	case Closed:
		b.failures++
		if b.failures >= b.pol.FailureThreshold {
			b.state = Open
			b.openedAt = now
			b.failures = 0
			return true
		}
	}
	return false
}
