package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Middleware applies a Policy to every Send through an underlying
// transport: per-attempt timeouts, retry with full-jitter backoff,
// per-destination circuit breakers, and hedged sends for read-only
// bodies. It implements transport.Network — Bind delegates to the
// wrapped transport — so it drops into any wiring site that takes a
// Network or Sender.
//
// Failure classification follows the transport sentinels: only
// transport.ErrUnreachable and context.DeadlineExceeded count as
// transport-level failures (they feed breakers and may be retried);
// transport.ErrRemote and every other application error mean the
// destination is alive and are returned immediately. Writes — bodies
// the read-only classifier rejects — are retried only on
// ErrUnreachable, where the request provably never reached a handler,
// so at-most-once semantics for non-idempotent operations survive the
// retry layer.
type Middleware struct {
	inner transport.Sender
	pol   Policy

	readMu   sync.RWMutex
	readOnly func(body any) bool

	mu       sync.Mutex
	breakers map[transport.Addr]*breaker

	randMu sync.Mutex

	// Pre-resolved instruments (nil without telemetry; see SetTelemetry).
	retries       *telemetry.Counter // resilience_retries_total
	hedges        *telemetry.Counter // resilience_hedges_total
	hedgeWins     *telemetry.Counter // resilience_hedge_wins_total
	opens         *telemetry.Counter // resilience_breaker_opens_total
	shortCircuits *telemetry.Counter // resilience_breaker_short_circuits_total
}

// Wrap layers pol over inner. The middleware starts with no read-only
// classifier, so every body is treated as a write (retry on
// ErrUnreachable only, never hedged) until SetReadOnly installs one.
func Wrap(inner transport.Sender, pol Policy) *Middleware {
	return &Middleware{
		inner:    inner,
		pol:      pol.withDefaults(),
		breakers: make(map[transport.Addr]*breaker),
	}
}

// Inner returns the wrapped transport.
func (m *Middleware) Inner() transport.Sender { return m.inner }

// Policy returns the effective (defaulted) policy.
func (m *Middleware) Policy() Policy { return m.pol }

// SetReadOnly installs the classifier that marks bodies safe to hedge
// and to retry on per-attempt timeouts. Combine per-protocol
// classifiers with AnyOf. Safe to call concurrently with Send.
func (m *Middleware) SetReadOnly(fn func(body any) bool) {
	m.readMu.Lock()
	m.readOnly = fn
	m.readMu.Unlock()
}

// SetTelemetry wires the middleware's accounting into reg: retries
// issued, hedges launched and won, breaker transitions to open, sends
// rejected by an open breaker, and per-state breaker population
// gauges (resilience_breaker_state tracks open breakers). Call before
// serving traffic; a nil registry leaves instrumentation disabled.
func (m *Middleware) SetTelemetry(reg *telemetry.Registry) {
	m.retries = reg.Counter("resilience_retries_total")
	m.hedges = reg.Counter("resilience_hedges_total")
	m.hedgeWins = reg.Counter("resilience_hedge_wins_total")
	m.opens = reg.Counter("resilience_breaker_opens_total")
	m.shortCircuits = reg.Counter("resilience_breaker_short_circuits_total")
	reg.GaugeFunc("resilience_breaker_state", func() int64 { return m.stateCount(Open) })
	reg.GaugeFunc("resilience_breakers_closed", func() int64 { return m.stateCount(Closed) })
	reg.GaugeFunc("resilience_breakers_open", func() int64 { return m.stateCount(Open) })
	reg.GaugeFunc("resilience_breakers_half_open", func() int64 { return m.stateCount(HalfOpen) })
}

// Bind delegates to the wrapped transport, which must be a full
// transport.Network (tcpnet and inmem both are).
func (m *Middleware) Bind(addr transport.Addr, handler transport.Handler) (transport.Node, error) {
	n, ok := m.inner.(transport.Network)
	if !ok {
		return nil, fmt.Errorf("resilience: wrapped sender %T cannot bind endpoints", m.inner)
	}
	return n.Bind(addr, handler)
}

// BreakerState returns the current breaker state for a destination
// (Closed when the destination has never tripped the breaker).
func (m *Middleware) BreakerState(to transport.Addr) BreakerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.breakers[to]; ok {
		return b.state
	}
	return Closed
}

// Send applies the policy around the wrapped transport's Send.
func (m *Middleware) Send(ctx context.Context, to transport.Addr, body any) (any, error) {
	readOnly := m.isReadOnly(body)
	for attempt := 1; ; attempt++ {
		if !m.allow(to) {
			m.shortCircuits.Inc()
			return nil, fmt.Errorf("%w: %w (dest %s)", transport.ErrUnreachable, ErrOpen, to)
		}
		resp, err := m.attempt(ctx, to, body, readOnly)
		if err == nil || !transportFailure(err) {
			// The destination answered (possibly with an application
			// error): the path is healthy.
			m.onSuccess(to)
			return resp, err
		}
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			// The caller's own context expired; neither the breaker nor
			// a retry should see this as a destination fault.
			return nil, err
		}
		m.onFailure(to)
		if attempt >= m.pol.MaxAttempts || !retriable(err, readOnly) || ctx.Err() != nil {
			return nil, err
		}
		if serr := m.sleep(ctx, attempt); serr != nil {
			return nil, err
		}
		m.retries.Inc()
	}
}

// transportFailure reports whether err means the destination did not
// answer (as opposed to answering with an application error).
func transportFailure(err error) bool {
	return errors.Is(err, transport.ErrUnreachable) || errors.Is(err, context.DeadlineExceeded)
}

// retriable reports whether a transport failure may be retried.
// Unreachability is always safe — the request never reached a handler.
// A timed-out attempt may have executed remotely, so only read-only
// bodies retry it.
func retriable(err error, readOnly bool) bool {
	if errors.Is(err, transport.ErrUnreachable) {
		return true
	}
	return readOnly && errors.Is(err, context.DeadlineExceeded)
}

func (m *Middleware) isReadOnly(body any) bool {
	m.readMu.RLock()
	fn := m.readOnly
	m.readMu.RUnlock()
	return fn != nil && fn(body)
}

// attempt performs one policy-level attempt: a single send, or a
// hedged pair for read-only bodies when hedging is enabled.
func (m *Middleware) attempt(ctx context.Context, to transport.Addr, body any, readOnly bool) (any, error) {
	if readOnly && m.pol.HedgeDelay > 0 {
		return m.hedged(ctx, to, body)
	}
	return m.single(ctx, to, body)
}

// single is one wire-level send under the per-attempt timeout.
func (m *Middleware) single(ctx context.Context, to transport.Addr, body any) (any, error) {
	if m.pol.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.pol.AttemptTimeout)
		defer cancel()
	}
	return m.inner.Send(ctx, to, body)
}

// hedged races the primary send against up to MaxHedges duplicates,
// each launched HedgeDelay after the previous leg. The first
// conclusive answer — success or application error — wins and cancels
// the losers. Fast transport failures return to the retry loop
// immediately instead of waiting out the hedge timer.
func (m *Middleware) hedged(ctx context.Context, to transport.Addr, body any) (any, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		resp  any
		err   error
		hedge bool
	}
	results := make(chan outcome, m.pol.MaxHedges+1)
	launch := func(hedge bool) {
		go func() {
			resp, err := m.single(hctx, to, body)
			results <- outcome{resp, err, hedge}
		}()
	}

	launch(false)
	inFlight, launched := 1, 1
	timer := m.pol.Clock.After(m.pol.HedgeDelay)
	var firstErr error
	for {
		select {
		case o := <-results:
			inFlight--
			if o.err == nil || !transportFailure(o.err) {
				if o.hedge {
					m.hedgeWins.Inc()
				}
				return o.resp, o.err
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if inFlight == 0 {
				return nil, firstErr
			}
		case <-timer:
			timer = nil
			if launched <= m.pol.MaxHedges {
				m.hedges.Inc()
				launch(true)
				inFlight++
				launched++
				if launched <= m.pol.MaxHedges {
					timer = m.pol.Clock.After(m.pol.HedgeDelay)
				}
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// sleep blocks for the full-jitter backoff before retry n. It returns
// non-nil when the caller's context expired while waiting.
func (m *Middleware) sleep(ctx context.Context, retry int) error {
	window := m.pol.backoffCap(retry)
	if window <= 0 {
		return ctx.Err()
	}
	m.randMu.Lock()
	d := time.Duration(m.pol.Rand() * float64(window))
	m.randMu.Unlock()
	if d <= 0 {
		return ctx.Err()
	}
	select {
	case <-m.pol.Clock.After(d):
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// allow consults the destination's breaker (always true when breakers
// are disabled).
func (m *Middleware) allow(to transport.Addr) bool {
	if m.pol.Breaker.FailureThreshold <= 0 {
		return true
	}
	now := m.pol.Clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.breakers[to]
	if !ok {
		b = newBreaker(m.pol.Breaker)
		m.breakers[to] = b
	}
	return b.allow(now)
}

func (m *Middleware) onSuccess(to transport.Addr) {
	if m.pol.Breaker.FailureThreshold <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.breakers[to]; ok {
		b.onSuccess()
	}
}

func (m *Middleware) onFailure(to transport.Addr) {
	if m.pol.Breaker.FailureThreshold <= 0 {
		return
	}
	now := m.pol.Clock.Now()
	m.mu.Lock()
	b, ok := m.breakers[to]
	if !ok {
		b = newBreaker(m.pol.Breaker)
		m.breakers[to] = b
	}
	opened := b.onFailure(now)
	m.mu.Unlock()
	if opened {
		m.opens.Inc()
	}
}

// stateCount returns how many destinations' breakers currently sit in
// state s (feeds the per-state gauges).
func (m *Middleware) stateCount(s BreakerState) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, b := range m.breakers {
		if b.state == s {
			n++
		}
	}
	return n
}
