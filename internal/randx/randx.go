// Package randx provides seeded, deterministic samplers used by the
// synthetic workload generators: a bounded Zipf sampler and a discrete
// histogram sampler. All state is explicit; nothing reads global
// randomness.
package randx

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 1..N with P(rank k) ∝ 1/k^s, the distribution the
// paper invokes for keyword frequency ("a few keywords occur very
// often while many others occur rarely"). Unlike math/rand's Zipf it
// exposes the exact PMF for analytic cross-checks.
type Zipf struct {
	n   int
	s   float64
	cum []float64 // cumulative probabilities, cum[n-1] == 1
	rng *rand.Rand
}

// NewZipf builds a sampler over ranks 1..n with exponent s > 0.
func NewZipf(rng *rand.Rand, n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("randx: zipf needs n ≥ 1, got %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("randx: zipf exponent must be positive, got %g", s)
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
		cum[k-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // guard against rounding
	return &Zipf{n: n, s: s, cum: cum, rng: rng}, nil
}

// Sample draws a rank in [1, n].
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cum, u) + 1
}

// PMF returns P(rank = k).
func (z *Zipf) PMF(k int) float64 {
	if k < 1 || k > z.n {
		return 0
	}
	if k == 1 {
		return z.cum[0]
	}
	return z.cum[k-1] - z.cum[k-2]
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Histogram samples integer values with probabilities proportional to
// the supplied weights. It backs the keyword-set-size distribution of
// Figure 5.
type Histogram struct {
	values []int
	cum    []float64
	rng    *rand.Rand
}

// NewHistogram builds a sampler over values with the given
// (unnormalized, non-negative) weights. At least one weight must be
// positive.
func NewHistogram(rng *rand.Rand, values []int, weights []float64) (*Histogram, error) {
	if len(values) == 0 || len(values) != len(weights) {
		return nil, fmt.Errorf("randx: histogram needs matching non-empty values/weights, got %d/%d",
			len(values), len(weights))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("randx: invalid weight %g", w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("randx: all histogram weights are zero")
	}
	h := &Histogram{
		values: append([]int(nil), values...),
		cum:    make([]float64, len(weights)),
		rng:    rng,
	}
	run := 0.0
	for i, w := range weights {
		run += w / total
		h.cum[i] = run
	}
	h.cum[len(h.cum)-1] = 1
	return h, nil
}

// Sample draws one value.
func (h *Histogram) Sample() int {
	u := h.rng.Float64()
	return h.values[sort.SearchFloat64s(h.cum, u)]
}

// Mean returns the expectation of the distribution.
func (h *Histogram) Mean() float64 {
	mean := 0.0
	prev := 0.0
	for i, c := range h.cum {
		mean += float64(h.values[i]) * (c - prev)
		prev = c
	}
	return mean
}

// SampleWithoutReplacement draws k distinct items from population
// indices [0, n) using a partial Fisher-Yates shuffle. If k > n it
// returns all n indices.
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
