package randx

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewZipfValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipf(rng, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(rng, 10, 0); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := NewZipf(rng, 10, -1); err == nil {
		t.Error("s<0 accepted")
	}
}

func TestZipfPMFSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewZipf(rng, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for k := 1; k <= z.N(); k++ {
		p := z.PMF(k)
		if p <= 0 {
			t.Fatalf("PMF(%d) = %g", k, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sums to %g", sum)
	}
	if z.PMF(0) != 0 || z.PMF(101) != 0 {
		t.Error("out-of-range PMF nonzero")
	}
}

func TestZipfIsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z, _ := NewZipf(rng, 1000, 1.0)
	counts := make(map[int]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Sample()]++
	}
	// Rank 1 must be far more frequent than rank 100.
	if counts[1] < 10*counts[100] {
		t.Errorf("rank1=%d rank100=%d — not Zipf-skewed", counts[1], counts[100])
	}
	// Empirical frequency of rank 1 ≈ PMF(1).
	emp := float64(counts[1]) / n
	if math.Abs(emp-z.PMF(1)) > 0.01 {
		t.Errorf("empirical P(1)=%g, analytic %g", emp, z.PMF(1))
	}
}

func TestZipfDeterministicWithSeed(t *testing.T) {
	a, _ := NewZipf(rand.New(rand.NewSource(7)), 50, 1.2)
	b, _ := NewZipf(rand.New(rand.NewSource(7)), 50, 1.2)
	for i := 0; i < 100; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestHistogramValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewHistogram(rng, nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewHistogram(rng, []int{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewHistogram(rng, []int{1}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewHistogram(rng, []int{1, 2}, []float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewHistogram(rng, []int{1}, []float64{math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestHistogramMeanAndSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, err := NewHistogram(rng, []int{1, 2, 3}, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := h.Mean(), 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Mean = %g, want %g", got, want)
	}
	counts := map[int]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[h.Sample()]++
	}
	if counts[1]+counts[2]+counts[3] != n {
		t.Fatal("samples outside support")
	}
	if math.Abs(float64(counts[2])/n-0.5) > 0.02 {
		t.Errorf("P(2) empirical = %g, want 0.5", float64(counts[2])/n)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	got := SampleWithoutReplacement(rng, 10, 5)
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	// k > n clamps.
	if got := SampleWithoutReplacement(rng, 3, 10); len(got) != 3 {
		t.Errorf("clamp failed: %d", len(got))
	}
}
