package tcpnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

// Protocol v2 framing. A v2 client opens the connection with a 4-byte
// magic preamble so one listening port can serve both protocol
// generations: the server peeks at the first bytes of every accepted
// connection and falls back to the legacy serial gob loop when the
// magic is absent. The magic is followed by a uvarint-length sender
// address string — the connection's default identity, sent once so the
// per-request cost of Send's implicit From is one flag byte instead of
// a full address per frame.
//
// After the preamble the stream is a sequence of frames:
//
//	u32     length of the remainder (little-endian)
//	uvarint request ID (echoed verbatim on the response)
//	u8      kind: 0 request, 1 response, 2 error response
//	u16     wire type ID (0 on error responses)
//	        requests only: u8 from-flag — 0: the connection's default
//	        sender identity; 1: followed by an inline uvarint-length
//	        sender address string (SendFrom overrides)
//	...     message payload (kind 2: raw error string to end of frame)
//
// Frames from many in-flight RPCs interleave freely in both
// directions; the request ID is the only correlation.
const (
	frameKindRequest  = 0
	frameKindResponse = 1
	frameKindError    = 2

	// maxFrame bounds a single frame so a corrupt or hostile length
	// prefix cannot make a reader allocate without limit.
	maxFrame = 64 << 20

	// maxHandshakeAddr bounds the default-sender string in the
	// connection preamble.
	maxHandshakeAddr = 1 << 10
)

// wireMagic is the v2 connection preamble ("KSW2").
var wireMagic = [4]byte{'K', 'S', 'W', '2'}

// appendRequestFrame encodes a request frame for body into w and
// returns the codec (for its type name) — the caller charges
// byte-accounting per type. useDefault elides the sender address in
// favor of the connection's handshake identity. Fails when body's
// type has no registered wire codec.
func appendRequestFrame(w *wire.Writer, reqID uint64, from transport.Addr, useDefault bool, body any) (*wire.Codec, error) {
	c, ok := wire.Lookup(body)
	if !ok {
		return nil, fmt.Errorf("tcpnet: no wire codec for %T (missing RegisterTypes?)", body)
	}
	lenOff := w.Reserve4()
	w.Uvarint(reqID)
	w.Byte(frameKindRequest)
	w.U16(c.ID())
	if useDefault {
		w.Byte(0)
	} else {
		w.Byte(1)
		w.String(string(from))
	}
	c.Encode(w, body)
	w.PatchU32(lenOff, uint32(w.Len()-4))
	return c, nil
}

// appendResponseFrame encodes a success- or error-response frame.
func appendResponseFrame(w *wire.Writer, reqID uint64, body any, herr error) (*wire.Codec, error) {
	lenOff := w.Reserve4()
	w.Uvarint(reqID)
	if herr != nil {
		w.Byte(frameKindError)
		w.U16(0)
		w.Buf = append(w.Buf, herr.Error()...)
		w.PatchU32(lenOff, uint32(w.Len()-4))
		return nil, nil
	}
	c, ok := wire.Lookup(body)
	if !ok {
		// Encode the failure as an error frame so the caller is not
		// left waiting for a response that cannot be marshaled.
		w.Buf = w.Buf[:lenOff]
		return appendResponseFrame(w, reqID, nil,
			fmt.Errorf("tcpnet: no wire codec for response %T", body))
	}
	w.Byte(frameKindResponse)
	w.U16(c.ID())
	c.Encode(w, body)
	w.PatchU32(lenOff, uint32(w.Len()-4))
	return c, nil
}

// appendHandshake encodes the v2 connection preamble: magic plus the
// uvarint-length default sender identity.
func appendHandshake(w *wire.Writer, from transport.Addr) {
	w.Buf = append(w.Buf, wireMagic[:]...)
	w.String(string(from))
}

// readHandshakeFrom reads the default sender identity that follows the
// (already consumed) magic preamble.
func readHandshakeFrom(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > maxHandshakeAddr {
		return "", fmt.Errorf("tcpnet: handshake address of %d bytes exceeds limit %d", n, maxHandshakeAddr)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readFrame reads one length-prefixed frame into buf (reusing it when
// large enough) and returns the frame bytes past the length prefix.
func readFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24
	if n > maxFrame {
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// decodedFrame is one parsed frame.
type decodedFrame struct {
	reqID       uint64
	kind        byte
	codec       *wire.Codec // nil on error frames
	from        string      // requests with an inline sender only
	fromDefault bool        // requests: sender is the connection default
	body        any         // decoded message (error frames: nil)
	errS        string      // error frames: remote error text
}

// parseFrame decodes the frame bytes past the length prefix. Arbitrary
// input must error, never panic or over-allocate — the wire.Reader's
// sticky bounds checks guarantee it, and FuzzWireDecode enforces it.
func parseFrame(frame []byte) (decodedFrame, error) {
	var d decodedFrame
	r := wire.NewReader(frame)
	d.reqID = r.Uvarint()
	d.kind = r.Byte()
	typeID := r.U16()
	if err := r.Err(); err != nil {
		return d, err
	}
	switch d.kind {
	case frameKindError:
		d.errS = string(frame[len(frame)-r.Remaining():])
		return d, nil
	case frameKindRequest, frameKindResponse:
	default:
		return d, fmt.Errorf("tcpnet: unknown frame kind %d", d.kind)
	}
	if d.kind == frameKindRequest {
		switch flag := r.Byte(); flag {
		case 0:
			d.fromDefault = true
		case 1:
			d.from = r.String()
		default:
			if r.Err() == nil {
				return d, fmt.Errorf("tcpnet: unknown from-flag %d", flag)
			}
		}
	}
	c, ok := wire.LookupID(typeID)
	if !ok {
		return d, fmt.Errorf("tcpnet: unknown wire type ID %d", typeID)
	}
	d.codec = c
	body, err := c.Decode(r)
	if err != nil {
		return d, err
	}
	if err := r.Finish(); err != nil {
		return d, fmt.Errorf("tcpnet: %s frame: %w", c.Name(), err)
	}
	d.body = body
	return d, nil
}
