package tcpnet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

// responseWriteTimeout bounds a single response-frame write so one
// wedged client cannot park a pool worker forever.
const responseWriteTimeout = 30 * time.Second

type listener struct {
	net     *Network
	ln      net.Listener
	handler transport.Handler
	addr    transport.Addr
	ins     *instruments   // snapshotted at Bind: no n.mu on the accept path
	wg      sync.WaitGroup // accept loop, per-conn read loops, spill goroutines
	workers sync.WaitGroup // the bounded decode/handler pool
	closed  chan struct{}
	ctx     context.Context // cancelled by Close; parent of every handler call
	cancel  context.CancelFunc

	// work feeds the decode/handler pool. Submission never blocks: when
	// every worker is busy the frame is handled on a fresh goroutine
	// instead, because handlers issue nested RPCs (a T_QUERY handler
	// drives a whole search wave) and a strictly bounded pool could
	// distributed-deadlock with every worker waiting on RPCs that are
	// parked in some peer's full queue.
	work chan srvWork

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// srvWork is one request frame awaiting decode + dispatch.
type srvWork struct {
	sc    *srvConn
	frame []byte
}

// srvConn is the server end of one v2 connection: response frames from
// concurrent handlers interleave under wmu.
type srvConn struct {
	conn net.Conn
	wmu  sync.Mutex
	// defaultFrom is the sender identity from the connection handshake,
	// substituted for request frames that carry the default-from flag.
	defaultFrom transport.Addr
}

// Bind starts a TCP listener at addr (host:port; use ":0" for an
// ephemeral port and read the bound address from Node.Addr). The
// first Bind also fixes the network's default sender address reported
// to remote handlers by Send.
func (n *Network) Bind(addr transport.Addr, handler transport.Handler) (transport.Node, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, transport.ErrClosed
	}
	n.mu.Unlock()

	ln, err := net.Listen("tcp", string(addr))
	if err != nil {
		return nil, fmt.Errorf("tcpnet: bind %q: %w", addr, err)
	}
	l := &listener{
		net:     n,
		ln:      ln,
		handler: handler,
		addr:    transport.Addr(ln.Addr().String()),
		ins:     n.ins.Load(),
		closed:  make(chan struct{}),
		work:    make(chan srvWork, n.cfg.ListenWorkers*4),
		conns:   make(map[net.Conn]struct{}),
	}
	l.ctx, l.cancel = context.WithCancel(context.Background())
	n.mu.Lock()
	n.listeners = append(n.listeners, l)
	n.mu.Unlock()
	n.localAddr.CompareAndSwap(nil, &l.addr)

	for i := 0; i < n.cfg.ListenWorkers; i++ {
		l.workers.Add(1)
		go l.worker()
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

func (l *listener) Addr() transport.Addr { return l.addr }

func (l *listener) Close() error {
	select {
	case <-l.closed:
		return nil
	default:
	}
	close(l.closed)
	// Stop in-flight handlers: they run under l.ctx, so cancelling here
	// lets blocked handlers return and the wg.Wait below complete
	// instead of leaking goroutines (or deadlocking) during shutdown.
	l.cancel()
	err := l.ln.Close()
	// Unblock read loops parked in Read.
	l.mu.Lock()
	for conn := range l.conns {
		conn.Close()
	}
	l.mu.Unlock()
	// Frame submitters (read loops and spill goroutines) must be done
	// before the work channel closes and the pool drains.
	l.wg.Wait()
	close(l.work)
	l.workers.Wait()
	return err
}

func (l *listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		l.wg.Add(1)
		go l.serveConn(conn)
	}
}

// serveConn sniffs the first bytes of an accepted connection: the v2
// magic selects the multiplexed binary protocol, anything else falls
// back to the legacy serial gob loop. Both generations share the port,
// so a fleet can change its -wire mode one process at a time.
func (l *listener) serveConn(conn net.Conn) {
	defer l.wg.Done()
	defer conn.Close()
	l.mu.Lock()
	if closedLocked := func() bool {
		select {
		case <-l.closed:
			return true
		default:
			return false
		}
	}(); closedLocked {
		l.mu.Unlock()
		return
	}
	l.conns[conn] = struct{}{}
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
	}()

	br := bufio.NewReaderSize(conn, 32<<10)
	magic, err := br.Peek(len(wireMagic))
	if err != nil {
		return
	}
	if bytes.Equal(magic, wireMagic[:]) {
		br.Discard(len(wireMagic))
		defaultFrom, err := readHandshakeFrom(br)
		if err != nil {
			return
		}
		l.serveV2(&srvConn{conn: conn, defaultFrom: transport.Addr(defaultFrom)}, br)
		return
	}
	l.serveGob(conn, br)
}

// serveV2 is the per-connection read loop of the binary protocol: it
// only splits the stream into frames; decoding and handling run on the
// listener's worker pool so one connection's requests proceed in
// parallel (the gob loop is serial per connection).
func (l *listener) serveV2(sc *srvConn, br *bufio.Reader) {
	for {
		frame, err := readFrame(br, nil) // workers own the frame; no reuse
		if err != nil {
			return
		}
		w := srvWork{sc: sc, frame: frame}
		select {
		case l.work <- w:
		default:
			// Pool saturated: spill onto a fresh goroutine rather than
			// queue behind handlers that may be waiting on nested RPCs.
			l.wg.Add(1)
			go func() {
				defer l.wg.Done()
				l.handleFrame(w)
			}()
		}
		select {
		case <-l.closed:
			return
		default:
		}
	}
}

func (l *listener) worker() {
	defer l.workers.Done()
	for w := range l.work {
		l.handleFrame(w)
	}
}

// handleFrame decodes one request frame, runs the handler and writes
// the response frame.
func (l *listener) handleFrame(w srvWork) {
	ins := l.ins
	d, err := parseFrame(w.frame)
	if err != nil || d.kind != frameKindRequest {
		// Corrupt stream or a response frame sent to a server; the
		// connection cannot be resynchronized.
		if err == nil {
			err = fmt.Errorf("tcpnet: unexpected frame kind %d", d.kind)
		}
		w.sc.conn.Close()
		return
	}
	ins.recvBytes.Add(d.codec.Name(), uint64(len(w.frame))+4)
	ins.handled.Inc(d.codec.Name())

	from := transport.Addr(d.from)
	if d.fromDefault {
		from = w.sc.defaultFrom
	}
	body, herr := l.handler(l.ctx, from, d.body)
	out := wire.GetWriter()
	defer wire.PutWriter(out)
	c, _ := appendResponseFrame(out, d.reqID, body, herr)
	name := "error"
	if c != nil {
		name = c.Name()
	}

	w.sc.wmu.Lock()
	_ = w.sc.conn.SetWriteDeadline(time.Now().Add(responseWriteTimeout))
	_, werr := w.sc.conn.Write(out.Buf)
	w.sc.wmu.Unlock()
	if werr != nil {
		w.sc.conn.Close()
		return
	}
	ins.sentBytes.Add(name, uint64(out.Len()))
}

// serveGob is the legacy protocol: serial request/response exchanges,
// gob-encoded, one goroutine per connection. Kept behind the magic
// sniff for -wire gob clients.
func (l *listener) serveGob(conn net.Conn, br *bufio.Reader) {
	ins := l.ins
	cc := &countingConn{Conn: conn}
	// The sniffed bytes already sit in br, so reads must go through it;
	// countingRd charges them to the connection's receive cell.
	dec := gob.NewDecoder(&countingRd{r: br, cell: &cc.recv})
	enc := gob.NewEncoder(cc)
	for {
		sent0, recv0 := cc.sent.Load(), cc.recv.Load()
		var req request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupt stream
		}
		name := fmt.Sprintf("%T", req.Body)
		ins.handled.Inc(name)
		var resp response
		body, err := l.handler(l.ctx, transport.Addr(req.From), req.Body)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Body = body
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		// The loop is serial, so the cells' deltas over the exchange
		// are exactly this request + response.
		ins.recvBytes.Add(name, cc.recv.Load()-recv0)
		ins.sentBytes.Add(name, cc.sent.Load()-sent0)
		select {
		case <-l.closed:
			return
		default:
		}
	}
}
