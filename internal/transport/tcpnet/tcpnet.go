// Package tcpnet implements transport.Network over real TCP
// connections with gob-encoded request/response frames. It lets the
// same DHT and keyword-index wiring that runs in the in-memory
// simulator run as separate OS processes (see cmd/ksnode).
package tcpnet

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/p2pkeyword/keysearch/internal/transport"
)

// envelope types exchanged on the wire. Body values must be registered
// via transport.RegisterType.
type request struct {
	From string
	Body any
}

type response struct {
	Body any
	Err  string
}

// maxIdlePerDest bounds the idle client connections kept per
// destination.
const maxIdlePerDest = 4

// Network is a TCP-backed transport.Network. Each in-flight request
// owns a connection exclusively (taken from a per-destination idle
// pool, or freshly dialed), so a handler that itself issues requests —
// even back to the same destination — can never deadlock on a shared
// connection.
type Network struct {
	mu        sync.Mutex
	closed    bool
	idle      map[transport.Addr][]*clientConn
	listeners []*listener
}

var _ transport.Network = (*Network)(nil)

// New returns an empty TCP network.
func New() *Network {
	return &Network{idle: make(map[transport.Addr][]*clientConn)}
}

type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

type listener struct {
	net     *Network
	ln      net.Listener
	handler transport.Handler
	addr    transport.Addr
	wg      sync.WaitGroup
	closed  chan struct{}

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// Bind starts a TCP listener at addr (host:port; use ":0" for an
// ephemeral port and read the bound address from Node.Addr).
func (n *Network) Bind(addr transport.Addr, handler transport.Handler) (transport.Node, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, transport.ErrClosed
	}
	n.mu.Unlock()

	ln, err := net.Listen("tcp", string(addr))
	if err != nil {
		return nil, fmt.Errorf("tcpnet: bind %q: %w", addr, err)
	}
	l := &listener{
		net:     n,
		ln:      ln,
		handler: handler,
		addr:    transport.Addr(ln.Addr().String()),
		closed:  make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	n.mu.Lock()
	n.listeners = append(n.listeners, l)
	n.mu.Unlock()

	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

func (l *listener) Addr() transport.Addr { return l.addr }

func (l *listener) Close() error {
	select {
	case <-l.closed:
		return nil
	default:
	}
	close(l.closed)
	err := l.ln.Close()
	// Unblock serveConn goroutines parked in Read.
	l.mu.Lock()
	for conn := range l.conns {
		conn.Close()
	}
	l.mu.Unlock()
	l.wg.Wait()
	return err
}

func (l *listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		l.wg.Add(1)
		go l.serveConn(conn)
	}
}

func (l *listener) serveConn(conn net.Conn) {
	defer l.wg.Done()
	defer conn.Close()
	l.mu.Lock()
	l.conns[conn] = struct{}{}
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupt stream
		}
		var resp response
		body, err := l.handler(context.Background(), transport.Addr(req.From), req.Body)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Body = body
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		select {
		case <-l.closed:
			return
		default:
		}
	}
}

// Send delivers body to the node listening at 'to' and returns its
// response. An idle pooled connection may have been closed by the peer
// between requests, so one retry on a freshly dialed connection covers
// that race.
func (n *Network) Send(ctx context.Context, to transport.Addr, body any) (any, error) {
	resp, err, retriable := n.sendOnce(ctx, to, body, false)
	if err != nil && retriable {
		resp, err, _ = n.sendOnce(ctx, to, body, true)
	}
	return resp, err
}

// sendOnce performs one request/response exchange on an exclusively
// owned connection. retriable reports that the failure happened on a
// reused idle connection before any fresh dial was attempted.
func (n *Network) sendOnce(ctx context.Context, to transport.Addr, body any, fresh bool) (resp any, err error, retriable bool) {
	cc, reused, err := n.acquire(ctx, to, fresh)
	if err != nil {
		return nil, err, false
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = cc.conn.SetDeadline(deadline)
	} else {
		_ = cc.conn.SetDeadline(time.Time{})
	}
	if err := cc.enc.Encode(&request{Body: body}); err != nil {
		cc.conn.Close()
		return nil, fmt.Errorf("send to %q: %w", to, transport.ErrUnreachable), reused
	}
	var r response
	if err := cc.dec.Decode(&r); err != nil {
		cc.conn.Close()
		return nil, fmt.Errorf("recv from %q: %w", to, transport.ErrUnreachable), reused
	}
	n.release(to, cc)
	if r.Err != "" {
		return nil, fmt.Errorf("%w: %s", transport.ErrRemote, r.Err), false
	}
	return r.Body, nil, false
}

// acquire returns an exclusively owned connection to 'to': an idle
// pooled one (unless fresh is set) or a new dial.
func (n *Network) acquire(ctx context.Context, to transport.Addr, fresh bool) (*clientConn, bool, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, false, transport.ErrClosed
	}
	if !fresh {
		if pool := n.idle[to]; len(pool) > 0 {
			cc := pool[len(pool)-1]
			n.idle[to] = pool[:len(pool)-1]
			n.mu.Unlock()
			return cc, true, nil
		}
	}
	n.mu.Unlock()

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		return nil, false, fmt.Errorf("dial %q: %w", to, transport.ErrUnreachable)
	}
	return &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, false, nil
}

// release returns a healthy connection to the idle pool (or closes it
// when the pool is full or the network closed).
func (n *Network) release(to transport.Addr, cc *clientConn) {
	n.mu.Lock()
	if !n.closed && len(n.idle[to]) < maxIdlePerDest {
		n.idle[to] = append(n.idle[to], cc)
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	cc.conn.Close()
}

// Close shuts down all listeners and pooled connections.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	listeners := n.listeners
	idle := n.idle
	n.idle = make(map[transport.Addr][]*clientConn)
	n.mu.Unlock()

	var firstErr error
	for _, l := range listeners {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, pool := range idle {
		for _, cc := range pool {
			cc.conn.Close()
		}
	}
	return firstErr
}
