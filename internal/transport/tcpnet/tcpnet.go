// Package tcpnet implements transport.Network over real TCP
// connections with gob-encoded request/response frames. It lets the
// same DHT and keyword-index wiring that runs in the in-memory
// simulator run as separate OS processes (see cmd/ksnode).
package tcpnet

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// envelope types exchanged on the wire. Body values must be registered
// via transport.RegisterType.
type request struct {
	From string
	Body any
}

type response struct {
	Body any
	Err  string
}

// maxIdlePerDest bounds the idle client connections kept per
// destination.
const maxIdlePerDest = 4

// Network is a TCP-backed transport.Network. Each in-flight request
// owns a connection exclusively (taken from a per-destination idle
// pool, or freshly dialed), so a handler that itself issues requests —
// even back to the same destination — can never deadlock on a shared
// connection.
type Network struct {
	mu        sync.Mutex
	closed    bool
	idle      map[transport.Addr][]*clientConn
	listeners []*listener

	// Telemetry instruments (nil without SetTelemetry).
	metRequests *telemetry.CounterVec // transport_tcp_requests_total{type}
	metHandled  *telemetry.CounterVec // transport_tcp_handled_total{type}
	metFailures *telemetry.Counter    // transport_tcp_failures_total
	metLatency  *telemetry.Histogram  // transport_tcp_rpc_duration_ns
	metSent     *telemetry.Counter    // transport_tcp_bytes_sent_total
	metRecv     *telemetry.Counter    // transport_tcp_bytes_recv_total
}

var _ transport.Network = (*Network)(nil)

// New returns an empty TCP network.
func New() *Network {
	return &Network{idle: make(map[transport.Addr][]*clientConn)}
}

// SetTelemetry wires the network's traffic accounting into reg:
// requests sent and handled per body type, failed exchanges, RPC
// round-trip latency, and wire bytes in each direction. Call before
// Bind/Send so every connection is counted; a nil registry disables
// the instrumentation for connections opened afterwards.
func (n *Network) SetTelemetry(reg *telemetry.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if reg == nil {
		n.metRequests, n.metHandled, n.metFailures = nil, nil, nil
		n.metLatency, n.metSent, n.metRecv = nil, nil, nil
		return
	}
	n.metRequests = reg.CounterVec("transport_tcp_requests_total", "type")
	n.metHandled = reg.CounterVec("transport_tcp_handled_total", "type")
	n.metFailures = reg.Counter("transport_tcp_failures_total")
	n.metLatency = reg.Histogram("transport_tcp_rpc_duration_ns", telemetry.DefaultLatencyBuckets)
	n.metSent = reg.Counter("transport_tcp_bytes_sent_total")
	n.metRecv = reg.Counter("transport_tcp_bytes_recv_total")
}

// countingConn charges wire bytes to the network's byte counters. The
// nil-safe counters make an uninstrumented wrap free apart from the
// two method hops.
type countingConn struct {
	net.Conn
	sent, recv *telemetry.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	nr, err := c.Conn.Read(p)
	c.recv.Add(uint64(nr))
	return nr, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	nw, err := c.Conn.Write(p)
	c.sent.Add(uint64(nw))
	return nw, err
}

type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

type listener struct {
	net     *Network
	ln      net.Listener
	handler transport.Handler
	addr    transport.Addr
	wg      sync.WaitGroup
	closed  chan struct{}
	ctx     context.Context // cancelled by Close; parent of every handler call
	cancel  context.CancelFunc

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// Bind starts a TCP listener at addr (host:port; use ":0" for an
// ephemeral port and read the bound address from Node.Addr).
func (n *Network) Bind(addr transport.Addr, handler transport.Handler) (transport.Node, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, transport.ErrClosed
	}
	n.mu.Unlock()

	ln, err := net.Listen("tcp", string(addr))
	if err != nil {
		return nil, fmt.Errorf("tcpnet: bind %q: %w", addr, err)
	}
	l := &listener{
		net:     n,
		ln:      ln,
		handler: handler,
		addr:    transport.Addr(ln.Addr().String()),
		closed:  make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	l.ctx, l.cancel = context.WithCancel(context.Background())
	n.mu.Lock()
	n.listeners = append(n.listeners, l)
	n.mu.Unlock()

	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

func (l *listener) Addr() transport.Addr { return l.addr }

func (l *listener) Close() error {
	select {
	case <-l.closed:
		return nil
	default:
	}
	close(l.closed)
	// Stop in-flight handlers: they run under l.ctx, so cancelling here
	// lets blocked handlers return and the wg.Wait below complete
	// instead of leaking goroutines (or deadlocking) during shutdown.
	l.cancel()
	err := l.ln.Close()
	// Unblock serveConn goroutines parked in Read.
	l.mu.Lock()
	for conn := range l.conns {
		conn.Close()
	}
	l.mu.Unlock()
	l.wg.Wait()
	return err
}

func (l *listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		l.net.mu.Lock()
		wrapped := &countingConn{Conn: conn, sent: l.net.metSent, recv: l.net.metRecv}
		l.net.mu.Unlock()
		l.wg.Add(1)
		go l.serveConn(wrapped)
	}
}

func (l *listener) serveConn(conn net.Conn) {
	defer l.wg.Done()
	defer conn.Close()
	l.mu.Lock()
	l.conns[conn] = struct{}{}
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
	}()
	l.net.mu.Lock()
	handled := l.net.metHandled
	l.net.mu.Unlock()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupt stream
		}
		if handled != nil {
			handled.Inc(fmt.Sprintf("%T", req.Body))
		}
		var resp response
		body, err := l.handler(l.ctx, transport.Addr(req.From), req.Body)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Body = body
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		select {
		case <-l.closed:
			return
		default:
		}
	}
}

// Send delivers body to the node listening at 'to' and returns its
// response. An idle pooled connection may have been closed by the peer
// between requests, so one retry on a freshly dialed connection covers
// that race.
func (n *Network) Send(ctx context.Context, to transport.Addr, body any) (any, error) {
	n.mu.Lock()
	metRequests, metFailures, metLatency := n.metRequests, n.metFailures, n.metLatency
	n.mu.Unlock()
	if metRequests != nil {
		metRequests.Inc(fmt.Sprintf("%T", body))
	}
	var started time.Time
	if metLatency != nil {
		started = time.Now()
	}
	resp, err, retriable := n.sendOnce(ctx, to, body, false)
	if err != nil && retriable {
		resp, err, _ = n.sendOnce(ctx, to, body, true)
	}
	if err != nil {
		metFailures.Inc()
	} else if metLatency != nil {
		metLatency.ObserveSince(started)
	}
	return resp, err
}

// sendOnce performs one request/response exchange on an exclusively
// owned connection. retriable reports that the failure happened on a
// reused idle connection before any fresh dial was attempted.
func (n *Network) sendOnce(ctx context.Context, to transport.Addr, body any, fresh bool) (resp any, err error, retriable bool) {
	cc, reused, err := n.acquire(ctx, to, fresh)
	if err != nil {
		return nil, err, false
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = cc.conn.SetDeadline(deadline)
	} else {
		_ = cc.conn.SetDeadline(time.Time{})
	}
	if err := cc.enc.Encode(&request{Body: body}); err != nil {
		cc.conn.Close()
		return nil, fmt.Errorf("send to %q: %w", to, transport.ErrUnreachable), reused
	}
	var r response
	if err := cc.dec.Decode(&r); err != nil {
		cc.conn.Close()
		return nil, fmt.Errorf("recv from %q: %w", to, transport.ErrUnreachable), reused
	}
	n.release(to, cc)
	if r.Err != "" {
		return nil, fmt.Errorf("%w: %s", transport.ErrRemote, r.Err), false
	}
	return r.Body, nil, false
}

// acquire returns an exclusively owned connection to 'to': an idle
// pooled one (unless fresh is set) or a new dial.
func (n *Network) acquire(ctx context.Context, to transport.Addr, fresh bool) (*clientConn, bool, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, false, transport.ErrClosed
	}
	if !fresh {
		if pool := n.idle[to]; len(pool) > 0 {
			cc := pool[len(pool)-1]
			n.idle[to] = pool[:len(pool)-1]
			n.mu.Unlock()
			return cc, true, nil
		}
	}
	n.mu.Unlock()

	var d net.Dialer
	raw, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		return nil, false, fmt.Errorf("dial %q: %w", to, transport.ErrUnreachable)
	}
	n.mu.Lock()
	conn := &countingConn{Conn: raw, sent: n.metSent, recv: n.metRecv}
	n.mu.Unlock()
	return &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, false, nil
}

// release returns a healthy connection to the idle pool (or closes it
// when the pool is full or the network closed).
func (n *Network) release(to transport.Addr, cc *clientConn) {
	n.mu.Lock()
	if !n.closed && len(n.idle[to]) < maxIdlePerDest {
		n.idle[to] = append(n.idle[to], cc)
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	cc.conn.Close()
}

// Close shuts down all listeners and pooled connections.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	listeners := n.listeners
	idle := n.idle
	n.idle = make(map[transport.Addr][]*clientConn)
	n.mu.Unlock()

	var firstErr error
	for _, l := range listeners {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, pool := range idle {
		for _, cc := range pool {
			cc.conn.Close()
		}
	}
	return firstErr
}
