// Package tcpnet implements transport.Network over real TCP so the
// same DHT and keyword-index wiring that runs in the in-memory
// simulator can run as separate OS processes (see cmd/ksnode).
//
// Two wire protocols share every listening port:
//
//   - binary (protocol v2, default): hand-rolled length-prefixed
//     frames (package wire) over one persistent connection per peer,
//     multiplexed by request ID, handled by a listener-side worker
//     pool. See frame.go for the layout.
//   - gob (legacy): self-describing gob envelopes, one exclusively
//     owned pooled connection per in-flight RPC, serial handling per
//     connection. Kept behind Config.Wire for staged rollouts and for
//     answer-level equivalence tests against the binary stack.
//
// The server distinguishes the generations by the v2 magic preamble,
// so mixed fleets interoperate; Config.Wire only selects what this
// process sends.
package tcpnet

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Wire mode names accepted by Config.Wire (and the CLIs' -wire flag).
const (
	WireBinary = "binary"
	WireGob    = "gob"
)

// Config tunes a Network. The zero value selects the binary wire
// protocol and a CPU-proportional listener worker pool.
type Config struct {
	// Wire selects the client protocol: WireBinary (default) or
	// WireGob. Servers always accept both.
	Wire string
	// ListenWorkers sizes each listener's decode/handler pool
	// (default: 2×GOMAXPROCS, minimum 4). The pool bounds steady-state
	// handler concurrency; overflow beyond it spills to fresh
	// goroutines so nested RPCs issued by handlers cannot deadlock a
	// saturated pool.
	ListenWorkers int
}

func (c Config) withDefaults() (Config, error) {
	switch c.Wire {
	case "":
		c.Wire = WireBinary
	case WireBinary, WireGob:
	default:
		return c, fmt.Errorf("tcpnet: unknown wire mode %q (want %q or %q)", c.Wire, WireBinary, WireGob)
	}
	if c.ListenWorkers <= 0 {
		c.ListenWorkers = 2 * runtime.GOMAXPROCS(0)
		if c.ListenWorkers < 4 {
			c.ListenWorkers = 4
		}
	}
	return c, nil
}

// envelope types of the legacy gob protocol.
type request struct {
	From string
	Body any
}

type response struct {
	Body any
	Err  string
}

// maxIdlePerDest bounds the idle gob client connections kept per
// destination (the binary protocol keeps one mux per destination
// instead).
const maxIdlePerDest = 4

// instruments is an immutable snapshot of the network's telemetry.
// Listeners and send paths load it once through an atomic pointer —
// never via n.mu, which used to be taken once per accepted connection
// just to read these fields. All fields are nil-safe; the zero
// snapshot (telemetry disabled) simply discards updates.
type instruments struct {
	requests  *telemetry.CounterVec // transport_tcp_requests_total{type}
	handled   *telemetry.CounterVec // transport_tcp_handled_total{type}
	failures  *telemetry.Counter    // transport_tcp_failures_total
	latency   *telemetry.Histogram  // transport_tcp_rpc_duration_ns
	sentBytes *telemetry.CounterVec // transport_tcp_bytes_sent_total{type}
	recvBytes *telemetry.CounterVec // transport_tcp_bytes_recv_total{type}
}

var noInstruments = &instruments{}

// Network is a TCP-backed transport.Network.
type Network struct {
	cfg       Config
	ins       atomic.Pointer[instruments]
	localAddr atomic.Pointer[transport.Addr] // first bound listener; Send's default from

	mu        sync.Mutex
	closed    bool
	idle      map[transport.Addr][]*clientConn // gob: pooled exclusive connections
	muxes     map[transport.Addr]*muxEntry     // binary: one shared mux per peer
	listeners []*listener
}

var _ transport.Network = (*Network)(nil)

// New returns a TCP network with default configuration (binary wire).
func New() *Network {
	n, _ := NewWithConfig(Config{})
	return n
}

// NewWithConfig returns a TCP network tuned by cfg.
func NewWithConfig(cfg Config) (*Network, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:   cfg,
		idle:  make(map[transport.Addr][]*clientConn),
		muxes: make(map[transport.Addr]*muxEntry),
	}
	n.ins.Store(noInstruments)
	return n, nil
}

// SetTelemetry wires the network's traffic accounting into reg:
// requests sent and handled per body type, failed exchanges, RPC
// round-trip latency, and wire bytes in each direction per message
// type. Call before Bind/Send so every connection is counted; a nil
// registry disables the instrumentation for activity afterwards.
func (n *Network) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		n.ins.Store(noInstruments)
		return
	}
	n.ins.Store(&instruments{
		requests:  reg.CounterVec("transport_tcp_requests_total", "type"),
		handled:   reg.CounterVec("transport_tcp_handled_total", "type"),
		failures:  reg.Counter("transport_tcp_failures_total"),
		latency:   reg.Histogram("transport_tcp_rpc_duration_ns", telemetry.DefaultLatencyBuckets),
		sentBytes: reg.CounterVec("transport_tcp_bytes_sent_total", "type"),
		recvBytes: reg.CounterVec("transport_tcp_bytes_recv_total", "type"),
	})
}

// countingConn tallies wire bytes into per-connection cells. The gob
// codec offers no per-message byte hook, so the per-type accounting
// reads the cells before and after an exchange — exact because gob
// connections are exclusively owned (client) or serial (server).
type countingConn struct {
	net.Conn
	sent, recv atomic.Uint64
}

func (c *countingConn) Read(p []byte) (int, error) {
	nr, err := c.Conn.Read(p)
	c.recv.Add(uint64(nr))
	return nr, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	nw, err := c.Conn.Write(p)
	c.sent.Add(uint64(nw))
	return nw, err
}

// countingRd charges reads that must go through an existing
// bufio.Reader (the server's protocol sniff) to a byte cell.
type countingRd struct {
	r    io.Reader
	cell *atomic.Uint64
}

func (c *countingRd) Read(p []byte) (int, error) {
	nr, err := c.r.Read(p)
	c.cell.Add(uint64(nr))
	return nr, err
}

type clientConn struct {
	conn *countingConn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Send delivers body to the node listening at 'to' and returns its
// response. The handler on the far side observes this network's first
// bound listener address as the sender (empty when nothing is bound) —
// use SendFrom to report a different identity.
func (n *Network) Send(ctx context.Context, to transport.Addr, body any) (any, error) {
	var from transport.Addr
	if p := n.localAddr.Load(); p != nil {
		from = *p
	}
	return n.SendFrom(ctx, from, to, body)
}

// SendFrom delivers body to 'to', reporting 'from' to the remote
// handler (inmem.Network parity).
func (n *Network) SendFrom(ctx context.Context, from, to transport.Addr, body any) (any, error) {
	ins := n.ins.Load()
	ins.requests.Inc(fmt.Sprintf("%T", body))
	var started time.Time
	if ins.latency != nil {
		started = time.Now()
	}
	var resp any
	var err error
	if n.cfg.Wire == WireGob {
		resp, err = n.sendGob(ctx, from, to, body)
	} else {
		resp, err = n.sendBinary(ctx, from, to, body)
	}
	if err != nil {
		ins.failures.Inc()
	} else if ins.latency != nil {
		ins.latency.ObserveSince(started)
	}
	return resp, err
}

// retriableSendErr reports whether a failed exchange is worth one
// retry on a fresh connection: only transport-level failures qualify
// (the reused-connection race), never remote application errors or
// the caller's own cancellation.
func retriableSendErr(ctx context.Context, err error) bool {
	return ctx.Err() == nil && errors.Is(err, transport.ErrUnreachable)
}

// sendGob is the legacy client path: one exchange on an exclusively
// owned connection, with one retry when a reused idle connection turns
// out to have been closed by the peer between requests.
func (n *Network) sendGob(ctx context.Context, from, to transport.Addr, body any) (any, error) {
	resp, err, retriable := n.sendOnceGob(ctx, from, to, body, false)
	if err != nil && retriable && retriableSendErr(ctx, err) {
		resp, err, _ = n.sendOnceGob(ctx, from, to, body, true)
	}
	return resp, err
}

// sendOnceGob performs one request/response exchange. retriable
// reports that the failure happened on a reused idle connection before
// any fresh dial was attempted.
func (n *Network) sendOnceGob(ctx context.Context, from, to transport.Addr, body any, fresh bool) (resp any, err error, retriable bool) {
	ins := n.ins.Load()
	cc, reused, err := n.acquire(ctx, to, fresh)
	if err != nil {
		return nil, err, false
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = cc.conn.SetDeadline(deadline)
	} else {
		_ = cc.conn.SetDeadline(time.Time{})
	}
	sent0, recv0 := cc.conn.sent.Load(), cc.conn.recv.Load()
	if err := cc.enc.Encode(&request{From: string(from), Body: body}); err != nil {
		cc.conn.Close()
		return nil, fmt.Errorf("send to %q: %w", to, transport.ErrUnreachable), reused
	}
	var r response
	if err := cc.dec.Decode(&r); err != nil {
		cc.conn.Close()
		return nil, fmt.Errorf("recv from %q: %w", to, transport.ErrUnreachable), reused
	}
	name := fmt.Sprintf("%T", body)
	ins.sentBytes.Add(name, cc.conn.sent.Load()-sent0)
	ins.recvBytes.Add(name, cc.conn.recv.Load()-recv0)
	n.release(to, cc)
	if r.Err != "" {
		return nil, fmt.Errorf("%w: %s", transport.ErrRemote, r.Err), false
	}
	return r.Body, nil, false
}

// acquire returns an exclusively owned gob connection to 'to': an idle
// pooled one (unless fresh is set) or a new dial.
func (n *Network) acquire(ctx context.Context, to transport.Addr, fresh bool) (*clientConn, bool, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, false, transport.ErrClosed
	}
	if !fresh {
		if pool := n.idle[to]; len(pool) > 0 {
			cc := pool[len(pool)-1]
			n.idle[to] = pool[:len(pool)-1]
			n.mu.Unlock()
			return cc, true, nil
		}
	}
	n.mu.Unlock()

	var d net.Dialer
	raw, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		return nil, false, fmt.Errorf("dial %q: %w", to, transport.ErrUnreachable)
	}
	conn := &countingConn{Conn: raw}
	return &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, false, nil
}

// release returns a healthy gob connection to the idle pool (or closes
// it when the pool is full or the network closed).
func (n *Network) release(to transport.Addr, cc *clientConn) {
	n.mu.Lock()
	if !n.closed && len(n.idle[to]) < maxIdlePerDest {
		n.idle[to] = append(n.idle[to], cc)
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	cc.conn.Close()
}

// Close shuts down all listeners, pooled connections and muxes.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	listeners := n.listeners
	idle := n.idle
	muxes := n.muxes
	n.idle = make(map[transport.Addr][]*clientConn)
	n.muxes = make(map[transport.Addr]*muxEntry)
	n.mu.Unlock()

	var firstErr error
	for _, l := range listeners {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, pool := range idle {
		for _, cc := range pool {
			cc.conn.Close()
		}
	}
	for _, e := range muxes {
		if e.mc != nil {
			e.mc.fail(transport.ErrClosed)
		}
	}
	return firstErr
}
