package tcpnet

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

// muxConn is one persistent v2 connection to a destination, shared by
// every in-flight RPC to that peer: writers interleave request frames
// under wmu, and a single reader goroutine demuxes response frames to
// the waiting callers by request ID. Contrast with the gob path, where
// each RPC owns a pooled connection exclusively.
type muxConn struct {
	net  *Network
	to   transport.Addr
	conn net.Conn
	// defaultFrom is the sender identity declared in the connection
	// handshake; frames whose From matches it carry a one-byte flag
	// instead of the address.
	defaultFrom transport.Addr

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan muxResult
	dead    bool
	err     error
}

type muxResult struct {
	body any
	err  error
}

// muxEntry makes concurrent senders to one destination share a single
// dial: the first caller performs it under once, the rest wait.
type muxEntry struct {
	once sync.Once
	mc   *muxConn
	err  error
}

// mux returns the live mux for 'to', dialing on first use.
// wasShared reports that the mux existed before this call — a failure
// on a shared mux may be the reused-connection race (the peer closed
// an idle connection) and is worth one retry on a fresh dial, matching
// the gob path's retry contract.
func (n *Network) mux(ctx context.Context, to transport.Addr) (mc *muxConn, wasShared bool, err error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, false, transport.ErrClosed
	}
	e, ok := n.muxes[to]
	if !ok {
		e = &muxEntry{}
		n.muxes[to] = e
	}
	n.mu.Unlock()

	dialed := false
	e.once.Do(func() {
		dialed = true
		e.mc, e.err = n.dialMux(ctx, to)
		if e.err != nil {
			n.dropMux(to, e)
		}
	})
	return e.mc, ok && !dialed, e.err
}

// dropMux removes e from the mux table if it is still the registered
// entry, so the next send re-dials.
func (n *Network) dropMux(to transport.Addr, e *muxEntry) {
	n.mu.Lock()
	if n.muxes[to] == e {
		delete(n.muxes, to)
	}
	n.mu.Unlock()
}

func (n *Network) dialMux(ctx context.Context, to transport.Addr) (*muxConn, error) {
	var d net.Dialer
	raw, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		return nil, fmt.Errorf("dial %q: %w", to, transport.ErrUnreachable)
	}
	var defaultFrom transport.Addr
	if a := n.localAddr.Load(); a != nil {
		defaultFrom = *a
	}
	hs := wire.GetWriter()
	appendHandshake(hs, defaultFrom)
	_, werr := raw.Write(hs.Buf)
	wire.PutWriter(hs)
	if werr != nil {
		raw.Close()
		return nil, fmt.Errorf("dial %q: %w", to, transport.ErrUnreachable)
	}
	mc := &muxConn{
		net:         n,
		to:          to,
		conn:        raw,
		defaultFrom: defaultFrom,
		pending:     make(map[uint64]chan muxResult),
	}
	go mc.readLoop()
	return mc, nil
}

// roundTrip performs one RPC over the mux. Frame writes set a deadline
// from ctx (or none) so a wedged peer cannot block the writer forever
// while holding wmu.
func (mc *muxConn) roundTrip(ctx context.Context, from transport.Addr, body any) (any, error) {
	ins := mc.net.ins.Load()

	ch := make(chan muxResult, 1)
	mc.mu.Lock()
	if mc.dead {
		err := mc.err
		mc.mu.Unlock()
		return nil, err
	}
	mc.nextID++
	id := mc.nextID
	mc.pending[id] = ch
	mc.mu.Unlock()

	w := wire.GetWriter()
	c, err := appendRequestFrame(w, id, from, from == mc.defaultFrom, body)
	if err != nil {
		wire.PutWriter(w)
		mc.deregister(id)
		return nil, err
	}
	frameLen := uint64(w.Len())

	mc.wmu.Lock()
	if deadline, ok := ctx.Deadline(); ok {
		_ = mc.conn.SetWriteDeadline(deadline)
	} else {
		_ = mc.conn.SetWriteDeadline(time.Time{})
	}
	_, werr := mc.conn.Write(w.Buf)
	mc.wmu.Unlock()
	wire.PutWriter(w)
	if werr != nil {
		mc.fail(fmt.Errorf("send to %q: %w", mc.to, transport.ErrUnreachable))
		mc.deregister(id)
		mc.mu.Lock()
		err := mc.err
		mc.mu.Unlock()
		return nil, err
	}
	ins.sentBytes.Add(c.Name(), frameLen)

	select {
	case res := <-ch:
		return res.body, res.err
	case <-ctx.Done():
		mc.deregister(id)
		return nil, ctx.Err()
	}
}

// deregister abandons a pending request (encode failure, ctx cancel).
// A response arriving later is dropped by the read loop.
func (mc *muxConn) deregister(id uint64) {
	mc.mu.Lock()
	delete(mc.pending, id)
	mc.mu.Unlock()
}

// fail marks the mux dead, removes it from the network's table and
// fails every pending request. Safe to call multiple times.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.dead {
		mc.mu.Unlock()
		return
	}
	mc.dead = true
	mc.err = err
	pending := mc.pending
	mc.pending = make(map[uint64]chan muxResult)
	mc.mu.Unlock()

	mc.conn.Close()
	n := mc.net
	n.mu.Lock()
	if e, ok := n.muxes[mc.to]; ok && e.mc == mc {
		delete(n.muxes, mc.to)
	}
	n.mu.Unlock()
	for _, ch := range pending {
		ch <- muxResult{err: err}
	}
}

// readLoop is the demultiplexer: it owns the read side of the
// connection, decodes each response frame and hands the result to the
// caller registered under the frame's request ID. Responses to
// abandoned requests are dropped. Any framing or decode error kills
// the connection — the stream has no way to resynchronize.
func (mc *muxConn) readLoop() {
	ins := mc.net.ins.Load()
	br := bufio.NewReaderSize(mc.conn, 32<<10)
	var buf []byte
	for {
		frame, err := readFrame(br, buf)
		if err != nil {
			mc.fail(fmt.Errorf("recv from %q: %w", mc.to, transport.ErrUnreachable))
			return
		}
		buf = frame // strings copy into the decode arena; the raw buffer is reusable
		d, err := parseFrame(frame)
		if err != nil {
			mc.fail(fmt.Errorf("recv from %q: %v: %w", mc.to, err, transport.ErrUnreachable))
			return
		}
		var res muxResult
		switch d.kind {
		case frameKindResponse:
			res.body = d.body
			ins.recvBytes.Add(d.codec.Name(), uint64(len(frame))+4)
		case frameKindError:
			res.err = fmt.Errorf("%w: %s", transport.ErrRemote, d.errS)
			ins.recvBytes.Add("error", uint64(len(frame))+4)
		default:
			mc.fail(fmt.Errorf("recv from %q: unexpected frame kind %d: %w",
				mc.to, d.kind, transport.ErrUnreachable))
			return
		}
		mc.mu.Lock()
		ch, ok := mc.pending[d.reqID]
		delete(mc.pending, d.reqID)
		mc.mu.Unlock()
		if ok {
			ch <- res
		}
	}
}

// sendBinary is the v2 client path: one RPC over the shared mux, with
// a single retry on a fresh connection when the failure hit a mux that
// predates this call (the idle-connection race the gob path also
// retries).
func (n *Network) sendBinary(ctx context.Context, from, to transport.Addr, body any) (any, error) {
	mc, wasShared, err := n.mux(ctx, to)
	if err == nil {
		var resp any
		resp, err = mc.roundTrip(ctx, from, body)
		if err == nil || !wasShared || !retriableSendErr(ctx, err) {
			return resp, err
		}
	} else if !wasShared {
		return nil, err
	}
	mc, _, err = n.mux(ctx, to)
	if err != nil {
		return nil, err
	}
	return mc.roundTrip(ctx, from, body)
}
