package tcpnet

import (
	"reflect"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

// FuzzWireDecode fuzzes the v2 frame decoder: arbitrary bytes must
// yield a clean error (never a panic or an unbounded allocation), and
// any frame that does decode must survive a re-encode/re-decode round
// trip unchanged. Seeded with well-formed frames of each kind so the
// fuzzer starts from the interesting part of the input space. A short
// run is wired into `make fuzz-smoke`.
func FuzzWireDecode(f *testing.F) {
	registerTestTypes()

	// Well-formed seeds: request, response, error frames.
	seed := func(build func(w *wire.Writer)) {
		w := wire.GetWriter()
		defer wire.PutWriter(w)
		build(w)
		f.Add(append([]byte(nil), w.Buf[4:]...)) // parseFrame sees the bytes past the length prefix
	}
	seed(func(w *wire.Writer) {
		_, _ = appendRequestFrame(w, 1, "127.0.0.1:9999", false, ping{N: 42})
	})
	seed(func(w *wire.Writer) {
		_, _ = appendRequestFrame(w, 7, "", true, ping{N: -1})
	})
	seed(func(w *wire.Writer) {
		_, _ = appendResponseFrame(w, 2, pong{N: -7}, nil)
	})
	seed(func(w *wire.Writer) {
		_, _ = appendResponseFrame(w, 3, nil, errTest)
	})
	// Query-class shaped payloads: a string key plus the trailing
	// (class int, u64 dim mask) pair the core codecs appended for
	// prefix search. Gives the fuzzer a foothold on the new tail.
	seed(func(w *wire.Writer) {
		_, _ = appendRequestFrame(w, 4, "", false, classQry{Key: "kw", Class: 2, Mask: 0x3ff})
	})
	seed(func(w *wire.Writer) {
		_, _ = appendRequestFrame(w, 5, "127.0.0.1:1", true, classQry{})
	})
	seed(func(w *wire.Writer) {
		_, _ = appendResponseFrame(w, 6, classQry{Key: "a b c", Class: 1, Mask: 1<<63 | 1}, nil)
	})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x03, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := parseFrame(data)
		if err != nil {
			return // clean rejection is the expected outcome for noise
		}
		switch d.kind {
		case frameKindError:
			return // error frames carry no payload to round-trip
		case frameKindRequest, frameKindResponse:
		default:
			t.Fatalf("parseFrame accepted unknown kind %d", d.kind)
		}
		if d.codec == nil || d.body == nil {
			t.Fatalf("parseFrame returned no error but codec=%v body=%v", d.codec, d.body)
		}
		// Round trip: re-encode the decoded body and decode it again;
		// the result must be identical.
		w := wire.GetWriter()
		defer wire.PutWriter(w)
		var err2 error
		if d.kind == frameKindRequest {
			_, err2 = appendRequestFrame(w, d.reqID, transport.Addr(d.from), d.fromDefault, d.body)
		} else {
			_, err2 = appendResponseFrame(w, d.reqID, d.body, nil)
		}
		if err2 != nil {
			t.Fatalf("re-encode of decoded %s: %v", d.codec.Name(), err2)
		}
		d2, err := parseFrame(w.Buf[4:])
		if err != nil {
			t.Fatalf("re-decode of re-encoded %s: %v", d.codec.Name(), err)
		}
		if d2.reqID != d.reqID || d2.kind != d.kind ||
			d2.from != d.from || d2.fromDefault != d.fromDefault {
			t.Fatalf("header round trip mismatch: %+v vs %+v", d2, d)
		}
		if !reflect.DeepEqual(d2.body, d.body) {
			t.Fatalf("%s body round trip mismatch:\n got %+v\nwant %+v", d.codec.Name(), d2.body, d.body)
		}
	})
}

var errTest = errForFuzz{}

type errForFuzz struct{}

func (errForFuzz) Error() string { return "fuzz: handler failure" }
