package tcpnet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

type ping struct{ N int }
type pong struct{ N int }

// classQry mirrors the shape of the query-class message extension: a
// string key followed by a trailing (small int, u64 bitmask) pair, the
// exact appended-field layout the core codecs grew for prefix search.
type classQry struct {
	Key   string
	Class int
	Mask  uint64
}

func (m *ping) MarshalWire(w *wire.Writer)         { w.Int(m.N) }
func (m *ping) UnmarshalWire(r *wire.Reader) error { m.N = r.Int(); return r.Err() }
func (m *pong) MarshalWire(w *wire.Writer)         { w.Int(m.N) }
func (m *pong) UnmarshalWire(r *wire.Reader) error { m.N = r.Int(); return r.Err() }
func (m *classQry) MarshalWire(w *wire.Writer) {
	w.String(m.Key)
	w.Int(m.Class)
	w.U64(m.Mask)
}
func (m *classQry) UnmarshalWire(r *wire.Reader) error {
	m.Key = r.String()
	m.Class = r.Int()
	m.Mask = r.U64()
	return r.Err()
}

func registerTestTypes() {
	transport.RegisterType(ping{})
	transport.RegisterType(pong{})
	transport.RegisterType(classQry{})
	wire.Register[ping](59001)
	wire.Register[pong](59002)
	wire.Register[classQry](59005)
}

// newGob returns a network pinned to the legacy gob client protocol.
func newGob(t *testing.T) *Network {
	t.Helper()
	n, err := NewWithConfig(Config{Wire: WireGob})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRoundTrip(t *testing.T) {
	registerTestTypes()
	n := New()
	defer n.Close()
	node, err := n.Bind("127.0.0.1:0", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		p, ok := body.(ping)
		if !ok {
			return nil, fmt.Errorf("unexpected body %T", body)
		}
		return pong{N: p.N + 1}, nil
	})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	got, err := n.Send(context.Background(), node.Addr(), ping{N: 41})
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if p, ok := got.(pong); !ok || p.N != 42 {
		t.Errorf("Send = %#v, want pong{42}", got)
	}
}

func TestRemoteError(t *testing.T) {
	registerTestTypes()
	n := New()
	defer n.Close()
	node, err := n.Bind("127.0.0.1:0", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		return nil, errors.New("handler exploded")
	})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	_, err = n.Send(context.Background(), node.Addr(), ping{})
	if !errors.Is(err, transport.ErrRemote) {
		t.Errorf("err = %v, want ErrRemote", err)
	}
}

func TestUnreachable(t *testing.T) {
	n := New()
	defer n.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err := n.Send(ctx, "127.0.0.1:1", ping{})
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestPooledConnectionReuse(t *testing.T) {
	registerTestTypes()
	n := newGob(t)
	defer n.Close()
	node, err := n.Bind("127.0.0.1:0", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		return body, nil
	})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := n.Send(context.Background(), node.Addr(), ping{N: i}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	// Sequential sends reuse one pooled connection.
	n.mu.Lock()
	poolSize := len(n.idle[node.Addr()])
	n.mu.Unlock()
	if poolSize != 1 {
		t.Errorf("idle pool size = %d, want 1", poolSize)
	}
}

func TestHandlerCanCallBackIntoSameNetwork(t *testing.T) {
	// Regression test for the shared-connection deadlock: a handler
	// that issues a request to its own listener (through the same
	// Network) must not block on the caller's in-flight connection.
	registerTestTypes()
	n := New()
	defer n.Close()
	var addr transport.Addr
	node, err := n.Bind("127.0.0.1:0", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		p, ok := body.(ping)
		if !ok {
			return nil, fmt.Errorf("unexpected %T", body)
		}
		if p.N > 0 {
			return n.Send(ctx, addr, ping{N: p.N - 1})
		}
		return pong{N: 42}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	addr = node.Addr()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := n.Send(ctx, addr, ping{N: 3})
	if err != nil {
		t.Fatalf("recursive send: %v", err)
	}
	if p, ok := got.(pong); !ok || p.N != 42 {
		t.Errorf("got %#v", got)
	}
}

func TestRedialAfterListenerRestart(t *testing.T) {
	registerTestTypes()
	n := New()
	defer n.Close()
	node, err := n.Bind("127.0.0.1:0", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		return body, nil
	})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	addr := node.Addr()
	if _, err := n.Send(context.Background(), addr, ping{N: 1}); err != nil {
		t.Fatalf("first send: %v", err)
	}
	node.Close()
	// Rebind on the same port and verify the pooled (now dead)
	// connection is replaced by the retry path.
	if _, err := n.Bind(addr, func(ctx context.Context, from transport.Addr, body any) (any, error) {
		return body, nil
	}); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	if _, err := n.Send(context.Background(), addr, ping{N: 2}); err != nil {
		t.Fatalf("send after restart: %v", err)
	}
}

func TestConcurrentSends(t *testing.T) {
	registerTestTypes()
	n := New()
	defer n.Close()
	node, err := n.Bind("127.0.0.1:0", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		return body, nil
	})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := n.Send(context.Background(), node.Addr(), ping{N: i})
			if err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			if p, ok := got.(ping); !ok || p.N != i {
				t.Errorf("send %d returned %#v", i, got)
			}
		}(i)
	}
	wg.Wait()
}

func TestCloseRejectsFurtherUse(t *testing.T) {
	n := New()
	n.Close()
	if _, err := n.Bind("127.0.0.1:0", nil); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("bind after close: %v", err)
	}
	if _, err := n.Send(context.Background(), "127.0.0.1:1", ping{}); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
}
