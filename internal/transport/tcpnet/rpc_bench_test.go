package tcpnet

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

// benchQry/benchAns mimic the small-message hot path (a per-node
// superset step and its few-match answer) without dragging the core
// package into the transport benchmark.
type benchQry struct {
	Instance string
	Vertex   uint64
	Key      string
	Limit    int
}

type benchAns struct {
	IDs       []string
	Remaining int
}

func (m *benchQry) MarshalWire(w *wire.Writer) {
	w.String(m.Instance)
	w.Uvarint(m.Vertex)
	w.String(m.Key)
	w.Int(m.Limit)
}

func (m *benchQry) UnmarshalWire(r *wire.Reader) error {
	m.Instance = r.String()
	m.Vertex = r.Uvarint()
	m.Key = r.String()
	m.Limit = r.Int()
	return r.Err()
}

func (m *benchAns) MarshalWire(w *wire.Writer) {
	w.Uvarint(uint64(len(m.IDs)))
	for _, id := range m.IDs {
		w.String(id)
	}
	w.Int(m.Remaining)
}

func (m *benchAns) UnmarshalWire(r *wire.Reader) error {
	n := r.Count(1)
	if n > 0 {
		m.IDs = make([]string, n)
		for i := range m.IDs {
			m.IDs[i] = r.String()
		}
	}
	m.Remaining = r.Int()
	return r.Err()
}

func registerBenchTypes() {
	transport.RegisterType(benchQry{})
	transport.RegisterType(benchAns{})
	wire.Register[benchQry](59003)
	wire.Register[benchAns](59004)
}

// benchRPCPair starts a server plus one client network in the given
// wire mode, with per-type byte accounting on the client's registry.
func benchRPCPair(b *testing.B, mode string) (cli *Network, addr transport.Addr, reg *telemetry.Registry, closeAll func()) {
	b.Helper()
	srv := New()
	node, err := srv.Bind("127.0.0.1:0", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		q := body.(benchQry)
		return benchAns{IDs: []string{"obj-00017", "obj-00329"}, Remaining: int(q.Vertex % 7)}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	cli, err = NewWithConfig(Config{Wire: mode})
	if err != nil {
		b.Fatal(err)
	}
	reg = telemetry.New(0)
	cli.SetTelemetry(reg)
	return cli, node.Addr(), reg, func() { cli.Close(); srv.Close() }
}

func benchRPCBody(i int) benchQry {
	return benchQry{
		Instance: "default",
		Vertex:   uint64(i),
		Key:      "8f3a41d2c9b07e55",
		Limit:    128,
	}
}

// clientWireBytes sums the client-side per-type byte counters over the
// exchange's message types.
func clientWireBytes(reg *telemetry.Registry) uint64 {
	var total uint64
	for _, name := range []string{"transport_tcp_bytes_sent_total", "transport_tcp_bytes_recv_total"} {
		vec := reg.CounterVec(name, "type")
		for _, typ := range []string{"tcpnet.benchQry", "tcpnet.benchAns", "error"} {
			total += vec.With(typ).Value()
		}
	}
	return total
}

// BenchmarkWireRPC gates the tentpole end to end, with every protocol
// cost included — framing, envelopes, handshakes, connection churn —
// as measured by the transport's own per-type byte accounting:
//
//   - Bytes per RPC, measured serially on a warm connection
//     (deterministic, so gated unconditionally): the binary wire must
//     move at most half the bytes of the gob wire for the same
//     small-message exchange.
//   - RPCs/sec under concurrency (gob's per-request exclusive
//     connections dial beyond its idle pool; the mux multiplexes one):
//     binary must deliver at least 2x, gated on machines with 4+ cores
//     like the repo's other throughput gates.
func BenchmarkWireRPC(b *testing.B) {
	registerBenchTypes()
	const (
		serialN = 400
		workers = 16
		perW    = 250
		reps    = 2
	)
	ctx := context.Background()

	type modeStats struct {
		bytesPerOp float64
		rps        float64
	}
	stats := map[string]modeStats{}
	for _, mode := range []string{WireBinary, WireGob} {
		cli, addr, reg, closeAll := benchRPCPair(b, mode)

		// Serial pass on a warm connection: exact steady-state bytes.
		if _, err := cli.Send(ctx, addr, benchRPCBody(0)); err != nil {
			b.Fatal(err)
		}
		warm := clientWireBytes(reg)
		for i := 0; i < serialN; i++ {
			if _, err := cli.Send(ctx, addr, benchRPCBody(i)); err != nil {
				b.Fatal(err)
			}
		}
		bytesPerOp := float64(clientWireBytes(reg)-warm) / serialN

		// Concurrent throughput, fixed-rep best-of-k (the gate needs a
		// ratio and must run even at -benchtime=1x).
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < reps; rep++ {
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						if _, err := cli.Send(ctx, addr, benchRPCBody(w*perW+i)); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		closeAll()
		stats[mode] = modeStats{
			bytesPerOp: bytesPerOp,
			rps:        float64(workers*perW) / best.Seconds(),
		}
	}

	bin, gb := stats[WireBinary], stats[WireGob]
	byteRatio := bin.bytesPerOp / gb.bytesPerOp
	speedup := bin.rps / gb.rps
	b.Logf("bytes/RPC: binary %.0f vs gob %.0f (%.2fx); RPCs/sec: binary %.0f vs gob %.0f (%.2fx)",
		bin.bytesPerOp, gb.bytesPerOp, byteRatio, bin.rps, gb.rps, speedup)
	if byteRatio > 0.5 {
		b.Fatalf("binary wire moves %.0f B/RPC vs gob %.0f B/RPC (%.2fx) — want <= 0.5x",
			bin.bytesPerOp, gb.bytesPerOp, byteRatio)
	}
	if cores := runtime.GOMAXPROCS(0); cores >= 4 && runtime.NumCPU() >= 4 && speedup < 2 {
		b.Fatalf("binary wire %.0f RPCs/sec vs gob %.0f (%.2fx) on %d cores — want >= 2x",
			bin.rps, gb.rps, speedup, cores)
	}

	// Standard per-op figure for the binary path.
	cli, addr, _, closeAll := benchRPCPair(b, WireBinary)
	defer closeAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Send(ctx, addr, benchRPCBody(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Report after ResetTimer: it deletes user-reported metrics.
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(byteRatio, "byte-ratio")
	b.ReportMetric(bin.bytesPerOp, "wire-B/op")
}
