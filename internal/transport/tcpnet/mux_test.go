package tcpnet

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/transport"
)

// TestWireMuxHammer drives many concurrent RPCs through one
// multiplexed connection and asserts every caller gets exactly its own
// answer back — the mux must never deliver a response to the wrong
// request ID, even interleaved with cancelled requests that abandon
// their IDs mid-flight. Runs under -race in the chaos suite.
func TestWireMuxHammer(t *testing.T) {
	registerTestTypes()
	n := New()
	defer n.Close()
	node, err := n.Bind("127.0.0.1:0", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		p := body.(ping)
		return pong{N: p.N}, nil
	})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}

	const (
		workers = 32
		perW    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				want := w*perW + i
				if i%17 == 0 {
					// A pre-cancelled request abandons its ID; its late
					// response must be dropped, not misdelivered.
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					_, err := n.Send(ctx, node.Addr(), ping{N: -want})
					if err == nil {
						t.Errorf("worker %d: cancelled send succeeded", w)
					}
					continue
				}
				got, err := n.Send(context.Background(), node.Addr(), ping{N: want})
				if err != nil {
					t.Errorf("worker %d send %d: %v", w, i, err)
					return
				}
				if p, ok := got.(pong); !ok || p.N != want {
					t.Errorf("worker %d: response %#v, want pong{%d} — cross-delivered frame", w, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The whole hammer must have shared one mux.
	n.mu.Lock()
	muxCount := len(n.muxes)
	n.mu.Unlock()
	if muxCount != 1 {
		t.Errorf("mux table has %d entries after hammer, want 1", muxCount)
	}
}

// TestMuxRedialAfterConnDeath: killing the shared connection under the
// mux fails the in-flight attempt, which then transparently retries on
// a freshly dialed mux (the reused-connection contract the gob path
// also honors), and later sends reuse the new connection.
func TestMuxRedialAfterConnDeath(t *testing.T) {
	registerTestTypes()
	n := New()
	defer n.Close()
	block := make(chan struct{})
	node, err := n.Bind("127.0.0.1:0", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		p := body.(ping)
		if p.N == 99 {
			select {
			case <-block:
			case <-ctx.Done():
			}
		}
		return pong{N: p.N}, nil
	})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if _, err := n.Send(context.Background(), node.Addr(), ping{N: 1}); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	n.mu.Lock()
	if len(n.muxes) != 1 {
		n.mu.Unlock()
		t.Fatalf("expected 1 mux after warmup")
	}
	var mc *muxConn
	for _, e := range n.muxes {
		mc = e.mc
	}
	n.mu.Unlock()

	inflight := make(chan error, 1)
	go func() {
		_, err := n.Send(context.Background(), node.Addr(), ping{N: 99})
		inflight <- err
	}()
	// Wait for the request to be pending, then cut the connection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mc.mu.Lock()
		pending := len(mc.pending)
		mc.mu.Unlock()
		if pending > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mc.conn.Close()
	close(block) // let the retried handler invocation answer
	select {
	case err := <-inflight:
		if err != nil {
			t.Errorf("in-flight send after conn death: %v, want success via retry on a fresh mux", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight send never returned after conn death")
	}
	// Later sends reuse the re-dialed mux.
	if _, err := n.Send(context.Background(), node.Addr(), ping{N: 2}); err != nil {
		t.Fatalf("send after conn death: %v", err)
	}
	n.mu.Lock()
	muxCount := len(n.muxes)
	n.mu.Unlock()
	if muxCount != 1 {
		t.Errorf("mux table has %d entries after redial, want 1", muxCount)
	}
}

// TestMuxSingleConnection: sequential and concurrent sends to one
// destination share one persistent connection (the gob path pools
// per-request exclusive connections instead).
func TestMuxSingleConnection(t *testing.T) {
	registerTestTypes()
	n := New()
	defer n.Close()
	node, err := n.Bind("127.0.0.1:0", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		return body, nil
	})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := n.Send(context.Background(), node.Addr(), ping{N: i}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	n.mu.Lock()
	muxCount := len(n.muxes)
	idleCount := len(n.idle[node.Addr()])
	n.mu.Unlock()
	if muxCount != 1 {
		t.Errorf("mux table has %d entries, want 1", muxCount)
	}
	if idleCount != 0 {
		t.Errorf("gob idle pool has %d conns under binary wire, want 0", idleCount)
	}
}

// TestWireModeRejected: an unknown wire mode is a configuration error.
func TestWireModeRejected(t *testing.T) {
	if _, err := NewWithConfig(Config{Wire: "protobuf"}); err == nil {
		t.Fatal("NewWithConfig accepted an unknown wire mode")
	}
}

// TestCrossModeInterop: a gob client and a binary client talk to the
// same listener concurrently — the server sniffs the generation per
// connection.
func TestCrossModeInterop(t *testing.T) {
	registerTestTypes()
	srv := New()
	defer srv.Close()
	node, err := srv.Bind("127.0.0.1:0", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		p := body.(ping)
		return pong{N: p.N * 2}, nil
	})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	for _, mode := range []string{WireBinary, WireGob} {
		cli, err := NewWithConfig(Config{Wire: mode})
		if err != nil {
			t.Fatal(err)
		}
		got, err := cli.Send(context.Background(), node.Addr(), ping{N: 21})
		if err != nil {
			t.Fatalf("%s client: %v", mode, err)
		}
		if p, ok := got.(pong); !ok || p.N != 42 {
			t.Errorf("%s client got %#v, want pong{42}", mode, got)
		}
		cli.Close()
	}
}

// TestBinaryRejectsUnregisteredType: sending a type without a wire
// codec is a descriptive error, not a hang or a panic.
func TestBinaryRejectsUnregisteredType(t *testing.T) {
	registerTestTypes()
	type orphan struct{ X int }
	transport.RegisterType(orphan{})
	n := New()
	defer n.Close()
	node, err := n.Bind("127.0.0.1:0", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		return body, nil
	})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if _, err := n.Send(context.Background(), node.Addr(), orphan{X: 1}); err == nil {
		t.Fatal("send of unregistered type succeeded")
	} else if want := "no wire codec"; !strings.Contains(err.Error(), want) {
		t.Errorf("err = %v, want mention of %q", err, want)
	}
}
