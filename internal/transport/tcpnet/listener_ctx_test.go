package tcpnet

import (
	"context"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Handlers run under a per-listener context that Close cancels, so a
// request-scoped goroutine (a search wave, a maintenance probe) dies
// with the endpoint instead of leaking past it.
func TestListenerCloseCancelsHandlerContext(t *testing.T) {
	registerTestTypes()
	n := New()
	defer n.Close()
	ctxCh := make(chan context.Context, 1)
	node, err := n.Bind("127.0.0.1:0", func(ctx context.Context, _ transport.Addr, body any) (any, error) {
		ctxCh <- ctx
		return body, nil
	})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if _, err := n.Send(context.Background(), node.Addr(), ping{N: 1}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	hctx := <-ctxCh
	select {
	case <-hctx.Done():
		t.Fatal("handler context done while the listener is still open")
	default:
	}
	if err := node.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-hctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("handler context not cancelled by listener Close")
	}
}

// A handler blocked on its context must be released by Close rather
// than deadlocking the endpoint shutdown.
func TestListenerCloseUnblocksPendingHandler(t *testing.T) {
	registerTestTypes()
	n := New()
	defer n.Close()
	entered := make(chan struct{})
	node, err := n.Bind("127.0.0.1:0", func(ctx context.Context, _ transport.Addr, body any) (any, error) {
		close(entered)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	sendDone := make(chan struct{})
	go func() {
		defer close(sendDone)
		// The response is lost to the shutdown; only the unblocking matters.
		_, _ = n.Send(context.Background(), node.Addr(), ping{N: 1})
	}()
	<-entered
	closeDone := make(chan error, 1)
	go func() { closeDone <- node.Close() }()
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked behind a context-blocked handler")
	}
	select {
	case <-sendDone:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight Send never returned after Close")
	}
}
