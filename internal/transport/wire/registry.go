package wire

import (
	"fmt"
	"reflect"
	"sync"
)

// Codec binds one concrete message type to its compact wire type ID
// and its encode/decode functions. Codecs are created by Register and
// immutable afterwards.
type Codec struct {
	id     uint16
	name   string
	typ    reflect.Type
	encode func(w *Writer, body any)
	decode func(r *Reader) (any, error)
}

// ID returns the codec's wire type ID.
func (c *Codec) ID() uint16 { return c.id }

// Name returns the message's Go type name (the %T rendering, e.g.
// "core.msgTQuery"), the label telemetry keys on.
func (c *Codec) Name() string { return c.name }

// Encode marshals body (which must be of the registered type) into w.
func (c *Codec) Encode(w *Writer, body any) { c.encode(w, body) }

// Decode unmarshals one message from r, returning it as the registered
// concrete value type.
func (c *Codec) Decode(r *Reader) (any, error) { return c.decode(r) }

var (
	regMu  sync.RWMutex
	byID   = make(map[uint16]*Codec)
	byType = make(map[reflect.Type]*Codec)
)

// Register binds type T to the wire type ID. *T must implement
// Marshaler and Unmarshaler; messages travel as values (matching the
// transport's any-typed envelopes), so the registry wraps the pointer
// codecs in value-level encode/decode functions.
//
// Registration is idempotent for the same (id, type) pair — every
// package's RegisterTypes may run multiple times per process — and
// panics on a conflicting binding, which is a build-time mistake
// (two messages claiming one ID, or one message claiming two).
func Register[T any, PT interface {
	*T
	Marshaler
	Unmarshaler
}](id uint16) {
	typ := reflect.TypeOf((*T)(nil)).Elem()
	c := &Codec{
		id:   id,
		name: typ.String(),
		typ:  typ,
		encode: func(w *Writer, body any) {
			v := body.(T)
			PT(&v).MarshalWire(w)
		},
		decode: func(r *Reader) (any, error) {
			var v T
			if err := PT(&v).UnmarshalWire(r); err != nil {
				return nil, err
			}
			return v, nil
		},
	}
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := byID[id]; ok {
		if prev.typ != typ {
			panic(fmt.Sprintf("wire: type ID %d already registered to %s, cannot rebind to %s",
				id, prev.name, c.name))
		}
		return
	}
	if prev, ok := byType[typ]; ok {
		panic(fmt.Sprintf("wire: type %s already registered with ID %d, cannot rebind to %d",
			c.name, prev.id, id))
	}
	byID[id] = c
	byType[typ] = c
}

// Lookup returns the codec registered for body's concrete type.
func Lookup(body any) (*Codec, bool) {
	regMu.RLock()
	c, ok := byType[reflect.TypeOf(body)]
	regMu.RUnlock()
	return c, ok
}

// LookupID returns the codec registered under the wire type ID.
func LookupID(id uint16) (*Codec, bool) {
	regMu.RLock()
	c, ok := byID[id]
	regMu.RUnlock()
	return c, ok
}
