package wire

import (
	"math"
	"strings"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	w := GetWriter()
	defer PutWriter(w)
	w.Byte(0xab)
	w.Bool(true)
	w.Bool(false)
	for _, u := range []uint64{0, 1, 127, 128, 300, 1 << 20, math.MaxUint64} {
		w.Uvarint(u)
	}
	for _, v := range []int64{0, -1, 1, -64, 63, math.MinInt64, math.MaxInt64} {
		w.Varint(v)
	}
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.String("hello")
	w.String("")
	w.Bytes([]byte{1, 2, 3})

	r := NewReader(w.Buf)
	if got := r.Byte(); got != 0xab {
		t.Errorf("Byte = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	for _, u := range []uint64{0, 1, 127, 128, 300, 1 << 20, math.MaxUint64} {
		if got := r.Uvarint(); got != u {
			t.Errorf("Uvarint = %d, want %d", got, u)
		}
	}
	for _, v := range []int64{0, -1, 1, -64, 63, math.MinInt64, math.MaxInt64} {
		if got := r.Varint(); got != v {
			t.Errorf("Varint = %d, want %d", got, v)
		}
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := r.String(); got != "\x01\x02\x03" {
		t.Errorf("Bytes = %q", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

// TestTruncationIsSticky feeds every proper prefix of an encoded
// payload to the reader and checks that decoding errors instead of
// panicking, and that the error sticks.
func TestTruncationIsSticky(t *testing.T) {
	w := GetWriter()
	defer PutWriter(w)
	w.Uvarint(300)
	w.U64(42)
	w.String("payload")
	w.Varint(-9)
	full := append([]byte(nil), w.Buf...)
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Uvarint()
		r.U64()
		_ = r.String()
		r.Varint()
		if r.Err() == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
		if got := r.Uvarint(); got != 0 {
			t.Fatalf("read after error = %d, want 0", got)
		}
	}
}

// TestCountBoundsAllocations: a corrupt element count larger than the
// remaining bytes must error before any allocation is sized from it.
func TestCountBoundsAllocations(t *testing.T) {
	w := GetWriter()
	defer PutWriter(w)
	w.Uvarint(1 << 40) // claims ~10^12 elements
	r := NewReader(w.Buf)
	if n := r.Count(4); n != 0 || r.Err() == nil {
		t.Fatalf("Count = %d, err = %v; want 0 and an error", n, r.Err())
	}
}

// TestStringArena: every string of a frame must alias one arena
// allocation, not copy separately.
func TestStringArena(t *testing.T) {
	w := GetWriter()
	defer PutWriter(w)
	w.String("alpha")
	w.String("beta")
	r := NewReader(w.Buf)
	a, b := r.String(), r.String()
	if a != "alpha" || b != "beta" {
		t.Fatalf("strings = %q, %q", a, b)
	}
	// Both must be slices of the same backing arena string.
	arena := r.arena
	if arena == "" {
		t.Fatal("arena not materialized")
	}
	if !strings.Contains(arena, a) || !strings.Contains(arena, b) {
		t.Fatal("strings do not alias the arena")
	}
	allocs := testing.AllocsPerRun(100, func() {
		rr := NewReader(w.Buf)
		_ = rr.String()
		_ = rr.String()
	})
	// One Reader + one arena materialization; two separate string
	// copies would push this to 3.
	if allocs > 2 {
		t.Errorf("decode of 2 strings allocates %.1f times, want <= 2 (arena + reader)", allocs)
	}
}

// TestVarintShiftOverflow: an unterminated varint longer than 10 bytes
// must error rather than loop or accept garbage.
func TestVarintShiftOverflow(t *testing.T) {
	buf := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	r := NewReader(buf)
	r.Uvarint()
	if r.Err() == nil {
		t.Fatal("overlong varint decoded without error")
	}
}

func TestRegistryConflictsPanic(t *testing.T) {
	Register[tmsgA](60001)
	Register[tmsgA](60001) // idempotent re-registration is fine
	mustPanic(t, func() { Register[tmsgB](60001) })
	mustPanic(t, func() { Register[tmsgA](60002) })
	c, ok := Lookup(tmsgA{X: 1})
	if !ok || c.ID() != 60001 {
		t.Fatalf("Lookup = %v, %v", c, ok)
	}
	if c2, ok := LookupID(60001); !ok || c2 != c {
		t.Fatalf("LookupID mismatch")
	}
}

func TestCodecEncodeDecode(t *testing.T) {
	Register[tmsgB](60003)
	c, _ := Lookup(tmsgB{})
	w := GetWriter()
	defer PutWriter(w)
	c.Encode(w, tmsgB{S: "xyz", N: -5})
	got, err := c.Decode(NewReader(w.Buf))
	if err != nil {
		t.Fatal(err)
	}
	if got != (tmsgB{S: "xyz", N: -5}) {
		t.Fatalf("round trip = %+v", got)
	}
}

type tmsgA struct{ X uint64 }

func (m *tmsgA) MarshalWire(w *Writer)         { w.Uvarint(m.X) }
func (m *tmsgA) UnmarshalWire(r *Reader) error { m.X = r.Uvarint(); return r.Err() }

type tmsgB struct {
	S string
	N int
}

func (m *tmsgB) MarshalWire(w *Writer) { w.String(m.S); w.Int(m.N) }
func (m *tmsgB) UnmarshalWire(r *Reader) error {
	m.S = r.String()
	m.N = r.Int()
	return r.Err()
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
