// Package wire is the hand-rolled binary codec behind the TCP
// transport's protocol v2. The message set of this system is small and
// closed (index protocol, Chord RPCs, the inverted-index baseline), so
// instead of gob's self-describing streams — which resend type
// metadata on every fresh connection and allocate through reflection —
// each message implements Marshaler/Unmarshaler against a pooled
// buffer Writer and a bounds-checked Reader, and a process-global
// registry maps compact type IDs to concrete types.
//
// Encoding conventions:
//
//   - counts, lengths and small non-negative integers: unsigned varint
//   - signed integers (depths, error codes, deadlines): zigzag varint
//   - full-range 64-bit values (DHT IDs, session IDs): fixed 8-byte LE
//   - strings: uvarint length + raw bytes
//
// The Reader decodes strings out of a single per-frame arena: the
// first string materializes the whole payload as one Go string and
// every subsequent string is a zero-copy slice of it, so a batch
// response with thousands of matches costs one allocation for all its
// string data instead of one per field.
package wire

import (
	"errors"
	"fmt"
	"sync"
)

// ErrTruncated reports a read past the end of the payload — a corrupt
// or truncated frame.
var ErrTruncated = errors.New("wire: truncated payload")

// Marshaler is implemented by messages that can encode themselves into
// a Writer. Encoding into memory cannot fail, so there is no error.
type Marshaler interface {
	MarshalWire(w *Writer)
}

// Unmarshaler is implemented by messages that can decode themselves
// from a Reader. Implementations should use the Reader's sticky error
// (return r.Err()) rather than inventing their own bounds checks.
type Unmarshaler interface {
	UnmarshalWire(r *Reader) error
}

// Writer is an append-only encode buffer. The zero value is ready to
// use; prefer GetWriter/PutWriter to reuse buffers across frames.
type Writer struct {
	Buf []byte
}

var writerPool = sync.Pool{New: func() any { return &Writer{Buf: make([]byte, 0, 512)} }}

// GetWriter returns a reset Writer from the pool.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Buf = w.Buf[:0]
	return w
}

// PutWriter returns w to the pool. The caller must not retain w.Buf.
func PutWriter(w *Writer) {
	const maxRetainedCap = 1 << 20 // don't let one huge frame pin memory
	if cap(w.Buf) <= maxRetainedCap {
		writerPool.Put(w)
	}
}

// Reset truncates the buffer for reuse.
func (w *Writer) Reset() { w.Buf = w.Buf[:0] }

// Len returns the number of encoded bytes.
func (w *Writer) Len() int { return len(w.Buf) }

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.Buf = append(w.Buf, b) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.Buf = append(w.Buf, 1)
	} else {
		w.Buf = append(w.Buf, 0)
	}
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(u uint64) {
	for u >= 0x80 {
		w.Buf = append(w.Buf, byte(u)|0x80)
		u >>= 7
	}
	w.Buf = append(w.Buf, byte(u))
}

// Varint appends a signed integer as a zigzag varint.
func (w *Writer) Varint(v int64) {
	w.Uvarint(uint64(v<<1) ^ uint64(v>>63))
}

// Int appends an int as a zigzag varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// U16 appends a fixed 2-byte little-endian value.
func (w *Writer) U16(v uint16) {
	w.Buf = append(w.Buf, byte(v), byte(v>>8))
}

// U32 appends a fixed 4-byte little-endian value.
func (w *Writer) U32(v uint32) {
	w.Buf = append(w.Buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a fixed 8-byte little-endian value — for full-range IDs
// where a varint would cost more than it saves.
func (w *Writer) U64(v uint64) {
	w.Buf = append(w.Buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// String appends a uvarint length followed by the raw bytes.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.Buf = append(w.Buf, s...)
}

// Bytes appends a uvarint length followed by the raw bytes.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.Buf = append(w.Buf, b...)
}

// Reserve4 appends a 4-byte placeholder and returns its offset for a
// later PatchU32 — the frame-length fixup pattern.
func (w *Writer) Reserve4() int {
	off := len(w.Buf)
	w.Buf = append(w.Buf, 0, 0, 0, 0)
	return off
}

// PatchU32 overwrites the 4 bytes at off with v (little-endian).
func (w *Writer) PatchU32(off int, v uint32) {
	w.Buf[off] = byte(v)
	w.Buf[off+1] = byte(v >> 8)
	w.Buf[off+2] = byte(v >> 16)
	w.Buf[off+3] = byte(v >> 24)
}

// Reader decodes a payload with a sticky error: after the first
// malformed or truncated field every subsequent read returns a zero
// value, and Err reports what went wrong. Arbitrary input therefore
// cannot panic or over-allocate — slice counts are validated against
// the bytes actually remaining before any allocation.
type Reader struct {
	buf   []byte
	off   int
	arena string // lazy: whole payload as one string, sliced per field
	err   error
}

// NewReader returns a Reader over buf. The Reader does not copy buf up
// front; the first string read materializes it once as the arena.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
	r.off = len(r.buf)
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool reads a one-byte boolean; any nonzero byte is true.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	var u uint64
	var shift uint
	for {
		if r.off >= len(r.buf) || shift > 63 {
			r.fail()
			return 0
		}
		b := r.buf[r.off]
		r.off++
		u |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return u
		}
		shift += 7
	}
}

// Varint reads a zigzag varint.
func (r *Reader) Varint() int64 {
	u := r.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Int reads a zigzag varint as an int.
func (r *Reader) Int() int { return int(r.Varint()) }

// U16 reads a fixed 2-byte little-endian value.
func (r *Reader) U16() uint16 {
	if r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := uint16(r.buf[r.off]) | uint16(r.buf[r.off+1])<<8
	r.off += 2
	return v
}

// U32 reads a fixed 4-byte little-endian value.
func (r *Reader) U32() uint32 {
	if r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := uint32(r.buf[r.off]) | uint32(r.buf[r.off+1])<<8 |
		uint32(r.buf[r.off+2])<<16 | uint32(r.buf[r.off+3])<<24
	r.off += 4
	return v
}

// U64 reads a fixed 8-byte little-endian value.
func (r *Reader) U64() uint64 {
	if r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off:]
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	r.off += 8
	return v
}

// Count reads a uvarint element count and validates it against the
// bytes remaining, assuming each element costs at least elemMin bytes.
// Decoders size their slice allocations from it, so a corrupt count
// can never force a huge allocation.
func (r *Reader) Count(elemMin int) int {
	n := r.Uvarint()
	if elemMin < 1 {
		elemMin = 1
	}
	if n > uint64(r.Remaining()/elemMin) {
		r.fail()
		return 0
	}
	return int(n)
}

// String reads a uvarint length followed by that many bytes, returned
// as a slice of the frame arena: the payload is materialized as one Go
// string on the first call and shared by every string of the frame.
func (r *Reader) String() string {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return ""
	}
	if r.arena == "" {
		r.arena = string(r.buf)
	}
	s := r.arena[r.off : r.off+n]
	r.off += n
	return s
}

// Finish reports an error if the payload was not fully consumed —
// trailing garbage is as much a framing bug as truncation.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}
