package transport

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestMuxRoutesToFirstRecognizingHandler(t *testing.T) {
	intHandler := func(ctx context.Context, from Addr, body any) (any, error) {
		if v, ok := body.(int); ok {
			return v * 2, nil
		}
		return nil, fmt.Errorf("%w: %T", ErrUnhandled, body)
	}
	strHandler := func(ctx context.Context, from Addr, body any) (any, error) {
		if s, ok := body.(string); ok {
			return s + "!", nil
		}
		return nil, fmt.Errorf("%w: %T", ErrUnhandled, body)
	}
	mux := Mux(intHandler, strHandler)
	ctx := context.Background()

	if got, err := mux(ctx, "", 21); err != nil || got != 42 {
		t.Errorf("int via mux = %v, %v", got, err)
	}
	if got, err := mux(ctx, "", "hi"); err != nil || got != "hi!" {
		t.Errorf("string via mux = %v, %v", got, err)
	}
	if _, err := mux(ctx, "", 3.14); !errors.Is(err, ErrUnhandled) {
		t.Errorf("float via mux: %v, want ErrUnhandled", err)
	}
}

func TestMuxPropagatesRealErrors(t *testing.T) {
	boom := errors.New("boom")
	failing := func(ctx context.Context, from Addr, body any) (any, error) {
		return nil, boom
	}
	fallback := func(ctx context.Context, from Addr, body any) (any, error) {
		return "should not reach", nil
	}
	mux := Mux(failing, fallback)
	if _, err := mux(context.Background(), "", 1); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom (no fallthrough on real errors)", err)
	}
}

func TestMuxEmpty(t *testing.T) {
	mux := Mux()
	if _, err := mux(context.Background(), "", 1); !errors.Is(err, ErrUnhandled) {
		t.Errorf("empty mux: %v", err)
	}
}

func TestRegisterTypeIdempotent(t *testing.T) {
	type sample struct{ A int }
	RegisterType(sample{})
	RegisterType(sample{}) // must not panic
}
