// Package transport defines the message-passing abstraction the DHT and
// the keyword-index layers run on. Two implementations exist:
// package inmem (a deterministic simulated network used by tests and
// the experiment harness) and package tcpnet (length-prefixed gob RPC
// over real TCP connections for multi-process deployments).
package transport

import (
	"context"
	"encoding/gob"
	"errors"
)

// Addr identifies a node endpoint. For the in-memory network it is an
// arbitrary logical name; for TCP it is a host:port string.
type Addr string

// Handler processes one request addressed to a local node and returns
// the response body. Implementations must be safe for concurrent use.
type Handler func(ctx context.Context, from Addr, body any) (any, error)

// Sender delivers requests to remote nodes.
type Sender interface {
	// Send delivers body to the node at 'to' and returns its response.
	// The concrete body and response types must be registered with
	// RegisterType so that networked transports can encode them.
	Send(ctx context.Context, to Addr, body any) (any, error)
}

// Node is a bound endpoint that can receive requests.
type Node interface {
	// Addr returns the endpoint's address.
	Addr() Addr
	// Close unbinds the endpoint and releases its resources.
	Close() error
}

// Network is a transport that can both send and host endpoints.
type Network interface {
	Sender
	// Bind registers handler at addr and returns the live endpoint.
	Bind(addr Addr, handler Handler) (Node, error)
}

// Sentinel errors shared by all transports.
var (
	// ErrUnreachable reports that the destination is not bound, is
	// marked failed, or cannot be connected to.
	ErrUnreachable = errors.New("transport: destination unreachable")
	// ErrClosed reports use of a closed transport or endpoint.
	ErrClosed = errors.New("transport: closed")
	// ErrRemote wraps an application error returned by a remote handler.
	ErrRemote = errors.New("transport: remote error")
	// ErrUnhandled is returned (wrapped) by protocol handlers for
	// message types they do not recognize, letting Mux route one
	// endpoint across several protocol layers.
	ErrUnhandled = errors.New("transport: unhandled message type")
)

// Mux combines several protocol handlers behind one endpoint: each
// request is offered to the handlers in order until one does not
// report ErrUnhandled.
func Mux(handlers ...Handler) Handler {
	return func(ctx context.Context, from Addr, body any) (any, error) {
		var lastErr error
		for _, h := range handlers {
			resp, err := h(ctx, from, body)
			if err == nil {
				return resp, nil
			}
			if !errors.Is(err, ErrUnhandled) {
				return nil, err
			}
			lastErr = err
		}
		if lastErr == nil {
			lastErr = ErrUnhandled
		}
		return nil, lastErr
	}
}

// RegisterType registers a concrete message type with gob so that the
// TCP transport can marshal it inside the any-typed envelope. Calling
// it multiple times with the same type is safe; it is a no-op for the
// in-memory transport but should be called unconditionally so that the
// same wiring works over both transports.
func RegisterType(value any) {
	gob.Register(value)
}
