package inmem

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/transport"
)

func echoHandler(ctx context.Context, from transport.Addr, body any) (any, error) {
	return body, nil
}

func TestSendRoundTrip(t *testing.T) {
	n := New(1)
	defer n.Close()
	if _, err := n.Bind("a", echoHandler); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	got, err := n.Send(context.Background(), "a", "hello")
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got != "hello" {
		t.Errorf("Send returned %v, want hello", got)
	}
}

func TestSendUnboundAddress(t *testing.T) {
	n := New(1)
	defer n.Close()
	_, err := n.Send(context.Background(), "missing", 1)
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestDuplicateBind(t *testing.T) {
	n := New(1)
	defer n.Close()
	if _, err := n.Bind("a", echoHandler); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if _, err := n.Bind("a", echoHandler); err == nil {
		t.Error("duplicate Bind succeeded")
	}
}

func TestNodeCloseUnbinds(t *testing.T) {
	n := New(1)
	defer n.Close()
	node, err := n.Bind("a", echoHandler)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if node.Addr() != "a" {
		t.Errorf("Addr = %q", node.Addr())
	}
	if err := node.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := n.Send(context.Background(), "a", 1); !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("send after close: %v, want ErrUnreachable", err)
	}
}

func TestRemoteErrorWrapped(t *testing.T) {
	n := New(1)
	defer n.Close()
	boom := errors.New("boom")
	n.Bind("a", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		return nil, boom
	})
	_, err := n.Send(context.Background(), "a", 1)
	if !errors.Is(err, transport.ErrRemote) {
		t.Errorf("err = %v, want ErrRemote", err)
	}
}

func TestFailureInjectionDown(t *testing.T) {
	n := New(1)
	defer n.Close()
	n.Bind("a", echoHandler)
	n.SetDown("a", true)
	if _, err := n.Send(context.Background(), "a", 1); !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("send to down node: %v", err)
	}
	n.SetDown("a", false)
	if _, err := n.Send(context.Background(), "a", 1); err != nil {
		t.Errorf("send after recovery: %v", err)
	}
}

func TestFailureInjectionBlockedLink(t *testing.T) {
	n := New(1)
	defer n.Close()
	n.Bind("b", echoHandler)
	n.Block("a", "b", true)
	if _, err := n.SendFrom(context.Background(), "a", "b", 1); !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("blocked link send: %v", err)
	}
	// Other senders are unaffected.
	if _, err := n.SendFrom(context.Background(), "c", "b", 1); err != nil {
		t.Errorf("unblocked sender: %v", err)
	}
	n.Block("a", "b", false)
	if _, err := n.SendFrom(context.Background(), "a", "b", 1); err != nil {
		t.Errorf("send after unblock: %v", err)
	}
}

func TestDropProbability(t *testing.T) {
	n := New(7)
	defer n.Close()
	n.Bind("a", echoHandler)
	n.SetDropProb(1.0)
	if _, err := n.Send(context.Background(), "a", 1); !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("drop-all send: %v", err)
	}
	n.SetDropProb(0)
	if _, err := n.Send(context.Background(), "a", 1); err != nil {
		t.Errorf("send after prob reset: %v", err)
	}
}

func TestStatsCounting(t *testing.T) {
	n := New(1)
	defer n.Close()
	n.Bind("a", echoHandler)
	for i := 0; i < 3; i++ {
		n.Send(context.Background(), "a", "x")
	}
	n.Send(context.Background(), "missing", 42)
	s := n.Stats()
	if s.Messages != 4 {
		t.Errorf("Messages = %d, want 4", s.Messages)
	}
	if s.Failures != 1 {
		t.Errorf("Failures = %d, want 1", s.Failures)
	}
	if s.ByType["string"] != 3 || s.ByType["int"] != 1 {
		t.Errorf("ByType = %v", s.ByType)
	}
	n.ResetStats()
	if s := n.Stats(); s.Messages != 0 || len(s.ByType) != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

func TestClosedNetwork(t *testing.T) {
	n := New(1)
	n.Bind("a", echoHandler)
	n.Close()
	if _, err := n.Send(context.Background(), "a", 1); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("send on closed: %v", err)
	}
	if _, err := n.Bind("b", echoHandler); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("bind on closed: %v", err)
	}
}

func TestReentrantHandler(t *testing.T) {
	// A handler may itself send messages (the index protocol does).
	n := New(1)
	defer n.Close()
	n.Bind("leaf", echoHandler)
	n.Bind("relay", func(ctx context.Context, from transport.Addr, body any) (any, error) {
		return n.Send(ctx, "leaf", body)
	})
	got, err := n.Send(context.Background(), "relay", "ping")
	if err != nil || got != "ping" {
		t.Errorf("relay send = %v, %v", got, err)
	}
}

func TestConcurrentSends(t *testing.T) {
	n := New(1)
	defer n.Close()
	n.Bind("a", echoHandler)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := fmt.Sprintf("m%d", i)
			got, err := n.Send(context.Background(), "a", msg)
			if err != nil || got != msg {
				t.Errorf("concurrent send %d: %v, %v", i, got, err)
			}
		}(i)
	}
	wg.Wait()
	if s := n.Stats(); s.Messages != 50 {
		t.Errorf("Messages = %d, want 50", s.Messages)
	}
}
