// Package inmem provides a deterministic in-process transport.Network.
// Message delivery is a synchronous function call guarded by a snapshot
// of the routing table, which keeps simulations reproducible and fast
// while still exercising the full request/response protocol. The
// network counts traffic and supports failure injection (downed nodes,
// probabilistic drops, partitions) for fault-tolerance tests.
package inmem

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"time"

	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Stats is a snapshot of network traffic counters.
type Stats struct {
	// Messages is the total number of requests delivered (or attempted).
	Messages uint64
	// Failures is the number of sends that failed (unreachable/dropped).
	Failures uint64
	// ByType counts delivered requests keyed by the %T of the body.
	ByType map[string]uint64
}

// Network is an in-memory transport.Network. The zero value is not
// usable; construct with New.
type Network struct {
	mu       sync.Mutex
	closed   bool
	handlers map[transport.Addr]transport.Handler
	down     map[transport.Addr]bool
	blocked  map[[2]transport.Addr]bool
	latency  map[transport.Addr]time.Duration
	dropProb float64
	rng      *rand.Rand

	messages uint64
	failures uint64
	byType   map[reflect.Type]uint64

	// Telemetry instruments (nil without SetTelemetry). metByType
	// caches the per-type vec children, resolved under mu (which Send
	// already holds), keeping the hot path to one atomic add. Traffic
	// arrives in single-type bursts (e.g. a wave of T_CONT sub-queries),
	// so a one-entry cache in front of the map catches nearly every
	// message with a pointer compare.
	metMsgs     *telemetry.CounterVec // transport_inmem_msgs_total{type}
	metFail     *telemetry.Counter    // transport_inmem_failures_total
	metLatency  *telemetry.Histogram  // transport_inmem_rpc_duration_ns
	metByType   map[reflect.Type]*telemetry.Counter
	metLastType reflect.Type
	metLast     *telemetry.Counter
}

var _ transport.Network = (*Network)(nil)

// New returns an empty in-memory network. seed drives probabilistic
// message dropping only; with DropProb 0 the network is fully
// deterministic.
func New(seed int64) *Network {
	return &Network{
		handlers: make(map[transport.Addr]transport.Handler),
		down:     make(map[transport.Addr]bool),
		blocked:  make(map[[2]transport.Addr]bool),
		latency:  make(map[transport.Addr]time.Duration),
		rng:      rand.New(rand.NewSource(seed)),
		byType:   make(map[reflect.Type]uint64),
	}
}

// latencySampleEvery is the sampling stride of the handler-latency
// histogram: in-process deliveries take well under a microsecond, so
// timing every call would cost more than the call itself. Message and
// failure counters remain exact.
const latencySampleEvery = 32

// SetTelemetry mirrors the network's traffic counters into reg:
// per-message-type delivery counts, failed sends, and sampled handler
// latency. The built-in Stats() accounting is unaffected. A nil
// registry disables the mirroring.
func (n *Network) SetTelemetry(reg *telemetry.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if reg == nil {
		n.metMsgs, n.metFail, n.metLatency, n.metByType = nil, nil, nil, nil
		n.metLastType, n.metLast = nil, nil
		return
	}
	n.metMsgs = reg.CounterVec("transport_inmem_msgs_total", "type")
	n.metFail = reg.Counter("transport_inmem_failures_total")
	n.metLatency = reg.Histogram("transport_inmem_rpc_duration_ns", telemetry.DefaultLatencyBuckets)
	n.metByType = make(map[reflect.Type]*telemetry.Counter)
	n.metLastType, n.metLast = nil, nil
}

type boundNode struct {
	net  *Network
	addr transport.Addr
}

func (n *boundNode) Addr() transport.Addr { return n.addr }

func (n *boundNode) Close() error {
	n.net.mu.Lock()
	defer n.net.mu.Unlock()
	delete(n.net.handlers, n.addr)
	return nil
}

// Bind registers handler at addr.
func (n *Network) Bind(addr transport.Addr, handler transport.Handler) (transport.Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, transport.ErrClosed
	}
	if _, dup := n.handlers[addr]; dup {
		return nil, fmt.Errorf("inmem: address %q already bound", addr)
	}
	n.handlers[addr] = handler
	return &boundNode{net: n, addr: addr}, nil
}

// Send delivers body to the handler bound at 'to'. The caller's address
// is unknown to the in-memory network, so handlers receive from = "".
// Use SendFrom when the sender identity matters.
func (n *Network) Send(ctx context.Context, to transport.Addr, body any) (any, error) {
	return n.SendFrom(ctx, "", to, body)
}

// SendFrom delivers body to 'to', reporting 'from' to the handler.
func (n *Network) SendFrom(ctx context.Context, from, to transport.Addr, body any) (any, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, transport.ErrClosed
	}
	n.messages++
	bodyType := reflect.TypeOf(body)
	n.byType[bodyType]++
	metFail, metLatency := n.metFail, n.metLatency
	if metLatency != nil && n.messages%latencySampleEvery != 0 {
		metLatency = nil
	}
	if n.metMsgs != nil {
		c := n.metLast
		if bodyType != n.metLastType {
			var ok bool
			c, ok = n.metByType[bodyType]
			if !ok {
				c = n.metMsgs.With(typeName(bodyType))
				n.metByType[bodyType] = c
			}
			n.metLastType, n.metLast = bodyType, c
		}
		c.Inc()
	}
	handler, ok := n.handlers[to]
	switch {
	case !ok || n.down[to]:
		n.failures++
		n.mu.Unlock()
		metFail.Inc()
		return nil, fmt.Errorf("send to %q: %w", to, transport.ErrUnreachable)
	case n.blocked[[2]transport.Addr{from, to}]:
		n.failures++
		n.mu.Unlock()
		metFail.Inc()
		return nil, fmt.Errorf("send %q→%q blocked: %w", from, to, transport.ErrUnreachable)
	case n.dropProb > 0 && n.rng.Float64() < n.dropProb:
		n.failures++
		n.mu.Unlock()
		metFail.Inc()
		return nil, fmt.Errorf("send to %q dropped: %w", to, transport.ErrUnreachable)
	}
	delay := n.latency[to]
	n.mu.Unlock()

	if delay > 0 {
		// A slow node, not a dead one: the request still arrives unless
		// the caller gives up first.
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	var started time.Time
	if metLatency != nil {
		started = time.Now()
	}
	resp, err := handler(ctx, from, body)
	if metLatency != nil {
		metLatency.ObserveSince(started)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", transport.ErrRemote, err)
	}
	return resp, nil
}

// SetDown marks addr as failed (true) or recovered (false). Sends to a
// downed node fail with ErrUnreachable while its handler stays bound.
func (n *Network) SetDown(addr transport.Addr, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down {
		n.down[addr] = true
	} else {
		delete(n.down, addr)
	}
}

// SetLatency injects a fixed delivery delay in front of addr's handler
// (0 removes it). Unlike SetDown, a slow node still answers — unless
// the caller's context expires first, which is exactly the case the
// chaos harness uses to exercise per-attempt timeouts and hedging.
func (n *Network) SetLatency(addr transport.Addr, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d > 0 {
		n.latency[addr] = d
	} else {
		delete(n.latency, addr)
	}
}

// Block severs the directed link from→to (or restores it).
func (n *Network) Block(from, to transport.Addr, blocked bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := [2]transport.Addr{from, to}
	if blocked {
		n.blocked[key] = true
	} else {
		delete(n.blocked, key)
	}
}

// SetDropProb sets the probability in [0, 1] that any send is dropped.
func (n *Network) SetDropProb(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropProb = p
}

// Stats returns a copy of the traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	byType := make(map[string]uint64, len(n.byType))
	for k, v := range n.byType {
		byType[typeName(k)] = v
	}
	return Stats{Messages: n.messages, Failures: n.failures, ByType: byType}
}

// ResetStats zeroes the traffic counters.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.messages = 0
	n.failures = 0
	n.byType = make(map[reflect.Type]uint64)
}

// typeName renders a reflect.Type like the %T verb ("int", "string",
// "inmem.Stats"), keeping the Stats surface stable.
func typeName(t reflect.Type) string {
	if t == nil {
		return "<nil>"
	}
	return t.String()
}

// Close unbinds every endpoint and rejects further use.
func (n *Network) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	n.handlers = make(map[transport.Addr]transport.Handler)
	return nil
}
