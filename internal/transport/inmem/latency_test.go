package inmem

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSetLatencyDelaysDelivery(t *testing.T) {
	n := New(1)
	defer n.Close()
	if _, err := n.Bind("a", echoHandler); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	n.SetLatency("a", 30*time.Millisecond)

	start := time.Now()
	if _, err := n.Send(context.Background(), "a", "hello"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("delivery took %v, want >= 30ms of injected latency", elapsed)
	}

	// A caller that cannot wait out the latency gets its context error,
	// not a late response.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	n.SetLatency("a", time.Hour)
	if _, err := n.Send(ctx, "a", "hello"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Send under latency = %v, want DeadlineExceeded", err)
	}

	// Clearing the latency restores prompt delivery.
	n.SetLatency("a", 0)
	start = time.Now()
	if _, err := n.Send(context.Background(), "a", "hello"); err != nil {
		t.Fatalf("Send after clear: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("delivery took %v after latency was cleared", elapsed)
	}
}
