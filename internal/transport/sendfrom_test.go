package transport_test

import (
	"context"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
	"github.com/p2pkeyword/keysearch/internal/transport/tcpnet"
	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

type fromProbe struct{ X int }

func (m *fromProbe) MarshalWire(w *wire.Writer)         { w.Int(m.X) }
func (m *fromProbe) UnmarshalWire(r *wire.Reader) error { m.X = r.Int(); return r.Err() }

func registerProbe() {
	transport.RegisterType(fromProbe{})
	wire.Register[fromProbe](59101)
}

// echoFrom returns the handler-observed sender address as the body.
func echoFrom(got *transport.Addr) transport.Handler {
	return func(ctx context.Context, from transport.Addr, body any) (any, error) {
		*got = from
		return body, nil
	}
}

// Regression test for the empty-From bug: tcpnet.Network.Send used to
// leave request.From blank, so TCP handlers could never learn the
// sender while inmem handlers could (via SendFrom). Both transports
// must now report the sender: tcpnet's Send threads the network's
// bound listener address through automatically, and SendFrom overrides
// it explicitly on both.
func TestHandlerObservedFrom(t *testing.T) {
	registerProbe()

	t.Run("inmem", func(t *testing.T) {
		n := inmem.New(1)
		var got transport.Addr
		if _, err := n.Bind("server", echoFrom(&got)); err != nil {
			t.Fatal(err)
		}
		if _, err := n.SendFrom(context.Background(), "client-7", "server", fromProbe{X: 1}); err != nil {
			t.Fatal(err)
		}
		if got != "client-7" {
			t.Errorf("inmem handler saw from=%q, want %q", got, "client-7")
		}
	})

	for _, mode := range []string{tcpnet.WireBinary, tcpnet.WireGob} {
		t.Run("tcpnet/"+mode, func(t *testing.T) {
			srv, err := tcpnet.NewWithConfig(tcpnet.Config{Wire: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			var got transport.Addr
			node, err := srv.Bind("127.0.0.1:0", echoFrom(&got))
			if err != nil {
				t.Fatal(err)
			}

			cli, err := tcpnet.NewWithConfig(tcpnet.Config{Wire: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			cliNode, err := cli.Bind("127.0.0.1:0", func(ctx context.Context, from transport.Addr, body any) (any, error) {
				return body, nil
			})
			if err != nil {
				t.Fatal(err)
			}

			// Plain Send must thread the client's bound listener address.
			if _, err := cli.Send(context.Background(), node.Addr(), fromProbe{X: 2}); err != nil {
				t.Fatal(err)
			}
			if got != cliNode.Addr() {
				t.Errorf("%s handler saw from=%q under Send, want bound addr %q", mode, got, cliNode.Addr())
			}

			// SendFrom overrides the identity explicitly.
			if _, err := cli.SendFrom(context.Background(), "custom-id", node.Addr(), fromProbe{X: 3}); err != nil {
				t.Fatal(err)
			}
			if got != "custom-id" {
				t.Errorf("%s handler saw from=%q under SendFrom, want %q", mode, got, "custom-id")
			}
		})
	}
}
