// Package load is an open-loop load rig for keysearch deployments: it
// replays a query log at a configured arrival rate — independent of
// how fast the system answers, the way a population of a million
// independent users would — and accounts latency against each
// request's *intended* start time, so queueing delay the system causes
// is charged to the system rather than silently absorbed by a stalled
// closed-loop driver (the coordinated-omission trap).
//
// The rig is transport-agnostic: Run drives any func(ctx, Query) error
// and classifies outcomes into goodput, shed (typed overload errors
// from admission control), deadline timeouts, and other errors.
package load

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/p2pkeyword/keysearch/internal/admission"
	"github.com/p2pkeyword/keysearch/internal/corpus"
)

// Arrival process names for Config.Arrival.
const (
	// ArrivalPoisson spaces requests by exponentially distributed
	// gaps (a memoryless open-loop population, the default).
	ArrivalPoisson = "poisson"
	// ArrivalFixed spaces requests by exactly 1/Rate.
	ArrivalFixed = "fixed"
)

// Config parameterizes one open-loop run.
type Config struct {
	// Rate is the offered arrival rate in requests/second (required).
	Rate float64
	// Duration is the offered-load window; arrivals are scheduled over
	// [0, Duration) (required).
	Duration time.Duration
	// Arrival selects the arrival process (default ArrivalPoisson).
	Arrival string
	// Seed drives the arrival process and query-log phase (Poisson gaps
	// are deterministic given Seed).
	Seed int64
	// Timeout is the per-request deadline (0 = none). It bounds how
	// long a request may wait in server queues before the rig counts it
	// against the SLO.
	Timeout time.Duration
	// MaxOutstanding caps concurrently outstanding requests; arrivals
	// beyond the cap are dropped by the rig itself and counted in
	// Report.RigDropped rather than silently deferred (which would
	// re-introduce coordinated omission). Default 16384.
	MaxOutstanding int
}

func (c Config) withDefaults() Config {
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 16384
	}
	return c
}

func (c Config) validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("load: rate %v must be positive", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("load: duration %v must be positive", c.Duration)
	}
	if c.Arrival != ArrivalPoisson && c.Arrival != ArrivalFixed {
		return fmt.Errorf("load: unknown arrival process %q", c.Arrival)
	}
	return nil
}

// Schedule returns the deterministic arrival offsets of a run: the
// intended start time of request i relative to the run start. It is
// exported so replay comparability is testable — the same Config must
// always produce the same schedule.
func Schedule(cfg Config) ([]time.Duration, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	gapMean := float64(time.Second) / cfg.Rate
	n := int(float64(cfg.Duration) / gapMean)
	offsets := make([]time.Duration, 0, n+16)
	switch cfg.Arrival {
	case ArrivalFixed:
		for off := time.Duration(0); off < cfg.Duration; off += time.Duration(gapMean) {
			offsets = append(offsets, off)
		}
	case ArrivalPoisson:
		rng := rand.New(rand.NewSource(cfg.Seed))
		off := time.Duration(0)
		for off < cfg.Duration {
			offsets = append(offsets, off)
			off += time.Duration(rng.ExpFloat64() * gapMean)
		}
	}
	return offsets, nil
}

// Report is the outcome of one open-loop run. Offered always equals
// OK + Shed + Timeouts + Errors + RigDropped.
type Report struct {
	Offered    uint64 `json:"offered"`
	OK         uint64 `json:"ok"`
	Shed       uint64 `json:"shed"`     // typed overload errors (admission control)
	Timeouts   uint64 `json:"timeouts"` // per-request deadline exceeded
	Errors     uint64 `json:"errors"`   // anything else
	RigDropped uint64 `json:"rig_dropped"`

	// Elapsed is wall time from the first intended arrival to the last
	// completion.
	Elapsed time.Duration `json:"elapsed_ns"`
	// OfferedQPS and GoodputQPS are Offered/Elapsed and OK/Elapsed.
	OfferedQPS float64 `json:"offered_qps"`
	GoodputQPS float64 `json:"goodput_qps"`
	// ShedRate is Shed/Offered.
	ShedRate float64 `json:"shed_rate"`

	// Latency summarizes successful requests, measured from each
	// request's intended start time (coordinated-omission safe).
	Latency LatencySummary `json:"latency"`
	// RetryAfterMeanNS is the mean server Retry-After hint across shed
	// requests (0 when nothing was shed).
	RetryAfterMeanNS int64 `json:"retry_after_mean_ns"`
}

// LatencySummary holds exact (sample-sorted, not bucketed) quantiles
// in nanoseconds over the successful requests of a run.
type LatencySummary struct {
	Count uint64 `json:"count"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
	P999  int64  `json:"p999"`
	Max   int64  `json:"max"`
	Mean  int64  `json:"mean"`
}

// Run replays queries open-loop through do. Request i issues the
// (i mod len(queries))-th query at its scheduled offset; do's error
// return classifies the outcome. ctx cancellation stops launching new
// arrivals (already-launched requests finish) and is not an error.
func Run(ctx context.Context, cfg Config, queries []corpus.Query, do func(context.Context, corpus.Query) error) (Report, error) {
	cfg = cfg.withDefaults()
	if len(queries) == 0 {
		return Report{}, fmt.Errorf("load: empty query log")
	}
	offsets, err := Schedule(cfg)
	if err != nil {
		return Report{}, err
	}

	rec := newRecorder(len(offsets))
	sem := make(chan struct{}, cfg.MaxOutstanding)
	var wg sync.WaitGroup
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}

launch:
	for i, off := range offsets {
		intended := start.Add(off)
		if wait := time.Until(intended); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break launch
			}
		} else if ctx.Err() != nil {
			break launch
		}
		select {
		case sem <- struct{}{}:
		default:
			rec.rigDrop()
			continue
		}
		q := queries[i%len(queries)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			reqCtx := ctx
			if cfg.Timeout > 0 {
				var cancel context.CancelFunc
				reqCtx, cancel = context.WithDeadline(context.Background(), intended.Add(cfg.Timeout))
				defer cancel()
			}
			err := do(reqCtx, q)
			// Intended-start accounting: a request the fleet parked in a
			// queue for 300ms is a 300ms+ request even if the RPC itself
			// was fast once admitted.
			rec.record(time.Since(intended), err)
		}()
	}
	wg.Wait()
	return rec.report(time.Since(start)), nil
}

// Classify maps one request error to its Report bucket. Exposed for
// drivers that want consistent accounting outside Run.
func Classify(err error) string {
	switch {
	case err == nil:
		return "ok"
	case admission.IsOverload(err):
		return "shed"
	case isDeadline(err):
		return "timeout"
	default:
		return "error"
	}
}

// isDeadline matches deadline expiry both in-process (errors.Is) and
// after crossing a transport boundary, where typed errors flatten to
// strings.
func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) ||
		(err != nil && strings.Contains(err.Error(), context.DeadlineExceeded.Error()))
}

// quantileExact returns the q-quantile of sorted (ascending) samples
// by the nearest-rank method.
func quantileExact(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
