package load

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/admission"
	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/sim"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// TestScheduleDeterminism pins replay comparability: the same config
// must produce the identical arrival schedule, and the schedule must
// track the configured rate.
func TestScheduleDeterminism(t *testing.T) {
	cfg := Config{Rate: 500, Duration: 2 * time.Second, Seed: 9}
	a, err := Schedule(cfg)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	b, err := Schedule(cfg)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// Poisson arrivals over 2s at 500/s: ~1000 requests, loosely.
	if len(a) < 700 || len(a) > 1300 {
		t.Fatalf("poisson schedule has %d arrivals, want ≈1000", len(a))
	}
	c, err := Schedule(Config{Rate: 500, Duration: 2 * time.Second, Seed: 10})
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical poisson schedules")
	}

	fixed, err := Schedule(Config{Rate: 100, Duration: time.Second, Arrival: ArrivalFixed})
	if err != nil {
		t.Fatalf("fixed schedule: %v", err)
	}
	if len(fixed) != 100 {
		t.Fatalf("fixed schedule has %d arrivals, want 100", len(fixed))
	}
}

// TestClassify pins the outcome buckets across error shapes.
func TestClassify(t *testing.T) {
	over := &admission.Overload{Reason: admission.ReasonQueueFull, RetryAfter: time.Millisecond}
	for _, tc := range []struct {
		err  error
		want string
	}{
		{nil, "ok"},
		{over, "shed"},
		{fmt.Errorf("%w: %s", transport.ErrRemote, over.Error()), "shed"},
		{context.DeadlineExceeded, "timeout"},
		{fmt.Errorf("search: %w", context.DeadlineExceeded), "timeout"},
		{fmt.Errorf("%w: context deadline exceeded", transport.ErrRemote), "timeout"},
		{errors.New("boom"), "error"},
	} {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

// TestLoadSmoke is the CI smoke (`make load-smoke`): a short seeded
// open-loop run against an inmem fleet with admission control on. It
// asserts the accounting identities the BENCH files rely on — goodput
// is nonzero, every offered request lands in exactly one outcome
// bucket, the server-side admission counters reconcile with the rig's
// view, and the run round-trips through a BENCH file.
func TestLoadSmoke(t *testing.T) {
	reg := telemetry.New(0)
	d, err := sim.NewCustomDeployment(sim.DeployConfig{
		R: 6, Peers: 8, Telemetry: reg,
		Admission: &admission.Policy{MaxInflight: 64, MaxQueue: 128, QueueTimeout: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	defer d.Close()

	c, err := corpus.Generate(corpus.Config{Objects: 400, VocabSize: 600, Seed: 5})
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	if err := d.InsertCorpus(c); err != nil {
		t.Fatalf("insert corpus: %v", err)
	}
	qlog, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{Queries: 500, Templates: 50, Seed: 6})
	if err != nil {
		t.Fatalf("query log: %v", err)
	}

	// Admission counters before the run: corpus insertion is gated
	// traffic too, so reconcile on deltas.
	before := reg.Snapshot()
	base := before.Counters["admission_admitted_total"] + before.Counters["admission_shed_total"]

	cfg := Config{Rate: 800, Duration: 1500 * time.Millisecond, Seed: 11, Timeout: 2 * time.Second}
	rep, err := Run(context.Background(), cfg, qlog.Queries(), func(ctx context.Context, q corpus.Query) error {
		_, err := d.Client.SupersetSearch(ctx, q.Keywords, 10, core.SearchOptions{Order: core.ParallelLevels, NoCache: true, ClientID: "smoke"})
		return err
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	if rep.OK == 0 || rep.GoodputQPS <= 0 {
		t.Fatalf("no goodput: %+v", rep)
	}
	if got := rep.OK + rep.Shed + rep.Timeouts + rep.Errors + rep.RigDropped; got != rep.Offered {
		t.Fatalf("outcome buckets sum to %d, offered %d", got, rep.Offered)
	}
	if rep.Errors > 0 {
		t.Fatalf("unexpected hard errors: %+v", rep)
	}
	if rep.Latency.Count != rep.OK || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P999 {
		t.Fatalf("implausible latency summary: %+v", rep.Latency)
	}

	// Every request the rig actually sent hit exactly one admission
	// decision on some server (no middleware retries in this fleet).
	after := reg.Snapshot()
	decided := after.Counters["admission_admitted_total"] + after.Counters["admission_shed_total"] - base
	sent := rep.Offered - rep.RigDropped
	if decided != sent {
		t.Fatalf("admission decisions %d != requests sent %d (admitted+shed must cover every arrival)", decided, sent)
	}

	// The run must survive a BENCH round trip.
	path := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	bench := NewBench("smoke", Workload{
		Transport: "inmem", R: 6, Peers: 8,
		CorpusObjects: 400, CorpusSeed: 5,
		Queries: 500, Templates: 50, QuerySeed: 6, Threshold: 10,
	})
	bench.Runs = append(bench.Runs, RunResult{
		Name: "smoke", Admission: true, RateQPS: cfg.Rate,
		Arrival: ArrivalPoisson, TimeoutNS: cfg.Timeout.Nanoseconds(), Report: rep,
	})
	if err := WriteBench(path, bench); err != nil {
		t.Fatalf("write bench: %v", err)
	}
	back, err := ReadBench(path)
	if err != nil {
		t.Fatalf("read bench: %v", err)
	}
	if back.Schema != BenchSchema || len(back.Runs) != 1 || back.Runs[0].Report.OK != rep.OK {
		t.Fatalf("bench round trip mismatch: %+v", back)
	}
}

// TestRunRespectsCancellation: cancelling the run context stops
// launching new arrivals without erroring.
func TestRunRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	queries := []corpus.Query{{Keywords: keyword.NewSet("a")}}
	rep, err := Run(ctx, Config{Rate: 100, Duration: 10 * time.Second, Seed: 1}, queries,
		func(ctx context.Context, q corpus.Query) error { return nil })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Offered >= 900 {
		t.Fatalf("cancellation did not stop the launcher: offered %d", rep.Offered)
	}
}
