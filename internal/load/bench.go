package load

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// BenchSchema identifies the BENCH file format; bump on incompatible
// changes so downstream tooling can refuse what it can't parse.
const BenchSchema = "ksload/bench/v1"

// BenchFile is the machine-readable record of one ksload invocation:
// the workload that was offered, the fleet it ran against, and one
// RunResult per measured phase. Files are written as
// results/BENCH_<tag>.json; see results/README.md for the field-level
// contract.
type BenchFile struct {
	Schema          string   `json:"schema"`
	Tag             string   `json:"tag"`
	GeneratedAtUnix int64    `json:"generated_at_unix"`
	GitSHA          string   `json:"git_sha,omitempty"`
	GoMaxProcs      int      `json:"gomaxprocs"`
	Workload        Workload `json:"workload"`
	// CapacityQPS is the fleet's measured closed-loop capacity (0 when
	// the invocation didn't probe it); study runs express their offered
	// rates as multiples of it.
	CapacityQPS float64     `json:"capacity_qps,omitempty"`
	Runs        []RunResult `json:"runs"`
}

// Workload describes the corpus, query log, and fleet of a BENCH file
// precisely enough to regenerate them (everything is seed-derived).
type Workload struct {
	Transport     string `json:"transport"` // "inmem" or "tcp"
	R             int    `json:"r"`         // hypercube dimensionality
	Peers         int    `json:"peers"`
	CorpusObjects int    `json:"corpus_objects"`
	CorpusSeed    int64  `json:"corpus_seed"`
	Queries       int    `json:"queries"`
	Templates     int    `json:"templates"`
	QuerySeed     int64  `json:"query_seed"`
	Threshold     int    `json:"threshold"`
	// PrefixFrac > 0 means every round(1/PrefixFrac)-th request was
	// issued as a prefix multicast over the query's first keyword
	// truncated to PrefixLen characters, instead of a superset search.
	PrefixFrac float64 `json:"prefix_frac,omitempty"`
	PrefixLen  int     `json:"prefix_len,omitempty"`
}

// RunResult is one measured phase: a Report plus the offered-load
// configuration that produced it.
type RunResult struct {
	Name      string  `json:"name"`
	Admission bool    `json:"admission"`
	RateQPS   float64 `json:"rate_qps"`
	Arrival   string  `json:"arrival"`
	TimeoutNS int64   `json:"timeout_ns"`
	Report    Report  `json:"report"`

	// Hot-vertex layer shape of the phase's fleet (zero and omitted
	// for cache-off phases): per-peer cache units, soft replicas per
	// promoted root, and the promotion threshold.
	CacheUnits   int `json:"cache_units,omitempty"`
	HotReplicas  int `json:"hot_replicas,omitempty"`
	HotThreshold int `json:"hot_threshold,omitempty"`

	// Hot-vertex layer accounting, recorded by cache-on phases (zero
	// and omitted elsewhere). CacheHitRatio is fleet-wide result-cache
	// hits over consultations; SoftServes counts queries served by a
	// soft replica instead of the root owner; RefineHits counts
	// answers derived from a cached ancestor (Lemma 3.3).
	CacheHitRatio float64 `json:"cache_hit_ratio,omitempty"`
	SoftServes    uint64  `json:"soft_serves,omitempty"`
	RefineHits    uint64  `json:"refine_hits,omitempty"`
	// Per-peer serving-load concentration over the phase, from
	// ops-served deltas: the hottest peer's share of all served
	// operations and the Gini coefficient of the distribution.
	TopNodeShare float64 `json:"top_node_share,omitempty"`
	LoadGini     float64 `json:"load_gini,omitempty"`
}

// WriteBench writes the file as indented JSON at path.
func WriteBench(path string, b *BenchFile) error {
	if b.Schema == "" {
		b.Schema = BenchSchema
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBench parses a BENCH file, rejecting unknown schemas.
func ReadBench(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b BenchFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("load: parse %s: %w", path, err)
	}
	if b.Schema != BenchSchema {
		return nil, fmt.Errorf("load: %s has schema %q, want %q", path, b.Schema, BenchSchema)
	}
	return &b, nil
}

// NewBench stamps a BenchFile skeleton with the environment: time,
// GOMAXPROCS, and (best effort) the git commit.
func NewBench(tag string, w Workload) *BenchFile {
	return &BenchFile{
		Schema:          BenchSchema,
		Tag:             tag,
		GeneratedAtUnix: time.Now().Unix(),
		GitSHA:          gitSHA(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Workload:        w,
	}
}

// gitSHA returns the current commit hash, or "" outside a repo.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
