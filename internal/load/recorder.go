package load

import (
	"sort"
	"sync"
	"time"

	"github.com/p2pkeyword/keysearch/internal/admission"
)

// recorder accumulates per-request outcomes of one run. Counts are
// kept per class; raw latency samples are kept only for successful
// requests, which is what the SLO quantiles are defined over.
type recorder struct {
	mu         sync.Mutex
	ok         []int64 // successful-request latencies, ns, intended-start based
	shed       uint64
	timeouts   uint64
	errors     uint64
	rigDropped uint64
	retrySumNS int64
	retryCount int64
}

func newRecorder(capHint int) *recorder {
	return &recorder{ok: make([]int64, 0, capHint)}
}

func (r *recorder) record(latency time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch Classify(err) {
	case "ok":
		r.ok = append(r.ok, latency.Nanoseconds())
	case "shed":
		r.shed++
		if o, ok := admission.FromError(err); ok {
			r.retrySumNS += o.RetryAfter.Nanoseconds()
			r.retryCount++
		}
	case "timeout":
		r.timeouts++
	default:
		r.errors++
	}
}

func (r *recorder) rigDrop() {
	r.mu.Lock()
	r.rigDropped++
	r.mu.Unlock()
}

func (r *recorder) report(elapsed time.Duration) Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := Report{
		OK:         uint64(len(r.ok)),
		Shed:       r.shed,
		Timeouts:   r.timeouts,
		Errors:     r.errors,
		RigDropped: r.rigDropped,
		Elapsed:    elapsed,
	}
	rep.Offered = rep.OK + rep.Shed + rep.Timeouts + rep.Errors + rep.RigDropped
	if sec := elapsed.Seconds(); sec > 0 {
		rep.OfferedQPS = float64(rep.Offered) / sec
		rep.GoodputQPS = float64(rep.OK) / sec
	}
	if rep.Offered > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Offered)
	}
	if r.retryCount > 0 {
		rep.RetryAfterMeanNS = r.retrySumNS / r.retryCount
	}
	if n := len(r.ok); n > 0 {
		sorted := make([]int64, n)
		copy(sorted, r.ok)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum int64
		for _, v := range sorted {
			sum += v
		}
		rep.Latency = LatencySummary{
			Count: uint64(n),
			P50:   quantileExact(sorted, 0.50),
			P90:   quantileExact(sorted, 0.90),
			P99:   quantileExact(sorted, 0.99),
			P999:  quantileExact(sorted, 0.999),
			Max:   sorted[n-1],
			Mean:  sum / int64(n),
		}
	}
	return rep
}
