package dht

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"github.com/p2pkeyword/keysearch/internal/transport"
)

func TestHashKeyDeterministic(t *testing.T) {
	a := HashKey([]byte("hello"))
	b := HashKey([]byte("hello"))
	if a != b {
		t.Error("HashKey not deterministic")
	}
	if HashString("hello") != a {
		t.Error("HashString disagrees with HashKey")
	}
	if HashKey([]byte("hello")) == HashKey([]byte("world")) {
		t.Error("suspicious collision between distinct keys")
	}
}

func TestHashKeyUniformity(t *testing.T) {
	// Bucket 64-bit hashes into 16 ranges; each should get ~1/16.
	const n = 16000
	counts := make([]int, 16)
	for i := 0; i < n; i++ {
		counts[HashString("key-"+strconv.Itoa(i))>>60]++
	}
	for b, c := range counts {
		if c < 750 || c > 1250 {
			t.Errorf("bucket %d has %d keys, want ≈1000", b, c)
		}
	}
}

func TestBetween(t *testing.T) {
	tests := []struct {
		id, from, to ID
		want         bool
	}{
		{5, 1, 10, true},
		{10, 1, 10, true},
		{1, 1, 10, false},
		{11, 1, 10, false},
		{0, 10, 2, true},   // wrap: (10, 2] contains 0
		{15, 10, 2, true},  // wrap: contains 15
		{5, 10, 2, false},  // wrap: excludes 5
		{2, 10, 2, true},   // wrap: includes to
		{10, 10, 2, false}, // wrap: excludes from
		{7, 7, 7, true},    // degenerate: full ring
		{3, 7, 7, true},
	}
	for _, tt := range tests {
		if got := Between(tt.id, tt.from, tt.to); got != tt.want {
			t.Errorf("Between(%d, %d, %d) = %v, want %v", tt.id, tt.from, tt.to, got, tt.want)
		}
	}
}

func TestBetweenOpen(t *testing.T) {
	tests := []struct {
		id, from, to ID
		want         bool
	}{
		{5, 1, 10, true},
		{10, 1, 10, false},
		{1, 1, 10, false},
		{0, 10, 2, true},
		{2, 10, 2, false},
		{10, 10, 2, false},
		{7, 7, 7, false}, // degenerate: everything but from
		{3, 7, 7, true},
	}
	for _, tt := range tests {
		if got := BetweenOpen(tt.id, tt.from, tt.to); got != tt.want {
			t.Errorf("BetweenOpen(%d, %d, %d) = %v, want %v", tt.id, tt.from, tt.to, got, tt.want)
		}
	}
}

func TestPropertyBetweenComplement(t *testing.T) {
	// For from != to, exactly one of Between(id, from, to) and
	// Between(id, to, from) holds unless id == from or id == to.
	f := func(id, from, to ID) bool {
		if from == to {
			return true
		}
		a := Between(id, from, to)
		b := Between(id, to, from)
		switch id {
		case from:
			return !a && b
		case to:
			return a && !b
		default:
			return a != b
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStaticOverlayLookup(t *testing.T) {
	s, err := NewStatic(addrs(16))
	if err != nil {
		t.Fatalf("NewStatic: %v", err)
	}
	ctx := context.Background()
	// The surrogate of a member's own ID is that member.
	for _, a := range addrs(16) {
		got, hops, err := s.Lookup(ctx, HashString(string(a)))
		if err != nil || got != a || hops != 1 {
			t.Errorf("Lookup(%s) = %s, %d, %v", a, got, hops, err)
		}
	}
}

func TestStaticOverlaySurrogateIsSuccessor(t *testing.T) {
	members := addrs(8)
	s, err := NewStatic(members)
	if err != nil {
		t.Fatalf("NewStatic: %v", err)
	}
	// Brute-force successor: the member whose ID minimizes the
	// clockwise distance (mid - id) mod 2^64.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		id := ID(rng.Uint64())
		var want transport.Addr
		bestDist := ^uint64(0)
		for _, m := range members {
			mid := HashString(string(m))
			dist := uint64(mid - id)
			if dist <= bestDist {
				bestDist = dist
				want = m
			}
		}
		if got := s.SuccessorOf(id); got != want {
			t.Fatalf("SuccessorOf(%d) = %s, want %s", id, got, want)
		}
	}
}

func TestStaticOverlayRefLifecycle(t *testing.T) {
	s, err := NewStatic(addrs(4))
	if err != nil {
		t.Fatalf("NewStatic: %v", err)
	}
	ctx := context.Background()
	ref1 := Reference{ObjectID: "obj", Holder: "n1", Location: "/a"}
	ref2 := Reference{ObjectID: "obj", Holder: "n2", Location: "/b"}

	if _, err := s.Read(ctx, "obj"); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("Read missing: %v", err)
	}
	if _, err := s.Insert(ctx, ref1); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := s.Insert(ctx, ref2); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	refs, err := s.Read(ctx, "obj")
	if err != nil || len(refs) != 2 {
		t.Fatalf("Read = %v, %v; want 2 refs", refs, err)
	}
	remaining, err := s.Delete(ctx, ref1)
	if err != nil || remaining != 1 {
		t.Fatalf("Delete = %d, %v; want 1 remaining", remaining, err)
	}
	if _, err := s.Delete(ctx, ref1); !errors.Is(err, ErrNoSuchReference) {
		t.Errorf("double delete: %v", err)
	}
	remaining, err = s.Delete(ctx, ref2)
	if err != nil || remaining != 0 {
		t.Fatalf("Delete last = %d, %v", remaining, err)
	}
	if _, err := s.Read(ctx, "obj"); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("Read after all deletes: %v", err)
	}
}

func TestStaticValidation(t *testing.T) {
	if _, err := NewStatic(nil); err == nil {
		t.Error("NewStatic(nil) succeeded")
	}
}

func addrs(n int) []transport.Addr {
	out := make([]transport.Addr, n)
	for i := range out {
		out[i] = transport.Addr("node-" + strconv.Itoa(i))
	}
	return out
}
