// Package dht defines the generalized DHT network model of Section 2.1
// of the paper: an overlay of nodes with a-bit IDs, a distributed
// object location and routing (DOLR) scheme with a deterministic
// mapping L from object IDs to node IDs, surrogate routing for absent
// IDs, and Insert/Delete/Read operations on object references.
//
// The keyword-index layer (internal/core) is written against these
// interfaces, so any overlay satisfying them can host the index;
// package dht/chord provides the concrete Chord implementation.
package dht

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"github.com/p2pkeyword/keysearch/internal/transport"
)

// ID is a node or key identifier on the 64-bit ring. The ID space is
// {0, …, 2^64-1}; arithmetic is modular.
type ID uint64

// Sentinel errors of the DOLR scheme.
var (
	// ErrNoSuchObject reports a Read or Delete of an unknown object.
	ErrNoSuchObject = errors.New("dht: no such object")
	// ErrNoSuchReference reports a Delete of a reference that was
	// never inserted (or was already removed).
	ErrNoSuchReference = errors.New("dht: no such reference")
	// ErrNotJoined reports an operation on a node outside any ring.
	ErrNotJoined = errors.New("dht: node has not joined a ring")
)

// HashKey implements the deterministic, uniform mapping L (and the
// hypercube-to-DHT mapping g): it hashes an arbitrary byte key into
// the ID space with SHA-256 truncated to 64 bits.
func HashKey(key []byte) ID {
	sum := sha256.Sum256(key)
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// HashString is HashKey for string keys.
func HashString(key string) ID {
	return HashKey([]byte(key))
}

// Between reports whether id lies in the half-open ring interval
// (from, to]. It handles wrap-around; when from == to the interval is
// the full ring (every id qualifies), matching Chord's conventions for
// a single-node ring.
func Between(id, from, to ID) bool {
	if from == to {
		return true
	}
	if from < to {
		return from < id && id <= to
	}
	return id > from || id <= to
}

// BetweenOpen reports whether id lies in the open interval (from, to).
func BetweenOpen(id, from, to ID) bool {
	if from == to {
		return id != from
	}
	if from < to {
		return from < id && id < to
	}
	return id > from || id < to
}

// Reference is the paper's (σ, u) pair: a pointer to one replica of
// object σ held by publisher u. Holder is the transport address of the
// publisher and Location an application-defined locator within it.
type Reference struct {
	ObjectID string
	Holder   transport.Addr
	Location string
}

// Overlay is the node-side view of the DOLR scheme. Every method may
// be invoked on any node of the ring; routing to the responsible node
// is the overlay's job (including surrogate routing when the exact ID
// is absent).
type Overlay interface {
	// Lookup returns the transport address of the live node acting as
	// surrogate for id (the successor of id on the ring) together with
	// the number of overlay hops taken.
	Lookup(ctx context.Context, id ID) (transport.Addr, int, error)

	// Insert places ref on the node responsible for L(ref.ObjectID),
	// i.e. the paper's Insert(x, σ, u). first reports whether this was
	// the object's first reference — the paper's trigger for creating
	// the object's keyword-index entry.
	Insert(ctx context.Context, ref Reference) (first bool, err error)

	// Delete removes ref from the responsible node. It returns
	// ErrNoSuchReference if the reference is absent and reports, via
	// remaining, how many replicas of the object remain indexed.
	Delete(ctx context.Context, ref Reference) (remaining int, err error)

	// Read returns all references to the object, i.e. the paper's
	// Read(σ). It returns ErrNoSuchObject if none exist.
	Read(ctx context.Context, objectID string) ([]Reference, error)
}
