package dht

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Static is a dht.Overlay with a fixed, fully-known membership: every
// lookup resolves locally in one step to the successor of the key on
// the ring. It models an idealized converged DHT and is used by the
// experiment harness, where the metrics of interest are index-layer
// node contacts rather than DHT routing hops. References are stored
// in-process.
type Static struct {
	mu      sync.Mutex
	ids     []ID // sorted
	byID    map[ID]transport.Addr
	refs    map[string]map[staticRefKey]Reference
	lookups uint64
}

var _ Overlay = (*Static)(nil)

type staticRefKey struct {
	holder   transport.Addr
	location string
}

// NewStatic builds a static overlay from the given members. Member IDs
// are derived from their addresses with HashString, like Chord does.
func NewStatic(members []transport.Addr) (*Static, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("dht: static overlay needs at least one member")
	}
	s := &Static{
		byID: make(map[ID]transport.Addr, len(members)),
		refs: make(map[string]map[staticRefKey]Reference),
	}
	for _, addr := range members {
		id := HashString(string(addr))
		if _, dup := s.byID[id]; dup {
			return nil, fmt.Errorf("dht: static overlay ID collision for %q", addr)
		}
		s.byID[id] = addr
		s.ids = append(s.ids, id)
	}
	sort.Slice(s.ids, func(i, j int) bool { return s.ids[i] < s.ids[j] })
	return s, nil
}

// SuccessorOf returns the member acting as surrogate for id.
func (s *Static) SuccessorOf(id ID) transport.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.successorLocked(id)
}

func (s *Static) successorLocked(id ID) transport.Addr {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	if i == len(s.ids) {
		i = 0 // wrap to the smallest ID
	}
	return s.byID[s.ids[i]]
}

// Lookup implements Overlay with a single local step.
func (s *Static) Lookup(ctx context.Context, id ID) (transport.Addr, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups++
	return s.successorLocked(id), 1, nil
}

// Lookups returns the number of Lookup calls served (metric).
func (s *Static) Lookups() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lookups
}

// Insert implements Overlay.
func (s *Static) Insert(ctx context.Context, ref Reference) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups++
	holders, ok := s.refs[ref.ObjectID]
	if !ok {
		holders = make(map[staticRefKey]Reference)
		s.refs[ref.ObjectID] = holders
	}
	first := len(holders) == 0
	holders[staticRefKey{holder: ref.Holder, location: ref.Location}] = ref
	return first, nil
}

// Delete implements Overlay.
func (s *Static) Delete(ctx context.Context, ref Reference) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups++
	holders, ok := s.refs[ref.ObjectID]
	if !ok {
		return 0, ErrNoSuchReference
	}
	key := staticRefKey{holder: ref.Holder, location: ref.Location}
	if _, ok := holders[key]; !ok {
		return len(holders), ErrNoSuchReference
	}
	delete(holders, key)
	if len(holders) == 0 {
		delete(s.refs, ref.ObjectID)
		return 0, nil
	}
	return len(holders), nil
}

// Read implements Overlay.
func (s *Static) Read(ctx context.Context, objectID string) ([]Reference, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups++
	holders, ok := s.refs[objectID]
	if !ok {
		return nil, ErrNoSuchObject
	}
	out := make([]Reference, 0, len(holders))
	for _, r := range holders {
		out = append(out, r)
	}
	return out, nil
}
