package chord

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// TestChurnRingStaysConsistent drives several rounds of joins and
// crash-stops, verifying after each round that the surviving ring
// converges to the sorted cycle and that lookups from every node agree
// on key ownership.
func TestChurnRingStaysConsistent(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))

	alive := buildRing(t, net, 6)
	nextID := 6

	for round := 0; round < 4; round++ {
		// Two joins.
		for j := 0; j < 2; j++ {
			addr := transport.Addr(fmt.Sprintf("chord-%d", nextID))
			nextID++
			node := New(addr, net, Config{})
			if _, err := net.Bind(addr, node.Handler); err != nil {
				t.Fatal(err)
			}
			if err := node.Join(ctx, alive[0].Addr()); err != nil {
				t.Fatalf("round %d join: %v", round, err)
			}
			alive = append(alive, node)
			converge(ctx, alive)
		}
		// One crash.
		victimIdx := rng.Intn(len(alive))
		victim := alive[victimIdx]
		net.SetDown(victim.Addr(), true)
		alive = append(alive[:victimIdx], alive[victimIdx+1:]...)
		converge(ctx, alive)

		sort.Slice(alive, func(i, j int) bool { return alive[i].ID() < alive[j].ID() })
		checkRing(t, alive)

		// Ownership agreement: every node resolves random keys to the
		// same successor, and it is the correct one.
		for trial := 0; trial < 20; trial++ {
			id := dht.ID(rng.Uint64())
			idx := sort.Search(len(alive), func(i int) bool { return alive[i].ID() >= id })
			if idx == len(alive) {
				idx = 0
			}
			want := alive[idx].Addr()
			for _, n := range alive {
				got, _, err := n.Lookup(ctx, id)
				if err != nil {
					t.Fatalf("round %d lookup from %s: %v", round, n.Addr(), err)
				}
				if got != want {
					t.Fatalf("round %d: %s resolves %d to %s, want %s",
						round, n.Addr(), id, got, want)
				}
			}
		}
	}
}

// TestChurnReferencesSurviveJoins verifies that key handoff keeps every
// reference readable while the ring grows (joins only — crash-stops
// lose unreplicated state by design).
func TestChurnReferencesSurviveJoins(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	ctx := context.Background()

	nodes := buildRing(t, net, 3)
	const objects = 100
	for i := 0; i < objects; i++ {
		ref := dht.Reference{ObjectID: fmt.Sprintf("grow-%d", i), Holder: "h", Location: "/"}
		if _, err := nodes[0].Insert(ctx, ref); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 5; j++ {
		addr := transport.Addr(fmt.Sprintf("grower-%d", j))
		node := New(addr, net, Config{})
		if _, err := net.Bind(addr, node.Handler); err != nil {
			t.Fatal(err)
		}
		if err := node.Join(ctx, nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
		converge(ctx, nodes)

		for i := 0; i < objects; i++ {
			id := fmt.Sprintf("grow-%d", i)
			src := nodes[(i+j)%len(nodes)]
			if _, err := src.Read(ctx, id); err != nil {
				t.Fatalf("after join %d, Read %s via %s: %v", j, id, src.Addr(), err)
			}
		}
	}
	// Conservation: references are spread, none duplicated or lost.
	total := 0
	for _, n := range nodes {
		total += n.RefCount()
	}
	if total != objects {
		t.Errorf("total refs = %d, want %d", total, objects)
	}
}

// TestConcurrentLookupsDuringMaintenance hammers lookups from multiple
// goroutines while stabilization runs, exercising the locking paths.
func TestConcurrentLookupsDuringMaintenance(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	ctx := context.Background()
	nodes := buildRing(t, net, 8)

	done := make(chan struct{})
	errc := make(chan error, 16)
	for g := 0; g < 8; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-done:
					errc <- nil
					return
				default:
				}
				src := nodes[rng.Intn(len(nodes))]
				if _, _, err := src.Lookup(ctx, dht.ID(rng.Uint64())); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	for round := 0; round < 50; round++ {
		for _, n := range nodes {
			_ = n.MaintainOnce(ctx)
		}
	}
	close(done)
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatalf("concurrent lookup failed: %v", err)
		}
	}
}
