package chord

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// buildRing constructs an n-node converged ring on an in-memory
// network and returns the nodes sorted by ring ID.
func buildRing(t *testing.T, net *inmem.Network, n int) []*Node {
	t.Helper()
	ctx := context.Background()
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		addr := transport.Addr(fmt.Sprintf("chord-%d", i))
		node := New(addr, net, Config{})
		if _, err := net.Bind(addr, node.Handler); err != nil {
			t.Fatalf("bind %s: %v", addr, err)
		}
		if i == 0 {
			node.Create()
		} else if err := node.Join(ctx, nodes[0].Addr()); err != nil {
			t.Fatalf("join %s: %v", addr, err)
		}
		nodes = append(nodes, node)
		// Let the ring converge after each join.
		converge(ctx, nodes)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID() < nodes[j].ID() })
	return nodes
}

func converge(ctx context.Context, nodes []*Node) {
	for round := 0; round < 3*len(nodes)+3; round++ {
		for _, n := range nodes {
			n.CheckPredecessorOnce(ctx)
			_ = n.StabilizeOnce(ctx)
		}
	}
	for _, n := range nodes {
		_ = n.FixAllFingers(ctx)
	}
}

// checkRing asserts that successor pointers form the sorted cycle.
func checkRing(t *testing.T, nodes []*Node) {
	t.Helper()
	for i, n := range nodes {
		want := nodes[(i+1)%len(nodes)]
		if got := n.Successor(); got.ID != want.ID() {
			t.Fatalf("node %s successor = %d, want %d", n.Addr(), got.ID, want.ID())
		}
		wantPred := nodes[(i-1+len(nodes))%len(nodes)]
		if got := n.Predecessor(); got.ID != wantPred.ID() {
			t.Fatalf("node %s predecessor = %d, want %d", n.Addr(), got.ID, wantPred.ID())
		}
	}
}

func TestSingleNodeRing(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	node := New("solo", net, Config{})
	if _, err := net.Bind("solo", node.Handler); err != nil {
		t.Fatal(err)
	}
	node.Create()
	ctx := context.Background()
	addr, _, err := node.Lookup(ctx, 12345)
	if err != nil || addr != "solo" {
		t.Fatalf("Lookup = %s, %v", addr, err)
	}
	ref := dht.Reference{ObjectID: "o1", Holder: "solo", Location: "/x"}
	if _, err := node.Insert(ctx, ref); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	refs, err := node.Read(ctx, "o1")
	if err != nil || len(refs) != 1 {
		t.Fatalf("Read = %v, %v", refs, err)
	}
}

// TestSuccessorChangeHook: the hook fires when the immediate successor
// moves to a different live node — and only then. The index layer
// hangs migration triggers off it, so a missed fire means permanently
// invisible entries and a spurious fire means wasted pulls.
func TestSuccessorChangeHook(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	ctx := context.Background()

	a := New("hook-a", net, Config{})
	if _, err := net.Bind("hook-a", a.Handler); err != nil {
		t.Fatal(err)
	}
	changes := make(chan NodeInfo, 16)
	a.OnSuccessorChange(func(succ NodeInfo) { changes <- succ })
	a.Create()

	b := New("hook-b", net, Config{})
	if _, err := net.Bind("hook-b", b.Handler); err != nil {
		t.Fatal(err)
	}
	if err := b.Join(ctx, a.Addr()); err != nil {
		t.Fatal(err)
	}
	nodes := []*Node{a, b}
	converge(ctx, nodes)

	select {
	case got := <-changes:
		if got.ID != b.ID() {
			t.Fatalf("hook fired with %d, want %d", got.ID, b.ID())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("successor-change hook never fired after a second node joined")
	}
	// Self-successor transitions (Create, singleton heal) must not fire,
	// and re-adopting the same successor on every stabilize round must
	// not re-fire: drain anything already queued, stabilize more, and
	// expect silence.
	for {
		select {
		case got := <-changes:
			if got.ID == a.ID() {
				t.Fatalf("hook fired with self")
			}
			continue
		default:
		}
		break
	}
	converge(ctx, nodes)
	select {
	case got := <-changes:
		t.Fatalf("hook re-fired with %d for an unchanged successor", got.ID)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestLookupBeforeJoinFails(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	node := New("lonely", net, Config{})
	if _, _, err := node.Lookup(context.Background(), 1); !errors.Is(err, dht.ErrNotJoined) {
		t.Errorf("Lookup before join: %v", err)
	}
}

func TestRingConvergence(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	nodes := buildRing(t, net, 8)
	checkRing(t, nodes)
}

func TestLookupFindsSuccessorFromEveryNode(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	nodes := buildRing(t, net, 10)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		id := dht.ID(rng.Uint64())
		// Expected owner: first node with ID >= id (wrapping).
		idx := sort.Search(len(nodes), func(i int) bool { return nodes[i].ID() >= id })
		if idx == len(nodes) {
			idx = 0
		}
		want := nodes[idx].Addr()
		src := nodes[rng.Intn(len(nodes))]
		got, _, err := src.Lookup(ctx, id)
		if err != nil {
			t.Fatalf("Lookup(%d) from %s: %v", id, src.Addr(), err)
		}
		if got != want {
			t.Fatalf("Lookup(%d) from %s = %s, want %s", id, src.Addr(), got, want)
		}
	}
}

func TestLookupHopCountLogarithmic(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	nodes := buildRing(t, net, 32)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	maxHops := 0
	for trial := 0; trial < 200; trial++ {
		src := nodes[rng.Intn(len(nodes))]
		_, hops, err := src.Lookup(ctx, dht.ID(rng.Uint64()))
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		if hops > maxHops {
			maxHops = hops
		}
	}
	// With 32 nodes and correct fingers, lookups should take well
	// under 32 hops (expected O(log n) ≈ 5).
	if maxHops > 16 {
		t.Errorf("max hops = %d, want ≤ 16 with converged fingers", maxHops)
	}
}

func TestReferenceLifecycleAcrossRing(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	nodes := buildRing(t, net, 6)
	ctx := context.Background()

	ref := dht.Reference{ObjectID: "video-42", Holder: "peer-9", Location: "/files/video"}
	if _, err := nodes[0].Insert(ctx, ref); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	// Readable from any node.
	for _, n := range nodes {
		refs, err := n.Read(ctx, "video-42")
		if err != nil || len(refs) != 1 || refs[0] != ref {
			t.Fatalf("Read from %s = %v, %v", n.Addr(), refs, err)
		}
	}
	// Second replica.
	ref2 := dht.Reference{ObjectID: "video-42", Holder: "peer-10", Location: "/dl/video"}
	if _, err := nodes[3].Insert(ctx, ref2); err != nil {
		t.Fatalf("Insert replica: %v", err)
	}
	remaining, err := nodes[5].Delete(ctx, ref)
	if err != nil || remaining != 1 {
		t.Fatalf("Delete = %d, %v; want 1 remaining", remaining, err)
	}
	remaining, err = nodes[2].Delete(ctx, ref2)
	if err != nil || remaining != 0 {
		t.Fatalf("Delete last = %d, %v", remaining, err)
	}
	if _, err := nodes[1].Read(ctx, "video-42"); !errors.Is(err, dht.ErrNoSuchObject) {
		t.Errorf("Read after delete: %v", err)
	}
	if _, err := nodes[1].Delete(ctx, ref); !errors.Is(err, dht.ErrNoSuchReference) {
		t.Errorf("Delete missing: %v", err)
	}
}

func TestJoinHandsOffReferences(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	ctx := context.Background()

	first := New("seed", net, Config{})
	net.Bind("seed", first.Handler)
	first.Create()

	// Insert many objects into the single-node ring.
	const objects = 200
	for i := 0; i < objects; i++ {
		ref := dht.Reference{ObjectID: fmt.Sprintf("obj-%d", i), Holder: "h", Location: "/"}
		if _, err := first.Insert(ctx, ref); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// A second node joins and should take over part of the key space.
	second := New("late", net, Config{})
	net.Bind("late", second.Handler)
	if err := second.Join(ctx, "seed"); err != nil {
		t.Fatalf("Join: %v", err)
	}
	converge(ctx, []*Node{first, second})

	if second.RefCount() == 0 {
		t.Error("joining node received no references")
	}
	if first.RefCount()+second.RefCount() != objects {
		t.Errorf("refs split %d + %d, want total %d",
			first.RefCount(), second.RefCount(), objects)
	}
	// Every object must still be readable from both nodes.
	for i := 0; i < objects; i++ {
		id := fmt.Sprintf("obj-%d", i)
		if _, err := second.Read(ctx, id); err != nil {
			t.Fatalf("Read %s via late: %v", id, err)
		}
	}
}

func TestRingHealsAfterNodeFailure(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	nodes := buildRing(t, net, 8)
	ctx := context.Background()

	// Kill one node.
	victim := nodes[3]
	net.SetDown(victim.Addr(), true)
	alive := append(append([]*Node{}, nodes[:3]...), nodes[4:]...)
	converge(ctx, alive)
	checkRing(t, alive)

	// Lookups still succeed from every surviving node.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		src := alive[rng.Intn(len(alive))]
		if _, _, err := src.Lookup(ctx, dht.ID(rng.Uint64())); err != nil {
			t.Fatalf("Lookup after failure from %s: %v", src.Addr(), err)
		}
	}
}

func TestMaintenanceLoopStartStop(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	node := New("m", net, Config{})
	net.Bind("m", node.Handler)
	node.Create()
	node.StartMaintenance(time.Millisecond)
	node.StartMaintenance(time.Millisecond) // idempotent
	time.Sleep(10 * time.Millisecond)
	node.StopMaintenance()
	node.StopMaintenance() // idempotent
	node.Shutdown()
}

func TestHandlerRejectsUnknownMessage(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	node := New("x", net, Config{})
	node.Create()
	_, err := node.Handler(context.Background(), "", "garbage")
	if !errors.Is(err, ErrUnhandled) {
		t.Errorf("Handler(garbage) err = %v, want ErrUnhandled", err)
	}
}

func TestDoubleJoinRejected(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	seed := New("s", net, Config{})
	net.Bind("s", seed.Handler)
	seed.Create()
	n := New("j", net, Config{})
	net.Bind("j", n.Handler)
	if err := n.Join(context.Background(), "s"); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if err := n.Join(context.Background(), "s"); err == nil {
		t.Error("second Join succeeded")
	}
}
