package chord

import (
	"context"
	"errors"
	"fmt"

	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Lookup implements dht.Overlay: it returns the address of the live
// node acting as surrogate for id (the successor of id on the ring)
// and the number of routing steps taken.
func (n *Node) Lookup(ctx context.Context, id dht.ID) (transport.Addr, int, error) {
	info, hops, err := n.FindSuccessor(ctx, id)
	if err != nil {
		return "", hops, err
	}
	return info.Addr, hops, nil
}

// FindSuccessor resolves the successor of id using iterative routing
// from this node, following closest-preceding-finger steps.
func (n *Node) FindSuccessor(ctx context.Context, id dht.ID) (NodeInfo, int, error) {
	n.mu.Lock()
	joined := n.joined
	n.mu.Unlock()
	if !joined {
		return NodeInfo{}, 0, dht.ErrNotJoined
	}
	n.met.lookups.Inc()

	// Local short-circuit: id in (self, successor].
	local := n.handleFindClosest(rpcFindClosest{ID: id})
	if local.Done {
		n.met.lookupHops.Observe(0)
		return local.Node, 0, nil
	}
	info, hops, err := n.iterate(ctx, local.Node, id, 1)
	if err != nil {
		n.met.lookupFailures.Inc()
	} else {
		n.met.lookupHops.Observe(int64(hops))
	}
	return info, hops, err
}

// findSuccessorVia resolves id's successor by asking the node at seed
// first (used by Join before this node is part of the ring).
func (n *Node) findSuccessorVia(ctx context.Context, seed transport.Addr, id dht.ID) (NodeInfo, int, error) {
	return n.iterate(ctx, NodeInfo{Addr: seed}, id, 0)
}

// iterate performs the iterative lookup loop starting at 'next'. Each
// step asks the current node for either the answer or a closer node.
// When a step's node is unreachable it is purged from this node's
// routing state and the lookup restarts from local routing (up to a
// few times), so stale fingers pointing at departed nodes heal
// in-band instead of wedging lookups until the next fix-fingers pass.
func (n *Node) iterate(ctx context.Context, next NodeInfo, id dht.ID, hops int) (NodeInfo, int, error) {
	prev := NodeInfo{}
	deadRetries := 0
	for step := 0; step < n.cfg.MaxLookupSteps; step++ {
		resp, err := n.call(ctx, next.Addr, rpcFindClosest{ID: id})
		if err != nil {
			n.mu.Lock()
			joined := n.joined
			if joined {
				n.purgeDeadLocked(next)
			}
			n.mu.Unlock()
			deadRetries++
			if !joined || deadRetries > 3 {
				return NodeInfo{}, hops, fmt.Errorf("lookup step via %s: %w", next.Addr, err)
			}
			local := n.handleFindClosest(rpcFindClosest{ID: id})
			if local.Done {
				return local.Node, hops, nil
			}
			prev, next = NodeInfo{}, local.Node
			continue
		}
		fc, ok := resp.(respFindClosest)
		if !ok {
			return NodeInfo{}, hops, fmt.Errorf("lookup step via %s: unexpected response %T", next.Addr, resp)
		}
		hops++
		if fc.Done {
			return fc.Node, hops, nil
		}
		if fc.Node.zero() || (prev.Addr != "" && fc.Node.Addr == prev.Addr) {
			// Routing is not making progress; accept the best known.
			return fc.Node, hops, errors.New("chord: lookup made no progress")
		}
		prev, next = next, fc.Node
	}
	return NodeInfo{}, hops, fmt.Errorf("chord: lookup for %d exceeded %d steps", id, n.cfg.MaxLookupSteps)
}

// purgeDeadLocked drops an unreachable node from the finger table and
// successor list so subsequent routing avoids it. Callers hold n.mu.
func (n *Node) purgeDeadLocked(dead NodeInfo) {
	for i := range n.fingers {
		if n.fingers[i].Addr == dead.Addr {
			n.fingers[i] = NodeInfo{}
		}
	}
	keep := n.successors[:0]
	for _, s := range n.successors {
		if s.Addr != dead.Addr {
			keep = append(keep, s)
		}
	}
	if len(keep) == 0 {
		keep = append(keep, n.self)
	}
	n.successors = keep
}

// Insert implements dht.Overlay: route to the node responsible for
// L(ref.ObjectID) and store the reference there. first reports whether
// this was the object's first reference.
func (n *Node) Insert(ctx context.Context, ref dht.Reference) (bool, error) {
	addr, _, err := n.Lookup(ctx, dht.HashString(ref.ObjectID))
	if err != nil {
		return false, fmt.Errorf("insert %q: %w", ref.ObjectID, err)
	}
	raw, err := n.call(ctx, addr, rpcInsertRef{Ref: ref})
	if err != nil {
		return false, fmt.Errorf("insert %q at %s: %w", ref.ObjectID, addr, err)
	}
	ir, ok := raw.(respInsertRef)
	if !ok {
		return false, fmt.Errorf("insert %q: unexpected response %T", ref.ObjectID, raw)
	}
	return ir.First, nil
}

// Delete implements dht.Overlay: remove the reference from the
// responsible node, reporting how many replicas remain.
func (n *Node) Delete(ctx context.Context, ref dht.Reference) (int, error) {
	addr, _, err := n.Lookup(ctx, dht.HashString(ref.ObjectID))
	if err != nil {
		return 0, fmt.Errorf("delete %q: %w", ref.ObjectID, err)
	}
	resp, err := n.call(ctx, addr, rpcDeleteRef{Ref: ref})
	if err != nil {
		return 0, fmt.Errorf("delete %q at %s: %w", ref.ObjectID, addr, err)
	}
	dr, ok := resp.(respDeleteRef)
	if !ok {
		return 0, fmt.Errorf("delete %q: unexpected response %T", ref.ObjectID, resp)
	}
	if !dr.Found {
		return dr.Remaining, dht.ErrNoSuchReference
	}
	return dr.Remaining, nil
}

// Read implements dht.Overlay: fetch all references for objectID from
// the responsible node.
func (n *Node) Read(ctx context.Context, objectID string) ([]dht.Reference, error) {
	addr, _, err := n.Lookup(ctx, dht.HashString(objectID))
	if err != nil {
		return nil, fmt.Errorf("read %q: %w", objectID, err)
	}
	resp, err := n.call(ctx, addr, rpcReadRefs{ObjectID: objectID})
	if err != nil {
		return nil, fmt.Errorf("read %q at %s: %w", objectID, addr, err)
	}
	rr, ok := resp.(respReadRefs)
	if !ok {
		return nil, fmt.Errorf("read %q: unexpected response %T", objectID, resp)
	}
	if !rr.Found {
		return nil, dht.ErrNoSuchObject
	}
	return rr.Refs, nil
}
