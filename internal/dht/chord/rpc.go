package chord

import (
	"context"
	"fmt"

	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// ErrUnhandled is returned (wrapped) by Handler for message types that
// are not Chord RPCs, letting transport.Mux try other layers. It is
// the shared transport sentinel.
var ErrUnhandled = transport.ErrUnhandled

// RPC message types. All are registered with the transport layer by
// RegisterTypes so that both the in-memory and TCP transports can
// carry them.
type (
	// rpcFindClosest asks a node for one routing step toward ID's
	// successor (iterative Chord lookup).
	rpcFindClosest struct{ ID dht.ID }
	// respFindClosest: if Done, Node is ID's successor; otherwise Node
	// is the next node to ask (closest preceding finger).
	respFindClosest struct {
		Done bool
		Node NodeInfo
	}

	rpcGetPredecessor  struct{}
	respGetPredecessor struct {
		Known bool
		Node  NodeInfo
	}

	rpcNotify struct{ Candidate NodeInfo }
	respOK    struct{}

	rpcGetSuccessorList  struct{}
	respGetSuccessorList struct{ Successors []NodeInfo }

	rpcPing struct{}

	rpcInsertRef  struct{ Ref dht.Reference }
	respInsertRef struct{ First bool }

	rpcDeleteRef  struct{ Ref dht.Reference }
	respDeleteRef struct {
		Found     bool
		Remaining int
	}

	rpcReadRefs  struct{ ObjectID string }
	respReadRefs struct {
		Found bool
		Refs  []dht.Reference
	}

	// rpcHandoff asks the receiver to transfer references now owned by
	// the joining node NewNode.
	rpcHandoff  struct{ NewNode NodeInfo }
	respHandoff struct{ Refs []dht.Reference }

	// rpcDepart notifies the receiver that a neighbor is leaving
	// gracefully: the successor receives the leaver's references and
	// adopts its predecessor; the predecessor adopts the leaver's
	// successor.
	rpcDepart struct {
		Leaver      NodeInfo
		Predecessor NodeInfo // set when sent to the successor
		Successor   NodeInfo // set when sent to the predecessor
		Refs        []dht.Reference
	}
)

// RegisterTypes registers every Chord RPC message with the transport
// encoding registry. It must be called once per process before using
// the TCP transport; it is harmless (and still recommended) for the
// in-memory transport.
func RegisterTypes() {
	for _, v := range []any{
		rpcFindClosest{}, respFindClosest{},
		rpcGetPredecessor{}, respGetPredecessor{},
		rpcNotify{}, respOK{},
		rpcGetSuccessorList{}, respGetSuccessorList{},
		rpcPing{},
		rpcInsertRef{}, respInsertRef{},
		rpcDeleteRef{}, respDeleteRef{},
		rpcReadRefs{}, respReadRefs{},
		rpcHandoff{}, respHandoff{},
		rpcDepart{},
	} {
		transport.RegisterType(v)
	}
	registerWireCodecs()
}

// ReadOnlyRPC classifies Chord RPCs that are safe to hedge and to
// retry after a timed-out attempt: routing steps, liveness probes and
// reference reads. Notify and the reference/topology mutations are
// excluded — a duplicated delivery would double-apply them. Wire it
// into the resilience middleware via SetReadOnly (combine layers with
// resilience.AnyOf).
func ReadOnlyRPC(body any) bool {
	switch body.(type) {
	case rpcFindClosest, rpcGetPredecessor, rpcGetSuccessorList, rpcPing, rpcReadRefs:
		return true
	}
	return false
}

// Handler processes Chord RPCs addressed to this node. Non-Chord
// message types yield ErrUnhandled so callers can mux several
// protocol layers on one endpoint.
func (n *Node) Handler(ctx context.Context, from transport.Addr, body any) (any, error) {
	if n.met.rpcHandled != nil {
		switch body.(type) {
		case rpcFindClosest, rpcGetPredecessor, rpcNotify, rpcGetSuccessorList,
			rpcPing, rpcInsertRef, rpcDeleteRef, rpcReadRefs, rpcHandoff, rpcDepart:
			n.met.rpcHandled.Inc(fmt.Sprintf("%T", body))
		}
	}
	switch msg := body.(type) {
	case rpcFindClosest:
		return n.handleFindClosest(msg), nil
	case rpcGetPredecessor:
		n.mu.Lock()
		defer n.mu.Unlock()
		return respGetPredecessor{Known: !n.predecessor.zero(), Node: n.predecessor}, nil
	case rpcNotify:
		n.handleNotify(msg.Candidate)
		return respOK{}, nil
	case rpcGetSuccessorList:
		return respGetSuccessorList{Successors: n.SuccessorList()}, nil
	case rpcPing:
		return respOK{}, nil
	case rpcInsertRef:
		n.mu.Lock()
		defer n.mu.Unlock()
		return respInsertRef{First: n.storeRefLocked(msg.Ref)}, nil
	case rpcDeleteRef:
		return n.handleDeleteRef(msg.Ref), nil
	case rpcReadRefs:
		return n.handleReadRefs(msg.ObjectID), nil
	case rpcHandoff:
		return n.handleHandoff(msg.NewNode), nil
	case rpcDepart:
		n.handleDepart(msg)
		return respOK{}, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnhandled, body)
	}
}

func (n *Node) handleFindClosest(msg rpcFindClosest) respFindClosest {
	n.mu.Lock()
	defer n.mu.Unlock()
	succ := n.self
	if len(n.successors) > 0 {
		succ = n.successors[0]
	}
	if dht.Between(msg.ID, n.self.ID, succ.ID) {
		return respFindClosest{Done: true, Node: succ}
	}
	next := n.closestPrecedingLocked(msg.ID)
	if next.zero() || next.ID == n.self.ID {
		// No better route known; the successor is our best guess.
		return respFindClosest{Done: true, Node: succ}
	}
	return respFindClosest{Done: false, Node: next}
}

// closestPrecedingLocked returns the closest known node preceding id,
// scanning fingers then the successor list (Chord §4.3, extended with
// the successor list for robustness).
func (n *Node) closestPrecedingLocked(id dht.ID) NodeInfo {
	best := NodeInfo{}
	for i := len(n.fingers) - 1; i >= 0; i-- {
		f := n.fingers[i]
		if !f.zero() && dht.BetweenOpen(f.ID, n.self.ID, id) {
			best = f
			break
		}
	}
	for _, s := range n.successors {
		if !s.zero() && dht.BetweenOpen(s.ID, n.self.ID, id) {
			if best.zero() || dht.BetweenOpen(best.ID, n.self.ID, s.ID) {
				best = s
			}
		}
	}
	return best
}

func (n *Node) handleNotify(candidate NodeInfo) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if candidate.ID == n.self.ID {
		return
	}
	if n.predecessor.zero() || n.predecessor.ID == n.self.ID ||
		dht.BetweenOpen(candidate.ID, n.predecessor.ID, n.self.ID) {
		n.predecessor = candidate
	}
}

func (n *Node) handleDeleteRef(ref dht.Reference) respDeleteRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	holders, ok := n.refs[ref.ObjectID]
	if !ok {
		return respDeleteRef{Found: false}
	}
	key := refKey{holder: ref.Holder, location: ref.Location}
	if _, ok := holders[key]; !ok {
		return respDeleteRef{Found: false, Remaining: len(holders)}
	}
	delete(holders, key)
	if len(holders) == 0 {
		delete(n.refs, ref.ObjectID)
	}
	return respDeleteRef{Found: true, Remaining: len(holders)}
}

func (n *Node) handleReadRefs(objectID string) respReadRefs {
	n.mu.Lock()
	defer n.mu.Unlock()
	holders, ok := n.refs[objectID]
	if !ok {
		return respReadRefs{Found: false}
	}
	refs := make([]dht.Reference, 0, len(holders))
	for _, r := range holders {
		refs = append(refs, r)
	}
	return respReadRefs{Found: true, Refs: refs}
}

// handleHandoff transfers to the joining node every reference whose
// key it now owns: keys in (predecessor(new), newID] — from this
// node's perspective, keys not in (newID, self.ID].
func (n *Node) handleHandoff(newNode NodeInfo) respHandoff {
	n.mu.Lock()
	defer n.mu.Unlock()
	var moved []dht.Reference
	for objectID, holders := range n.refs {
		key := dht.HashString(objectID)
		if dht.Between(key, newNode.ID, n.self.ID) {
			continue // still ours
		}
		for _, r := range holders {
			moved = append(moved, r)
		}
		delete(n.refs, objectID)
	}
	return respHandoff{Refs: moved}
}

// storeRefLocked stores ref and reports whether it is the object's
// first known reference.
func (n *Node) storeRefLocked(ref dht.Reference) bool {
	holders, ok := n.refs[ref.ObjectID]
	if !ok {
		holders = make(map[refKey]dht.Reference)
		n.refs[ref.ObjectID] = holders
	}
	first := len(holders) == 0
	holders[refKey{holder: ref.Holder, location: ref.Location}] = ref
	return first
}

// handleDepart splices a gracefully leaving neighbor out of the ring:
// refs (sent to the successor) are absorbed, and the leaver's other
// neighbor replaces it in our pointers.
func (n *Node) handleDepart(msg rpcDepart) {
	n.mu.Lock()
	defer n.mu.Unlock()
	defer n.succChangedLocked(n.headSuccessorLocked())
	for _, ref := range msg.Refs {
		n.storeRefLocked(ref)
	}
	if !msg.Predecessor.zero() &&
		(n.predecessor.zero() || n.predecessor.ID == msg.Leaver.ID) {
		if msg.Predecessor.ID == n.self.ID {
			n.predecessor = n.self
		} else {
			n.predecessor = msg.Predecessor
		}
	}
	if !msg.Successor.zero() && len(n.successors) > 0 && n.successors[0].ID == msg.Leaver.ID {
		if msg.Successor.ID == n.self.ID {
			n.successors = []NodeInfo{n.self}
		} else {
			n.successors[0] = msg.Successor
		}
		n.fingers[0] = n.successors[0]
	}
	// Purge the leaver from fingers and the successor list so routing
	// stops trying it.
	for i := range n.fingers {
		if n.fingers[i].ID == msg.Leaver.ID {
			n.fingers[i] = n.successors[0]
		}
	}
	keep := n.successors[:0]
	for _, s := range n.successors {
		if s.ID != msg.Leaver.ID {
			keep = append(keep, s)
		}
	}
	if len(keep) == 0 {
		keep = append(keep, n.self)
	}
	n.successors = keep
}

// RefCount returns the number of distinct objects whose references
// this node stores (test/diagnostic helper).
func (n *Node) RefCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.refs)
}
