package chord

import (
	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

// Wire type IDs of the Chord RPC set. Package core owns 1–31, chord
// 32–63, invindex 64–95. Never reuse or renumber a live ID.
const (
	wireRPCFindClosest       = 32
	wireRespFindClosest      = 33
	wireRPCGetPredecessor    = 34
	wireRespGetPredecessor   = 35
	wireRPCNotify            = 36
	wireRespOK               = 37
	wireRPCGetSuccessorList  = 38
	wireRespGetSuccessorList = 39
	wireRPCPing              = 40
	wireRPCInsertRef         = 41
	wireRespInsertRef        = 42
	wireRPCDeleteRef         = 43
	wireRespDeleteRef        = 44
	wireRPCReadRefs          = 45
	wireRespReadRefs         = 46
	wireRPCHandoff           = 47
	wireRespHandoff          = 48
	wireRPCDepart            = 49
)

func registerWireCodecs() {
	wire.Register[rpcFindClosest](wireRPCFindClosest)
	wire.Register[respFindClosest](wireRespFindClosest)
	wire.Register[rpcGetPredecessor](wireRPCGetPredecessor)
	wire.Register[respGetPredecessor](wireRespGetPredecessor)
	wire.Register[rpcNotify](wireRPCNotify)
	wire.Register[respOK](wireRespOK)
	wire.Register[rpcGetSuccessorList](wireRPCGetSuccessorList)
	wire.Register[respGetSuccessorList](wireRespGetSuccessorList)
	wire.Register[rpcPing](wireRPCPing)
	wire.Register[rpcInsertRef](wireRPCInsertRef)
	wire.Register[respInsertRef](wireRespInsertRef)
	wire.Register[rpcDeleteRef](wireRPCDeleteRef)
	wire.Register[respDeleteRef](wireRespDeleteRef)
	wire.Register[rpcReadRefs](wireRPCReadRefs)
	wire.Register[respReadRefs](wireRespReadRefs)
	wire.Register[rpcHandoff](wireRPCHandoff)
	wire.Register[respHandoff](wireRespHandoff)
	wire.Register[rpcDepart](wireRPCDepart)
}

// Ring IDs cover the full 64-bit space uniformly (they are hash
// outputs), so fixed 8-byte encoding beats a varint on average.

func marshalNodeInfo(w *wire.Writer, ni *NodeInfo) {
	w.U64(uint64(ni.ID))
	w.String(string(ni.Addr))
}

func unmarshalNodeInfo(r *wire.Reader, ni *NodeInfo) {
	ni.ID = dht.ID(r.U64())
	ni.Addr = transport.Addr(r.String())
}

// minNodeInfoBytes: 8-byte ID + 1-byte empty addr length.
const minNodeInfoBytes = 9

func marshalNodeInfos(w *wire.Writer, nis []NodeInfo) {
	w.Uvarint(uint64(len(nis)))
	for i := range nis {
		marshalNodeInfo(w, &nis[i])
	}
}

func unmarshalNodeInfos(r *wire.Reader) []NodeInfo {
	n := r.Count(minNodeInfoBytes)
	if n == 0 {
		return nil
	}
	nis := make([]NodeInfo, n)
	for i := range nis {
		unmarshalNodeInfo(r, &nis[i])
	}
	return nis
}

func marshalRef(w *wire.Writer, ref *dht.Reference) {
	w.String(ref.ObjectID)
	w.String(string(ref.Holder))
	w.String(ref.Location)
}

func unmarshalRef(r *wire.Reader, ref *dht.Reference) {
	ref.ObjectID = r.String()
	ref.Holder = transport.Addr(r.String())
	ref.Location = r.String()
}

func marshalRefs(w *wire.Writer, refs []dht.Reference) {
	w.Uvarint(uint64(len(refs)))
	for i := range refs {
		marshalRef(w, &refs[i])
	}
}

func unmarshalRefs(r *wire.Reader) []dht.Reference {
	n := r.Count(3) // three length bytes minimum
	if n == 0 {
		return nil
	}
	refs := make([]dht.Reference, n)
	for i := range refs {
		unmarshalRef(r, &refs[i])
	}
	return refs
}

func (m *rpcFindClosest) MarshalWire(w *wire.Writer) { w.U64(uint64(m.ID)) }
func (m *rpcFindClosest) UnmarshalWire(r *wire.Reader) error {
	m.ID = dht.ID(r.U64())
	return r.Err()
}

func (m *respFindClosest) MarshalWire(w *wire.Writer) {
	w.Bool(m.Done)
	marshalNodeInfo(w, &m.Node)
}

func (m *respFindClosest) UnmarshalWire(r *wire.Reader) error {
	m.Done = r.Bool()
	unmarshalNodeInfo(r, &m.Node)
	return r.Err()
}

func (m *rpcGetPredecessor) MarshalWire(w *wire.Writer)         {}
func (m *rpcGetPredecessor) UnmarshalWire(r *wire.Reader) error { return r.Err() }

func (m *respGetPredecessor) MarshalWire(w *wire.Writer) {
	w.Bool(m.Known)
	marshalNodeInfo(w, &m.Node)
}

func (m *respGetPredecessor) UnmarshalWire(r *wire.Reader) error {
	m.Known = r.Bool()
	unmarshalNodeInfo(r, &m.Node)
	return r.Err()
}

func (m *rpcNotify) MarshalWire(w *wire.Writer) { marshalNodeInfo(w, &m.Candidate) }
func (m *rpcNotify) UnmarshalWire(r *wire.Reader) error {
	unmarshalNodeInfo(r, &m.Candidate)
	return r.Err()
}

func (m *respOK) MarshalWire(w *wire.Writer)         {}
func (m *respOK) UnmarshalWire(r *wire.Reader) error { return r.Err() }

func (m *rpcGetSuccessorList) MarshalWire(w *wire.Writer)         {}
func (m *rpcGetSuccessorList) UnmarshalWire(r *wire.Reader) error { return r.Err() }

func (m *respGetSuccessorList) MarshalWire(w *wire.Writer) { marshalNodeInfos(w, m.Successors) }
func (m *respGetSuccessorList) UnmarshalWire(r *wire.Reader) error {
	m.Successors = unmarshalNodeInfos(r)
	return r.Err()
}

func (m *rpcPing) MarshalWire(w *wire.Writer)         {}
func (m *rpcPing) UnmarshalWire(r *wire.Reader) error { return r.Err() }

func (m *rpcInsertRef) MarshalWire(w *wire.Writer) { marshalRef(w, &m.Ref) }
func (m *rpcInsertRef) UnmarshalWire(r *wire.Reader) error {
	unmarshalRef(r, &m.Ref)
	return r.Err()
}

func (m *respInsertRef) MarshalWire(w *wire.Writer)         { w.Bool(m.First) }
func (m *respInsertRef) UnmarshalWire(r *wire.Reader) error { m.First = r.Bool(); return r.Err() }

func (m *rpcDeleteRef) MarshalWire(w *wire.Writer) { marshalRef(w, &m.Ref) }
func (m *rpcDeleteRef) UnmarshalWire(r *wire.Reader) error {
	unmarshalRef(r, &m.Ref)
	return r.Err()
}

func (m *respDeleteRef) MarshalWire(w *wire.Writer) {
	w.Bool(m.Found)
	w.Int(m.Remaining)
}

func (m *respDeleteRef) UnmarshalWire(r *wire.Reader) error {
	m.Found = r.Bool()
	m.Remaining = r.Int()
	return r.Err()
}

func (m *rpcReadRefs) MarshalWire(w *wire.Writer)         { w.String(m.ObjectID) }
func (m *rpcReadRefs) UnmarshalWire(r *wire.Reader) error { m.ObjectID = r.String(); return r.Err() }

func (m *respReadRefs) MarshalWire(w *wire.Writer) {
	w.Bool(m.Found)
	marshalRefs(w, m.Refs)
}

func (m *respReadRefs) UnmarshalWire(r *wire.Reader) error {
	m.Found = r.Bool()
	m.Refs = unmarshalRefs(r)
	return r.Err()
}

func (m *rpcHandoff) MarshalWire(w *wire.Writer) { marshalNodeInfo(w, &m.NewNode) }
func (m *rpcHandoff) UnmarshalWire(r *wire.Reader) error {
	unmarshalNodeInfo(r, &m.NewNode)
	return r.Err()
}

func (m *respHandoff) MarshalWire(w *wire.Writer) { marshalRefs(w, m.Refs) }
func (m *respHandoff) UnmarshalWire(r *wire.Reader) error {
	m.Refs = unmarshalRefs(r)
	return r.Err()
}

func (m *rpcDepart) MarshalWire(w *wire.Writer) {
	marshalNodeInfo(w, &m.Leaver)
	marshalNodeInfo(w, &m.Predecessor)
	marshalNodeInfo(w, &m.Successor)
	marshalRefs(w, m.Refs)
}

func (m *rpcDepart) UnmarshalWire(r *wire.Reader) error {
	unmarshalNodeInfo(r, &m.Leaver)
	unmarshalNodeInfo(r, &m.Predecessor)
	unmarshalNodeInfo(r, &m.Successor)
	m.Refs = unmarshalRefs(r)
	return r.Err()
}
