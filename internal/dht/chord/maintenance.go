package chord

import (
	"context"

	"github.com/p2pkeyword/keysearch/internal/dht"
)

// StabilizeOnce runs one round of Chord's stabilize protocol: verify
// the immediate successor (adopting its predecessor if that node sits
// between us), refresh the successor list from it, and notify it of
// our existence. If the successor is unreachable it is dropped and the
// next successor-list entry takes over, which is Chord's fault
// tolerance mechanism.
func (n *Node) StabilizeOnce(ctx context.Context) error {
	n.mu.Lock()
	if !n.joined {
		n.mu.Unlock()
		return dht.ErrNotJoined
	}
	succs := make([]NodeInfo, len(n.successors))
	copy(succs, n.successors)
	n.mu.Unlock()
	n.met.stabilizes.Inc()

	for len(succs) > 0 {
		succ := succs[0]
		if succ.ID == n.self.ID {
			// We are our own successor. If a predecessor has announced
			// itself (second node of a ring), adopt it as successor so
			// the two-node cycle forms; otherwise this is a singleton.
			n.mu.Lock()
			pred := n.predecessor
			n.mu.Unlock()
			if pred.zero() || pred.ID == n.self.ID {
				n.adoptSuccessorList(succ, nil)
				return nil
			}
			succ = pred
		}
		resp, err := n.call(ctx, succ.Addr, rpcGetPredecessor{})
		if err != nil {
			// Successor failed: promote the next candidate.
			succs = succs[1:]
			n.mu.Lock()
			if len(n.successors) > 0 && n.successors[0].Addr == succ.Addr {
				n.successors = n.successors[1:]
				if len(n.successors) == 0 {
					n.successors = []NodeInfo{n.self}
				}
			}
			n.mu.Unlock()
			continue
		}
		if gp, ok := resp.(respGetPredecessor); ok && gp.Known &&
			dht.BetweenOpen(gp.Node.ID, n.self.ID, succ.ID) && gp.Node.ID != n.self.ID {
			// A node sits between us and our successor; adopt it if
			// it is alive, otherwise keep the current successor.
			if _, err := n.call(ctx, gp.Node.Addr, rpcPing{}); err == nil {
				succ = gp.Node
			}
		}
		// Refresh the successor list through the (possibly new) successor.
		var tail []NodeInfo
		if resp, err := n.call(ctx, succ.Addr, rpcGetSuccessorList{}); err == nil {
			if sl, ok := resp.(respGetSuccessorList); ok {
				tail = sl.Successors
			}
		}
		n.adoptSuccessorList(succ, tail)
		_, err = n.call(ctx, succ.Addr, rpcNotify{Candidate: n.self})
		return err
	}
	return nil
}

// adoptSuccessorList installs succ as the immediate successor followed
// by tail (the successor's own list), truncated to the configured
// length and with duplicates and self-entries pruned.
func (n *Node) adoptSuccessorList(succ NodeInfo, tail []NodeInfo) {
	n.mu.Lock()
	defer n.mu.Unlock()
	defer n.succChangedLocked(n.headSuccessorLocked())
	list := make([]NodeInfo, 0, n.cfg.SuccessorListLen)
	seen := map[dht.ID]bool{}
	add := func(ni NodeInfo) {
		if ni.zero() || seen[ni.ID] || len(list) >= n.cfg.SuccessorListLen {
			return
		}
		seen[ni.ID] = true
		list = append(list, ni)
	}
	add(succ)
	for _, ni := range tail {
		if ni.ID == n.self.ID {
			continue
		}
		add(ni)
	}
	if len(list) == 0 {
		list = append(list, n.self)
	}
	n.successors = list
	n.fingers[0] = list[0]
}

// CheckPredecessorOnce clears the predecessor pointer if it no longer
// responds, so that notify can install a live one.
func (n *Node) CheckPredecessorOnce(ctx context.Context) {
	n.mu.Lock()
	pred := n.predecessor
	n.mu.Unlock()
	if pred.zero() || pred.ID == n.self.ID {
		return
	}
	if _, err := n.call(ctx, pred.Addr, rpcPing{}); err != nil {
		n.mu.Lock()
		if n.predecessor.Addr == pred.Addr {
			n.predecessor = NodeInfo{}
			n.met.predClears.Inc()
		}
		n.mu.Unlock()
	}
}

// FixFingersOnce refreshes one finger-table entry per call, cycling
// through the table (Chord's fix_fingers).
func (n *Node) FixFingersOnce(ctx context.Context) error {
	n.mu.Lock()
	if !n.joined {
		n.mu.Unlock()
		return dht.ErrNotJoined
	}
	i := n.nextFinger
	n.nextFinger = (n.nextFinger + 1) % len(n.fingers)
	n.mu.Unlock()
	n.met.fixFingers.Inc()

	start := n.self.ID + dht.ID(1)<<uint(i) // modular arithmetic wraps naturally
	info, _, err := n.FindSuccessor(ctx, start)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.fingers[i] = info
	n.mu.Unlock()
	return nil
}

// FixAllFingers refreshes the whole finger table (test and
// bootstrap helper; production code uses the incremental version).
func (n *Node) FixAllFingers(ctx context.Context) error {
	for i := 0; i < 64; i++ {
		if err := n.FixFingersOnce(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Finger returns finger-table entry i (diagnostic helper).
func (n *Node) Finger(i int) NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fingers[i]
}
