// Package chord is a from-scratch implementation of the Chord
// distributed hash table (Stoica et al., SIGCOMM 2001) providing the
// generalized DOLR substrate of Section 2.1 of the keyword-search
// paper: deterministic key→node mapping with surrogate routing
// (successor-of-ID), finger-table routing, successor lists for fault
// tolerance, and reference storage with handoff on join.
package chord

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// NodeInfo identifies a ring member.
type NodeInfo struct {
	ID   dht.ID
	Addr transport.Addr
}

// zero reports whether the info is unset.
func (ni NodeInfo) zero() bool { return ni.Addr == "" }

// Config tunes a Chord node.
type Config struct {
	// SuccessorListLen is the number of successors kept for fault
	// tolerance (Chord's r parameter). Default 4.
	SuccessorListLen int
	// MaxLookupSteps bounds iterative lookups. Default 256.
	MaxLookupSteps int
	// RPCTimeout bounds each remote call. Default 2s.
	RPCTimeout time.Duration
	// Telemetry receives routing and maintenance metrics. Nil disables
	// the instrumentation at zero cost. Nodes sharing a registry sum
	// their chord_refs gauge deployment-wide.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.SuccessorListLen <= 0 {
		c.SuccessorListLen = 4
	}
	if c.MaxLookupSteps <= 0 {
		c.MaxLookupSteps = 256
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 2 * time.Second
	}
	return c
}

// Node is one Chord ring member. Create it with New, then call Create
// (first node) or Join (subsequent nodes). Node implements dht.Overlay.
type Node struct {
	self NodeInfo
	net  transport.Sender
	cfg  Config

	mu          sync.Mutex
	joined      bool
	predecessor NodeInfo
	successors  []NodeInfo // successors[0] is the immediate successor
	fingers     [64]NodeInfo
	nextFinger  int
	refs        map[string]map[refKey]dht.Reference // objectID → holder set
	succHook    func(NodeInfo)

	maintStop chan struct{}
	maintDone chan struct{}

	met nodeMetrics
}

// nodeMetrics holds the node's pre-resolved instruments. Every field
// is nil when Config.Telemetry is nil; all methods on nil instruments
// are no-ops, so instrumented paths need no conditionals.
type nodeMetrics struct {
	lookups        *telemetry.Counter    // chord_lookups_total
	lookupFailures *telemetry.Counter    // chord_lookup_failures_total
	lookupHops     *telemetry.Histogram  // chord_lookup_hops
	stabilizes     *telemetry.Counter    // chord_stabilize_runs_total
	fixFingers     *telemetry.Counter    // chord_fix_fingers_runs_total
	predClears     *telemetry.Counter    // chord_predecessor_clears_total
	joins          *telemetry.Counter    // chord_joins_total
	leaves         *telemetry.Counter    // chord_leaves_total
	rpcHandled     *telemetry.CounterVec // chord_rpc_handled_total{type}
}

func newNodeMetrics(reg *telemetry.Registry) nodeMetrics {
	return nodeMetrics{
		lookups:        reg.Counter("chord_lookups_total"),
		lookupFailures: reg.Counter("chord_lookup_failures_total"),
		lookupHops:     reg.Histogram("chord_lookup_hops", telemetry.LinearBuckets(1, 1, 12)),
		stabilizes:     reg.Counter("chord_stabilize_runs_total"),
		fixFingers:     reg.Counter("chord_fix_fingers_runs_total"),
		predClears:     reg.Counter("chord_predecessor_clears_total"),
		joins:          reg.Counter("chord_joins_total"),
		leaves:         reg.Counter("chord_leaves_total"),
		rpcHandled:     reg.CounterVec("chord_rpc_handled_total", "type"),
	}
}

var _ dht.Overlay = (*Node)(nil)

type refKey struct {
	holder   transport.Addr
	location string
}

// New constructs a node identified by hashing addr into the ID space.
// The node's RPC handler must be reachable at addr; wire it with
// Handler (typically through a transport mux shared with the index
// layer).
func New(addr transport.Addr, net transport.Sender, cfg Config) *Node {
	n := &Node{
		self: NodeInfo{ID: dht.HashString(string(addr)), Addr: addr},
		net:  net,
		cfg:  cfg.withDefaults(),
		refs: make(map[string]map[refKey]dht.Reference),
		met:  newNodeMetrics(cfg.Telemetry),
	}
	if cfg.Telemetry != nil {
		cfg.Telemetry.GaugeFunc("chord_refs", func() int64 { return int64(n.RefCount()) })
	}
	return n
}

// OnSuccessorChange registers fn to be invoked each time the node's
// immediate successor changes to a different live node — at join, when
// stabilization discovers a closer successor, or when a departing
// neighbor is spliced out. The hook runs on its own goroutine outside
// the node's lock, so it may call back into the node; duplicate
// invocations for the same successor must be tolerated. One hook at a
// time; nil unregisters.
func (n *Node) OnSuccessorChange(fn func(succ NodeInfo)) {
	n.mu.Lock()
	n.succHook = fn
	n.mu.Unlock()
}

// succChangedLocked fires the successor-change hook when the list head
// moved away from old to a different node. Called with n.mu held; the
// hook itself runs asynchronously so it can re-enter the node.
func (n *Node) succChangedLocked(old NodeInfo) {
	if n.succHook == nil || len(n.successors) == 0 {
		return
	}
	head := n.successors[0]
	if head.zero() || head.ID == old.ID || head.ID == n.self.ID {
		return
	}
	hook := n.succHook
	go hook(head)
}

// headSuccessorLocked returns the current immediate successor (zero
// value when the list is empty). Called with n.mu held.
func (n *Node) headSuccessorLocked() NodeInfo {
	if len(n.successors) == 0 {
		return NodeInfo{}
	}
	return n.successors[0]
}

// Info returns this node's identity.
func (n *Node) Info() NodeInfo { return n.self }

// ID returns this node's ring identifier.
func (n *Node) ID() dht.ID { return n.self.ID }

// Addr returns this node's transport address.
func (n *Node) Addr() transport.Addr { return n.self.Addr }

// Create starts a new single-node ring.
func (n *Node) Create() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.joined = true
	n.predecessor = n.self
	n.successors = []NodeInfo{n.self}
	for i := range n.fingers {
		n.fingers[i] = n.self
	}
}

// Join adds this node to the ring containing the node at seed. It
// locates its successor, installs it, and asks it to hand over the
// references this node is now responsible for.
func (n *Node) Join(ctx context.Context, seed transport.Addr) error {
	n.mu.Lock()
	if n.joined {
		n.mu.Unlock()
		return fmt.Errorf("chord: node %s already joined", n.self.Addr)
	}
	n.mu.Unlock()

	succ, _, err := n.findSuccessorVia(ctx, seed, n.self.ID)
	if err != nil {
		return fmt.Errorf("join via %s: %w", seed, err)
	}
	n.mu.Lock()
	n.joined = true
	n.predecessor = NodeInfo{}
	n.successors = []NodeInfo{succ}
	for i := range n.fingers {
		n.fingers[i] = succ
	}
	n.mu.Unlock()

	// Take over the key range (predecessor(succ), n.ID] from the
	// successor. Best effort: stabilization converges regardless.
	resp, err := n.call(ctx, succ.Addr, rpcHandoff{NewNode: n.self})
	if err == nil {
		if h, ok := resp.(respHandoff); ok {
			n.mu.Lock()
			for _, ref := range h.Refs {
				n.storeRefLocked(ref)
			}
			n.mu.Unlock()
		}
	}
	n.met.joins.Inc()
	// Announce ourselves so the ring converges quickly even before the
	// first maintenance tick.
	return n.StabilizeOnce(ctx)
}

// Owns reports whether this node is currently responsible for key:
// key lies in (predecessor, self]. When the predecessor is unknown the
// node answers optimistically (stabilization will correct ownership).
func (n *Node) Owns(key dht.ID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.joined {
		return false
	}
	if n.predecessor.zero() {
		return true
	}
	return dht.Between(key, n.predecessor.ID, n.self.ID)
}

// Successor returns the current immediate successor.
func (n *Node) Successor() NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.successors) == 0 {
		return n.self
	}
	return n.successors[0]
}

// Predecessor returns the current predecessor (zero if unknown).
func (n *Node) Predecessor() NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.predecessor
}

// SuccessorList returns a copy of the successor list.
func (n *Node) SuccessorList() []NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeInfo, len(n.successors))
	copy(out, n.successors)
	return out
}

// StartMaintenance launches the periodic stabilize / fix-fingers /
// check-predecessor loop. Call StopMaintenance (or Shutdown) to stop
// it; the loop owns no other resources.
func (n *Node) StartMaintenance(interval time.Duration) {
	n.mu.Lock()
	if n.maintStop != nil {
		n.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	n.maintStop = stop
	n.maintDone = done
	n.mu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				ctx, cancel := context.WithTimeout(context.Background(), n.cfg.RPCTimeout)
				_ = n.MaintainOnce(ctx)
				cancel()
			case <-stop:
				return
			}
		}
	}()
}

// StopMaintenance stops the maintenance loop and waits for it to exit.
func (n *Node) StopMaintenance() {
	n.mu.Lock()
	stop, done := n.maintStop, n.maintDone
	n.maintStop, n.maintDone = nil, nil
	n.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Shutdown stops maintenance and marks the node as left. It does not
// transfer keys (crash-stop model); the ring heals via successor lists.
func (n *Node) Shutdown() {
	n.StopMaintenance()
	n.mu.Lock()
	n.joined = false
	n.mu.Unlock()
}

// Leave departs the ring gracefully: it hands every stored reference
// to the successor and tells both neighbors to splice this node out,
// then shuts down. Best effort — unreachable neighbors degrade to the
// crash-stop path, which stabilization heals.
func (n *Node) Leave(ctx context.Context) error {
	n.StopMaintenance()
	n.mu.Lock()
	if !n.joined {
		n.mu.Unlock()
		return dht.ErrNotJoined
	}
	n.joined = false
	n.met.leaves.Inc()
	var succ NodeInfo
	if len(n.successors) > 0 {
		succ = n.successors[0]
	}
	pred := n.predecessor
	var refs []dht.Reference
	for _, holders := range n.refs {
		for _, r := range holders {
			refs = append(refs, r)
		}
	}
	n.refs = make(map[string]map[refKey]dht.Reference)
	n.mu.Unlock()

	if succ.zero() || succ.ID == n.self.ID {
		return nil // singleton ring: nothing to hand off
	}
	var firstErr error
	if _, err := n.call(ctx, succ.Addr, rpcDepart{
		Leaver:      n.self,
		Predecessor: pred,
		Refs:        refs,
	}); err != nil {
		firstErr = fmt.Errorf("depart to successor %s: %w", succ.Addr, err)
	}
	if !pred.zero() && pred.ID != n.self.ID {
		if _, err := n.call(ctx, pred.Addr, rpcDepart{
			Leaver:    n.self,
			Successor: succ,
		}); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("depart to predecessor %s: %w", pred.Addr, err)
		}
	}
	return firstErr
}

// MaintainOnce runs one round of stabilize, fix-fingers and
// check-predecessor. The experiment harness calls this directly for
// deterministic convergence instead of running the background loop.
func (n *Node) MaintainOnce(ctx context.Context) error {
	if err := n.StabilizeOnce(ctx); err != nil {
		return err
	}
	n.CheckPredecessorOnce(ctx)
	return n.FixFingersOnce(ctx)
}

func (n *Node) call(ctx context.Context, to transport.Addr, body any) (any, error) {
	ctx, cancel := context.WithTimeout(ctx, n.cfg.RPCTimeout)
	defer cancel()
	return n.net.Send(ctx, to, body)
}
