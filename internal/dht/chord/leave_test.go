package chord

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

func TestLeaveTransfersReferences(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	ctx := context.Background()
	nodes := buildRing(t, net, 5)

	const objects = 120
	for i := 0; i < objects; i++ {
		ref := dht.Reference{ObjectID: fmt.Sprintf("leave-%d", i), Holder: "h", Location: "/"}
		if _, err := nodes[0].Insert(ctx, ref); err != nil {
			t.Fatal(err)
		}
	}

	// The heaviest node leaves gracefully.
	leaver := nodes[0]
	for _, n := range nodes[1:] {
		if n.RefCount() > leaver.RefCount() {
			leaver = n
		}
	}
	if leaver.RefCount() == 0 {
		t.Fatal("no node holds references")
	}
	if err := leaver.Leave(ctx); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if leaver.RefCount() != 0 {
		t.Errorf("leaver still holds %d refs", leaver.RefCount())
	}
	net.SetDown(leaver.Addr(), true)

	var alive []*Node
	for _, n := range nodes {
		if n != leaver {
			alive = append(alive, n)
		}
	}
	converge(ctx, alive)
	sort.Slice(alive, func(i, j int) bool { return alive[i].ID() < alive[j].ID() })
	checkRing(t, alive)

	// Every reference survived the departure (unlike crash-stop).
	total := 0
	for _, n := range alive {
		total += n.RefCount()
	}
	if total != objects {
		t.Errorf("refs after leave = %d, want %d", total, objects)
	}
	for i := 0; i < objects; i++ {
		id := fmt.Sprintf("leave-%d", i)
		if _, err := alive[i%len(alive)].Read(ctx, id); err != nil {
			t.Fatalf("Read %s after leave: %v", id, err)
		}
	}
}

func TestLeaveSingletonRing(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	solo := New("solo-leave", net, Config{})
	net.Bind("solo-leave", solo.Handler)
	solo.Create()
	if err := solo.Leave(context.Background()); err != nil {
		t.Fatalf("singleton Leave: %v", err)
	}
}

func TestLeaveBeforeJoin(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	n := New("never-joined", net, Config{})
	if err := n.Leave(context.Background()); !errors.Is(err, dht.ErrNotJoined) {
		t.Errorf("Leave before join: %v", err)
	}
}

func TestLeaveTwoNodeRing(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	ctx := context.Background()
	nodes := buildRing(t, net, 2)

	ref := dht.Reference{ObjectID: "pair-obj", Holder: "h", Location: "/"}
	if _, err := nodes[0].Insert(ctx, ref); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Leave(ctx); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	remaining := nodes[0]
	converge(ctx, []*Node{remaining})
	if got := remaining.Successor(); got.ID != remaining.ID() {
		t.Errorf("survivor successor = %d, want self", got.ID)
	}
	if _, err := remaining.Read(ctx, "pair-obj"); err != nil {
		t.Errorf("Read after pair leave: %v", err)
	}
}
