package chord

import (
	"reflect"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

func TestChordWireRoundTrip(t *testing.T) {
	RegisterTypes()
	ni := NodeInfo{ID: 0xdeadbeefcafef00d, Addr: "127.0.0.1:9001"}
	refs := []dht.Reference{
		{ObjectID: "obj", Holder: "10.0.0.1:80", Location: "/a/b"},
		{ObjectID: "", Holder: "", Location: ""},
	}
	for _, msg := range []any{
		rpcFindClosest{ID: 1 << 63},
		respFindClosest{Done: true, Node: ni},
		respFindClosest{},
		rpcGetPredecessor{},
		respGetPredecessor{Known: true, Node: ni},
		rpcNotify{Candidate: ni},
		respOK{},
		rpcGetSuccessorList{},
		respGetSuccessorList{Successors: []NodeInfo{ni, {ID: 2, Addr: "b"}}},
		respGetSuccessorList{},
		rpcPing{},
		rpcInsertRef{Ref: refs[0]},
		respInsertRef{First: true},
		rpcDeleteRef{Ref: refs[0]},
		respDeleteRef{Found: true, Remaining: 4},
		rpcReadRefs{ObjectID: "x"},
		respReadRefs{Found: true, Refs: refs},
		respReadRefs{},
		rpcHandoff{NewNode: ni},
		respHandoff{Refs: refs},
		respHandoff{},
		rpcDepart{Leaver: ni, Predecessor: NodeInfo{ID: 1, Addr: "p"},
			Successor: NodeInfo{ID: 2, Addr: "s"}, Refs: refs},
		rpcDepart{},
	} {
		c, ok := wire.Lookup(msg)
		if !ok {
			t.Fatalf("no wire codec registered for %T", msg)
		}
		w := wire.GetWriter()
		c.Encode(w, msg)
		r := wire.NewReader(w.Buf)
		got, err := c.Decode(r)
		wire.PutWriter(w)
		if err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		if err := r.Finish(); err != nil {
			t.Fatalf("decode %T trailing bytes: %v", msg, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("%T round trip mismatch:\n got %+v\nwant %+v", msg, got, msg)
		}
	}
}
