package corpus

import (
	"math"
	"testing"
)

func smallCorpus(t *testing.T, n int, seed int64) *Corpus {
	t.Helper()
	c, err := Generate(Config{Objects: n, VocabSize: 5000, Seed: seed})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return c
}

func TestGenerateDefaults(t *testing.T) {
	c, err := Generate(Config{Objects: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2000 {
		t.Errorf("Len = %d", c.Len())
	}
	for _, r := range c.Records()[:10] {
		if r.ID == "" || r.Title == "" || r.URL == "" || len(r.Category) != 10 {
			t.Errorf("malformed record: %+v", r)
		}
		if r.Keywords.IsEmpty() {
			t.Errorf("record %s has no keywords", r.ID)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Objects: -1}); err == nil {
		t.Error("negative objects accepted")
	}
	if _, err := Generate(Config{Objects: 10, VocabSize: 3}); err == nil {
		t.Error("tiny vocabulary accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := smallCorpus(t, 500, 42)
	b := smallCorpus(t, 500, 42)
	for i := range a.Records() {
		if !a.Records()[i].Keywords.Equal(b.Records()[i].Keywords) {
			t.Fatalf("record %d differs across same-seed runs", i)
		}
	}
	c := smallCorpus(t, 500, 43)
	same := 0
	for i := range a.Records() {
		if a.Records()[i].Keywords.Equal(c.Records()[i].Keywords) {
			same++
		}
	}
	if same > 250 {
		t.Errorf("different seeds produced %d/500 identical records", same)
	}
}

func TestMeanKeywordsMatchesPaper(t *testing.T) {
	c := smallCorpus(t, 20000, 7)
	mean := c.MeanKeywords()
	// The paper reports 7.3 keywords per object on average.
	if mean < 6.8 || mean > 7.8 {
		t.Errorf("mean keyword-set size = %.2f, want ≈ 7.3", mean)
	}
}

func TestSizeHistogramShape(t *testing.T) {
	c := smallCorpus(t, 20000, 9)
	hist := c.SizeHistogram()
	if hist[0] != 0 {
		t.Error("size-0 objects exist")
	}
	// Unimodal-ish: the mode should be in 4..8 and the tail thin.
	mode, modeCount := 0, 0
	total := 0
	for s, n := range hist {
		total += n
		if n > modeCount {
			mode, modeCount = s, n
		}
	}
	if mode < 4 || mode > 8 {
		t.Errorf("mode at size %d, want 4..8", mode)
	}
	if total != c.Len() {
		t.Errorf("histogram total %d != corpus %d", total, c.Len())
	}
	tail := 0
	for s := 20; s < len(hist); s++ {
		tail += hist[s]
	}
	if float64(tail)/float64(total) > 0.05 {
		t.Errorf("tail (size ≥ 20) holds %.1f%% of objects", 100*float64(tail)/float64(total))
	}
}

func TestSizePMFSumsToOne(t *testing.T) {
	c := smallCorpus(t, 5000, 11)
	sum := 0.0
	for _, p := range c.SizePMF() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("SizePMF sums to %g", sum)
	}
}

func TestKeywordFrequenciesZipfSkewed(t *testing.T) {
	c := smallCorpus(t, 20000, 13)
	freq := c.KeywordFrequencies()
	// The most popular keyword should appear in far more records than
	// the 100th keyword (by construction rank-0 is drawn most often).
	top := freq["kw0"]
	hundredth := freq["kw99"]
	if top == 0 {
		t.Fatal("kw0 never used")
	}
	if hundredth > 0 && top < 5*hundredth {
		t.Errorf("kw0 freq %d vs kw99 freq %d — insufficient skew", top, hundredth)
	}
}

func TestQueryLogDefaults(t *testing.T) {
	c := smallCorpus(t, 5000, 17)
	log, err := GenerateQueryLog(c, QueryLogConfig{Queries: 20000, Templates: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() != 20000 {
		t.Errorf("Len = %d", log.Len())
	}
	for _, q := range log.Queries()[:50] {
		if q.Keywords.IsEmpty() || q.Keywords.Len() > 5 {
			t.Errorf("query size %d out of range", q.Keywords.Len())
		}
		if q.Template < 1 || q.Template > 500 {
			t.Errorf("template rank %d out of range", q.Template)
		}
	}
}

func TestQueryLogTopTenShare(t *testing.T) {
	c := smallCorpus(t, 5000, 19)
	log, err := GenerateQueryLog(c, QueryLogConfig{Queries: 50000, Templates: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	share := log.TopShare(10)
	// Paper footnote: top-10 queries > 60 % of daily volume.
	if share < 0.55 || share > 0.80 {
		t.Errorf("top-10 share = %.2f, want ≈ 0.6-0.7", share)
	}
}

func TestQueryTemplatesMatchCorpusObjects(t *testing.T) {
	c := smallCorpus(t, 3000, 23)
	log, err := GenerateQueryLog(c, QueryLogConfig{Queries: 1000, Templates: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Every template must be a subset of at least one object's
	// keywords (i.e. return results).
	for ti, tmpl := range log.Templates() {
		found := false
		for _, r := range c.Records() {
			if tmpl.SubsetOf(r.Keywords) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("template %d (%v) matches no object", ti, tmpl)
		}
	}
}

func TestPopularOfSize(t *testing.T) {
	c := smallCorpus(t, 5000, 29)
	log, err := GenerateQueryLog(c, QueryLogConfig{Queries: 1000, Templates: 600, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for m := 1; m <= 5; m++ {
		qs := log.PopularOfSize(m, 5)
		if len(qs) == 0 {
			t.Errorf("no templates of size %d", m)
			continue
		}
		for _, q := range qs {
			if q.Len() != m {
				t.Errorf("PopularOfSize(%d) returned size %d", m, q.Len())
			}
		}
	}
}

func TestQueryLogValidation(t *testing.T) {
	c := smallCorpus(t, 100, 31)
	if _, err := GenerateQueryLog(nil, QueryLogConfig{}); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := GenerateQueryLog(c, QueryLogConfig{Queries: -1}); err == nil {
		t.Error("negative queries accepted")
	}
}

func TestQueryLogDeterministic(t *testing.T) {
	c := smallCorpus(t, 2000, 37)
	a, _ := GenerateQueryLog(c, QueryLogConfig{Queries: 500, Templates: 100, Seed: 11})
	b, _ := GenerateQueryLog(c, QueryLogConfig{Queries: 500, Templates: 100, Seed: 11})
	for i := range a.Queries() {
		if !a.Queries()[i].Keywords.Equal(b.Queries()[i].Keywords) {
			t.Fatal("same-seed query logs diverge")
		}
	}
}
