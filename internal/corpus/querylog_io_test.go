package corpus

import (
	"bytes"
	"strings"
	"testing"
)

func smallLog(t *testing.T, seed int64) *QueryLog {
	t.Helper()
	c, err := Generate(Config{Objects: 500, VocabSize: 800, Seed: 7})
	if err != nil {
		t.Fatalf("generate corpus: %v", err)
	}
	log, err := GenerateQueryLog(c, QueryLogConfig{
		Queries: 2000, Templates: 50, Seed: seed,
	})
	if err != nil {
		t.Fatalf("generate query log: %v", err)
	}
	return log
}

// TestQueryLogSeedDeterminism pins the reproducibility contract ksload
// depends on: the same corpus and seed must yield a byte-identical
// exported query log, and a different seed a different one.
func TestQueryLogSeedDeterminism(t *testing.T) {
	var a, b, c bytes.Buffer
	if err := smallLog(t, 42).WriteTSV(&a); err != nil {
		t.Fatalf("write a: %v", err)
	}
	if err := smallLog(t, 42).WriteTSV(&b); err != nil {
		t.Fatalf("write b: %v", err)
	}
	if err := smallLog(t, 43).WriteTSV(&c); err != nil {
		t.Fatalf("write c: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different query logs")
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical query logs")
	}
}

// TestQueryLogTSVRoundTrip checks that an exported log replays with
// the exact arrival order, keyword sets and template ranks.
func TestQueryLogTSVRoundTrip(t *testing.T) {
	log := smallLog(t, 1)
	var buf bytes.Buffer
	if err := log.WriteTSV(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadQueryLogTSV(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	want := log.Queries()
	if len(got) != len(want) {
		t.Fatalf("round trip length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Template != want[i].Template || got[i].Keywords.Key() != want[i].Keywords.Key() {
			t.Fatalf("query %d = {%d %v}, want {%d %v}",
				i, got[i].Template, got[i].Keywords, want[i].Template, want[i].Keywords)
		}
	}
}

// TestReadQueryLogTSVRejectsMalformed pins the error paths.
func TestReadQueryLogTSVRejectsMalformed(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"no-tab", "1 alpha beta\n"},
		{"bad-rank", "x\talpha\n"},
		{"empty-set", "1\t\n"},
	} {
		if _, err := ReadQueryLogTSV(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: parsed malformed line without error", tc.name)
		}
	}
	// Comments and blank lines are skipped, not errors.
	got, err := ReadQueryLogTSV(strings.NewReader("# header\n\n3\talpha beta\n"))
	if err != nil || len(got) != 1 || got[0].Template != 3 {
		t.Fatalf("comment handling: got %v, %v", got, err)
	}
}
