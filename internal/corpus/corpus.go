// Package corpus generates the synthetic workload standing in for the
// paper's proprietary PCHome dataset (Section 4): a directory of
// website records whose Keyword fields drive the index, plus a query
// log with the popularity skew the paper reports.
//
// The substitution preserves the two properties every experiment in
// Section 4 depends on:
//
//  1. the keyword-set-size distribution (Figure 5): right-skewed,
//     unimodal, mean ≈ 7.3 keywords per object, tail to ~30;
//  2. Zipf-distributed keyword popularity, which drives the load
//     imbalance of the inverted-index baseline and the non-empty
//     result sets of popular queries.
//
// All generation is deterministic given Config.Seed.
package corpus

import (
	"fmt"
	"math/rand"
	"strconv"

	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/randx"
)

// DefaultObjects matches the paper's corpus size (131,180 records).
const DefaultObjects = 131180

// DefaultSizeWeights is the keyword-set-size distribution calibrated
// to Figure 5: index i holds the relative weight of size i (index 0
// unused). Mean ≈ 7.3.
func DefaultSizeWeights() []float64 {
	return []float64{
		0,                                    // size 0 never occurs
		1, 4, 8, 12, 14, 13, 11, 9.5, 7.5, 6, // 1..10
		4, 3.4, 2.2, 2, 1.2, 1.2, 0.7, 0.7, 0.4, 0.3, // 11..20
		0.22, 0.16, 0.12, 0.09, 0.07, 0.05, 0.04, 0.03, 0.02, 0.015, // 21..30
	}
}

// Config parameterizes corpus generation.
type Config struct {
	// Objects is the number of records; default DefaultObjects.
	Objects int
	// VocabSize is the keyword vocabulary size; default 40,000.
	VocabSize int
	// ZipfExponent skews keyword popularity; default 1.0 (classic
	// Zipf's law, per the paper's introduction).
	ZipfExponent float64
	// SizeWeights is the keyword-set-size distribution (index = size);
	// default DefaultSizeWeights.
	SizeWeights []float64
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Objects == 0 {
		c.Objects = DefaultObjects
	}
	if c.VocabSize == 0 {
		c.VocabSize = 40000
	}
	if c.ZipfExponent == 0 {
		c.ZipfExponent = 1.0
	}
	if c.SizeWeights == nil {
		c.SizeWeights = DefaultSizeWeights()
	}
	return c
}

// Record mirrors the paper's Table 1 schema: a website directory entry
// whose Keyword field is the indexable keyword set.
type Record struct {
	ID          string
	Title       string
	URL         string
	Category    string
	Description string
	Keywords    keyword.Set
}

// Corpus is a generated object set.
type Corpus struct {
	cfg     Config
	records []Record
	vocab   []string
}

// Generate builds a corpus.
func Generate(cfg Config) (*Corpus, error) {
	cfg = cfg.withDefaults()
	if cfg.Objects < 1 {
		return nil, fmt.Errorf("corpus: need at least one object, got %d", cfg.Objects)
	}
	if cfg.VocabSize < len(cfg.SizeWeights) {
		return nil, fmt.Errorf("corpus: vocabulary (%d) smaller than maximum keyword-set size (%d)",
			cfg.VocabSize, len(cfg.SizeWeights)-1)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf, err := randx.NewZipf(rng, cfg.VocabSize, cfg.ZipfExponent)
	if err != nil {
		return nil, err
	}
	sizes := make([]int, 0, len(cfg.SizeWeights))
	weights := make([]float64, 0, len(cfg.SizeWeights))
	for size, w := range cfg.SizeWeights {
		if size == 0 || w == 0 {
			continue
		}
		sizes = append(sizes, size)
		weights = append(weights, w)
	}
	sizeDist, err := randx.NewHistogram(rng, sizes, weights)
	if err != nil {
		return nil, err
	}

	vocab := make([]string, cfg.VocabSize)
	for i := range vocab {
		vocab[i] = "kw" + strconv.Itoa(i)
	}

	c := &Corpus{cfg: cfg, vocab: vocab, records: make([]Record, 0, cfg.Objects)}
	for i := 0; i < cfg.Objects; i++ {
		size := sizeDist.Sample()
		words := make(map[string]bool, size)
		// Draw distinct keywords; Zipf repeats are resampled, which
		// preserves marginal popularity closely enough for the
		// workload's purposes.
		for len(words) < size {
			words[vocab[zipf.Sample()-1]] = true
		}
		list := make([]string, 0, size)
		for w := range words {
			list = append(list, w)
		}
		id := strconv.Itoa(i + 1)
		c.records = append(c.records, Record{
			ID:          id,
			Title:       "Site " + id,
			URL:         "http://site-" + id + ".example.tw",
			Category:    fmt.Sprintf("%010d", rng.Intn(1_000_000_000)),
			Description: "Synthetic directory record " + id,
			Keywords:    keyword.NewSet(list...),
		})
	}
	return c, nil
}

// Records returns the full record list (not copied; treat as
// read-only).
func (c *Corpus) Records() []Record { return c.records }

// Len returns the number of records.
func (c *Corpus) Len() int { return len(c.records) }

// Vocab returns the vocabulary, most popular keyword first.
func (c *Corpus) Vocab() []string { return c.vocab }

// SizeHistogram returns counts of keyword-set sizes (index = size),
// the data behind Figure 5.
func (c *Corpus) SizeHistogram() []int {
	maxSize := 0
	for _, r := range c.records {
		if n := r.Keywords.Len(); n > maxSize {
			maxSize = n
		}
	}
	hist := make([]int, maxSize+1)
	for _, r := range c.records {
		hist[r.Keywords.Len()]++
	}
	return hist
}

// SizePMF returns the empirical keyword-set-size distribution
// (index = size), suitable for analytic.ObjectOnesPMF and
// analytic.ChooseDimension.
func (c *Corpus) SizePMF() []float64 {
	hist := c.SizeHistogram()
	pmf := make([]float64, len(hist))
	n := float64(len(c.records))
	for i, cnt := range hist {
		pmf[i] = float64(cnt) / n
	}
	return pmf
}

// MeanKeywords returns the average keyword-set size (the paper
// reports 7.3).
func (c *Corpus) MeanKeywords() float64 {
	total := 0
	for _, r := range c.records {
		total += r.Keywords.Len()
	}
	return float64(total) / float64(len(c.records))
}

// KeywordFrequencies returns, for every keyword that occurs, the
// number of records containing it — the per-keyword load of a
// distributed inverted index.
func (c *Corpus) KeywordFrequencies() map[string]int {
	freq := make(map[string]int)
	for _, r := range c.records {
		for _, w := range r.Keywords.Words() {
			freq[w]++
		}
	}
	return freq
}
