package corpus

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// WriteTSV serializes the query log as one line per query:
//
//	<template-rank>\t<keyword> <keyword> ...\n
//
// in arrival order. The format is deterministic — the same log always
// produces byte-identical output — so exported logs can be diffed,
// checksummed, and replayed by ksload across processes and machines.
func (l *QueryLog) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, q := range l.queries {
		if _, err := fmt.Fprintf(bw, "%d\t%s\n", q.Template, strings.Join(q.Keywords.Words(), " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadQueryLogTSV parses a WriteTSV export back into replayable
// queries. Only the arrival sequence is recovered — template sets and
// ground-truth result sizes stay with the generating corpus — which is
// exactly what an open-loop replay needs.
func ReadQueryLogTSV(r io.Reader) ([]Query, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var queries []Query
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rank, words, ok := strings.Cut(text, "\t")
		if !ok {
			return nil, fmt.Errorf("corpus: query log line %d: missing tab separator", line)
		}
		tmpl, err := strconv.Atoi(rank)
		if err != nil {
			return nil, fmt.Errorf("corpus: query log line %d: bad template rank %q", line, rank)
		}
		set := keyword.NewSet(strings.Fields(words)...)
		if set.IsEmpty() {
			return nil, fmt.Errorf("corpus: query log line %d: empty keyword set", line)
		}
		queries = append(queries, Query{Keywords: set, Template: tmpl})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return queries, nil
}
