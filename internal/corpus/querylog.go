package corpus

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/randx"
)

// Query is one entry of the synthetic query log.
type Query struct {
	Keywords keyword.Set
	// Template is the popularity rank of the query template this
	// query was drawn from (1 = most popular).
	Template int
}

// QueryLogConfig parameterizes query-log generation.
type QueryLogConfig struct {
	// Queries is the log length; default 178,000 (the paper's
	// one-day volume).
	Queries int
	// Templates is the number of distinct query templates; default
	// 2,000.
	Templates int
	// PopularityExponent is the Zipf exponent over templates; the
	// default 1.3 puts ≈ 64 % of the volume on the top-10 templates,
	// matching the paper's footnote ("the ten most popular queries
	// account for more than 60 % of the total queries per day").
	PopularityExponent float64
	// SizeWeights is the distribution of query keyword-set sizes
	// m = 1..len-1; the default is the head-heavy mix typical of web
	// query logs (the paper evaluates m = 1..5).
	SizeWeights []float64
	// MaxTemplateResults rejects candidate templates matching more
	// than this many corpus objects, reflecting that real query-log
	// entries name specific things rather than the corpus's most
	// generic keyword. Default 200; set to -1 to disable the cap.
	MaxTemplateResults int
	// Seed drives all randomness.
	Seed int64
}

func (c QueryLogConfig) withDefaults() QueryLogConfig {
	if c.Queries == 0 {
		c.Queries = 178000
	}
	if c.Templates == 0 {
		c.Templates = 2000
	}
	if c.PopularityExponent == 0 {
		c.PopularityExponent = 1.3
	}
	if c.SizeWeights == nil {
		c.SizeWeights = []float64{0, 45, 30, 15, 7, 3}
	}
	if c.MaxTemplateResults == 0 {
		c.MaxTemplateResults = 200
	}
	return c
}

// QueryLog is a generated day of queries.
type QueryLog struct {
	queries    []Query
	templates  []keyword.Set // by popularity rank (index 0 = rank 1)
	resultSize []int         // ground-truth |O_K| per template
}

// GenerateQueryLog derives a query log from a corpus. Templates are
// built by projecting random corpus objects onto m of their keywords,
// so every template matches at least one object (queries that return
// nothing exercise no interesting code path and the paper's
// measurements are over result-bearing queries).
func GenerateQueryLog(c *Corpus, cfg QueryLogConfig) (*QueryLog, error) {
	cfg = cfg.withDefaults()
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("corpus: query log needs a non-empty corpus")
	}
	if cfg.Queries < 1 || cfg.Templates < 1 {
		return nil, fmt.Errorf("corpus: queries (%d) and templates (%d) must be positive",
			cfg.Queries, cfg.Templates)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	sizes := make([]int, 0, len(cfg.SizeWeights))
	weights := make([]float64, 0, len(cfg.SizeWeights))
	for size, w := range cfg.SizeWeights {
		if size == 0 || w == 0 {
			continue
		}
		sizes = append(sizes, size)
		weights = append(weights, w)
	}
	sizeDist, err := randx.NewHistogram(rng, sizes, weights)
	if err != nil {
		return nil, err
	}

	records := c.Records()
	postings := buildPostings(records)
	templates := make([]keyword.Set, 0, cfg.Templates)
	resultSize := make([]int, 0, cfg.Templates)
	seen := make(map[string]bool, cfg.Templates)
	for attempts := 0; len(templates) < cfg.Templates; attempts++ {
		if attempts > cfg.Templates*200 {
			return nil, fmt.Errorf("corpus: could not derive %d distinct templates (corpus too small or result cap too tight?)", cfg.Templates)
		}
		m := sizeDist.Sample()
		rec := records[rng.Intn(len(records))]
		words := rec.Keywords.Words()
		if len(words) < m {
			continue
		}
		idx := randx.SampleWithoutReplacement(rng, len(words), m)
		sel := make([]string, m)
		for i, j := range idx {
			sel[i] = words[j]
		}
		set := keyword.NewSet(sel...)
		key := set.Key()
		if seen[key] {
			continue
		}
		n := postings.countMatches(set)
		if cfg.MaxTemplateResults > 0 && n > cfg.MaxTemplateResults {
			continue
		}
		seen[key] = true
		templates = append(templates, set)
		resultSize = append(resultSize, n)
	}

	pop, err := randx.NewZipf(rng, cfg.Templates, cfg.PopularityExponent)
	if err != nil {
		return nil, err
	}
	queries := make([]Query, cfg.Queries)
	for i := range queries {
		rank := pop.Sample()
		queries[i] = Query{Keywords: templates[rank-1], Template: rank}
	}
	return &QueryLog{queries: queries, templates: templates, resultSize: resultSize}, nil
}

// postingsIndex is a transient word → record-index inverted map used
// to count ground-truth result sizes during template generation.
type postingsIndex map[string][]int

func buildPostings(records []Record) postingsIndex {
	p := make(postingsIndex)
	for i, r := range records {
		for _, w := range r.Keywords.Words() {
			p[w] = append(p[w], i)
		}
	}
	return p
}

// countMatches returns |O_K| for the keyword set: the number of
// records containing every keyword. Lists are intersected rarest
// first.
func (p postingsIndex) countMatches(k keyword.Set) int {
	words := k.Words()
	if len(words) == 0 {
		return 0
	}
	sort.Slice(words, func(i, j int) bool { return len(p[words[i]]) < len(p[words[j]]) })
	base := p[words[0]]
	if len(words) == 1 {
		return len(base)
	}
	count := 0
	for _, rec := range base {
		all := true
		for _, w := range words[1:] {
			if !containsSorted(p[w], rec) {
				all = false
				break
			}
		}
		if all {
			count++
		}
	}
	return count
}

// containsSorted reports whether x occurs in the ascending slice s.
func containsSorted(s []int, x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}

// Queries returns the log entries in arrival order.
func (l *QueryLog) Queries() []Query { return l.queries }

// Len returns the log length.
func (l *QueryLog) Len() int { return len(l.queries) }

// Templates returns the distinct query templates by popularity rank.
func (l *QueryLog) Templates() []keyword.Set { return l.templates }

// ResultSize returns the ground-truth |O_K| of the template with
// popularity rank (1-based), as counted against the generating corpus.
func (l *QueryLog) ResultSize(rank int) int {
	if rank < 1 || rank > len(l.resultSize) {
		return 0
	}
	return l.resultSize[rank-1]
}

// TopShare returns the fraction of the log attributable to the k most
// frequent templates (the paper's footnote reports > 60 % for k = 10).
func (l *QueryLog) TopShare(k int) float64 {
	counts := make(map[int]int)
	for _, q := range l.queries {
		counts[q.Template]++
	}
	all := make([]int, 0, len(counts))
	for _, n := range counts {
		all = append(all, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	if k > len(all) {
		k = len(all)
	}
	top := 0
	for _, n := range all[:k] {
		top += n
	}
	return float64(top) / float64(len(l.queries))
}

// PopularOfSize returns up to count popular templates with exactly m
// keywords, most popular first — the per-size query samples of
// Figure 8.
func (l *QueryLog) PopularOfSize(m, count int) []keyword.Set {
	out := make([]keyword.Set, 0, count)
	for _, t := range l.templates {
		if t.Len() == m {
			out = append(out, t)
			if len(out) == count {
				break
			}
		}
	}
	return out
}
