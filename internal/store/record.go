package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Op is the kind of one logged index mutation.
type Op uint8

const (
	// OpInsert adds one ⟨instance, vertex, set key, object ID⟩ entry.
	OpInsert Op = iota + 1
	// OpDelete removes one entry.
	OpDelete
	// OpHandoff drops every entry whose vertex key left the node's DHT
	// range when a predecessor joined: entries NOT in (NewID, OwnerID].
	// The surviving set is a deterministic function of the table state,
	// so replaying the record reproduces the extraction exactly.
	OpHandoff
	// OpClear wipes every entry (graceful departure drains the tables).
	OpClear
	// OpMigrate checkpoints an inbound range migration: the range bounds
	// (NewID, OwnerID], the source address the chunks are pulled from,
	// and the cursor of the last chunk durably applied. A record with
	// Done set retires the migration; replay of an un-done record leaves
	// a resumable cursor for the migration manager to pick up after a
	// crash (see DESIGN §11).
	OpMigrate
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpHandoff:
		return "handoff"
	case OpClear:
		return "clear"
	case OpMigrate:
		return "migrate"
	default:
		return "unknown"
	}
}

// Record is one durable index mutation. Insert and Delete carry the
// entry coordinates; Handoff carries the DHT range bounds; Clear
// carries nothing. Records are idempotent: re-applying any suffix of
// the log in order converges to the same table state, which is what
// makes snapshot + full-WAL replay safe across every crash window of
// the compaction protocol (see DESIGN §9).
type Record struct {
	Op       Op
	Instance string
	Vertex   uint64
	SetKey   string
	ObjectID string
	NewID    uint64 // OpHandoff, OpMigrate: range bound
	OwnerID  uint64 // OpHandoff, OpMigrate: range bound

	// OpMigrate only. Source is the peer address chunks are pulled
	// from. HasCursor marks a checkpoint mid-range (the cursor is the
	// Instance/Vertex/SetKey/ObjectID coordinates of the last entry
	// applied); Done retires the migration.
	Source    string
	HasCursor bool
	Done      bool
}

// Frame layout: u32 little-endian payload length, u32 IEEE CRC of the
// payload, then the payload. The CRC lets recovery distinguish a torn
// tail (partial final write at a crash) from a corrupt middle.
const frameHeaderLen = 8

// maxPayloadLen rejects absurd length prefixes so a corrupt header
// cannot drive a multi-gigabyte allocation during recovery.
const maxPayloadLen = 1 << 20

// OpMigrate payload flag bits.
const (
	migFlagCursor = 1 << 0
	migFlagDone   = 1 << 1
)

// errTruncatedFrame reports a frame that does not fully fit in the
// remaining file: the torn tail a crash mid-append leaves behind.
var errTruncatedFrame = errors.New("store: truncated record frame")

// errCorruptFrame reports a full-length frame whose CRC does not match.
var errCorruptFrame = errors.New("store: corrupt record frame")

// appendRecord encodes rec as one CRC-framed payload appended to buf.
func appendRecord(buf []byte, rec Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	buf = append(buf, byte(rec.Op))
	switch rec.Op {
	case OpInsert, OpDelete:
		buf = binary.AppendUvarint(buf, rec.Vertex)
		buf = appendString(buf, rec.Instance)
		buf = appendString(buf, rec.SetKey)
		buf = appendString(buf, rec.ObjectID)
	case OpHandoff:
		buf = binary.AppendUvarint(buf, rec.NewID)
		buf = binary.AppendUvarint(buf, rec.OwnerID)
	case OpClear:
		// no payload beyond the op byte
	case OpMigrate:
		var flags byte
		if rec.HasCursor {
			flags |= migFlagCursor
		}
		if rec.Done {
			flags |= migFlagDone
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, rec.NewID)
		buf = binary.AppendUvarint(buf, rec.OwnerID)
		buf = appendString(buf, rec.Source)
		if rec.HasCursor {
			buf = binary.AppendUvarint(buf, rec.Vertex)
			buf = appendString(buf, rec.Instance)
			buf = appendString(buf, rec.SetKey)
			buf = appendString(buf, rec.ObjectID)
		}
	}
	payload := buf[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decodeRecord parses one framed record from data, returning the
// record and the number of bytes consumed. errTruncatedFrame means the
// tail of data is an incomplete frame; errCorruptFrame means a
// complete frame failed its CRC.
func decodeRecord(data []byte) (Record, int, error) {
	if len(data) < frameHeaderLen {
		return Record{}, 0, errTruncatedFrame
	}
	plen := binary.LittleEndian.Uint32(data)
	if plen == 0 || plen > maxPayloadLen {
		return Record{}, 0, errCorruptFrame
	}
	if len(data) < frameHeaderLen+int(plen) {
		return Record{}, 0, errTruncatedFrame
	}
	payload := data[frameHeaderLen : frameHeaderLen+int(plen)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:]) {
		return Record{}, 0, errCorruptFrame
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeaderLen + int(plen), nil
}

func decodePayload(p []byte) (Record, error) {
	rec := Record{Op: Op(p[0])}
	p = p[1:]
	var err error
	switch rec.Op {
	case OpInsert, OpDelete:
		if rec.Vertex, p, err = readUvarint(p); err != nil {
			return rec, err
		}
		if rec.Instance, p, err = readString(p); err != nil {
			return rec, err
		}
		if rec.SetKey, p, err = readString(p); err != nil {
			return rec, err
		}
		if rec.ObjectID, _, err = readString(p); err != nil {
			return rec, err
		}
	case OpHandoff:
		if rec.NewID, p, err = readUvarint(p); err != nil {
			return rec, err
		}
		if rec.OwnerID, _, err = readUvarint(p); err != nil {
			return rec, err
		}
	case OpClear:
	case OpMigrate:
		if len(p) < 1 {
			return rec, errCorruptFrame
		}
		flags := p[0]
		p = p[1:]
		rec.HasCursor = flags&migFlagCursor != 0
		rec.Done = flags&migFlagDone != 0
		if rec.NewID, p, err = readUvarint(p); err != nil {
			return rec, err
		}
		if rec.OwnerID, p, err = readUvarint(p); err != nil {
			return rec, err
		}
		if rec.Source, p, err = readString(p); err != nil {
			return rec, err
		}
		if rec.HasCursor {
			if rec.Vertex, p, err = readUvarint(p); err != nil {
				return rec, err
			}
			if rec.Instance, p, err = readString(p); err != nil {
				return rec, err
			}
			if rec.SetKey, p, err = readString(p); err != nil {
				return rec, err
			}
			if rec.ObjectID, _, err = readString(p); err != nil {
				return rec, err
			}
		}
	default:
		return rec, fmt.Errorf("%w: op %d", errCorruptFrame, rec.Op)
	}
	return rec, nil
}

func readUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errCorruptFrame
	}
	return v, p[n:], nil
}

func readString(p []byte) (string, []byte, error) {
	n, rest, err := readUvarint(p)
	if err != nil || uint64(len(rest)) < n {
		return "", nil, errCorruptFrame
	}
	return string(rest[:n]), rest[n:], nil
}

// readAll reads framed records from data, invoking apply for each, and
// returns how many were applied. A torn tail — the artifact of a crash
// mid-append — stops the scan with err == nil and validLen < len(data),
// so the caller keeps the prefix and truncates the rest. An
// undecodable frame that is NOT the file's final frame cannot be a
// torn write: valid frames follow it, so the bytes were once whole and
// have since rotted. That is surfaced as an error (wrapping
// errCorruptFrame) instead of silently dropping every record after it.
func readAll(data []byte, apply func(Record) error) (count int, validLen int, err error) {
	off := 0
	for off < len(data) {
		rec, n, derr := decodeRecord(data[off:])
		if derr != nil {
			if isTornTail(data, off) {
				return count, off, nil // keep the prefix, truncate the tail
			}
			// Intact frames follow the failure, so whatever derr says
			// (CRC mismatch, garbled length, bad op) this is corruption.
			return count, off, fmt.Errorf("%w at offset %d of %d", errCorruptFrame, off, len(data))
		}
		if aerr := apply(rec); aerr != nil {
			return count, off, aerr
		}
		off += n
		count++
	}
	return count, off, nil
}

// isTornTail reports whether the undecodable frame at off is a
// plausible torn tail rather than mid-file corruption. A crash
// mid-append tears only the physical end of the log, so the
// discriminator is whether anything intact follows the bad bytes: if
// a CRC-verified frame decodes at any later offset, the region was
// necessarily whole once and has since rotted — that is corruption
// and the caller must not silently drop the records after it. If
// nothing decodes after off, the bad bytes are the tail (whatever a
// partial write left of the final frame — short payload, garbled
// length field, torn CRC) and the prefix is the recovered state. The
// odds of garbage passing the CRC check are ~2⁻³², so a false
// corruption verdict is negligible, and a false torn-tail verdict
// would at worst drop bytes that no longer frame any record.
func isTornTail(data []byte, off int) bool {
	for cand := off + 1; cand+frameHeaderLen <= len(data); cand++ {
		if _, _, err := decodeRecord(data[cand:]); err == nil {
			return false
		}
	}
	return true
}

// writeFrames encodes records through emit into w (snapshot writing).
type frameWriter struct {
	w   io.Writer
	buf []byte
	err error
}

func (fw *frameWriter) emit(rec Record) error {
	if fw.err != nil {
		return fw.err
	}
	fw.buf = appendRecord(fw.buf[:0], rec)
	_, fw.err = fw.w.Write(fw.buf)
	return fw.err
}
