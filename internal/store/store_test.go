package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

// tableModel is a reference in-memory application of record sequences:
// a set of entry tuples, keyed by their full coordinates.
type tableModel map[string]bool

func entryKey(r Record) string {
	return fmt.Sprintf("%s\x00%d\x00%s\x00%s", r.Instance, r.Vertex, r.SetKey, r.ObjectID)
}

func (m tableModel) apply(r Record) error {
	switch r.Op {
	case OpInsert:
		m[entryKey(r)] = true
	case OpDelete:
		delete(m, entryKey(r))
	case OpClear:
		for k := range m {
			delete(m, k)
		}
	}
	return nil
}

func (m tableModel) sorted() []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func openTest(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	cfg.Dir = dir
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func rec(op Op, v uint64, set, id string) Record {
	return Record{Op: op, Instance: "main", Vertex: v, SetKey: set, ObjectID: id}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		rec(OpInsert, 42, "a b", "obj-1"),
		rec(OpDelete, 1<<40, "x", "obj-2"),
		{Op: OpHandoff, NewID: 7, OwnerID: 1<<63 + 5},
		{Op: OpClear},
		rec(OpInsert, 0, "", ""),
		// Migration checkpoints: a fresh start (no cursor), a mid-range
		// checkpoint (cursor = last entry applied), and a retirement.
		{Op: OpMigrate, NewID: 9, OwnerID: 1 << 62, Source: "peer-7"},
		{Op: OpMigrate, NewID: 9, OwnerID: 1 << 62, Source: "10.0.0.1:4000",
			HasCursor: true, Instance: "main", Vertex: 77, SetKey: "a b c", ObjectID: "obj-9"},
		{Op: OpMigrate, NewID: 9, OwnerID: 1 << 62, Source: "peer-7", Done: true},
		{Op: OpMigrate, NewID: 0, OwnerID: 0, Source: "",
			HasCursor: true, Done: true},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	var got []Record
	n, validLen, err := readAll(buf, func(r Record) error { got = append(got, r); return nil })
	if err != nil || n != len(recs) || validLen != len(buf) {
		t.Fatalf("readAll = (%d, %d, %v), want (%d, %d, nil)", n, validLen, err, len(recs), len(buf))
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

// TestMigrateRecordTruncated: an OpMigrate frame cut off mid-payload is
// recognized as a torn tail, not silently decoded as a shorter record.
func TestMigrateRecordTruncated(t *testing.T) {
	full := appendRecord(nil, Record{
		Op: OpMigrate, NewID: 12, OwnerID: 99, Source: "peer-3",
		HasCursor: true, Instance: "main", Vertex: 5, SetKey: "k", ObjectID: "o",
	})
	for cut := 1; cut < len(full); cut++ {
		n, validLen, err := readAll(full[:cut], func(Record) error { return nil })
		if err != nil || n != 0 || validLen != 0 {
			t.Fatalf("cut=%d: readAll = (%d, %d, %v), want torn tail (0, 0, nil)", cut, n, validLen, err)
		}
	}
}

func TestRecoverReplaysAppends(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{Fsync: FsyncOff})
	want := tableModel{}
	for i := 0; i < 100; i++ {
		r := rec(OpInsert, uint64(i%8), "k", fmt.Sprintf("o%d", i))
		if i%3 == 0 {
			r.Op = OpDelete
		}
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
		want.apply(r)
	}
	// Recover from the same open store (in-process recovery: the chaos
	// harness's crash→recover transition) must see all appends even
	// though nothing was fsynced.
	got := tableModel{}
	n, err := s.Recover(got.apply)
	if err != nil || n != 100 {
		t.Fatalf("Recover = (%d, %v), want (100, nil)", n, err)
	}
	if !reflect.DeepEqual(got.sorted(), want.sorted()) {
		t.Fatalf("in-process recovery mismatch")
	}
	// And again from a fresh store over the same dir (process restart).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Config{Fsync: FsyncAlways})
	got2 := tableModel{}
	if _, err := s2.Recover(got2.apply); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2.sorted(), want.sorted()) {
		t.Fatalf("restart recovery mismatch")
	}
}

func TestSnapshotCompactionTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{Fsync: FsyncOff, SnapshotEvery: 10})
	model := tableModel{}
	due := false
	for i := 0; i < 10; i++ {
		r := rec(OpInsert, 3, "k", fmt.Sprintf("o%d", i))
		model.apply(r)
		var err error
		if due, err = s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if !due {
		t.Fatal("snapshot not due after SnapshotEvery appends")
	}
	if err := s.WriteSnapshot(func(emit func(Record) error) error {
		for k := range model {
			if err := emit(parseEntryKey(k)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL not truncated after snapshot: %v, size %d", err, fi.Size())
	}
	if s.SnapshotDue() {
		t.Fatal("snapshot still due right after compaction")
	}
	// Post-snapshot appends land in the WAL tail; recovery = snapshot +
	// tail.
	tail := rec(OpInsert, 4, "k2", "extra")
	model.apply(tail)
	if _, err := s.Append(tail); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Config{})
	got := tableModel{}
	if _, err := s2.Recover(got.apply); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.sorted(), model.sorted()) {
		t.Fatalf("post-compaction recovery mismatch:\n got %v\nwant %v", got.sorted(), model.sorted())
	}
}

// parseEntryKey inverts entryKey so tests can re-emit a model entry as
// an insert record.
func parseEntryKey(k string) Record {
	fields := strings.Split(k, "\x00")
	var v uint64
	fmt.Sscanf(fields[1], "%d", &v)
	return Record{Op: OpInsert, Instance: fields[0], Vertex: v, SetKey: fields[2], ObjectID: fields[3]}
}

// TestStaleWALOnTopOfSnapshotConverges exercises the compaction crash
// window: the snapshot rename landed but the WAL truncation did not.
// Recovery replays the full stale WAL on top of the snapshot and must
// converge to the same state by record idempotency.
func TestStaleWALOnTopOfSnapshotConverges(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{Fsync: FsyncOff})
	model := tableModel{}
	seq := []Record{
		rec(OpInsert, 1, "a", "o1"),
		rec(OpInsert, 2, "b", "o2"),
		rec(OpDelete, 1, "a", "o1"),
		rec(OpInsert, 1, "a", "o3"),
	}
	for _, r := range seq {
		model.apply(r)
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Write the snapshot by hand WITHOUT truncating the WAL, simulating
	// the crash between rename and truncate.
	var snap []byte
	for k := range model {
		snap = appendRecord(snap, parseEntryKey(k))
	}
	if err := os.WriteFile(filepath.Join(dir, snapName), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Config{})
	got := tableModel{}
	n, err := s2.Recover(got.apply)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(model)+len(seq) {
		t.Fatalf("replayed %d records, want snapshot %d + WAL %d", n, len(model), len(seq))
	}
	if !reflect.DeepEqual(got.sorted(), model.sorted()) {
		t.Fatalf("stale-WAL recovery diverged:\n got %v\nwant %v", got.sorted(), model.sorted())
	}
}

// TestRecoveryEquivalenceProperty is the satellite property test: any
// insert/delete sequence, crashed at any byte offset of the WAL,
// recovers to exactly the state reached by replaying the record prefix
// that survived the cut.
func TestRecoveryEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		s := openTest(t, dir, Config{Fsync: FsyncOff})
		const n = 120
		recs := make([]Record, n)
		ends := make([]int64, n) // byte offset of each record's frame end
		for i := range recs {
			op := OpInsert
			if rng.Intn(3) == 0 {
				op = OpDelete
			}
			recs[i] = rec(op, uint64(rng.Intn(16)),
				fmt.Sprintf("k%d", rng.Intn(5)), fmt.Sprintf("o%d", rng.Intn(40)))
			if _, err := s.Append(recs[i]); err != nil {
				t.Fatal(err)
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			fi, err := os.Stat(filepath.Join(dir, walName))
			if err != nil {
				t.Fatal(err)
			}
			ends[i] = fi.Size()
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// Crash: truncate the WAL at a random byte offset.
		cut := int64(rng.Intn(int(ends[n-1]) + 1))
		if err := os.Truncate(filepath.Join(dir, walName), cut); err != nil {
			t.Fatal(err)
		}
		// The surviving prefix is every record whose frame fully fits.
		want := tableModel{}
		survivors := 0
		for i, end := range ends {
			if end <= cut {
				want.apply(recs[i])
				survivors++
			}
		}

		s2 := openTest(t, dir, Config{})
		got := tableModel{}
		replayed, err := s2.Recover(got.apply)
		if err != nil {
			t.Fatal(err)
		}
		if replayed != survivors {
			t.Fatalf("trial %d cut %d: replayed %d records, want %d", trial, cut, replayed, survivors)
		}
		if !reflect.DeepEqual(got.sorted(), want.sorted()) {
			t.Fatalf("trial %d cut %d: recovered state diverges from surviving prefix", trial, cut)
		}
		// The torn tail must also be gone for subsequent appends: the
		// reopened WAL ends exactly at the last whole frame.
		var lastWhole int64
		for i := range ends {
			if ends[i] <= cut {
				lastWhole = ends[i]
			}
		}
		if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != lastWhole {
			t.Fatalf("trial %d: torn tail not truncated: size %d, want %d", trial, fi.Size(), lastWhole)
		}
	}
}

// writeWAL populates a fresh store with n insert records and returns
// the WAL bytes for corruption experiments.
func writeWAL(t *testing.T, dir string, n int) []byte {
	t.Helper()
	s := openTest(t, dir, Config{Fsync: FsyncOff})
	for i := 0; i < n; i++ {
		if _, err := s.Append(rec(OpInsert, 1, "k", fmt.Sprintf("o%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCorruptMiddleFailsOpen: a CRC failure with valid frames after it
// cannot be a torn tail — the bytes were whole once and have rotted.
// That must surface as an error, not silently drop every record after
// the bad frame.
func TestCorruptMiddleFailsOpen(t *testing.T) {
	dir := t.TempDir()
	data := writeWAL(t, dir, 10)
	data[len(data)/2] ^= 0xff // flip one bit mid-log
	walPath := filepath.Join(dir, walName)
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("Open accepted a WAL with a corrupt middle frame")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Open error %q does not identify the corruption", err)
	}
}

// TestCorruptFinalFrameIsTornTail: a CRC failure in the file's last
// frame is indistinguishable from a torn sector write (header landed,
// payload did not), so it is treated like a short tail: truncated,
// with everything before it recovered.
func TestCorruptFinalFrameIsTornTail(t *testing.T) {
	dir := t.TempDir()
	data := writeWAL(t, dir, 5)
	data[len(data)-1] ^= 0xff // corrupt the final frame's payload
	walPath := filepath.Join(dir, walName)
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, Config{})
	got := tableModel{}
	n, err := s.Recover(got.apply)
	if err != nil || n != 4 {
		t.Fatalf("Recover = (%d, %v), want the 4 whole frames", n, err)
	}
	if fi, err := os.Stat(walPath); err != nil || fi.Size() >= int64(len(data)) {
		t.Fatalf("corrupt tail frame not truncated: size %d of %d", fi.Size(), len(data))
	}
}

// TestCorruptSnapshotFailsRecovery: the snapshot is fsynced whole
// before its rename, so it admits no torn tail — any malformed frame,
// truncated or corrupt, must fail recovery rather than silently load
// a partial table.
func TestCorruptSnapshotFailsRecovery(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"corrupt":   func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			var snap []byte
			for i := 0; i < 6; i++ {
				snap = appendRecord(snap, rec(OpInsert, 2, "k", fmt.Sprintf("o%d", i)))
			}
			if err := os.WriteFile(filepath.Join(dir, snapName), mangle(snap), 0o644); err != nil {
				t.Fatal(err)
			}
			s := openTest(t, dir, Config{})
			if _, err := s.Recover(tableModel{}.apply); err == nil {
				t.Fatal("Recover accepted a malformed snapshot")
			}
		})
	}
}

// TestRestartSeedsCompactionCounter: the appends-since-snapshot
// counter must survive restarts by seeding from the recovered WAL
// tail, or a node that restarts before filling SnapshotEvery fresh
// appends never compacts and the WAL grows without bound.
func TestRestartSeedsCompactionCounter(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{Fsync: FsyncOff, SnapshotEvery: 10})
	for i := 0; i < 6; i++ {
		if due, err := s.Append(rec(OpInsert, 1, "k", fmt.Sprintf("o%d", i))); err != nil || due {
			t.Fatalf("append %d: (%v, %v)", i, due, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Config{Fsync: FsyncOff, SnapshotEvery: 10})
	for i := 6; i < 9; i++ {
		if due, err := s2.Append(rec(OpInsert, 1, "k", fmt.Sprintf("o%d", i))); err != nil || due {
			t.Fatalf("append %d after restart: (%v, %v)", i, due, err)
		}
	}
	due, err := s2.Append(rec(OpInsert, 1, "k", "o9"))
	if err != nil {
		t.Fatal(err)
	}
	if !due {
		t.Fatal("10th lifetime append not due for compaction: recovered tail not counted")
	}
}

// TestOpenLocksDataDir: two stores over one directory would interleave
// appends into the same WAL; the second opener must fail fast instead.
func TestOpenLocksDataDir(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Config{})
	if second, err := Open(Config{Dir: dir}); err == nil {
		second.Close()
		t.Fatal("second Open of a locked data dir succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The lock dies with the owning descriptor: reopening after Close
	// (or a crash) needs no stale-lock cleanup.
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}

func TestFsyncPolicyParsingAndTelemetry(t *testing.T) {
	for spelling, want := range map[string]FsyncPolicy{
		"": FsyncInterval, "interval": FsyncInterval, "always": FsyncAlways, "off": FsyncOff,
	} {
		got, err := ParseFsyncPolicy(spelling)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = (%v, %v), want %v", spelling, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted an unknown spelling")
	}

	reg := telemetry.New(8)
	s := openTest(t, t.TempDir(), Config{Fsync: FsyncAlways, Telemetry: reg, SnapshotEvery: 2})
	if _, err := s.Append(rec(OpInsert, 1, "k", "o1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(rec(OpInsert, 1, "k", "o2")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(func(emit func(Record) error) error {
		return emit(rec(OpInsert, 1, "k", "o1"))
	}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("store_wal_appends_total").Value(); got != 2 {
		t.Errorf("store_wal_appends_total = %d, want 2", got)
	}
	if got := reg.Counter("store_wal_bytes_total").Value(); got == 0 {
		t.Error("store_wal_bytes_total = 0")
	}
	if got := reg.Counter("store_snapshots_total").Value(); got != 1 {
		t.Errorf("store_snapshots_total = %d, want 1", got)
	}
	got := tableModel{}
	if _, err := s.Recover(got.apply); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("store_recovery_replayed_total").Value() != 1 {
		t.Errorf("store_recovery_replayed_total = %d, want 1",
			reg.Counter("store_recovery_replayed_total").Value())
	}
}
