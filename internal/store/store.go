// Package store is the per-peer durability layer of the keysearch
// stack: an append-only write-ahead log of index mutations plus a
// periodic snapshot that truncates the log.
//
// The contract with the index server is append-before-apply: every
// table mutation appends its WAL record (sequenced by the store's
// internal ordered writer) before touching the sharded tables, so the
// log is always a superset of the applied state. Records are
// idempotent and replay converges (the last record touching an entry
// decides its presence), which makes recovery simple: load the
// snapshot, then replay the entire surviving WAL in order — even when
// a crash interrupted compaction between the snapshot rename and the
// log truncation.
//
// Appends are buffered in process memory and flushed to the OS
// according to the fsync policy: FsyncAlways flushes and fsyncs every
// append (power-loss durable), FsyncInterval group-commits on a
// background tick (bounded loss on power failure, no loss on process
// crash once flushed), FsyncOff flushes only on snapshot/close.
// Recover always flushes the buffer first, so in-process recovery
// (the chaos harness's crash→recover transition) observes every
// append regardless of policy.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncInterval (the default) group-commits: a background ticker
	// flushes and fsyncs the log every Config.FsyncInterval.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways flushes and fsyncs after every append.
	FsyncAlways
	// FsyncOff never fsyncs; the log reaches the OS only at snapshot,
	// recover and close boundaries (process-crash durable from the
	// moment of the flush, never power-loss durable).
	FsyncOff
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return "unknown"
	}
}

// ParseFsyncPolicy maps the CLI/config spelling to a policy. The empty
// string selects the default (interval).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "off":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval or off)", s)
	}
}

// Config parameterizes Open.
type Config struct {
	// Dir is the data directory (created if absent). One store owns the
	// directory exclusively; Open enforces this with an advisory lock
	// on the WAL file and fails fast on a second opener.
	Dir string
	// Fsync is the WAL fsync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the group-commit period for FsyncInterval
	// (default 100ms).
	FsyncEvery time.Duration
	// SnapshotEvery is the number of WAL appends between snapshot
	// compactions (default 16384; negative disables compaction).
	SnapshotEvery int
	// Telemetry receives the store_* instruments; nil disables them at
	// zero cost.
	Telemetry *telemetry.Registry
}

const (
	walName      = "wal.log"
	snapName     = "snapshot.snap"
	snapTmpName  = "snapshot.tmp"
	defaultEvery = 16384
	// maxBufferedBytes caps the in-process append buffer for the
	// non-always policies: past this the buffer is written to the OS
	// inline rather than waiting for the group-commit tick.
	maxBufferedBytes = 256 << 10
)

// Store is one peer's durability state: the open WAL plus the current
// snapshot. All methods are safe for concurrent use.
type Store struct {
	cfg Config

	mu        sync.Mutex // the ordered writer: sequences appends and snapshots
	wal       *os.File
	buf       []byte // pending appends not yet written to the OS
	dirty     bool   // bytes written to the OS since the last fsync
	appends   int    // appends since the last snapshot
	closed    bool
	stopFlush chan struct{}
	flushDone chan struct{}

	met storeMetrics
}

type storeMetrics struct {
	walAppends *telemetry.Counter   // store_wal_appends_total
	walBytes   *telemetry.Counter   // store_wal_bytes_total
	fsyncNS    *telemetry.Histogram // store_fsync_ns
	snapshotNS *telemetry.Histogram // store_snapshot_ns
	replayed   *telemetry.Counter   // store_recovery_replayed_total
	snapshots  *telemetry.Counter   // store_snapshots_total
}

func newStoreMetrics(reg *telemetry.Registry) storeMetrics {
	return storeMetrics{
		walAppends: reg.Counter("store_wal_appends_total"),
		walBytes:   reg.Counter("store_wal_bytes_total"),
		// fsync sits between a page-cache flush (~µs) and a disk barrier
		// (~ms); snapshot covers full-table dumps. Powers of 4 from 1µs.
		fsyncNS:    reg.Histogram("store_fsync_ns", telemetry.ExpBuckets(int64(time.Microsecond), 4, 10)),
		snapshotNS: reg.Histogram("store_snapshot_ns", telemetry.ExpBuckets(int64(100*time.Microsecond), 4, 10)),
		replayed:   reg.Counter("store_recovery_replayed_total"),
		snapshots:  reg.Counter("store_snapshots_total"),
	}
}

// Open creates or reopens the store rooted at cfg.Dir. A reopened
// store scans the WAL for a torn tail (a crash mid-append) and
// truncates it, so subsequent appends never follow garbage; a corrupt
// frame anywhere before the tail fails Open instead of silently
// recovering partial state. The WAL file carries an advisory lock for
// the store's lifetime, so a second opener of the same directory — a
// concurrent process or a second Server in this one — fails fast
// instead of interleaving appends into the same log. The lock dies
// with the process (flock semantics), so a SIGKILLed node restarts
// without stale-lockfile cleanup.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: Config.Dir is required")
	}
	if cfg.FsyncEvery <= 0 {
		cfg.FsyncEvery = 100 * time.Millisecond
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = defaultEvery
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	walPath := filepath.Join(cfg.Dir, walName)
	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open WAL: %w", err)
	}
	if err := lockFile(wal); err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: data dir %s is locked by another store: %w", cfg.Dir, err)
	}
	// Scan the surviving log: truncate a torn tail before positioning
	// the writer at the end, and count the tail's records so the
	// compaction threshold keeps accounting for appends across restarts
	// (otherwise a node that restarts faster than it fills SnapshotEvery
	// fresh appends never compacts and the WAL grows without bound).
	tailRecords := 0
	if data, err := os.ReadFile(walPath); err == nil {
		n, validLen, rerr := readAll(data, func(Record) error { return nil })
		if rerr != nil {
			wal.Close()
			return nil, fmt.Errorf("store: WAL %s: %w", walPath, rerr)
		}
		if validLen < len(data) {
			if err := os.Truncate(walPath, int64(validLen)); err != nil {
				wal.Close()
				return nil, fmt.Errorf("store: truncate torn WAL tail: %w", err)
			}
		}
		tailRecords = n
	}
	s := &Store{
		cfg:     cfg,
		wal:     wal,
		appends: tailRecords,
		met:     newStoreMetrics(cfg.Telemetry),
	}
	if cfg.Fsync == FsyncInterval {
		s.stopFlush = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flushLoop()
	}
	return s, nil
}

// Append logs one mutation. The record is durable against process
// crash once this returns under any policy that flushes (always), or
// after the next group-commit tick / recover / close otherwise. It
// returns true when enough appends have accumulated that the owner
// should run a snapshot compaction (see WriteSnapshot).
func (s *Store) Append(rec Record) (snapshotDue bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, fmt.Errorf("store: append on closed store")
	}
	start := len(s.buf)
	s.buf = appendRecord(s.buf, rec)
	frameLen := len(s.buf) - start
	s.appends++
	s.met.walAppends.Inc()
	s.met.walBytes.Add(uint64(frameLen))
	// FsyncAlways reaches stable storage per append; the other policies
	// still bound the in-process buffer so a burst between ticks cannot
	// grow it without limit.
	if s.cfg.Fsync == FsyncAlways {
		if err := s.flushLocked(); err != nil {
			return false, err
		}
		if err := s.syncLocked(); err != nil {
			return false, err
		}
	} else if len(s.buf) >= maxBufferedBytes {
		if err := s.flushLocked(); err != nil {
			return false, err
		}
	}
	return s.cfg.SnapshotEvery > 0 && s.appends >= s.cfg.SnapshotEvery, nil
}

// SnapshotDue reports whether the append count since the last snapshot
// has reached the compaction threshold.
func (s *Store) SnapshotDue() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.SnapshotEvery > 0 && s.appends >= s.cfg.SnapshotEvery
}

// flushLocked moves the append buffer to the OS. Callers hold s.mu.
func (s *Store) flushLocked() error {
	if len(s.buf) == 0 {
		return nil
	}
	if _, err := s.wal.Write(s.buf); err != nil {
		return fmt.Errorf("store: WAL write: %w", err)
	}
	s.buf = s.buf[:0]
	s.dirty = true
	return nil
}

// syncLocked fsyncs the WAL if it has unsynced bytes. Callers hold s.mu.
func (s *Store) syncLocked() error {
	if !s.dirty {
		return nil
	}
	start := time.Now()
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: WAL fsync: %w", err)
	}
	s.met.fsyncNS.Observe(time.Since(start).Nanoseconds())
	s.dirty = false
	return nil
}

// flushLoop is the FsyncInterval group-commit ticker.
func (s *Store) flushLoop() {
	defer close(s.flushDone)
	t := time.NewTicker(s.cfg.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				if err := s.flushLocked(); err == nil {
					_ = s.syncLocked()
				}
			}
			s.mu.Unlock()
		case <-s.stopFlush:
			return
		}
	}
}

// Sync forces pending appends to stable storage regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.syncLocked()
}

// Recover replays the durable state into apply: first every snapshot
// record, then every surviving WAL record, in order. It flushes the
// append buffer first so in-process recovery sees all prior appends.
// A torn WAL tail is skipped (the surviving prefix is the recovered
// state); a corrupt frame anywhere else — including any malformed
// snapshot frame, since the snapshot was fsynced whole before its
// rename and admits no torn tail — is an error, never a silent
// partial recovery. The replayed count is returned and added to
// store_recovery_replayed_total.
func (s *Store) Recover(apply func(Record) error) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return 0, err
	}
	total := 0
	if data, err := os.ReadFile(filepath.Join(s.cfg.Dir, snapName)); err == nil {
		n, validLen, aerr := readAll(data, apply)
		total += n
		if aerr != nil {
			return total, fmt.Errorf("store: snapshot replay: %w", aerr)
		}
		if validLen < len(data) {
			return total, fmt.Errorf("store: snapshot truncated at offset %d of %d", validLen, len(data))
		}
	} else if !os.IsNotExist(err) {
		return 0, fmt.Errorf("store: read snapshot: %w", err)
	}
	data, err := os.ReadFile(filepath.Join(s.cfg.Dir, walName))
	if err != nil && !os.IsNotExist(err) {
		return total, fmt.Errorf("store: read WAL: %w", err)
	}
	n, _, aerr := readAll(data, apply)
	total += n
	if aerr != nil {
		return total, fmt.Errorf("store: WAL replay: %w", aerr)
	}
	s.met.replayed.Add(uint64(total))
	return total, nil
}

// WriteSnapshot dumps the owner's full table state (dump must emit one
// OpInsert record per live entry) into a fresh snapshot and truncates
// the WAL. The owner must guarantee no Append runs concurrently and
// that the dump reflects every record appended so far — the index
// server holds its state fence exclusively across this call.
//
// Crash windows are all safe: the snapshot lands via tmp-file rename,
// and if the crash hits after the rename but before the truncation,
// recovery replays the stale WAL on top of the new snapshot — a no-op
// by record idempotency.
func (s *Store) WriteSnapshot(dump func(emit func(Record) error) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: snapshot on closed store")
	}
	start := time.Now()
	if err := s.flushLocked(); err != nil {
		return err
	}

	tmpPath := filepath.Join(s.cfg.Dir, snapTmpName)
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("store: snapshot tmp: %w", err)
	}
	fw := &frameWriter{w: tmp}
	dumpErr := dump(fw.emit)
	if dumpErr == nil {
		dumpErr = fw.err
	}
	if dumpErr != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: snapshot dump: %w", dumpErr)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.cfg.Dir, snapName)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	if err := syncDir(s.cfg.Dir); err != nil {
		return err
	}

	// The snapshot now covers every appended record; drop the log.
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: WAL truncate: %w", err)
	}
	s.dirty = true
	if err := s.syncLocked(); err != nil {
		return err
	}
	s.appends = 0
	s.met.snapshots.Inc()
	s.met.snapshotNS.Observe(time.Since(start).Nanoseconds())
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives power
// loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: dir sync: %w", err)
	}
	return nil
}

// Close flushes and fsyncs pending appends, stops the group-commit
// loop, and closes the WAL. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	flushErr := s.flushLocked()
	if flushErr == nil {
		flushErr = s.syncLocked()
	}
	closeErr := s.wal.Close()
	stop := s.stopFlush
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-s.flushDone
	}
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.cfg.Dir }
