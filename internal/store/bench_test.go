package store

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures the raw append path per fsync policy.
// fsync=always pays a disk flush per record; interval and off buffer in
// process and group-commit, which is what keeps the end-to-end indexing
// overhead inside the ≤10% budget (gated in internal/sim).
func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []FsyncPolicy{FsyncOff, FsyncInterval, FsyncAlways} {
		b.Run(pol.String(), func(b *testing.B) {
			s, err := Open(Config{Dir: b.TempDir(), Fsync: pol, SnapshotEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			r := Record{Op: OpInsert, Instance: "main", Vertex: 12345,
				SetKey: "alpha beta", ObjectID: "object-000000"}
			// Distinct IDs built outside the timed loop: formatting cost
			// would otherwise dominate the ~100ns buffered append.
			ids := make([]string, b.N)
			for i := range ids {
				ids[i] = fmt.Sprintf("object-%06d", i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.ObjectID = ids[i]
				if _, err := s.Append(r); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := s.Sync(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
