//go:build unix

package store

import (
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive advisory lock on f, held for
// the life of the file descriptor and released automatically when the
// process dies — so a SIGKILLed node's restart is never blocked by a
// stale lock, unlike an O_EXCL lock file. A second Open of the same
// directory (another process, or another Store in this one: flock is
// per open file description) fails immediately with EWOULDBLOCK.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
