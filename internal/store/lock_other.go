//go:build !unix

package store

import "os"

// lockFile is a no-op on platforms without flock: Config.Dir exclusive
// ownership is then the caller's responsibility, as before.
func lockFile(*os.File) error { return nil }
