package core

import (
	"sort"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// Refinement reuse (Lemma 3.3): a refined query K' ⊇ K searches a
// subcube of K's subcube, so the complete result set of an exhausted
// cached search for K already contains every match of K'. Instead of
// re-traversing, the root derives K''s answer from the cached
// ancestor: filter the ancestor's matches down to supersets of K',
// recompute each depth against the refined root, and re-sort into the
// exact order the refined traversal would have produced. The derived
// result is byte-identical to a live traversal — the zipf smoke test
// pins this against cache-off replays.
//
// Invalidation safety comes for free: the refinement store IS the
// result cache, so the same invalidateSubsetsOf events that keep plain
// cached entries honest keep refinement sources honest.

// maxRefineFree bounds the free dimensions of a refined root for which
// derivation builds the visit-rank table (2^free vertices are
// enumerated; beyond this a live traversal is cheaper than the table).
const maxRefineFree = 16

// deriveRefinement computes the complete, traversal-ordered result set
// of `query` rooted at rootV from the complete result set of a cached
// exhausted ancestor query. It returns ok=false when the subcube is
// too large to rank or a source match lies outside the refined
// geometry (which indicates a corrupt source and falls back to a live
// traversal).
func deriveRefinement(cube hypercube.Cube, order TraversalOrder, rootV hypercube.Vertex, query keyword.Set, source []Match) ([]Match, bool) {
	if cube.Dim()-rootV.OnesCount() > maxRefineFree {
		return nil, false
	}
	rank := visitRank(cube, order, rootV)

	// Filter to supersets of the refined query. SetKey parsing is
	// memoized per distinct keyword set — popular corpora repeat sets
	// heavily inside one result list.
	type verdict struct{ keep bool }
	seen := make(map[string]verdict)
	derived := make([]Match, 0, len(source))
	for _, m := range source {
		v, ok := seen[m.SetKey]
		if !ok {
			v = verdict{keep: query.SubsetOf(keyword.ParseKey(m.SetKey))}
			seen[m.SetKey] = v
		}
		if !v.keep {
			continue
		}
		if _, ok := rank[hypercube.Vertex(m.Vertex)]; !ok {
			return nil, false
		}
		m.Depth = hypercube.Hamming(rootV, hypercube.Vertex(m.Vertex))
		derived = append(derived, m)
	}
	// Stable sort by visit rank: matches within one vertex keep the
	// ancestor's relative order, which is already the deterministic
	// (SetKey, ObjectID) scan order every vertex produces.
	sort.SliceStable(derived, func(i, j int) bool {
		return rank[hypercube.Vertex(derived[i].Vertex)] < rank[hypercube.Vertex(derived[j].Vertex)]
	})
	return derived, true
}

// runRefine answers an explicit client refinement request (msgTQuery
// with RefineFromKey set): the client completed — or knows another
// client completed — a search for an ancestor query on this node and
// asks for the refined query's answer to be derived from the cached
// ancestor state instead of traversed. This node owns the ANCESTOR
// root; msg.Vertex carries the refined root F_h(K'), which it
// typically does not own — derivation is pure geometry, so ownership
// of the refined root is irrelevant. Unusable state (nothing cached,
// nothing exhausted, subcube too large) answers errCodeNoRefineState
// and the client falls back to a plain search; no counters beyond the
// refine pair move, so the Fig-9 cache accounting never sees these
// requests.
func (s *Server) runRefine(msg msgTQuery) respTQuery {
	refined := keyword.ParseKey(msg.QueryKey)
	if refined.IsEmpty() || msg.Threshold <= 0 {
		return respTQuery{ErrCode: errCodeNoRefineState}
	}
	order := msg.Order
	if order == 0 {
		order = TopDown
	}
	if !order.valid() {
		return respTQuery{ErrCode: errCodeNoRefineState}
	}
	cube, err := s.cubeFor(msg.Dim)
	if err != nil {
		return respTQuery{ErrCode: errCodeNoRefineState}
	}
	rootV := hypercube.Vertex(msg.Vertex)
	src, ok := s.cache.refineSource(msg.Instance, refined)
	if !ok {
		s.met.refineMiss.Inc()
		return respTQuery{ErrCode: errCodeNoRefineState}
	}
	derived, ok := deriveRefinement(cube, order, rootV, refined, src)
	if !ok {
		s.met.refineMiss.Inc()
		return respTQuery{ErrCode: errCodeNoRefineState}
	}
	s.met.refineHits.Inc()
	if !msg.NoCache {
		// The derived result is complete: cache it under the refined
		// key so later plain searches (and further refinements) hit.
		s.cache.put(msg.Instance, supersetPred(msg.QueryKey, refined), derived, true)
	}
	matches, exhausted, _ := truncateCached(derived, true, msg.Threshold)
	return respTQuery{Matches: matches, Exhausted: exhausted, RefineHit: true}
}

// visitRank maps every vertex of rootV's induced subcube to its
// position in the traversal's visit order: the SBT breadth-first
// expansion for TopDown/ParallelLevels (expandFrontier is the same
// code path the mega-wave uses), deepest-level-first for BottomUp.
func visitRank(cube hypercube.Cube, order TraversalOrder, rootV hypercube.Vertex) map[hypercube.Vertex]int {
	rank := make(map[hypercube.Vertex]int, cube.SubcubeSize(rootV))
	if order == BottomUp {
		levels := cube.InducedLevels(rootV)
		for d := len(levels) - 1; d >= 0; d-- {
			for _, v := range levels[d] {
				rank[v] = len(rank)
			}
		}
		return rank
	}
	units := expandFrontier(cube, rootV, []workUnit{{vertex: rootV, genDim: cube.Dim()}}, 0)
	for _, u := range units {
		rank[u.vertex] = len(rank)
	}
	return rank
}
