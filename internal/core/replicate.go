package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Replicated implements the index-replication remark of Section 3.4:
// "replication can be done … by building a secondary hypercube". Each
// replica is an independent index instance — its own hash seed and its
// own vertex→node mapping — so the node responsible for a keyword set
// differs across replicas and no single node failure can silence a
// query. Writes fan out to every replica; reads go to the primary and
// fail over to the next replica when the primary's responsible node is
// unreachable.
type Replicated struct {
	clients []*Client // clients[0] is the primary

	// Pre-resolved instruments (nil without telemetry; see SetTelemetry).
	writes        *telemetry.Counter // core_replica_writes_total
	writeFailures *telemetry.Counter // core_replica_write_failures_total
	reads         *telemetry.Counter // core_replica_reads_total
	failovers     *telemetry.Counter // core_replica_failovers_total
}

// NewReplicated builds a replicated index over the given per-instance
// clients. At least one client is required; instances must be
// distinct, and for failure independence each client should use a
// different hash seed and resolver salt.
func NewReplicated(clients ...*Client) (*Replicated, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("core: replicated index needs at least one client")
	}
	seen := make(map[string]bool, len(clients))
	for i, c := range clients {
		if c == nil {
			return nil, fmt.Errorf("core: replica %d is nil", i)
		}
		if seen[c.Instance()] {
			return nil, fmt.Errorf("core: duplicate replica instance %q", c.Instance())
		}
		seen[c.Instance()] = true
	}
	return &Replicated{clients: clients}, nil
}

// SetTelemetry wires the replicated index's fan-out accounting into
// reg: writes attempted and failed per replica, reads issued, and
// read failovers past an unusable replica. Call before serving
// traffic; a nil registry leaves the instrumentation disabled.
func (r *Replicated) SetTelemetry(reg *telemetry.Registry) {
	r.writes = reg.Counter("core_replica_writes_total")
	r.writeFailures = reg.Counter("core_replica_write_failures_total")
	r.reads = reg.Counter("core_replica_reads_total")
	r.failovers = reg.Counter("core_replica_failovers_total")
	reg.Gauge("core_replica_fanout").Set(int64(len(r.clients)))
}

// Fanout returns the number of replicas.
func (r *Replicated) Fanout() int { return len(r.clients) }

// Primary returns the primary replica's client (e.g. for cumulative
// cursors, which are pinned to one responsible node).
func (r *Replicated) Primary() *Client { return r.clients[0] }

// Replica returns the i-th replica's client (0 = primary).
func (r *Replicated) Replica(i int) *Client {
	if i < 0 || i >= len(r.clients) {
		return nil
	}
	return r.clients[i]
}

// Insert places the object's index entry in every replica. The cost is
// one message per replica — the storage/consistency price of fault
// tolerance the paper notes. Partial failures are reported after all
// replicas have been attempted; the entry is present in the replicas
// that succeeded.
func (r *Replicated) Insert(ctx context.Context, obj Object) (Stats, error) {
	var (
		total    Stats
		firstErr error
	)
	for _, c := range r.clients {
		r.writes.Inc()
		st, err := c.Insert(ctx, obj)
		if err != nil {
			r.writeFailures.Inc()
			if firstErr == nil {
				firstErr = fmt.Errorf("replica %q: %w", c.Instance(), err)
			}
			continue
		}
		total.Add(st)
	}
	return total, firstErr
}

// Delete removes the object's entry from every replica. found reports
// whether any replica held it.
func (r *Replicated) Delete(ctx context.Context, obj Object) (bool, Stats, error) {
	var (
		total    Stats
		found    bool
		firstErr error
	)
	for _, c := range r.clients {
		r.writes.Inc()
		ok, st, err := c.Delete(ctx, obj)
		if err != nil {
			r.writeFailures.Inc()
			if firstErr == nil {
				firstErr = fmt.Errorf("replica %q: %w", c.Instance(), err)
			}
			continue
		}
		found = found || ok
		total.Add(st)
	}
	return found, total, firstErr
}

// failover reports whether the error warrants trying the next replica:
// transport-level unreachability (including a breaker-open rejection,
// which wraps ErrUnreachable), a timed-out attempt, or an ownership
// misroute — the replica's vertex re-homed and routing has not settled
// (ErrNotOwner), which is a fault of this replica's topology, not of
// the query. Any other application error from a healthy node — an
// ErrRemote or a protocol sentinel — would fail identically on every
// replica and surfaces immediately instead.
func failover(err error) bool {
	if errors.Is(err, transport.ErrUnreachable) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrNotOwner) {
		return true
	}
	// Remote handler errors cross the wire flattened to text (both
	// transports), so the ownership sentinel is recovered by message.
	return errors.Is(err, transport.ErrRemote) && strings.Contains(err.Error(), ErrNotOwner.Error())
}

// betterResult ranks replica answers for completeness-aware selection:
// any matches beat none, then the more complete wave, then the larger
// answer.
func betterResult(a, b Result) bool {
	if (len(a.Matches) > 0) != (len(b.Matches) > 0) {
		return len(a.Matches) > 0
	}
	if a.Completeness != b.Completeness {
		return a.Completeness > b.Completeness
	}
	return len(a.Matches) > len(b.Matches)
}

// PinSearch queries the replicas in order and returns the first
// non-empty answer. Trying the next replica on an empty answer (not
// only on unreachability) covers the surrogate-remap case: after a
// node crash the healed ring routes the vertex to a fresh node whose
// table is empty, so the primary "succeeds" with no results even
// though a replica still holds the entry.
func (r *Replicated) PinSearch(ctx context.Context, k keyword.Set) ([]string, Stats, error) {
	var (
		lastErr  error
		empty    []string
		emptySt  Stats
		answered bool
	)
	for i, c := range r.clients {
		if i > 0 {
			r.failovers.Inc()
		}
		r.reads.Inc()
		ids, st, err := c.PinSearch(ctx, k)
		if err == nil {
			if len(ids) > 0 {
				return ids, st, nil
			}
			if !answered {
				empty, emptySt, answered = ids, st, true
			}
			continue
		}
		if !failover(err) {
			return nil, Stats{}, err
		}
		lastErr = err
	}
	if answered {
		return empty, emptySt, nil
	}
	return nil, Stats{}, fmt.Errorf("all %d replicas failed: %w", len(r.clients), lastErr)
}

// SupersetSearch queries the primary replica and returns its answer
// when it is conclusive: non-empty and complete (every vertex of the
// wave answered). Otherwise the next replicas are consulted — an
// unreachable root, an empty answer (the surrogate-remap case: after a
// crash the healed ring routes the vertex to a fresh node with an
// empty table, so the primary "succeeds" with nothing even though a
// replica still holds the entry) and a degraded wave all fall through
// — and the best answer wins: matches over none, then the more
// complete wave, then the larger answer. A degraded result keeps its
// Completeness < 1 so callers can tell it apart from an exact one.
func (r *Replicated) SupersetSearch(ctx context.Context, k keyword.Set, threshold int, opts SearchOptions) (Result, error) {
	var (
		lastErr  error
		best     Result
		answered bool
	)
	for i, c := range r.clients {
		if i > 0 {
			r.failovers.Inc()
		}
		r.reads.Inc()
		res, err := c.SupersetSearch(ctx, k, threshold, opts)
		if err == nil {
			if len(res.Matches) > 0 && res.Completeness >= 1 {
				return res, nil
			}
			if !answered || betterResult(res, best) {
				best, answered = res, true
			}
			continue
		}
		if !failover(err) {
			return Result{}, err
		}
		lastErr = err
	}
	if answered {
		return best, nil
	}
	return Result{}, fmt.Errorf("all %d replicas failed: %w", len(r.clients), lastErr)
}

// PrefixSearch queries the primary replica's prefix multicast and
// fails over exactly like SupersetSearch: a conclusive answer
// (non-empty and complete) returns immediately, anything weaker lets
// the remaining replicas compete and the best answer wins.
func (r *Replicated) PrefixSearch(ctx context.Context, prefix string, threshold int, opts SearchOptions) (Result, error) {
	var (
		lastErr  error
		best     Result
		answered bool
	)
	for i, c := range r.clients {
		if i > 0 {
			r.failovers.Inc()
		}
		r.reads.Inc()
		res, err := c.PrefixSearch(ctx, prefix, threshold, opts)
		if err == nil {
			if len(res.Matches) > 0 && res.Completeness >= 1 {
				return res, nil
			}
			if !answered || betterResult(res, best) {
				best, answered = res, true
			}
			continue
		}
		if !failover(err) {
			return Result{}, err
		}
		lastErr = err
	}
	if answered {
		return best, nil
	}
	return Result{}, fmt.Errorf("all %d replicas failed: %w", len(r.clients), lastErr)
}
