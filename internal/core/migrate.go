package core

// Live-churn migration: when ring ownership changes (join, leave,
// stabilization repair), the index entries of the re-homed range move
// from the old owner to the new one through a chunked, cursor-paged,
// crash-safe pull protocol with a double-read correctness window:
//
//	enqueue ─▶ pull chunks (resumable cursor, WAL-checkpointed)
//	        ─▶ commit (old owner drops the range) ─▶ window closes
//
// Until commit the old owner keeps serving the range, and every read
// the new owner serves for an in-flight vertex merges its local table
// with the old owner's (relayed, ownership-check-free) answer — so pin
// and superset results are byte-identical to a static fleet throughout
// the transfer. Deletes during the window leave tombstones so a chunk
// arriving later cannot resurrect them; inserts clear matching
// tombstones. Each applied chunk is followed by an OpMigrate WAL
// checkpoint, so a crash mid-transfer resumes from the durable cursor
// (re-pulling at most one chunk — inserts are idempotent) instead of
// restarting or losing entries. See DESIGN §11.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/store"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Migration protocol defaults.
const (
	defaultChunkEntries = 512
	defaultChunkBytes   = 256 << 10
	defaultChunkTimeout = 5 * time.Second
	defaultMaxAttempts  = 8
	defaultRetryBackoff = 50 * time.Millisecond
	maxRetryBackoff     = 2 * time.Second
)

// MigrationConfig tunes the background migration manager. The zero
// value selects the defaults above.
type MigrationConfig struct {
	// ChunkEntries caps the entries per pulled chunk.
	ChunkEntries int
	// ChunkBytes caps the approximate payload bytes per pulled chunk.
	ChunkBytes int
	// Throttle pauses between chunks, bounding the transfer's bandwidth
	// and lock footprint (0 = pull back to back).
	Throttle time.Duration
	// ChunkTimeout is the per-chunk (and per-commit) RPC deadline,
	// propagated on the wire via DeadlineUnixNano.
	ChunkTimeout time.Duration
	// MaxAttempts bounds retries per chunk/commit before the migration
	// aborts (the source is presumed gone).
	MaxAttempts int
	// RetryBackoff is the base inter-attempt backoff, doubled per
	// attempt up to 2s.
	RetryBackoff time.Duration
}

func (c MigrationConfig) withDefaults() MigrationConfig {
	if c.ChunkEntries <= 0 {
		c.ChunkEntries = defaultChunkEntries
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = defaultChunkBytes
	}
	if c.ChunkTimeout <= 0 {
		c.ChunkTimeout = defaultChunkTimeout
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = defaultMaxAttempts
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = defaultRetryBackoff
	}
	return c
}

// MigrationStats summarizes the manager's lifetime counters (also
// exported as migrate_* telemetry when a registry is configured).
type MigrationStats struct {
	Active      int    // migrations currently pulling
	Recovered   int    // durable cursors recovered but not yet resumed
	Chunks      uint64 // chunks applied
	Entries     uint64 // entries applied
	Bytes       uint64 // approximate bytes transferred
	Resumes     uint64 // migrations resumed from a durable cursor
	DoubleReads uint64 // reads relayed to an old owner mid-window
	Commits     uint64 // migrations committed (old owner dropped range)
	Failures    uint64 // migrations aborted (source unreachable, etc.)
}

// migKey identifies one migration: the range bounds the puller asks
// with (keys NOT in (newID, ownerID] move) and the source address.
type migKey struct {
	newID   uint64
	ownerID uint64
	source  transport.Addr
}

// migration is one in-flight inbound transfer.
type migration struct {
	key     migKey
	cursor  wireCursor
	resumed bool
	done    chan struct{}
}

type migrateMetrics struct {
	chunks      *telemetry.Counter
	entries     *telemetry.Counter
	bytes       *telemetry.Counter
	resumes     *telemetry.Counter
	doubleReads *telemetry.Counter
	commits     *telemetry.Counter
	failures    *telemetry.Counter
}

// migrationManager owns the server's inbound migrations: the worker
// per active transfer, the recovered-cursor set awaiting resume, and
// the window state (in-flight ranges + delete tombstones) the read and
// mutation paths consult.
type migrationManager struct {
	s   *Server
	cfg MigrationConfig
	met migrateMetrics

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	active    map[migKey]*migration
	recovered map[migKey]wireCursor
	closed    bool
	wg        sync.WaitGroup

	// windowCount is |active| + |recovered|: the number of open
	// double-read windows. Hot read paths gate on this single atomic,
	// so a fleet with no churn pays one load per scan.
	windowCount atomic.Int32
	activeCount atomic.Int32

	// tombs records entries deleted while a window is open, so a chunk
	// (or relayed read) arriving later cannot resurrect them. Global
	// across windows: an over-approximate tombstone is harmless (the
	// entry is authoritatively deleted either way) and the set clears
	// when the last window closes. Lock order: tombMu is innermost —
	// taken under shard locks (note*) and under stateMu.W (dumpState).
	tombMu sync.RWMutex
	tombs  map[BulkEntry]struct{}

	nChunks      atomic.Uint64
	nEntries     atomic.Uint64
	nBytes       atomic.Uint64
	nResumes     atomic.Uint64
	nDoubleReads atomic.Uint64
	nCommits     atomic.Uint64
	nFailures    atomic.Uint64
}

func newMigrationManager(s *Server, cfg MigrationConfig, reg *telemetry.Registry) *migrationManager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &migrationManager{
		s:         s,
		cfg:       cfg.withDefaults(),
		ctx:       ctx,
		cancel:    cancel,
		active:    make(map[migKey]*migration),
		recovered: make(map[migKey]wireCursor),
		tombs:     make(map[BulkEntry]struct{}),
		met: migrateMetrics{
			chunks:      reg.Counter("migrate_chunks_total"),
			entries:     reg.Counter("migrate_entries_total"),
			bytes:       reg.Counter("migrate_bytes_total"),
			resumes:     reg.Counter("migrate_resumes_total"),
			doubleReads: reg.Counter("migrate_double_reads_total"),
			commits:     reg.Counter("migrate_commits_total"),
			failures:    reg.Counter("migrate_failures_total"),
		},
	}
	if reg != nil {
		reg.GaugeFunc("migrate_active", func() int64 { return int64(m.activeCount.Load()) })
	}
	return m
}

// EnqueueMigration schedules a background pull of the index entries
// this node now owns — those whose vertex key is NOT in (newID,
// ownerID] — from source, the old owner, which keeps serving them
// until the migration commits. Duplicate enqueues for an in-flight
// range are no-ops, so join-time and stabilization-driven triggers may
// overlap freely. If a durable cursor for the range was recovered from
// the WAL, the pull resumes from it instead of restarting.
func (s *Server) EnqueueMigration(source transport.Addr, newID, ownerID uint64) {
	if s.migrate == nil || source == "" {
		return
	}
	s.migrate.enqueue(migKey{newID: newID, ownerID: ownerID, source: source})
}

// ResumeMigrations re-enqueues every migration whose durable cursor
// was recovered from the data directory — the crash-restart path.
// Call it once the transport is serving (the sources will be dialed).
func (s *Server) ResumeMigrations() int {
	if s.migrate == nil {
		return 0
	}
	return s.migrate.resumeRecovered()
}

// MigrationStats reports the manager's counters.
func (s *Server) MigrationStats() MigrationStats {
	m := s.migrate
	if m == nil {
		return MigrationStats{}
	}
	m.mu.Lock()
	active, recovered := len(m.active), len(m.recovered)
	m.mu.Unlock()
	return MigrationStats{
		Active:      active,
		Recovered:   recovered,
		Chunks:      m.nChunks.Load(),
		Entries:     m.nEntries.Load(),
		Bytes:       m.nBytes.Load(),
		Resumes:     m.nResumes.Load(),
		DoubleReads: m.nDoubleReads.Load(),
		Commits:     m.nCommits.Load(),
		Failures:    m.nFailures.Load(),
	}
}

// WaitMigrationsIdle blocks until no migration is actively pulling (or
// ctx expires). Recovered-but-unresumed cursors do not count: they
// only run after ResumeMigrations.
func (s *Server) WaitMigrationsIdle(ctx context.Context) error {
	if s.migrate == nil {
		return nil
	}
	for {
		s.migrate.mu.Lock()
		var w *migration
		for _, mig := range s.migrate.active {
			w = mig
			break
		}
		s.migrate.mu.Unlock()
		if w == nil {
			return nil
		}
		select {
		case <-w.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (m *migrationManager) enqueue(key migKey) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if _, dup := m.active[key]; dup {
		m.mu.Unlock()
		return
	}
	mig := &migration{key: key, done: make(chan struct{})}
	if cur, ok := m.recovered[key]; ok {
		mig.cursor = cur
		mig.resumed = true
		delete(m.recovered, key) // recovered → active: windowCount unchanged
	} else {
		m.windowCount.Add(1)
	}
	m.active[key] = mig
	m.activeCount.Add(1)
	m.wg.Add(1)
	m.mu.Unlock()

	if mig.resumed {
		m.nResumes.Add(1)
		m.met.resumes.Inc()
	}
	// Durable start (or resume) marker: replay re-opens the window
	// after a crash, which is what makes tombstones recoverable — an
	// OpDelete replayed after this record re-tombstones.
	m.logRecord(key, mig.cursor, false)
	go m.run(mig)
}

func (m *migrationManager) resumeRecovered() int {
	m.mu.Lock()
	keys := make([]migKey, 0, len(m.recovered))
	for k := range m.recovered {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	for _, k := range keys {
		m.enqueue(k)
	}
	return len(keys)
}

// run is one migration's worker: pull chunks from the durable cursor,
// apply them through the WAL, checkpoint, commit, retire.
func (m *migrationManager) run(mig *migration) {
	defer m.wg.Done()
	defer close(mig.done)
	defer m.remove(mig)
	cursor := mig.cursor
	for {
		resp, err := m.pullChunk(mig.key, cursor)
		if err != nil {
			m.abort(mig, err)
			return
		}
		for _, e := range resp.Entries {
			if err := m.s.insertMigrated(e); err != nil {
				m.abort(mig, err)
				return
			}
		}
		if len(resp.Entries) > 0 {
			cursor = resp.Cursor
			m.mu.Lock()
			mig.cursor = cursor // snapshot dumps read it under mu
			m.mu.Unlock()
			m.nChunks.Add(1)
			m.met.chunks.Inc()
			m.nEntries.Add(uint64(len(resp.Entries)))
			m.met.entries.Add(uint64(len(resp.Entries)))
			b := chunkBytes(resp.Entries)
			m.nBytes.Add(b)
			m.met.bytes.Add(b)
			// Durable checkpoint AFTER the chunk's OpInserts: a crash
			// between apply and checkpoint re-pulls one chunk, and the
			// idempotent inserts make the overlap harmless.
			m.logRecord(mig.key, cursor, false)
		}
		if resp.Done {
			break
		}
		if m.cfg.Throttle > 0 {
			select {
			case <-m.ctx.Done():
				return // shutdown: cursor stays un-done, restart resumes
			case <-time.After(m.cfg.Throttle):
			}
		} else if m.ctx.Err() != nil {
			return
		}
	}
	if err := m.commit(mig.key); err != nil {
		m.abort(mig, err)
		return
	}
	m.nCommits.Add(1)
	m.met.commits.Inc()
	// Retire the durable cursor: a restart must not re-pull a range
	// the source has already dropped.
	m.logRecord(mig.key, wireCursor{}, true)
}

// abort retires a migration that cannot make progress (source
// unreachable past MaxAttempts, a WAL append failure). Entries already
// applied stay — they are valid copies — and the durable cursor is
// marked done so a restart does not spin against a dead source.
// Shutdown is not an abort: the cursor stays resumable.
func (m *migrationManager) abort(mig *migration, err error) {
	if m.ctx.Err() != nil {
		return
	}
	_ = err
	m.nFailures.Add(1)
	m.met.failures.Inc()
	m.logRecord(mig.key, wireCursor{}, true)
}

// remove closes the migration's window: flush tombstones (a chunk that
// raced a delete may have left the entry present-but-tombstoned; once
// the window count drops the read paths stop filtering, so the entry
// must be physically deleted first), then drop the window.
func (m *migrationManager) remove(mig *migration) {
	m.flushTombstones()
	m.mu.Lock()
	delete(m.active, mig.key)
	m.activeCount.Add(-1)
	last := m.windowCount.Add(-1) == 0
	m.mu.Unlock()
	if last {
		m.tombMu.Lock()
		m.tombs = make(map[BulkEntry]struct{})
		m.tombMu.Unlock()
	}
}

// flushTombstones physically deletes every tombstoned entry (no-ops
// for the common case where the local delete already applied).
func (m *migrationManager) flushTombstones() {
	m.tombMu.RLock()
	list := make([]BulkEntry, 0, len(m.tombs))
	for t := range m.tombs {
		list = append(list, t)
	}
	m.tombMu.RUnlock()
	for _, t := range list {
		_, _ = m.s.deleteEntry(t.Instance, hypercube.Vertex(t.Vertex), t.SetKey, t.ObjectID)
	}
}

// pullChunk fetches one chunk with bounded retries and a per-attempt
// deadline carried on the wire.
func (m *migrationManager) pullChunk(key migKey, cursor wireCursor) (respMigrateChunk, error) {
	raw, err := m.sendRetry(key.source, func(deadlineNS int64) any {
		return msgMigrateChunk{
			NewID: key.newID, OwnerID: key.ownerID, Cursor: cursor,
			MaxEntries: m.cfg.ChunkEntries, MaxBytes: m.cfg.ChunkBytes,
			DeadlineUnixNano: deadlineNS,
		}
	})
	if err != nil {
		return respMigrateChunk{}, fmt.Errorf("migrate chunk from %s: %w", key.source, err)
	}
	resp, ok := raw.(respMigrateChunk)
	if !ok {
		return respMigrateChunk{}, fmt.Errorf("migrate chunk from %s: unexpected response %T", key.source, raw)
	}
	return resp, nil
}

// commit tells the source to extract-and-drop the migrated range.
func (m *migrationManager) commit(key migKey) error {
	raw, err := m.sendRetry(key.source, func(deadlineNS int64) any {
		return msgMigrateCommit{NewID: key.newID, OwnerID: key.ownerID, DeadlineUnixNano: deadlineNS}
	})
	if err != nil {
		return fmt.Errorf("migrate commit to %s: %w", key.source, err)
	}
	if _, ok := raw.(respMigrateCommit); !ok {
		return fmt.Errorf("migrate commit to %s: unexpected response %T", key.source, raw)
	}
	return nil
}

// sendRetry sends build's message with per-attempt timeouts and
// doubling backoff. The configured Sender is the peer's resilience
// middleware when one is wired, so transient faults are additionally
// absorbed per attempt by retry/backoff/breakers there.
func (m *migrationManager) sendRetry(addr transport.Addr, build func(deadlineNS int64) any) (any, error) {
	var lastErr error
	backoff := m.cfg.RetryBackoff
	for attempt := 0; attempt < m.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-m.ctx.Done():
				return nil, m.ctx.Err()
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxRetryBackoff {
				backoff = maxRetryBackoff
			}
		}
		ctx, cancel := context.WithTimeout(m.ctx, m.cfg.ChunkTimeout)
		var deadlineNS int64
		if dl, ok := ctx.Deadline(); ok {
			deadlineNS = dl.UnixNano()
		}
		raw, err := m.s.cfg.Sender.Send(ctx, addr, build(deadlineNS))
		cancel()
		if err == nil {
			return raw, nil
		}
		lastErr = err
		if m.ctx.Err() != nil {
			return nil, m.ctx.Err()
		}
	}
	return nil, lastErr
}

// logRecord appends an OpMigrate checkpoint through the range-mutation
// path (totally ordered against every entry record). Best effort: a
// failed append only widens the re-pull window after a crash, and the
// chunk inserts are idempotent.
func (m *migrationManager) logRecord(key migKey, cur wireCursor, done bool) {
	if m.s.store == nil {
		return
	}
	_ = m.s.logRangeMutation(store.Record{
		Op: store.OpMigrate, NewID: key.newID, OwnerID: key.ownerID,
		Source: string(key.source), Done: done,
		HasCursor: cur.Started, Instance: cur.Instance, Vertex: cur.Vertex,
		SetKey: cur.SetKey, ObjectID: cur.ObjectID,
	}, func() {})
}

// applyRecoveredRecord replays one OpMigrate record into the
// recovered-cursor set (WAL/snapshot recovery path).
func (m *migrationManager) applyRecoveredRecord(rec store.Record) {
	key := migKey{newID: rec.NewID, ownerID: rec.OwnerID, source: transport.Addr(rec.Source)}
	m.mu.Lock()
	defer m.mu.Unlock()
	_, had := m.recovered[key]
	if rec.Done {
		if had {
			delete(m.recovered, key)
			if m.windowCount.Add(-1) == 0 {
				m.tombMu.Lock()
				m.tombs = make(map[BulkEntry]struct{})
				m.tombMu.Unlock()
			}
		}
		return
	}
	cur := wireCursor{}
	if rec.HasCursor {
		cur = wireCursor{Started: true, Instance: rec.Instance, Vertex: rec.Vertex,
			SetKey: rec.SetKey, ObjectID: rec.ObjectID}
	}
	m.recovered[key] = cur
	if !had {
		m.windowCount.Add(1)
	}
}

// crashReset drops the recovered/tombstone state alongside the table
// wipe of Server.CrashReset; a following RecoverFromStore rebuilds
// both from the data directory.
func (m *migrationManager) crashReset() {
	m.mu.Lock()
	m.recovered = make(map[migKey]wireCursor)
	m.windowCount.Store(int32(len(m.active)))
	m.mu.Unlock()
	m.tombMu.Lock()
	m.tombs = make(map[BulkEntry]struct{})
	m.tombMu.Unlock()
}

// dumpState re-emits the open-migration checkpoints and window
// tombstones into a snapshot: compaction truncates the WAL that held
// them, and losing the cursor would restart (or worse, never resume)
// the transfer. Tombstones ride as OpDelete records emitted after the
// OpMigrate markers, so replay re-tombstones them. Caller holds
// stateMu exclusively.
func (m *migrationManager) dumpState(emit func(store.Record) error) error {
	m.mu.Lock()
	recs := make([]store.Record, 0, len(m.active)+len(m.recovered))
	add := func(key migKey, cur wireCursor) {
		recs = append(recs, store.Record{
			Op: store.OpMigrate, NewID: key.newID, OwnerID: key.ownerID,
			Source:    string(key.source),
			HasCursor: cur.Started, Instance: cur.Instance, Vertex: cur.Vertex,
			SetKey: cur.SetKey, ObjectID: cur.ObjectID,
		})
	}
	for key, mig := range m.active {
		add(key, mig.cursor)
	}
	for key, cur := range m.recovered {
		add(key, cur)
	}
	m.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].NewID != recs[j].NewID {
			return recs[i].NewID < recs[j].NewID
		}
		return recs[i].Source < recs[j].Source
	})
	for _, rec := range recs {
		if err := emit(rec); err != nil {
			return err
		}
	}
	m.tombMu.RLock()
	tombs := make([]BulkEntry, 0, len(m.tombs))
	for t := range m.tombs {
		tombs = append(tombs, t)
	}
	m.tombMu.RUnlock()
	sort.Slice(tombs, func(i, j int) bool {
		a, b := tombs[i], tombs[j]
		if a.Instance != b.Instance {
			return a.Instance < b.Instance
		}
		if a.Vertex != b.Vertex {
			return a.Vertex < b.Vertex
		}
		if a.SetKey != b.SetKey {
			return a.SetKey < b.SetKey
		}
		return a.ObjectID < b.ObjectID
	})
	for _, t := range tombs {
		err := emit(store.Record{Op: store.OpDelete, Instance: t.Instance,
			Vertex: t.Vertex, SetKey: t.SetKey, ObjectID: t.ObjectID})
		if err != nil {
			return err
		}
	}
	return nil
}

// close cancels every worker and waits them out; called from
// Server.Close before the store closes so no worker appends to a
// closed WAL.
func (m *migrationManager) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
}

// ---- window state consulted by the read/mutation paths ----

// windowOpen is the hot-path gate: true only while a migration window
// (active or recovered) is open.
func (m *migrationManager) windowOpen() bool {
	return m != nil && m.windowCount.Load() != 0
}

// sources returns the old-owner addresses whose open windows cover the
// vertex key of (instance, v) — the double-read targets.
func (m *migrationManager) sources(instance string, v hypercube.Vertex) []transport.Addr {
	if !m.windowOpen() {
		return nil
	}
	key := VertexKey(instance, v)
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []transport.Addr
	add := func(k migKey) {
		// The migrating range is the complement of (newID, ownerID]; a
		// key this node owns and that complement covers is in flight.
		if dht.Between(key, dht.ID(k.newID), dht.ID(k.ownerID)) {
			return
		}
		for _, a := range out {
			if a == k.source {
				return
			}
		}
		out = append(out, k.source)
	}
	for k := range m.active {
		add(k)
	}
	for k := range m.recovered {
		add(k)
	}
	return out
}

// hasTombstone reports whether e was deleted during an open window.
func (m *migrationManager) hasTombstone(e BulkEntry) bool {
	if !m.windowOpen() {
		return false
	}
	m.tombMu.RLock()
	_, ok := m.tombs[e]
	m.tombMu.RUnlock()
	return ok
}

// noteInsert clears a matching tombstone: a re-inserted entry is live
// again. Called under the entry's shard lock (applyInsertLocked), so
// it serializes against noteDelete for the same entry.
func (m *migrationManager) noteInsert(instance string, v hypercube.Vertex, setKey, objectID string) {
	if !m.windowOpen() {
		return
	}
	e := BulkEntry{Instance: instance, Vertex: uint64(v), SetKey: setKey, ObjectID: objectID}
	m.tombMu.Lock()
	delete(m.tombs, e)
	m.tombMu.Unlock()
}

// noteDelete tombstones a delete issued while a window is open —
// whether or not the entry had arrived yet. Called under the entry's
// shard lock (applyDeleteLocked).
func (m *migrationManager) noteDelete(instance string, v hypercube.Vertex, setKey, objectID string) {
	if !m.windowOpen() {
		return
	}
	e := BulkEntry{Instance: instance, Vertex: uint64(v), SetKey: setKey, ObjectID: objectID}
	m.tombMu.Lock()
	m.tombs[e] = struct{}{}
	m.tombMu.Unlock()
}

// ---- double-read merge paths ----

// pinQueryRead answers a pin query, merging the old owners' view while
// the vertex sits in an open migration window so the answer is
// byte-identical to a static fleet's. Relay failures degrade to the
// local (partial) answer rather than failing the query.
func (s *Server) pinQueryRead(ctx context.Context, instance string, v hypercube.Vertex, setKey string) respPinQuery {
	local := s.pinQuery(instance, v, setKey)
	srcs := s.migrate.sources(instance, v)
	if len(srcs) == 0 {
		return local
	}
	ids := make(map[string]struct{}, len(local.ObjectIDs))
	for _, id := range local.ObjectIDs {
		ids[id] = struct{}{}
	}
	msg := msgPinQuery{Instance: instance, Vertex: uint64(v), SetKey: setKey, Relay: true}
	for _, src := range srcs {
		s.migrate.nDoubleReads.Add(1)
		s.migrate.met.doubleReads.Inc()
		raw, err := s.cfg.Sender.Send(ctx, src, msg)
		if err != nil {
			continue
		}
		if resp, ok := raw.(respPinQuery); ok {
			for _, id := range resp.ObjectIDs {
				ids[id] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(ids))
	for id := range ids {
		if s.migrate.hasTombstone(BulkEntry{Instance: instance, Vertex: uint64(v), SetKey: setKey, ObjectID: id}) {
			continue
		}
		out = append(out, id)
	}
	if len(out) == 0 {
		return respPinQuery{}
	}
	sort.Strings(out)
	return respPinQuery{ObjectIDs: out}
}

// scanVertexRead is the migration-aware scanVertex: while (instance,
// v) sits in an open window it merges unwindowed local and relayed
// scans, filters tombstones, re-sorts into the canonical (set key,
// object ID) order and applies skip/limit — byte-identical to scanning
// the union table. Outside a window it is exactly scanVertex plus one
// atomic load.
func (s *Server) scanVertexRead(ctx context.Context, dim int, instance string, v, root hypercube.Vertex, pred queryPred, skip, limit int) ([]Match, int) {
	srcs := s.migrate.sources(instance, v)
	if len(srcs) == 0 {
		return s.scanVertex(instance, v, root, pred, skip, limit)
	}
	merged, _ := s.scanVertex(instance, v, root, pred, 0, -1)
	type mk struct{ setKey, id string }
	seen := make(map[mk]struct{}, len(merged))
	for _, mt := range merged {
		seen[mk{mt.SetKey, mt.ObjectID}] = struct{}{}
	}
	msg := msgSubQuery{Instance: instance, Dim: dim, Vertex: uint64(v), Root: uint64(root),
		QueryKey: pred.key, Class: pred.class, Limit: -1, GenDim: -1, Relay: true}
	for _, src := range srcs {
		s.migrate.nDoubleReads.Add(1)
		s.migrate.met.doubleReads.Inc()
		raw, err := s.cfg.Sender.Send(ctx, src, msg)
		if err != nil {
			continue
		}
		resp, ok := raw.(respSubQuery)
		if !ok {
			continue
		}
		for _, mt := range resp.Matches {
			k := mk{mt.SetKey, mt.ObjectID}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			merged = append(merged, mt)
		}
	}
	out := merged[:0:0]
	for _, mt := range merged {
		if s.migrate.hasTombstone(BulkEntry{Instance: instance, Vertex: uint64(v), SetKey: mt.SetKey, ObjectID: mt.ObjectID}) {
			continue
		}
		out = append(out, mt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SetKey != out[j].SetKey {
			return out[i].SetKey < out[j].SetKey
		}
		return out[i].ObjectID < out[j].ObjectID
	})
	if skip > 0 {
		if skip >= len(out) {
			return nil, 0
		}
		out = out[skip:]
	}
	remaining := 0
	if limit >= 0 && len(out) > limit {
		remaining = len(out) - limit
		out = out[:limit]
	}
	if len(out) == 0 {
		return nil, remaining
	}
	return out, remaining
}

// insertMigrated applies one pulled chunk entry. The tombstone check
// shares the entry's shard critical section with the WAL append and
// the insert, so a client delete that raced ahead of the chunk can
// never be undone (its tombstone is recorded under the same shard
// lock). A skipped entry is not logged either — the WAL never holds
// the insert, so replay cannot resurrect it.
func (s *Server) insertMigrated(e BulkEntry) error {
	instance, v := e.Instance, hypercube.Vertex(e.Vertex)
	sh := s.shardFor(instance, v)
	var set keyword.Set
	var due, skipped bool
	if s.store == nil {
		sh.lock(s.met.shardLockWait)
		if skipped = s.migrate.hasTombstone(e); !skipped {
			set = s.applyInsertLocked(sh, instance, v, e.SetKey, e.ObjectID)
		}
		sh.mu.Unlock()
	} else {
		s.stateMu.RLock()
		sh.lock(s.met.shardLockWait)
		if skipped = s.migrate.hasTombstone(e); !skipped {
			var err error
			due, err = s.store.Append(store.Record{
				Op: store.OpInsert, Instance: instance, Vertex: e.Vertex,
				SetKey: e.SetKey, ObjectID: e.ObjectID,
			})
			if err != nil {
				sh.mu.Unlock()
				s.stateMu.RUnlock()
				return fmt.Errorf("core: wal append: %w", err)
			}
			set = s.applyInsertLocked(sh, instance, v, e.SetKey, e.ObjectID)
		}
		sh.mu.Unlock()
		s.stateMu.RUnlock()
	}
	if skipped {
		return nil
	}
	s.cache.invalidateSubsetsOf(instance, set)
	if due {
		s.compact()
	}
	return nil
}

// ---- source-side chunk extraction ----

// chunkBytes approximates a chunk's wire size for MaxBytes accounting.
func chunkBytes(entries []BulkEntry) uint64 {
	var n uint64
	for _, e := range entries {
		n += entrySize(e)
	}
	return n
}

func entrySize(e BulkEntry) uint64 {
	return uint64(len(e.Instance)+len(e.SetKey)+len(e.ObjectID)) + 16
}

// cursorLess reports whether the cursor sits strictly before the entry
// tuple in the canonical (instance, vertex, set key, object ID) order.
func cursorLess(c wireCursor, instance string, v uint64, setKey, objectID string) bool {
	if !c.Started {
		return true
	}
	if c.Instance != instance {
		return c.Instance < instance
	}
	if c.Vertex != v {
		return c.Vertex < v
	}
	if c.SetKey != setKey {
		return c.SetKey < setKey
	}
	return c.ObjectID < objectID
}

// migrateChunk serves one cursor-paged, read-only chunk of the entries
// the puller now owns: those whose vertex key is NOT in (NewID,
// OwnerID]. Nothing is deleted — the range keeps serving reads here
// until msgMigrateCommit — and no transfer state is kept: the cursor
// is client-driven, so a crashed (and resumed) puller needs nothing
// from this side. Iteration follows the canonical sorted order, which
// makes any cursor an exact resume point.
func (s *Server) migrateChunk(ctx context.Context, msg msgMigrateChunk) (respMigrateChunk, error) {
	maxEntries := msg.MaxEntries
	if maxEntries <= 0 {
		maxEntries = defaultChunkEntries
	}
	maxBytes := msg.MaxBytes
	if maxBytes <= 0 {
		maxBytes = defaultChunkBytes
	}

	type iv struct {
		instance string
		v        hypercube.Vertex
	}
	var pairs []iv
	for _, sh := range s.shards {
		sh.mu.RLock()
		for instance, vertices := range sh.tables {
			for v := range vertices {
				if dht.Between(VertexKey(instance, v), dht.ID(msg.NewID), dht.ID(msg.OwnerID)) {
					continue // still this node's
				}
				pairs = append(pairs, iv{instance, v})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].instance != pairs[j].instance {
			return pairs[i].instance < pairs[j].instance
		}
		return pairs[i].v < pairs[j].v
	})

	resp := respMigrateChunk{Cursor: msg.Cursor}
	var bytes uint64
	full := false
	for _, p := range pairs {
		if err := ctx.Err(); err != nil {
			return respMigrateChunk{}, err
		}
		sh := s.shardFor(p.instance, p.v)
		sh.rlock(s.met.shardLockWait)
		tbl, ok := sh.tables[p.instance][p.v]
		if !ok {
			sh.mu.RUnlock()
			continue
		}
		for _, setKey := range tbl.sortedKeys() {
			for _, id := range tbl.entries[setKey].ids() {
				if !cursorLess(msg.Cursor, p.instance, uint64(p.v), setKey, id) {
					continue
				}
				if full {
					sh.mu.RUnlock()
					return resp, nil // Done=false: more remain past the cursor
				}
				e := BulkEntry{Instance: p.instance, Vertex: uint64(p.v), SetKey: setKey, ObjectID: id}
				resp.Entries = append(resp.Entries, e)
				bytes += entrySize(e)
				resp.Cursor = wireCursor{Started: true, Instance: p.instance,
					Vertex: uint64(p.v), SetKey: setKey, ObjectID: id}
				if len(resp.Entries) >= maxEntries || bytes >= uint64(maxBytes) {
					full = true
				}
			}
		}
		sh.mu.RUnlock()
	}
	resp.Done = true
	return resp, nil
}
