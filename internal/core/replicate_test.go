package core

import (
	"context"
	"strconv"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// newReplicatedDeployment builds two independent server fleets, one
// per index instance, each with its own hash seed and vertex mapping,
// plus the Replicated wrapper over their clients. (A production
// deployment would colocate both instances' servers on the same
// physical nodes; separate fleets keep the failure injection in these
// tests precise.)
func newReplicatedDeployment(t *testing.T, r, nServers int) (*inmem.Network, []transport.Addr, *Replicated, []*Client) {
	t.Helper()
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })

	buildFleet := func(prefix string, seed uint64) (FuncResolver, keyword.Hasher, []transport.Addr) {
		hasher := keyword.MustNewHasher(r, seed)
		addrs := make([]transport.Addr, nServers)
		for i := range addrs {
			addrs[i] = transport.Addr(prefix + strconv.Itoa(i))
		}
		resolver := FuncResolver(func(v hypercube.Vertex) transport.Addr {
			return addrs[int(uint64(v))%nServers]
		})
		for i := range addrs {
			srv, err := NewServer(ServerConfig{Hasher: hasher, Resolver: resolver, Sender: net})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := net.Bind(addrs[i], srv.Handler); err != nil {
				t.Fatal(err)
			}
		}
		return resolver, hasher, addrs
	}

	resA, hasherA, addrsA := buildFleet("rep-", 100)
	resB, hasherB, addrsB := buildFleet("repB-", 200)

	cA, err := NewInstanceClient("main", hasherA, resA, net)
	if err != nil {
		t.Fatal(err)
	}
	cB, err := NewInstanceClient("replica-1", hasherB, resB, net)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplicated(cA, cB)
	if err != nil {
		t.Fatal(err)
	}
	return net, append(addrsA, addrsB...), rep, []*Client{cA, cB}
}

func TestNewReplicatedValidation(t *testing.T) {
	if _, err := NewReplicated(); err == nil {
		t.Error("empty replica set accepted")
	}
	if _, err := NewReplicated(nil); err == nil {
		t.Error("nil client accepted")
	}
	d := newDeployment(t, 6, 1, 0)
	if _, err := NewReplicated(d.client, d.client); err == nil {
		t.Error("duplicate instances accepted")
	}
}

func TestReplicatedInsertFansOut(t *testing.T) {
	_, _, rep, clients := newReplicatedDeployment(t, 8, 4)
	ctx := context.Background()
	o := obj("fan", "alpha", "beta")
	st, err := rep.Insert(ctx, o)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if st.Messages != 4 { // 2 per replica
		t.Errorf("messages = %d, want 4", st.Messages)
	}
	// Present in both instances.
	for _, c := range clients {
		ids, _, err := c.PinSearch(ctx, o.Keywords)
		if err != nil || len(ids) != 1 {
			t.Errorf("replica %s pin = %v, %v", c.Instance(), ids, err)
		}
	}
}

func TestReplicatedSearchFailsOverWhenPrimaryRootDies(t *testing.T) {
	net, _, rep, clients := newReplicatedDeployment(t, 8, 4)
	ctx := context.Background()
	o := obj("survivor", "omega", "psi")
	if _, err := rep.Insert(ctx, o); err != nil {
		t.Fatal(err)
	}
	q := keyword.NewSet("omega")

	// Kill the PRIMARY instance's root node for this query.
	primary := clients[0]
	rootAddr := mustResolve(t, primary, q)
	net.SetDown(rootAddr, true)

	// Direct primary search fails…
	if _, err := primary.SupersetSearch(ctx, q, All, SearchOptions{}); err == nil {
		t.Fatal("primary search unexpectedly succeeded")
	}
	// …but the replicated search fails over to the secondary.
	res, err := rep.SupersetSearch(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatalf("replicated search: %v", err)
	}
	if len(res.Matches) != 1 || res.Matches[0].ObjectID != "survivor" {
		t.Errorf("matches = %+v", res.Matches)
	}
	// Pin search fails over too.
	ids, _, err := rep.PinSearch(ctx, o.Keywords)
	if err != nil || len(ids) != 1 {
		t.Errorf("replicated pin = %v, %v", ids, err)
	}
}

func TestReplicatedDeleteRemovesFromAllReplicas(t *testing.T) {
	_, _, rep, clients := newReplicatedDeployment(t, 8, 4)
	ctx := context.Background()
	o := obj("gone", "mu", "nu")
	if _, err := rep.Insert(ctx, o); err != nil {
		t.Fatal(err)
	}
	found, _, err := rep.Delete(ctx, o)
	if err != nil || !found {
		t.Fatalf("Delete = %v, %v", found, err)
	}
	for _, c := range clients {
		ids, _, _ := c.PinSearch(ctx, o.Keywords)
		if len(ids) != 0 {
			t.Errorf("replica %s still has %v", c.Instance(), ids)
		}
	}
	// Second delete finds nothing anywhere.
	found, _, err = rep.Delete(ctx, o)
	if err != nil || found {
		t.Errorf("second delete = %v, %v", found, err)
	}
}

func TestReplicatedNonTransportErrorsDoNotFailOver(t *testing.T) {
	_, _, rep, _ := newReplicatedDeployment(t, 8, 4)
	if _, _, err := rep.PinSearch(context.Background(), keyword.Set{}); err != ErrEmptyQuery {
		t.Errorf("empty query: %v, want ErrEmptyQuery", err)
	}
}

func mustResolve(t *testing.T, c *Client, k keyword.Set) transport.Addr {
	t.Helper()
	addr, err := c.resolver.Resolve(context.Background(), c.instance, c.hasher.Vertex(k))
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

// TestReplicatedTelemetryCounters checks the fan-out accounting: one
// write per replica per mutation, one read per replica attempted, and
// a failover tick each time a read moves past the primary.
func TestReplicatedTelemetryCounters(t *testing.T) {
	net, _, rep, clients := newReplicatedDeployment(t, 8, 4)
	reg := telemetry.New(8)
	rep.SetTelemetry(reg)
	ctx := context.Background()

	o := obj("counted", "omega", "psi")
	if _, err := rep.Insert(ctx, o); err != nil {
		t.Fatal(err)
	}
	q := keyword.NewSet("omega")
	// Healthy read: the primary answers, no failover.
	if _, err := rep.SupersetSearch(ctx, q, All, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	// With the primary's root down the read falls over to the replica.
	net.SetDown(mustResolve(t, clients[0], q), true)
	if _, err := rep.SupersetSearch(ctx, q, All, SearchOptions{}); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"core_replica_writes_total":         2, // one Insert × two replicas
		"core_replica_write_failures_total": 0,
		"core_replica_reads_total":          3, // healthy read + failed primary + replica
		"core_replica_failovers_total":      1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges["core_replica_fanout"]; got != 2 {
		t.Errorf("core_replica_fanout = %d, want 2", got)
	}
}
