package core

import (
	"context"
	"fmt"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Client is the initiator-side API of the index scheme. Any peer (it
// does not need to host index tables itself) can create a Client to
// insert, delete and search objects.
type Client struct {
	instance string
	hasher   keyword.Hasher
	resolver Resolver
	sender   transport.Sender
	clientID string
}

// DefaultInstance is the index-instance name used when none is given.
const DefaultInstance = "main"

// NewClient builds a client for the default index instance, sharing
// the deployment's hasher, vertex resolver and transport.
func NewClient(hasher keyword.Hasher, resolver Resolver, sender transport.Sender) (*Client, error) {
	return NewInstanceClient(DefaultInstance, hasher, resolver, sender)
}

// NewInstanceClient builds a client for a named index instance.
// Decomposed and replicated indexes use distinct instance names so
// their entries stay separate even when they share physical nodes;
// the resolver must be salted with the same instance name.
func NewInstanceClient(instance string, hasher keyword.Hasher, resolver Resolver, sender transport.Sender) (*Client, error) {
	if resolver == nil || sender == nil {
		return nil, fmt.Errorf("core: client needs a Resolver and a Sender")
	}
	if instance == "" {
		instance = DefaultInstance
	}
	return &Client{instance: instance, hasher: hasher, resolver: resolver, sender: sender}, nil
}

// Instance returns the index-instance name this client addresses.
func (c *Client) Instance() string { return c.instance }

// SetClientID attaches a client identity to every subsequent request
// from this client. Servers running with admission control use it as
// the fair-queuing key (per-client token buckets); the empty default
// is anonymous and bypasses fair queuing. Not safe for concurrent use
// with in-flight requests — set it right after construction.
func (c *Client) SetClientID(id string) { c.clientID = id }

// Hasher returns the deployment hasher (shared with servers).
func (c *Client) Hasher() keyword.Hasher { return c.hasher }

// route resolves the physical address hosting vertex v in this
// client's instance.
func (c *Client) route(ctx context.Context, v hypercube.Vertex) (transport.Addr, error) {
	return c.resolver.Resolve(ctx, c.instance, v)
}

// ResolveRoot returns the physical address of the node responsible for
// keyword set k in this client's instance — a diagnostic hook used by
// failure-injection tests and monitoring.
func (c *Client) ResolveRoot(ctx context.Context, k keyword.Set) (transport.Addr, error) {
	return c.route(ctx, c.hasher.Vertex(k))
}

// send resolves the vertex and delivers body, retrying once through a
// fresh resolution when a cached binding has gone stale (the node
// departed and its key range re-homed).
func (c *Client) send(ctx context.Context, v hypercube.Vertex, body any) (any, error) {
	for attempt := 0; ; attempt++ {
		addr, err := c.route(ctx, v)
		if err != nil {
			return nil, err
		}
		resp, err := c.sender.Send(ctx, addr, body)
		if err == nil {
			return resp, nil
		}
		if inv, ok := c.resolver.(*OverlayResolver); ok && attempt == 0 {
			inv.Invalidate(c.instance, v)
			continue
		}
		return nil, err
	}
}

// Insert places the index entry ⟨K_σ, σ⟩ at the node responsible for
// the object's keyword set: one lookup plus one message, per Section
// 3.5. Stats reports the cost.
func (c *Client) Insert(ctx context.Context, obj Object) (Stats, error) {
	if err := obj.Validate(); err != nil {
		return Stats{}, err
	}
	v := c.hasher.Vertex(obj.Keywords)
	_, err := c.send(ctx, v, msgInsertEntry{
		Instance: c.instance,
		Vertex:   uint64(v),
		SetKey:   obj.Keywords.Key(),
		ObjectID: obj.ID,
		ClientID: c.clientID,
	})
	if err != nil {
		return Stats{}, fmt.Errorf("insert %q: %w", obj.ID, err)
	}
	return Stats{NodesContacted: 1, Messages: 2}, nil
}

// Delete removes the index entry of the object. It reports whether the
// entry existed.
func (c *Client) Delete(ctx context.Context, obj Object) (bool, Stats, error) {
	if err := obj.Validate(); err != nil {
		return false, Stats{}, err
	}
	v := c.hasher.Vertex(obj.Keywords)
	raw, err := c.send(ctx, v, msgDeleteEntry{
		Instance: c.instance,
		Vertex:   uint64(v),
		SetKey:   obj.Keywords.Key(),
		ObjectID: obj.ID,
		ClientID: c.clientID,
	})
	if err != nil {
		return false, Stats{}, fmt.Errorf("delete %q: %w", obj.ID, err)
	}
	resp, ok := raw.(respDeleteEntry)
	if !ok {
		return false, Stats{}, fmt.Errorf("delete %q: unexpected response %T", obj.ID, raw)
	}
	return resp.Found, Stats{NodesContacted: 1, Messages: 2}, nil
}

// PinSearch returns the IDs of objects associated with exactly the
// keyword set K: one message for the query and one for the result.
func (c *Client) PinSearch(ctx context.Context, k keyword.Set) ([]string, Stats, error) {
	if k.IsEmpty() {
		return nil, Stats{}, ErrEmptyQuery
	}
	v := c.hasher.Vertex(k)
	raw, err := c.send(ctx, v, msgPinQuery{Instance: c.instance, Vertex: uint64(v), SetKey: k.Key(), ClientID: c.clientID})
	if err != nil {
		return nil, Stats{}, fmt.Errorf("pin search %v: %w", k, err)
	}
	resp, ok := raw.(respPinQuery)
	if !ok {
		return nil, Stats{}, fmt.Errorf("pin search %v: unexpected response %T", k, raw)
	}
	return resp.ObjectIDs, Stats{NodesContacted: 1, Messages: 2}, nil
}

// SupersetSearch returns up to threshold objects whose keyword sets
// contain K, exploring the subhypercube induced by F_h(K). threshold
// must be positive; pass All for an unbounded search.
func (c *Client) SupersetSearch(ctx context.Context, k keyword.Set, threshold int, opts SearchOptions) (Result, error) {
	return c.search(ctx, k, threshold, opts, false, 0)
}

// All is a threshold meaning "every matching object".
const All = int(^uint(0) >> 1)

func (c *Client) search(ctx context.Context, k keyword.Set, threshold int, opts SearchOptions, cumulative bool, sessionID uint64) (Result, error) {
	if k.IsEmpty() {
		return Result{}, ErrEmptyQuery
	}
	if threshold <= 0 {
		return Result{}, fmt.Errorf("core: threshold %d must be positive", threshold)
	}
	opts = opts.withDefaults()
	clientID := opts.ClientID
	if clientID == "" {
		clientID = c.clientID
	}
	v := c.hasher.Vertex(k)
	msg := msgTQuery{
		Instance:   c.instance,
		Dim:        c.hasher.Dim(),
		Vertex:     uint64(v),
		QueryKey:   k.Key(),
		Threshold:  threshold,
		Order:      opts.Order,
		Cumulative: cumulative,
		SessionID:  sessionID,
		NoCache:    opts.NoCache,
		WantTrace:  opts.Trace,
		ClientID:   clientID,
	}
	if dl, ok := ctx.Deadline(); ok {
		msg.DeadlineUnixNano = dl.UnixNano()
	}
	raw, err := c.send(ctx, v, msg)
	if err != nil {
		return Result{}, fmt.Errorf("superset search %v: %w", k, err)
	}
	resp, ok := raw.(respTQuery)
	if !ok {
		return Result{}, fmt.Errorf("superset search %v: unexpected response %T", k, raw)
	}
	if resp.ErrCode == errCodeNoSession {
		return Result{}, ErrNoSuchSession
	}
	stats := Stats{
		NodesContacted: resp.SubNodes,
		Messages:       resp.SubMsgs + 2, // plus the initiator↔root round trip
		Rounds:         resp.Rounds,
		PhysFrames:     resp.PhysFrames + 1, // plus the initiator's frame to the root
		CacheHit:       resp.CacheHit,
	}
	if resp.CacheHit {
		stats.NodesContacted = 1 // only the root was involved
	}
	completeness := 1.0
	if resp.FailedNodes > 0 && resp.SubNodes > 0 {
		completeness = float64(resp.SubNodes-resp.FailedNodes) / float64(resp.SubNodes)
	}
	return Result{
		Matches:        resp.Matches,
		Exhausted:      resp.Exhausted,
		Stats:          stats,
		SessionID:      resp.SessionID,
		Completeness:   completeness,
		FailedSubtrees: resp.FailedNodes,
		Trace:          resp.Trace,
	}, nil
}

// Cursor pages through a cumulative superset search (Section 2.2's
// "browse step by step" mode): consecutive Next calls return disjoint
// result pages, with the traversal frontier retained at the root.
type Cursor struct {
	client    *Client
	query     keyword.Set
	opts      SearchOptions
	sessionID uint64
	exhausted bool
}

// CumulativeSearch starts a cumulative search and returns its cursor.
// No traffic happens until the first Next call.
func (c *Client) CumulativeSearch(k keyword.Set, opts SearchOptions) (*Cursor, error) {
	if k.IsEmpty() {
		return nil, ErrEmptyQuery
	}
	return &Cursor{client: c, query: k, opts: opts.withDefaults()}, nil
}

// Next returns the next page of up to pageSize matches. After the
// subhypercube is exhausted it returns ErrExhausted.
func (cur *Cursor) Next(ctx context.Context, pageSize int) ([]Match, Stats, error) {
	if cur.exhausted {
		return nil, Stats{}, ErrExhausted
	}
	res, err := cur.client.search(ctx, cur.query, pageSize, cur.opts, true, cur.sessionID)
	if err != nil {
		return nil, Stats{}, err
	}
	cur.sessionID = res.SessionID
	if res.Exhausted {
		cur.exhausted = true
	}
	return res.Matches, res.Stats, nil
}

// Exhausted reports whether the traversal has covered the whole
// subhypercube.
func (cur *Cursor) Exhausted() bool { return cur.exhausted }
