package core

import (
	"context"
	"fmt"
	"sync"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Client is the initiator-side API of the index scheme. Any peer (it
// does not need to host index tables itself) can create a Client to
// insert, delete and search objects.
type Client struct {
	instance string
	hasher   keyword.Hasher
	resolver Resolver
	sender   transport.Sender
	clientID string

	// spread, when enabled, round-robins one-shot searches for
	// promoted hot roots across owner + advertised soft replicas.
	// Hints are trusted only from owner-path responses, and an entry
	// dies on the first send error (fall back to the owner) or when
	// the owner stops advertising (demotion).
	spreadOn bool
	spreadMu sync.Mutex
	spread   map[hypercube.Vertex]*spreadState
}

// spreadState is the known soft-replica set of one promoted root.
type spreadState struct {
	addrs []transport.Addr
	next  int
}

// DefaultInstance is the index-instance name used when none is given.
const DefaultInstance = "main"

// NewClient builds a client for the default index instance, sharing
// the deployment's hasher, vertex resolver and transport.
func NewClient(hasher keyword.Hasher, resolver Resolver, sender transport.Sender) (*Client, error) {
	return NewInstanceClient(DefaultInstance, hasher, resolver, sender)
}

// NewInstanceClient builds a client for a named index instance.
// Decomposed and replicated indexes use distinct instance names so
// their entries stay separate even when they share physical nodes;
// the resolver must be salted with the same instance name.
func NewInstanceClient(instance string, hasher keyword.Hasher, resolver Resolver, sender transport.Sender) (*Client, error) {
	if resolver == nil || sender == nil {
		return nil, fmt.Errorf("core: client needs a Resolver and a Sender")
	}
	if instance == "" {
		instance = DefaultInstance
	}
	return &Client{instance: instance, hasher: hasher, resolver: resolver, sender: sender}, nil
}

// Instance returns the index-instance name this client addresses.
func (c *Client) Instance() string { return c.instance }

// SetClientID attaches a client identity to every subsequent request
// from this client. Servers running with admission control use it as
// the fair-queuing key (per-client token buckets); the empty default
// is anonymous and bypasses fair queuing. Not safe for concurrent use
// with in-flight requests — set it right after construction.
func (c *Client) SetClientID(id string) { c.clientID = id }

// Hasher returns the deployment hasher (shared with servers).
func (c *Client) Hasher() keyword.Hasher { return c.hasher }

// SetSpread toggles request spreading across the soft replicas of
// promoted hot roots (advertised via respTQuery.SoftAddrs). Off by
// default. Like SetClientID, set it right after construction.
func (c *Client) SetSpread(on bool) { c.spreadOn = on }

// route resolves the physical address hosting vertex v in this
// client's instance.
func (c *Client) route(ctx context.Context, v hypercube.Vertex) (transport.Addr, error) {
	return c.resolver.Resolve(ctx, c.instance, v)
}

// ResolveRoot returns the physical address of the node responsible for
// keyword set k in this client's instance — a diagnostic hook used by
// failure-injection tests and monitoring.
func (c *Client) ResolveRoot(ctx context.Context, k keyword.Set) (transport.Addr, error) {
	return c.route(ctx, c.hasher.Vertex(k))
}

// send resolves the vertex and delivers body, retrying once through a
// fresh resolution when a cached binding has gone stale (the node
// departed and its key range re-homed).
func (c *Client) send(ctx context.Context, v hypercube.Vertex, body any) (any, error) {
	for attempt := 0; ; attempt++ {
		addr, err := c.route(ctx, v)
		if err != nil {
			return nil, err
		}
		resp, err := c.sender.Send(ctx, addr, body)
		if err == nil {
			return resp, nil
		}
		if inv, ok := c.resolver.(*OverlayResolver); ok && attempt == 0 {
			inv.Invalidate(c.instance, v)
			continue
		}
		return nil, err
	}
}

// sendSearch delivers one msgTQuery, spreading eligible one-shot
// queries across a promoted root's soft replicas. A spread attempt
// that fails — transport error, or the replica dropped its copy —
// forgets the replica set and falls back to the owner path, so a
// stale hint costs at most one extra round trip.
func (c *Client) sendSearch(ctx context.Context, v hypercube.Vertex, msg msgTQuery, spreadable bool) (raw any, viaSoft bool, err error) {
	if c.spreadOn && spreadable {
		if addr, ok := c.pickSoft(v); ok {
			soft := msg
			soft.SoftOnly = true
			raw, err := c.sender.Send(ctx, addr, soft)
			if err == nil {
				if resp, ok := raw.(respTQuery); !ok || resp.ErrCode != errCodeNoSoftCopy {
					return raw, true, nil
				}
			}
			c.dropSoft(v)
		}
	}
	raw, err = c.send(ctx, v, msg)
	return raw, false, err
}

// pickSoft round-robins over owner + replicas of a known-promoted
// root; the owner keeps its fair share of the load (slot 0), which
// also refreshes the advertisement periodically.
func (c *Client) pickSoft(v hypercube.Vertex) (transport.Addr, bool) {
	c.spreadMu.Lock()
	defer c.spreadMu.Unlock()
	st := c.spread[v]
	if st == nil || len(st.addrs) == 0 {
		return "", false
	}
	slot := st.next % (len(st.addrs) + 1)
	st.next++
	if slot == 0 {
		return "", false // the owner's turn
	}
	return st.addrs[slot-1], true
}

// noteSoftAddrs records (or clears) the replica set an owner-path
// response advertised for root v.
func (c *Client) noteSoftAddrs(v hypercube.Vertex, addrs []string) {
	if !c.spreadOn {
		return
	}
	c.spreadMu.Lock()
	defer c.spreadMu.Unlock()
	if len(addrs) == 0 {
		delete(c.spread, v)
		return
	}
	list := make([]transport.Addr, len(addrs))
	for i, a := range addrs {
		list[i] = transport.Addr(a)
	}
	if c.spread == nil {
		c.spread = make(map[hypercube.Vertex]*spreadState)
	}
	if st := c.spread[v]; st != nil {
		st.addrs = list // keep the rotation position
		return
	}
	c.spread[v] = &spreadState{addrs: list}
}

// dropSoft forgets the replica set of root v.
func (c *Client) dropSoft(v hypercube.Vertex) {
	c.spreadMu.Lock()
	delete(c.spread, v)
	c.spreadMu.Unlock()
}

// Insert places the index entry ⟨K_σ, σ⟩ at the node responsible for
// the object's keyword set: one lookup plus one message, per Section
// 3.5. Stats reports the cost.
func (c *Client) Insert(ctx context.Context, obj Object) (Stats, error) {
	if err := obj.Validate(); err != nil {
		return Stats{}, err
	}
	v := c.hasher.Vertex(obj.Keywords)
	_, err := c.send(ctx, v, msgInsertEntry{
		Instance: c.instance,
		Vertex:   uint64(v),
		SetKey:   obj.Keywords.Key(),
		ObjectID: obj.ID,
		ClientID: c.clientID,
	})
	if err != nil {
		return Stats{}, fmt.Errorf("insert %q: %w", obj.ID, err)
	}
	return Stats{NodesContacted: 1, Messages: 2}, nil
}

// Delete removes the index entry of the object. It reports whether the
// entry existed.
func (c *Client) Delete(ctx context.Context, obj Object) (bool, Stats, error) {
	if err := obj.Validate(); err != nil {
		return false, Stats{}, err
	}
	v := c.hasher.Vertex(obj.Keywords)
	raw, err := c.send(ctx, v, msgDeleteEntry{
		Instance: c.instance,
		Vertex:   uint64(v),
		SetKey:   obj.Keywords.Key(),
		ObjectID: obj.ID,
		ClientID: c.clientID,
	})
	if err != nil {
		return false, Stats{}, fmt.Errorf("delete %q: %w", obj.ID, err)
	}
	resp, ok := raw.(respDeleteEntry)
	if !ok {
		return false, Stats{}, fmt.Errorf("delete %q: unexpected response %T", obj.ID, raw)
	}
	return resp.Found, Stats{NodesContacted: 1, Messages: 2}, nil
}

// PinSearch returns the IDs of objects associated with exactly the
// keyword set K: one message for the query and one for the result. It
// rides the unified query-class dispatch (msgTQuery with ClassPin);
// the answer is byte-identical to the legacy msgPinQuery path, which
// servers still accept from old clients.
func (c *Client) PinSearch(ctx context.Context, k keyword.Set) ([]string, Stats, error) {
	if k.IsEmpty() {
		return nil, Stats{}, ErrEmptyQuery
	}
	v := c.hasher.Vertex(k)
	msg := msgTQuery{
		Instance:  c.instance,
		Dim:       c.hasher.Dim(),
		Vertex:    uint64(v),
		QueryKey:  k.Key(),
		Class:     ClassPin,
		Threshold: All,
		ClientID:  c.clientID,
	}
	if dl, ok := ctx.Deadline(); ok {
		msg.DeadlineUnixNano = dl.UnixNano()
	}
	raw, err := c.send(ctx, v, msg)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("pin search %v: %w", k, err)
	}
	resp, ok := raw.(respTQuery)
	if !ok {
		return nil, Stats{}, fmt.Errorf("pin search %v: unexpected response %T", k, raw)
	}
	ids := make([]string, 0, len(resp.Matches))
	for _, m := range resp.Matches {
		ids = append(ids, m.ObjectID)
	}
	if len(ids) == 0 {
		ids = nil
	}
	return ids, Stats{NodesContacted: 1, Messages: 2}, nil
}

// PrefixSearch returns up to threshold objects whose keyword sets
// contain at least one keyword starting with prefix. The query is a
// constrained multicast (one SBT branch per dimension the prefix can
// hash to), coordinated by the owner of the lowest candidate
// dimension; threshold must be positive, and All is accepted.
func (c *Client) PrefixSearch(ctx context.Context, prefix string, threshold int, opts SearchOptions) (Result, error) {
	return c.PrefixSearchMasked(ctx, prefix, 0, threshold, opts)
}

// PrefixSearchMasked is PrefixSearch with an explicit dimension mask:
// only SBT branches rooted at dimensions in mask are visited. A zero
// mask means every dimension. Callers that know the deployment
// vocabulary shrink the mask with Hasher.PrefixMask to turn the
// broadcast into a targeted multicast.
func (c *Client) PrefixSearchMasked(ctx context.Context, prefix string, mask uint64, threshold int, opts SearchOptions) (Result, error) {
	p := keyword.Normalize(prefix)
	if p == "" {
		return Result{}, ErrEmptyQuery
	}
	if threshold <= 0 {
		return Result{}, fmt.Errorf("core: threshold %d must be positive", threshold)
	}
	opts = opts.withDefaults()
	clientID := opts.ClientID
	if clientID == "" {
		clientID = c.clientID
	}
	full := uint64(1)<<uint(c.hasher.Dim()) - 1
	if mask == 0 {
		mask = full
	}
	mask &= full
	if mask == 0 {
		return Result{}, fmt.Errorf("core: dimension mask selects no dimensions")
	}
	root := hypercube.Vertex(mask & -mask) // lowest masked dimension coordinates
	msg := msgTQuery{
		Instance:  c.instance,
		Dim:       c.hasher.Dim(),
		Vertex:    uint64(root),
		QueryKey:  p,
		Class:     ClassPrefix,
		DimMask:   mask,
		Threshold: threshold,
		Order:     opts.Order,
		NoCache:   opts.NoCache,
		WantTrace: opts.Trace,
		ClientID:  clientID,
	}
	if dl, ok := ctx.Deadline(); ok {
		msg.DeadlineUnixNano = dl.UnixNano()
	}
	raw, err := c.send(ctx, root, msg)
	if err != nil {
		return Result{}, fmt.Errorf("prefix search %q: %w", p, err)
	}
	resp, ok := raw.(respTQuery)
	if !ok {
		return Result{}, fmt.Errorf("prefix search %q: unexpected response %T", p, raw)
	}
	stats := Stats{
		NodesContacted: resp.SubNodes,
		Messages:       resp.SubMsgs + 2, // plus the initiator↔coordinator round trip
		Rounds:         resp.Rounds,
		PhysFrames:     resp.PhysFrames + 1, // plus the initiator's frame
		CacheHit:       resp.CacheHit,
	}
	if resp.CacheHit {
		stats.NodesContacted = 1 // only the coordinator was involved
	}
	completeness := 1.0
	if resp.FailedNodes > 0 && resp.SubNodes > 0 {
		completeness = float64(resp.SubNodes-resp.FailedNodes) / float64(resp.SubNodes)
	}
	return Result{
		Matches:        resp.Matches,
		Exhausted:      resp.Exhausted,
		Stats:          stats,
		Completeness:   completeness,
		FailedSubtrees: resp.FailedNodes,
		Trace:          resp.Trace,
	}, nil
}

// SupersetSearch returns up to threshold objects whose keyword sets
// contain K, exploring the subhypercube induced by F_h(K). threshold
// must be positive; pass All for an unbounded search.
func (c *Client) SupersetSearch(ctx context.Context, k keyword.Set, threshold int, opts SearchOptions) (Result, error) {
	return c.search(ctx, k, threshold, opts, false, 0)
}

// All is a threshold meaning "every matching object".
const All = int(^uint(0) >> 1)

// RefineSearch narrows a previously searched base query to a refined
// superset query refined ⊇ base (Lemma 3.3: the refined subcube is
// contained in the base's). The request goes to the BASE root's owner
// — the node whose result cache plausibly holds the base query's
// complete (exhausted) answer — which derives the refined answer from
// that cached state without any traversal. When the receiver has no
// usable state (nothing cached, base never exhausted, entry evicted
// or invalidated) the client transparently falls back to a plain
// SupersetSearch for the refined query, so RefineSearch is always
// safe to call; Stats.RefineHit reports which path answered.
func (c *Client) RefineSearch(ctx context.Context, base, refined keyword.Set, threshold int, opts SearchOptions) (Result, error) {
	if base.IsEmpty() || refined.IsEmpty() {
		return Result{}, ErrEmptyQuery
	}
	if !base.SubsetOf(refined) {
		return Result{}, fmt.Errorf("core: refine base %v is not a subset of %v", base, refined)
	}
	if threshold <= 0 {
		return Result{}, fmt.Errorf("core: threshold %d must be positive", threshold)
	}
	if opts.NoCache || base.Equal(refined) {
		// NoCache forbids serving from cached state by definition, and
		// refining to the identical query is just a plain search.
		return c.search(ctx, refined, threshold, opts, false, 0)
	}
	opts = opts.withDefaults()
	clientID := opts.ClientID
	if clientID == "" {
		clientID = c.clientID
	}
	baseV := c.hasher.Vertex(base)
	msg := msgTQuery{
		Instance:         c.instance,
		Dim:              c.hasher.Dim(),
		Vertex:           uint64(c.hasher.Vertex(refined)),
		QueryKey:         refined.Key(),
		Threshold:        threshold,
		Order:            opts.Order,
		WantTrace:        false,
		ClientID:         clientID,
		RefineFromKey:    base.Key(),
		RefineFromVertex: uint64(baseV),
	}
	if dl, ok := ctx.Deadline(); ok {
		msg.DeadlineUnixNano = dl.UnixNano()
	}
	raw, err := c.send(ctx, baseV, msg)
	if err != nil {
		return c.search(ctx, refined, threshold, opts, false, 0)
	}
	resp, ok := raw.(respTQuery)
	if !ok {
		return Result{}, fmt.Errorf("refine search %v: unexpected response %T", refined, raw)
	}
	if resp.ErrCode != errCodeNone {
		return c.search(ctx, refined, threshold, opts, false, 0)
	}
	return Result{
		Matches:      resp.Matches,
		Exhausted:    resp.Exhausted,
		Completeness: 1.0,
		Stats: Stats{
			NodesContacted: 1, // only the base root was involved
			Messages:       2,
			PhysFrames:     1,
			RefineHit:      true,
		},
	}, nil
}

func (c *Client) search(ctx context.Context, k keyword.Set, threshold int, opts SearchOptions, cumulative bool, sessionID uint64) (Result, error) {
	if k.IsEmpty() {
		return Result{}, ErrEmptyQuery
	}
	if threshold <= 0 {
		return Result{}, fmt.Errorf("core: threshold %d must be positive", threshold)
	}
	opts = opts.withDefaults()
	clientID := opts.ClientID
	if clientID == "" {
		clientID = c.clientID
	}
	v := c.hasher.Vertex(k)
	msg := msgTQuery{
		Instance:   c.instance,
		Dim:        c.hasher.Dim(),
		Vertex:     uint64(v),
		QueryKey:   k.Key(),
		Threshold:  threshold,
		Order:      opts.Order,
		Cumulative: cumulative,
		SessionID:  sessionID,
		NoCache:    opts.NoCache,
		WantTrace:  opts.Trace,
		ClientID:   clientID,
	}
	if dl, ok := ctx.Deadline(); ok {
		msg.DeadlineUnixNano = dl.UnixNano()
	}
	// Only one-shot searches may be spread to soft replicas: cumulative
	// sessions have root affinity, and continuations must return to
	// whichever server holds the session.
	raw, viaSoft, err := c.sendSearch(ctx, v, msg, !cumulative && sessionID == 0)
	if err != nil {
		return Result{}, fmt.Errorf("superset search %v: %w", k, err)
	}
	resp, ok := raw.(respTQuery)
	if !ok {
		return Result{}, fmt.Errorf("superset search %v: unexpected response %T", k, raw)
	}
	if resp.ErrCode == errCodeNoSession {
		return Result{}, ErrNoSuchSession
	}
	if !viaSoft && !cumulative && sessionID == 0 {
		// Owner-path responses are the authority on the replica set:
		// advertise ⇒ (re)learn it, silence ⇒ the root was demoted.
		c.noteSoftAddrs(v, resp.SoftAddrs)
	}
	stats := Stats{
		NodesContacted: resp.SubNodes,
		Messages:       resp.SubMsgs + 2, // plus the initiator↔root round trip
		Rounds:         resp.Rounds,
		PhysFrames:     resp.PhysFrames + 1, // plus the initiator's frame to the root
		CacheHit:       resp.CacheHit,
		RefineHit:      resp.RefineHit,
		SoftServed:     viaSoft,
	}
	if resp.CacheHit || resp.RefineHit {
		stats.NodesContacted = 1 // only the root was involved
	}
	completeness := 1.0
	if resp.FailedNodes > 0 && resp.SubNodes > 0 {
		completeness = float64(resp.SubNodes-resp.FailedNodes) / float64(resp.SubNodes)
	}
	return Result{
		Matches:        resp.Matches,
		Exhausted:      resp.Exhausted,
		Stats:          stats,
		SessionID:      resp.SessionID,
		Completeness:   completeness,
		FailedSubtrees: resp.FailedNodes,
		Trace:          resp.Trace,
	}, nil
}

// Cursor pages through a cumulative superset search (Section 2.2's
// "browse step by step" mode): consecutive Next calls return disjoint
// result pages, with the traversal frontier retained at the root.
type Cursor struct {
	client    *Client
	query     keyword.Set
	opts      SearchOptions
	sessionID uint64
	exhausted bool
}

// CumulativeSearch starts a cumulative search and returns its cursor.
// No traffic happens until the first Next call.
func (c *Client) CumulativeSearch(k keyword.Set, opts SearchOptions) (*Cursor, error) {
	if k.IsEmpty() {
		return nil, ErrEmptyQuery
	}
	return &Cursor{client: c, query: k, opts: opts.withDefaults()}, nil
}

// Next returns the next page of up to pageSize matches. After the
// subhypercube is exhausted it returns ErrExhausted.
func (cur *Cursor) Next(ctx context.Context, pageSize int) ([]Match, Stats, error) {
	if cur.exhausted {
		return nil, Stats{}, ErrExhausted
	}
	res, err := cur.client.search(ctx, cur.query, pageSize, cur.opts, true, cur.sessionID)
	if err != nil {
		return nil, Stats{}, err
	}
	cur.sessionID = res.SessionID
	if res.Exhausted {
		cur.exhausted = true
	}
	return res.Matches, res.Stats, nil
}

// Exhausted reports whether the traversal has covered the whole
// subhypercube.
func (cur *Cursor) Exhausted() bool { return cur.exhausted }
