package core

import (
	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

// Wire type IDs of the index protocol. IDs 1–31 belong to package
// core; chord owns 32–63 and invindex 64–95. Never reuse or renumber a
// live ID — the registry panics on conflicts, and mixed-version fleets
// would misparse each other.
const (
	wireMsgInsertEntry    = 1
	wireRespAck           = 2
	wireMsgDeleteEntry    = 3
	wireRespDeleteEntry   = 4
	wireMsgPinQuery       = 5
	wireRespPinQuery      = 6
	wireMsgTQuery         = 7
	wireRespTQuery        = 8
	wireMsgSubQuery       = 9
	wireRespSubQuery      = 10
	wireMsgSubQueryBatch  = 11
	wireRespSubQueryBatch = 12
	wireMsgBulkInsert     = 13
	wireMsgMigrateChunk   = 14
	wireRespMigrateChunk  = 15
	wireMsgMigrateCommit  = 16
	wireRespMigrateCommit = 17
	wireMsgSoftPromote    = 18
	wireMsgSoftInvalidate = 19
)

// registerWireCodecs binds every index-protocol message to its wire
// type ID; called from RegisterTypes alongside the gob registration.
func registerWireCodecs() {
	wire.Register[msgInsertEntry](wireMsgInsertEntry)
	wire.Register[respAck](wireRespAck)
	wire.Register[msgDeleteEntry](wireMsgDeleteEntry)
	wire.Register[respDeleteEntry](wireRespDeleteEntry)
	wire.Register[msgPinQuery](wireMsgPinQuery)
	wire.Register[respPinQuery](wireRespPinQuery)
	wire.Register[msgTQuery](wireMsgTQuery)
	wire.Register[respTQuery](wireRespTQuery)
	wire.Register[msgSubQuery](wireMsgSubQuery)
	wire.Register[respSubQuery](wireRespSubQuery)
	wire.Register[msgSubQueryBatch](wireMsgSubQueryBatch)
	wire.Register[respSubQueryBatch](wireRespSubQueryBatch)
	wire.Register[msgBulkInsert](wireMsgBulkInsert)
	wire.Register[msgMigrateChunk](wireMsgMigrateChunk)
	wire.Register[respMigrateChunk](wireRespMigrateChunk)
	wire.Register[msgMigrateCommit](wireMsgMigrateCommit)
	wire.Register[respMigrateCommit](wireRespMigrateCommit)
	wire.Register[msgSoftPromote](wireMsgSoftPromote)
	wire.Register[msgSoftInvalidate](wireMsgSoftInvalidate)
}

// Shared field helpers. Matches carry two strings each, so the
// per-frame string arena in wire.Reader makes a batch of thousands of
// matches cost one string allocation total.

func marshalMatch(w *wire.Writer, m *Match) {
	w.String(m.ObjectID)
	w.String(m.SetKey)
	w.Uvarint(m.Vertex)
	w.Int(m.Depth)
}

func unmarshalMatch(r *wire.Reader, m *Match) {
	m.ObjectID = r.String()
	m.SetKey = r.String()
	m.Vertex = r.Uvarint()
	m.Depth = r.Int()
}

// minMatchBytes is the smallest encoding of one Match (two empty
// strings + vertex + depth); Count uses it to bound allocations.
const minMatchBytes = 4

func marshalMatches(w *wire.Writer, ms []Match) {
	w.Uvarint(uint64(len(ms)))
	for i := range ms {
		marshalMatch(w, &ms[i])
	}
}

func unmarshalMatches(r *wire.Reader) []Match {
	n := r.Count(minMatchBytes)
	if n == 0 {
		return nil
	}
	ms := make([]Match, n)
	for i := range ms {
		unmarshalMatch(r, &ms[i])
	}
	return ms
}

func marshalEdges(w *wire.Writer, es []wireEdge) {
	w.Uvarint(uint64(len(es)))
	for _, e := range es {
		w.Uvarint(e.Vertex)
		w.Int(e.Dim)
	}
}

func unmarshalEdges(r *wire.Reader) []wireEdge {
	n := r.Count(2)
	if n == 0 {
		return nil
	}
	es := make([]wireEdge, n)
	for i := range es {
		es[i].Vertex = r.Uvarint()
		es[i].Dim = r.Int()
	}
	return es
}

func marshalBulkEntries(w *wire.Writer, es []BulkEntry) {
	w.Uvarint(uint64(len(es)))
	for i := range es {
		w.String(es[i].Instance)
		w.Uvarint(es[i].Vertex)
		w.String(es[i].SetKey)
		w.String(es[i].ObjectID)
	}
}

func unmarshalBulkEntries(r *wire.Reader) []BulkEntry {
	n := r.Count(4)
	if n == 0 {
		return nil
	}
	es := make([]BulkEntry, n)
	for i := range es {
		es[i].Instance = r.String()
		es[i].Vertex = r.Uvarint()
		es[i].SetKey = r.String()
		es[i].ObjectID = r.String()
	}
	return es
}

func marshalCursor(w *wire.Writer, c *wireCursor) {
	w.Bool(c.Started)
	w.String(c.Instance)
	w.Uvarint(c.Vertex)
	w.String(c.SetKey)
	w.String(c.ObjectID)
}

func unmarshalCursor(r *wire.Reader, c *wireCursor) {
	c.Started = r.Bool()
	c.Instance = r.String()
	c.Vertex = r.Uvarint()
	c.SetKey = r.String()
	c.ObjectID = r.String()
}

func (m *msgInsertEntry) MarshalWire(w *wire.Writer) {
	w.String(m.Instance)
	w.Uvarint(m.Vertex)
	w.String(m.SetKey)
	w.String(m.ObjectID)
	w.String(m.ClientID)
}

func (m *msgInsertEntry) UnmarshalWire(r *wire.Reader) error {
	m.Instance = r.String()
	m.Vertex = r.Uvarint()
	m.SetKey = r.String()
	m.ObjectID = r.String()
	m.ClientID = r.String()
	return r.Err()
}

func (m *respAck) MarshalWire(w *wire.Writer)         {}
func (m *respAck) UnmarshalWire(r *wire.Reader) error { return r.Err() }

func (m *msgDeleteEntry) MarshalWire(w *wire.Writer) {
	w.String(m.Instance)
	w.Uvarint(m.Vertex)
	w.String(m.SetKey)
	w.String(m.ObjectID)
	w.String(m.ClientID)
}

func (m *msgDeleteEntry) UnmarshalWire(r *wire.Reader) error {
	m.Instance = r.String()
	m.Vertex = r.Uvarint()
	m.SetKey = r.String()
	m.ObjectID = r.String()
	m.ClientID = r.String()
	return r.Err()
}

func (m *respDeleteEntry) MarshalWire(w *wire.Writer)         { w.Bool(m.Found) }
func (m *respDeleteEntry) UnmarshalWire(r *wire.Reader) error { m.Found = r.Bool(); return r.Err() }

func (m *msgPinQuery) MarshalWire(w *wire.Writer) {
	w.String(m.Instance)
	w.Uvarint(m.Vertex)
	w.String(m.SetKey)
	w.String(m.ClientID)
	w.Bool(m.Relay)
}

func (m *msgPinQuery) UnmarshalWire(r *wire.Reader) error {
	m.Instance = r.String()
	m.Vertex = r.Uvarint()
	m.SetKey = r.String()
	m.ClientID = r.String()
	m.Relay = r.Bool()
	return r.Err()
}

func (m *respPinQuery) MarshalWire(w *wire.Writer) {
	w.Uvarint(uint64(len(m.ObjectIDs)))
	for _, id := range m.ObjectIDs {
		w.String(id)
	}
}

func (m *respPinQuery) UnmarshalWire(r *wire.Reader) error {
	n := r.Count(1)
	if n > 0 {
		m.ObjectIDs = make([]string, n)
		for i := range m.ObjectIDs {
			m.ObjectIDs[i] = r.String()
		}
	}
	return r.Err()
}

func (m *msgTQuery) MarshalWire(w *wire.Writer) {
	w.String(m.Instance)
	w.Int(m.Dim)
	w.Uvarint(m.Vertex)
	w.String(m.QueryKey)
	w.Int(m.Threshold)
	w.Int(int(m.Order))
	w.Bool(m.Cumulative)
	w.U64(m.SessionID)
	w.Bool(m.NoCache)
	w.Bool(m.WantTrace)
	w.String(m.ClientID)
	w.Varint(m.DeadlineUnixNano)
	w.String(m.RefineFromKey)
	w.Uvarint(m.RefineFromVertex)
	w.Bool(m.SoftOnly)
	w.Int(int(m.Class))
	w.U64(m.DimMask)
}

func (m *msgTQuery) UnmarshalWire(r *wire.Reader) error {
	m.Instance = r.String()
	m.Dim = r.Int()
	m.Vertex = r.Uvarint()
	m.QueryKey = r.String()
	m.Threshold = r.Int()
	m.Order = TraversalOrder(r.Int())
	m.Cumulative = r.Bool()
	m.SessionID = r.U64()
	m.NoCache = r.Bool()
	m.WantTrace = r.Bool()
	m.ClientID = r.String()
	m.DeadlineUnixNano = r.Varint()
	m.RefineFromKey = r.String()
	m.RefineFromVertex = r.Uvarint()
	m.SoftOnly = r.Bool()
	m.Class = QueryClass(r.Int())
	m.DimMask = r.U64()
	return r.Err()
}

func (m *respTQuery) MarshalWire(w *wire.Writer) {
	marshalMatches(w, m.Matches)
	w.Bool(m.Exhausted)
	w.U64(m.SessionID)
	w.Int(m.SubNodes)
	w.Int(m.SubMsgs)
	w.Int(m.Rounds)
	w.Int(m.FailedNodes)
	w.Int(m.PhysFrames)
	w.Bool(m.CacheHit)
	w.Int(m.ErrCode)
	w.Uvarint(uint64(len(m.Trace)))
	for _, ts := range m.Trace {
		w.Uvarint(ts.Vertex)
		w.Int(ts.Matches)
		w.Bool(ts.Failed)
	}
	w.Bool(m.RefineHit)
	w.Uvarint(uint64(len(m.SoftAddrs)))
	for _, a := range m.SoftAddrs {
		w.String(a)
	}
}

func (m *respTQuery) UnmarshalWire(r *wire.Reader) error {
	m.Matches = unmarshalMatches(r)
	m.Exhausted = r.Bool()
	m.SessionID = r.U64()
	m.SubNodes = r.Int()
	m.SubMsgs = r.Int()
	m.Rounds = r.Int()
	m.FailedNodes = r.Int()
	m.PhysFrames = r.Int()
	m.CacheHit = r.Bool()
	m.ErrCode = r.Int()
	if n := r.Count(3); n > 0 {
		m.Trace = make([]TraceStep, n)
		for i := range m.Trace {
			m.Trace[i].Vertex = r.Uvarint()
			m.Trace[i].Matches = r.Int()
			m.Trace[i].Failed = r.Bool()
		}
	}
	m.RefineHit = r.Bool()
	if n := r.Count(1); n > 0 {
		m.SoftAddrs = make([]string, n)
		for i := range m.SoftAddrs {
			m.SoftAddrs[i] = r.String()
		}
	}
	return r.Err()
}

func (m *msgSubQuery) MarshalWire(w *wire.Writer) {
	w.String(m.Instance)
	w.Int(m.Dim)
	w.Uvarint(m.Vertex)
	w.Uvarint(m.Root)
	w.String(m.QueryKey)
	w.Int(m.Limit)
	w.Int(m.Skip)
	w.Int(m.GenDim)
	w.Bool(m.Relay)
	w.Int(int(m.Class))
}

func (m *msgSubQuery) UnmarshalWire(r *wire.Reader) error {
	m.Instance = r.String()
	m.Dim = r.Int()
	m.Vertex = r.Uvarint()
	m.Root = r.Uvarint()
	m.QueryKey = r.String()
	m.Limit = r.Int()
	m.Skip = r.Int()
	m.GenDim = r.Int()
	m.Relay = r.Bool()
	m.Class = QueryClass(r.Int())
	return r.Err()
}

func (m *respSubQuery) MarshalWire(w *wire.Writer) {
	marshalMatches(w, m.Matches)
	w.Int(m.Remaining)
	marshalEdges(w, m.Children)
}

func (m *respSubQuery) UnmarshalWire(r *wire.Reader) error {
	m.Matches = unmarshalMatches(r)
	m.Remaining = r.Int()
	m.Children = unmarshalEdges(r)
	return r.Err()
}

func (m *msgSubQueryBatch) MarshalWire(w *wire.Writer) {
	w.String(m.Instance)
	w.Int(m.Dim)
	w.Uvarint(m.Root)
	w.String(m.QueryKey)
	w.Int(m.Limit)
	w.Varint(m.DeadlineUnixNano)
	w.Uvarint(uint64(len(m.Units)))
	for _, u := range m.Units {
		w.Uvarint(u.Vertex)
		w.Int(u.Skip)
		w.Int(u.GenDim)
	}
	w.Int(int(m.Class))
}

func (m *msgSubQueryBatch) UnmarshalWire(r *wire.Reader) error {
	m.Instance = r.String()
	m.Dim = r.Int()
	m.Root = r.Uvarint()
	m.QueryKey = r.String()
	m.Limit = r.Int()
	m.DeadlineUnixNano = r.Varint()
	if n := r.Count(3); n > 0 {
		m.Units = make([]wireUnit, n)
		for i := range m.Units {
			m.Units[i].Vertex = r.Uvarint()
			m.Units[i].Skip = r.Int()
			m.Units[i].GenDim = r.Int()
		}
	}
	m.Class = QueryClass(r.Int())
	return r.Err()
}

// respSubQueryBatch is the near-zero-copy path: the encoder streams
// every unit's match slice — the shard-published immutable slices —
// straight into the frame buffer with a frame-level total up front,
// and the decoder materializes all matches of the frame into ONE arena
// []Match (plus the Reader's one string arena), sub-sliced per unit.
func (m *respSubQueryBatch) MarshalWire(w *wire.Writer) {
	total := 0
	for i := range m.Results {
		total += len(m.Results[i].Matches)
	}
	w.Uvarint(uint64(total))
	w.Uvarint(uint64(len(m.Results)))
	for i := range m.Results {
		u := &m.Results[i]
		marshalMatches(w, u.Matches)
		w.Int(u.Remaining)
		marshalEdges(w, u.Children)
		w.Int(u.ErrCode)
	}
}

func (m *respSubQueryBatch) UnmarshalWire(r *wire.Reader) error {
	total := r.Count(minMatchBytes)
	nunits := r.Count(1)
	if nunits == 0 {
		return r.Err()
	}
	arena := make([]Match, 0, total)
	m.Results = make([]respSubUnit, nunits)
	for i := range m.Results {
		u := &m.Results[i]
		n := r.Count(minMatchBytes)
		if n > 0 {
			start := len(arena)
			if start+n > cap(arena) {
				// Inconsistent frame-level total; grow rather than trust it.
				grown := make([]Match, start, start+n)
				copy(grown, arena)
				arena = grown
			}
			arena = arena[:start+n]
			for j := start; j < start+n; j++ {
				unmarshalMatch(r, &arena[j])
			}
			// Three-index slice: a later append by any holder cannot
			// scribble over the next unit's window.
			u.Matches = arena[start : start+n : start+n]
		}
		u.Remaining = r.Int()
		u.Children = unmarshalEdges(r)
		u.ErrCode = r.Int()
	}
	return r.Err()
}

func (m *msgBulkInsert) MarshalWire(w *wire.Writer) { marshalBulkEntries(w, m.Entries) }

func (m *msgBulkInsert) UnmarshalWire(r *wire.Reader) error {
	m.Entries = unmarshalBulkEntries(r)
	return r.Err()
}

func (m *msgMigrateChunk) MarshalWire(w *wire.Writer) {
	w.U64(m.NewID)
	w.U64(m.OwnerID)
	marshalCursor(w, &m.Cursor)
	w.Int(m.MaxEntries)
	w.Int(m.MaxBytes)
	w.Varint(m.DeadlineUnixNano)
}

func (m *msgMigrateChunk) UnmarshalWire(r *wire.Reader) error {
	m.NewID = r.U64()
	m.OwnerID = r.U64()
	unmarshalCursor(r, &m.Cursor)
	m.MaxEntries = r.Int()
	m.MaxBytes = r.Int()
	m.DeadlineUnixNano = r.Varint()
	return r.Err()
}

func (m *respMigrateChunk) MarshalWire(w *wire.Writer) {
	marshalBulkEntries(w, m.Entries)
	marshalCursor(w, &m.Cursor)
	w.Bool(m.Done)
}

func (m *respMigrateChunk) UnmarshalWire(r *wire.Reader) error {
	m.Entries = unmarshalBulkEntries(r)
	unmarshalCursor(r, &m.Cursor)
	m.Done = r.Bool()
	return r.Err()
}

func (m *msgMigrateCommit) MarshalWire(w *wire.Writer) {
	w.U64(m.NewID)
	w.U64(m.OwnerID)
	w.Varint(m.DeadlineUnixNano)
}

func (m *msgMigrateCommit) UnmarshalWire(r *wire.Reader) error {
	m.NewID = r.U64()
	m.OwnerID = r.U64()
	m.DeadlineUnixNano = r.Varint()
	return r.Err()
}

func (m *respMigrateCommit) MarshalWire(w *wire.Writer)         { w.Int(m.Dropped) }
func (m *respMigrateCommit) UnmarshalWire(r *wire.Reader) error { m.Dropped = r.Int(); return r.Err() }

func (m *msgSoftPromote) MarshalWire(w *wire.Writer) {
	w.String(m.Instance)
	w.Uvarint(m.Vertex)
	w.U64(m.Gen)
	marshalBulkEntries(w, m.Entries)
	w.Bool(m.Done)
}

func (m *msgSoftPromote) UnmarshalWire(r *wire.Reader) error {
	m.Instance = r.String()
	m.Vertex = r.Uvarint()
	m.Gen = r.U64()
	m.Entries = unmarshalBulkEntries(r)
	m.Done = r.Bool()
	return r.Err()
}

func (m *msgSoftInvalidate) MarshalWire(w *wire.Writer) {
	w.String(m.Instance)
	w.Uvarint(m.Vertex)
	w.U64(m.Gen)
	w.String(m.SetKey)
}

func (m *msgSoftInvalidate) UnmarshalWire(r *wire.Reader) error {
	m.Instance = r.String()
	m.Vertex = r.Uvarint()
	m.Gen = r.U64()
	m.SetKey = r.String()
	return r.Err()
}
