package core

import (
	"context"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// newHotDeployment is newDeployment with the hot-vertex layer enabled:
// soft replication onto hotReplicas peers after hotThreshold fresh
// queries of a root.
func newHotDeployment(t *testing.T, r, nServers, cacheCap, hotReplicas, hotThreshold int) *deployment {
	t.Helper()
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	hasher := keyword.MustNewHasher(r, 42)
	addrs := make([]transport.Addr, nServers)
	for i := range addrs {
		addrs[i] = transport.Addr("ix-" + strconv.Itoa(i))
	}
	resolver := FuncResolver(func(v hypercube.Vertex) transport.Addr {
		return addrs[int(uint64(v)%uint64(nServers))]
	})
	servers := make([]*Server, nServers)
	for i := range servers {
		srv, err := NewServer(ServerConfig{
			Hasher:              hasher,
			Resolver:            resolver,
			Sender:              net,
			CacheCapacity:       cacheCap,
			HotReplicas:         hotReplicas,
			HotPromoteThreshold: hotThreshold,
		})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		servers[i] = srv
		if _, err := net.Bind(addrs[i], srv.Handler); err != nil {
			t.Fatalf("Bind: %v", err)
		}
	}
	client, err := NewClient(hasher, resolver, net)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return &deployment{net: net, hasher: hasher, servers: servers, addrs: addrs, client: client}
}

// spreadClient builds a second client of the deployment with request
// spreading enabled.
func spreadClient(t *testing.T, d *deployment) *Client {
	t.Helper()
	resolver := FuncResolver(func(v hypercube.Vertex) transport.Addr {
		return d.addrs[int(uint64(v)%uint64(len(d.addrs)))]
	})
	c, err := NewClient(d.hasher, resolver, d.net)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	c.SetSpread(true)
	return c
}

// promotedAcrossFleet collects every server's promoted-root fingerprint
// in sorted order.
func promotedAcrossFleet(d *deployment) []string {
	var out []string
	for _, srv := range d.servers {
		out = append(out, srv.HotPromotedRoots()...)
	}
	sort.Strings(out)
	return out
}

// Crossing the promotion threshold soft-replicates the root, and a
// spreading client's searches are served by the replicas with answers
// byte-identical to the owner's.
func TestHotRootPromotionSpreadsByteIdentical(t *testing.T) {
	d := newHotDeployment(t, 6, 4, 100000, 2, 3)
	ctx := context.Background()
	corpus(t, d, 150, 91)
	q := keyword.NewSet("isp")

	want, err := d.client.SupersetSearch(ctx, q, 10, SearchOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.client.SupersetSearch(ctx, q, 10, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	rootSrv := d.serverFor(d.hasher.Vertex(q))
	if roots := rootSrv.HotPromotedRoots(); len(roots) == 0 {
		t.Fatal("root not promoted after crossing the threshold")
	}

	sc := spreadClient(t, d)
	softServes := 0
	for i := 0; i < 8; i++ {
		res, err := sc.SupersetSearch(ctx, q, 10, SearchOptions{})
		if err != nil {
			t.Fatalf("spread search %d: %v", i, err)
		}
		if res.Stats.SoftServed {
			softServes++
		}
		if !reflect.DeepEqual(res.Matches, want.Matches) {
			t.Fatalf("spread search %d differs from owner answer (softServed=%v)", i, res.Stats.SoftServed)
		}
	}
	if softServes == 0 {
		t.Error("no spread search was served by a soft replica")
	}
}

// The same serial query log over two identically configured fleets
// promotes the identical root set: the layer is deterministic (no
// clocks, no randomness).
func TestHotPromotionDeterministic(t *testing.T) {
	queriesOf := func(d *deployment) {
		t.Helper()
		ctx := context.Background()
		corpus(t, d, 120, 97)
		log := []keyword.Set{
			keyword.NewSet("isp"), keyword.NewSet("news"), keyword.NewSet("isp"),
			keyword.NewSet("mp3", "video"), keyword.NewSet("isp"), keyword.NewSet("news"),
			keyword.NewSet("news"), keyword.NewSet("isp"), keyword.NewSet("mp3", "video"),
			keyword.NewSet("news"), keyword.NewSet("mp3", "video"), keyword.NewSet("game"),
		}
		for _, q := range log {
			if _, err := d.client.SupersetSearch(ctx, q, 5, SearchOptions{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	d1 := newHotDeployment(t, 6, 4, 100000, 2, 3)
	queriesOf(d1)
	d2 := newHotDeployment(t, 6, 4, 100000, 2, 3)
	queriesOf(d2)

	p1, p2 := promotedAcrossFleet(d1), promotedAcrossFleet(d2)
	if len(p1) == 0 {
		t.Fatal("query log promoted nothing")
	}
	if !equalStrings(p1, p2) {
		t.Errorf("promotion sets differ across identical runs:\n d1 %v\n d2 %v", p1, p2)
	}
}

// Mutating a promoted vertex demotes it everywhere: the owner drops its
// advertisement, the replicas drop their copies, and a spreading client
// transparently falls back to the owner for the fresh answer.
func TestSoftCopyInvalidatedOnMutation(t *testing.T) {
	d := newHotDeployment(t, 6, 4, 100000, 2, 3)
	ctx := context.Background()
	q := keyword.NewSet("hotdoc", "alpha")
	for i := 0; i < 4; i++ {
		if _, err := d.client.Insert(ctx, obj("seed-"+strconv.Itoa(i), "hotdoc", "alpha")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	rootSrv := d.serverFor(d.hasher.Vertex(q))
	if len(rootSrv.HotPromotedRoots()) == 0 {
		t.Fatal("root not promoted")
	}

	sc := spreadClient(t, d)
	soft := false
	for i := 0; i < 4 && !soft; i++ {
		res, err := sc.SupersetSearch(ctx, q, All, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		soft = soft || res.Stats.SoftServed
	}
	if !soft {
		t.Fatal("spread client never reached a soft replica before the mutation")
	}

	// The new entry has exactly the query's keyword set, so it lands on
	// the promoted root vertex itself and must demote it.
	if _, err := d.client.Insert(ctx, obj("fresh", "hotdoc", "alpha")); err != nil {
		t.Fatal(err)
	}
	if roots := rootSrv.HotPromotedRoots(); len(roots) != 0 {
		t.Fatalf("root still promoted after mutation: %v", roots)
	}
	for i := 0; i < 6; i++ {
		res, err := sc.SupersetSearch(ctx, q, All, SearchOptions{})
		if err != nil {
			t.Fatalf("post-mutation search %d: %v", i, err)
		}
		ids := matchIDs(res.Matches)
		if !equalStrings(ids, []string{"fresh", "seed-0", "seed-1", "seed-2", "seed-3"}) {
			t.Fatalf("post-mutation search %d served stale results: %v (softServed=%v)",
				i, ids, res.Stats.SoftServed)
		}
	}
}

// Generation discipline on the replica side: stale promotions never
// overwrite newer copies, and invalidations drop only generations at or
// below their own.
func TestSoftStoreGenerationOrdering(t *testing.T) {
	st := newSoftStore()
	mk := func(gen uint64, id string, done bool) msgSoftPromote {
		return msgSoftPromote{
			Instance: "main", Vertex: 7, Gen: gen, Done: done,
			Entries: []BulkEntry{{Instance: "main", Vertex: 7, SetKey: "a", ObjectID: id}},
		}
	}
	st.applyPromote(mk(2, "new", true))
	if st.count() != 1 {
		t.Fatalf("live copies = %d, want 1", st.count())
	}
	// A stale full push must not displace the live gen-2 copy.
	st.applyPromote(mk(1, "old", true))
	tbl := st.lookup("main", 7)
	if tbl == nil {
		t.Fatal("live copy vanished")
	}
	if _, ok := tbl.entries["a"].objects["new"]; !ok {
		t.Error("stale generation displaced the live copy")
	}
	// An invalidation older than the live copy is ignored...
	st.applyInvalidate(msgSoftInvalidate{Instance: "main", Vertex: 7, Gen: 1})
	if st.count() != 1 {
		t.Error("stale invalidation dropped a newer copy")
	}
	// ...while one at the live generation drops it.
	st.applyInvalidate(msgSoftInvalidate{Instance: "main", Vertex: 7, Gen: 2})
	if st.count() != 0 {
		t.Error("invalidation at the live generation did not drop the copy")
	}
	// A half-pushed (no Done) copy never serves.
	st.applyPromote(mk(3, "partial", false))
	if st.lookup("main", 7) != nil {
		t.Error("pending copy served before its Done chunk")
	}
}

// Race hammer over the whole hot-vertex layer: concurrent owner-path
// and spread-path searches, promotions, demotions-by-mutation and
// result-cache invalidations. Run under -race (make chaos); the final
// quiesced comparison pins that no stale soft copy survives the churn.
func TestHotCachePromotionHammer(t *testing.T) {
	d := newHotDeployment(t, 5, 4, 4096, 2, 4)
	ctx := context.Background()
	corpus(t, d, 80, 101)
	hot := keyword.NewSet("hotdoc", "beta")
	for i := 0; i < 3; i++ {
		if _, err := d.client.Insert(ctx, obj("hot-"+strconv.Itoa(i), "hotdoc", "beta")); err != nil {
			t.Fatal(err)
		}
	}
	queries := []keyword.Set{hot, keyword.NewSet("isp"), keyword.NewSet("news"), keyword.NewSet("mp3")}

	const iters = 150
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(i+w)%len(queries)]
				_, _ = d.client.SupersetSearch(ctx, q, 10, SearchOptions{})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sc := spreadClient(t, d)
		for i := 0; i < iters; i++ {
			_, _ = sc.SupersetSearch(ctx, hot, 10, SearchOptions{})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			o := obj("churn", "hotdoc", "beta")
			_, _ = d.client.Insert(ctx, o)
			_, _, _ = d.client.Delete(ctx, o)
		}
	}()
	wg.Wait()

	// One serial mutation after quiescing: searches in flight during the
	// churn may have cached results that predate the last concurrent
	// mutation (the documented cache staleness window); a mutation with
	// no query in flight invalidates serially, so everything after it is
	// exact.
	flush := obj("churn", "hotdoc", "beta")
	if _, err := d.client.Insert(ctx, flush); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.client.Delete(ctx, flush); err != nil {
		t.Fatal(err)
	}

	// Quiesced: every mutation demoted the root synchronously and the
	// mid-push epoch check kills stale promotions, so owner, cache and
	// any surviving soft copies must agree byte-for-byte.
	want, err := d.client.SupersetSearch(ctx, hot, All, SearchOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	sc := spreadClient(t, d)
	for i := 0; i < 6; i++ {
		res, err := sc.SupersetSearch(ctx, hot, All, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Matches, want.Matches) {
			t.Fatalf("post-hammer spread search %d disagrees with owner (softServed=%v):\n got %v\nwant %v",
				i, res.Stats.SoftServed, matchIDs(res.Matches), matchIDs(want.Matches))
		}
	}
}
