package core

import (
	"strconv"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

func hotMatches(n int, tag string) []Match {
	ms := make([]Match, n)
	for i := range ms {
		ms[i] = Match{ObjectID: tag + strconv.Itoa(i)}
	}
	return ms
}

// A burst of one-off tail entries must not displace popular residents:
// admission rejects a candidate the sketch estimates to be colder than
// any would-be victim.
func TestHotCacheAdmissionProtectsPopularEntries(t *testing.T) {
	c := newHotCache(8, 0)
	c.put("main", supersetPred("qa", keyword.NewSet("a")), hotMatches(4, "a"), true)
	c.put("main", supersetPred("qb", keyword.NewSet("b")), hotMatches(4, "b"), true)
	// Make both residents popular.
	for i := 0; i < 10; i++ {
		c.get("main", supersetPred("qa", keyword.Set{}), 1)
		c.get("main", supersetPred("qb", keyword.Set{}), 1)
	}
	// A one-off candidate (sketch count 0) needs to evict and must lose
	// the admission contest.
	c.put("main", supersetPred("cold", keyword.NewSet("c")), hotMatches(4, "c"), true)
	if _, _, ok := c.get("main", supersetPred("cold", keyword.Set{}), 1); ok {
		t.Error("one-off candidate displaced popular residents")
	}
	if _, _, ok := c.get("main", supersetPred("qa", keyword.Set{}), 1); !ok {
		t.Error("popular entry qa evicted by tail traffic")
	}
	if _, _, ok := c.get("main", supersetPred("qb", keyword.Set{}), 1); !ok {
		t.Error("popular entry qb evicted by tail traffic")
	}
}

// A candidate that becomes more popular than a resident is admitted,
// displacing the coldest victim.
func TestHotCacheAdmissionAcceptsHotterCandidate(t *testing.T) {
	c := newHotCache(8, 0)
	c.put("main", supersetPred("qa", keyword.NewSet("a")), hotMatches(4, "a"), true)
	c.put("main", supersetPred("qb", keyword.NewSet("b")), hotMatches(4, "b"), true)
	c.get("main", supersetPred("qa", keyword.Set{}), 1) // qa warmer than qb
	c.get("main", supersetPred("qa", keyword.Set{}), 1)
	// The candidate's misses feed the sketch until it beats the victims.
	for i := 0; i < 30; i++ {
		c.get("main", supersetPred("hot", keyword.Set{}), 1)
	}
	c.put("main", supersetPred("hot", keyword.NewSet("h")), hotMatches(4, "h"), true)
	if _, _, ok := c.get("main", supersetPred("hot", keyword.Set{}), 1); !ok {
		t.Fatal("frequently-requested candidate was not admitted")
	}
	if c.unitCount() > 8 {
		t.Errorf("units %d exceed capacity 8 after admission", c.unitCount())
	}
}

// Re-referenced entries graduate to the protected segment and survive a
// stream of one-off insertions that churns probation.
func TestHotCacheProtectedSegmentSurvivesScan(t *testing.T) {
	c := newHotCache(10, 0)
	c.put("main", supersetPred("hot", keyword.NewSet("h")), hotMatches(2, "h"), true)
	c.get("main", supersetPred("hot", keyword.Set{}), 1) // graduate to protected
	for i := 0; i < 20; i++ {
		key := "scan" + strconv.Itoa(i)
		c.put("main", supersetPred(key, keyword.NewSet(key)), hotMatches(2, key), true)
		c.get("main", supersetPred(key, keyword.Set{}), 1)
	}
	if _, _, ok := c.get("main", supersetPred("hot", keyword.Set{}), 1); !ok {
		t.Error("protected entry evicted by scan traffic")
	}
}

func TestHotCacheOversizedResultNotStored(t *testing.T) {
	c := newHotCache(3, 0)
	c.put("main", supersetPred("big", keyword.NewSet("a")), hotMatches(5, "x"), true)
	if _, _, ok := c.get("main", supersetPred("big", keyword.Set{}), 1); ok {
		t.Error("oversized result stored")
	}
}

func TestHotCacheDisabled(t *testing.T) {
	c := newHotCache(0, 0)
	c.put("main", supersetPred("q", keyword.NewSet("a")), hotMatches(1, "x"), true)
	if _, _, ok := c.get("main", supersetPred("q", keyword.Set{}), 1); ok {
		t.Error("disabled cache returned a hit")
	}
}

// Below-target windows grow the capacity (up to 4x base); sustained
// above-target windows shrink it back toward the base.
func TestHotCacheAutoTune(t *testing.T) {
	c := newHotCache(8, 0.5)
	// A full window of misses: hit ratio 0 < 0.5 target, so grow.
	for i := 0; i < tuneWindow; i++ {
		c.get("main", supersetPred("miss"+strconv.Itoa(i), keyword.Set{}), 1)
	}
	grown := c.capacityUnits()
	if grown <= 8 {
		t.Fatalf("capacity %d did not grow after an all-miss window", grown)
	}
	if grown > 32 {
		t.Fatalf("capacity %d exceeds the 4x bound", grown)
	}
	// Windows of pure hits: ratio 1.0 >= target+0.05, so shrink back.
	c.put("main", supersetPred("q", keyword.NewSet("a")), hotMatches(1, "x"), true)
	for w := 0; w < 20 && c.capacityUnits() > 8; w++ {
		for i := 0; i < tuneWindow; i++ {
			c.get("main", supersetPred("q", keyword.Set{}), 1)
		}
	}
	if got := c.capacityUnits(); got != 8 {
		t.Errorf("capacity %d did not shrink back to base 8", got)
	}
}

// Invalidation is instance-scoped for the hot policy exactly as for the
// FIFO policy: a mutation event in one instance must not clear another
// instance's cached results for the same query.
func TestHotCacheInvalidateInstanceScoped(t *testing.T) {
	c := newHotCache(100, 0)
	c.put("main", supersetPred("qa", keyword.NewSet("a")), hotMatches(1, "m"), true)
	c.put("other", supersetPred("qa", keyword.NewSet("a")), hotMatches(1, "o"), true)
	c.invalidateSubsetsOf("main", keyword.NewSet("a", "b"))
	if _, _, ok := c.get("main", supersetPred("qa", keyword.Set{}), 1); ok {
		t.Error("main-instance entry should be invalidated")
	}
	if _, _, ok := c.get("other", supersetPred("qa", keyword.Set{}), 1); !ok {
		t.Error("other-instance entry wrongly invalidated")
	}
}

// The hot policy also honors the subset-closure semantics (a change
// under set S invalidates every cached query that is a subset of S).
func TestHotCacheInvalidateSubsets(t *testing.T) {
	c := newHotCache(100, 0)
	c.put("main", supersetPred("qa", keyword.NewSet("a")), hotMatches(1, "1"), true)
	c.put("main", supersetPred("qab", keyword.NewSet("a", "b")), hotMatches(1, "2"), true)
	c.put("main", supersetPred("qc", keyword.NewSet("c")), hotMatches(1, "3"), true)
	c.invalidateSubsetsOf("main", keyword.NewSet("a", "b", "x"))
	if _, _, ok := c.get("main", supersetPred("qa", keyword.Set{}), 1); ok {
		t.Error("query {a} should be invalidated")
	}
	if _, _, ok := c.get("main", supersetPred("qab", keyword.Set{}), 1); ok {
		t.Error("query {a,b} should be invalidated")
	}
	if _, _, ok := c.get("main", supersetPred("qc", keyword.Set{}), 1); !ok {
		t.Error("query {c} should survive")
	}
}

// The per-instance snapshot decomposes the cache-wide totals exactly.
func TestHotCacheSnapshotPerInstance(t *testing.T) {
	c := newHotCache(100, 0)
	c.put("main", supersetPred("qa", keyword.NewSet("a")), hotMatches(2, "m"), true)
	c.put("aux", supersetPred("qb", keyword.NewSet("b")), hotMatches(3, "x"), true)
	c.get("main", supersetPred("qa", keyword.Set{}), 1)   // hit
	c.get("main", supersetPred("nope", keyword.Set{}), 1) // miss
	c.get("aux", supersetPred("qb", keyword.Set{}), 1)    // hit
	snap := c.snapshot()
	if snap.Policy != CachePolicyHot {
		t.Errorf("policy %q", snap.Policy)
	}
	if snap.Hits != 2 || snap.Misses != 1 {
		t.Errorf("totals hits=%d misses=%d, want 2/1", snap.Hits, snap.Misses)
	}
	var sumH, sumM uint64
	var sumEntries, sumUnits int
	for _, inst := range snap.PerInstance {
		sumH += inst.Hits
		sumM += inst.Misses
		sumEntries += inst.Entries
		sumUnits += inst.Units
	}
	if sumH != snap.Hits || sumM != snap.Misses {
		t.Errorf("per-instance hit/miss sums %d/%d != totals %d/%d", sumH, sumM, snap.Hits, snap.Misses)
	}
	if sumEntries != snap.Entries || sumUnits != snap.Units {
		t.Errorf("per-instance entry/unit sums %d/%d != totals %d/%d", sumEntries, sumUnits, snap.Entries, snap.Units)
	}
}
