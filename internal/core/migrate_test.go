package core

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/admission"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// wholeRing are range bounds whose kept interval (newID, ownerID]
// covers (essentially) nothing, so every entry of the source migrates.
const (
	wholeRingNew   = 0
	wholeRingOwner = 1
)

// newMigrateServer builds one standalone server on net. dataDir == ""
// keeps it in-memory.
func newMigrateServer(t *testing.T, net *inmem.Network, dataDir string, mig MigrationConfig) *Server {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Hasher:    keyword.MustNewHasher(6, 42),
		Resolver:  FuncResolver(func(v hypercube.Vertex) transport.Addr { return "unused" }),
		Sender:    net,
		DataDir:   dataDir,
		Migration: mig,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// seedEntries fills s with a deterministic multi-instance, multi-vertex
// entry population and returns it in canonical order.
func seedEntries(t *testing.T, s *Server, n int) []BulkEntry {
	t.Helper()
	var out []BulkEntry
	for i := 0; i < n; i++ {
		e := BulkEntry{
			Instance: "inst-" + strconv.Itoa(i%3),
			Vertex:   uint64(i % 7),
			SetKey:   keyword.NewSet("kw"+strconv.Itoa(i%5), "shared").Key(),
			ObjectID: fmt.Sprintf("obj-%03d", i),
		}
		if err := s.insertEntry(e.Instance, hypercube.Vertex(e.Vertex), e.SetKey, e.ObjectID); err != nil {
			t.Fatalf("insert %v: %v", e, err)
		}
		out = append(out, e)
	}
	sortEntries(out)
	return out
}

func sortEntries(es []BulkEntry) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Instance != b.Instance {
			return a.Instance < b.Instance
		}
		if a.Vertex != b.Vertex {
			return a.Vertex < b.Vertex
		}
		if a.SetKey != b.SetKey {
			return a.SetKey < b.SetKey
		}
		return a.ObjectID < b.ObjectID
	})
}

// allEntries enumerates every entry of s non-destructively through the
// chunk protocol itself (one uncapped whole-ring pull).
func allEntries(t *testing.T, s *Server) []BulkEntry {
	t.Helper()
	resp, err := s.migrateChunk(context.Background(), msgMigrateChunk{
		NewID: wholeRingNew, OwnerID: wholeRingOwner,
		MaxEntries: 1 << 30, MaxBytes: 1 << 30,
	})
	if err != nil {
		t.Fatalf("migrateChunk: %v", err)
	}
	if !resp.Done {
		t.Fatalf("uncapped chunk not Done")
	}
	sortEntries(resp.Entries)
	return resp.Entries
}

// TestMigrateChunkPaging: cursor-paged pulls enumerate exactly the
// source's entries — no loss, no duplicates, Done on the final page —
// regardless of the per-chunk entry cap.
func TestMigrateChunkPaging(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	src := newMigrateServer(t, net, "", MigrationConfig{})
	want := seedEntries(t, src, 50)

	for _, cap := range []int{1, 3, 7, 64} {
		var got []BulkEntry
		cursor := wireCursor{}
		pulls := 0
		for {
			resp, err := src.migrateChunk(context.Background(), msgMigrateChunk{
				NewID: wholeRingNew, OwnerID: wholeRingOwner,
				Cursor: cursor, MaxEntries: cap, MaxBytes: 1 << 30,
			})
			if err != nil {
				t.Fatalf("cap=%d: migrateChunk: %v", cap, err)
			}
			if len(resp.Entries) > cap {
				t.Fatalf("cap=%d: chunk returned %d entries", cap, len(resp.Entries))
			}
			got = append(got, resp.Entries...)
			cursor = resp.Cursor
			pulls++
			if resp.Done {
				break
			}
			if len(resp.Entries) == 0 {
				t.Fatalf("cap=%d: empty non-final chunk", cap)
			}
		}
		sorted := append([]BulkEntry(nil), got...)
		sortEntries(sorted)
		if !reflect.DeepEqual(sorted, want) {
			t.Fatalf("cap=%d: paged union mismatch: got %d entries, want %d", cap, len(sorted), len(want))
		}
		if cap < len(want) && pulls < 2 {
			t.Fatalf("cap=%d: expected multiple pulls, got %d", cap, pulls)
		}
	}
}

// TestMigrateChunkByteCap: MaxBytes closes a chunk early even when the
// entry cap has room.
func TestMigrateChunkByteCap(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	src := newMigrateServer(t, net, "", MigrationConfig{})
	seedEntries(t, src, 20)

	resp, err := src.migrateChunk(context.Background(), msgMigrateChunk{
		NewID: wholeRingNew, OwnerID: wholeRingOwner,
		MaxEntries: 1 << 30, MaxBytes: 1,
	})
	if err != nil {
		t.Fatalf("migrateChunk: %v", err)
	}
	if len(resp.Entries) != 1 || resp.Done {
		t.Fatalf("1-byte cap chunk = %d entries, Done=%v; want 1 entry, not done", len(resp.Entries), resp.Done)
	}
}

// TestMigrateChunkRespectsRange: entries whose vertex key stays in
// (NewID, OwnerID] — still the source's after the join — never move.
func TestMigrateChunkRespectsRange(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	src := newMigrateServer(t, net, "", MigrationConfig{})
	entries := seedEntries(t, src, 30)

	// Split the population at the median vertex key: keep ≈ half.
	keys := make([]uint64, 0, len(entries))
	for _, e := range entries {
		keys = append(keys, uint64(VertexKey(e.Instance, hypercube.Vertex(e.Vertex))))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	newID, ownerID := keys[len(keys)/2], keys[len(keys)-1]

	resp, err := src.migrateChunk(context.Background(), msgMigrateChunk{
		NewID: newID, OwnerID: ownerID, MaxEntries: 1 << 30, MaxBytes: 1 << 30,
	})
	if err != nil {
		t.Fatalf("migrateChunk: %v", err)
	}
	if len(resp.Entries) == 0 || len(resp.Entries) == len(entries) {
		t.Fatalf("split pull moved %d of %d entries; want a strict subset", len(resp.Entries), len(entries))
	}
	for _, e := range resp.Entries {
		k := uint64(VertexKey(e.Instance, hypercube.Vertex(e.Vertex)))
		if newID < k && k <= ownerID {
			t.Fatalf("entry %v (key %d) is inside the kept range (%d, %d]", e, k, newID, ownerID)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMigrateEndToEnd: the background manager pulls a whole range in
// small chunks, commits, and leaves source and destination with the
// static outcome — every entry moved exactly once.
func TestMigrateEndToEnd(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	src := newMigrateServer(t, net, "", MigrationConfig{})
	if _, err := net.Bind("src", src.Handler); err != nil {
		t.Fatal(err)
	}
	dst := newMigrateServer(t, net, "", MigrationConfig{ChunkEntries: 5})
	want := seedEntries(t, src, 40)

	dst.EnqueueMigration("src", wholeRingNew, wholeRingOwner)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := dst.WaitMigrationsIdle(ctx); err != nil {
		t.Fatalf("WaitMigrationsIdle: %v", err)
	}

	if got := allEntries(t, dst); !reflect.DeepEqual(got, want) {
		t.Fatalf("destination holds %d entries, want %d", len(got), len(want))
	}
	if left := allEntries(t, src); len(left) != 0 {
		t.Fatalf("source still holds %d entries after commit", len(left))
	}
	st := dst.MigrationStats()
	if st.Commits != 1 || st.Failures != 0 || st.Entries != uint64(len(want)) || st.Chunks < 2 {
		t.Fatalf("stats = %+v; want 1 commit, 0 failures, %d entries, ≥2 chunks", st, len(want))
	}
	if st.Active != 0 {
		t.Fatalf("stats report %d active migrations after idle", st.Active)
	}
	// Re-enqueueing the already-committed range converges to a no-op.
	dst.EnqueueMigration("src", wholeRingNew, wholeRingOwner)
	if err := dst.WaitMigrationsIdle(ctx); err != nil {
		t.Fatalf("WaitMigrationsIdle (re-enqueue): %v", err)
	}
	if got := allEntries(t, dst); !reflect.DeepEqual(got, want) {
		t.Fatalf("re-enqueue changed the destination table")
	}
}

// TestMigrateDuplicateEnqueueNoOp: enqueues for an in-flight range
// dedupe instead of double-pulling (join triggers and
// stabilization-driven triggers overlap freely).
func TestMigrateDuplicateEnqueueNoOp(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	src := newMigrateServer(t, net, "", MigrationConfig{})
	if _, err := net.Bind("src", src.Handler); err != nil {
		t.Fatal(err)
	}
	dst := newMigrateServer(t, net, "", MigrationConfig{ChunkEntries: 1, Throttle: time.Hour})
	seedEntries(t, src, 5)

	dst.EnqueueMigration("src", wholeRingNew, wholeRingOwner)
	waitFor(t, 5*time.Second, func() bool { return dst.MigrationStats().Chunks >= 1 }, "first chunk")
	for i := 0; i < 10; i++ {
		dst.EnqueueMigration("src", wholeRingNew, wholeRingOwner)
	}
	if st := dst.MigrationStats(); st.Active != 1 {
		t.Fatalf("duplicate enqueues spawned %d active migrations, want 1", st.Active)
	}
}

// TestMigrateAbortOnDeadSource: a source that never answers exhausts
// the bounded retries, the migration aborts (failure counted), and the
// window closes — it must not wedge open forever.
func TestMigrateAbortOnDeadSource(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	dst := newMigrateServer(t, net, "", MigrationConfig{
		MaxAttempts: 2, RetryBackoff: time.Millisecond, ChunkTimeout: 50 * time.Millisecond,
	})
	dst.EnqueueMigration("no-such-peer", wholeRingNew, wholeRingOwner)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := dst.WaitMigrationsIdle(ctx); err != nil {
		t.Fatalf("WaitMigrationsIdle: %v", err)
	}
	st := dst.MigrationStats()
	if st.Failures != 1 || st.Commits != 0 {
		t.Fatalf("stats = %+v; want 1 failure, 0 commits", st)
	}
	if dst.migrate.windowOpen() {
		t.Fatalf("window still open after abort")
	}
}

// TestMigrateDoubleReadMergesOldOwner: while the window is open, pin
// and sub-query answers from the new owner are byte-identical to a
// server holding the union of both tables — including skip/limit
// windows, which must be applied after the merge.
func TestMigrateDoubleReadMergesOldOwner(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	src := newMigrateServer(t, net, "", MigrationConfig{})
	if _, err := net.Bind("src", src.Handler); err != nil {
		t.Fatal(err)
	}
	// Freeze the window after the first 1-entry chunk.
	dst := newMigrateServer(t, net, "", MigrationConfig{ChunkEntries: 1, Throttle: time.Hour})
	union := newMigrateServer(t, net, "", MigrationConfig{})

	const inst = "inst-0"
	setA := keyword.NewSet("alpha", "shared")
	setB := keyword.NewSet("beta", "shared")
	v := hypercube.Vertex(3)
	// Source: most of the population. Destination: one locally-born
	// entry the relay can't know about (the healing case).
	for i := 0; i < 6; i++ {
		set := setA
		if i%2 == 1 {
			set = setB
		}
		id := fmt.Sprintf("src-%d", i)
		if err := src.insertEntry(inst, v, set.Key(), id); err != nil {
			t.Fatal(err)
		}
		if err := union.insertEntry(inst, v, set.Key(), id); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.insertEntry(inst, v, setA.Key(), "local-0"); err != nil {
		t.Fatal(err)
	}
	if err := union.insertEntry(inst, v, setA.Key(), "local-0"); err != nil {
		t.Fatal(err)
	}

	dst.EnqueueMigration("src", wholeRingNew, wholeRingOwner)
	waitFor(t, 5*time.Second, func() bool { return dst.MigrationStats().Chunks >= 1 }, "first chunk")

	ctx := context.Background()
	pinGot := dst.pinQueryRead(ctx, inst, v, setA.Key())
	pinWant := union.pinQuery(inst, v, setA.Key())
	if !reflect.DeepEqual(pinGot.ObjectIDs, pinWant.ObjectIDs) {
		t.Fatalf("pin during window = %v, union baseline = %v", pinGot.ObjectIDs, pinWant.ObjectIDs)
	}

	query := keyword.NewSet("shared")
	for _, win := range []struct{ skip, limit int }{{0, -1}, {0, 3}, {2, 2}, {5, -1}, {50, 1}} {
		got, gotRem := dst.scanVertexRead(ctx, 6, inst, v, v, supersetPred(query.Key(), query), win.skip, win.limit)
		want, wantRem := union.scanVertex(inst, v, v, supersetPred(query.Key(), query), win.skip, win.limit)
		if !reflect.DeepEqual(got, want) || gotRem != wantRem {
			t.Fatalf("scan window %+v during migration:\n got %v (rem %d)\nwant %v (rem %d)",
				win, got, gotRem, want, wantRem)
		}
	}
	if st := dst.MigrationStats(); st.DoubleReads == 0 {
		t.Fatalf("no double-reads counted despite open window")
	}
}

// TestMigrateDeleteDuringWindowNotResurrected: a delete that lands on
// the new owner before the entry's chunk arrives must win — the later
// chunk may not resurrect the entry, and double-reads must hide the
// old owner's still-present copy immediately.
func TestMigrateDeleteDuringWindowNotResurrected(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	src := newMigrateServer(t, net, "", MigrationConfig{})
	if _, err := net.Bind("src", src.Handler); err != nil {
		t.Fatal(err)
	}
	dst := newMigrateServer(t, net, "", MigrationConfig{ChunkEntries: 1, Throttle: time.Hour})

	const inst = "inst-0"
	set := keyword.NewSet("gamma", "shared")
	v := hypercube.Vertex(2)
	for i := 0; i < 4; i++ {
		if err := src.insertEntry(inst, v, set.Key(), fmt.Sprintf("obj-%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	dst.EnqueueMigration("src", wholeRingNew, wholeRingOwner)
	waitFor(t, 5*time.Second, func() bool { return dst.MigrationStats().Chunks >= 1 }, "first chunk")

	// obj-3 sorts last: with ChunkEntries=1 its chunk has not arrived.
	victim := BulkEntry{Instance: inst, Vertex: uint64(v), SetKey: set.Key(), ObjectID: "obj-3"}
	if _, err := dst.deleteEntry(inst, v, set.Key(), "obj-3"); err != nil {
		t.Fatal(err)
	}

	// Double-read: the old owner still holds obj-3, the tombstone must
	// filter it from the merged answer.
	pin := dst.pinQueryRead(context.Background(), inst, v, set.Key())
	for _, id := range pin.ObjectIDs {
		if id == "obj-3" {
			t.Fatalf("deleted entry resurfaced in double-read: %v", pin.ObjectIDs)
		}
	}
	// Chunk application: the pulled copy must be dropped, not applied.
	if err := dst.insertMigrated(victim); err != nil {
		t.Fatal(err)
	}
	local := dst.pinQuery(inst, v, set.Key())
	for _, id := range local.ObjectIDs {
		if id == "obj-3" {
			t.Fatalf("tombstoned chunk entry applied to the table: %v", local.ObjectIDs)
		}
	}
	// A client re-insert during the window clears the tombstone.
	if err := dst.insertEntry(inst, v, set.Key(), "obj-3"); err != nil {
		t.Fatal(err)
	}
	if dst.migrate.hasTombstone(victim) {
		t.Fatalf("tombstone survived a re-insert")
	}
}

// TestMigrateResumeFromDurableCursor: killing a durable destination
// mid-transfer and reopening its data directory resumes from the
// logged cursor — every entry lands exactly once, and the resume is
// counted.
func TestMigrateResumeFromDurableCursor(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	src := newMigrateServer(t, net, "", MigrationConfig{})
	if _, err := net.Bind("src", src.Handler); err != nil {
		t.Fatal(err)
	}
	want := seedEntries(t, src, 12)
	dir := t.TempDir()

	// Phase 1: pull a few 1-entry chunks, then "crash" (Close cancels
	// the worker mid-throttle; the cursor stays un-done in the WAL).
	dst1 := newMigrateServer(t, net, dir, MigrationConfig{ChunkEntries: 1, Throttle: 5 * time.Millisecond})
	dst1.EnqueueMigration("src", wholeRingNew, wholeRingOwner)
	waitFor(t, 5*time.Second, func() bool { return dst1.MigrationStats().Chunks >= 3 }, "three chunks")
	if err := dst1.Close(); err != nil {
		t.Fatalf("close mid-migration: %v", err)
	}
	if left := allEntries(t, src); len(left) == 0 {
		t.Fatalf("source dropped its range before commit")
	}

	// Phase 2: reopen. Recovery must surface the durable cursor, and
	// ResumeMigrations must finish the pull without duplicating the
	// entries already applied.
	dst2 := newMigrateServer(t, net, dir, MigrationConfig{ChunkEntries: 1})
	st := dst2.MigrationStats()
	if st.Recovered != 1 {
		t.Fatalf("recovered %d cursors, want 1", st.Recovered)
	}
	applied := allEntries(t, dst2)
	if len(applied) == 0 || len(applied) >= len(want) {
		t.Fatalf("recovered table has %d entries, want a strict non-empty prefix of %d", len(applied), len(want))
	}
	if n := dst2.ResumeMigrations(); n != 1 {
		t.Fatalf("ResumeMigrations resumed %d, want 1", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := dst2.WaitMigrationsIdle(ctx); err != nil {
		t.Fatalf("WaitMigrationsIdle: %v", err)
	}
	if got := allEntries(t, dst2); !reflect.DeepEqual(got, want) {
		t.Fatalf("after resume: %d entries, want %d (lost or duplicated)", len(got), len(want))
	}
	if left := allEntries(t, src); len(left) != 0 {
		t.Fatalf("source still holds %d entries after resumed commit", len(left))
	}
	st = dst2.MigrationStats()
	if st.Resumes != 1 || st.Commits != 1 {
		t.Fatalf("stats = %+v; want 1 resume, 1 commit", st)
	}

	// Phase 3: a third open sees a retired (done) migration — nothing
	// recovered, nothing re-pulled.
	if err := dst2.Close(); err != nil {
		t.Fatal(err)
	}
	dst3 := newMigrateServer(t, net, dir, MigrationConfig{})
	if st := dst3.MigrationStats(); st.Recovered != 0 {
		t.Fatalf("retired migration recovered again: %+v", st)
	}
	if got := allEntries(t, dst3); !reflect.DeepEqual(got, want) {
		t.Fatalf("third recovery lost entries: %d, want %d", len(got), len(want))
	}
}

// TestMigrateCursorSurvivesSnapshot: WAL compaction must re-emit open
// migration checkpoints into the snapshot — otherwise truncating the
// log silently forgets the resume point.
func TestMigrateCursorSurvivesSnapshot(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	src := newMigrateServer(t, net, "", MigrationConfig{})
	if _, err := net.Bind("src", src.Handler); err != nil {
		t.Fatal(err)
	}
	want := seedEntries(t, src, 10)
	dir := t.TempDir()

	dst1, err := NewServer(ServerConfig{
		Hasher:        keyword.MustNewHasher(6, 42),
		Resolver:      FuncResolver(func(v hypercube.Vertex) transport.Addr { return "unused" }),
		Sender:        net,
		DataDir:       dir,
		SnapshotEvery: 2, // compact aggressively mid-transfer
		Migration:     MigrationConfig{ChunkEntries: 1, Throttle: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	dst1.EnqueueMigration("src", wholeRingNew, wholeRingOwner)
	waitFor(t, 5*time.Second, func() bool { return dst1.MigrationStats().Chunks >= 4 }, "four chunks")
	if err := dst1.Close(); err != nil {
		t.Fatal(err)
	}

	dst2 := newMigrateServer(t, net, dir, MigrationConfig{})
	if st := dst2.MigrationStats(); st.Recovered != 1 {
		t.Fatalf("post-compaction recovery found %d cursors, want 1", st.Recovered)
	}
	dst2.ResumeMigrations()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := dst2.WaitMigrationsIdle(ctx); err != nil {
		t.Fatal(err)
	}
	if got := allEntries(t, dst2); !reflect.DeepEqual(got, want) {
		t.Fatalf("after snapshot+resume: %d entries, want %d", len(got), len(want))
	}
}

// TestGateInfoMigrationTrafficUngated: migration chunks, commits, and
// the relayed halves of double-reads are interior traffic — admission
// control must never gate them (regression: handoff traffic was gated
// like client traffic).
func TestGateInfoMigrationTrafficUngated(t *testing.T) {
	cases := []struct {
		body  any
		gated bool
	}{
		{msgMigrateChunk{}, false},
		{msgMigrateCommit{}, false},
		{msgBulkInsert{}, false},
		{msgPinQuery{Relay: true}, false},
		{msgSubQuery{Relay: true}, false},
		{msgSubQuery{}, false}, // wave traffic, always interior
		{msgPinQuery{}, true},
		{msgInsertEntry{}, true},
		{msgDeleteEntry{}, true},
		{msgTQuery{}, true},
	}
	for _, c := range cases {
		if _, _, gated := gateInfo(c.body); gated != c.gated {
			t.Errorf("gateInfo(%T) gated = %v, want %v", c.body, gated, c.gated)
		}
	}
}

// TestMigrationAdmittedUnderOverload: with the admission controller
// saturated (MaxInflight=1 held, no queue), client traffic sheds but
// migration chunks and relayed double-reads still flow — churn healing
// must not starve behind an overloaded node.
func TestMigrationAdmittedUnderOverload(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	srv, err := NewServer(ServerConfig{
		Hasher:    keyword.MustNewHasher(6, 42),
		Resolver:  FuncResolver(func(v hypercube.Vertex) transport.Addr { return "unused" }),
		Sender:    net,
		Admission: &admission.Policy{MaxInflight: 1, MaxQueue: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	if err := srv.insertEntry("main", 1, keyword.NewSet("a").Key(), "o1"); err != nil {
		t.Fatal(err)
	}

	// Saturate the controller.
	release, err := srv.adm.Acquire(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx := context.Background()
	if _, err := srv.Handler(ctx, "", msgPinQuery{Instance: "main", Vertex: 1, SetKey: keyword.NewSet("a").Key()}); err == nil {
		t.Fatalf("gated pin admitted while controller saturated")
	}
	if _, err := srv.Handler(ctx, "", msgMigrateChunk{NewID: wholeRingNew, OwnerID: wholeRingOwner, MaxEntries: 10, MaxBytes: 1 << 20}); err != nil {
		t.Fatalf("migrate chunk gated under overload: %v", err)
	}
	if _, err := srv.Handler(ctx, "", msgMigrateCommit{NewID: wholeRingNew, OwnerID: wholeRingOwner}); err != nil {
		t.Fatalf("migrate commit gated under overload: %v", err)
	}
	if _, err := srv.Handler(ctx, "", msgPinQuery{Instance: "main", Vertex: 1, SetKey: keyword.NewSet("a").Key(), Relay: true}); err != nil {
		t.Fatalf("relayed pin gated under overload: %v", err)
	}
}

// TestMigrateChunkDeadlinePropagated: an expired DeadlineUnixNano on
// the wire aborts the chunk scan instead of serving a doomed request
// (regression: handoff frames carried no deadline at all).
func TestMigrateChunkDeadlinePropagated(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	srv := newMigrateServer(t, net, "", MigrationConfig{})
	seedEntries(t, srv, 5)

	past := time.Now().Add(-time.Second).UnixNano()
	if _, err := srv.Handler(context.Background(), "", msgMigrateChunk{
		NewID: wholeRingNew, OwnerID: wholeRingOwner, MaxEntries: 10, MaxBytes: 1 << 20,
		DeadlineUnixNano: past,
	}); err == nil {
		t.Fatalf("expired chunk deadline not honored")
	}
	if _, err := srv.Handler(context.Background(), "", msgMigrateCommit{
		NewID: wholeRingNew, OwnerID: wholeRingOwner, DeadlineUnixNano: past,
	}); err == nil {
		t.Fatalf("expired commit deadline not honored")
	}
	// A live deadline serves normally.
	future := time.Now().Add(time.Minute).UnixNano()
	if _, err := srv.Handler(context.Background(), "", msgMigrateChunk{
		NewID: wholeRingNew, OwnerID: wholeRingOwner, MaxEntries: 10, MaxBytes: 1 << 20,
		DeadlineUnixNano: future,
	}); err != nil {
		t.Fatalf("live chunk deadline rejected: %v", err)
	}
}
