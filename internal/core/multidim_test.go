package core

import (
	"context"
	"strconv"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// TestInstancesWithDifferentDimensionsShareServers exercises the
// dimension-agnostic server: one physical fleet hosts a "wide" r=10
// instance and a "narrow" r=5 instance (a decomposed attribute
// family), and searches in each stay within their own cube geometry.
func TestInstancesWithDifferentDimensionsShareServers(t *testing.T) {
	net := inmem.New(1)
	defer net.Close()
	const nServers = 4
	addrs := make([]transport.Addr, nServers)
	for i := range addrs {
		addrs[i] = transport.Addr("md-" + strconv.Itoa(i))
	}
	resolver := FuncResolver(func(v hypercube.Vertex) transport.Addr {
		return addrs[int(uint64(v)%nServers)]
	})
	// Servers are configured with the wide hasher; the narrow instance
	// declares its own dimensionality on the wire.
	wide := keyword.MustNewHasher(10, 1)
	narrow := keyword.MustNewHasher(5, 2)
	for i := range addrs {
		srv, err := NewServer(ServerConfig{Hasher: wide, Resolver: resolver, Sender: net})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Bind(addrs[i], srv.Handler); err != nil {
			t.Fatal(err)
		}
	}
	wideClient, err := NewInstanceClient("wide", wide, resolver, net)
	if err != nil {
		t.Fatal(err)
	}
	narrowClient, err := NewInstanceClient("narrow", narrow, resolver, net)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Index the same logical objects in both instances.
	for i := 0; i < 20; i++ {
		o := obj("o"+strconv.Itoa(i), "shared", "tag"+strconv.Itoa(i%4))
		if _, err := wideClient.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
		if _, err := narrowClient.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	q := keyword.NewSet("shared")

	wideRes, err := wideClient.SupersetSearch(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatalf("wide search: %v", err)
	}
	narrowRes, err := narrowClient.SupersetSearch(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatalf("narrow search: %v", err)
	}
	if len(wideRes.Matches) != 20 || len(narrowRes.Matches) != 20 {
		t.Fatalf("matches wide=%d narrow=%d, want 20/20", len(wideRes.Matches), len(narrowRes.Matches))
	}
	// The narrow instance's exhaustive traversal is bounded by its own
	// cube: 2^(5-1) = 16 nodes, not 2^(10-1) = 512.
	if narrowRes.Stats.NodesContacted > 16 {
		t.Errorf("narrow search contacted %d nodes, want ≤ 16", narrowRes.Stats.NodesContacted)
	}
	if wideRes.Stats.NodesContacted != 512 {
		t.Errorf("wide search contacted %d nodes, want 512", wideRes.Stats.NodesContacted)
	}
	// No cross-contamination: deleting from the narrow instance leaves
	// the wide instance intact.
	o0 := obj("o0", "shared", "tag0")
	if found, _, err := narrowClient.Delete(ctx, o0); err != nil || !found {
		t.Fatalf("narrow delete: %v %v", found, err)
	}
	wideIDs, _, err := wideClient.PinSearch(ctx, o0.Keywords)
	if err != nil || len(wideIDs) == 0 {
		t.Errorf("wide instance lost entry after narrow delete: %v, %v", wideIDs, err)
	}
}
