package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// Decomposed implements the decomposition remark of Section 3.4:
// instead of one large hypercube indexing every keyword, the keyword
// universe is partitioned into disjoint families (e.g. attribute
// groups), each indexed by its own smaller hypercube. Smaller
// dimensions shrink the subhypercubes searched per query; queries whose
// keywords span several families are answered by searching each family
// with its keyword projection and intersecting the object IDs.
type Decomposed struct {
	classify func(word string) string
	parts    map[string]*Client
}

// NewDecomposed builds a decomposed index. classify maps a normalized
// keyword to its family name; parts maps each family to the client of
// that family's hypercube deployment. classify must be total over the
// application's vocabulary and must return names present in parts.
func NewDecomposed(classify func(word string) string, parts map[string]*Client) (*Decomposed, error) {
	if classify == nil || len(parts) == 0 {
		return nil, fmt.Errorf("core: decomposed index needs a classifier and at least one part")
	}
	for name, c := range parts {
		if c == nil {
			return nil, fmt.Errorf("core: decomposed part %q has no client", name)
		}
	}
	return &Decomposed{classify: classify, parts: parts}, nil
}

// split projects a keyword set onto the families it touches.
func (d *Decomposed) split(k keyword.Set) (map[string]keyword.Set, error) {
	byFamily := make(map[string][]string)
	for _, w := range k.Words() {
		f := d.classify(w)
		if _, ok := d.parts[f]; !ok {
			return nil, fmt.Errorf("core: keyword %q classified into unknown family %q", w, f)
		}
		byFamily[f] = append(byFamily[f], w)
	}
	out := make(map[string]keyword.Set, len(byFamily))
	for f, ws := range byFamily {
		out[f] = keyword.NewSet(ws...)
	}
	return out, nil
}

// Insert indexes the object in every family its keywords touch, under
// the projection of its keyword set onto that family.
func (d *Decomposed) Insert(ctx context.Context, obj Object) (Stats, error) {
	if err := obj.Validate(); err != nil {
		return Stats{}, err
	}
	projections, err := d.split(obj.Keywords)
	if err != nil {
		return Stats{}, err
	}
	var total Stats
	for _, f := range sortedFamilies(projections) {
		st, err := d.parts[f].Insert(ctx, Object{ID: obj.ID, Keywords: projections[f]})
		if err != nil {
			return total, fmt.Errorf("family %q: %w", f, err)
		}
		total.Add(st)
	}
	return total, nil
}

// Delete removes the object's entries from every family its keywords
// touch.
func (d *Decomposed) Delete(ctx context.Context, obj Object) (Stats, error) {
	if err := obj.Validate(); err != nil {
		return Stats{}, err
	}
	projections, err := d.split(obj.Keywords)
	if err != nil {
		return Stats{}, err
	}
	var total Stats
	for _, f := range sortedFamilies(projections) {
		_, st, err := d.parts[f].Delete(ctx, Object{ID: obj.ID, Keywords: projections[f]})
		if err != nil {
			return total, fmt.Errorf("family %q: %w", f, err)
		}
		total.Add(st)
	}
	return total, nil
}

// DecomposedResult is the intersection answer of a decomposed search:
// object IDs present in every touched family, the aggregate cost over
// all families, and the quality signals of the weakest family — the
// intersection is only as complete as its least complete input.
type DecomposedResult struct {
	// ObjectIDs is the sorted intersection of the family answers.
	ObjectIDs []string
	// Stats aggregates every cost field across the family searches.
	Stats Stats
	// Exhausted reports whether every family search was exhaustive;
	// a non-exhausted family may have truncated the intersection.
	Exhausted bool
	// Completeness is the minimum per-family completeness: the
	// fraction of the weakest family's subcube that answered.
	Completeness float64
	// FailedSubtrees sums the unreachable subtrees across families.
	FailedSubtrees int
}

// SupersetSearch searches every family the query touches and
// intersects the result object IDs. threshold bounds the per-family
// fetch; because intersection can only shrink a result set, fewer than
// threshold objects may be returned even when more exist — callers
// needing exhaustive answers pass All and check Exhausted. Degraded
// family searches (node failures) are surfaced, not hidden: the result
// carries the minimum family completeness and the summed failed
// subtrees, so callers can tell a genuinely empty intersection from
// one computed over partial inputs.
func (d *Decomposed) SupersetSearch(ctx context.Context, k keyword.Set, threshold int, opts SearchOptions) (DecomposedResult, error) {
	if k.IsEmpty() {
		return DecomposedResult{}, ErrEmptyQuery
	}
	projections, err := d.split(k)
	if err != nil {
		return DecomposedResult{}, err
	}
	out := DecomposedResult{Exhausted: true, Completeness: 1.0}
	var intersect map[string]bool
	for _, f := range sortedFamilies(projections) {
		res, err := d.parts[f].SupersetSearch(ctx, projections[f], threshold, opts)
		if err != nil {
			return out, fmt.Errorf("family %q: %w", f, err)
		}
		out.Stats.Add(res.Stats)
		out.Exhausted = out.Exhausted && res.Exhausted
		if res.Completeness < out.Completeness {
			out.Completeness = res.Completeness
		}
		out.FailedSubtrees += res.FailedSubtrees
		ids := make(map[string]bool, len(res.Matches))
		for _, m := range res.Matches {
			ids[m.ObjectID] = true
		}
		if intersect == nil {
			intersect = ids
			continue
		}
		for id := range intersect {
			if !ids[id] {
				delete(intersect, id)
			}
		}
	}
	out.ObjectIDs = make([]string, 0, len(intersect))
	for id := range intersect {
		out.ObjectIDs = append(out.ObjectIDs, id)
	}
	sort.Strings(out.ObjectIDs)
	return out, nil
}

func sortedFamilies(m map[string]keyword.Set) []string {
	fs := make([]string, 0, len(m))
	for f := range m {
		fs = append(fs, f)
	}
	sort.Strings(fs)
	return fs
}
