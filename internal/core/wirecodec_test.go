package core

import (
	"reflect"
	"testing"
	"unsafe"

	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

// roundTrip encodes msg through its registered codec and decodes it
// back, failing the test on any mismatch. The decoded value must be
// deeply equal to the original — this is the answer-level equivalence
// the -wire knob relies on.
func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	c, ok := wire.Lookup(msg)
	if !ok {
		t.Fatalf("no wire codec registered for %T", msg)
	}
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	c.Encode(w, msg)
	r := wire.NewReader(w.Buf)
	got, err := c.Decode(r)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("decode %T left trailing bytes: %v", msg, err)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("%T round trip mismatch:\n got %+v\nwant %+v", msg, got, msg)
	}
	return got
}

func TestCoreWireRoundTrip(t *testing.T) {
	RegisterTypes()
	matches := []Match{
		{ObjectID: "obj-1", SetKey: "a b c", Vertex: 7, Depth: 0},
		{ObjectID: "obj-2", SetKey: "", Vertex: 1 << 40, Depth: -3},
	}
	edges := []wireEdge{{Vertex: 3, Dim: 0}, {Vertex: 9, Dim: 5}}
	entries := []BulkEntry{
		{Instance: "default", Vertex: 12, SetKey: "k", ObjectID: "o"},
		{Instance: "", Vertex: 0, SetKey: "", ObjectID: ""},
	}
	cursor := wireCursor{Started: true, Instance: "i", Vertex: 99, SetKey: "sk", ObjectID: "oid"}

	for _, msg := range []any{
		msgInsertEntry{Instance: "default", Vertex: 42, SetKey: "a b", ObjectID: "doc-1", ClientID: "c1"},
		msgInsertEntry{},
		respAck{},
		msgDeleteEntry{Instance: "x", Vertex: 1, SetKey: "s", ObjectID: "o", ClientID: ""},
		respDeleteEntry{Found: true},
		respDeleteEntry{},
		msgPinQuery{Instance: "default", Vertex: 5, SetKey: "k1 k2", ClientID: "cli", Relay: true},
		respPinQuery{ObjectIDs: []string{"a", "b", "c"}},
		respPinQuery{},
		msgTQuery{Instance: "default", Dim: 10, Vertex: 1023, QueryKey: "q", Threshold: 50,
			Order: 1, Cumulative: true, SessionID: 0xfeedface12345678, NoCache: true,
			WantTrace: true, ClientID: "c", DeadlineUnixNano: -1},
		msgTQuery{Instance: "default", Dim: 10, Vertex: 4, QueryKey: "kw1", Threshold: All,
			Class: ClassPrefix, DimMask: 0x3ff},
		msgTQuery{Instance: "default", Dim: 6, Vertex: 9, QueryKey: "a b", Threshold: All,
			Class: ClassPin},
		msgTQuery{},
		respTQuery{Matches: matches, Exhausted: true, SessionID: 7, SubNodes: 3, SubMsgs: 9,
			Rounds: 2, FailedNodes: 1, PhysFrames: 4, CacheHit: true, ErrCode: -2,
			Trace: []TraceStep{{Vertex: 1, Matches: 2, Failed: false}, {Vertex: 2, Matches: 0, Failed: true}}},
		respTQuery{},
		msgSubQuery{Instance: "i", Dim: 8, Vertex: 200, Root: 100, QueryKey: "qk",
			Limit: 10, Skip: 5, GenDim: -1, Relay: true},
		msgSubQuery{Instance: "i", Dim: 8, Vertex: 200, Root: 1, QueryKey: "kw",
			Limit: -1, GenDim: 2, Class: ClassPrefix},
		respSubQuery{Matches: matches, Remaining: 17, Children: edges},
		respSubQuery{},
		msgSubQueryBatch{Instance: "i", Dim: 6, Root: 63, QueryKey: "q", Limit: 100,
			Units:            []wireUnit{{Vertex: 1, Skip: 0, GenDim: 3}, {Vertex: 2, Skip: 10, GenDim: -1}},
			DeadlineUnixNano: 1754500000000000000},
		msgSubQueryBatch{Instance: "i", Dim: 6, Root: 2, QueryKey: "kw", Limit: 5,
			Units: []wireUnit{{Vertex: 2, GenDim: 6}}, Class: ClassPrefix},
		msgSubQueryBatch{},
		respSubQueryBatch{Results: []respSubUnit{
			{Matches: matches, Remaining: 2, Children: edges, ErrCode: 0},
			{Matches: nil, Remaining: 0, Children: nil, ErrCode: 3},
			{Matches: matches[:1], Remaining: 0, Children: nil, ErrCode: 0},
		}},
		respSubQueryBatch{},
		msgBulkInsert{Entries: entries},
		msgBulkInsert{},
		msgMigrateChunk{NewID: 1 << 63, OwnerID: 77, Cursor: cursor, MaxEntries: 500,
			MaxBytes: 1 << 20, DeadlineUnixNano: 12345},
		respMigrateChunk{Entries: entries, Cursor: cursor, Done: true},
		respMigrateChunk{},
		msgMigrateCommit{NewID: 5, OwnerID: 6, DeadlineUnixNano: 7},
		respMigrateCommit{Dropped: 321},
	} {
		roundTrip(t, msg)
	}
}

// TestBatchArenaDecode verifies the near-zero-copy batch path: all
// match structs of a decoded respSubQueryBatch share one backing
// array, and the per-unit windows are capped so appends cannot
// clobber a neighboring unit.
func TestBatchArenaDecode(t *testing.T) {
	RegisterTypes()
	in := respSubQueryBatch{Results: []respSubUnit{
		{Matches: []Match{{ObjectID: "a", SetKey: "x", Vertex: 1}, {ObjectID: "b", SetKey: "y", Vertex: 2}}},
		{Matches: []Match{{ObjectID: "c", SetKey: "z", Vertex: 3}}},
	}}
	out := roundTrip(t, in).(respSubQueryBatch)
	m0, m1 := out.Results[0].Matches, out.Results[1].Matches
	if cap(m0) != len(m0) || cap(m1) != len(m1) {
		t.Fatalf("unit match windows not capacity-capped: cap=%d,%d len=%d,%d",
			cap(m0), cap(m1), len(m0), len(m1))
	}
	// Contiguity: unit 1's first element must sit right after unit 0's
	// last in the same arena.
	end0 := uintptr(unsafe.Pointer(&m0[len(m0)-1])) + unsafe.Sizeof(Match{})
	if end0 != uintptr(unsafe.Pointer(&m1[0])) {
		t.Fatal("batch units decoded into separate allocations, want one arena")
	}
}

// TestBatchDecodeAllocs pins the allocation count of the batch decode
// path: one []Match arena, one Results slice, one string arena, the
// Reader, and the boxed return value — independent of match count.
func TestBatchDecodeAllocs(t *testing.T) {
	RegisterTypes()
	units := make([]respSubUnit, 16)
	for i := range units {
		ms := make([]Match, 64)
		for j := range ms {
			ms[j] = Match{ObjectID: "object-id-123456", SetKey: "alpha beta gamma", Vertex: uint64(i*64 + j)}
		}
		units[i].Matches = ms
	}
	msg := respSubQueryBatch{Results: units}
	c, _ := wire.Lookup(msg)
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	c.Encode(w, msg)
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.Decode(wire.NewReader(w.Buf)); err != nil {
			t.Fatal(err)
		}
	})
	// 1024 matches with two strings each would cost >2048 allocations
	// decoded naively; the arena path needs a small constant.
	if allocs > 8 {
		t.Errorf("batch decode allocates %.0f times for 1024 matches, want <= 8", allocs)
	}
}

// TestCorruptBatchTotalsDoNotOverAllocate: a frame whose declared
// frame-level total disagrees with the per-unit counts must still
// decode correctly (growing past the bogus total) or error — never
// trust the redundant field.
func TestCorruptBatchTotalsDoNotOverAllocate(t *testing.T) {
	RegisterTypes()
	msg := respSubQueryBatch{Results: []respSubUnit{
		{Matches: []Match{{ObjectID: "a", SetKey: "b", Vertex: 1}}},
	}}
	c, _ := wire.Lookup(msg)
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	c.Encode(w, msg)
	// Zero out the frame-level total (first varint byte): per-unit count
	// still says 1 match, so the decoder must grow its arena.
	buf := append([]byte(nil), w.Buf...)
	if buf[0] != 1 {
		t.Fatalf("test assumes 1-byte total varint, got %#x", buf[0])
	}
	buf[0] = 0
	got, err := c.Decode(wire.NewReader(buf))
	if err != nil {
		t.Fatalf("decode with understated total: %v", err)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("decode with understated total mismatch: %+v", got)
	}
}
