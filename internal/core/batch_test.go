package core

import (
	"context"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// batchVocab is the keyword pool the equivalence corpora draw from:
// small enough that queries hit crowded subcubes, large enough that
// objects spread over many vertices.
var batchVocab = []string{
	"alpha", "bravo", "charlie", "delta", "echo",
	"foxtrot", "golf", "hotel", "india", "juliet",
}

// batchCorpus derives a deterministic object list from seed.
func batchCorpus(seed int64, n int) []Object {
	rng := rand.New(rand.NewSource(seed))
	objects := make([]Object, 0, n)
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(4)
		perm := rng.Perm(len(batchVocab))
		words := make([]string, k)
		for j := 0; j < k; j++ {
			words[j] = batchVocab[perm[j]]
		}
		objects = append(objects, obj("o-"+strconv.Itoa(i), words...))
	}
	return objects
}

// batchQueries derives a deterministic query mix (sizes 1–3) from seed.
func batchQueries(seed int64) []keyword.Set {
	rng := rand.New(rand.NewSource(seed))
	var queries []keyword.Set
	for _, w := range batchVocab {
		queries = append(queries, keyword.NewSet(w))
	}
	for i := 0; i < 8; i++ {
		perm := rng.Perm(len(batchVocab))
		queries = append(queries, keyword.NewSet(batchVocab[perm[0]], batchVocab[perm[1]]))
		queries = append(queries, keyword.NewSet(batchVocab[perm[2]], batchVocab[perm[3]], batchVocab[perm[4]]))
	}
	return queries
}

// requireSameResult asserts that the batched and unbatched dispatch
// paths produced byte-identical outcomes: match sequence (including
// order), exhaustion, logical message and node accounting, completeness
// and failure counts, and the per-vertex trace. Rounds and PhysFrames
// are the two fields batching is allowed to change.
func requireSameResult(t *testing.T, label string, ro, rb Result, errOff, errOn error) {
	t.Helper()
	if (errOff == nil) != (errOn == nil) {
		t.Fatalf("%s: error mismatch: unbatched %v, batched %v", label, errOff, errOn)
	}
	if errOff != nil {
		return
	}
	if len(ro.Matches) != len(rb.Matches) {
		t.Fatalf("%s: match count %d vs %d", label, len(ro.Matches), len(rb.Matches))
	}
	for i := range ro.Matches {
		if ro.Matches[i] != rb.Matches[i] {
			t.Fatalf("%s: match[%d] %+v vs %+v", label, i, ro.Matches[i], rb.Matches[i])
		}
	}
	if ro.Exhausted != rb.Exhausted {
		t.Errorf("%s: Exhausted %v vs %v", label, ro.Exhausted, rb.Exhausted)
	}
	if ro.Stats.Messages != rb.Stats.Messages {
		t.Errorf("%s: logical Messages %d vs %d", label, ro.Stats.Messages, rb.Stats.Messages)
	}
	if ro.Stats.NodesContacted != rb.Stats.NodesContacted {
		t.Errorf("%s: NodesContacted %d vs %d", label, ro.Stats.NodesContacted, rb.Stats.NodesContacted)
	}
	if ro.Completeness != rb.Completeness {
		t.Errorf("%s: Completeness %g vs %g", label, ro.Completeness, rb.Completeness)
	}
	if ro.FailedSubtrees != rb.FailedSubtrees {
		t.Errorf("%s: FailedSubtrees %d vs %d", label, ro.FailedSubtrees, rb.FailedSubtrees)
	}
	if len(ro.Trace) != len(rb.Trace) {
		t.Fatalf("%s: trace length %d vs %d", label, len(ro.Trace), len(rb.Trace))
	}
	for i := range ro.Trace {
		if ro.Trace[i] != rb.Trace[i] {
			t.Fatalf("%s: trace[%d] %+v vs %+v", label, i, ro.Trace[i], rb.Trace[i])
		}
	}
}

// TestBatchedParallelEquivalence runs the same seeded query mix at
// several thresholds against two identically loaded multi-server
// deployments — one dispatching per message, one batching waves — and
// requires byte-identical results, traces and logical accounting.
// Exhaustive runs are additionally checked against brute force.
func TestBatchedParallelEquivalence(t *testing.T) {
	const r, nServers = 8, 4
	off := newDeploymentMode(t, r, nServers, 0, BatchOff)
	on := newDeploymentMode(t, r, nServers, 0, BatchOn)

	objects := batchCorpus(7, 120)
	ctx := context.Background()
	for _, o := range objects {
		if _, err := off.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
		if _, err := on.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}

	opts := SearchOptions{Order: ParallelLevels, NoCache: true, Trace: true}
	for _, q := range batchQueries(11) {
		for _, th := range []int{1, 3, All} {
			ro, errOff := off.client.SupersetSearch(ctx, q, th, opts)
			rb, errOn := on.client.SupersetSearch(ctx, q, th, opts)
			label := q.Key() + "/th=" + strconv.Itoa(th)
			requireSameResult(t, label, ro, rb, errOff, errOn)
			if errOn == nil && th == All {
				want := bruteForce(objects, q)
				got := matchIDs(rb.Matches)
				sort.Strings(want)
				sort.Strings(got)
				if !equalStrings(got, want) {
					t.Fatalf("%s: batched exhaustive result %v, brute force %v", label, got, want)
				}
			}
		}
	}
}

// TestBatchedParallelEquivalenceUnderFailures repeats the equivalence
// check with two physical peers crashed in both deployments: the batch
// frame to a dead peer fails as a whole, every unit falls back to the
// per-message path, and the failure accounting (failed subtrees,
// completeness, trace Failed flags) must still match exactly.
func TestBatchedParallelEquivalenceUnderFailures(t *testing.T) {
	const r, nServers = 8, 4
	off := newDeploymentMode(t, r, nServers, 0, BatchOff)
	on := newDeploymentMode(t, r, nServers, 0, BatchOn)

	objects := batchCorpus(13, 100)
	ctx := context.Background()
	for _, o := range objects {
		if _, err := off.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
		if _, err := on.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	// Crash the same two peers in both fleets (indexes, not roots of any
	// particular query — queries whose root lands on them error out
	// identically in both modes, which the comparison also covers).
	for _, i := range []int{1, 3} {
		off.net.SetDown(off.addrs[i], true)
		on.net.SetDown(on.addrs[i], true)
	}

	opts := SearchOptions{Order: ParallelLevels, NoCache: true, Trace: true}
	sawFailure := false
	for _, q := range batchQueries(17) {
		for _, th := range []int{3, All} {
			ro, errOff := off.client.SupersetSearch(ctx, q, th, opts)
			rb, errOn := on.client.SupersetSearch(ctx, q, th, opts)
			label := q.Key() + "/th=" + strconv.Itoa(th)
			requireSameResult(t, label, ro, rb, errOff, errOn)
			if errOn != nil || rb.FailedSubtrees > 0 {
				sawFailure = true
			}
		}
	}
	if !sawFailure {
		t.Fatal("no query exercised the failure path; the test lost its teeth")
	}
}

// TestBatchedSearchCutsPhysicalFrames pins the point of the feature: an
// exhaustive parallel search over a 2^9-vertex subcube folded onto 4
// physical peers needs ~512 frames per message but only ~5 batched
// (one per distinct peer plus the initiator's), with identical matches
// and identical logical message counts.
func TestBatchedSearchCutsPhysicalFrames(t *testing.T) {
	const r, nServers = 10, 4
	off := newDeploymentMode(t, r, nServers, 0, BatchOff)
	on := newDeploymentMode(t, r, nServers, 0, BatchOn)

	ctx := context.Background()
	for i := 0; i < 12; i++ {
		o := obj("hub-"+strconv.Itoa(i), "hub", "extra"+strconv.Itoa(i%5))
		if _, err := off.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
		if _, err := on.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}

	query := keyword.NewSet("hub")
	opts := SearchOptions{Order: ParallelLevels, NoCache: true}
	ro, err := off.client.SupersetSearch(ctx, query, All, opts)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := on.client.SupersetSearch(ctx, query, All, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "hub/All", ro, rb, nil, nil)
	if ro.Stats.PhysFrames < 3*rb.Stats.PhysFrames {
		t.Fatalf("PhysFrames %d unbatched vs %d batched: reduction below 3x",
			ro.Stats.PhysFrames, rb.Stats.PhysFrames)
	}
	// Batched frames are bounded by the fleet size (one frame per
	// distinct peer) plus the initiator's request.
	if rb.Stats.PhysFrames > nServers+1 {
		t.Errorf("batched PhysFrames = %d, want at most %d", rb.Stats.PhysFrames, nServers+1)
	}
	if rb.Stats.Messages != ro.Stats.Messages {
		t.Errorf("logical Messages changed under batching: %d vs %d",
			ro.Stats.Messages, rb.Stats.Messages)
	}
}

// gatedOverlay wraps a static overlay so the test controls when a
// Lookup completes: every entry deposits a token on entered, then
// blocks until gate closes.
type gatedOverlay struct {
	*dht.Static
	entered chan struct{}
	gate    chan struct{}
}

func (g *gatedOverlay) Lookup(ctx context.Context, id dht.ID) (transport.Addr, int, error) {
	g.entered <- struct{}{}
	<-g.gate
	return g.Static.Lookup(ctx, id)
}

// TestOverlayResolverSingleflightUnderStampede resolves one cold
// binding from 16 goroutines while the overlay lookup is held open:
// exactly one caller may perform the lookup, the rest must join its
// flight and share the answer.
func TestOverlayResolverSingleflightUnderStampede(t *testing.T) {
	static := staticOverlay(t, 8)
	gated := &gatedOverlay{Static: static, entered: make(chan struct{}, 64), gate: make(chan struct{})}
	r := NewOverlayResolver(gated)
	ctx := context.Background()

	const callers = 16
	addrs := make([]transport.Addr, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addrs[i], errs[i] = r.Resolve(ctx, "main", 9)
		}(i)
	}
	<-gated.entered                   // the leader is inside the overlay lookup
	time.Sleep(20 * time.Millisecond) // let the rest reach the flight table
	close(gated.gate)
	wg.Wait()

	if got := static.Lookups(); got != 1 {
		t.Fatalf("overlay lookups = %d, want 1", got)
	}
	if extra := len(gated.entered); extra != 0 {
		t.Fatalf("%d extra lookups entered the overlay", extra)
	}
	for i := range addrs {
		if errs[i] != nil || addrs[i] == "" || addrs[i] != addrs[0] {
			t.Fatalf("caller %d got %q, %v (want %q, nil)", i, addrs[i], errs[i], addrs[0])
		}
	}
	if r.CacheSize() != 1 {
		t.Errorf("CacheSize = %d, want 1", r.CacheSize())
	}
}

// TestOverlayResolverJoinerHonorsContext: a caller joining an
// in-progress flight with an already-canceled context returns the
// context error instead of blocking on the leader.
func TestOverlayResolverJoinerHonorsContext(t *testing.T) {
	static := staticOverlay(t, 8)
	gated := &gatedOverlay{Static: static, entered: make(chan struct{}, 4), gate: make(chan struct{})}
	r := NewOverlayResolver(gated)

	leaderDone := make(chan error, 1)
	go func() {
		_, err := r.Resolve(context.Background(), "main", 3)
		leaderDone <- err
	}()
	<-gated.entered // leader holds the flight

	jctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Resolve(jctx, "main", 3); err == nil {
		t.Error("joiner with canceled context returned nil error")
	}

	close(gated.gate)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader resolve failed: %v", err)
	}
}

// TestResolveBatchCollapsesDuplicates: one ResolveBatch over a wave
// with repeated vertices performs one overlay lookup per distinct
// vertex, and positions of the same vertex agree.
func TestResolveBatchCollapsesDuplicates(t *testing.T) {
	static := staticOverlay(t, 8)
	r := NewOverlayResolver(static)
	ctx := context.Background()

	vs := []hypercube.Vertex{1, 2, 1, 3, 2, 1}
	addrs, errs := r.ResolveBatch(ctx, "main", vs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("ResolveBatch[%d]: %v", i, err)
		}
	}
	if addrs[0] != addrs[2] || addrs[0] != addrs[5] || addrs[1] != addrs[4] {
		t.Errorf("duplicate vertices resolved to different addresses: %v", addrs)
	}
	if got := static.Lookups(); got != 3 {
		t.Errorf("overlay lookups = %d, want 3 (one per distinct vertex)", got)
	}
	if r.CacheSize() != 3 {
		t.Errorf("CacheSize = %d, want 3", r.CacheSize())
	}
}
