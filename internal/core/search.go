package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// response error codes carried in respTQuery (the transport reports
// genuine failures; these are protocol-level outcomes).
const (
	errCodeNone = iota
	errCodeNoSession
	// errCodeNotOwner flags one unit of a msgSubQueryBatch whose vertex
	// the receiving peer no longer owns; the root retries that unit on
	// the per-message path, which heals stale resolver bindings.
	errCodeNotOwner
	// errCodeCancelled flags a batch unit the receiver skipped because
	// the search's deadline had already expired when its turn came. The
	// root must NOT retry such units per-message — the whole search is
	// being abandoned.
	errCodeCancelled
	// errCodeNoRefineState rejects an explicit refinement request
	// (msgTQuery.RefineFromKey) whose receiver holds no usable cached
	// ancestor state; the client falls back to a plain search.
	errCodeNoRefineState
	// errCodeNoSoftCopy rejects a spread search (msgTQuery.SoftOnly)
	// whose receiver no longer holds a live soft copy of the root; the
	// client forgets the replica set and retries via the owner.
	errCodeNoSoftCopy
)

// maxBottomUpFree bounds the free dimensions of a bottom-up traversal:
// the root enumerates the whole subhypercube up front, so 2^free
// vertices are materialized.
const maxBottomUpFree = 22

// spanStepSampleEvery is the stride at which instrumented searches
// attach the full per-vertex step list to their telemetry span. Every
// search still records a span with exact aggregate counts; collecting
// the wave tree itself allocates a few KB per query, which at high
// query rates is churn the bounded span ring mostly evicts unread.
// The first search after startup is always sampled.
const spanStepSampleEvery = 8

// runSearch is the root-side orchestration of a superset search: the
// paper's Steps 1–3, driving the frontier queue U over the spanning
// binomial tree SBT_{H_r}(F_h(K)). soft, when non-nil, is a live
// soft-replica copy of the root vertex's table: this server is not
// the root's owner but serves the search anyway, scanning the soft
// copy wherever the authoritative path would scan the root's table.
// Everything else — subcube waves, accounting, caching — is
// unchanged, so a soft-served answer is byte-identical to the
// owner's.
func (s *Server) runSearch(ctx context.Context, msg msgTQuery, soft *table) (respTQuery, error) {
	query := keyword.ParseKey(msg.QueryKey)
	if query.IsEmpty() {
		return respTQuery{}, ErrEmptyQuery
	}
	if msg.Threshold <= 0 {
		return respTQuery{}, fmt.Errorf("core: threshold %d must be positive", msg.Threshold)
	}
	order := msg.Order
	if order == 0 {
		order = TopDown
	}
	if !order.valid() {
		return respTQuery{}, fmt.Errorf("core: invalid traversal order %d", order)
	}
	rootV := hypercube.Vertex(msg.Vertex)
	cube, err := s.cubeFor(msg.Dim)
	if err != nil {
		return respTQuery{}, err
	}

	// Telemetry is sampled only when a registry is wired; the disabled
	// path takes no timestamps and allocates no trace.
	instrumented := s.cfg.Telemetry != nil
	var startedAt time.Time
	if instrumented {
		startedAt = time.Now()
	}

	pred := supersetPred(msg.QueryKey, query)
	var sess *session
	var softAddrs []string
	if msg.SessionID != 0 {
		sess = s.sessions.take(msg.SessionID)
		if sess == nil {
			return respTQuery{ErrCode: errCodeNoSession}, nil
		}
	} else {
		// Popularity tracking (owner only): every fresh one-shot query
		// for a root counts toward promotion, and a promoted root's
		// replica addresses ride back on the response — including on
		// cache hits, so clients learn the set without a miss.
		if soft == nil && !msg.Cumulative {
			softAddrs = s.hot.note(ctx, msg.Instance, rootV)
		}
		if !msg.Cumulative && !msg.NoCache {
			if matches, exhausted, ok := s.cache.get(msg.Instance, pred, msg.Threshold); ok {
				s.met.cacheHits.Inc()
				resp := respTQuery{Matches: matches, Exhausted: exhausted, CacheHit: true, SoftAddrs: softAddrs}
				if instrumented {
					s.recordSearchSpan("superset-search", msg, order, rootV, resp, startedAt, time.Since(startedAt).Nanoseconds(), nil)
				}
				return resp, nil
			} else if s.cache.enabled() {
				s.met.cacheMisses.Inc()
				// Cross-client refinement reuse (Lemma 3.3): before
				// paying a traversal, try deriving the answer from an
				// exhausted cached ancestor — any client's completed
				// search for a subset query covers this one. The miss
				// above still counts (RefineHit is deliberately not a
				// CacheHit), so the Fig-9 hit accounting stays exact.
				if src, ok := s.cache.refineSource(msg.Instance, query); ok {
					if derived, ok := deriveRefinement(cube, order, rootV, query, src); ok {
						s.met.refineHits.Inc()
						s.cache.put(msg.Instance, pred, derived, true)
						matches, exhausted, _ := truncateCached(derived, true, msg.Threshold)
						resp := respTQuery{Matches: matches, Exhausted: exhausted, RefineHit: true, SoftAddrs: softAddrs}
						if instrumented {
							s.recordSearchSpan("superset-search", msg, order, rootV, resp, startedAt, time.Since(startedAt).Nanoseconds(), nil)
						}
						return resp, nil
					}
				}
			}
		}
		var err error
		sess, err = newSession(cube, msg.Instance, pred, rootV, order)
		if err != nil {
			return respTQuery{}, err
		}
		sess.soft = soft
	}

	// Span aggregates (nodes, msgs, duration, …) are recorded for every
	// search, but the per-vertex step list costs a few KB per query and
	// the bounded span ring evicts most of it unread, so step detail is
	// sampled. Explicit trace requests always collect.
	collectSteps := msg.WantTrace
	if instrumented && !collectSteps {
		collectSteps = (s.searchSeq.Add(1)-1)%spanStepSampleEvery == 0
	}
	var trace *[]TraceStep
	if collectSteps {
		// One step per visited vertex; the wave can cover the root's
		// whole subcube, so size the buffer once instead of regrowing
		// mid-traversal.
		capHint := cube.SubcubeSize(rootV)
		if capHint > telemetry.MaxSpanSteps {
			capHint = telemetry.MaxSpanSteps
		}
		buf := make([]TraceStep, 0, capHint)
		trace = &buf
	}
	var (
		collected []Match
		nodes     int
		msgs      int
		failed    int
		rounds    int
		frames    int
	)
	if sess.order == ParallelLevels {
		collected, nodes, msgs, failed, rounds, frames = s.traverseParallel(ctx, sess, rootV, msg.Threshold, trace)
	} else {
		collected, nodes, msgs, failed, frames = s.traverseSequential(ctx, sess, rootV, msg.Threshold, trace)
		rounds = nodes
	}
	if err := ctx.Err(); err != nil {
		// Cancelled or deadline-expired mid-traversal: the partial result
		// set is not a correct answer at any threshold, so the search is
		// abandoned outright — no caching, no session retention — and the
		// initiator sees the context error.
		s.met.searchAbandoned.Inc()
		return respTQuery{}, fmt.Errorf("core: search abandoned: %w", err)
	}
	exhausted := len(sess.work) == 0

	resp := respTQuery{
		Matches:     collected,
		Exhausted:   exhausted,
		SubNodes:    nodes,
		SubMsgs:     msgs,
		FailedNodes: failed,
		PhysFrames:  frames,
		Rounds:      rounds,
		SoftAddrs:   softAddrs,
	}
	if msg.WantTrace && trace != nil {
		resp.Trace = *trace
	}
	if msg.Cumulative && !exhausted {
		resp.SessionID = s.sessions.save(sess)
	}
	if msg.SessionID == 0 && !msg.Cumulative && !msg.NoCache && failed == 0 {
		s.cache.put(msg.Instance, pred, collected, exhausted)
	}
	if instrumented {
		// One clock read shared by the latency histogram and the span.
		elapsedNS := time.Since(startedAt).Nanoseconds()
		s.met.searchNodes.Add(uint64(nodes))
		s.met.searchMsgs.Add(uint64(msgs))
		s.met.physFrames.Add(uint64(frames))
		s.met.searchFailed.Add(uint64(failed))
		s.met.searchRounds.Add(uint64(rounds))
		s.met.searchMatches.Add(uint64(len(collected)))
		s.met.searchLatency.Observe(elapsedNS)
		var steps []TraceStep
		if trace != nil {
			steps = *trace
		}
		s.recordSearchSpan("superset-search", msg, order, rootV, resp, startedAt, elapsedNS, steps)
	}
	return resp, nil
}

// recordSearchSpan converts one completed search into a telemetry
// span: the T_QUERY/T_CONT/T_STOP wave tree the root drove, with
// per-step vertex and depth, bounded by telemetry.MaxSpanSteps. op
// labels the span with the query class ("superset-search",
// "prefix-search").
func (s *Server) recordSearchSpan(op string, msg msgTQuery, order TraversalOrder, rootV hypercube.Vertex, resp respTQuery, startedAt time.Time, elapsedNS int64, steps []TraceStep) {
	span := telemetry.Span{
		Op:             op,
		Instance:       msg.Instance,
		Query:          msg.QueryKey,
		Root:           uint64(rootV),
		Order:          order.String(),
		Start:          startedAt,
		DurationNS:     elapsedNS,
		Nodes:          resp.SubNodes,
		Msgs:           resp.SubMsgs,
		Failed:         resp.FailedNodes,
		Rounds:         resp.Rounds,
		Matches:        len(resp.Matches),
		CacheHit:       resp.CacheHit,
		Exhausted:      resp.Exhausted,
		ContinuedFrom:  msg.SessionID,
		SessionPending: resp.SessionID,
	}
	if resp.CacheHit || resp.RefineHit {
		span.Nodes = 1 // only the root was involved
	}
	if n := len(steps); n > 0 {
		kept := steps
		if n > telemetry.MaxSpanSteps {
			// Truncate to the first MaxSpanSteps-1 steps plus the final
			// one: the final step is where the wave halted, and a pure
			// prefix cut would silently drop its T_STOP marker.
			kept = make([]TraceStep, telemetry.MaxSpanSteps)
			copy(kept, steps[:telemetry.MaxSpanSteps-1])
			kept[telemetry.MaxSpanSteps-1] = steps[n-1]
			span.DroppedSteps = n - telemetry.MaxSpanSteps
		}
		span.Steps = make([]telemetry.SpanStep, len(kept))
		for i, st := range kept {
			kind := telemetry.StepCont
			if i == 0 && msg.SessionID == 0 {
				kind = telemetry.StepQuery // the initiator's T_QUERY at the root
			}
			if i == len(kept)-1 && !resp.Exhausted {
				kind = telemetry.StepStop // threshold met: the wave halted here
			}
			span.Steps[i] = telemetry.SpanStep{
				Kind:    kind,
				Vertex:  st.Vertex,
				Depth:   hypercube.Hamming(rootV, hypercube.Vertex(st.Vertex)),
				Matches: st.Matches,
				Failed:  st.Failed,
			}
		}
	}
	s.cfg.Telemetry.RecordSpan(span)
}

// newSession builds the initial frontier for a fresh query. The
// session starts with superset-shaped defaults — the traversal root is
// hosted here and classifies local work — which the prefix multicast
// coordinator overrides per branch.
func newSession(cube hypercube.Cube, instance string, pred queryPred, rootV hypercube.Vertex, order TraversalOrder) (*session, error) {
	sess := &session{instance: instance, cube: cube, pred: pred, order: order,
		rootLocal: true, selfVertex: rootV}
	switch order {
	case TopDown, ParallelLevels:
		// The root itself is the first unit; its children are the
		// paper's initial queue U (one neighbor per free dimension).
		sess.work = []workUnit{{vertex: rootV, genDim: cube.Dim(), skip: 0}}
	case BottomUp:
		free := cube.Dim() - rootV.OnesCount()
		if free > maxBottomUpFree {
			return nil, fmt.Errorf("core: bottom-up traversal over %d free dimensions exceeds limit %d",
				free, maxBottomUpFree)
		}
		levels := cube.InducedLevels(rootV)
		for d := len(levels) - 1; d >= 0; d-- {
			for _, v := range levels[d] {
				sess.work = append(sess.work, workUnit{vertex: v, genDim: -1, skip: 0})
			}
		}
	}
	return sess, nil
}

// visitResult is the outcome of scanning one hypercube node. remote
// reports the paper's logical accounting — whether this vertex counts
// as a T_QUERY/T_CONT exchange — while frames counts the physical RPC
// frames actually sent for it (zero when a batch or a local shortcut
// absorbed it).
type visitResult struct {
	matches   []Match
	remaining int
	children  []hypercube.ChildEdge
	remote    bool
	frames    int
	err       error
}

// visit scans one work unit: locally when the unit's vertex is the
// query root hosted by this server, remotely via a T_QUERY/T_CONT
// round trip otherwise.
func (s *Server) visit(ctx context.Context, sess *session, u workUnit, rootV hypercube.Vertex, limit int) visitResult {
	instance := sess.instance
	if u.vertex == rootV && sess.rootLocal {
		var matches []Match
		var remaining int
		if sess.soft != nil {
			// Soft-served search: the root's matches come from the soft
			// copy, not this node's (unrelated) authoritative tables.
			matches, remaining = scanTable(sess.soft, u.vertex, rootV, sess.pred, u.skip, limit)
		} else {
			matches, remaining = s.scanVertexRead(ctx, sess.cube.Dim(), instance, u.vertex, rootV, sess.pred, u.skip, limit)
		}
		var children []hypercube.ChildEdge
		if u.genDim >= 0 {
			children = sess.cube.InducedChildEdges(rootV, u.vertex, u.genDim)
		}
		return visitResult{matches: matches, remaining: remaining, children: children}
	}

	msg := msgSubQuery{
		Instance: instance,
		Dim:      sess.cube.Dim(),
		Vertex:   uint64(u.vertex),
		Root:     uint64(rootV),
		QueryKey: sess.pred.key,
		Limit:    limit,
		Skip:     u.skip,
		GenDim:   u.genDim,
		Class:    sess.pred.class,
	}
	var (
		raw    any
		frames int
	)
	for attempt := 0; ; attempt++ {
		addr, err := s.cfg.Resolver.Resolve(ctx, instance, u.vertex)
		if err != nil {
			return visitResult{remote: true, frames: frames, err: err}
		}
		frames++
		raw, err = s.cfg.Sender.Send(ctx, addr, msg)
		if err == nil {
			break
		}
		// A stale cached binding (the node departed and the key
		// re-homed) heals by invalidating and re-resolving once.
		if inv, ok := s.cfg.Resolver.(*OverlayResolver); ok && attempt == 0 {
			inv.Invalidate(instance, u.vertex)
			continue
		}
		return visitResult{remote: true, frames: frames, err: err}
	}
	sq, ok := raw.(respSubQuery)
	if !ok {
		return visitResult{remote: true, frames: frames, err: fmt.Errorf("core: unexpected sub-query response %T", raw)}
	}
	children := make([]hypercube.ChildEdge, len(sq.Children))
	for i, e := range sq.Children {
		children[i] = hypercube.ChildEdge{To: hypercube.Vertex(e.Vertex), Dim: e.Dim}
	}
	return visitResult{matches: sq.Matches, remaining: sq.Remaining, children: children, remote: true, frames: frames}
}

// traverseSequential implements the paper's sequential Steps 1–3: pop
// one frontier node at a time, scan it, append its children, stop as
// soon as the threshold is met (T_STOP). Failed nodes are skipped —
// their subtree is still reachable because the child list is
// regenerable locally — and counted in failed.
func (s *Server) traverseSequential(ctx context.Context, sess *session, rootV hypercube.Vertex, threshold int, trace *[]TraceStep) (collected []Match, nodes, msgs, failed, frames int) {
	need := threshold
	for len(sess.work) > 0 && need > 0 && ctx.Err() == nil {
		u := sess.work[0]
		sess.work = sess.work[1:]
		res := s.visit(ctx, sess, u, rootV, need)
		nodes++
		frames += res.frames
		if res.remote {
			msgs += 2
		}
		if trace != nil {
			*trace = append(*trace, TraceStep{
				Vertex:  uint64(u.vertex),
				Matches: len(res.matches),
				Failed:  res.err != nil,
			})
		}
		if res.err != nil {
			failed++
			if u.genDim >= 0 {
				// Regenerate the failed node's children locally so the
				// rest of its subtree is still explored.
				sess.work = append(sess.work, sess.childUnits(sess.cube.InducedChildEdges(rootV, u.vertex, u.genDim))...)
			}
			continue
		}
		collected = append(collected, res.matches...)
		need -= len(res.matches)
		if u.genDim >= 0 {
			sess.work = append(sess.work, sess.childUnits(res.children)...)
		}
		if res.remaining > 0 {
			// Partially consumed node: resume it first on continuation.
			sess.work = append([]workUnit{{vertex: u.vertex, genDim: -1, skip: u.skip + len(res.matches)}}, sess.work...)
		}
	}
	return collected, nodes, msgs, failed, frames
}

// traverseParallel queries all frontier nodes of a wave concurrently
// (Section 3.5's level-synchronous variant). Results are consumed in
// frontier order so the output matches TopDown; over-fetched matches
// from nodes beyond the stopping point are discarded and those nodes
// re-queued as match-only units for later continuation.
//
// With BatchWaves on, each wave is dispatched as one msgSubQueryBatch
// per distinct physical peer instead of one msgSubQuery per vertex,
// and exhaustive searches (threshold All — no early stop can occur)
// flatten the entire remaining subtree into a single mega-wave, since
// SBT child lists are pure geometry the root can generate itself. Both
// transformations change only the physical framing: the accounting
// loop below consumes results in the exact order and with the exact
// logical-message, failure and continuation semantics of the
// per-message path.
func (s *Server) traverseParallel(ctx context.Context, sess *session, rootV hypercube.Vertex, threshold int, trace *[]TraceStep) (collected []Match, nodes, msgs, failed, rounds, frames int) {
	batch := s.cfg.BatchWaves == BatchOn
	need := threshold
	for len(sess.work) > 0 && need > 0 && ctx.Err() == nil {
		rounds++
		wave := sess.work
		sess.work = nil
		if batch && rounds == 1 && threshold == All &&
			sess.cube.Dim()-rootV.OnesCount() <= maxBottomUpFree {
			wave = expandFrontier(sess.cube, rootV, wave, sess.exclude)
		}

		var results []visitResult
		if batch {
			var waveFrames int
			results, waveFrames = s.dispatchWave(ctx, sess, wave, rootV, need)
			frames += waveFrames
		} else {
			results = make([]visitResult, len(wave))
			sem := make(chan struct{}, s.cfg.ParallelFanout)
			var wg sync.WaitGroup
			for i, u := range wave {
				wg.Add(1)
				sem <- struct{}{}
				go func(i int, u workUnit) {
					defer wg.Done()
					defer func() { <-sem }()
					results[i] = s.visit(ctx, sess, u, rootV, need)
				}(i, u)
			}
			wg.Wait()
		}

		var nextLevel []workUnit
		for i, u := range wave {
			res := results[i]
			nodes++
			frames += res.frames
			if res.remote {
				msgs += 2
			}
			consumable := len(res.matches)
			if consumable > need {
				consumable = need
			}
			if consumable < 0 {
				consumable = 0
			}
			if trace != nil {
				*trace = append(*trace, TraceStep{
					Vertex:  uint64(u.vertex),
					Matches: consumable,
					Failed:  res.err != nil,
				})
			}
			if res.err != nil {
				failed++
				if u.genDim >= 0 {
					nextLevel = append(nextLevel, sess.childUnits(sess.cube.InducedChildEdges(rootV, u.vertex, u.genDim))...)
				}
				continue
			}
			if u.genDim >= 0 {
				nextLevel = append(nextLevel, sess.childUnits(res.children)...)
			}
			if need > 0 {
				take := len(res.matches)
				if take > need {
					take = need
				}
				collected = append(collected, res.matches[:take]...)
				need -= take
				if take < len(res.matches) || res.remaining > 0 {
					sess.work = append(sess.work, workUnit{vertex: u.vertex, genDim: -1, skip: u.skip + take})
				}
			} else if len(res.matches) > 0 || res.remaining > 0 {
				// Contacted but unconsumed: keep for continuation.
				sess.work = append(sess.work, workUnit{vertex: u.vertex, genDim: -1, skip: u.skip})
			}
		}
		sess.work = append(sess.work, nextLevel...)
	}
	return collected, nodes, msgs, failed, rounds, frames
}

// expandFrontier transitively expands a frontier into the full list of
// work units its traversal would visit, in the exact order the
// level-by-level waves would concatenate to: each unit is followed by
// its SBT children, generated breadth-first. Expanded units carry
// genDim -1 so the accounting loop neither re-appends their children
// on success nor regenerates them on failure — the whole subtree is
// already in the wave. Children intersecting the exclude mask are
// pruned (prefix-multicast branch partition); zero excludes nothing.
func expandFrontier(cube hypercube.Cube, rootV hypercube.Vertex, frontier []workUnit, exclude hypercube.Vertex) []workUnit {
	out := make([]workUnit, 0, cube.SubcubeSize(rootV))
	queue := append(make([]workUnit, 0, len(frontier)), frontier...)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u.genDim >= 0 {
			queue = append(queue, filterUnits(asUnits(cube.InducedChildEdges(rootV, u.vertex, u.genDim)), exclude)...)
			u.genDim = -1
		}
		out = append(out, u)
	}
	return out
}

// dispatchWave answers one wave of work units, coalescing every unit
// that resolves to the same physical peer into one msgSubQueryBatch.
// The returned results are positionally aligned with wave; the second
// return value counts the batch frames sent (per-unit fallback frames
// are carried in the individual results). Units the dispatching server
// can answer itself — the query root, plus any vertex resolving to the
// root's own address — are scanned locally with no frame at all; their
// remote flag still follows the paper's logical accounting, which
// charges an exchange for every vertex other than the root. Any unit a
// batch cannot serve (transport failure, or per-unit ownership error)
// falls back to the per-message visit path with its resolve-retry
// healing, so failure semantics are identical to the unbatched mode.
func (s *Server) dispatchWave(ctx context.Context, sess *session, wave []workUnit, rootV hypercube.Vertex, limit int) ([]visitResult, int) {
	instance := sess.instance
	results := make([]visitResult, len(wave))

	// Resolve each distinct non-root vertex once. A foreign branch
	// root (prefix multicast, rootLocal false) is a remote vertex like
	// any other and must be resolved.
	distinct := make([]hypercube.Vertex, 0, len(wave))
	pos := make(map[hypercube.Vertex]int, len(wave))
	for _, u := range wave {
		if u.vertex == rootV && sess.rootLocal {
			continue
		}
		if _, ok := pos[u.vertex]; !ok {
			pos[u.vertex] = len(distinct)
			distinct = append(distinct, u.vertex)
		}
	}
	var (
		addrs []transport.Addr
		errs  []error
	)
	if br, ok := s.cfg.Resolver.(BatchResolver); ok {
		addrs, errs = br.ResolveBatch(ctx, instance, distinct)
	} else {
		addrs = make([]transport.Addr, len(distinct))
		errs = make([]error, len(distinct))
		sem := make(chan struct{}, s.cfg.ParallelFanout)
		var wg sync.WaitGroup
		for i, v := range distinct {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, v hypercube.Vertex) {
				defer wg.Done()
				defer func() { <-sem }()
				addrs[i], errs[i] = s.cfg.Resolver.Resolve(ctx, instance, v)
			}(i, v)
		}
		wg.Wait()
	}

	// This server's own address identifies which other vertices it
	// hosts; failing to resolve it only disables that shortcut. The
	// session's selfVertex — not the branch root, which a prefix
	// multicast may not own — resolves to it. On a soft-served search
	// the root resolves to the OWNER's address, not this node's, so
	// the shortcut stays off — non-root vertices all take the batch
	// path to their authoritative peers (possibly including this node
	// itself, via a self-addressed frame).
	var selfAddr transport.Addr
	if sess.soft == nil {
		if a, err := s.cfg.Resolver.Resolve(ctx, instance, sess.selfVertex); err == nil {
			selfAddr = a
		}
	}

	// Group wave positions by destination peer, preserving first-seen
	// dispatch order.
	local := make([]int, 0, len(wave))
	byAddr := make(map[transport.Addr][]int)
	order := make([]transport.Addr, 0, len(wave))
	for i, u := range wave {
		if u.vertex == rootV && sess.rootLocal {
			local = append(local, i)
			continue
		}
		p := pos[u.vertex]
		if errs[p] != nil {
			results[i] = visitResult{remote: true, err: errs[p]}
			continue
		}
		addr := addrs[p]
		if selfAddr != "" && addr == selfAddr {
			local = append(local, i)
			continue
		}
		if _, ok := byAddr[addr]; !ok {
			order = append(order, addr)
		}
		byAddr[addr] = append(byAddr[addr], i)
	}

	// Local units: scanned directly, no frame. A vertex the resolver
	// maps here but the DHT layer no longer owns takes the remote path.
	for _, i := range local {
		u := wave[i]
		isLocalRoot := u.vertex == rootV && sess.rootLocal
		if isLocalRoot && sess.soft != nil {
			matches, remaining := scanTable(sess.soft, u.vertex, rootV, sess.pred, u.skip, limit)
			var children []hypercube.ChildEdge
			if u.genDim >= 0 {
				children = sess.cube.InducedChildEdges(rootV, u.vertex, u.genDim)
			}
			results[i] = visitResult{matches: matches, remaining: remaining, children: children}
			continue
		}
		if !isLocalRoot && !s.owns(instance, u.vertex) {
			results[i] = s.visit(ctx, sess, u, rootV, limit)
			continue
		}
		matches, remaining := s.scanVertexRead(ctx, sess.cube.Dim(), instance, u.vertex, rootV, sess.pred, u.skip, limit)
		var children []hypercube.ChildEdge
		if u.genDim >= 0 {
			children = sess.cube.InducedChildEdges(rootV, u.vertex, u.genDim)
		}
		results[i] = visitResult{matches: matches, remaining: remaining, children: children, remote: !isLocalRoot}
		if !isLocalRoot {
			s.met.coalesced.Inc() // frame avoided entirely
		}
	}

	// One batch per distinct peer, concurrently, fanout-bounded.
	frames := make([]int, len(order))
	sem := make(chan struct{}, s.cfg.ParallelFanout)
	var wg sync.WaitGroup
	for k, addr := range order {
		wg.Add(1)
		sem <- struct{}{}
		go func(k int, addr transport.Addr, idx []int) {
			defer wg.Done()
			defer func() { <-sem }()
			frames[k] = s.sendBatch(ctx, sess, addr, idx, wave, rootV, limit, results)
		}(k, addr, byAddr[addr])
	}
	wg.Wait()

	total := 0
	for _, f := range frames {
		total += f
	}
	return results, total
}

// sendBatch sends one coalesced msgSubQueryBatch and unpacks per-unit
// outcomes into results (positions idx of wave). It returns the number
// of batch frames sent; units the batch could not serve are retried on
// the per-message path and carry those frames in their own results.
func (s *Server) sendBatch(ctx context.Context, sess *session, addr transport.Addr, idx []int, wave []workUnit, rootV hypercube.Vertex, limit int, results []visitResult) int {
	units := make([]wireUnit, len(idx))
	for j, i := range idx {
		u := wave[i]
		units[j] = wireUnit{Vertex: uint64(u.vertex), Skip: u.skip, GenDim: u.genDim}
	}
	msg := msgSubQueryBatch{
		Instance: sess.instance,
		Dim:      sess.cube.Dim(),
		Root:     uint64(rootV),
		QueryKey: sess.pred.key,
		Limit:    limit,
		Units:    units,
		Class:    sess.pred.class,
	}
	if dl, ok := ctx.Deadline(); ok {
		msg.DeadlineUnixNano = dl.UnixNano()
	}
	s.met.batchSize.Observe(int64(len(units)))
	raw, err := s.cfg.Sender.Send(ctx, addr, msg)
	resp, shapeOK := raw.(respSubQueryBatch)
	if err != nil || !shapeOK || len(resp.Results) != len(idx) {
		if cerr := ctx.Err(); cerr != nil {
			// The search itself is dead; per-unit retries would only
			// spray doomed frames at an already loaded peer.
			for _, i := range idx {
				results[i] = visitResult{remote: true, err: cerr}
			}
			return 1
		}
		// The whole frame failed (peer down, partitioned, or answered
		// nonsense): every unit retries individually, which reproduces
		// the unbatched failure accounting exactly.
		for _, i := range idx {
			results[i] = s.visit(ctx, sess, wave[i], rootV, limit)
		}
		return 1
	}
	s.met.coalesced.Add(uint64(len(units) - 1))
	for j, i := range idx {
		r := resp.Results[j]
		if r.ErrCode == errCodeCancelled {
			cerr := ctx.Err()
			if cerr == nil {
				cerr = context.DeadlineExceeded
			}
			results[i] = visitResult{remote: true, err: cerr}
			continue
		}
		if r.ErrCode != 0 {
			results[i] = s.visit(ctx, sess, wave[i], rootV, limit)
			continue
		}
		children := make([]hypercube.ChildEdge, len(r.Children))
		for k, e := range r.Children {
			children[k] = hypercube.ChildEdge{To: hypercube.Vertex(e.Vertex), Dim: e.Dim}
		}
		results[i] = visitResult{matches: r.Matches, remaining: r.Remaining, children: children, remote: true}
	}
	return 1
}

func asUnits(edges []hypercube.ChildEdge) []workUnit {
	units := make([]workUnit, len(edges))
	for i, e := range edges {
		units[i] = workUnit{vertex: e.To, genDim: e.Dim, skip: 0}
	}
	return units
}

// childUnits converts child edges to work units, pruning vertices the
// session's branch-exclusion mask assigns to an earlier prefix branch.
func (sess *session) childUnits(edges []hypercube.ChildEdge) []workUnit {
	return filterUnits(asUnits(edges), sess.exclude)
}

// filterUnits drops units whose vertex intersects exclude. SBT paths
// only accumulate bits, so cutting a child here removes exactly the
// subtree of vertices carrying an excluded dimension — every other
// descendant stays reachable.
func filterUnits(units []workUnit, exclude hypercube.Vertex) []workUnit {
	if exclude == 0 {
		return units
	}
	keep := units[:0]
	for _, u := range units {
		if u.vertex&exclude == 0 {
			keep = append(keep, u)
		}
	}
	return keep
}
