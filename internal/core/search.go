package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

// response error codes carried in respTQuery (the transport reports
// genuine failures; these are protocol-level outcomes).
const (
	errCodeNone = iota
	errCodeNoSession
)

// maxBottomUpFree bounds the free dimensions of a bottom-up traversal:
// the root enumerates the whole subhypercube up front, so 2^free
// vertices are materialized.
const maxBottomUpFree = 22

// spanStepSampleEvery is the stride at which instrumented searches
// attach the full per-vertex step list to their telemetry span. Every
// search still records a span with exact aggregate counts; collecting
// the wave tree itself allocates a few KB per query, which at high
// query rates is churn the bounded span ring mostly evicts unread.
// The first search after startup is always sampled.
const spanStepSampleEvery = 8

// runSearch is the root-side orchestration of a superset search: the
// paper's Steps 1–3, driving the frontier queue U over the spanning
// binomial tree SBT_{H_r}(F_h(K)).
func (s *Server) runSearch(ctx context.Context, msg msgTQuery) (respTQuery, error) {
	query := keyword.ParseKey(msg.QueryKey)
	if query.IsEmpty() {
		return respTQuery{}, ErrEmptyQuery
	}
	if msg.Threshold <= 0 {
		return respTQuery{}, fmt.Errorf("core: threshold %d must be positive", msg.Threshold)
	}
	order := msg.Order
	if order == 0 {
		order = TopDown
	}
	if !order.valid() {
		return respTQuery{}, fmt.Errorf("core: invalid traversal order %d", order)
	}
	rootV := hypercube.Vertex(msg.Vertex)
	cube, err := s.cubeFor(msg.Dim)
	if err != nil {
		return respTQuery{}, err
	}

	// Telemetry is sampled only when a registry is wired; the disabled
	// path takes no timestamps and allocates no trace.
	instrumented := s.cfg.Telemetry != nil
	var startedAt time.Time
	if instrumented {
		startedAt = time.Now()
	}

	var sess *session
	if msg.SessionID != 0 {
		sess = s.sessions.take(msg.SessionID)
		if sess == nil {
			return respTQuery{ErrCode: errCodeNoSession}, nil
		}
	} else {
		if !msg.Cumulative && !msg.NoCache {
			if matches, exhausted, ok := s.cache.get(cacheKey(msg.Instance, msg.QueryKey), msg.Threshold); ok {
				s.met.cacheHits.Inc()
				resp := respTQuery{Matches: matches, Exhausted: exhausted, CacheHit: true}
				if instrumented {
					s.recordSearchSpan(msg, order, rootV, resp, startedAt, time.Since(startedAt).Nanoseconds(), nil)
				}
				return resp, nil
			} else if s.cache.enabled() {
				s.met.cacheMisses.Inc()
			}
		}
		var err error
		sess, err = newSession(cube, msg.Instance, msg.QueryKey, query, rootV, order)
		if err != nil {
			return respTQuery{}, err
		}
	}

	// Span aggregates (nodes, msgs, duration, …) are recorded for every
	// search, but the per-vertex step list costs a few KB per query and
	// the bounded span ring evicts most of it unread, so step detail is
	// sampled. Explicit trace requests always collect.
	collectSteps := msg.WantTrace
	if instrumented && !collectSteps {
		collectSteps = (s.searchSeq.Add(1)-1)%spanStepSampleEvery == 0
	}
	var trace *[]TraceStep
	if collectSteps {
		// One step per visited vertex; the wave can cover the root's
		// whole subcube, so size the buffer once instead of regrowing
		// mid-traversal.
		capHint := cube.SubcubeSize(rootV)
		if capHint > telemetry.MaxSpanSteps {
			capHint = telemetry.MaxSpanSteps
		}
		buf := make([]TraceStep, 0, capHint)
		trace = &buf
	}
	var (
		collected []Match
		nodes     int
		msgs      int
		failed    int
		rounds    int
	)
	if sess.order == ParallelLevels {
		collected, nodes, msgs, failed, rounds = s.traverseParallel(ctx, sess, rootV, msg.Threshold, trace)
	} else {
		collected, nodes, msgs, failed = s.traverseSequential(ctx, sess, rootV, msg.Threshold, trace)
		rounds = nodes
	}
	exhausted := len(sess.work) == 0

	resp := respTQuery{
		Matches:     collected,
		Exhausted:   exhausted,
		SubNodes:    nodes,
		SubMsgs:     msgs,
		FailedNodes: failed,
		Rounds:      rounds,
	}
	if msg.WantTrace && trace != nil {
		resp.Trace = *trace
	}
	if msg.Cumulative && !exhausted {
		resp.SessionID = s.sessions.save(sess)
	}
	if msg.SessionID == 0 && !msg.Cumulative && !msg.NoCache && failed == 0 {
		s.cache.put(msg.Instance, msg.QueryKey, query, collected, exhausted)
	}
	if instrumented {
		// One clock read shared by the latency histogram and the span.
		elapsedNS := time.Since(startedAt).Nanoseconds()
		s.met.searchNodes.Add(uint64(nodes))
		s.met.searchMsgs.Add(uint64(msgs))
		s.met.searchFailed.Add(uint64(failed))
		s.met.searchRounds.Add(uint64(rounds))
		s.met.searchMatches.Add(uint64(len(collected)))
		s.met.searchLatency.Observe(elapsedNS)
		var steps []TraceStep
		if trace != nil {
			steps = *trace
		}
		s.recordSearchSpan(msg, order, rootV, resp, startedAt, elapsedNS, steps)
	}
	return resp, nil
}

// recordSearchSpan converts one completed superset search into a
// telemetry span: the T_QUERY/T_CONT/T_STOP wave tree the root drove,
// with per-step vertex and depth, bounded by telemetry.MaxSpanSteps.
func (s *Server) recordSearchSpan(msg msgTQuery, order TraversalOrder, rootV hypercube.Vertex, resp respTQuery, startedAt time.Time, elapsedNS int64, steps []TraceStep) {
	span := telemetry.Span{
		Op:             "superset-search",
		Instance:       msg.Instance,
		Query:          msg.QueryKey,
		Root:           uint64(rootV),
		Order:          order.String(),
		Start:          startedAt,
		DurationNS:     elapsedNS,
		Nodes:          resp.SubNodes,
		Msgs:           resp.SubMsgs,
		Failed:         resp.FailedNodes,
		Rounds:         resp.Rounds,
		Matches:        len(resp.Matches),
		CacheHit:       resp.CacheHit,
		Exhausted:      resp.Exhausted,
		ContinuedFrom:  msg.SessionID,
		SessionPending: resp.SessionID,
	}
	if resp.CacheHit {
		span.Nodes = 1 // only the root was involved
	}
	if n := len(steps); n > 0 {
		kept := steps
		if n > telemetry.MaxSpanSteps {
			kept = steps[:telemetry.MaxSpanSteps]
			span.DroppedSteps = n - telemetry.MaxSpanSteps
		}
		span.Steps = make([]telemetry.SpanStep, len(kept))
		for i, st := range kept {
			kind := telemetry.StepCont
			if i == 0 && msg.SessionID == 0 {
				kind = telemetry.StepQuery // the initiator's T_QUERY at the root
			}
			if i == len(steps)-1 && !resp.Exhausted {
				kind = telemetry.StepStop // threshold met: the wave halted here
			}
			span.Steps[i] = telemetry.SpanStep{
				Kind:    kind,
				Vertex:  st.Vertex,
				Depth:   hypercube.Hamming(rootV, hypercube.Vertex(st.Vertex)),
				Matches: st.Matches,
				Failed:  st.Failed,
			}
		}
	}
	s.cfg.Telemetry.RecordSpan(span)
}

// newSession builds the initial frontier for a fresh query.
func newSession(cube hypercube.Cube, instance, queryKey string, query keyword.Set, rootV hypercube.Vertex, order TraversalOrder) (*session, error) {
	sess := &session{instance: instance, cube: cube, queryKey: queryKey, query: query, order: order}
	switch order {
	case TopDown, ParallelLevels:
		// The root itself is the first unit; its children are the
		// paper's initial queue U (one neighbor per free dimension).
		sess.work = []workUnit{{vertex: rootV, genDim: cube.Dim(), skip: 0}}
	case BottomUp:
		free := cube.Dim() - rootV.OnesCount()
		if free > maxBottomUpFree {
			return nil, fmt.Errorf("core: bottom-up traversal over %d free dimensions exceeds limit %d",
				free, maxBottomUpFree)
		}
		levels := cube.InducedLevels(rootV)
		for d := len(levels) - 1; d >= 0; d-- {
			for _, v := range levels[d] {
				sess.work = append(sess.work, workUnit{vertex: v, genDim: -1, skip: 0})
			}
		}
	}
	return sess, nil
}

// visitResult is the outcome of scanning one hypercube node.
type visitResult struct {
	matches   []Match
	remaining int
	children  []hypercube.ChildEdge
	remote    bool
	err       error
}

// visit scans one work unit: locally when the unit's vertex is the
// query root hosted by this server, remotely via a T_QUERY/T_CONT
// round trip otherwise.
func (s *Server) visit(ctx context.Context, sess *session, u workUnit, rootV hypercube.Vertex, limit int) visitResult {
	instance, queryKey, query := sess.instance, sess.queryKey, sess.query
	if u.vertex == rootV {
		matches, remaining := s.scanVertex(instance, u.vertex, rootV, query, u.skip, limit)
		var children []hypercube.ChildEdge
		if u.genDim >= 0 {
			children = sess.cube.InducedChildEdges(rootV, u.vertex, u.genDim)
		}
		return visitResult{matches: matches, remaining: remaining, children: children}
	}

	msg := msgSubQuery{
		Instance: instance,
		Dim:      sess.cube.Dim(),
		Vertex:   uint64(u.vertex),
		Root:     uint64(rootV),
		QueryKey: queryKey,
		Limit:    limit,
		Skip:     u.skip,
		GenDim:   u.genDim,
	}
	var raw any
	for attempt := 0; ; attempt++ {
		addr, err := s.cfg.Resolver.Resolve(ctx, instance, u.vertex)
		if err != nil {
			return visitResult{remote: true, err: err}
		}
		raw, err = s.cfg.Sender.Send(ctx, addr, msg)
		if err == nil {
			break
		}
		// A stale cached binding (the node departed and the key
		// re-homed) heals by invalidating and re-resolving once.
		if inv, ok := s.cfg.Resolver.(*OverlayResolver); ok && attempt == 0 {
			inv.Invalidate(instance, u.vertex)
			continue
		}
		return visitResult{remote: true, err: err}
	}
	sq, ok := raw.(respSubQuery)
	if !ok {
		return visitResult{remote: true, err: fmt.Errorf("core: unexpected sub-query response %T", raw)}
	}
	children := make([]hypercube.ChildEdge, len(sq.Children))
	for i, e := range sq.Children {
		children[i] = hypercube.ChildEdge{To: hypercube.Vertex(e.Vertex), Dim: e.Dim}
	}
	return visitResult{matches: sq.Matches, remaining: sq.Remaining, children: children, remote: true}
}

// traverseSequential implements the paper's sequential Steps 1–3: pop
// one frontier node at a time, scan it, append its children, stop as
// soon as the threshold is met (T_STOP). Failed nodes are skipped —
// their subtree is still reachable because the child list is
// regenerable locally — and counted in failed.
func (s *Server) traverseSequential(ctx context.Context, sess *session, rootV hypercube.Vertex, threshold int, trace *[]TraceStep) (collected []Match, nodes, msgs, failed int) {
	need := threshold
	for len(sess.work) > 0 && need > 0 {
		u := sess.work[0]
		sess.work = sess.work[1:]
		res := s.visit(ctx, sess, u, rootV, need)
		nodes++
		if res.remote {
			msgs += 2
		}
		if trace != nil {
			*trace = append(*trace, TraceStep{
				Vertex:  uint64(u.vertex),
				Matches: len(res.matches),
				Failed:  res.err != nil,
			})
		}
		if res.err != nil {
			failed++
			if u.genDim >= 0 {
				// Regenerate the failed node's children locally so the
				// rest of its subtree is still explored.
				sess.work = append(sess.work, asUnits(sess.cube.InducedChildEdges(rootV, u.vertex, u.genDim))...)
			}
			continue
		}
		collected = append(collected, res.matches...)
		need -= len(res.matches)
		if u.genDim >= 0 {
			sess.work = append(sess.work, asUnits(res.children)...)
		}
		if res.remaining > 0 {
			// Partially consumed node: resume it first on continuation.
			sess.work = append([]workUnit{{vertex: u.vertex, genDim: -1, skip: u.skip + len(res.matches)}}, sess.work...)
		}
	}
	return collected, nodes, msgs, failed
}

// traverseParallel queries all frontier nodes of a wave concurrently
// (Section 3.5's level-synchronous variant). Results are consumed in
// frontier order so the output matches TopDown; over-fetched matches
// from nodes beyond the stopping point are discarded and those nodes
// re-queued as match-only units for later continuation.
func (s *Server) traverseParallel(ctx context.Context, sess *session, rootV hypercube.Vertex, threshold int, trace *[]TraceStep) (collected []Match, nodes, msgs, failed, rounds int) {
	need := threshold
	for len(sess.work) > 0 && need > 0 {
		rounds++
		wave := sess.work
		sess.work = nil
		results := make([]visitResult, len(wave))

		sem := make(chan struct{}, s.cfg.ParallelFanout)
		var wg sync.WaitGroup
		for i, u := range wave {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, u workUnit) {
				defer wg.Done()
				defer func() { <-sem }()
				results[i] = s.visit(ctx, sess, u, rootV, need)
			}(i, u)
		}
		wg.Wait()

		var nextLevel []workUnit
		for i, u := range wave {
			res := results[i]
			nodes++
			if res.remote {
				msgs += 2
			}
			consumable := len(res.matches)
			if consumable > need {
				consumable = need
			}
			if consumable < 0 {
				consumable = 0
			}
			if trace != nil {
				*trace = append(*trace, TraceStep{
					Vertex:  uint64(u.vertex),
					Matches: consumable,
					Failed:  res.err != nil,
				})
			}
			if res.err != nil {
				failed++
				if u.genDim >= 0 {
					nextLevel = append(nextLevel, asUnits(sess.cube.InducedChildEdges(rootV, u.vertex, u.genDim))...)
				}
				continue
			}
			if u.genDim >= 0 {
				nextLevel = append(nextLevel, asUnits(res.children)...)
			}
			if need > 0 {
				take := len(res.matches)
				if take > need {
					take = need
				}
				collected = append(collected, res.matches[:take]...)
				need -= take
				if take < len(res.matches) || res.remaining > 0 {
					sess.work = append(sess.work, workUnit{vertex: u.vertex, genDim: -1, skip: u.skip + take})
				}
			} else if len(res.matches) > 0 || res.remaining > 0 {
				// Contacted but unconsumed: keep for continuation.
				sess.work = append(sess.work, workUnit{vertex: u.vertex, genDim: -1, skip: u.skip})
			}
		}
		sess.work = append(sess.work, nextLevel...)
	}
	return collected, nodes, msgs, failed, rounds
}

func asUnits(edges []hypercube.ChildEdge) []workUnit {
	units := make([]workUnit, len(edges))
	for i, e := range edges {
		units[i] = workUnit{vertex: e.To, genDim: e.Dim, skip: 0}
	}
	return units
}
