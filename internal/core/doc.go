// Package core implements the hypercube keyword index and search
// scheme of Joung, Fang and Yang (ICDCS 2005), Section 3.
//
// Every object σ with keyword set K_σ is indexed at exactly one logical
// node of an r-dimensional hypercube: the vertex F_h(K_σ) whose one-bits
// are the hashed dimensions of σ's keywords. Logical vertices are mapped
// onto physical DHT nodes by the hash mapping g (see Resolver). The
// package provides:
//
//   - Server: the per-physical-node index service holding the index
//     tables Tbl_u of every logical vertex assigned to it, the FIFO
//     result cache of Section 4, and the root-side orchestration of the
//     superset-search protocol (T_QUERY / T_CONT / T_STOP).
//   - Client: the initiator-side API — Insert, Delete, PinSearch,
//     SupersetSearch, and cumulative search cursors.
//   - Decomposed: the multi-hypercube decomposition of Section 3.4.
//   - Ranking helpers exploiting Lemma 3.2 (results grouped by the
//     number of extra keywords).
//
// Wire-protocol note: in the paper, every node w visited during a
// superset search sends its matching object IDs "directly to u" (the
// initiator) while the traversal bookkeeping (T_CONT/T_STOP) flows back
// to the root v. This implementation runs on a request/response
// transport, so w's matches travel to the root inside the T_CONT
// response and the root forwards the accumulated results to the
// initiator in its final response. The number of hypercube nodes
// contacted and the number of messages per node (one query, one reply)
// are identical to the paper's protocol; only the carrier of the
// result bytes differs.
package core
