package core

import (
	"context"
	"strconv"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/resilience"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// benchClient builds an 8-dimensional 16-server deployment (optionally
// instrumented) and indexes a deterministic corpus with enough keyword
// overlap that the benchmark query walks a real subhypercube. The
// corpus size keeps the per-vertex scan work representative of the
// paper's load (hundreds of objects per node), so the measured
// telemetry overhead is not inflated by a near-empty index.
func benchClient(b *testing.B, reg *telemetry.Registry, wrap func(transport.Sender) transport.Sender) *Client {
	b.Helper()
	const nServers = 16
	net := inmem.New(1)
	b.Cleanup(func() { net.Close() })
	net.SetTelemetry(reg)
	var sender transport.Sender = net
	if wrap != nil {
		sender = wrap(net)
	}
	hasher := keyword.MustNewHasher(8, 42)
	addrs := make([]transport.Addr, nServers)
	for i := range addrs {
		addrs[i] = transport.Addr("bench-" + strconv.Itoa(i))
	}
	resolver := FuncResolver(func(v hypercube.Vertex) transport.Addr {
		return addrs[int(uint64(v)%nServers)]
	})
	for i := range addrs {
		srv, err := NewServer(ServerConfig{
			Hasher:    hasher,
			Resolver:  resolver,
			Sender:    sender,
			Telemetry: reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.Bind(addrs[i], srv.Handler); err != nil {
			b.Fatal(err)
		}
	}
	client, err := NewClient(hasher, resolver, sender)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 10000; i++ {
		o := Object{
			ID: "obj-" + strconv.Itoa(i),
			Keywords: keyword.NewSet(
				"base", "kw"+strconv.Itoa(i%6), "kw"+strconv.Itoa((i/3)%6),
				"tag"+strconv.Itoa(i%24)),
		}
		if _, err := client.Insert(ctx, o); err != nil {
			b.Fatal(err)
		}
	}
	return client
}

// benchmarkSupersetSearch measures one exhaustive uncached superset
// search per iteration. The query is selective (≈400 matches out of
// 10k objects) so the cost measured is the subcube traversal and
// per-vertex scans — the paths telemetry instruments — rather than
// bulk result copying, which would drown the comparison in GC assist
// for the result slices. Comparing the Noop-registry and instrumented
// runs bounds the telemetry overhead on that hot path.
func benchmarkSupersetSearch(b *testing.B, reg *telemetry.Registry, wrap func(transport.Sender) transport.Sender) {
	client := benchClient(b, reg, wrap)
	q := keyword.NewSet("base", "tag5")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.SupersetSearch(ctx, q, All, SearchOptions{NoCache: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSupersetSearchNoopTelemetry(b *testing.B) {
	benchmarkSupersetSearch(b, telemetry.Noop(), nil)
}

func BenchmarkSupersetSearchTelemetry(b *testing.B) {
	benchmarkSupersetSearch(b, telemetry.New(128), nil)
}

// BenchmarkSupersetSearchResilience measures the same instrumented
// search with every send routed through the resilience middleware at
// the default policy — on a healthy network this exercises only the
// middleware's per-send bookkeeping (classifier, breaker lookup), the
// overhead production deployments pay.
func BenchmarkSupersetSearchResilience(b *testing.B) {
	reg := telemetry.New(128)
	benchmarkSupersetSearch(b, reg, func(inner transport.Sender) transport.Sender {
		mw := resilience.Wrap(inner, resilience.DefaultPolicy())
		mw.SetReadOnly(ReadOnlyMessage)
		mw.SetTelemetry(reg)
		return mw
	})
}
