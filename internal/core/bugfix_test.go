package core

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

func newSpanTestServer(t *testing.T, reg *telemetry.Registry) *Server {
	t.Helper()
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	srv, err := NewServer(ServerConfig{
		Hasher:    keyword.MustNewHasher(6, 42),
		Resolver:  FuncResolver(func(hypercube.Vertex) transport.Addr { return "ix-0" }),
		Sender:    net,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestSpanStopSurvivesTruncation is the regression test for the
// truncated-span bug: recordSearchSpan compared the step index against
// len(steps)-1 while iterating the truncated prefix, so any trace
// longer than telemetry.MaxSpanSteps lost its halting T_STOP marker.
// The truncation must retain the final (halting) step and mark it.
func TestSpanStopSurvivesTruncation(t *testing.T) {
	reg := telemetry.New(8)
	srv := newSpanTestServer(t, reg)

	const extra = 37
	steps := make([]TraceStep, telemetry.MaxSpanSteps+extra)
	for i := range steps {
		steps[i] = TraceStep{Vertex: uint64(i), Matches: 1}
	}
	srv.recordSearchSpan("superset-search", msgTQuery{Instance: DefaultInstance, QueryKey: "a"},
		TopDown, 0, respTQuery{Exhausted: false}, time.Now(), 1, steps)

	spans, _ := reg.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if len(sp.Steps) != telemetry.MaxSpanSteps {
		t.Fatalf("kept %d steps, want %d", len(sp.Steps), telemetry.MaxSpanSteps)
	}
	if sp.DroppedSteps != extra {
		t.Fatalf("DroppedSteps = %d, want %d", sp.DroppedSteps, extra)
	}
	if sp.Steps[0].Kind != telemetry.StepQuery {
		t.Errorf("first step kind %q, want %q", sp.Steps[0].Kind, telemetry.StepQuery)
	}
	last := sp.Steps[len(sp.Steps)-1]
	if last.Kind != telemetry.StepStop {
		t.Errorf("last kept step kind %q, want %q (T_STOP lost by truncation)", last.Kind, telemetry.StepStop)
	}
	if want := steps[len(steps)-1].Vertex; last.Vertex != want {
		t.Errorf("last kept step is vertex %d, want the halting vertex %d", last.Vertex, want)
	}
}

// TestSpanStopUntruncatedStillMarked guards the common case around the
// same code path: short traces keep every step and the final one is
// the stop marker.
func TestSpanStopUntruncatedStillMarked(t *testing.T) {
	reg := telemetry.New(8)
	srv := newSpanTestServer(t, reg)

	steps := []TraceStep{{Vertex: 1}, {Vertex: 2}, {Vertex: 3}}
	srv.recordSearchSpan("superset-search", msgTQuery{Instance: DefaultInstance, QueryKey: "b"},
		TopDown, 0, respTQuery{Exhausted: false}, time.Now(), 1, steps)

	spans, _ := reg.Spans()
	sp := spans[0]
	if len(sp.Steps) != 3 || sp.DroppedSteps != 0 {
		t.Fatalf("kept %d steps dropped %d, want 3/0", len(sp.Steps), sp.DroppedSteps)
	}
	if sp.Steps[2].Kind != telemetry.StepStop {
		t.Errorf("final step kind %q, want %q", sp.Steps[2].Kind, telemetry.StepStop)
	}
}

// TestCacheGetReturnsPrivateCopy pins the contract the lock-narrowing
// fix relies on: the slice get hands out is the caller's to mutate,
// and the cached copy stays intact.
func TestCacheGetReturnsPrivateCopy(t *testing.T) {
	c := newFIFOCache(100)
	set := keyword.NewSet("a", "b")
	c.put(DefaultInstance, supersetPred(set.Key(), set), []Match{{ObjectID: "o1"}, {ObjectID: "o2"}}, true)

	got, _, ok := c.get(DefaultInstance, supersetPred(set.Key(), set), All)
	if !ok || len(got) != 2 {
		t.Fatalf("get = (%v, %v), want 2 matches", got, ok)
	}
	got[0].ObjectID = "mutated"

	again, _, ok := c.get(DefaultInstance, supersetPred(set.Key(), set), All)
	if !ok || again[0].ObjectID != "o1" {
		t.Fatalf("cached copy corrupted by caller mutation: %+v", again)
	}
}

// TestCacheConcurrencyHammer races put/get/invalidateSubsetsOf across
// goroutines; run under -race via make chaos. The narrowed critical
// section in get must not let a concurrent eviction or invalidation
// tear the copied slice.
func TestCacheConcurrencyHammer(t *testing.T) {
	c := newFIFOCache(64)
	vocab := []string{"w0", "w1", "w2", "w3", "w4", "w5"}
	const workers, iters = 8, 400

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				a, b := vocab[(w+i)%len(vocab)], vocab[(w+2*i+1)%len(vocab)]
				set := keyword.NewSet(a, b)
				switch i % 3 {
				case 0:
					matches := []Match{{ObjectID: "o" + strconv.Itoa(i)}, {ObjectID: "p" + strconv.Itoa(w)}}
					c.put(DefaultInstance, supersetPred(set.Key(), set), matches, i%2 == 0)
				case 1:
					if got, _, ok := c.get(DefaultInstance, supersetPred(set.Key(), set), 1); ok {
						for _, m := range got {
							if m.ObjectID == "" {
								t.Error("torn match read from cache")
								return
							}
						}
						got[0].ObjectID = "scribble" // must never reach the cache
					}
				default:
					c.invalidateSubsetsOf(DefaultInstance, keyword.NewSet(a, b, vocab[i%len(vocab)]))
				}
			}
		}(w)
	}
	wg.Wait()

	// The FIFO invariants must survive the storm.
	if c.len() > 64 {
		t.Fatalf("cache holds %d entries over capacity", c.len())
	}
}

// TestSessionStoreTakeOrderIndependent checks the list-backed store:
// removal from the middle, double-take misses, and eviction order
// unaffected by interior removals.
func TestSessionStoreTakeOrderIndependent(t *testing.T) {
	st := newSessionStore(3)
	ids := make([]uint64, 4)
	for i := range ids {
		ids[i] = st.save(&session{pred: queryPred{key: strconv.Itoa(i)}})
	}
	// Capacity 3: saving 4 evicted the oldest (ids[0]).
	if st.take(ids[0]) != nil {
		t.Fatal("evicted session still retrievable")
	}
	// Take from the middle of the order list.
	if sess := st.take(ids[2]); sess == nil || sess.pred.key != "2" {
		t.Fatalf("middle take = %+v", sess)
	}
	if st.take(ids[2]) != nil {
		t.Fatal("double take returned a session")
	}
	// Oldest surviving is ids[1]; filling past capacity must evict it
	// even after the interior removal churned the list.
	st.save(&session{pred: queryPred{key: "4"}})
	st.save(&session{pred: queryPred{key: "5"}})
	if st.take(ids[1]) != nil {
		t.Fatal("eviction skipped the oldest surviving session")
	}
	if st.len() != 3 {
		t.Fatalf("len = %d, want 3", st.len())
	}
}

// TestSessionStoreConcurrencyHammer races save/take/len; run under
// -race via make chaos.
func TestSessionStoreConcurrencyHammer(t *testing.T) {
	st := newSessionStore(32)
	const workers, iters = 8, 500

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var mine []uint64
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					mine = append(mine, st.save(&session{pred: queryPred{key: strconv.Itoa(w)}}))
				case 1:
					if len(mine) > 0 {
						if sess := st.take(mine[0]); sess != nil && sess.pred.key != strconv.Itoa(w) {
							t.Error("take returned another goroutine's session")
							return
						}
						mine = mine[1:]
					}
				default:
					st.len()
				}
			}
		}(w)
	}
	wg.Wait()
	if st.len() > 32 {
		t.Fatalf("store holds %d sessions over capacity", st.len())
	}
}
