package core

import (
	"strconv"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// queryPred is a query's class-resolved match predicate: the one thing
// the scan and cache layers need to evaluate any query class against a
// table entry. The traversal machinery above it (roots, branches,
// frontier expansion) decides WHICH vertices to scan; the predicate
// decides what matches there.
type queryPred struct {
	class QueryClass
	// key is the wire QueryKey verbatim: the canonical set key for
	// superset and pin queries, the normalized prefix string for
	// prefix queries.
	key string
	// set is the parsed keyword set for superset and pin classes
	// (empty for prefix).
	set keyword.Set
	// prefix is the normalized prefix for ClassPrefix (empty
	// otherwise).
	prefix string
	// mask is the prefix query's dimension mask, carried only where
	// the cache key is computed (the coordinator); scans don't use it.
	mask uint64
}

// predFor resolves the wire (Class, QueryKey) pair into a predicate.
func predFor(class QueryClass, queryKey string) queryPred {
	p := queryPred{class: class, key: queryKey}
	if class == ClassPrefix {
		p.prefix = queryKey
	} else {
		p.set = keyword.ParseKey(queryKey)
	}
	return p
}

// supersetPred builds a ClassSuperset predicate from an explicit
// (cache key, parsed set) pair. The pair is usually (set.Key(), set),
// but the cache layer allows arbitrary keys, so both travel.
func supersetPred(queryKey string, query keyword.Set) queryPred {
	return queryPred{class: ClassSuperset, key: queryKey, set: query}
}

// matches applies the class predicate to an entry's keyword set.
func (p queryPred) matches(other keyword.Set) bool {
	switch p.class {
	case ClassPin:
		return p.set.Equal(other)
	case ClassPrefix:
		return other.HasPrefix(p.prefix)
	default:
		return p.set.SubsetOf(other)
	}
}

// invalidatedBy reports whether a mutation of an entry with keyword
// set changed can alter this query's cached answer. Conservative in
// the prefix case: the dimension mask is ignored, so a prefix entry
// may be dropped for a mutation outside its multicast range.
func (p queryPred) invalidatedBy(changed keyword.Set) bool {
	switch p.class {
	case ClassPin:
		return p.set.Equal(changed)
	case ClassPrefix:
		return changed.HasPrefix(p.prefix)
	default:
		return p.set.SubsetOf(changed)
	}
}

// cacheKey returns the result-cache key. Superset entries keep the
// bare legacy key so existing cache contents and stats semantics are
// untouched; other classes are tagged with the class and (for prefix)
// the dimension mask, so a prefix query and a superset query over the
// same keywords can never collide. '\x02' cannot appear in normalized
// keywords or prefixes, making the tagged encodings unambiguous.
func (p queryPred) cacheKey(instance string) string {
	switch p.class {
	case ClassPrefix:
		return cacheKey(instance, "\x02prefix\x02"+p.prefix+"\x02"+strconv.FormatUint(p.mask, 16))
	case ClassPin:
		return cacheKey(instance, "\x02pin\x02"+p.key)
	default:
		return cacheKey(instance, p.key)
	}
}
