package core

import (
	"errors"

	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Sentinel errors of the index layer.
var (
	// ErrEmptyQuery reports a search with no keywords.
	ErrEmptyQuery = errors.New("core: query keyword set is empty")
	// ErrNoSuchSession reports a cumulative-search continuation whose
	// session has expired or never existed at the root.
	ErrNoSuchSession = errors.New("core: no such search session")
	// ErrExhausted reports a cumulative continuation after the whole
	// subhypercube has been explored.
	ErrExhausted = errors.New("core: search exhausted")
	// ErrBadObject reports an object with an empty ID or keyword set.
	ErrBadObject = errors.New("core: object needs an ID and at least one keyword")
	// ErrUnhandledMessage reports a message type the index server does
	// not recognize, letting transport.Mux try other layers. It is the
	// shared transport sentinel so all layers mux uniformly.
	ErrUnhandledMessage = transport.ErrUnhandled
)

// Object is an indexable item: an application object ID plus the
// keyword set K_σ describing it.
type Object struct {
	ID       string
	Keywords keyword.Set
}

// Validate checks that the object can be indexed.
func (o Object) Validate() error {
	if o.ID == "" || o.Keywords.IsEmpty() {
		return ErrBadObject
	}
	return nil
}

// Match is one search hit: an object together with the exact keyword
// set it is indexed under and the depth (Hamming distance from the
// query root) of the hypercube node that indexed it. By Lemma 3.2 the
// object has at least Depth more keywords than the query.
type Match struct {
	ObjectID string
	SetKey   string // canonical encoding of the object's keyword set
	Vertex   uint64 // hypercube vertex that indexed the object
	Depth    int
}

// Keywords decodes the match's keyword set.
func (m Match) Keywords() keyword.Set { return keyword.ParseKey(m.SetKey) }

// QueryClass selects the match predicate and root resolution of a
// query. All classes flow through the same msgTQuery dispatch path and
// share the traversal, batching, caching, and migration machinery;
// only the predicate and the set of candidate vertices differ.
type QueryClass int

const (
	// ClassSuperset is the paper's superset search: objects whose
	// keyword set contains every query keyword. The zero value, so
	// pre-Class peers (gob or wire v2) decode as superset queries.
	ClassSuperset QueryClass = iota
	// ClassPin is the exact-set lookup of Section 3.4: one vertex, one
	// table entry.
	ClassPin
	// ClassPrefix matches objects carrying any keyword with a given
	// string prefix: a constrained multicast over the dimensions the
	// prefix can hash to.
	ClassPrefix
)

func (c QueryClass) valid() bool {
	return c == ClassSuperset || c == ClassPin || c == ClassPrefix
}

// String implements fmt.Stringer; the values label the
// core_search_class_total telemetry series.
func (c QueryClass) String() string {
	switch c {
	case ClassSuperset:
		return "superset"
	case ClassPin:
		return "pin"
	case ClassPrefix:
		return "prefix"
	default:
		return "invalid"
	}
}

// Stats describes the cost of one search operation, in the units the
// paper's Section 3.5 and Section 4 report.
type Stats struct {
	// NodesContacted is the number of distinct hypercube (logical)
	// nodes that examined their index table, including the root.
	NodesContacted int
	// Messages is the number of protocol messages exchanged, counting
	// one query and one reply per contacted node plus the initiator's
	// round trip to the root.
	Messages int
	// Rounds is the number of sequential message round trips the
	// traversal took: one per visited node for sequential orders, one
	// per level wave for ParallelLevels — the Section 3.5 time
	// complexities 2^(r-|One|) versus r-|One|.
	Rounds int
	// PhysFrames is the number of physical RPC frames sent for the
	// search, including the initiator's request to the root. Wave
	// batching makes this far smaller than Messages (which keeps the
	// paper's per-logical-vertex accounting) by coalescing each wave
	// into one frame per distinct physical peer.
	PhysFrames int
	// CacheHit reports that the root answered entirely from its cache.
	CacheHit bool
	// RefineHit reports that the root derived the answer from cached
	// ancestor state (Lemma 3.3) instead of traversing. Disjoint from
	// CacheHit: a refine hit is counted as a cache miss.
	RefineHit bool
	// SoftServed reports that a soft replica (not the root's owner)
	// answered the search.
	SoftServed bool
}

// Add accumulates other into s: the integer cost fields sum, the
// boolean provenance flags OR. Aggregators (decomposed and replicated
// indexes) must use Add rather than summing fields by hand, so a field
// added here can never be silently dropped from their accounting.
func (s *Stats) Add(other Stats) {
	s.NodesContacted += other.NodesContacted
	s.Messages += other.Messages
	s.Rounds += other.Rounds
	s.PhysFrames += other.PhysFrames
	s.CacheHit = s.CacheHit || other.CacheHit
	s.RefineHit = s.RefineHit || other.RefineHit
	s.SoftServed = s.SoftServed || other.SoftServed
}

// TraversalOrder selects how the spanning binomial tree is explored.
type TraversalOrder int

const (
	// TopDown explores the SBT breadth-first from the root: more
	// general objects (fewer extra keywords) are returned first. This
	// is the paper's presented algorithm and the default.
	TopDown TraversalOrder = iota + 1
	// BottomUp explores deepest levels first: more specific objects
	// are returned first (the paper's "slight modification").
	BottomUp
	// ParallelLevels queries all nodes of an SBT level concurrently,
	// level by level (the Section 3.5 time-optimal variant). Result
	// ordering matches TopDown; only latency and message interleaving
	// differ.
	ParallelLevels
)

func (o TraversalOrder) valid() bool {
	return o == TopDown || o == BottomUp || o == ParallelLevels
}

// String implements fmt.Stringer for diagnostics.
func (o TraversalOrder) String() string {
	switch o {
	case TopDown:
		return "top-down"
	case BottomUp:
		return "bottom-up"
	case ParallelLevels:
		return "parallel-levels"
	default:
		return "invalid"
	}
}

// SearchOptions tunes a superset search.
type SearchOptions struct {
	// Order selects the traversal strategy; zero value means TopDown.
	Order TraversalOrder
	// NoCache bypasses the root's result cache for this query.
	NoCache bool
	// Trace asks the root to record per-node visit outcomes in
	// Result.Trace (costs bandwidth proportional to nodes contacted).
	Trace bool
	// ClientID identifies the initiating client to the root's admission
	// controller for per-client fair queuing. It overrides the client's
	// SetClientID identity for this search; empty means anonymous (no
	// fair-queuing bucket).
	ClientID string
}

func (o SearchOptions) withDefaults() SearchOptions {
	if o.Order == 0 {
		o.Order = TopDown
	}
	return o
}

// TraceStep records one node visit of a traversal: which vertex was
// scanned and how many matches it contributed.
type TraceStep struct {
	Vertex  uint64
	Matches int
	Failed  bool
}

// Result is the outcome of a superset search.
type Result struct {
	// Matches holds up to the requested threshold of hits, in
	// traversal order (general-first for TopDown, specific-first for
	// BottomUp).
	Matches []Match
	// Exhausted reports that the entire subhypercube was explored, so
	// Matches is all of O_K.
	Exhausted bool
	// Stats is the cost of the operation.
	Stats Stats
	// SessionID identifies the root-side cumulative session, when one
	// was requested and more results may remain.
	SessionID uint64
	// Completeness is the fraction of the wave that answered: vertices
	// that scanned their tables over vertices the traversal reached
	// (1.0 = every contacted vertex answered, so by Lemma 3.2 the
	// matches are a faithful prefix of O_K in traversal-rank order).
	// Degraded answers (< 1.0) may silently miss entries indexed at the
	// skipped vertices, though their subtrees were still explored via
	// locally regenerated child lists. Cache hits are always 1.0: only
	// fully answered searches are cached.
	Completeness float64
	// FailedSubtrees counts the vertices skipped as unreachable — each
	// the root of a subtree whose own table entries (and only those)
	// are missing from Matches.
	FailedSubtrees int
	// Trace holds per-node visit records when SearchOptions.Trace was
	// set (empty on cache hits, which contact no subcube nodes).
	Trace []TraceStep
}
