package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p2pkeyword/keysearch/internal/admission"
	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/store"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// BatchMode selects whether ParallelLevels waves coalesce their
// sub-queries into one msgSubQueryBatch per physical peer.
// Batching changes only the physical framing: logical SubMsgs
// accounting, match order, Completeness and failed-subtree math are
// identical either way.
type BatchMode int

const (
	// BatchAuto resolves to the default (on) at server construction.
	BatchAuto BatchMode = iota
	// BatchOn coalesces each wave into one RPC frame per distinct peer.
	BatchOn
	// BatchOff dispatches one msgSubQuery per frontier vertex (the
	// paper's literal per-node exchange).
	BatchOff
)

// maxShards bounds the lock-stripe count: beyond a few hundred stripes
// the extra maps cost memory without reducing contention further.
const maxShards = 256

// ServerConfig configures an index Server.
type ServerConfig struct {
	// Hasher fixes the hypercube dimensionality and keyword hash; it
	// must be identical on every node of the deployment.
	Hasher keyword.Hasher
	// Resolver maps logical vertices to physical addresses (g).
	Resolver Resolver
	// Sender delivers protocol messages to other index servers.
	Sender transport.Sender
	// CacheCapacity is the root-result cache capacity in object-ID
	// units (the paper's α·|O|/2^r); 0 disables caching.
	CacheCapacity int
	// CachePolicy selects the result-cache replacement policy:
	// CachePolicyHot (default) — popularity-tracked segmented LRU with
	// frequency-sketch admission and capacity auto-tuning — or
	// CachePolicyFIFO, the fixed-size insertion-order cache.
	CachePolicy string
	// CacheTargetHit is the hit ratio the hot policy auto-tunes its
	// capacity toward (grow up to 4× CacheCapacity while below it,
	// shrink back when comfortably above). 0 disables auto-tuning.
	// Ignored by the FIFO policy.
	CacheTargetHit float64
	// HotReplicas enables soft replication of hot root vertices: a
	// root whose fresh-query count crosses HotPromoteThreshold gets
	// its table soft-copied onto this many extra peers, and the owner
	// advertises their addresses so clients spread the load. 0
	// disables the layer (the default).
	HotReplicas int
	// HotPromoteThreshold is the fresh-query count that promotes a
	// root (default 64). Counters halve every ~1024 fresh queries, so
	// the threshold tracks current popularity.
	HotPromoteThreshold int
	// MaxSessions bounds retained cumulative-search sessions
	// (oldest evicted first). Default 256.
	MaxSessions int
	// ParallelFanout bounds concurrent sub-queries in ParallelLevels
	// traversal. Default 32.
	ParallelFanout int
	// Shards is the number of lock stripes the server's table state is
	// split across (shard by hash(instance, vertex)). Rounded up to a
	// power of two and capped at 256; 0 selects GOMAXPROCS rounded up.
	// Reads (scans, pin queries) take a shard read lock, so they only
	// contend with writers on the same stripe. 1 restores a single
	// (read-write) lock over all tables.
	Shards int
	// ScanParallelism bounds the worker pool one msgSubQueryBatch
	// frame's table scans fan out across. 0 selects GOMAXPROCS; 1
	// scans the frame's units sequentially (the pre-sharding
	// behaviour). Result assembly is positional, so parallelism never
	// changes match order or accounting.
	ScanParallelism int
	// BatchWaves controls wave batching for ParallelLevels searches
	// this server roots (BatchAuto = on).
	BatchWaves BatchMode
	// DataDir, when non-empty, enables the durability layer: every
	// table mutation appends a WAL record under this directory before
	// it applies, and NewServer recovers snapshot + WAL tail back into
	// the sharded tables on startup. Empty leaves the store nil and the
	// hot path untouched (the telemetry no-op convention).
	DataDir string
	// Fsync selects the WAL flush policy when DataDir is set
	// (default store.FsyncInterval: group-commit every 100ms).
	Fsync store.FsyncPolicy
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// appends (0 = store default, negative disables compaction).
	SnapshotEvery int
	// Admission, when non-nil, gates every client-facing operation
	// this server receives (searches, pin queries, inserts, deletes)
	// through an admission controller with the given policy: bounded
	// inflight, a bounded deadline-aware wait queue, and per-client
	// fair queuing. Shed requests fail fast with an
	// admission.Overload carrying a Retry-After hint. Interior wave
	// traffic (sub-queries, batches, bulk transfers, handoffs) is
	// never gated — shedding mid-wave would waste work the root
	// already paid for. Nil disables admission control entirely.
	Admission *admission.Policy
	// Migration tunes the background migration manager that pulls index
	// ranges from old owners on membership change (chunk sizes,
	// throttle, retries); the zero value selects the defaults. See
	// migrate.go and DESIGN §11.
	Migration MigrationConfig
	// Owner, when set, validates that this node currently owns a DHT
	// key before serving requests for it. Requests for keys the node
	// no longer owns (its range was taken over by a joiner) are
	// rejected so callers re-resolve — without this, stale resolver
	// bindings would silently read empty tables on live former owners.
	Owner func(key dht.ID) bool
	// Telemetry, when set, receives the server's metrics (message
	// counts by kind, search costs, cache hits, index-size gauges) and
	// one search-trace span per superset search it roots. Nil disables
	// all instrumentation at zero cost. Several servers may share one
	// registry; gauges then report deployment-wide sums.
	Telemetry *telemetry.Registry
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.ParallelFanout <= 0 {
		c.ParallelFanout = 32
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	c.Shards = ceilPow2(c.Shards)
	if c.Shards > maxShards {
		c.Shards = maxShards
	}
	if c.ScanParallelism <= 0 {
		c.ScanParallelism = runtime.GOMAXPROCS(0)
	}
	if c.BatchWaves == BatchAuto {
		c.BatchWaves = BatchOn
	}
	return c
}

// Server is the index service of one physical node. It stores the
// index tables of every logical vertex the mapping g assigns to the
// node, answers pin and sub-queries, and — for queries whose root
// vertex it hosts — orchestrates the superset-search traversal.
//
// Table state is lock-striped: each (instance, vertex) pair lives on
// exactly one shard, guarded by that shard's RWMutex. Scans and pin
// queries take read locks, so a wave of batch scans proceeds on all
// cores and only excludes writers touching the same stripe.
type Server struct {
	cfg  ServerConfig
	cube hypercube.Cube
	met  serverMetrics
	// adm gates client-facing requests; nil (admission disabled) makes
	// every Acquire a no-op.
	adm *admission.Controller

	// searchSeq numbers the superset searches this server roots; it
	// drives the 1-in-spanStepSampleEvery sampling of per-vertex span
	// steps (see runSearch).
	searchSeq atomic.Uint64

	shards   []*tableShard // length is a power of two
	cache    resultCache
	sessions *sessionStore

	// hot tracks root popularity and manages soft replication of the
	// roots this server owns; soft holds the copies other owners
	// pushed onto this node. served counts every operation this server
	// answered (the load-distribution experiments' per-peer counter —
	// registry counters can't attribute per node when servers share a
	// registry).
	hot    *hotVertexManager
	soft   *softStore
	served atomic.Uint64

	// migrate manages inbound range migrations and the double-read
	// window state; always non-nil on servers built by NewServer.
	migrate *migrationManager

	// store is the durability layer; nil when DataDir is unset, and
	// then never consulted on the hot path.
	store *store.Store
	// stateMu fences mutations against snapshot compaction and orders
	// multi-shard mutations: every durable entry mutation holds the
	// read side across its WAL append + table apply, while compaction,
	// recovery and range mutations (handoff, clear) hold the write
	// side — so a snapshot is always a prefix-consistent cut of the
	// log and a range record is totally ordered against every entry
	// record. Lock order: entry mutations take stateMu(R) → shard →
	// store.mu; write-side holders take stateMu(W) → store.mu → shard.
	// The two interior orders cannot deadlock because the exclusive
	// fence guarantees they never run concurrently. Not taken at all
	// when store is nil.
	stateMu sync.RWMutex
	// compacting collapses concurrent compaction triggers into one.
	compacting atomic.Bool
}

// tableShard is one lock stripe of the server's table state.
type tableShard struct {
	mu     sync.RWMutex
	tables map[string]map[hypercube.Vertex]*table // instance → vertex → Tbl
}

// shardFor returns the stripe holding vertex v of the given instance.
// The hash must depend on both coordinates: instances salt their
// vertex→node mapping, so one physical node routinely hosts the same
// vertex ID for several instances.
func (s *Server) shardFor(instance string, v hypercube.Vertex) *tableShard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	// Inline FNV-1a over the instance bytes and the vertex, allocation
	// free (fmt/string concat would dominate the scan fast path).
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(instance); i++ {
		h ^= uint64(instance[i])
		h *= prime64
	}
	x := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime64
		x >>= 8
	}
	return s.shards[h&uint64(len(s.shards)-1)]
}

// lock acquires the shard's write lock, timing the wait when the
// server is instrumented (uninstrumented servers take no timestamps).
func (sh *tableShard) lock(h *telemetry.Histogram) {
	if h == nil {
		sh.mu.Lock()
		return
	}
	start := time.Now()
	sh.mu.Lock()
	h.Observe(time.Since(start).Nanoseconds())
}

// rlock is lock for readers.
func (sh *tableShard) rlock(h *telemetry.Histogram) {
	if h == nil {
		sh.mu.RLock()
		return
	}
	start := time.Now()
	sh.mu.RLock()
	h.Observe(time.Since(start).Nanoseconds())
}

// entryCount reports the shard's ⟨keyword set, objects⟩ entry total
// (the per-shard load gauge).
func (sh *tableShard) entryCount() int64 {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var n int64
	for _, vertices := range sh.tables {
		for _, tbl := range vertices {
			n += int64(len(tbl.entries))
		}
	}
	return n
}

// serverMetrics holds the server's pre-resolved instruments. With a
// nil registry every field is nil, and the nil-safe instrument methods
// make each site a no-op.
type serverMetrics struct {
	opInsert    *telemetry.Counter // core_ops_total{op=…}
	opDelete    *telemetry.Counter
	opPin       *telemetry.Counter
	opSub       *telemetry.Counter
	opSubBatch  *telemetry.Counter
	opBulk      *telemetry.Counter
	opMigChunk  *telemetry.Counter
	opMigCommit *telemetry.Counter
	opSearch    *telemetry.Counter

	searchNodes   *telemetry.Counter   // core_search_nodes_total
	searchMsgs    *telemetry.Counter   // core_search_msgs_total
	searchFailed  *telemetry.Counter   // core_search_failed_nodes_total
	searchRounds  *telemetry.Counter   // core_search_rounds_total
	searchMatches *telemetry.Counter   // core_search_matches_total
	searchLatency *telemetry.Histogram // core_search_duration_ns
	cacheHits     *telemetry.Counter   // core_cache_hits_total
	cacheMisses   *telemetry.Counter   // core_cache_misses_total

	opRefine   *telemetry.Counter // core_ops_total{op="refine-search"}
	opPrefix   *telemetry.Counter // core_ops_total{op="prefix-search"}
	refineHits *telemetry.Counter // core_refine_hits_total
	refineMiss *telemetry.Counter // core_refine_fallbacks_total

	// core_search_class_total{class}: one count per dispatched query,
	// labeled by its class — pin and prefix count however they arrive
	// (unified msgTQuery dispatch or the legacy msgPinQuery path).
	classSuperset *telemetry.Counter
	classPin      *telemetry.Counter
	classPrefix   *telemetry.Counter

	hotPromotions     *telemetry.Counter // core_hot_promotions_total
	hotDemotions      *telemetry.Counter // core_hot_demotions_total
	softInvalidations *telemetry.Counter // core_soft_invalidations_total
	softServes        *telemetry.Counter // core_soft_serves_total

	batchSize  *telemetry.Histogram // core_search_batch_size
	coalesced  *telemetry.Counter   // core_search_msgs_coalesced_total
	physFrames *telemetry.Counter   // core_search_phys_frames_total

	shardLockWait *telemetry.Histogram // core_server_shard_lock_wait_ns
	scanParUnits  *telemetry.Counter   // core_scan_parallel_units_total

	searchAbandoned *telemetry.Counter // core_search_abandoned_total
}

func newServerMetrics(reg *telemetry.Registry) serverMetrics {
	ops := reg.CounterVec("core_ops_total", "op")
	classes := reg.CounterVec("core_search_class_total", "class")
	return serverMetrics{
		opInsert:      ops.With("insert"),
		opDelete:      ops.With("delete"),
		opPin:         ops.With("pin-search"),
		opSub:         ops.With("sub-query"),
		opSubBatch:    ops.With("sub-query-batch"),
		opBulk:        ops.With("bulk-insert"),
		opMigChunk:    ops.With("migrate-chunk"),
		opMigCommit:   ops.With("migrate-commit"),
		opSearch:      ops.With("superset-search"),
		searchNodes:   reg.Counter("core_search_nodes_total"),
		searchMsgs:    reg.Counter("core_search_msgs_total"),
		searchFailed:  reg.Counter("core_search_failed_nodes_total"),
		searchRounds:  reg.Counter("core_search_rounds_total"),
		searchMatches: reg.Counter("core_search_matches_total"),
		searchLatency: reg.Histogram("core_search_duration_ns", telemetry.DefaultLatencyBuckets),
		cacheHits:     reg.Counter("core_cache_hits_total"),
		cacheMisses:   reg.Counter("core_cache_misses_total"),

		opRefine:   ops.With("refine-search"),
		opPrefix:   ops.With("prefix-search"),
		refineHits: reg.Counter("core_refine_hits_total"),
		refineMiss: reg.Counter("core_refine_fallbacks_total"),

		classSuperset: classes.With(ClassSuperset.String()),
		classPin:      classes.With(ClassPin.String()),
		classPrefix:   classes.With(ClassPrefix.String()),

		hotPromotions:     reg.Counter("core_hot_promotions_total"),
		hotDemotions:      reg.Counter("core_hot_demotions_total"),
		softInvalidations: reg.Counter("core_soft_invalidations_total"),
		softServes:        reg.Counter("core_soft_serves_total"),

		batchSize:  reg.Histogram("core_search_batch_size", telemetry.ExpBuckets(1, 2, 11)),
		coalesced:  reg.Counter("core_search_msgs_coalesced_total"),
		physFrames: reg.Counter("core_search_phys_frames_total"),
		// Lock waits sit well under the RPC latency floor; buckets span
		// ~256ns to ~17ms in powers of 4.
		shardLockWait: reg.Histogram("core_server_shard_lock_wait_ns", telemetry.ExpBuckets(256, 4, 9)),
		scanParUnits:  reg.Counter("core_scan_parallel_units_total"),

		searchAbandoned: reg.Counter("core_search_abandoned_total"),
	}
}

// classCounter maps a query class to its core_search_class_total
// series (nil-safe like every instrument; unknown classes fall back to
// the superset series so the total still moves).
func (m *serverMetrics) classCounter(c QueryClass) *telemetry.Counter {
	switch c {
	case ClassPin:
		return m.classPin
	case ClassPrefix:
		return m.classPrefix
	default:
		return m.classSuperset
	}
}

// table is Tbl_u for one logical vertex: entries ⟨keyword set, objects⟩.
// sorted caches the deterministic scan order and is invalidated on
// structural changes (scans vastly outnumber mutations in the paper's
// workloads).
type table struct {
	entries map[string]*entry // keyed by Set.Key()
	// sorted holds the cached sorted keys of entries; nil when stale.
	// Published atomically so concurrent readers under the shard read
	// lock may rebuild it in parallel — every rebuild produces the
	// identical slice, so the last store winning is harmless. A
	// published slice is immutable from then on.
	sorted atomic.Pointer[[]string]
}

// sortedKeys returns the table's entry keys in sorted order, rebuilding
// the cached order if stale. Callers must hold the vertex's shard lock
// in at least read mode (the entries map must not be mutated
// concurrently); writers invalidate under the exclusive lock.
func (t *table) sortedKeys() []string {
	if p := t.sorted.Load(); p != nil {
		return *p
	}
	keys := make([]string, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t.sorted.Store(&keys)
	return keys
}

type entry struct {
	set     keyword.Set
	objects map[string]struct{}
	// sortedIDs caches the sorted object IDs; same publication contract
	// as table.sorted: immutable once stored, rebuilt by any reader
	// holding the shard lock (read or write), invalidated by writers.
	sortedIDs atomic.Pointer[[]string]
}

// ids returns the entry's object IDs in sorted order, rebuilding the
// cached order if stale. Callers must hold the vertex's shard lock in
// at least read mode. The returned slice is immutable — callers may
// retain and read it after releasing the lock, but must never write
// to it.
func (e *entry) ids() []string {
	if p := e.sortedIDs.Load(); p != nil {
		return *p
	}
	ids := make([]string, 0, len(e.objects))
	for id := range e.objects {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	e.sortedIDs.Store(&ids)
	return ids
}

// NewServer builds an index server.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Resolver == nil || cfg.Sender == nil {
		return nil, fmt.Errorf("core: server needs a Resolver and a Sender")
	}
	cube, err := hypercube.New(cfg.Hasher.Dim())
	if err != nil {
		return nil, err
	}
	switch cfg.CachePolicy {
	case "", CachePolicyHot, CachePolicyFIFO:
	default:
		return nil, fmt.Errorf("core: unknown cache policy %q (want %q or %q)", cfg.CachePolicy, CachePolicyHot, CachePolicyFIFO)
	}
	shards := make([]*tableShard, cfg.Shards)
	for i := range shards {
		shards[i] = &tableShard{tables: make(map[string]map[hypercube.Vertex]*table)}
	}
	s := &Server{
		cfg:      cfg,
		cube:     cube,
		met:      newServerMetrics(cfg.Telemetry),
		shards:   shards,
		cache:    newResultCache(cfg.CachePolicy, cfg.CacheCapacity, cfg.CacheTargetHit),
		sessions: newSessionStore(cfg.MaxSessions),
		soft:     newSoftStore(),
	}
	s.hot = newHotVertexManager(s, cfg.HotReplicas, cfg.HotPromoteThreshold)
	if cfg.Admission != nil {
		s.adm = admission.New(*cfg.Admission, cfg.Telemetry)
	}
	// The manager must exist before recovery: replayed OpMigrate and
	// OpDelete records rebuild the resumable-cursor and tombstone state.
	s.migrate = newMigrationManager(s, cfg.Migration, cfg.Telemetry)
	if cfg.DataDir != "" {
		st, err := store.Open(store.Config{
			Dir:           cfg.DataDir,
			Fsync:         cfg.Fsync,
			SnapshotEvery: cfg.SnapshotEvery,
			Telemetry:     cfg.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		s.store = st
		if _, err := st.Recover(s.applyRecord); err != nil {
			st.Close()
			return nil, fmt.Errorf("core: recover data dir %s: %w", cfg.DataDir, err)
		}
	}
	if reg := cfg.Telemetry; reg != nil {
		// Sampled at snapshot time; with a shared registry every
		// server's callback contributes to a deployment-wide sum.
		reg.GaugeFunc("core_index_vertices", func() int64 { return int64(s.Stats().Vertices) })
		reg.GaugeFunc("core_index_entries", func() int64 { return int64(s.Stats().Entries) })
		reg.GaugeFunc("core_index_objects", func() int64 { return int64(s.Stats().Objects) })
		reg.GaugeFunc("core_cache_queries", func() int64 { return int64(s.cache.len()) })
		reg.GaugeFunc("core_cache_entries", func() int64 { return int64(s.cache.len()) })
		reg.GaugeFunc("core_cache_units", func() int64 { return int64(s.cache.unitCount()) })
		reg.GaugeFunc("core_soft_tables", func() int64 { return int64(s.soft.count()) })
		reg.GaugeFunc("core_sessions_active", func() int64 { return int64(s.sessions.len()) })
		for i, sh := range s.shards {
			sh := sh
			reg.GaugeFunc("core_server_shard_entries{shard=\""+strconv.Itoa(i)+"\"}", sh.entryCount)
		}
	}
	return s, nil
}

// ErrNotOwner rejects requests routed to a node that no longer owns
// the vertex key (e.g. through a stale cached binding after a join, or
// a ring still healing after a crash). It is a topology error, not an
// application outcome: Replicated treats it as failover-worthy, unlike
// other remote errors.
var ErrNotOwner = errors.New("core: node does not own the requested vertex")

// owns validates vertex ownership when an Owner hook is configured.
func (s *Server) owns(instance string, v hypercube.Vertex) bool {
	if s.cfg.Owner == nil {
		return true
	}
	return s.cfg.Owner(VertexKey(instance, v))
}

// gateInfo classifies client-facing bodies for admission control: the
// messages a client (not another index server mid-traversal) sends.
// The from address is useless for identity — inmem sends pass an empty
// origin and tcpnet requests carry none — so the client ID rides in
// the message itself.
func gateInfo(body any) (clientID string, deadlineUnixNano int64, gated bool) {
	switch m := body.(type) {
	case msgTQuery:
		return m.ClientID, m.DeadlineUnixNano, true
	case msgPinQuery:
		// Relayed pins are the interior half of a migration double-read
		// window — gating them would let admission break the
		// byte-identical-answers guarantee mid-churn.
		return m.ClientID, 0, !m.Relay
	case msgInsertEntry:
		return m.ClientID, 0, true
	case msgDeleteEntry:
		return m.ClientID, 0, true
	}
	// Everything else — wave traffic, bulk transfers, migration chunks
	// and commits, relayed sub-queries — is interior and never gated.
	return "", 0, false
}

// Handler processes index-protocol messages. Unknown message types
// yield ErrUnhandledMessage so the endpoint can be muxed with other
// layers (e.g. Chord). Client-facing operations pass through the
// admission controller (when configured) and pick up the deadline the
// message carries; interior wave traffic is never gated.
func (s *Server) Handler(ctx context.Context, from transport.Addr, body any) (any, error) {
	clientID, deadlineNS, gated := gateInfo(body)
	if gated {
		// The wire deadline is applied before admission so queue waits
		// are deadline-aware even over tcpnet, whose handler context
		// carries none.
		if deadlineNS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, time.Unix(0, deadlineNS))
			defer cancel()
		}
		if s.adm != nil {
			release, err := s.adm.Acquire(ctx, clientID)
			if err != nil {
				return nil, err
			}
			defer release()
		}
	}
	return s.handle(ctx, from, body)
}

// handle dispatches one admitted (or ungated) message.
func (s *Server) handle(ctx context.Context, from transport.Addr, body any) (any, error) {
	// Per-server load attribution for the distribution experiments:
	// registry counters can't tell servers apart when a deployment
	// shares one registry, so each server counts what it answers.
	s.served.Add(1)
	switch msg := body.(type) {
	case msgInsertEntry:
		if !s.owns(msg.Instance, hypercube.Vertex(msg.Vertex)) {
			return nil, ErrNotOwner
		}
		s.met.opInsert.Inc()
		if err := s.insertEntry(msg.Instance, hypercube.Vertex(msg.Vertex), msg.SetKey, msg.ObjectID); err != nil {
			return nil, err
		}
		return respAck{}, nil
	case msgDeleteEntry:
		if !s.owns(msg.Instance, hypercube.Vertex(msg.Vertex)) {
			return nil, ErrNotOwner
		}
		s.met.opDelete.Inc()
		found, err := s.deleteEntry(msg.Instance, hypercube.Vertex(msg.Vertex), msg.SetKey, msg.ObjectID)
		if err != nil {
			return nil, err
		}
		return respDeleteEntry{Found: found}, nil
	case msgPinQuery:
		s.met.opPin.Inc()
		s.met.classCounter(ClassPin).Inc()
		if msg.Relay {
			// Double-read from the new owner of a migrating range:
			// answer from the local table without the ownership check —
			// this node's copy stays authoritative until commit — and
			// never re-relay.
			return s.pinQuery(msg.Instance, hypercube.Vertex(msg.Vertex), msg.SetKey), nil
		}
		if !s.owns(msg.Instance, hypercube.Vertex(msg.Vertex)) {
			return nil, ErrNotOwner
		}
		return s.pinQueryRead(ctx, msg.Instance, hypercube.Vertex(msg.Vertex), msg.SetKey), nil
	case msgSubQuery:
		s.met.opSub.Inc()
		if msg.Relay {
			return s.subQueryLocal(msg), nil
		}
		if !s.owns(msg.Instance, hypercube.Vertex(msg.Vertex)) {
			return nil, ErrNotOwner
		}
		return s.subQuery(ctx, msg), nil
	case msgSubQueryBatch:
		// Ownership is validated per unit, not for the whole frame: a
		// ring change may have re-homed a subset of the batch's
		// vertices, and the root falls back to per-vertex sends for
		// exactly those.
		s.met.opSubBatch.Inc()
		return s.subQueryBatch(ctx, msg), nil
	case msgBulkInsert:
		s.met.opBulk.Inc()
		for _, e := range msg.Entries {
			if err := s.insertEntry(e.Instance, hypercube.Vertex(e.Vertex), e.SetKey, e.ObjectID); err != nil {
				return nil, err
			}
		}
		return respAck{}, nil
	case msgMigrateChunk:
		s.met.opMigChunk.Inc()
		// Migration frames carry the manager's per-chunk deadline the
		// way search frames do: tcpnet handler contexts know nothing of
		// the caller's, so re-derive it before scanning.
		if msg.DeadlineUnixNano > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, time.Unix(0, msg.DeadlineUnixNano))
			defer cancel()
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		return s.migrateChunk(ctx, msg)
	case msgMigrateCommit:
		s.met.opMigCommit.Inc()
		if msg.DeadlineUnixNano > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, time.Unix(0, msg.DeadlineUnixNano))
			defer cancel()
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		entries, err := s.extractRange(dht.ID(msg.NewID), dht.ID(msg.OwnerID))
		if err != nil {
			return nil, err
		}
		return respMigrateCommit{Dropped: len(entries)}, nil
	case msgTQuery:
		s.met.classCounter(msg.Class).Inc()
		switch msg.Class {
		case ClassPin:
			if !s.owns(msg.Instance, hypercube.Vertex(msg.Vertex)) {
				return nil, ErrNotOwner
			}
			s.met.opPin.Inc()
			return s.runPinQuery(ctx, msg)
		case ClassPrefix:
			if msg.SoftOnly {
				// Soft replicas hold one vertex's table; a prefix
				// multicast needs the whole branch partition, so spread
				// requests bounce back to the owner path.
				return respTQuery{ErrCode: errCodeNoSoftCopy}, nil
			}
			if !s.owns(msg.Instance, hypercube.Vertex(msg.Vertex)) {
				return nil, ErrNotOwner
			}
			s.met.opPrefix.Inc()
			return s.runPrefixSearch(ctx, msg)
		}
		if msg.RefineFromKey != "" {
			// Explicit refinement: the receiver must own the ANCESTOR
			// root (it holds the cached state); msg.Vertex carries the
			// refined root, which it typically does not own.
			if !s.owns(msg.Instance, hypercube.Vertex(msg.RefineFromVertex)) {
				return nil, ErrNotOwner
			}
			s.met.opRefine.Inc()
			return s.runRefine(msg), nil
		}
		// A live soft copy serves before the ownership check: soft
		// replicas of a hot root are, by design, nodes that do NOT own
		// the vertex, and spreading clients address them directly.
		if tbl := s.soft.lookup(msg.Instance, hypercube.Vertex(msg.Vertex)); tbl != nil {
			s.met.opSearch.Inc()
			s.met.softServes.Inc()
			return s.runSearch(ctx, msg, tbl)
		}
		if msg.SoftOnly {
			// A spreading client reached us for a copy we no longer
			// hold; answering from our own tables would be wrong (we
			// are not this vertex's owner), so bounce it back.
			return respTQuery{ErrCode: errCodeNoSoftCopy}, nil
		}
		if !s.owns(msg.Instance, hypercube.Vertex(msg.Vertex)) {
			return nil, ErrNotOwner
		}
		s.met.opSearch.Inc()
		return s.runSearch(ctx, msg, nil)
	case msgSoftPromote:
		s.soft.applyPromote(msg)
		return respAck{}, nil
	case msgSoftInvalidate:
		s.soft.applyInvalidate(msg)
		if msg.SetKey != "" {
			// The owner mutated the promoted vertex: run the same
			// subset-invalidation event over this node's result cache
			// that the owner just ran over its own.
			s.cache.invalidateSubsetsOf(msg.Instance, keyword.ParseKey(msg.SetKey))
		}
		return respAck{}, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnhandledMessage, body)
	}
}

// logEntryMutation appends rec to the WAL and applies it while
// holding sh's write lock — sh must be the shard owning the record's
// (instance, vertex). Holding the shard lock across append + apply
// makes WAL order equal apply order for any two records touching the
// same entry (same entry ⇒ same shard): without it, two concurrent
// mutations of one entry could append as A,B but apply as B,A, and
// recovery — which replays log order — would resurrect the loser.
// The stateMu read fence spans the pair so compaction's write side
// can never cut the log between an append and its apply, and so
// range mutations (logRangeMutation) are totally ordered against
// entry mutations. When the server is not durable the fence and the
// append both vanish (nil store ⇒ zero hot-path cost beyond the
// shard lock the apply always needed).
func (s *Server) logEntryMutation(sh *tableShard, rec store.Record, applyLocked func()) error {
	if s.store == nil {
		sh.lock(s.met.shardLockWait)
		applyLocked()
		sh.mu.Unlock()
		return nil
	}
	s.stateMu.RLock()
	sh.lock(s.met.shardLockWait)
	due, err := s.store.Append(rec)
	if err != nil {
		sh.mu.Unlock()
		s.stateMu.RUnlock()
		return fmt.Errorf("core: wal append: %w", err)
	}
	applyLocked()
	sh.mu.Unlock()
	s.stateMu.RUnlock()
	if due {
		s.compact()
	}
	return nil
}

// logRangeMutation appends and applies a record that touches every
// shard (handoff, clear). A single shard lock cannot order it against
// concurrent entry mutations, so it holds stateMu exclusively across
// append + apply instead: entry mutations hold the read side for
// their whole append+apply window, so the log position of the range
// record exactly matches its position in the apply order.
func (s *Server) logRangeMutation(rec store.Record, apply func()) error {
	if s.store == nil {
		apply()
		return nil
	}
	s.stateMu.Lock()
	due, err := s.store.Append(rec)
	if err != nil {
		s.stateMu.Unlock()
		return fmt.Errorf("core: wal append: %w", err)
	}
	apply()
	s.stateMu.Unlock()
	if due {
		s.compact()
	}
	return nil
}

// insertEntry adds ⟨K, σ⟩ to the table of vertex v in the given index
// instance and invalidates cached query results the new entry could
// extend. Durable servers append the mutation to the WAL before it
// applies; an append failure leaves the table untouched.
func (s *Server) insertEntry(instance string, v hypercube.Vertex, setKey, objectID string) error {
	sh := s.shardFor(instance, v)
	var set keyword.Set
	err := s.logEntryMutation(sh, store.Record{
		Op: store.OpInsert, Instance: instance, Vertex: uint64(v),
		SetKey: setKey, ObjectID: objectID,
	}, func() { set = s.applyInsertLocked(sh, instance, v, setKey, objectID) })
	if err != nil {
		return err
	}
	// The cache has its own lock; invalidating outside the shard lock
	// keeps the lock order flat (shard locks never nest with others).
	s.cache.invalidateSubsetsOf(instance, set)
	// Local authority over the vertex supersedes any soft copy of it,
	// and a promoted root whose table changed must demote (its
	// replicas now serve a stale copy).
	s.soft.dropLocal(instance, v)
	s.hot.noteMutation(instance, v, setKey)
	return nil
}

// applyInsert is the table mutation of insertEntry: no logging, no
// cache work. Recovery replays WAL records through it.
func (s *Server) applyInsert(instance string, v hypercube.Vertex, setKey, objectID string) keyword.Set {
	sh := s.shardFor(instance, v)
	sh.lock(s.met.shardLockWait)
	defer sh.mu.Unlock()
	return s.applyInsertLocked(sh, instance, v, setKey, objectID)
}

// applyInsertLocked is applyInsert under a caller-held write lock on
// sh (the shard owning (instance, v)); logEntryMutation uses it to
// keep the WAL append and the apply in one critical section. It
// returns the entry's keyword set for cache invalidation.
func (s *Server) applyInsertLocked(sh *tableShard, instance string, v hypercube.Vertex, setKey, objectID string) keyword.Set {
	vertices, ok := sh.tables[instance]
	if !ok {
		vertices = make(map[hypercube.Vertex]*table)
		sh.tables[instance] = vertices
	}
	tbl, ok := vertices[v]
	if !ok {
		tbl = &table{entries: make(map[string]*entry)}
		vertices[v] = tbl
	}
	e, ok := tbl.entries[setKey]
	if !ok {
		e = &entry{set: keyword.ParseKey(setKey), objects: make(map[string]struct{})}
		tbl.entries[setKey] = e
		tbl.sorted.Store(nil)
	}
	if _, dup := e.objects[objectID]; !dup {
		e.objects[objectID] = struct{}{}
		e.sortedIDs.Store(nil)
	}
	// Under the shard lock, so it serializes against noteDelete for the
	// same entry: a re-inserted entry is live again (no-op outside an
	// open migration window).
	s.migrate.noteInsert(instance, v, setKey, objectID)
	return e.set
}

// deleteEntry removes ⟨K, σ⟩ from the table of vertex v in the given
// instance. A delete of an absent entry is still logged on durable
// servers — replaying it is a no-op, so the record is harmless.
func (s *Server) deleteEntry(instance string, v hypercube.Vertex, setKey, objectID string) (bool, error) {
	sh := s.shardFor(instance, v)
	var found bool
	var set keyword.Set
	err := s.logEntryMutation(sh, store.Record{
		Op: store.OpDelete, Instance: instance, Vertex: uint64(v),
		SetKey: setKey, ObjectID: objectID,
	}, func() { found, set = s.applyDeleteLocked(sh, instance, v, setKey, objectID) })
	if err != nil {
		return false, err
	}
	if found {
		s.cache.invalidateSubsetsOf(instance, set)
		s.soft.dropLocal(instance, v)
		s.hot.noteMutation(instance, v, setKey)
	}
	return found, nil
}

// applyDelete is the table mutation of deleteEntry.
func (s *Server) applyDelete(instance string, v hypercube.Vertex, setKey, objectID string) (bool, keyword.Set) {
	sh := s.shardFor(instance, v)
	sh.lock(s.met.shardLockWait)
	defer sh.mu.Unlock()
	return s.applyDeleteLocked(sh, instance, v, setKey, objectID)
}

// applyDeleteLocked is applyDelete under a caller-held write lock on
// sh (the shard owning (instance, v)); see applyInsertLocked.
func (s *Server) applyDeleteLocked(sh *tableShard, instance string, v hypercube.Vertex, setKey, objectID string) (bool, keyword.Set) {
	// Tombstone before the presence checks: a delete of an entry whose
	// migration chunk has not arrived yet finds nothing locally but
	// must still prevent the chunk from resurrecting it. Shard lock
	// held, so this serializes against insertMigrated's check.
	s.migrate.noteDelete(instance, v, setKey, objectID)
	vertices, ok := sh.tables[instance]
	if !ok {
		return false, keyword.Set{}
	}
	tbl, ok := vertices[v]
	if !ok {
		return false, keyword.Set{}
	}
	e, ok := tbl.entries[setKey]
	if !ok {
		return false, keyword.Set{}
	}
	if _, ok := e.objects[objectID]; !ok {
		return false, keyword.Set{}
	}
	delete(e.objects, objectID)
	e.sortedIDs.Store(nil)
	if len(e.objects) == 0 {
		delete(tbl.entries, setKey)
		tbl.sorted.Store(nil)
		if len(tbl.entries) == 0 {
			delete(vertices, v)
			if len(vertices) == 0 {
				delete(sh.tables, instance)
			}
		}
	}
	return true, e.set
}

// pinQuery returns the objects indexed under exactly the given set.
// The returned ID slice is the entry's immutable sorted-ID snapshot —
// never mutated after publication — so no defensive copy is taken.
func (s *Server) pinQuery(instance string, v hypercube.Vertex, setKey string) respPinQuery {
	sh := s.shardFor(instance, v)
	sh.rlock(s.met.shardLockWait)
	defer sh.mu.RUnlock()
	tbl, ok := sh.tables[instance][v]
	if !ok {
		return respPinQuery{}
	}
	e, ok := tbl.entries[setKey]
	if !ok {
		return respPinQuery{}
	}
	return respPinQuery{ObjectIDs: e.ids()}
}

// subQuery scans the table of msg.Vertex for entries whose keyword set
// contains the query, returning a deterministic window of matches and,
// when msg.GenDim ≥ 0, the SBT child list of the vertex. The scan is
// migration-aware: a vertex inside an open inbound window double-reads
// the old owner (scanVertexRead).
func (s *Server) subQuery(ctx context.Context, msg msgSubQuery) respSubQuery {
	pred := predFor(msg.Class, msg.QueryKey)
	root := hypercube.Vertex(msg.Root)
	matches, remaining := s.scanVertexRead(ctx, msg.Dim, msg.Instance, hypercube.Vertex(msg.Vertex), root, pred, msg.Skip, msg.Limit)
	resp := respSubQuery{Matches: matches, Remaining: remaining}
	return s.subQueryChildren(msg, resp)
}

// subQueryLocal answers a relayed sub-query strictly from the local
// tables (the old-owner half of a double-read; never re-relayed).
func (s *Server) subQueryLocal(msg msgSubQuery) respSubQuery {
	pred := predFor(msg.Class, msg.QueryKey)
	root := hypercube.Vertex(msg.Root)
	matches, remaining := s.scanVertex(msg.Instance, hypercube.Vertex(msg.Vertex), root, pred, msg.Skip, msg.Limit)
	resp := respSubQuery{Matches: matches, Remaining: remaining}
	return s.subQueryChildren(msg, resp)
}

// subQueryChildren attaches the SBT child list when requested.
func (s *Server) subQueryChildren(msg msgSubQuery, resp respSubQuery) respSubQuery {
	if msg.GenDim >= 0 {
		cube, err := s.cubeFor(msg.Dim)
		if err != nil {
			return resp // malformed dim: return matches without children
		}
		edges := cube.InducedChildEdges(hypercube.Vertex(msg.Root), hypercube.Vertex(msg.Vertex), msg.GenDim)
		resp.Children = make([]wireEdge, len(edges))
		for i, e := range edges {
			resp.Children[i] = wireEdge{Vertex: uint64(e.To), Dim: e.Dim}
		}
	}
	return resp
}

// subQueryBatch answers a coalesced wave of sub-queries in one frame.
// The per-unit table scans fan out across a worker pool bounded by
// ScanParallelism; each scan takes only its vertex's shard read lock,
// so a mega-wave frame spreads over every core instead of serializing
// on one mutex. Results are written positionally, which keeps match
// order, per-unit outcomes and the root's accounting byte-identical to
// the sequential path. SBT child lists are pure geometry and are
// computed outside any lock.
func (s *Server) subQueryBatch(ctx context.Context, msg msgSubQueryBatch) respSubQueryBatch {
	if msg.DeadlineUnixNano > 0 {
		// tcpnet handler contexts carry no request deadline; re-derive
		// it from the frame so an expired search stops burning scan
		// workers here too.
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.Unix(0, msg.DeadlineUnixNano))
		defer cancel()
	}
	pred := predFor(msg.Class, msg.QueryKey)
	root := hypercube.Vertex(msg.Root)
	results := make([]respSubUnit, len(msg.Units))

	// Ownership checks consult the DHT layer (its own locking), so they
	// run before any table lock is taken.
	for i, u := range msg.Units {
		if !s.owns(msg.Instance, hypercube.Vertex(u.Vertex)) {
			results[i] = respSubUnit{ErrCode: errCodeNotOwner}
		}
	}

	scan := func(i int) {
		// A cancelled search abandons its remaining units: the root is
		// failing the whole search, so partially scanned frames cost
		// nothing extra, and the scan pool frees up for live queries.
		if ctx.Err() != nil {
			results[i] = respSubUnit{ErrCode: errCodeCancelled}
			return
		}
		u := msg.Units[i]
		matches, remaining := s.scanVertexRead(ctx, msg.Dim, msg.Instance, hypercube.Vertex(u.Vertex), root, pred, u.Skip, msg.Limit)
		results[i] = respSubUnit{Matches: matches, Remaining: remaining}
	}
	workers := s.cfg.ScanParallelism
	if workers > len(msg.Units) {
		workers = len(msg.Units)
	}
	if workers <= 1 {
		for i := range msg.Units {
			if results[i].ErrCode == 0 {
				scan(i)
			}
		}
	} else {
		// Work-stealing over an atomic cursor: cheaper than a channel
		// for the short unit lists typical of folded fleets, and the
		// positional writes need no ordering between workers.
		var cursor atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(msg.Units) {
						return
					}
					if results[i].ErrCode == 0 {
						scan(i)
					}
				}
			}()
		}
		wg.Wait()
		s.met.scanParUnits.Add(uint64(len(msg.Units)))
	}

	cube, cubeErr := s.cubeFor(msg.Dim)
	for i, u := range msg.Units {
		if results[i].ErrCode != 0 || u.GenDim < 0 || cubeErr != nil {
			continue
		}
		edges := cube.InducedChildEdges(root, hypercube.Vertex(u.Vertex), u.GenDim)
		children := make([]wireEdge, len(edges))
		for j, e := range edges {
			children[j] = wireEdge{Vertex: uint64(e.To), Dim: e.Dim}
		}
		results[i].Children = children
	}
	return respSubQueryBatch{Results: results}
}

// cubeFor returns the hypercube geometry for an instance's declared
// dimensionality (0 falls back to the server's default).
func (s *Server) cubeFor(dim int) (hypercube.Cube, error) {
	if dim == 0 || dim == s.cube.Dim() {
		return s.cube, nil
	}
	return hypercube.New(dim)
}

// matchScratch pools the append buffers scans collect matches into
// before sizing the returned slice exactly. The grown backing arrays
// are reused across scans, so a hot server stops paying the
// grow-and-copy churn of append on every crowded vertex.
var matchScratch = sync.Pool{
	New: func() any {
		buf := make([]Match, 0, 64)
		return &buf
	},
}

// scanVertex collects the entries of vertex v's table matching the
// query predicate, in deterministic (sorted) order. limit < 0 means
// unlimited. remaining reports matches present beyond the returned
// window.
func (s *Server) scanVertex(instance string, v, root hypercube.Vertex, pred queryPred, skip, limit int) ([]Match, int) {
	sh := s.shardFor(instance, v)
	sh.rlock(s.met.shardLockWait)
	defer sh.mu.RUnlock()
	return scanVertexLocked(sh, instance, v, root, pred, skip, limit)
}

// scanVertexLocked is scanVertex without the locking; callers must
// hold sh — the shard owning (instance, v) — in at least read mode.
func scanVertexLocked(sh *tableShard, instance string, v, root hypercube.Vertex, pred queryPred, skip, limit int) ([]Match, int) {
	tbl, ok := sh.tables[instance][v]
	if !ok {
		return nil, 0
	}
	return scanTable(tbl, v, root, pred, skip, limit)
}

// scanTable is the scan itself over one vertex table — shared by the
// authoritative path above and soft-replica serving, so a soft copy
// produces the byte-identical match windows its owner would. Callers
// must prevent concurrent mutation of tbl: shard lock for the
// authoritative tables, the immutable-once-live contract for soft
// copies.
func scanTable(tbl *table, v, root hypercube.Vertex, pred queryPred, skip, limit int) ([]Match, int) {
	setKeys := tbl.sortedKeys()
	if pred.class == ClassPin {
		// Exact-set lookup: a single map probe replaces the sorted walk,
		// keeping the legacy pin path's O(1) cost under the unified
		// predicate. Output order (the entry's sorted-ID snapshot) is
		// identical to what the sorted walk would produce for one key.
		if _, ok := tbl.entries[pred.key]; ok {
			setKeys = []string{pred.key}
		} else {
			setKeys = nil
		}
	}

	bufp := matchScratch.Get().(*[]Match)
	buf := (*bufp)[:0]
	depth := -1 // computed lazily; same for all entries of this vertex w.r.t. query root
	remaining := 0
	seen := 0
	for _, k := range setKeys {
		e := tbl.entries[k]
		if !pred.matches(e.set) {
			continue
		}
		for _, id := range e.ids() {
			if seen < skip {
				seen++
				continue
			}
			if limit >= 0 && len(buf) >= limit {
				remaining++
				continue
			}
			if depth < 0 {
				depth = hypercube.Hamming(root, v)
			}
			buf = append(buf, Match{
				ObjectID: id,
				SetKey:   k,
				Vertex:   uint64(v),
				Depth:    depth,
			})
		}
	}
	var out []Match
	if len(buf) > 0 {
		out = make([]Match, len(buf))
		copy(out, buf)
	}
	*bufp = buf[:0]
	matchScratch.Put(bufp)
	return out, remaining
}

// TableStats summarizes this server's storage load (diagnostics and
// the load-distribution experiments).
type TableStats struct {
	Vertices int // logical vertices with at least one entry
	Entries  int // ⟨keyword set, objects⟩ entries
	Objects  int // total object IDs indexed (with multiplicity)
}

// Stats returns current storage counters, aggregated over every index
// instance the node hosts. Shards are read-locked one at a time, so
// the totals are per-shard consistent but not a global snapshot —
// fine for the load experiments and diagnostics they feed.
func (s *Server) Stats() TableStats {
	var st TableStats
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, vertices := range sh.tables {
			st.Vertices += len(vertices)
			for _, tbl := range vertices {
				st.Entries += len(tbl.entries)
				for _, e := range tbl.entries {
					st.Objects += len(e.objects)
				}
			}
		}
		sh.mu.RUnlock()
	}
	return st
}

// CacheStats exposes cache effectiveness counters.
func (s *Server) CacheStats() (hits, misses uint64) {
	return s.cache.stats()
}

// CacheCapacity returns the root-result cache capacity in object-ID
// units (0 = caching disabled). Under the hot policy this is the
// auto-tuned live capacity, not the configured base.
func (s *Server) CacheCapacity() int { return s.cache.capacityUnits() }

// CacheSnapshot returns a point-in-time view of the result cache:
// policy, capacity, occupancy and per-instance hit ratios.
func (s *Server) CacheSnapshot() CacheSnapshot { return s.cache.snapshot() }

// OpsServed reports how many protocol operations this server has
// answered — the per-peer load counter the distribution experiments
// aggregate into top-node share and Gini coefficients.
func (s *Server) OpsServed() uint64 { return s.served.Load() }

// HotPromotedRoots lists the currently promoted hot roots as
// "instance/vertex" strings in sorted order; the promotion-determinism
// test fingerprints replayed query logs with it.
func (s *Server) HotPromotedRoots() []string {
	keys := s.hot.promotedRoots()
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k.instance+"/"+strconv.FormatUint(uint64(k.vertex), 10))
	}
	sort.Strings(out)
	return out
}

// extractRange removes and returns the entries a newly joined
// predecessor now owns: those whose vertex key is outside (newID,
// ownerID] — mirroring Chord's reference handoff on join. The logged
// OpHandoff record carries only the range bounds: which entries leave
// is a deterministic function of key and bounds, so replay reproduces
// the extraction exactly — provided every entry record lands in the
// log on the same side of the handoff as its apply, which
// logRangeMutation's exclusive fence guarantees.
func (s *Server) extractRange(newID, ownerID dht.ID) ([]BulkEntry, error) {
	var out []BulkEntry
	err := s.logRangeMutation(store.Record{
		Op: store.OpHandoff, NewID: uint64(newID), OwnerID: uint64(ownerID),
	}, func() { out = s.applyExtractRange(newID, ownerID) })
	return out, err
}

// applyExtractRange is the table mutation of extractRange.
func (s *Server) applyExtractRange(newID, ownerID dht.ID) []BulkEntry {
	var out []BulkEntry
	for _, sh := range s.shards {
		sh.lock(s.met.shardLockWait)
		for instance, vertices := range sh.tables {
			for v, tbl := range vertices {
				key := VertexKey(instance, v)
				if dht.Between(key, newID, ownerID) {
					continue // still ours
				}
				for setKey, e := range tbl.entries {
					for id := range e.objects {
						out = append(out, BulkEntry{
							Instance: instance,
							Vertex:   uint64(v),
							SetKey:   setKey,
							ObjectID: id,
						})
					}
				}
				delete(vertices, v)
			}
			if len(vertices) == 0 {
				delete(sh.tables, instance)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Drain removes and returns every index entry this server hosts, for
// transfer to another node on graceful departure. Durable servers log
// one OpClear record so a later recovery of the data dir reflects the
// departure.
func (s *Server) Drain() ([]BulkEntry, error) {
	var out []BulkEntry
	err := s.logRangeMutation(store.Record{Op: store.OpClear},
		func() { out = s.applyDrain() })
	return out, err
}

// applyDrain is the table mutation of Drain.
func (s *Server) applyDrain() []BulkEntry {
	var out []BulkEntry
	for _, sh := range s.shards {
		sh.lock(s.met.shardLockWait)
		for instance, vertices := range sh.tables {
			for v, tbl := range vertices {
				for setKey, e := range tbl.entries {
					for id := range e.objects {
						out = append(out, BulkEntry{
							Instance: instance,
							Vertex:   uint64(v),
							SetKey:   setKey,
							ObjectID: id,
						})
					}
				}
			}
		}
		sh.tables = make(map[string]map[hypercube.Vertex]*table)
		sh.mu.Unlock()
	}
	return out
}

// DrainTo drains every entry and re-homes it at addr (the departing
// node's DHT successor, which owns its key range after the split),
// chunking the transfer by the migration chunk-size knobs so one huge
// table never becomes one huge frame. It returns the number of
// entries transferred; on a partial failure the count says how many
// made it before the error.
func (s *Server) DrainTo(ctx context.Context, sender transport.Sender, addr transport.Addr) (int, error) {
	entries, err := s.Drain()
	if err != nil {
		return 0, err
	}
	chunk := s.cfg.Migration.withDefaults().ChunkEntries
	sent := 0
	for sent < len(entries) {
		end := sent + chunk
		if end > len(entries) {
			end = len(entries)
		}
		if _, err := sender.Send(ctx, addr, msgBulkInsert{Entries: entries[sent:end]}); err != nil {
			return sent, fmt.Errorf("drain %d of %d entries to %s: %w", len(entries)-sent, len(entries), addr, err)
		}
		sent = end
	}
	return sent, nil
}

// applyRecord replays one recovered WAL/snapshot record into the table
// state. No cache invalidation: recovery runs before the server serves
// queries (fresh caches), and the sim's in-process recovery resets the
// cache alongside the tables.
func (s *Server) applyRecord(rec store.Record) error {
	switch rec.Op {
	case store.OpInsert:
		s.applyInsert(rec.Instance, hypercube.Vertex(rec.Vertex), rec.SetKey, rec.ObjectID)
	case store.OpDelete:
		s.applyDelete(rec.Instance, hypercube.Vertex(rec.Vertex), rec.SetKey, rec.ObjectID)
	case store.OpHandoff:
		s.applyExtractRange(dht.ID(rec.NewID), dht.ID(rec.OwnerID))
	case store.OpClear:
		s.applyDrain()
	case store.OpMigrate:
		s.migrate.applyRecoveredRecord(rec)
	}
	return nil
}

// compact snapshots the full table state and truncates the WAL. The
// compacting flag collapses concurrent triggers; stateMu's write side
// excludes every mutator for the duration, so the snapshot is a
// consistent cut and nothing can append between dump and truncation.
func (s *Server) compact() {
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	defer s.compacting.Store(false)
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if !s.store.SnapshotDue() {
		return // another trigger compacted while we awaited the fence
	}
	// On failure the WAL simply keeps growing and the next threshold
	// crossing retries; durability is never weakened by a failed
	// compaction.
	_ = s.store.WriteSnapshot(s.dumpAll)
}

// dumpAll emits every live entry as an OpInsert record (the snapshot
// body). Callers hold stateMu exclusively, so shard read locks are
// only needed to order with lock-free readers.
func (s *Server) dumpAll(emit func(store.Record) error) error {
	for _, sh := range s.shards {
		sh.mu.RLock()
		for instance, vertices := range sh.tables {
			for v, tbl := range vertices {
				for setKey, e := range tbl.entries {
					for id := range e.objects {
						err := emit(store.Record{
							Op: store.OpInsert, Instance: instance,
							Vertex: uint64(v), SetKey: setKey, ObjectID: id,
						})
						if err != nil {
							sh.mu.RUnlock()
							return err
						}
					}
				}
			}
		}
		sh.mu.RUnlock()
	}
	// Open migration windows ride along: the snapshot replaces the WAL
	// holding their cursors and tombstones.
	return s.migrate.dumpState(emit)
}

// CrashReset wipes the in-memory table, cache and session state while
// leaving the data directory untouched — the crash model the sim's
// durable-recovery mode uses: process memory is lost, disk survives.
func (s *Server) CrashReset() {
	s.stateMu.Lock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.tables = make(map[string]map[hypercube.Vertex]*table)
		sh.mu.Unlock()
	}
	s.stateMu.Unlock()
	s.cache.reset()
	s.sessions.reset()
	s.migrate.crashReset()
	// Soft state is volatile by contract: copies and popularity die
	// with the process.
	s.soft.reset()
	s.hot.reset()
}

// RecoverFromStore replays the data directory (snapshot + WAL tail)
// into the table state and reports how many records were applied. It
// is a no-op on non-durable servers. Replay is idempotent, so
// recovering over live state also converges — but the intended caller
// pairs it with CrashReset.
func (s *Server) RecoverFromStore() (int, error) {
	if s.store == nil {
		return 0, nil
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.store.Recover(s.applyRecord)
}

// Close stops the migration manager (waiting out its workers so none
// appends to a closed WAL; interrupted transfers keep their durable
// cursor and resume on restart) and then flushes and closes the
// durability layer. The server must not process further mutations
// afterwards.
func (s *Server) Close() error {
	if s.migrate != nil {
		s.migrate.close()
	}
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}
