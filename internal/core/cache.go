package core

import (
	"sync"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// Cache policy names accepted by ServerConfig.CachePolicy.
const (
	// CachePolicyHot is the popularity-tracked segmented-LRU cache with
	// TinyLFU-style frequency admission (the default).
	CachePolicyHot = "hot"
	// CachePolicyFIFO is the original fixed-size FIFO cache of
	// Section 4, kept for comparison studies.
	CachePolicyFIFO = "fifo"
)

// resultCache is the per-node query-result cache of Section 4
// (experiment 3): completed superset-search results keyed by
// (instance, query keyword set). Capacity is measured in object-ID
// units, matching the paper's α · |O| / 2^r sizing relative to the
// average index size per node.
//
// Accounting contract (the Fig-9 reconcile test pins it): every get on
// an enabled cache counts exactly one hit or exactly one miss, so
// hits+misses equals the number of consulted queries with no slack.
type resultCache interface {
	enabled() bool
	// get returns a cached result able to satisfy a query of the given
	// threshold: the cached traversal either exhausted the
	// subhypercube (or multicast range) or gathered at least threshold
	// matches. The predicate's class-aware cache key keeps query
	// classes from ever colliding.
	get(instance string, pred queryPred, threshold int) ([]Match, bool, bool)
	// put stores a completed query result. Implementations may decline
	// (capacity, admission policy); stored slices are cloned and
	// immutable from then on.
	put(instance string, pred queryPred, matches []Match, exhausted bool)
	// refineSource returns the complete match list of the most refined
	// exhausted cached ancestor of query (a cached K_anc ⊂ query whose
	// traversal exhausted its subcube), for Lemma 3.3 refinement
	// derivation. Only ClassSuperset entries qualify — Lemma 3.3 is a
	// superset-lattice property, so pin and prefix entries are never
	// offered as sources. The returned slice is the immutable stored
	// slice and must not be mutated.
	refineSource(instance string, query keyword.Set) ([]Match, bool)
	// invalidateSubsetsOf drops the instance's cached queries K with
	// K ⊆ changed, since an index mutation under keyword set 'changed'
	// can alter their results.
	invalidateSubsetsOf(instance string, changed keyword.Set)
	// reset drops every cached entry (the sim's crash model: process
	// memory is lost). Hit/miss counters survive — they feed
	// process-lifetime telemetry, not cached state.
	reset()
	stats() (hits, misses uint64)
	snapshot() CacheSnapshot
	// len returns the number of cached queries.
	len() int
	// unitCount returns the currently stored object-ID units.
	unitCount() int
	// capacityUnits returns the current capacity in object-ID units
	// (adaptive policies may have tuned it away from the configured
	// base).
	capacityUnits() int
}

// newResultCache builds the cache for the given policy name; the empty
// policy selects the hot (popularity-tracked) default.
func newResultCache(policy string, capacity int, targetHit float64) resultCache {
	if policy == CachePolicyFIFO {
		return newFIFOCache(capacity)
	}
	return newHotCache(capacity, targetHit)
}

// InstanceCacheStats is one instance's slice of a cache snapshot.
type InstanceCacheStats struct {
	Instance string
	Hits     uint64
	Misses   uint64
	Entries  int
	Units    int
}

// HitRatio returns the instance's hit fraction (0 when never consulted).
func (s InstanceCacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// CacheSnapshot is a point-in-time view of one server's result cache:
// totals plus the per-instance hit-ratio breakdown.
type CacheSnapshot struct {
	Policy        string
	CapacityUnits int
	Units         int
	Entries       int
	Hits          uint64
	Misses        uint64
	PerInstance   []InstanceCacheStats
}

// HitRatio returns the cache-wide hit fraction (0 when never consulted).
func (s CacheSnapshot) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// instanceCounters accumulates per-instance consultations under the
// owning cache's mutex.
type instanceCounters struct {
	hits   uint64
	misses uint64
}

// fifoCache is the original fixed-size FIFO result cache.
type fifoCache struct {
	mu       sync.Mutex
	capacity int
	units    int
	order    []string // insertion order of cache keys
	items    map[string]cachedResult
	// byInstance indexes the live cache keys of each instance so
	// invalidation walks only that instance's entries instead of the
	// whole cache (mutations holding the root-side mutex are the hot
	// path this protects).
	byInstance map[string]map[string]struct{}
	hits       uint64
	misses     uint64
	perInst    map[string]*instanceCounters
}

type cachedResult struct {
	matches   []Match
	exhausted bool
	instance  string
	pred      queryPred
}

func newFIFOCache(capacity int) *fifoCache {
	return &fifoCache{
		capacity:   capacity,
		items:      make(map[string]cachedResult),
		byInstance: make(map[string]map[string]struct{}),
		perInst:    make(map[string]*instanceCounters),
	}
}

func (c *fifoCache) enabled() bool { return c.capacity > 0 }

// cacheKey namespaces cached queries by index instance.
func cacheKey(instance, queryKey string) string {
	return instance + "\x00" + queryKey
}

func (c *fifoCache) instCounters(instance string) *instanceCounters {
	ic, ok := c.perInst[instance]
	if !ok {
		ic = &instanceCounters{}
		c.perInst[instance] = ic
	}
	return ic
}

func (c *fifoCache) get(instance string, pred queryPred, threshold int) ([]Match, bool, bool) {
	if !c.enabled() {
		return nil, false, false
	}
	c.mu.Lock()
	item, ok := c.items[pred.cacheKey(instance)]
	if !ok || (!item.exhausted && len(item.matches) < threshold) {
		c.misses++
		c.instCounters(instance).misses++
		c.mu.Unlock()
		return nil, false, false
	}
	c.hits++
	c.instCounters(instance).hits++
	c.mu.Unlock()
	// Stored match slices are immutable once published (put clones
	// before insert; no path writes to a stored slice), so the
	// defensive copy for the caller happens outside the critical
	// section — the cache mutex is a root-side serialization point,
	// and a large cached result would otherwise stall every
	// concurrent hit and invalidation behind the copy.
	return truncateCached(item.matches, item.exhausted, threshold)
}

// truncateCached applies the threshold cut shared by every cache
// policy: copy up to threshold matches, and report exhausted only when
// the cut kept the complete stored result.
func truncateCached(matches []Match, exhausted bool, threshold int) ([]Match, bool, bool) {
	n := len(matches)
	if threshold >= 0 && threshold < n {
		n = threshold
	}
	out := make([]Match, n)
	copy(out, matches)
	return out, exhausted && n == len(matches), true
}

// put stores a completed query result, evicting oldest entries until
// the capacity constraint holds. Results larger than the whole cache
// are not stored.
func (c *fifoCache) put(instance string, pred queryPred, matches []Match, exhausted bool) {
	if !c.enabled() || len(matches) > c.capacity {
		return
	}
	key := pred.cacheKey(instance)
	item := cachedResult{matches: cloneMatches(matches), exhausted: exhausted, instance: instance, pred: pred}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.items[key]; ok {
		// Replace in place, keeping FIFO position.
		c.units -= len(old.matches)
		c.items[key] = item
		c.units += len(matches)
	} else {
		c.items[key] = item
		c.order = append(c.order, key)
		c.indexKey(instance, key)
		c.units += len(matches)
	}
	for c.units > c.capacity && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		if item, ok := c.items[oldest]; ok {
			c.units -= len(item.matches)
			delete(c.items, oldest)
			c.unindexKey(item.instance, oldest)
		}
	}
}

func (c *fifoCache) indexKey(instance, key string) {
	keys, ok := c.byInstance[instance]
	if !ok {
		keys = make(map[string]struct{})
		c.byInstance[instance] = keys
	}
	keys[key] = struct{}{}
}

func (c *fifoCache) unindexKey(instance, key string) {
	if keys, ok := c.byInstance[instance]; ok {
		delete(keys, key)
		if len(keys) == 0 {
			delete(c.byInstance, instance)
		}
	}
}

func (c *fifoCache) refineSource(instance string, query keyword.Set) ([]Match, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var (
		best    []Match
		bestLen = -1
	)
	for key := range c.byInstance[instance] {
		item, ok := c.items[key]
		if !ok || !item.exhausted || item.pred.class != ClassSuperset {
			continue
		}
		if item.pred.set.Len() > bestLen && item.pred.set.SubsetOf(query) && !item.pred.set.Equal(query) {
			best, bestLen = item.matches, item.pred.set.Len()
		}
	}
	return best, bestLen >= 0
}

func (c *fifoCache) invalidateSubsetsOf(instance string, changed keyword.Set) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.byInstance[instance]
	if len(keys) == 0 {
		return
	}
	// Only this instance's entries are examined; the FIFO order slice
	// keeps dropped keys and skips them lazily on eviction (the same
	// stale-key tolerance eviction already has).
	dropped := false
	for key := range keys {
		item, ok := c.items[key]
		if !ok {
			delete(keys, key)
			continue
		}
		if item.pred.invalidatedBy(changed) {
			c.units -= len(item.matches)
			delete(c.items, key)
			delete(keys, key)
			dropped = true
		}
	}
	if len(keys) == 0 {
		delete(c.byInstance, instance)
	}
	// Compact the order slice when invalidation dropped entries, so
	// long-lived servers with mutation-heavy workloads don't accrete an
	// unbounded stale tail.
	if dropped && len(c.order) > 2*len(c.items) {
		keep := c.order[:0]
		for _, key := range c.order {
			if _, ok := c.items[key]; ok {
				keep = append(keep, key)
			}
		}
		c.order = keep
	}
}

func (c *fifoCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.units = 0
	c.order = nil
	c.items = make(map[string]cachedResult)
	c.byInstance = make(map[string]map[string]struct{})
}

func (c *fifoCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *fifoCache) snapshot() CacheSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := CacheSnapshot{
		Policy:        CachePolicyFIFO,
		CapacityUnits: c.capacity,
		Units:         c.units,
		Entries:       len(c.items),
		Hits:          c.hits,
		Misses:        c.misses,
	}
	snap.PerInstance = perInstanceStats(c.perInst, func(instance string) (entries, units int) {
		for key := range c.byInstance[instance] {
			if item, ok := c.items[key]; ok {
				entries++
				units += len(item.matches)
			}
		}
		return entries, units
	})
	return snap
}

// perInstanceStats assembles the per-instance snapshot rows in sorted
// instance order; fill reports the instance's live entry/unit totals.
func perInstanceStats(perInst map[string]*instanceCounters, fill func(instance string) (entries, units int)) []InstanceCacheStats {
	if len(perInst) == 0 {
		return nil
	}
	out := make([]InstanceCacheStats, 0, len(perInst))
	for instance, ic := range perInst {
		entries, units := fill(instance)
		out = append(out, InstanceCacheStats{
			Instance: instance,
			Hits:     ic.hits,
			Misses:   ic.misses,
			Entries:  entries,
			Units:    units,
		})
	}
	sortInstanceStats(out)
	return out
}

func sortInstanceStats(s []InstanceCacheStats) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Instance < s[j-1].Instance; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (c *fifoCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *fifoCache) unitCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.units
}

func (c *fifoCache) capacityUnits() int { return c.capacity }

func cloneMatches(ms []Match) []Match {
	out := make([]Match, len(ms))
	copy(out, ms)
	return out
}
