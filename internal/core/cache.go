package core

import (
	"sync"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// fifoCache is the per-node query-result cache of Section 4
// (experiment 3): completed superset-search results keyed by the query
// keyword set, evicted in FIFO order. Capacity is measured in object-ID
// units, matching the paper's α · |O| / 2^r sizing relative to the
// average index size per node.
type fifoCache struct {
	mu       sync.Mutex
	capacity int
	units    int
	order    []string // insertion order of query keys
	items    map[string]cachedResult
	hits     uint64
	misses   uint64
}

type cachedResult struct {
	matches   []Match
	exhausted bool
	instance  string
	query     keyword.Set
}

func newFIFOCache(capacity int) *fifoCache {
	return &fifoCache{
		capacity: capacity,
		items:    make(map[string]cachedResult),
	}
}

func (c *fifoCache) enabled() bool { return c.capacity > 0 }

// cacheKey namespaces cached queries by index instance.
func cacheKey(instance, queryKey string) string {
	return instance + "\x00" + queryKey
}

// get returns a cached result able to satisfy a query of the given
// threshold: the cached traversal either exhausted the subhypercube or
// gathered at least threshold matches.
func (c *fifoCache) get(queryKey string, threshold int) ([]Match, bool, bool) {
	if !c.enabled() {
		return nil, false, false
	}
	c.mu.Lock()
	item, ok := c.items[queryKey]
	if !ok || (!item.exhausted && len(item.matches) < threshold) {
		c.misses++
		c.mu.Unlock()
		return nil, false, false
	}
	c.hits++
	c.mu.Unlock()
	// Stored match slices are immutable once published (put clones
	// before insert; no path writes to a stored slice), so the
	// defensive copy for the caller happens outside the critical
	// section — the cache mutex is a root-side serialization point,
	// and a large cached result would otherwise stall every
	// concurrent hit and invalidation behind the copy.
	n := len(item.matches)
	if threshold >= 0 && threshold < n {
		n = threshold
	}
	out := make([]Match, n)
	copy(out, item.matches)
	exhausted := item.exhausted && n == len(item.matches)
	return out, exhausted, true
}

// put stores a completed query result, evicting oldest entries until
// the capacity constraint holds. Results larger than the whole cache
// are not stored.
func (c *fifoCache) put(instance, queryKey string, query keyword.Set, matches []Match, exhausted bool) {
	if !c.enabled() || len(matches) > c.capacity {
		return
	}
	key := cacheKey(instance, queryKey)
	item := cachedResult{matches: cloneMatches(matches), exhausted: exhausted, instance: instance, query: query}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.items[key]; ok {
		// Replace in place, keeping FIFO position.
		c.units -= len(old.matches)
		c.items[key] = item
		c.units += len(matches)
	} else {
		c.items[key] = item
		c.order = append(c.order, key)
		c.units += len(matches)
	}
	for c.units > c.capacity && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		if item, ok := c.items[oldest]; ok {
			c.units -= len(item.matches)
			delete(c.items, oldest)
		}
	}
}

// invalidateSubsetsOf drops the instance's cached queries K with
// K ⊆ changed, since an index mutation under keyword set 'changed' can
// alter their results.
func (c *fifoCache) invalidateSubsetsOf(instance string, changed keyword.Set) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.items) == 0 {
		return
	}
	keep := c.order[:0]
	for _, key := range c.order {
		item, ok := c.items[key]
		if !ok {
			continue
		}
		if item.instance == instance && item.query.SubsetOf(changed) {
			c.units -= len(item.matches)
			delete(c.items, key)
			continue
		}
		keep = append(keep, key)
	}
	c.order = keep
}

// reset drops every cached entry (the sim's crash model: process
// memory is lost). Hit/miss counters survive — they feed
// process-lifetime telemetry, not cached state.
func (c *fifoCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.units = 0
	c.order = nil
	c.items = make(map[string]cachedResult)
}

func (c *fifoCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// len returns the number of cached queries (test helper).
func (c *fifoCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func cloneMatches(ms []Match) []Match {
	out := make([]Match, len(ms))
	copy(out, ms)
	return out
}
