package core

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

func TestSearchEmptyIndex(t *testing.T) {
	d := newDeployment(t, 8, 2, 0)
	ctx := context.Background()
	res, err := d.client.SupersetSearch(ctx, keyword.NewSet("nothing"), All, SearchOptions{})
	if err != nil {
		t.Fatalf("search empty index: %v", err)
	}
	if len(res.Matches) != 0 || !res.Exhausted {
		t.Errorf("empty-index search = %d matches, exhausted=%v", len(res.Matches), res.Exhausted)
	}
}

func TestQueryLargerThanDimension(t *testing.T) {
	// More keywords than dimensions: every dimension may be occupied;
	// the subcube can shrink to a single vertex.
	d := newDeployment(t, 4, 2, 0)
	ctx := context.Background()
	words := make([]string, 12)
	for i := range words {
		words[i] = "w" + strconv.Itoa(i)
	}
	o := obj("dense", words...)
	if _, err := d.client.Insert(ctx, o); err != nil {
		t.Fatal(err)
	}
	res, err := d.client.SupersetSearch(ctx, o.Keywords, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Errorf("matches = %d", len(res.Matches))
	}
	// Pin search on the full set also works.
	ids, _, err := d.client.PinSearch(ctx, o.Keywords)
	if err != nil || len(ids) != 1 {
		t.Errorf("pin = %v, %v", ids, err)
	}
}

func TestSingleDimensionCube(t *testing.T) {
	// r = 1: two vertices, everything hashes to dimension 0.
	d := newDeployment(t, 1, 1, 0)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := d.client.Insert(ctx, obj("tiny-"+strconv.Itoa(i), "k"+strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.client.SupersetSearch(ctx, keyword.NewSet("k0"), All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Errorf("matches = %d", len(res.Matches))
	}
	if res.Stats.NodesContacted > 2 {
		t.Errorf("contacted %d nodes in a 2-vertex cube", res.Stats.NodesContacted)
	}
}

func TestUnicodeKeywords(t *testing.T) {
	d := newDeployment(t, 8, 2, 0)
	ctx := context.Background()
	o := obj("taipei", "台北", "新聞", "網路")
	if _, err := d.client.Insert(ctx, o); err != nil {
		t.Fatal(err)
	}
	ids, _, err := d.client.PinSearch(ctx, keyword.NewSet("新聞", "台北", "網路"))
	if err != nil || len(ids) != 1 {
		t.Fatalf("unicode pin = %v, %v", ids, err)
	}
	res, err := d.client.SupersetSearch(ctx, keyword.NewSet("新聞"), All, SearchOptions{})
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("unicode superset = %d, %v", len(res.Matches), err)
	}
}

func TestManyObjectsSameKeywordSet(t *testing.T) {
	// One index entry aggregating many object IDs (the paper's
	// ⟨K, {σ1, …, σn}⟩ consolidation).
	d := newDeployment(t, 8, 2, 0)
	ctx := context.Background()
	k := keyword.NewSet("same", "set")
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := d.client.Insert(ctx, Object{ID: "dup-" + strconv.Itoa(i), Keywords: k}); err != nil {
			t.Fatal(err)
		}
	}
	// A single entry on the responsible server.
	srv := d.serverFor(d.hasher.Vertex(k))
	if st := srv.Stats(); st.Entries != 1 || st.Objects != n {
		t.Errorf("stats = %+v, want 1 entry / %d objects", st, n)
	}
	ids, _, err := d.client.PinSearch(ctx, k)
	if err != nil || len(ids) != n {
		t.Fatalf("pin = %d ids, %v", len(ids), err)
	}
	// Threshold slicing across one dense entry.
	res, err := d.client.SupersetSearch(ctx, k, 7, SearchOptions{})
	if err != nil || len(res.Matches) != 7 {
		t.Fatalf("threshold search = %d, %v", len(res.Matches), err)
	}
}

func TestVeryLongKeyword(t *testing.T) {
	d := newDeployment(t, 8, 1, 0)
	ctx := context.Background()
	long := strings.Repeat("long", 500)
	o := obj("long-obj", long, "short")
	if _, err := d.client.Insert(ctx, o); err != nil {
		t.Fatal(err)
	}
	ids, _, err := d.client.PinSearch(ctx, o.Keywords)
	if err != nil || len(ids) != 1 {
		t.Fatalf("long-keyword pin = %v, %v", ids, err)
	}
}

func TestCursorPageLargerThanResults(t *testing.T) {
	d := newDeployment(t, 8, 2, 0)
	ctx := context.Background()
	d.client.Insert(ctx, obj("only", "unique-kw"))
	cur, err := d.client.CumulativeSearch(keyword.NewSet("unique-kw"), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	page, _, err := cur.Next(ctx, 1000)
	if err != nil || len(page) != 1 {
		t.Fatalf("oversized page = %d, %v", len(page), err)
	}
	if !cur.Exhausted() {
		t.Error("cursor not exhausted after full page")
	}
}

func TestRepeatedInsertIsIdempotent(t *testing.T) {
	d := newDeployment(t, 8, 1, 0)
	ctx := context.Background()
	o := obj("idem", "a", "b")
	for i := 0; i < 3; i++ {
		if _, err := d.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	ids, _, err := d.client.PinSearch(ctx, o.Keywords)
	if err != nil || len(ids) != 1 {
		t.Fatalf("after repeated insert: %v, %v", ids, err)
	}
	if st := d.servers[0].Stats(); st.Objects != 1 {
		t.Errorf("objects = %d, want 1", st.Objects)
	}
}
