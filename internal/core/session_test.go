package core

import "testing"

// TestSessionStoreEviction exercises the store at its capacity limit:
// saving past max evicts the oldest session, taking an evicted ID
// yields nil, and the live count never exceeds max.
func TestSessionStoreEviction(t *testing.T) {
	const max = 3
	st := newSessionStore(max)

	sessions := make([]*session, 5)
	ids := make([]uint64, 5)
	for i := range sessions {
		sessions[i] = &session{pred: queryPred{key: "q"}}
		ids[i] = st.save(sessions[i])
		if got := st.len(); got > max {
			t.Fatalf("after save %d: len = %d, want <= %d", i, got, max)
		}
	}
	if st.len() != max {
		t.Fatalf("len = %d, want %d", st.len(), max)
	}

	// The two oldest (ids[0], ids[1]) were evicted by saves 4 and 5.
	for _, id := range ids[:2] {
		if got := st.take(id); got != nil {
			t.Fatalf("take(%d) on evicted session = %v, want nil", id, got)
		}
	}
	// The newest max sessions survive and come back identically.
	for i, id := range ids[2:] {
		got := st.take(id)
		if got != sessions[i+2] {
			t.Fatalf("take(%d) = %p, want the saved session %p", id, got, sessions[i+2])
		}
	}
	if st.len() != 0 {
		t.Fatalf("len after draining = %d, want 0", st.len())
	}

	// take is single-shot: a drained ID stays gone.
	if got := st.take(ids[4]); got != nil {
		t.Fatalf("re-take(%d) = %v, want nil", ids[4], got)
	}
}

// TestSessionStoreTakeRemoves checks take's removal semantics: a
// taken ID cannot be taken twice, and taking from the middle keeps the
// eviction order of the remaining sessions intact.
func TestSessionStoreTakeRemoves(t *testing.T) {
	st := newSessionStore(2)
	a := st.save(&session{pred: queryPred{key: "a"}})
	b := st.save(&session{pred: queryPred{key: "b"}})

	if got := st.take(a); got == nil || got.pred.key != "a" {
		t.Fatalf("take(a) = %v, want session a", got)
	}
	if got := st.take(a); got != nil {
		t.Fatalf("second take(a) = %v, want nil", got)
	}

	// With a gone, saving one more must not evict b (only one live).
	c := st.save(&session{pred: queryPred{key: "c"}})
	if got := st.take(b); got == nil || got.pred.key != "b" {
		t.Fatalf("take(b) after unrelated save = %v, want session b", got)
	}
	if got := st.take(c); got == nil || got.pred.key != "c" {
		t.Fatalf("take(c) = %v, want session c", got)
	}
}
