package core

import (
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Wire messages of the index protocol. Vertices travel as uint64 so
// the messages are gob-friendly.
type (
	// msgInsertEntry places an index entry ⟨K_σ, σ⟩ at the logical
	// vertex responsible for K_σ within one index instance. ClientID
	// (optional, on every client-facing message) identifies the
	// originating client to the receiver's admission controller for
	// fair queuing; empty means anonymous/internal traffic.
	msgInsertEntry struct {
		Instance string
		Vertex   uint64
		SetKey   string
		ObjectID string
		ClientID string
	}

	// msgDeleteEntry removes an index entry.
	msgDeleteEntry struct {
		Instance string
		Vertex   uint64
		SetKey   string
		ObjectID string
		ClientID string
	}
	respDeleteEntry struct{ Found bool }

	// msgPinQuery asks the vertex responsible for K for the objects
	// indexed under exactly K. Relay marks a double-read forwarded by
	// the new owner of an in-flight range to the old owner, whose table
	// stays complete until commit: the receiver skips its ownership
	// check and answers locally.
	msgPinQuery struct {
		Instance string
		Vertex   uint64
		SetKey   string
		ClientID string
		Relay    bool
	}
	respPinQuery struct{ ObjectIDs []string }

	// msgTQuery is the initiator's superset-search request to the root
	// node F_h(K) (the paper's T_QUERY(K, t, u, -, -)). If SessionID is
	// nonzero the root continues a stored cumulative session instead of
	// starting a new traversal; if Cumulative is set the root retains
	// the frontier for later continuation.
	msgTQuery struct {
		Instance   string
		Dim        int // hypercube dimensionality of the instance (0 = server default)
		Vertex     uint64
		QueryKey   string
		Threshold  int
		Order      TraversalOrder
		Cumulative bool
		SessionID  uint64
		NoCache    bool
		WantTrace  bool
		ClientID   string
		// DeadlineUnixNano carries the initiator's context deadline to
		// the root (0 = none). TCP handlers run under the listener's
		// context, which knows nothing of the caller's deadline; the
		// root re-derives a deadline-bearing context from this field so
		// admission can shed doomed requests and an expired traversal
		// abandons its remaining waves.
		DeadlineUnixNano int64
		// RefineFromKey marks an explicit refinement request (Lemma
		// 3.3): the receiver is the root of a previously-exhausted
		// search for the ancestor query RefineFromKey rooted at
		// RefineFromVertex, and is asked to derive this (refined)
		// query's answer from its cached ancestor state. Vertex then
		// carries the REFINED root F_h(QueryKey), which the receiver
		// does not own — ownership is checked against RefineFromVertex
		// instead. errCodeNoRefineState reports unusable cached state;
		// the client falls back to a plain search.
		RefineFromKey    string
		RefineFromVertex uint64
		// SoftOnly marks a search a spreading client addressed directly
		// to a soft replica: the receiver must answer from a live soft
		// copy of the root or reject with errCodeNoSoftCopy — it must
		// NOT fall back to its own tables, which are not authoritative
		// for this vertex.
		SoftOnly bool
		// Class selects the query's match predicate and root resolution.
		// The zero value is ClassSuperset, so pre-Class initiators decode
		// unchanged. For ClassPin, QueryKey is the exact set key and
		// Vertex its F_h image; for ClassPrefix, QueryKey is the
		// normalized prefix string and Vertex the lowest dimension of
		// DimMask.
		Class QueryClass
		// DimMask constrains a ClassPrefix multicast to the dimensions a
		// matching keyword can hash to (0 = all r dimensions). Ignored by
		// the other classes.
		DimMask uint64
	}
	respTQuery struct {
		Matches     []Match
		Exhausted   bool
		SessionID   uint64
		SubNodes    int // hypercube nodes contacted (including the root)
		SubMsgs     int // messages exchanged by the root with them
		Rounds      int // sequential message rounds (parallel: waves)
		FailedNodes int // nodes skipped because they were unreachable
		PhysFrames  int // physical RPC frames the root actually sent
		CacheHit    bool
		ErrCode     int // protocol-level outcome (errCode*)
		// Trace records per-node visit outcomes in traversal order
		// when requested (WantTrace); used by the experiment harness
		// to derive nodes-contacted-versus-recall curves.
		Trace []TraceStep
		// RefineHit reports that the answer was derived from cached
		// ancestor state (Lemma 3.3) instead of a traversal. Kept
		// separate from CacheHit so the Fig-9 hit accounting stays
		// exact: a refine hit was counted as a cache miss.
		RefineHit bool
		// SoftAddrs advertises the soft-replica set of a promoted hot
		// root (set only by the owner): clients may spread subsequent
		// identical-root searches across these addresses.
		SoftAddrs []string
	}

	// msgSubQuery is the root's per-node step (the paper's
	// T_QUERY(K, c, u, d, v) sent to a frontier node w). The receiver
	// examines the index table of Vertex for entries K' ⊇ QueryKey,
	// returns up to Limit matches after skipping Skip of them, and —
	// unless GenDim is negative — the child list
	// L = {(x, i) : i < GenDim, i ∈ Zero(w)} (the paper's T_CONT).
	msgSubQuery struct {
		Instance string
		Dim      int // hypercube dimensionality of the instance (0 = server default)
		Vertex   uint64
		Root     uint64 // the query's root vertex F_h(K) in this instance
		QueryKey string
		Limit    int
		Skip     int
		GenDim   int
		// Relay marks a double-read forwarded to the old owner of a
		// migrating range (see msgPinQuery.Relay).
		Relay bool
		// Class selects the match predicate applied to the vertex's
		// table (zero value = ClassSuperset; QueryKey's meaning follows
		// msgTQuery.Class).
		Class QueryClass
	}
	respSubQuery struct {
		Matches   []Match
		Remaining int // matches at this node beyond the returned window
		Children  []wireEdge
	}

	wireEdge struct {
		Vertex uint64
		Dim    int
	}

	// msgSubQueryBatch coalesces an entire wave's worth of msgSubQuery
	// work units destined for the same physical peer into one RPC
	// frame. Each unit is the exact payload a standalone msgSubQuery
	// would have carried; the receiver answers every unit under a
	// single lock acquisition and reports per-unit outcomes so the
	// root's failure accounting (Lemma 3.2) is unchanged. The batch as
	// a whole is read-only and therefore hedgeable.
	msgSubQueryBatch struct {
		Instance string
		Dim      int // hypercube dimensionality of the instance (0 = server default)
		Root     uint64
		QueryKey string
		Limit    int
		Units    []wireUnit
		// DeadlineUnixNano propagates the search deadline into the
		// frame (0 = none): a receiver whose transport context carries
		// no deadline (tcpnet) still stops scanning units once the
		// root's search has expired.
		DeadlineUnixNano int64
		// Class selects the match predicate for every unit of the frame
		// (zero value = ClassSuperset).
		Class QueryClass
	}

	// wireUnit is one logical sub-query inside a batch.
	wireUnit struct {
		Vertex uint64
		Skip   int
		GenDim int
	}

	respSubQueryBatch struct {
		Results []respSubUnit
	}

	// respSubUnit mirrors respSubQuery for one batched unit. ErrCode is
	// nonzero when this particular vertex could not be served (e.g. the
	// peer no longer owns it after a ring change); the root then falls
	// back to a per-unit send with the usual resolve-retry path.
	respSubUnit struct {
		Matches   []Match
		Remaining int
		Children  []wireEdge
		ErrCode   int
	}

	respAck struct{}

	// msgBulkInsert transfers a batch of index entries, used when a
	// departing node re-homes its tables to its DHT successor.
	msgBulkInsert struct {
		Entries []BulkEntry
	}

	// msgMigrateChunk asks the old owner for one cursor-paged chunk of
	// the index entries a newly joined node now owns: entries whose
	// vertex key is NOT in (NewID, OwnerID] on the DHT ring. The read
	// is non-destructive — the old owner keeps serving the range until
	// msgMigrateCommit — and the cursor is client-driven, so the source
	// holds no transfer state and a crashed puller resumes by replaying
	// its last durable cursor. Migration traffic is interior: it is
	// never gated by admission control, and it carries the manager's
	// per-chunk deadline like search frames do.
	msgMigrateChunk struct {
		NewID      uint64
		OwnerID    uint64
		Cursor     wireCursor
		MaxEntries int
		MaxBytes   int
		// DeadlineUnixNano carries the migration manager's per-chunk
		// deadline (0 = none); TCP handler contexts don't know the
		// caller's deadline, so the source re-derives it from here.
		DeadlineUnixNano int64
	}
	respMigrateChunk struct {
		Entries []BulkEntry
		Cursor  wireCursor // resume point: pass back on the next pull
		Done    bool       // no entries remain past Cursor
	}

	// wireCursor is a resumable position in the source's deterministic
	// entry order (instances, then vertices, then set keys, then object
	// IDs, all sorted). Started=false means "from the beginning".
	wireCursor struct {
		Started  bool
		Instance string
		Vertex   uint64
		SetKey   string
		ObjectID string
	}

	// msgMigrateCommit ends the double-read window: the new owner has
	// durably applied every chunk, so the old owner now extracts and
	// drops the migrated range (logging OpHandoff) and stops serving
	// it. Idempotent — recommitting an already-dropped range is a no-op.
	msgMigrateCommit struct {
		NewID            uint64
		OwnerID          uint64
		DeadlineUnixNano int64
	}
	respMigrateCommit struct {
		Dropped int
	}

	// msgSoftPromote installs one chunk of a hot vertex's table on a
	// soft-replica peer. The owner of a popularity-promoted root
	// pushes its full table in migration-sized chunks under one
	// generation number; the copy goes live only when the Done chunk
	// lands, so a half-pushed table never serves. Soft copies are
	// volatile by design — never WAL-logged, dropped on restart — and
	// the owner re-promotes from live popularity if they matter.
	msgSoftPromote struct {
		Instance string
		Vertex   uint64
		Gen      uint64
		Entries  []BulkEntry
		Done     bool
	}

	// msgSoftInvalidate drops a soft-replica copy. The owner sends it
	// synchronously (best effort) on any mutation of a promoted
	// vertex, carrying the mutated entry's SetKey so the replica also
	// runs the same invalidateSubsetsOf event over its own result
	// cache; demotion-by-cooling sends it with an empty SetKey (the
	// copy goes away but cached results remain valid).
	msgSoftInvalidate struct {
		Instance string
		Vertex   uint64
		Gen      uint64
		SetKey   string
	}
)

// ReadOnlyMessage classifies index-protocol bodies that are safe to
// hedge and to retry after a timed-out attempt: they neither mutate
// index tables nor consume root-side session state. A one-shot
// T_QUERY is read-only (its only side effect is populating the result
// cache); cumulative starts and continuations are not, because each
// delivery creates or advances a session. Wire it into the resilience
// middleware via SetReadOnly (combine layers with resilience.AnyOf).
func ReadOnlyMessage(body any) bool {
	switch m := body.(type) {
	case msgPinQuery, msgSubQuery, msgSubQueryBatch, msgMigrateChunk:
		return true
	case msgTQuery:
		return !m.Cumulative && m.SessionID == 0
	}
	return false
}

// BulkEntry is one transferable index entry.
type BulkEntry struct {
	Instance string
	Vertex   uint64
	SetKey   string
	ObjectID string
}

// RegisterTypes registers the index-protocol messages with the
// transport encoding registry; required once per process for the TCP
// transport.
func RegisterTypes() {
	for _, v := range []any{
		msgInsertEntry{}, respAck{},
		msgDeleteEntry{}, respDeleteEntry{},
		msgPinQuery{}, respPinQuery{},
		msgTQuery{}, respTQuery{},
		msgSubQuery{}, respSubQuery{},
		msgSubQueryBatch{}, respSubQueryBatch{},
		msgBulkInsert{},
		msgMigrateChunk{}, respMigrateChunk{},
		msgMigrateCommit{}, respMigrateCommit{},
		msgSoftPromote{}, msgSoftInvalidate{},
		Match{},
	} {
		transport.RegisterType(v)
	}
	registerWireCodecs()
}
