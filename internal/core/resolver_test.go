package core

import (
	"context"
	"strconv"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

func staticOverlay(t *testing.T, n int) *dht.Static {
	t.Helper()
	addrs := make([]transport.Addr, n)
	for i := range addrs {
		addrs[i] = transport.Addr("static-" + strconv.Itoa(i))
	}
	s, err := dht.NewStatic(addrs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestVertexKeyDistinguishesInstances(t *testing.T) {
	a := VertexKey("main", 5)
	b := VertexKey("replica-1", 5)
	c := VertexKey("main", 6)
	if a == b || a == c {
		t.Errorf("vertex keys collide: %d %d %d", a, b, c)
	}
	if a != VertexKey("main", 5) {
		t.Error("VertexKey not deterministic")
	}
}

func TestOverlayResolverCachesBindings(t *testing.T) {
	overlay := staticOverlay(t, 8)
	r := NewOverlayResolver(overlay)
	ctx := context.Background()

	addr1, err := r.Resolve(ctx, "main", 3)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	before := overlay.Lookups()
	addr2, err := r.Resolve(ctx, "main", 3)
	if err != nil || addr2 != addr1 {
		t.Fatalf("cached Resolve = %s, %v", addr2, err)
	}
	if overlay.Lookups() != before {
		t.Error("cached resolve still hit the overlay")
	}
	if r.CacheSize() != 1 {
		t.Errorf("CacheSize = %d", r.CacheSize())
	}

	// Different instances resolve (and cache) independently.
	if _, err := r.Resolve(ctx, "replica-1", 3); err != nil {
		t.Fatal(err)
	}
	if r.CacheSize() != 2 {
		t.Errorf("CacheSize after second instance = %d", r.CacheSize())
	}

	r.Invalidate("main", 3)
	if r.CacheSize() != 1 {
		t.Errorf("CacheSize after invalidate = %d", r.CacheSize())
	}
	if _, err := r.Resolve(ctx, "main", 3); err != nil {
		t.Fatal(err)
	}
	if overlay.Lookups() <= before {
		t.Error("invalidated binding did not re-resolve")
	}
}

func TestServerDrainMovesEverything(t *testing.T) {
	d := newDeployment(t, 8, 2, 0)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := d.client.Insert(ctx, obj("dr-"+strconv.Itoa(i), "drain", "k"+strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	before0 := d.servers[0].Stats().Objects
	if before0+d.servers[1].Stats().Objects != 20 {
		t.Fatalf("pre-drain objects = %d", before0+d.servers[1].Stats().Objects)
	}

	// Drain server 0 into server 1's endpoint.
	moved, err := d.servers[0].DrainTo(ctx, d.net, d.addrs[1])
	if err != nil {
		t.Fatalf("DrainTo: %v", err)
	}
	if moved != before0 {
		t.Fatalf("moved = %d, want %d", moved, before0)
	}
	if got := d.servers[0].Stats().Objects; got != 0 {
		t.Errorf("drained server still holds %d objects", got)
	}
	if got := d.servers[1].Stats().Objects; got != 20 {
		t.Errorf("receiver holds %d objects, want 20", got)
	}
	// Empty drain is a no-op.
	if n, err := d.servers[0].DrainTo(ctx, d.net, d.addrs[1]); err != nil || n != 0 {
		t.Errorf("empty drain = %d, %v", n, err)
	}
}

func TestReplicatedAccessors(t *testing.T) {
	_, _, rep, clients := newReplicatedDeployment(t, 6, 2)
	if rep.Fanout() != 2 {
		t.Errorf("Fanout = %d", rep.Fanout())
	}
	if rep.Primary() != clients[0] {
		t.Error("Primary mismatch")
	}
	if rep.Replica(1) != clients[1] || rep.Replica(2) != nil || rep.Replica(-1) != nil {
		t.Error("Replica accessor wrong")
	}
}

func TestClientAccessors(t *testing.T) {
	d := newDeployment(t, 8, 1, 0)
	if d.client.Hasher().Dim() != 8 {
		t.Errorf("Hasher dim = %d", d.client.Hasher().Dim())
	}
	if d.client.Instance() != DefaultInstance {
		t.Errorf("Instance = %q", d.client.Instance())
	}
	addr, err := d.client.ResolveRoot(context.Background(), keyword.NewSet("x"))
	if err != nil || addr == "" {
		t.Errorf("ResolveRoot = %q, %v", addr, err)
	}
	if _, err := NewInstanceClient("x", keyword.MustNewHasher(4, 0), nil, nil); err == nil {
		t.Error("nil deps accepted")
	}
}
