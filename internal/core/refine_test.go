package core

import (
	"context"
	"reflect"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// A derived refinement must be byte-identical to the live traversal it
// replaces — same matches, same order, same depths — for every
// traversal order.
func TestRefineSearchByteIdenticalToTraversal(t *testing.T) {
	for _, order := range []TraversalOrder{TopDown, BottomUp, ParallelLevels} {
		t.Run(order.String(), func(t *testing.T) {
			d := newDeployment(t, 9, 4, 100000)
			ctx := context.Background()
			corpus(t, d, 300, 71)
			base := keyword.NewSet("isp")
			refined := keyword.NewSet("isp", "news")
			opts := SearchOptions{Order: order}

			if _, err := d.client.SupersetSearch(ctx, base, All, opts); err != nil {
				t.Fatalf("base search: %v", err)
			}
			got, err := d.client.RefineSearch(ctx, base, refined, All, opts)
			if err != nil {
				t.Fatalf("RefineSearch: %v", err)
			}
			if !got.Stats.RefineHit {
				t.Fatal("refinement fell back to a traversal despite cached ancestor state")
			}
			want, err := d.client.SupersetSearch(ctx, refined, All, SearchOptions{Order: order, NoCache: true})
			if err != nil {
				t.Fatalf("reference search: %v", err)
			}
			if len(want.Matches) == 0 {
				t.Fatal("reference search found nothing; corpus too sparse")
			}
			if !reflect.DeepEqual(got.Matches, want.Matches) {
				t.Errorf("derived matches differ from live traversal:\n got %v\nwant %v", got.Matches, want.Matches)
			}
			if got.Exhausted != want.Exhausted {
				t.Errorf("Exhausted = %v, want %v", got.Exhausted, want.Exhausted)
			}
		})
	}
}

// Without usable cached ancestor state the client falls back to a plain
// traversal transparently.
func TestRefineSearchFallbackWithoutState(t *testing.T) {
	d := newDeployment(t, 9, 4, 100000)
	ctx := context.Background()
	objects := corpus(t, d, 300, 73)
	base := keyword.NewSet("mp3")
	refined := keyword.NewSet("mp3", "video")

	res, err := d.client.RefineSearch(ctx, base, refined, All, SearchOptions{})
	if err != nil {
		t.Fatalf("RefineSearch: %v", err)
	}
	if res.Stats.RefineHit {
		t.Error("claimed a refine hit with no prior base search")
	}
	if want := bruteForce(objects, refined); !equalStrings(matchIDs(res.Matches), want) {
		t.Errorf("fallback results %v, want %v", matchIDs(res.Matches), want)
	}
}

// A partial (non-exhausted) base result must not serve as a refinement
// source: completeness of the ancestor is what makes Lemma 3.3 sound.
func TestRefineSearchRejectsPartialAncestor(t *testing.T) {
	d := newDeployment(t, 9, 4, 100000)
	ctx := context.Background()
	objects := corpus(t, d, 300, 79)
	base := keyword.NewSet("news")
	refined := keyword.NewSet("news", "tv")
	if len(bruteForce(objects, base)) < 3 {
		t.Fatal("corpus too sparse for a partial base search")
	}
	// Threshold 2 leaves the base result partial (never exhausted).
	if _, err := d.client.SupersetSearch(ctx, base, 2, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := d.client.RefineSearch(ctx, base, refined, All, SearchOptions{})
	if err != nil {
		t.Fatalf("RefineSearch: %v", err)
	}
	if res.Stats.RefineHit {
		t.Error("partial ancestor state served a refinement")
	}
	if want := bruteForce(objects, refined); !equalStrings(matchIDs(res.Matches), want) {
		t.Errorf("results %v, want %v", matchIDs(res.Matches), want)
	}
}

// RefineSearch validates its arguments: the base must be a proper
// subset of the refined query.
func TestRefineSearchValidation(t *testing.T) {
	d := newDeployment(t, 9, 2, 1000)
	ctx := context.Background()
	if _, err := d.client.RefineSearch(ctx, keyword.NewSet("a", "b"), keyword.NewSet("a"), 5, SearchOptions{}); err == nil {
		t.Error("base ⊄ refined accepted")
	}
	if _, err := d.client.RefineSearch(ctx, keyword.NewSet(), keyword.NewSet("a"), 5, SearchOptions{}); err == nil {
		t.Error("empty base accepted")
	}
	if _, err := d.client.RefineSearch(ctx, keyword.NewSet("a"), keyword.NewSet("a", "b"), 0, SearchOptions{}); err == nil {
		t.Error("zero threshold accepted")
	}
}

// An identical repeat of a refined query after an explicit RefineSearch
// must hit the result cache: the derived answer is cached under the
// refined key.
func TestRefineSearchPopulatesCache(t *testing.T) {
	d := newDeployment(t, 9, 4, 100000)
	ctx := context.Background()
	corpus(t, d, 300, 83)
	base := keyword.NewSet("isp")
	refined := keyword.NewSet("isp", "game")
	if _, err := d.client.SupersetSearch(ctx, base, All, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	rs, err := d.client.RefineSearch(ctx, base, refined, All, SearchOptions{})
	if err != nil || !rs.Stats.RefineHit {
		t.Fatalf("refine: err=%v hit=%v", err, rs.Stats.RefineHit)
	}
	// The refined root owns the cached derived entry — a plain search
	// for the refined query from any client now hits it... but only if
	// the refined root equals the base root (the cache lives on the base
	// root's node). Assert the weaker, always-true property instead: an
	// in-search refinement or cache hit answers from one node.
	res, err := d.client.SupersetSearch(ctx, refined, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Matches, rs.Matches) {
		t.Error("post-refine plain search disagrees with the derived result")
	}
}

// The in-search refinement path: a plain search whose query strictly
// refines an exhausted cached ancestor on the SAME root node derives
// instead of traversing, and the derived answer is byte-identical.
func TestInSearchRefinementByteIdentical(t *testing.T) {
	d := newDeployment(t, 9, 4, 100000)
	ctx := context.Background()
	corpus(t, d, 400, 89)

	// Find a base/refined pair whose roots land on the same server, so
	// the refined search's root holds the ancestor's cached entry.
	vocab := []string{"isp", "news", "mp3", "video", "game", "shop", "travel", "bank", "edu", "tv"}
	var base, refined keyword.Set
	found := false
	for _, w1 := range vocab {
		for _, w2 := range vocab {
			if w1 == w2 {
				continue
			}
			b, r := keyword.NewSet(w1), keyword.NewSet(w1, w2)
			if d.serverFor(d.hasher.Vertex(b)) == d.serverFor(d.hasher.Vertex(r)) {
				base, refined, found = b, r, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no co-located base/refined root pair in vocabulary")
	}

	if _, err := d.client.SupersetSearch(ctx, base, All, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := d.client.SupersetSearch(ctx, refined, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Stats.RefineHit {
		t.Fatal("co-located refined query did not use the in-search refinement path")
	}
	want, err := d.client.SupersetSearch(ctx, refined, All, SearchOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Errorf("in-search refinement differs from live traversal:\n got %v\nwant %v", got.Matches, want.Matches)
	}
}
