package core

import (
	"context"
	"reflect"
	"runtime"
	"strconv"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// parallelBenchServer builds one server loaded like a member of a
// 64-peer fleet at r = 10: every one of the 1024 logical vertices
// holds entries ("hub" + filler keywords) so an exhaustive "hub" query
// scans them all.
func parallelBenchServer(b *testing.B, shards, scanPar int) *Server {
	b.Helper()
	const entriesPerVertex, idsPerEntry = 48, 6
	hasher := keyword.MustNewHasher(10, 42)
	srv, err := NewServer(ServerConfig{
		Hasher:          hasher,
		Resolver:        FuncResolver(func(hypercube.Vertex) transport.Addr { return "bench-0" }),
		Sender:          benchSender{},
		Shards:          shards,
		ScanParallelism: scanPar,
	})
	if err != nil {
		b.Fatal(err)
	}
	for v := 0; v < 1<<10; v++ {
		for e := 0; e < entriesPerVertex; e++ {
			key := keyword.NewSet("hub", "w"+strconv.Itoa(e)).Key()
			for j := 0; j < idsPerEntry; j++ {
				srv.insertEntry(DefaultInstance, hypercube.Vertex(v),
					key, "o-"+strconv.Itoa(v)+"-"+strconv.Itoa(e)+"-"+strconv.Itoa(j))
			}
		}
	}
	return srv
}

// parallelBenchFrames builds the 64 msgSubQueryBatch frames a 64-peer
// fleet member receives when an exhaustive r = 10 search flattens into
// a mega-wave: frame p carries the 16 vertices with v mod 64 == p.
func parallelBenchFrames() []msgSubQueryBatch {
	const peers = 64
	queryKey := keyword.NewSet("hub").Key()
	frames := make([]msgSubQueryBatch, peers)
	for p := range frames {
		var units []wireUnit
		for v := p; v < 1<<10; v += peers {
			units = append(units, wireUnit{Vertex: uint64(v), GenDim: -1})
		}
		frames[p] = msgSubQueryBatch{
			Instance: DefaultInstance,
			QueryKey: queryKey,
			Root:     0,
			Limit:    -1,
			Units:    units,
		}
	}
	return frames
}

// runBatchPass answers every frame once, returning the responses and
// the elapsed wall time.
func runBatchPass(srv *Server, frames []msgSubQueryBatch) ([]respSubQueryBatch, time.Duration) {
	out := make([]respSubQueryBatch, len(frames))
	start := time.Now()
	for i := range frames {
		out[i] = srv.subQueryBatch(context.Background(), frames[i])
	}
	return out, time.Since(start)
}

// BenchmarkParallelBatchScan pins the tentpole's payoff on the local
// hot path wave batching created: one physical peer of a 64-peer
// fleet answering its 16-unit share of an exhaustive r = 10 mega-wave,
// frame after frame. The sequential baseline (Shards = 1,
// ScanParallelism = 1) is the pre-sharding server; the tuned
// configuration must be at least 2x faster when 4+ cores are
// available, with byte-identical responses — the gate fails the
// bench-smoke CI stage otherwise.
func BenchmarkParallelBatchScan(b *testing.B) {
	frames := parallelBenchFrames()
	baseline := parallelBenchServer(b, 1, 1)
	tuned := parallelBenchServer(b, 0, 0) // library defaults: GOMAXPROCS shards + workers

	// Warm both servers' sorted-order caches and verify equivalence on
	// the warm-up pass.
	respBase, _ := runBatchPass(baseline, frames)
	respTuned, _ := runBatchPass(tuned, frames)
	if !reflect.DeepEqual(respBase, respTuned) {
		b.Fatal("sequential and parallel batch responses differ")
	}

	// Fixed-rep, best-of-k timing outside b.N: the gate needs a
	// speedup ratio, not a per-op figure, and must run even at
	// -benchtime=1x (bench-smoke).
	const reps = 3
	best := func(srv *Server) time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			if _, d := runBatchPass(srv, frames); d < min {
				min = d
			}
		}
		return min
	}
	seq := best(baseline)
	par := best(tuned)
	speedup := float64(seq) / float64(par)

	// Gate only where the hardware can deliver: ≥ 4 schedulable threads
	// AND ≥ 4 physical cores (GOMAXPROCS alone can be inflated on a
	// small box, where the speedup is physically unreachable).
	if cores := runtime.GOMAXPROCS(0); cores >= 4 && runtime.NumCPU() >= 4 && speedup < 2 {
		b.Fatalf("parallel batch scan speedup %.2fx < 2x on %d cores (seq %v, par %v per pass)",
			speedup, cores, seq, par)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBatchPass(tuned, frames)
	}
	// Report after ResetTimer: it deletes user-reported metrics.
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(seq.Nanoseconds()), "seq-ns/pass")
	b.ReportMetric(float64(par.Nanoseconds()), "par-ns/pass")
}
