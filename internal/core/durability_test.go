package core

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/store"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// newDurableDeployment is newDeploymentTuned with a data directory per
// server: dirs[i] backs servers[i]. Reusing the same dirs across two
// constructions models a full-fleet restart.
func newDurableDeployment(t *testing.T, r, nServers, cacheCap int, dirs []string, fsync store.FsyncPolicy, snapEvery int, reg *telemetry.Registry) *deployment {
	t.Helper()
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	hasher := keyword.MustNewHasher(r, 42)
	addrs := make([]transport.Addr, nServers)
	for i := range addrs {
		addrs[i] = transport.Addr("ix-" + strconv.Itoa(i))
	}
	resolver := FuncResolver(func(v hypercube.Vertex) transport.Addr {
		return addrs[int(uint64(v)%uint64(nServers))]
	})
	servers := make([]*Server, nServers)
	for i := range servers {
		srv, err := NewServer(ServerConfig{
			Hasher:        hasher,
			Resolver:      resolver,
			Sender:        net,
			CacheCapacity: cacheCap,
			DataDir:       dirs[i],
			Fsync:         fsync,
			SnapshotEvery: snapEvery,
			Telemetry:     reg,
		})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		servers[i] = srv
		t.Cleanup(func() { srv.Close() })
		if _, err := net.Bind(addrs[i], srv.Handler); err != nil {
			t.Fatalf("Bind: %v", err)
		}
	}
	client, err := NewClient(hasher, resolver, net)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return &deployment{net: net, hasher: hasher, servers: servers, addrs: addrs, client: client}
}

func tempDirs(t *testing.T, n int) []string {
	t.Helper()
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	return dirs
}

func (d *deployment) closeServers(t *testing.T) {
	t.Helper()
	for _, srv := range d.servers {
		if err := srv.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	d.net.Close()
}

// TestDurableRestartEquivalence is the acceptance criterion at the
// core layer: a durable deployment, restarted from its data dirs, must
// answer pin and superset queries byte-identically to both its
// pre-restart self and a never-restarted non-durable twin — matches
// (and order), Exhausted, Completeness, accounting, and traces.
func TestDurableRestartEquivalence(t *testing.T) {
	const r, nServers = 8, 4
	dirs := tempDirs(t, nServers)
	durable := newDurableDeployment(t, r, nServers, 0, dirs, store.FsyncOff, 0, nil)
	plain := newDeploymentTuned(t, r, nServers, 0, BatchAuto, 0, 0)

	objects := batchCorpus(31, 120)
	ctx := context.Background()
	for _, o := range objects {
		if _, err := durable.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a slice of the corpus so the WAL holds delete records too.
	for i := 0; i < len(objects); i += 7 {
		if _, _, err := durable.client.Delete(ctx, objects[i]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := plain.client.Delete(ctx, objects[i]); err != nil {
			t.Fatal(err)
		}
	}

	queries := batchQueries(37)
	opts := SearchOptions{Order: ParallelLevels, NoCache: true, Trace: true}

	type snap struct {
		res Result
		err error
	}
	before := make(map[string]snap)
	for _, q := range queries {
		res, err := durable.client.SupersetSearch(ctx, q, All, opts)
		before[q.Key()] = snap{res, err}
		pRes, pErr := plain.client.SupersetSearch(ctx, q, All, opts)
		requireSameResult(t, "durable-vs-plain/"+q.Key(), pRes, res, pErr, err)
	}
	pinBefore := make(map[string][]string)
	for _, o := range objects {
		ids, _, err := durable.client.PinSearch(ctx, o.Keywords)
		if err != nil {
			t.Fatal(err)
		}
		pinBefore[o.Keywords.Key()] = ids
	}

	// Restart: close every server and rebuild the fleet over the same
	// data dirs. NewServer replays snapshot + WAL into the tables.
	durable.closeServers(t)
	restarted := newDurableDeployment(t, r, nServers, 0, dirs, store.FsyncOff, 0, nil)

	for _, q := range queries {
		res, err := restarted.client.SupersetSearch(ctx, q, All, opts)
		b := before[q.Key()]
		requireSameResult(t, "restart/"+q.Key(), b.res, res, b.err, err)
	}
	for _, o := range objects {
		ids, _, err := restarted.client.PinSearch(ctx, o.Keywords)
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(ids, pinBefore[o.Keywords.Key()]) {
			t.Fatalf("pin %s: %v after restart, %v before", o.Keywords.Key(), ids, pinBefore[o.Keywords.Key()])
		}
	}
}

// TestDurableCrashResetRecover exercises the sim's in-process crash
// model: CrashReset wipes memory (queries see an empty index),
// RecoverFromStore replays the data dir and restores the exact state.
func TestDurableCrashResetRecover(t *testing.T) {
	const r = 6
	dirs := tempDirs(t, 1)
	reg := telemetry.New(8)
	d := newDurableDeployment(t, r, 1, 0, dirs, store.FsyncInterval, 0, reg)
	ctx := context.Background()

	objects := batchCorpus(41, 60)
	for _, o := range objects {
		if _, err := d.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	srv := d.servers[0]
	want := srv.Stats()
	if want.Entries == 0 {
		t.Fatal("corpus produced no entries")
	}

	srv.CrashReset()
	if got := srv.Stats(); got != (TableStats{}) {
		t.Fatalf("post-crash stats %+v, want empty", got)
	}
	ids, _, err := d.client.PinSearch(ctx, objects[0].Keywords)
	if err != nil || len(ids) != 0 {
		t.Fatalf("post-crash pin = (%v, %v), want empty", ids, err)
	}

	replayed, err := srv.RecoverFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if replayed == 0 {
		t.Fatal("recovery replayed nothing")
	}
	if got := srv.Stats(); got != want {
		t.Fatalf("post-recovery stats %+v, want %+v", got, want)
	}
	if v := reg.Counter("store_recovery_replayed_total").Value(); v != uint64(replayed) {
		t.Fatalf("store_recovery_replayed_total = %d, want %d", v, replayed)
	}
	for _, o := range objects {
		ids, _, err := d.client.PinSearch(ctx, o.Keywords)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, id := range ids {
			if id == o.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("object %s missing after recovery", o.ID)
		}
	}
}

// TestDurableDrainAndHandoffReplay covers the two range mutations'
// WAL records: OpClear (graceful drain) and OpHandoff (join-time range
// extraction) must replay to the same surviving state.
func TestDurableDrainAndHandoffReplay(t *testing.T) {
	const r = 6
	dirs := tempDirs(t, 1)
	d := newDurableDeployment(t, r, 1, 0, dirs, store.FsyncOff, 0, nil)
	ctx := context.Background()

	for _, o := range batchCorpus(43, 40) {
		if _, err := d.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	srv := d.servers[0]

	// Hand off part of the range: entries NOT in (newID, ownerID] leave.
	// The bounds split the hash space, so some (but typically not all)
	// entries depart; what matters is replay determinism, not the split.
	moved, err := srv.extractRange(0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	afterHandoff := srv.Stats()
	if len(moved) == 0 || afterHandoff.Entries == 0 {
		t.Skipf("degenerate handoff split (moved %d, left %d); corpus seed needs adjusting", len(moved), afterHandoff.Entries)
	}

	// Restart and compare the surviving state.
	d.closeServers(t)
	d2 := newDurableDeployment(t, r, 1, 0, dirs, store.FsyncOff, 0, nil)
	if got := d2.servers[0].Stats(); got != afterHandoff {
		t.Fatalf("post-restart stats %+v, want %+v", got, afterHandoff)
	}

	// Drain everything and restart again: recovery must yield an empty
	// index, then fresh inserts must still be recoverable.
	if _, err := d2.servers[0].Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.client.Insert(ctx, Object{ID: "post-drain", Keywords: keyword.NewSet("late", "bird")}); err != nil {
		t.Fatal(err)
	}
	want := d2.servers[0].Stats()
	d2.closeServers(t)
	d3 := newDurableDeployment(t, r, 1, 0, dirs, store.FsyncOff, 0, nil)
	if got := d3.servers[0].Stats(); got != want {
		t.Fatalf("post-drain restart stats %+v, want %+v", got, want)
	}
	ids, _, err := d3.client.PinSearch(ctx, keyword.NewSet("late", "bird"))
	if err != nil || len(ids) != 1 || ids[0] != "post-drain" {
		t.Fatalf("post-drain pin = (%v, %v), want [post-drain]", ids, err)
	}
}

// TestDurableCompactionEquivalence drives enough mutations through a
// small SnapshotEvery to force several compactions, then checks the
// snapshot actually took over from the WAL and a restart still
// reproduces the exact state.
func TestDurableCompactionEquivalence(t *testing.T) {
	const r = 6
	dirs := tempDirs(t, 1)
	reg := telemetry.New(8)
	d := newDurableDeployment(t, r, 1, 0, dirs, store.FsyncOff, 32, reg)
	ctx := context.Background()

	objects := batchCorpus(47, 150)
	for _, o := range objects {
		if _, err := d.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(objects); i += 5 {
		if _, _, err := d.client.Delete(ctx, objects[i]); err != nil {
			t.Fatal(err)
		}
	}
	if v := reg.Counter("store_snapshots_total").Value(); v == 0 {
		t.Fatal("no compaction ran despite SnapshotEvery=32")
	}
	if _, err := os.Stat(filepath.Join(dirs[0], "snapshot.snap")); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	want := d.servers[0].Stats()

	d.closeServers(t)
	d2 := newDurableDeployment(t, r, 1, 0, dirs, store.FsyncOff, 32, nil)
	if got := d2.servers[0].Stats(); got != want {
		t.Fatalf("post-compaction restart stats %+v, want %+v", got, want)
	}
}
