package core

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/store"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// newDurableDeployment is newDeploymentTuned with a data directory per
// server: dirs[i] backs servers[i]. Reusing the same dirs across two
// constructions models a full-fleet restart.
func newDurableDeployment(t *testing.T, r, nServers, cacheCap int, dirs []string, fsync store.FsyncPolicy, snapEvery int, reg *telemetry.Registry) *deployment {
	t.Helper()
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	hasher := keyword.MustNewHasher(r, 42)
	addrs := make([]transport.Addr, nServers)
	for i := range addrs {
		addrs[i] = transport.Addr("ix-" + strconv.Itoa(i))
	}
	resolver := FuncResolver(func(v hypercube.Vertex) transport.Addr {
		return addrs[int(uint64(v)%uint64(nServers))]
	})
	servers := make([]*Server, nServers)
	for i := range servers {
		srv, err := NewServer(ServerConfig{
			Hasher:        hasher,
			Resolver:      resolver,
			Sender:        net,
			CacheCapacity: cacheCap,
			DataDir:       dirs[i],
			Fsync:         fsync,
			SnapshotEvery: snapEvery,
			Telemetry:     reg,
		})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		servers[i] = srv
		t.Cleanup(func() { srv.Close() })
		if _, err := net.Bind(addrs[i], srv.Handler); err != nil {
			t.Fatalf("Bind: %v", err)
		}
	}
	client, err := NewClient(hasher, resolver, net)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return &deployment{net: net, hasher: hasher, servers: servers, addrs: addrs, client: client}
}

func tempDirs(t *testing.T, n int) []string {
	t.Helper()
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	return dirs
}

func (d *deployment) closeServers(t *testing.T) {
	t.Helper()
	for _, srv := range d.servers {
		if err := srv.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	d.net.Close()
}

// TestDurableRestartEquivalence is the acceptance criterion at the
// core layer: a durable deployment, restarted from its data dirs, must
// answer pin and superset queries byte-identically to both its
// pre-restart self and a never-restarted non-durable twin — matches
// (and order), Exhausted, Completeness, accounting, and traces.
func TestDurableRestartEquivalence(t *testing.T) {
	const r, nServers = 8, 4
	dirs := tempDirs(t, nServers)
	durable := newDurableDeployment(t, r, nServers, 0, dirs, store.FsyncOff, 0, nil)
	plain := newDeploymentTuned(t, r, nServers, 0, BatchAuto, 0, 0)

	objects := batchCorpus(31, 120)
	ctx := context.Background()
	for _, o := range objects {
		if _, err := durable.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a slice of the corpus so the WAL holds delete records too.
	for i := 0; i < len(objects); i += 7 {
		if _, _, err := durable.client.Delete(ctx, objects[i]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := plain.client.Delete(ctx, objects[i]); err != nil {
			t.Fatal(err)
		}
	}

	queries := batchQueries(37)
	opts := SearchOptions{Order: ParallelLevels, NoCache: true, Trace: true}

	type snap struct {
		res Result
		err error
	}
	before := make(map[string]snap)
	for _, q := range queries {
		res, err := durable.client.SupersetSearch(ctx, q, All, opts)
		before[q.Key()] = snap{res, err}
		pRes, pErr := plain.client.SupersetSearch(ctx, q, All, opts)
		requireSameResult(t, "durable-vs-plain/"+q.Key(), pRes, res, pErr, err)
	}
	pinBefore := make(map[string][]string)
	for _, o := range objects {
		ids, _, err := durable.client.PinSearch(ctx, o.Keywords)
		if err != nil {
			t.Fatal(err)
		}
		pinBefore[o.Keywords.Key()] = ids
	}

	// Restart: close every server and rebuild the fleet over the same
	// data dirs. NewServer replays snapshot + WAL into the tables.
	durable.closeServers(t)
	restarted := newDurableDeployment(t, r, nServers, 0, dirs, store.FsyncOff, 0, nil)

	for _, q := range queries {
		res, err := restarted.client.SupersetSearch(ctx, q, All, opts)
		b := before[q.Key()]
		requireSameResult(t, "restart/"+q.Key(), b.res, res, b.err, err)
	}
	for _, o := range objects {
		ids, _, err := restarted.client.PinSearch(ctx, o.Keywords)
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(ids, pinBefore[o.Keywords.Key()]) {
			t.Fatalf("pin %s: %v after restart, %v before", o.Keywords.Key(), ids, pinBefore[o.Keywords.Key()])
		}
	}
}

// TestDurableCrashResetRecover exercises the sim's in-process crash
// model: CrashReset wipes memory (queries see an empty index),
// RecoverFromStore replays the data dir and restores the exact state.
func TestDurableCrashResetRecover(t *testing.T) {
	const r = 6
	dirs := tempDirs(t, 1)
	reg := telemetry.New(8)
	d := newDurableDeployment(t, r, 1, 0, dirs, store.FsyncInterval, 0, reg)
	ctx := context.Background()

	objects := batchCorpus(41, 60)
	for _, o := range objects {
		if _, err := d.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	srv := d.servers[0]
	want := srv.Stats()
	if want.Entries == 0 {
		t.Fatal("corpus produced no entries")
	}

	srv.CrashReset()
	if got := srv.Stats(); got != (TableStats{}) {
		t.Fatalf("post-crash stats %+v, want empty", got)
	}
	ids, _, err := d.client.PinSearch(ctx, objects[0].Keywords)
	if err != nil || len(ids) != 0 {
		t.Fatalf("post-crash pin = (%v, %v), want empty", ids, err)
	}

	replayed, err := srv.RecoverFromStore()
	if err != nil {
		t.Fatal(err)
	}
	if replayed == 0 {
		t.Fatal("recovery replayed nothing")
	}
	if got := srv.Stats(); got != want {
		t.Fatalf("post-recovery stats %+v, want %+v", got, want)
	}
	if v := reg.Counter("store_recovery_replayed_total").Value(); v != uint64(replayed) {
		t.Fatalf("store_recovery_replayed_total = %d, want %d", v, replayed)
	}
	for _, o := range objects {
		ids, _, err := d.client.PinSearch(ctx, o.Keywords)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, id := range ids {
			if id == o.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("object %s missing after recovery", o.ID)
		}
	}
}

// TestDurableConcurrentReplayHammer is the regression for the
// WAL-order/apply-order inversion: concurrent mutations of the same
// entry (and concurrent range extractions) must land in the log in
// exactly the order their applies land, or recovery replays a
// different history than the one that was acknowledged — e.g. an
// insert that beat a delete in memory but lost the race to the log
// is silently dropped on replay. It hammers one contended entry set,
// then compares crash-recovered state against pre-crash memory.
// `make chaos` runs it under -race.
func TestDurableConcurrentReplayHammer(t *testing.T) {
	const r = 6
	dirs := tempDirs(t, 1)
	d := newDurableDeployment(t, r, 1, 0, dirs, store.FsyncOff, 0, nil)
	srv := d.servers[0]

	const (
		inst    = "main"
		v       = hypercube.Vertex(3)
		setKey  = "k"
		writers = 4
		ops     = 400
	)
	key := VertexKey(inst, v)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				// Three object IDs shared by every goroutine, so
				// insert/delete pairs of the same entry race constantly.
				obj := "o" + strconv.Itoa(i%3)
				if (g+i)%2 == 0 {
					if err := srv.insertEntry(inst, v, setKey, obj); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := srv.deleteEntry(inst, v, setKey, obj); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Concurrent range extraction of exactly the contended vertex:
	// (key, key-1] keeps every id but key itself. An insert logged
	// before the handoff but applied after it would survive in memory
	// yet be extracted on replay — the unfaithful-handoff scenario.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := srv.extractRange(key, key-1); err != nil {
				t.Error(err)
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Sharper probe: one insert and one delete of each of many fresh
	// objects race pairwise, all pairs at once on the same shard, so a
	// deep shard-lock queue forms and mutex barging shuffles acquisition
	// order. Memory keeps whichever op applied last; replay keeps
	// whichever appended last — a single inversion between the two
	// orders flips that object's final presence, which the recovery
	// comparison below detects.
	const pairs = 512
	start := make(chan struct{})
	var pair sync.WaitGroup
	for p := 0; p < pairs; p++ {
		obj := "race-" + strconv.Itoa(p)
		pair.Add(2)
		go func() {
			defer pair.Done()
			<-start
			if err := srv.insertEntry(inst, v, setKey, obj); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer pair.Done()
			<-start
			if _, err := srv.deleteEntry(inst, v, setKey, obj); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	pair.Wait()
	if t.Failed() {
		t.FailNow()
	}

	want := srv.pinQuery(inst, v, setKey).ObjectIDs
	wantStats := srv.Stats()
	srv.CrashReset()
	if _, err := srv.RecoverFromStore(); err != nil {
		t.Fatal(err)
	}
	if got := srv.pinQuery(inst, v, setKey).ObjectIDs; !equalStrings(got, want) {
		t.Fatalf("recovered entry objects %v, pre-crash memory had %v", got, want)
	}
	if got := srv.Stats(); got != wantStats {
		t.Fatalf("recovered stats %+v, pre-crash memory had %+v", got, wantStats)
	}
}

// TestDurableAppendApplyCriticalSection pins the critical-section
// shape that makes WAL order equal apply order — deterministically,
// where the probabilistic hammer above depends on scheduler luck. An
// entry mutation must perform its append inside the entry's shard
// write lock, so while the test holds that lock no record can reach
// the log; a range mutation must perform its append under stateMu's
// write side, so while the test holds the read side it cannot log
// either. If either append escapes its critical section, a concurrent
// mutation of the same entry can invert log order vs apply order and
// recovery replays a different history than the one acknowledged.
func TestDurableAppendApplyCriticalSection(t *testing.T) {
	const (
		inst   = "main"
		v      = hypercube.Vertex(3)
		setKey = "k"
	)
	reg := telemetry.New(8)
	dirs := tempDirs(t, 1)
	d := newDurableDeployment(t, 6, 1, 0, dirs, store.FsyncOff, 0, reg)
	srv := d.servers[0]
	appends := reg.Counter("store_wal_appends_total")

	sh := srv.shardFor(inst, v)
	sh.mu.Lock()
	done := make(chan error, 1)
	go func() { done <- srv.insertEntry(inst, v, setKey, "o1") }()
	time.Sleep(20 * time.Millisecond)
	if got := appends.Value(); got != 0 {
		sh.mu.Unlock()
		t.Fatalf("insert appended %d records outside the shard critical section", got)
	}
	sh.mu.Unlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := appends.Value(); got != 1 {
		t.Fatalf("insert logged %d records after unlock, want 1", got)
	}

	srv.stateMu.RLock()
	go func() {
		_, err := srv.extractRange(0, 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if got := appends.Value(); got != 1 {
		srv.stateMu.RUnlock()
		t.Fatalf("handoff appended outside the stateMu critical section (%d records)", got)
	}
	srv.stateMu.RUnlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := appends.Value(); got != 2 {
		t.Fatalf("handoff logged %d records after unlock, want 2", got)
	}
}

// TestDurableDrainAndHandoffReplay covers the two range mutations'
// WAL records: OpClear (graceful drain) and OpHandoff (join-time range
// extraction) must replay to the same surviving state.
func TestDurableDrainAndHandoffReplay(t *testing.T) {
	const r = 6
	dirs := tempDirs(t, 1)
	d := newDurableDeployment(t, r, 1, 0, dirs, store.FsyncOff, 0, nil)
	ctx := context.Background()

	for _, o := range batchCorpus(43, 40) {
		if _, err := d.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	srv := d.servers[0]

	// Hand off part of the range: entries NOT in (newID, ownerID] leave.
	// The bounds split the hash space, so some (but typically not all)
	// entries depart; what matters is replay determinism, not the split.
	moved, err := srv.extractRange(0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	afterHandoff := srv.Stats()
	if len(moved) == 0 || afterHandoff.Entries == 0 {
		t.Skipf("degenerate handoff split (moved %d, left %d); corpus seed needs adjusting", len(moved), afterHandoff.Entries)
	}

	// Restart and compare the surviving state.
	d.closeServers(t)
	d2 := newDurableDeployment(t, r, 1, 0, dirs, store.FsyncOff, 0, nil)
	if got := d2.servers[0].Stats(); got != afterHandoff {
		t.Fatalf("post-restart stats %+v, want %+v", got, afterHandoff)
	}

	// Drain everything and restart again: recovery must yield an empty
	// index, then fresh inserts must still be recoverable.
	if _, err := d2.servers[0].Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.client.Insert(ctx, Object{ID: "post-drain", Keywords: keyword.NewSet("late", "bird")}); err != nil {
		t.Fatal(err)
	}
	want := d2.servers[0].Stats()
	d2.closeServers(t)
	d3 := newDurableDeployment(t, r, 1, 0, dirs, store.FsyncOff, 0, nil)
	if got := d3.servers[0].Stats(); got != want {
		t.Fatalf("post-drain restart stats %+v, want %+v", got, want)
	}
	ids, _, err := d3.client.PinSearch(ctx, keyword.NewSet("late", "bird"))
	if err != nil || len(ids) != 1 || ids[0] != "post-drain" {
		t.Fatalf("post-drain pin = (%v, %v), want [post-drain]", ids, err)
	}
}

// TestDurableCompactionEquivalence drives enough mutations through a
// small SnapshotEvery to force several compactions, then checks the
// snapshot actually took over from the WAL and a restart still
// reproduces the exact state.
func TestDurableCompactionEquivalence(t *testing.T) {
	const r = 6
	dirs := tempDirs(t, 1)
	reg := telemetry.New(8)
	d := newDurableDeployment(t, r, 1, 0, dirs, store.FsyncOff, 32, reg)
	ctx := context.Background()

	objects := batchCorpus(47, 150)
	for _, o := range objects {
		if _, err := d.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(objects); i += 5 {
		if _, _, err := d.client.Delete(ctx, objects[i]); err != nil {
			t.Fatal(err)
		}
	}
	if v := reg.Counter("store_snapshots_total").Value(); v == 0 {
		t.Fatal("no compaction ran despite SnapshotEvery=32")
	}
	if _, err := os.Stat(filepath.Join(dirs[0], "snapshot.snap")); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	want := d.servers[0].Stats()

	d.closeServers(t)
	d2 := newDurableDeployment(t, r, 1, 0, dirs, store.FsyncOff, 32, nil)
	if got := d2.servers[0].Stats(); got != want {
		t.Fatalf("post-compaction restart stats %+v, want %+v", got, want)
	}
}
