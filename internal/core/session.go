package core

import (
	"sync"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// session is the root-side state of a cumulative superset search
// (Section 3.3: "the root node keeps the queue U for subsequent
// queries"). A session freezes the traversal frontier — the pending
// work units — so consecutive searches with the same keyword set
// return disjoint result pages.
type session struct {
	instance string
	cube     hypercube.Cube
	queryKey string
	query    keyword.Set
	order    TraversalOrder
	// work is the pending frontier: for TopDown/ParallelLevels the
	// paper's queue U (plus a possible partially-consumed node at the
	// head); for BottomUp the remaining vertices in descending-depth
	// order.
	work []workUnit
}

// workUnit is one pending node visit: scan 'vertex', skipping the
// first 'skip' matches; generate SBT children only when genDim ≥ 0
// (a node's children are generated exactly once, on first visit).
type workUnit struct {
	vertex hypercube.Vertex
	genDim int
	skip   int
}

// sessionStore retains at most max sessions, evicting the oldest.
type sessionStore struct {
	mu     sync.Mutex
	max    int
	nextID uint64
	order  []uint64
	items  map[uint64]*session
}

func newSessionStore(max int) *sessionStore {
	return &sessionStore{max: max, items: make(map[uint64]*session)}
}

// save stores sess and returns its new ID.
func (st *sessionStore) save(sess *session) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nextID++
	id := st.nextID
	st.items[id] = sess
	st.order = append(st.order, id)
	for len(st.items) > st.max && len(st.order) > 0 {
		oldest := st.order[0]
		st.order = st.order[1:]
		delete(st.items, oldest)
	}
	return id
}

// take removes and returns the session with the given ID.
func (st *sessionStore) take(id uint64) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	sess, ok := st.items[id]
	if !ok {
		return nil
	}
	delete(st.items, id)
	for i, sid := range st.order {
		if sid == id {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
	return sess
}

// len returns the number of live sessions (test helper).
func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.items)
}
