package core

import (
	"container/list"
	"sync"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
)

// session is the root-side state of a cumulative superset search
// (Section 3.3: "the root node keeps the queue U for subsequent
// queries"). A session freezes the traversal frontier — the pending
// work units — so consecutive searches with the same keyword set
// return disjoint result pages.
type session struct {
	instance string
	cube     hypercube.Cube
	pred     queryPred
	order    TraversalOrder
	// work is the pending frontier: for TopDown/ParallelLevels the
	// paper's queue U (plus a possible partially-consumed node at the
	// head); for BottomUp the remaining vertices in descending-depth
	// order.
	work []workUnit
	// soft, when non-nil, is the soft-replica copy of the root
	// vertex's table this (non-owner) server is serving the search
	// from; root-vertex scans read it instead of the local tables.
	soft *table
	// exclude is the prefix-multicast branch-partition mask: child
	// edges landing on a vertex that intersects it belong to an
	// earlier branch and are pruned. Zero for superset searches.
	exclude hypercube.Vertex
	// rootLocal reports that this server hosts the traversal root's
	// table (always true for superset; only the coordinator's own
	// first branch for a prefix multicast). When false, the root
	// vertex is visited remotely like any other frontier node.
	rootLocal bool
	// selfVertex is the vertex whose owner is this server — the
	// traversal root for superset, the coordinator's root for every
	// prefix branch. Wave dispatch resolves it (not the branch root)
	// to classify work units as local.
	selfVertex hypercube.Vertex
}

// workUnit is one pending node visit: scan 'vertex', skipping the
// first 'skip' matches; generate SBT children only when genDim ≥ 0
// (a node's children are generated exactly once, on first visit).
type workUnit struct {
	vertex hypercube.Vertex
	genDim int
	skip   int
}

// sessionStore retains at most max sessions, evicting the oldest.
// Insertion order lives in an intrusive list with an id→element index,
// so save, take and eviction are all O(1) — cumulative-search paging
// must not degrade to a linear scan under thousands of live sessions.
type sessionStore struct {
	mu     sync.Mutex
	max    int
	nextID uint64
	order  *list.List               // of sessionElem, oldest at Front
	index  map[uint64]*list.Element // session ID → its order element
}

// sessionElem is the list payload: the ID travels with the session so
// eviction at Front can update the index without a reverse lookup.
type sessionElem struct {
	id   uint64
	sess *session
}

func newSessionStore(max int) *sessionStore {
	return &sessionStore{
		max:   max,
		order: list.New(),
		index: make(map[uint64]*list.Element),
	}
}

// save stores sess and returns its new ID.
func (st *sessionStore) save(sess *session) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nextID++
	id := st.nextID
	st.index[id] = st.order.PushBack(sessionElem{id: id, sess: sess})
	for len(st.index) > st.max {
		oldest := st.order.Front()
		st.order.Remove(oldest)
		delete(st.index, oldest.Value.(sessionElem).id)
	}
	return id
}

// take removes and returns the session with the given ID.
func (st *sessionStore) take(id uint64) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.index[id]
	if !ok {
		return nil
	}
	delete(st.index, id)
	st.order.Remove(el)
	return el.Value.(sessionElem).sess
}

// reset drops every live session (the sim's crash model). nextID keeps
// counting: stale session IDs from before the crash must miss, not
// alias a post-recovery session.
func (st *sessionStore) reset() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.order.Init()
	st.index = make(map[uint64]*list.Element)
}

// len returns the number of live sessions (test helper).
func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.index)
}
