package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// deployment wires servers for every physical node of a test cluster
// over an in-memory network, with vertices spread round-robin.
type deployment struct {
	net     *inmem.Network
	hasher  keyword.Hasher
	servers []*Server
	addrs   []transport.Addr
	client  *Client
}

func newDeployment(t *testing.T, r, nServers, cacheCap int) *deployment {
	t.Helper()
	return newDeploymentMode(t, r, nServers, cacheCap, BatchAuto)
}

// newDeploymentMode is newDeployment with an explicit wave-batching
// mode, for tests comparing the batched and per-message dispatch paths.
func newDeploymentMode(t *testing.T, r, nServers, cacheCap int, mode BatchMode) *deployment {
	t.Helper()
	return newDeploymentTuned(t, r, nServers, cacheCap, mode, 0, 0)
}

// newDeploymentTuned additionally pins every server's lock-stripe count
// and scan parallelism, for tests comparing the sharded/parallel and
// single-lock/sequential configurations (0 = library defaults).
func newDeploymentTuned(t *testing.T, r, nServers, cacheCap int, mode BatchMode, shards, scanPar int) *deployment {
	t.Helper()
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	hasher := keyword.MustNewHasher(r, 42)
	addrs := make([]transport.Addr, nServers)
	for i := range addrs {
		addrs[i] = transport.Addr("ix-" + strconv.Itoa(i))
	}
	resolver := FuncResolver(func(v hypercube.Vertex) transport.Addr {
		return addrs[int(uint64(v)%uint64(nServers))]
	})
	servers := make([]*Server, nServers)
	for i := range servers {
		srv, err := NewServer(ServerConfig{
			Hasher:          hasher,
			Resolver:        resolver,
			Sender:          net,
			CacheCapacity:   cacheCap,
			BatchWaves:      mode,
			Shards:          shards,
			ScanParallelism: scanPar,
		})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		servers[i] = srv
		if _, err := net.Bind(addrs[i], srv.Handler); err != nil {
			t.Fatalf("Bind: %v", err)
		}
	}
	client, err := NewClient(hasher, resolver, net)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return &deployment{net: net, hasher: hasher, servers: servers, addrs: addrs, client: client}
}

// serverFor returns the server hosting vertex v.
func (d *deployment) serverFor(v hypercube.Vertex) *Server {
	return d.servers[int(uint64(v)%uint64(len(d.servers)))]
}

func obj(id string, words ...string) Object {
	return Object{ID: id, Keywords: keyword.NewSet(words...)}
}

// bruteForce returns the IDs of objects describable by query.
func bruteForce(objects []Object, query keyword.Set) []string {
	var out []string
	for _, o := range objects {
		if query.SubsetOf(o.Keywords) {
			out = append(out, o.ID)
		}
	}
	sort.Strings(out)
	return out
}

func matchIDs(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.ObjectID
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertPinDeleteLifecycle(t *testing.T) {
	d := newDeployment(t, 10, 4, 0)
	ctx := context.Background()

	o := obj("hinet", "isp", "telecommunication", "network", "download")
	st, err := d.client.Insert(ctx, o)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if st.NodesContacted != 1 || st.Messages != 2 {
		t.Errorf("insert stats = %+v, want 1 node / 2 messages", st)
	}

	ids, st, err := d.client.PinSearch(ctx, o.Keywords)
	if err != nil {
		t.Fatalf("PinSearch: %v", err)
	}
	if !equalStrings(ids, []string{"hinet"}) {
		t.Errorf("PinSearch = %v", ids)
	}
	if st.NodesContacted != 1 || st.Messages != 2 {
		t.Errorf("pin stats = %+v, want 1 node / 2 messages", st)
	}

	// A different keyword set (even a subset) is not a pin match.
	ids, _, err = d.client.PinSearch(ctx, keyword.NewSet("isp", "network"))
	if err != nil {
		t.Fatalf("PinSearch subset: %v", err)
	}
	if len(ids) != 0 {
		t.Errorf("pin search of subset returned %v", ids)
	}

	found, _, err := d.client.Delete(ctx, o)
	if err != nil || !found {
		t.Fatalf("Delete = %v, %v", found, err)
	}
	found, _, err = d.client.Delete(ctx, o)
	if err != nil || found {
		t.Fatalf("second Delete = %v, %v; want not found", found, err)
	}
	ids, _, _ = d.client.PinSearch(ctx, o.Keywords)
	if len(ids) != 0 {
		t.Errorf("pin search after delete = %v", ids)
	}
}

func TestInsertValidation(t *testing.T) {
	d := newDeployment(t, 8, 2, 0)
	ctx := context.Background()
	if _, err := d.client.Insert(ctx, Object{}); !errors.Is(err, ErrBadObject) {
		t.Errorf("Insert empty: %v", err)
	}
	if _, err := d.client.Insert(ctx, Object{ID: "x"}); !errors.Is(err, ErrBadObject) {
		t.Errorf("Insert no keywords: %v", err)
	}
	if _, _, err := d.client.PinSearch(ctx, keyword.Set{}); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("PinSearch empty: %v", err)
	}
	if _, err := d.client.SupersetSearch(ctx, keyword.Set{}, 1, SearchOptions{}); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("SupersetSearch empty: %v", err)
	}
	if _, err := d.client.SupersetSearch(ctx, keyword.NewSet("a"), 0, SearchOptions{}); err == nil {
		t.Error("SupersetSearch threshold 0 succeeded")
	}
}

// corpus builds a deterministic random corpus and inserts it.
func corpus(t *testing.T, d *deployment, n int, seed int64) []Object {
	t.Helper()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"isp", "news", "mp3", "video", "game", "shop", "travel", "bank", "edu", "tv"}
	objects := make([]Object, 0, n)
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(5)
		words := make([]string, 0, k)
		for j := 0; j < k; j++ {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		o := obj("obj-"+strconv.Itoa(i), words...)
		objects = append(objects, o)
		if _, err := d.client.Insert(ctx, o); err != nil {
			t.Fatalf("Insert %s: %v", o.ID, err)
		}
	}
	return objects
}

func TestSupersetSearchMatchesBruteForce(t *testing.T) {
	d := newDeployment(t, 10, 8, 0)
	ctx := context.Background()
	objects := corpus(t, d, 300, 7)

	queries := []keyword.Set{
		keyword.NewSet("isp"),
		keyword.NewSet("news"),
		keyword.NewSet("isp", "news"),
		keyword.NewSet("mp3", "video", "game"),
		keyword.NewSet("nonexistent"),
	}
	for _, q := range queries {
		res, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{})
		if err != nil {
			t.Fatalf("SupersetSearch %v: %v", q, err)
		}
		want := bruteForce(objects, q)
		if got := matchIDs(res.Matches); !equalStrings(got, want) {
			t.Errorf("search %v: got %d matches, want %d\n got  %v\n want %v",
				q, len(got), len(want), got, want)
		}
		if !res.Exhausted {
			t.Errorf("search %v with All not exhausted", q)
		}
	}
}

func TestSupersetSearchEveryOrderAgrees(t *testing.T) {
	d := newDeployment(t, 9, 4, 0)
	ctx := context.Background()
	objects := corpus(t, d, 200, 11)
	q := keyword.NewSet("isp")
	want := bruteForce(objects, q)

	for _, order := range []TraversalOrder{TopDown, BottomUp, ParallelLevels} {
		res, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{Order: order})
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if got := matchIDs(res.Matches); !equalStrings(got, want) {
			t.Errorf("order %v: got %d matches, want %d", order, len(got), len(want))
		}
	}
}

func TestTopDownDepthsNonDecreasing(t *testing.T) {
	d := newDeployment(t, 9, 4, 0)
	ctx := context.Background()
	corpus(t, d, 200, 13)
	res, err := d.client.SupersetSearch(ctx, keyword.NewSet("news"), All, SearchOptions{Order: TopDown})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	last := -1
	for _, m := range res.Matches {
		if m.Depth < last {
			t.Fatalf("top-down depths regressed: %d after %d", m.Depth, last)
		}
		last = m.Depth
	}
	if len(res.Matches) == 0 {
		t.Fatal("no matches to check")
	}
}

func TestBottomUpDepthsNonIncreasing(t *testing.T) {
	d := newDeployment(t, 9, 4, 0)
	ctx := context.Background()
	corpus(t, d, 200, 13)
	res, err := d.client.SupersetSearch(ctx, keyword.NewSet("news"), All, SearchOptions{Order: BottomUp})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	last := 1 << 30
	for _, m := range res.Matches {
		if m.Depth > last {
			t.Fatalf("bottom-up depths increased: %d after %d", m.Depth, last)
		}
		last = m.Depth
	}
}

func TestThresholdRespected(t *testing.T) {
	d := newDeployment(t, 10, 4, 0)
	ctx := context.Background()
	objects := corpus(t, d, 300, 17)
	q := keyword.NewSet("isp")
	all := bruteForce(objects, q)
	if len(all) < 10 {
		t.Fatalf("corpus too sparse: %d matches", len(all))
	}
	for _, threshold := range []int{1, 3, len(all) - 1, len(all), len(all) + 50} {
		res, err := d.client.SupersetSearch(ctx, q, threshold, SearchOptions{})
		if err != nil {
			t.Fatalf("threshold %d: %v", threshold, err)
		}
		want := threshold
		if want > len(all) {
			want = len(all)
		}
		if len(res.Matches) != want {
			t.Errorf("threshold %d: got %d matches, want %d", threshold, len(res.Matches), want)
		}
		// Every returned match must be a true match.
		for _, m := range res.Matches {
			if !q.SubsetOf(m.Keywords()) {
				t.Errorf("false positive %s (%v)", m.ObjectID, m.Keywords())
			}
		}
	}
}

func TestSearchContactsWholeSubcubeWhenExhaustive(t *testing.T) {
	const r = 8
	d := newDeployment(t, r, 4, 0)
	ctx := context.Background()
	corpus(t, d, 100, 19)
	q := keyword.NewSet("isp", "news")
	rootOnes := d.hasher.Vertex(q).OnesCount()
	res, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	wantNodes := 1 << uint(r-rootOnes)
	if res.Stats.NodesContacted != wantNodes {
		t.Errorf("nodes contacted = %d, want 2^(r-|One|) = %d", res.Stats.NodesContacted, wantNodes)
	}
	// Message bound of Section 3.5: at most 2 per contacted node plus
	// the initiator round trip.
	if res.Stats.Messages > 2*wantNodes+2 {
		t.Errorf("messages = %d, exceeds bound %d", res.Stats.Messages, 2*wantNodes+2)
	}
}

func TestEarlyTerminationContactsFewerNodes(t *testing.T) {
	d := newDeployment(t, 10, 4, 0)
	ctx := context.Background()
	objects := corpus(t, d, 400, 23)
	q := keyword.NewSet("isp")
	all := bruteForce(objects, q)
	if len(all) < 20 {
		t.Fatalf("need a popular keyword, got %d matches", len(all))
	}
	exhaustive, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	limited, err := d.client.SupersetSearch(ctx, q, 3, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if limited.Stats.NodesContacted >= exhaustive.Stats.NodesContacted {
		t.Errorf("threshold search contacted %d nodes, exhaustive %d — expected early termination",
			limited.Stats.NodesContacted, exhaustive.Stats.NodesContacted)
	}
}

func TestCumulativeSearchPagesAreDisjointAndComplete(t *testing.T) {
	for _, order := range []TraversalOrder{TopDown, BottomUp, ParallelLevels} {
		t.Run(order.String(), func(t *testing.T) {
			d := newDeployment(t, 9, 4, 0)
			ctx := context.Background()
			objects := corpus(t, d, 250, 29)
			q := keyword.NewSet("news")
			want := bruteForce(objects, q)
			if len(want) < 8 {
				t.Fatalf("corpus too sparse: %d", len(want))
			}

			cur, err := d.client.CumulativeSearch(q, SearchOptions{Order: order})
			if err != nil {
				t.Fatal(err)
			}
			seen := map[string]bool{}
			var got []string
			for !cur.Exhausted() {
				page, _, err := cur.Next(ctx, 3)
				if err != nil {
					t.Fatalf("Next: %v", err)
				}
				for _, m := range page {
					if seen[m.ObjectID+"|"+m.SetKey] {
						t.Fatalf("duplicate result %s across pages", m.ObjectID)
					}
					seen[m.ObjectID+"|"+m.SetKey] = true
					got = append(got, m.ObjectID)
				}
			}
			sort.Strings(got)
			if !equalStrings(got, want) {
				t.Errorf("cumulative union: got %d, want %d matches", len(got), len(want))
			}
			// After exhaustion, Next fails fast.
			if _, _, err := cur.Next(ctx, 3); !errors.Is(err, ErrExhausted) {
				t.Errorf("Next after exhaustion: %v", err)
			}
		})
	}
}

func TestCumulativePageSizeOneAcrossDenseNode(t *testing.T) {
	// Many objects with the same keyword set live on one node; paging
	// with size 1 must step through them via the partial-node skip.
	d := newDeployment(t, 8, 2, 0)
	ctx := context.Background()
	q := keyword.NewSet("common")
	for i := 0; i < 7; i++ {
		if _, err := d.client.Insert(ctx, obj("dense-"+strconv.Itoa(i), "common", "extra")); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := d.client.CumulativeSearch(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for !cur.Exhausted() {
		page, _, err := cur.Next(ctx, 1)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if len(page) > 1 {
			t.Fatalf("page size exceeded: %d", len(page))
		}
		for _, m := range page {
			got = append(got, m.ObjectID)
		}
	}
	if len(got) != 7 {
		t.Errorf("collected %d of 7 dense objects: %v", len(got), got)
	}
}

func TestStaleSessionRejected(t *testing.T) {
	d := newDeployment(t, 8, 2, 0)
	ctx := context.Background()
	corpus(t, d, 50, 31)
	q := keyword.NewSet("isp")
	// Forge a cursor with a bogus session ID.
	cur := &Cursor{client: d.client, query: q, opts: SearchOptions{Order: TopDown}, sessionID: 999999}
	if _, _, err := cur.Next(ctx, 1); !errors.Is(err, ErrNoSuchSession) {
		t.Errorf("bogus session Next: %v", err)
	}
}

func TestSearchSkipsFailedNodes(t *testing.T) {
	d := newDeployment(t, 8, 8, 0)
	ctx := context.Background()
	objects := corpus(t, d, 200, 37)
	q := keyword.NewSet("isp")
	want := bruteForce(objects, q)
	if len(want) == 0 {
		t.Fatal("no matches")
	}

	// Fail one server that does NOT host the query root.
	rootV := d.hasher.Vertex(q)
	rootSrv := d.serverFor(rootV)
	var downAddr transport.Addr
	for i, s := range d.servers {
		if s != rootSrv {
			downAddr = d.addrs[i]
			break
		}
	}
	d.net.SetDown(downAddr, true)

	res, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatalf("search with failures: %v", err)
	}
	if res.Stats.NodesContacted == 0 {
		t.Error("no nodes contacted")
	}
	got := matchIDs(res.Matches)
	// All surviving matches must be correct, and matches not hosted on
	// the failed server must all be present.
	for _, m := range res.Matches {
		if !q.SubsetOf(m.Keywords()) {
			t.Errorf("false positive %s", m.ObjectID)
		}
	}
	var wantAlive []string
	for _, o := range objects {
		if !q.SubsetOf(o.Keywords) {
			continue
		}
		v := d.hasher.Vertex(o.Keywords)
		if d.serverFor(v) == rootSrv || d.addrs[int(uint64(v)%uint64(len(d.servers)))] != downAddr {
			wantAlive = append(wantAlive, o.ID)
		}
	}
	sort.Strings(wantAlive)
	if !equalStrings(got, wantAlive) {
		t.Errorf("alive matches: got %d, want %d", len(got), len(wantAlive))
	}
}

func TestPinSearchAfterSupersetConsistency(t *testing.T) {
	d := newDeployment(t, 10, 4, 0)
	ctx := context.Background()
	objects := corpus(t, d, 150, 41)
	// Every superset match with Depth 0 and exact set must be pin-findable.
	q := keyword.NewSet("isp", "news")
	res, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		ks := m.Keywords()
		ids, _, err := d.client.PinSearch(ctx, ks)
		if err != nil {
			t.Fatalf("PinSearch %v: %v", ks, err)
		}
		found := false
		for _, id := range ids {
			if id == m.ObjectID {
				found = true
			}
		}
		if !found {
			t.Errorf("object %s (set %v) not pin-findable", m.ObjectID, ks)
		}
	}
	_ = objects
}

func TestLemma33RefinementSearchesSubcube(t *testing.T) {
	// K1 ⊆ K2 ⇒ the K2 traversal touches a subset of the K1 traversal's
	// vertices.
	d := newDeployment(t, 10, 4, 0)
	ctx := context.Background()
	corpus(t, d, 200, 43)
	k1 := keyword.NewSet("isp")
	k2 := keyword.NewSet("isp", "news")
	r1, err := d.client.SupersetSearch(ctx, k1, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.client.SupersetSearch(ctx, k2, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.NodesContacted > r1.Stats.NodesContacted {
		t.Errorf("refined query contacted more nodes (%d) than broad query (%d)",
			r2.Stats.NodesContacted, r1.Stats.NodesContacted)
	}
	// And every K2 match is a K1 match.
	ids1 := map[string]bool{}
	for _, m := range r1.Matches {
		ids1[m.ObjectID] = true
	}
	for _, m := range r2.Matches {
		if !ids1[m.ObjectID] {
			t.Errorf("K2 match %s missing from K1 results", m.ObjectID)
		}
	}
}

func TestHandlerRejectsUnknownMessage(t *testing.T) {
	d := newDeployment(t, 8, 1, 0)
	_, err := d.servers[0].Handler(context.Background(), "", 3.14)
	if !errors.Is(err, ErrUnhandledMessage) {
		t.Errorf("Handler(float) = %v, want ErrUnhandledMessage", err)
	}
}

func TestServerStats(t *testing.T) {
	d := newDeployment(t, 8, 1, 0)
	ctx := context.Background()
	d.client.Insert(ctx, obj("a", "x", "y"))
	d.client.Insert(ctx, obj("b", "x", "y"))
	d.client.Insert(ctx, obj("c", "x", "z"))
	st := d.servers[0].Stats()
	if st.Objects != 3 {
		t.Errorf("Objects = %d, want 3", st.Objects)
	}
	if st.Entries != 2 {
		t.Errorf("Entries = %d, want 2", st.Entries)
	}
	if st.Vertices < 1 || st.Vertices > 2 {
		t.Errorf("Vertices = %d", st.Vertices)
	}
}

func TestPropertyRandomCorporaMatchBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			d := newDeployment(t, 8+trial, 3+trial, 0)
			ctx := context.Background()
			objects := corpus(t, d, 150, int64(100+trial))
			rng := rand.New(rand.NewSource(int64(200 + trial)))
			vocab := []string{"isp", "news", "mp3", "video", "game"}
			for qi := 0; qi < 10; qi++ {
				n := 1 + rng.Intn(3)
				words := make([]string, 0, n)
				for j := 0; j < n; j++ {
					words = append(words, vocab[rng.Intn(len(vocab))])
				}
				q := keyword.NewSet(words...)
				res, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{})
				if err != nil {
					t.Fatalf("search %v: %v", q, err)
				}
				want := bruteForce(objects, q)
				if got := matchIDs(res.Matches); !equalStrings(got, want) {
					t.Errorf("query %v: got %d, want %d", q, len(got), len(want))
				}
			}
		})
	}
}

func TestParallelRoundsMatchSection35TimeBound(t *testing.T) {
	// §3.5: the level-parallel traversal takes r - |One(F_h(K))| rounds
	// where the sequential one takes 2^(r-|One|). Exhaustive searches
	// verify both counters.
	const r = 9
	d := newDeployment(t, r, 4, 0)
	ctx := context.Background()
	corpus(t, d, 250, 71)
	q := keyword.NewSet("isp")
	free := r - d.hasher.Vertex(q).OnesCount()

	seq, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{Order: TopDown})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.Rounds != seq.Stats.NodesContacted {
		t.Errorf("sequential rounds = %d, want nodes contacted %d",
			seq.Stats.Rounds, seq.Stats.NodesContacted)
	}
	if seq.Stats.Rounds != 1<<uint(free) {
		t.Errorf("sequential rounds = %d, want 2^free = %d", seq.Stats.Rounds, 1<<uint(free))
	}

	par, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{Order: ParallelLevels})
	if err != nil {
		t.Fatal(err)
	}
	// One wave for the root plus one per level; small constant slack
	// for re-queued partially-consumed nodes.
	if par.Stats.Rounds > free+3 {
		t.Errorf("parallel rounds = %d, want ≈ free dims %d", par.Stats.Rounds, free)
	}
	if par.Stats.Rounds >= seq.Stats.Rounds {
		t.Errorf("parallel rounds %d not below sequential %d", par.Stats.Rounds, seq.Stats.Rounds)
	}
}
