package core

import (
	"container/list"
	"sync"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// hotCache is the popularity-tracked result cache: a segmented LRU
// (probation + protected) with TinyLFU-style frequency admission and
// an optional capacity auto-tuner.
//
// The paper's workload footnote — the top-10 queries carry over 60 %
// of daily volume — means the FIFO policy's weakness is precisely the
// hot head: a burst of one-off tail queries streams through the cache
// and evicts the popular entries that earn nearly all hits. Here every
// consultation (hit or miss) feeds a compact count-min sketch, and an
// entry may evict a resident victim only when the sketch estimates it
// to be more popular than that victim. Entries that are re-referenced
// graduate from the probation segment to the protected segment, so
// scan-like tail traffic is confined to probation.
//
// Everything is deterministic: no clocks, no randomness — the same
// sequence of consultations and stores produces the same cache state,
// which the promotion-determinism test pins.
type hotCache struct {
	mu sync.Mutex
	// baseCap is the configured capacity; capacity is the live
	// (possibly auto-tuned) limit; maxCap bounds the tuner.
	baseCap  int
	capacity int
	maxCap   int
	// targetHit enables the auto-tuner when positive: every
	// tuneWindow consultations the windowed hit ratio is compared
	// against it and the capacity nudged toward the target.
	targetHit float64

	units     int
	items     map[string]*hotEntry
	probation *list.List // front = most recent
	protected *list.List
	protUnits int
	sketch    *cmSketch

	byInstance map[string]map[string]*hotEntry

	hits    uint64
	misses  uint64
	perInst map[string]*instanceCounters

	winHits, winLookups int
}

// hotProtectedFrac is the fraction of capacity reserved for the
// protected segment (the Caffeine/W-TinyLFU split).
const hotProtectedFrac = 0.8

// tuneWindow is the consultation count between auto-tune decisions.
const tuneWindow = 512

type hotEntry struct {
	key       string
	instance  string
	pred      queryPred
	matches   []Match
	exhausted bool
	protected bool
	elem      *list.Element
}

func newHotCache(capacity int, targetHit float64) *hotCache {
	maxCap := 4 * capacity
	return &hotCache{
		baseCap:    capacity,
		capacity:   capacity,
		maxCap:     maxCap,
		targetHit:  targetHit,
		items:      make(map[string]*hotEntry),
		probation:  list.New(),
		protected:  list.New(),
		sketch:     newCMSketch(capacity),
		byInstance: make(map[string]map[string]*hotEntry),
		perInst:    make(map[string]*instanceCounters),
	}
}

func (c *hotCache) enabled() bool { return c.baseCap > 0 }

func (c *hotCache) instCounters(instance string) *instanceCounters {
	ic, ok := c.perInst[instance]
	if !ok {
		ic = &instanceCounters{}
		c.perInst[instance] = ic
	}
	return ic
}

func (c *hotCache) get(instance string, pred queryPred, threshold int) ([]Match, bool, bool) {
	if !c.enabled() {
		return nil, false, false
	}
	key := pred.cacheKey(instance)
	c.mu.Lock()
	c.sketch.increment(key)
	c.winLookups++
	e, ok := c.items[key]
	if !ok || (!e.exhausted && len(e.matches) < threshold) {
		c.misses++
		c.instCounters(instance).misses++
		c.maybeTuneLocked()
		c.mu.Unlock()
		return nil, false, false
	}
	c.hits++
	c.instCounters(instance).hits++
	c.winHits++
	c.touchLocked(e)
	c.maybeTuneLocked()
	matches, exhausted := e.matches, e.exhausted
	c.mu.Unlock()
	// Stored slices are immutable (put clones); copy outside the lock.
	return truncateCached(matches, exhausted, threshold)
}

// touchLocked records a re-reference: probation entries graduate to
// protected, protected entries move to the segment front. Graduation
// may push protected over its share; its LRU tail then demotes back to
// probation (never straight out of the cache).
func (c *hotCache) touchLocked(e *hotEntry) {
	if e.protected {
		c.protected.MoveToFront(e.elem)
		return
	}
	c.probation.Remove(e.elem)
	e.protected = true
	e.elem = c.protected.PushFront(e)
	c.protUnits += len(e.matches)
	limit := int(hotProtectedFrac * float64(c.capacity))
	for c.protUnits > limit && c.protected.Len() > 1 {
		tail := c.protected.Back()
		v := tail.Value.(*hotEntry)
		c.protected.Remove(tail)
		v.protected = false
		v.elem = c.probation.PushFront(v)
		c.protUnits -= len(v.matches)
	}
}

func (c *hotCache) put(instance string, pred queryPred, matches []Match, exhausted bool) {
	if !c.enabled() || len(matches) > c.capacity {
		return
	}
	key := pred.cacheKey(instance)
	cloned := cloneMatches(matches)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		// Replace in place, keeping segment position.
		c.units -= len(e.matches)
		if e.protected {
			c.protUnits -= len(e.matches)
		}
		e.matches, e.exhausted, e.pred = cloned, exhausted, pred
		c.units += len(cloned)
		if e.protected {
			c.protUnits += len(cloned)
		}
		c.evictLocked(nil)
		return
	}
	need := c.units + len(matches) - c.capacity
	if need > 0 {
		// Admission contest: the candidate may only displace victims
		// the sketch estimates to be less popular than itself.
		if !c.admitLocked(key, need) {
			return
		}
	}
	e := &hotEntry{key: key, instance: instance, pred: pred, matches: cloned, exhausted: exhausted}
	e.elem = c.probation.PushFront(e)
	c.items[key] = e
	c.units += len(cloned)
	keys, ok := c.byInstance[instance]
	if !ok {
		keys = make(map[string]*hotEntry)
		c.byInstance[instance] = keys
	}
	keys[key] = e
}

// admitLocked decides a full-cache insertion: walk would-be victims
// (probation LRU first, then protected LRU) until `need` units are
// covered; if any victim is at least as popular as the candidate, the
// candidate is rejected and nothing is evicted. Otherwise the victims
// are evicted and the insert proceeds.
func (c *hotCache) admitLocked(candidateKey string, need int) bool {
	candFreq := c.sketch.estimate(candidateKey)
	var victims []*hotEntry
	covered := 0
	scan := func(l *list.List) bool {
		for el := l.Back(); el != nil && covered < need; el = el.Prev() {
			v := el.Value.(*hotEntry)
			if c.sketch.estimate(v.key) >= candFreq {
				return false
			}
			victims = append(victims, v)
			covered += len(v.matches)
		}
		return true
	}
	if !scan(c.probation) {
		return false
	}
	if covered < need && !scan(c.protected) {
		return false
	}
	if covered < need {
		return false
	}
	for _, v := range victims {
		c.removeLocked(v)
	}
	return true
}

// evictLocked drops LRU victims (probation first) until the capacity
// constraint holds — the unconditional form used by replacement growth
// and capacity shrinks, where there is no admission contest.
func (c *hotCache) evictLocked(protect *hotEntry) {
	for c.units > c.capacity {
		var victim *hotEntry
		if el := c.probation.Back(); el != nil {
			victim = el.Value.(*hotEntry)
		} else if el := c.protected.Back(); el != nil {
			victim = el.Value.(*hotEntry)
		}
		if victim == nil || victim == protect {
			return
		}
		c.removeLocked(victim)
	}
}

func (c *hotCache) removeLocked(e *hotEntry) {
	if e.protected {
		c.protected.Remove(e.elem)
		c.protUnits -= len(e.matches)
	} else {
		c.probation.Remove(e.elem)
	}
	c.units -= len(e.matches)
	delete(c.items, e.key)
	if keys, ok := c.byInstance[e.instance]; ok {
		delete(keys, e.key)
		if len(keys) == 0 {
			delete(c.byInstance, e.instance)
		}
	}
}

// maybeTuneLocked runs the capacity auto-tuner at window boundaries:
// below-target windows grow the cache 25 % (up to 4x the configured
// base), comfortably-above-target windows shrink it 12.5 % back toward
// the base, reclaiming memory the hit ratio doesn't need.
func (c *hotCache) maybeTuneLocked() {
	if c.targetHit <= 0 || c.winLookups < tuneWindow {
		return
	}
	ratio := float64(c.winHits) / float64(c.winLookups)
	c.winHits, c.winLookups = 0, 0
	switch {
	case ratio < c.targetHit && c.capacity < c.maxCap:
		c.capacity += c.capacity / 4
		if c.capacity > c.maxCap {
			c.capacity = c.maxCap
		}
	case ratio >= c.targetHit+0.05 && c.capacity > c.baseCap:
		c.capacity -= c.capacity / 8
		if c.capacity < c.baseCap {
			c.capacity = c.baseCap
		}
		c.evictLocked(nil)
	}
}

func (c *hotCache) refineSource(instance string, query keyword.Set) ([]Match, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var (
		best    []Match
		bestLen = -1
	)
	for _, e := range c.byInstance[instance] {
		if !e.exhausted || e.pred.class != ClassSuperset {
			continue
		}
		if e.pred.set.Len() > bestLen && e.pred.set.SubsetOf(query) && !e.pred.set.Equal(query) {
			best, bestLen = e.matches, e.pred.set.Len()
		}
	}
	return best, bestLen >= 0
}

func (c *hotCache) invalidateSubsetsOf(instance string, changed keyword.Set) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.byInstance[instance]
	if len(keys) == 0 {
		return
	}
	var drop []*hotEntry
	for _, e := range keys {
		if e.pred.invalidatedBy(changed) {
			drop = append(drop, e)
		}
	}
	for _, e := range drop {
		c.removeLocked(e)
	}
}

func (c *hotCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.units = 0
	c.protUnits = 0
	c.items = make(map[string]*hotEntry)
	c.probation = list.New()
	c.protected = list.New()
	c.byInstance = make(map[string]map[string]*hotEntry)
	c.sketch = newCMSketch(c.baseCap)
	c.capacity = c.baseCap
	c.winHits, c.winLookups = 0, 0
}

func (c *hotCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *hotCache) snapshot() CacheSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := CacheSnapshot{
		Policy:        CachePolicyHot,
		CapacityUnits: c.capacity,
		Units:         c.units,
		Entries:       len(c.items),
		Hits:          c.hits,
		Misses:        c.misses,
	}
	snap.PerInstance = perInstanceStats(c.perInst, func(instance string) (entries, units int) {
		for _, e := range c.byInstance[instance] {
			entries++
			units += len(e.matches)
		}
		return entries, units
	})
	return snap
}

func (c *hotCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *hotCache) unitCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.units
}

func (c *hotCache) capacityUnits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// cmSketch is a small count-min sketch with saturating 8-bit counters
// and periodic halving (the TinyLFU aging step): after sampleCap
// increments every counter is halved, so estimates reflect recent
// popularity rather than all time. Hashing is seeded FNV-1a double
// hashing — fully deterministic across runs.
type cmSketch struct {
	mask    uint64
	rows    [4][]uint8
	samples int
	// sampleCap bounds the aging window; 8x the row width keeps the
	// counters meaningful without letting history dominate.
	sampleCap int
}

func newCMSketch(capacity int) *cmSketch {
	w := ceilPow2(capacity)
	if w < 64 {
		w = 64
	}
	s := &cmSketch{mask: uint64(w - 1), sampleCap: 8 * w}
	for i := range s.rows {
		s.rows[i] = make([]uint8, w)
	}
	return s
}

func sketchHash(key string) (h1, h2 uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// Finalize a second independent hash from the first (splitmix-style
	// mixing); forcing it odd keeps the double-hash probe full-period
	// over the power-of-two width.
	z := h
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return h, z | 1
}

func (s *cmSketch) increment(key string) {
	h1, h2 := sketchHash(key)
	for i := range s.rows {
		idx := (h1 + uint64(i)*h2) & s.mask
		if s.rows[i][idx] < 255 {
			s.rows[i][idx]++
		}
	}
	s.samples++
	if s.samples >= s.sampleCap {
		s.halve()
	}
}

func (s *cmSketch) estimate(key string) uint8 {
	h1, h2 := sketchHash(key)
	est := uint8(255)
	for i := range s.rows {
		idx := (h1 + uint64(i)*h2) & s.mask
		if v := s.rows[i][idx]; v < est {
			est = v
		}
	}
	return est
}

func (s *cmSketch) halve() {
	for i := range s.rows {
		row := s.rows[i]
		for j := range row {
			row[j] >>= 1
		}
	}
	s.samples /= 2
}
