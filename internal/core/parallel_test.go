package core

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// TestShardedScanEquivalence runs the same seeded query mix against
// four identically loaded deployments spanning the tuning matrix
// {single lock, 8 shards} × {sequential, 8-way parallel scans} and
// requires byte-identical outcomes against the single-lock sequential
// baseline: matches (including order), exhaustion, logical and
// physical accounting, rounds, completeness, and traces. Sharding and
// scan parallelism are pure locality/throughput changes; any visible
// divergence is a bug.
func TestShardedScanEquivalence(t *testing.T) {
	const r, nServers = 8, 4
	configs := []struct {
		label   string
		shards  int
		scanPar int
	}{
		{"shards=1/seq", 1, 1}, // baseline: the pre-sharding behaviour
		{"shards=8/seq", 8, 1},
		{"shards=1/par", 1, 8},
		{"shards=8/par", 8, 8},
	}
	deployments := make([]*deployment, len(configs))
	for i, c := range configs {
		deployments[i] = newDeploymentTuned(t, r, nServers, 0, BatchOn, c.shards, c.scanPar)
	}

	objects := batchCorpus(23, 120)
	ctx := context.Background()
	for _, o := range objects {
		for _, d := range deployments {
			if _, err := d.client.Insert(ctx, o); err != nil {
				t.Fatal(err)
			}
		}
	}

	opts := SearchOptions{Order: ParallelLevels, NoCache: true, Trace: true}
	for _, q := range batchQueries(29) {
		for _, th := range []int{1, 3, All} {
			base, errBase := deployments[0].client.SupersetSearch(ctx, q, th, opts)
			for i := 1; i < len(deployments); i++ {
				got, errGot := deployments[i].client.SupersetSearch(ctx, q, th, opts)
				label := q.Key() + "/th=" + strconv.Itoa(th) + "/" + configs[i].label
				requireSameResult(t, label, base, got, errBase, errGot)
				// Same batch mode everywhere, so even the fields wave
				// batching is allowed to change must agree here.
				if errGot == nil {
					if base.Stats.PhysFrames != got.Stats.PhysFrames {
						t.Errorf("%s: PhysFrames %d vs %d", label, base.Stats.PhysFrames, got.Stats.PhysFrames)
					}
					if base.Stats.Rounds != got.Stats.Rounds {
						t.Errorf("%s: Rounds %d vs %d", label, base.Stats.Rounds, got.Stats.Rounds)
					}
				}
			}
			if errBase == nil && th == All {
				want := bruteForce(objects, q)
				got := matchIDs(base.Matches)
				sort.Strings(want)
				if !equalStrings(got, want) {
					t.Fatalf("%s/th=All: baseline result %v, brute force %v", q.Key(), got, want)
				}
			}
		}
	}
}

// TestShardTelemetryExposition checks the striped server's new
// instruments: per-shard entry gauges flatten to labelled series under
// ONE well-formed TYPE line per family, every inserted entry is
// counted by exactly one stripe, and a parallel batch scan moves the
// core_scan_parallel_units_total counter.
func TestShardTelemetryExposition(t *testing.T) {
	reg := telemetry.New(16)
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	hasher := keyword.MustNewHasher(6, 42)
	srv, err := NewServer(ServerConfig{
		Hasher:          hasher,
		Resolver:        FuncResolver(func(hypercube.Vertex) transport.Addr { return "ix-0" }),
		Sender:          net,
		Shards:          4,
		ScanParallelism: 4,
		Telemetry:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	const inserted = 40
	for i := 0; i < inserted; i++ {
		srv.insertEntry(DefaultInstance, hypercube.Vertex(i%64),
			keyword.NewSet("hub", "w"+strconv.Itoa(i)).Key(), "o-"+strconv.Itoa(i))
	}
	srv.subQueryBatch(context.Background(), msgSubQueryBatch{
		Instance: DefaultInstance,
		QueryKey: keyword.NewSet("hub").Key(),
		Limit:    -1,
		Units: []wireUnit{
			{Vertex: 1, GenDim: -1}, {Vertex: 2, GenDim: -1},
			{Vertex: 3, GenDim: -1}, {Vertex: 4, GenDim: -1},
		},
	})

	snap := reg.Snapshot()
	var shardTotal int64
	for i := 0; i < 4; i++ {
		shardTotal += snap.Gauges[`core_server_shard_entries{shard="`+strconv.Itoa(i)+`"}`]
	}
	if shardTotal != inserted {
		t.Errorf("per-shard entry gauges sum to %d, want %d", shardTotal, inserted)
	}
	if got := snap.Counters["core_scan_parallel_units_total"]; got != 4 {
		t.Errorf("core_scan_parallel_units_total = %d, want 4", got)
	}

	text := reg.PrometheusString()
	if n := strings.Count(text, "# TYPE core_server_shard_entries gauge\n"); n != 1 {
		t.Errorf("TYPE line for the shard-entries family appears %d times, want exactly 1:\n%s", n, text)
	}
	if strings.Contains(text, `# TYPE core_server_shard_entries{`) {
		t.Errorf("malformed TYPE line carries labels:\n%s", text)
	}
	if !strings.Contains(text, `core_server_shard_entries{shard="0"}`) {
		t.Errorf("per-shard series missing from exposition:\n%s", text)
	}
}

// TestServerConcurrencyHammer pounds one sharded server from many
// goroutines — inserts, deletes, batched scans, pin queries, stats —
// for the race detector. It asserts no invariant beyond "no race, no
// panic, scans stay well-formed": the equivalence tests pin semantics,
// this pins memory safety of the striped state under contention.
func TestServerConcurrencyHammer(t *testing.T) {
	d := newDeploymentTuned(t, 6, 1, 0, BatchOn, 4, 4)
	srv := d.servers[0]
	root := hypercube.Vertex(0)
	query := keyword.NewSet("hub")
	queryKey := query.Key()

	units := make([]wireUnit, 1<<6)
	for v := range units {
		units[v] = wireUnit{Vertex: uint64(v), GenDim: -1}
	}
	frame := msgSubQueryBatch{
		Instance: DefaultInstance,
		QueryKey: queryKey,
		Root:     uint64(root),
		Limit:    -1,
	}
	frame.Units = units

	stop := make(chan struct{})
	time.AfterFunc(500*time.Millisecond, func() { close(stop) })
	var wg sync.WaitGroup
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					fn(i)
				}
			}
		}()
	}

	for w := 0; w < 4; w++ {
		w := w
		worker(func(i int) { // writer: insert + delete churn
			v := hypercube.Vertex((i*7 + w) % 64)
			set := keyword.NewSet("hub", "w"+strconv.Itoa(i%16)).Key()
			id := "o-" + strconv.Itoa(w) + "-" + strconv.Itoa(i%32)
			srv.insertEntry(DefaultInstance, v, set, id)
			if i%3 == 0 {
				srv.deleteEntry(DefaultInstance, v, set, id)
			}
		})
	}
	for w := 0; w < 4; w++ {
		worker(func(int) { // batch scanner
			resp := srv.subQueryBatch(context.Background(), frame)
			if len(resp.Results) != len(frame.Units) {
				t.Errorf("batch returned %d results for %d units", len(resp.Results), len(frame.Units))
			}
		})
	}
	worker(func(i int) { // pin queries
		v := hypercube.Vertex(i % 64)
		srv.pinQuery(DefaultInstance, v, keyword.NewSet("hub", "w"+strconv.Itoa(i%16)).Key())
	})
	worker(func(int) { // stats walker (locks every shard in turn)
		srv.Stats()
	})
	wg.Wait()
}
