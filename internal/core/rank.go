package core

import (
	"sort"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// Ranking helpers exploiting Lemma 3.2: search results arrive tagged
// with the depth of the indexing node, i.e. a lower bound on the
// number of extra keywords beyond the query. Within a depth, matches
// can further be grouped by the exact extra keyword set, enabling the
// category sampling sketched in the paper's introduction (objects with
// extra keyword σ1, extra keyword σ2, extra keywords {σ1, σ2}, …).

// GroupByDepth buckets matches by indexing-node depth, ascending.
// Depth d groups hold objects with at least d keywords beyond the
// query.
func GroupByDepth(matches []Match) map[int][]Match {
	groups := make(map[int][]Match)
	for _, m := range matches {
		groups[m.Depth] = append(groups[m.Depth], m)
	}
	return groups
}

// Category identifies a refinement class: the exact set of keywords a
// group of matches has beyond the query.
type Category struct {
	// Extra is the canonical encoding of the extra keyword set
	// (keyword.Set.Key); empty for exact matches.
	Extra string
	// Matches holds the category's objects.
	Matches []Match
}

// ExtraKeywords decodes the category's extra keyword set.
func (c Category) ExtraKeywords() keyword.Set { return keyword.ParseKey(c.Extra) }

// Categorize groups matches by their exact extra keyword set relative
// to the query, ordered by (extra-set size, then lexicographically).
// Upper layers use this to present refinement choices to users.
func Categorize(query keyword.Set, matches []Match) []Category {
	byExtra := make(map[string][]Match)
	for _, m := range matches {
		extra := m.Keywords().Diff(query).Key()
		byExtra[extra] = append(byExtra[extra], m)
	}
	cats := make([]Category, 0, len(byExtra))
	for extra, ms := range byExtra {
		cats = append(cats, Category{Extra: extra, Matches: ms})
	}
	sort.Slice(cats, func(i, j int) bool {
		li := keyword.ParseKey(cats[i].Extra).Len()
		lj := keyword.ParseKey(cats[j].Extra).Len()
		if li != lj {
			return li < lj
		}
		return cats[i].Extra < cats[j].Extra
	})
	return cats
}

// Sample returns up to perCategory matches from each category: the
// paper's refinement aid, giving users one example object per extra
// keyword combination together with the keywords that would narrow
// the query to it.
func Sample(query keyword.Set, matches []Match, perCategory int) []Category {
	if perCategory <= 0 {
		perCategory = 1
	}
	cats := Categorize(query, matches)
	out := make([]Category, len(cats))
	for i, c := range cats {
		n := perCategory
		if n > len(c.Matches) {
			n = len(c.Matches)
		}
		out[i] = Category{Extra: c.Extra, Matches: c.Matches[:n]}
	}
	return out
}

// SortGeneralFirst orders matches by ascending depth (fewest extra
// keywords first), breaking ties by keyword-set size, then object ID.
// TopDown traversal already yields this order; the helper re-imposes
// it after merging pages or categories.
func SortGeneralFirst(matches []Match) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Depth != matches[j].Depth {
			return matches[i].Depth < matches[j].Depth
		}
		li, lj := matches[i].Keywords().Len(), matches[j].Keywords().Len()
		if li != lj {
			return li < lj
		}
		return matches[i].ObjectID < matches[j].ObjectID
	})
}

// SortSpecificFirst orders matches by descending depth (most extra
// keywords first).
func SortSpecificFirst(matches []Match) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Depth != matches[j].Depth {
			return matches[i].Depth > matches[j].Depth
		}
		li, lj := matches[i].Keywords().Len(), matches[j].Keywords().Len()
		if li != lj {
			return li > lj
		}
		return matches[i].ObjectID < matches[j].ObjectID
	})
}
