package core
