package core

import (
	"context"
	"strings"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// newDecomposedDeployment builds two family deployments ("type:" and
// free-form keywords) plus the Decomposed wrapper over them.
func newDecomposedDeployment(t *testing.T) (*Decomposed, *deployment, *deployment) {
	t.Helper()
	dType := newDeployment(t, 6, 2, 0)
	dText := newDeployment(t, 10, 4, 0)
	classify := func(w string) string {
		if strings.HasPrefix(w, "type:") {
			return "type"
		}
		return "text"
	}
	dec, err := NewDecomposed(classify, map[string]*Client{
		"type": dType.client,
		"text": dText.client,
	})
	if err != nil {
		t.Fatalf("NewDecomposed: %v", err)
	}
	return dec, dType, dText
}

func TestDecomposedValidation(t *testing.T) {
	if _, err := NewDecomposed(nil, nil); err == nil {
		t.Error("NewDecomposed(nil) succeeded")
	}
	if _, err := NewDecomposed(func(string) string { return "x" }, map[string]*Client{"x": nil}); err == nil {
		t.Error("nil part client accepted")
	}
}

func TestDecomposedInsertAndSearchSingleFamily(t *testing.T) {
	dec, _, _ := newDecomposedDeployment(t)
	ctx := context.Background()
	objects := []Object{
		obj("song1", "type:audio", "jazz", "piano"),
		obj("song2", "type:audio", "rock"),
		obj("doc1", "type:document", "jazz", "history"),
	}
	for _, o := range objects {
		if _, err := dec.Insert(ctx, o); err != nil {
			t.Fatalf("Insert %s: %v", o.ID, err)
		}
	}
	// Query entirely in the text family.
	ids, _, err := dec.SupersetSearch(ctx, keyword.NewSet("jazz"), All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(ids, []string{"doc1", "song1"}) {
		t.Errorf("jazz search = %v", ids)
	}
}

func TestDecomposedCrossFamilyIntersection(t *testing.T) {
	dec, _, _ := newDecomposedDeployment(t)
	ctx := context.Background()
	for _, o := range []Object{
		obj("song1", "type:audio", "jazz", "piano"),
		obj("song2", "type:audio", "rock"),
		obj("doc1", "type:document", "jazz", "history"),
	} {
		if _, err := dec.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	ids, st, err := dec.SupersetSearch(ctx, keyword.NewSet("type:audio", "jazz"), All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(ids, []string{"song1"}) {
		t.Errorf("cross-family search = %v, want [song1]", ids)
	}
	if st.NodesContacted == 0 || st.Messages == 0 {
		t.Errorf("stats not aggregated: %+v", st)
	}
}

func TestDecomposedDelete(t *testing.T) {
	dec, _, _ := newDecomposedDeployment(t)
	ctx := context.Background()
	o := obj("song1", "type:audio", "jazz")
	if _, err := dec.Insert(ctx, o); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Delete(ctx, o); err != nil {
		t.Fatal(err)
	}
	ids, _, err := dec.SupersetSearch(ctx, keyword.NewSet("jazz"), All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("after delete, search = %v", ids)
	}
}

func TestDecomposedSmallerSearchSpace(t *testing.T) {
	// The decomposition argument of Section 3.4: searching the small
	// "type" hypercube for a type-only query touches far fewer nodes
	// than the equivalent query on a monolithic large hypercube.
	dec, dType, _ := newDecomposedDeployment(t)
	mono := newDeployment(t, 16, 4, 0)
	ctx := context.Background()
	for i, words := range [][]string{
		{"type:audio", "jazz"},
		{"type:audio", "rock"},
		{"type:video", "jazz"},
	} {
		o := obj("o"+string(rune('a'+i)), words...)
		if _, err := dec.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
		if _, err := mono.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	q := keyword.NewSet("type:audio")
	_, decStats, err := dec.SupersetSearch(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	monoRes, err := mono.client.SupersetSearch(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if decStats.NodesContacted >= monoRes.Stats.NodesContacted {
		t.Errorf("decomposed search contacted %d nodes, monolithic %d — decomposition should shrink the search space",
			decStats.NodesContacted, monoRes.Stats.NodesContacted)
	}
	_ = dType
}

func TestDecomposedUnknownFamily(t *testing.T) {
	dec, err := NewDecomposed(func(w string) string { return "missing" }, map[string]*Client{
		"present": mustClient(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = dec.SupersetSearch(context.Background(), keyword.NewSet("a"), 1, SearchOptions{})
	if err == nil {
		t.Error("unknown family accepted")
	}
}

func mustClient(t *testing.T) *Client {
	t.Helper()
	d := newDeployment(t, 4, 1, 0)
	return d.client
}
