package core

import (
	"context"
	"strings"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// newDecomposedDeployment builds two family deployments ("type:" and
// free-form keywords) plus the Decomposed wrapper over them.
func newDecomposedDeployment(t *testing.T) (*Decomposed, *deployment, *deployment) {
	t.Helper()
	dType := newDeployment(t, 6, 2, 0)
	dText := newDeployment(t, 10, 4, 0)
	classify := func(w string) string {
		if strings.HasPrefix(w, "type:") {
			return "type"
		}
		return "text"
	}
	dec, err := NewDecomposed(classify, map[string]*Client{
		"type": dType.client,
		"text": dText.client,
	})
	if err != nil {
		t.Fatalf("NewDecomposed: %v", err)
	}
	return dec, dType, dText
}

func TestDecomposedValidation(t *testing.T) {
	if _, err := NewDecomposed(nil, nil); err == nil {
		t.Error("NewDecomposed(nil) succeeded")
	}
	if _, err := NewDecomposed(func(string) string { return "x" }, map[string]*Client{"x": nil}); err == nil {
		t.Error("nil part client accepted")
	}
}

func TestDecomposedInsertAndSearchSingleFamily(t *testing.T) {
	dec, _, _ := newDecomposedDeployment(t)
	ctx := context.Background()
	objects := []Object{
		obj("song1", "type:audio", "jazz", "piano"),
		obj("song2", "type:audio", "rock"),
		obj("doc1", "type:document", "jazz", "history"),
	}
	for _, o := range objects {
		if _, err := dec.Insert(ctx, o); err != nil {
			t.Fatalf("Insert %s: %v", o.ID, err)
		}
	}
	// Query entirely in the text family.
	res, err := dec.SupersetSearch(ctx, keyword.NewSet("jazz"), All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(res.ObjectIDs, []string{"doc1", "song1"}) {
		t.Errorf("jazz search = %v", res.ObjectIDs)
	}
}

func TestDecomposedCrossFamilyIntersection(t *testing.T) {
	dec, _, _ := newDecomposedDeployment(t)
	ctx := context.Background()
	for _, o := range []Object{
		obj("song1", "type:audio", "jazz", "piano"),
		obj("song2", "type:audio", "rock"),
		obj("doc1", "type:document", "jazz", "history"),
	} {
		if _, err := dec.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	res, err := dec.SupersetSearch(ctx, keyword.NewSet("type:audio", "jazz"), All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(res.ObjectIDs, []string{"song1"}) {
		t.Errorf("cross-family search = %v, want [song1]", res.ObjectIDs)
	}
	st := res.Stats
	if st.NodesContacted == 0 || st.Messages == 0 {
		t.Errorf("stats not aggregated: %+v", st)
	}
	if st.Rounds == 0 || st.PhysFrames == 0 {
		t.Errorf("round/frame totals not aggregated: %+v", st)
	}
	if !res.Exhausted {
		t.Error("exhaustive cross-family search not reported exhausted")
	}
	if res.Completeness != 1 || res.FailedSubtrees != 0 {
		t.Errorf("healthy search degraded: completeness=%v failed=%d", res.Completeness, res.FailedSubtrees)
	}
}

// TestDecomposedDegradedFamilySurfacesCompleteness injects crash-stop
// failures into one family's fleet and checks the Result-shaped
// degradation contract: the search still answers (no error), the
// reported completeness is the minimum over the families — the
// degraded text family's, not the healthy type family's 1.0 — and the
// failed-subtree counts are merged into the total.
func TestDecomposedDegradedFamilySurfacesCompleteness(t *testing.T) {
	dec, dType, dText := newDecomposedDeployment(t)
	ctx := context.Background()
	for _, o := range []Object{
		obj("song1", "type:audio", "jazz", "piano"),
		obj("song2", "type:audio", "rock"),
		obj("doc1", "type:document", "jazz", "history"),
	} {
		if _, err := dec.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}

	// Crash every text-family server except the owner of the query
	// root, so the traversal starts but loses subtrees.
	rootV := dText.hasher.Vertex(keyword.NewSet("jazz"))
	rootAddr := dText.addrs[int(uint64(rootV)%uint64(len(dText.addrs)))]
	downed := 0
	for _, a := range dText.addrs {
		if a != rootAddr {
			dText.net.SetDown(a, true)
			downed++
		}
	}
	if downed == 0 {
		t.Fatal("every text server owns the root; cannot inject failures")
	}

	res, err := dec.SupersetSearch(ctx, keyword.NewSet("type:audio", "jazz"), All, SearchOptions{NoCache: true})
	if err != nil {
		t.Fatalf("degraded search errored instead of degrading: %v", err)
	}
	if res.Completeness >= 1 {
		t.Errorf("completeness = %v with %d/%d text servers down, want < 1",
			res.Completeness, downed, len(dText.addrs))
	}
	if res.FailedSubtrees == 0 {
		t.Error("no failed subtrees reported despite crashed servers")
	}

	// The healthy type family alone must still be perfect, proving the
	// merged figure really is the cross-family minimum.
	typeRes, err := dType.client.SupersetSearch(ctx, keyword.NewSet("type:audio"), All, SearchOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if typeRes.Completeness != 1 || typeRes.FailedSubtrees != 0 {
		t.Fatalf("type family unexpectedly degraded: %+v", typeRes.Stats)
	}
}

func TestDecomposedDelete(t *testing.T) {
	dec, _, _ := newDecomposedDeployment(t)
	ctx := context.Background()
	o := obj("song1", "type:audio", "jazz")
	if _, err := dec.Insert(ctx, o); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Delete(ctx, o); err != nil {
		t.Fatal(err)
	}
	res, err := dec.SupersetSearch(ctx, keyword.NewSet("jazz"), All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ObjectIDs) != 0 {
		t.Errorf("after delete, search = %v", res.ObjectIDs)
	}
}

func TestDecomposedSmallerSearchSpace(t *testing.T) {
	// The decomposition argument of Section 3.4: searching the small
	// "type" hypercube for a type-only query touches far fewer nodes
	// than the equivalent query on a monolithic large hypercube.
	dec, dType, _ := newDecomposedDeployment(t)
	mono := newDeployment(t, 16, 4, 0)
	ctx := context.Background()
	for i, words := range [][]string{
		{"type:audio", "jazz"},
		{"type:audio", "rock"},
		{"type:video", "jazz"},
	} {
		o := obj("o"+string(rune('a'+i)), words...)
		if _, err := dec.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
		if _, err := mono.client.Insert(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	q := keyword.NewSet("type:audio")
	decRes, err := dec.SupersetSearch(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	decStats := decRes.Stats
	monoRes, err := mono.client.SupersetSearch(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if decStats.NodesContacted >= monoRes.Stats.NodesContacted {
		t.Errorf("decomposed search contacted %d nodes, monolithic %d — decomposition should shrink the search space",
			decStats.NodesContacted, monoRes.Stats.NodesContacted)
	}
	_ = dType
}

func TestDecomposedUnknownFamily(t *testing.T) {
	dec, err := NewDecomposed(func(w string) string { return "missing" }, map[string]*Client{
		"present": mustClient(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = dec.SupersetSearch(context.Background(), keyword.NewSet("a"), 1, SearchOptions{})
	if err == nil {
		t.Error("unknown family accepted")
	}
}

func mustClient(t *testing.T) *Client {
	t.Helper()
	d := newDeployment(t, 4, 1, 0)
	return d.client
}
