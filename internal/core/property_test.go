package core

import (
	"context"
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"testing/quick"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

// randomWorkload builds a deployment with a random corpus and returns
// it with a random non-empty query drawn from the corpus vocabulary.
func randomWorkload(t *testing.T, rng *rand.Rand) (*deployment, []Object, keyword.Set) {
	t.Helper()
	r := 6 + rng.Intn(4)
	servers := 1 + rng.Intn(6)
	d := newDeployment(t, r, servers, 0)
	objects := corpus(t, d, 80+rng.Intn(120), rng.Int63())
	vocab := []string{"isp", "news", "mp3", "video", "game", "shop", "travel", "bank", "edu", "tv"}
	n := 1 + rng.Intn(2)
	words := make([]string, n)
	for i := range words {
		words[i] = vocab[rng.Intn(len(vocab))]
	}
	return d, objects, keyword.NewSet(words...)
}

// TestPropertyCumulativeEqualsOneShot: paging through a cumulative
// search with random page sizes yields exactly the one-shot exhaustive
// result set.
func TestPropertyCumulativeEqualsOneShot(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, _, q := randomWorkload(t, rng)
		ctx := context.Background()

		oneShot, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{})
		if err != nil {
			return false
		}
		cur, err := d.client.CumulativeSearch(q, SearchOptions{})
		if err != nil {
			return false
		}
		var paged []string
		for !cur.Exhausted() {
			page, _, err := cur.Next(ctx, 1+rng.Intn(7))
			if err != nil {
				return false
			}
			for _, m := range page {
				paged = append(paged, m.ObjectID+"|"+m.SetKey)
			}
		}
		var direct []string
		for _, m := range oneShot.Matches {
			direct = append(direct, m.ObjectID+"|"+m.SetKey)
		}
		sort.Strings(paged)
		sort.Strings(direct)
		if len(paged) != len(direct) {
			return false
		}
		for i := range paged {
			if paged[i] != direct[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOrdersReturnSameSet: the three traversal orders agree on
// the exhaustive result set.
func TestPropertyOrdersReturnSameSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, _, q := randomWorkload(t, rng)
		ctx := context.Background()
		var sets [3][]string
		for i, order := range []TraversalOrder{TopDown, BottomUp, ParallelLevels} {
			res, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{Order: order})
			if err != nil {
				return false
			}
			sets[i] = matchIDs(res.Matches)
		}
		return equalStrings(sets[0], sets[1]) && equalStrings(sets[1], sets[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCachedEqualsUncached: a repeated query served from cache
// returns the same matches as a cache-bypassing query.
func TestPropertyCachedEqualsUncached(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 6 + rng.Intn(4)
		d := newDeployment(t, r, 1+rng.Intn(4), 100000)
		objects := corpus(t, d, 100, rng.Int63())
		_ = objects
		q := keyword.NewSet([]string{"isp", "news", "mp3"}[rng.Intn(3)])
		ctx := context.Background()
		threshold := 1 + rng.Intn(20)

		warm, err := d.client.SupersetSearch(ctx, q, threshold, SearchOptions{})
		if err != nil {
			return false
		}
		cached, err := d.client.SupersetSearch(ctx, q, threshold, SearchOptions{})
		if err != nil {
			return false
		}
		fresh, err := d.client.SupersetSearch(ctx, q, threshold, SearchOptions{NoCache: true})
		if err != nil {
			return false
		}
		if !cached.Stats.CacheHit {
			return false
		}
		return equalStrings(matchIDs(warm.Matches), matchIDs(cached.Matches)) &&
			equalStrings(matchIDs(cached.Matches), matchIDs(fresh.Matches))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDepthBoundsExtraKeywords: Lemma 3.2 end-to-end — every
// match has at least Depth keywords beyond the query.
func TestPropertyDepthBoundsExtraKeywords(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, _, q := randomWorkload(t, rng)
		ctx := context.Background()
		res, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{})
		if err != nil {
			return false
		}
		for _, m := range res.Matches {
			extras := m.Keywords().Len() - q.Len()
			if extras < m.Depth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInsertDeleteRoundTrip: after deleting everything that
// was inserted, every search comes back empty.
func TestPropertyInsertDeleteRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := newDeployment(t, 6+rng.Intn(4), 1+rng.Intn(4), 0)
		ctx := context.Background()
		var objects []Object
		for i := 0; i < 30; i++ {
			o := obj("rt-"+strconv.Itoa(i),
				"w"+strconv.Itoa(rng.Intn(6)), "v"+strconv.Itoa(rng.Intn(6)))
			objects = append(objects, o)
			if _, err := d.client.Insert(ctx, o); err != nil {
				return false
			}
		}
		for _, o := range objects {
			if _, _, err := d.client.Delete(ctx, o); err != nil {
				return false
			}
		}
		for i := 0; i < 6; i++ {
			res, err := d.client.SupersetSearch(ctx, keyword.NewSet("w"+strconv.Itoa(i)), All, SearchOptions{})
			if err != nil || len(res.Matches) != 0 {
				return false
			}
		}
		// All server tables are empty.
		for _, s := range d.servers {
			if s.Stats().Objects != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
