package core

import (
	"testing"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

func mkMatch(id string, depth int, words ...string) Match {
	return Match{ObjectID: id, SetKey: keyword.NewSet(words...).Key(), Depth: depth}
}

func TestGroupByDepth(t *testing.T) {
	ms := []Match{
		mkMatch("a", 0, "x"),
		mkMatch("b", 1, "x", "y"),
		mkMatch("c", 1, "x", "z"),
		mkMatch("d", 2, "x", "y", "z"),
	}
	groups := GroupByDepth(ms)
	if len(groups[0]) != 1 || len(groups[1]) != 2 || len(groups[2]) != 1 {
		t.Errorf("groups = %v", groups)
	}
}

func TestCategorize(t *testing.T) {
	q := keyword.NewSet("x")
	ms := []Match{
		mkMatch("exact", 0, "x"),
		mkMatch("b1", 1, "x", "y"),
		mkMatch("b2", 1, "x", "y"),
		mkMatch("c", 1, "x", "z"),
		mkMatch("d", 2, "x", "y", "z"),
	}
	cats := Categorize(q, ms)
	if len(cats) != 4 {
		t.Fatalf("categories = %d, want 4", len(cats))
	}
	// Ordered by extra-set size then lexicographically:
	// {}, {y}, {z}, {y,z}.
	if cats[0].Extra != "" || len(cats[0].Matches) != 1 {
		t.Errorf("cat0 = %+v", cats[0])
	}
	if got := cats[1].ExtraKeywords().Words(); len(got) != 1 || got[0] != "y" {
		t.Errorf("cat1 extra = %v", got)
	}
	if len(cats[1].Matches) != 2 {
		t.Errorf("cat1 size = %d", len(cats[1].Matches))
	}
	if got := cats[3].ExtraKeywords().Words(); len(got) != 2 {
		t.Errorf("cat3 extra = %v", got)
	}
}

func TestSample(t *testing.T) {
	q := keyword.NewSet("x")
	ms := []Match{
		mkMatch("b1", 1, "x", "y"),
		mkMatch("b2", 1, "x", "y"),
		mkMatch("b3", 1, "x", "y"),
	}
	s := Sample(q, ms, 2)
	if len(s) != 1 || len(s[0].Matches) != 2 {
		t.Errorf("Sample = %+v", s)
	}
	s = Sample(q, ms, 0) // clamps to 1
	if len(s[0].Matches) != 1 {
		t.Errorf("Sample perCategory 0 = %d matches", len(s[0].Matches))
	}
}

func TestSortGeneralAndSpecificFirst(t *testing.T) {
	ms := []Match{
		mkMatch("deep", 2, "x", "y", "z"),
		mkMatch("shallow", 0, "x"),
		mkMatch("mid", 1, "x", "y"),
	}
	SortGeneralFirst(ms)
	if ms[0].ObjectID != "shallow" || ms[2].ObjectID != "deep" {
		t.Errorf("general-first order: %v %v %v", ms[0].ObjectID, ms[1].ObjectID, ms[2].ObjectID)
	}
	SortSpecificFirst(ms)
	if ms[0].ObjectID != "deep" || ms[2].ObjectID != "shallow" {
		t.Errorf("specific-first order: %v %v %v", ms[0].ObjectID, ms[1].ObjectID, ms[2].ObjectID)
	}
}
