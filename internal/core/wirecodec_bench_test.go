package core

import (
	"bytes"
	"encoding/gob"
	"io"
	"strconv"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport/wire"
)

// gobReqEnvelope and gobRespEnvelope mirror the request/response
// wrappers the legacy gob transport sends per RPC. They matter for an
// honest byte comparison: gob cannot ship a message without interface-
// wrapping it, and the interface encoding re-transmits the registered
// concrete type name ("core.msgSubQuery") on every message — only the
// type descriptors are once-per-stream.
type gobReqEnvelope struct {
	From string
	Body any
}

type gobRespEnvelope struct {
	Body any
	Err  string
}

// wireBenchSmall is the small-message hot path: the per-node superset
// step a root fans out thousands of times per exhaustive query, and
// its typical few-match answer.
func wireBenchSmall() (msgSubQuery, respSubQuery) {
	req := msgSubQuery{
		Instance: DefaultInstance,
		Dim:      10,
		Vertex:   697,
		Root:     1001,
		QueryKey: keyword.NewSet("distributed", "search").Key(),
		Limit:    128,
		GenDim:   7,
	}
	resp := respSubQuery{
		Matches: []Match{
			{ObjectID: "obj-00017", SetKey: keyword.NewSet("distributed", "search", "go").Key()},
			{ObjectID: "obj-00329", SetKey: keyword.NewSet("distributed", "search").Key()},
		},
		Remaining: 5,
		Children:  []wireEdge{{Vertex: 185, Dim: 3}, {Vertex: 441, Dim: 5}},
	}
	return req, resp
}

// wireBenchBatch is the large-message path: a 16-unit mega-wave frame
// answer with 64 matches per unit, the shape the arena decoder exists
// for.
func wireBenchBatch() respSubQueryBatch {
	var resp respSubQueryBatch
	resp.Results = make([]respSubUnit, 16)
	for i := range resp.Results {
		u := &resp.Results[i]
		u.Matches = make([]Match, 64)
		for j := range u.Matches {
			u.Matches[j] = Match{
				ObjectID: "obj-" + strconv.Itoa(i) + "-" + strconv.Itoa(j),
				SetKey:   keyword.NewSet("hub", "w"+strconv.Itoa(j%8)).Key(),
			}
		}
		u.Children = []wireEdge{{Vertex: uint64(i), Dim: i % 10}}
	}
	return resp
}

// binarySize returns the v2 codec payload size of body (the v2 frame
// adds a fixed ~9 bytes of header per message on top; BenchmarkWireRPC
// gates the full-frame figure end to end).
func binarySize(b *testing.B, body any) int {
	c, ok := wire.Lookup(body)
	if !ok {
		b.Fatalf("no wire codec for %T", body)
	}
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	c.Encode(w, body)
	return w.Len()
}

// gobSteadySize returns the steady-state per-message gob cost of body
// on a warm stream: type descriptors (sent once per connection by the
// gob transport) are primed away, so this is the marginal bytes every
// subsequent request on a pooled connection pays. This is the most
// favorable accounting for gob — fresh connections pay the descriptors
// again.
func gobSteadySize(b *testing.B, body any) int {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(body); err != nil {
		b.Fatal(err)
	}
	primed := buf.Len()
	if err := enc.Encode(body); err != nil {
		b.Fatal(err)
	}
	return buf.Len() - primed
}

// BenchmarkWireCodec pins the tentpole's codec-level payoff: encoding
// the small-message hot path (msgSubQuery request + respSubQuery
// answer) with the hand-rolled v2 codec must cost at most half the
// bytes that the gob transport marshals for the same exchange — the
// request/response envelopes it actually sends, measured at gob's
// steady state with stream type descriptors already amortized away,
// which is the cheapest gob ever gets. Byte sizes are deterministic,
// so the gate is unconditional; encode/decode time and allocations are
// reported by the sub-benchmarks for both codecs.
func BenchmarkWireCodec(b *testing.B) {
	RegisterTypes()
	req, resp := wireBenchSmall()
	batch := wireBenchBatch()
	reqEnv := gobReqEnvelope{From: "127.0.0.1:41234", Body: req}
	respEnv := gobRespEnvelope{Body: resp}
	batchEnv := gobRespEnvelope{Body: batch}

	binBytes := binarySize(b, req) + binarySize(b, resp)
	gobBytes := gobSteadySize(b, reqEnv) + gobSteadySize(b, respEnv)
	ratio := float64(binBytes) / float64(gobBytes)
	if ratio > 0.5 {
		b.Fatalf("small-message path: binary %d B vs gob %d B (%.2fx) — want <= 0.5x",
			binBytes, gobBytes, ratio)
	}
	b.Logf("small path: binary %d B, gob steady-state %d B (%.2fx); batch: binary %d B, gob %d B",
		binBytes, gobBytes, ratio, binarySize(b, batch), gobSteadySize(b, batchEnv))

	type benchBody struct {
		name   string
		body   any // binary codec side
		gobMsg any // what the gob transport encodes for it
	}
	for _, bb := range []benchBody{
		{"small-req", req, reqEnv},
		{"small-resp", resp, respEnv},
		{"batch-resp", batch, batchEnv},
	} {
		codec, _ := wire.Lookup(bb.body)

		b.Run("encode/binary/"+bb.name, func(b *testing.B) {
			w := wire.GetWriter()
			defer wire.PutWriter(w)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.Reset()
				codec.Encode(w, bb.body)
			}
			b.ReportMetric(float64(w.Len()), "wire-B/op")
		})
		b.Run("encode/gob/"+bb.name, func(b *testing.B) {
			enc := gob.NewEncoder(io.Discard)
			if err := enc.Encode(bb.gobMsg); err != nil { // prime descriptors
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := enc.Encode(bb.gobMsg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(gobSteadySize(b, bb.gobMsg)), "wire-B/op")
		})

		w := wire.GetWriter()
		codec.Encode(w, bb.body)
		payload := append([]byte(nil), w.Buf...)
		wire.PutWriter(w)
		b.Run("decode/binary/"+bb.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.Decode(wire.NewReader(payload)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decode/gob/"+bb.name, func(b *testing.B) {
			// Replay a warm stream: descriptors at the head are paid
			// once per chunk of chunkN messages, as on a pooled
			// connection.
			const chunkN = 512
			var stream bytes.Buffer
			enc := gob.NewEncoder(&stream)
			for i := 0; i < chunkN+1; i++ {
				if err := enc.Encode(bb.gobMsg); err != nil {
					b.Fatal(err)
				}
			}
			raw := stream.Bytes()
			isReq := bb.name == "small-req"
			b.ReportAllocs()
			var dec *gob.Decoder
			for i := 0; i < b.N; i++ {
				if i%chunkN == 0 {
					dec = gob.NewDecoder(bytes.NewReader(raw))
				}
				var err error
				if isReq {
					err = dec.Decode(new(gobReqEnvelope))
				} else {
					err = dec.Decode(new(gobRespEnvelope))
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
