package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Resolver implements the mapping g of Section 3.2: it resolves a
// logical hypercube vertex of one index instance to the transport
// address of the physical DHT node responsible for it. The instance
// name salts the mapping so independent instances (replicas,
// decomposed families) spread differently over the same nodes.
type Resolver interface {
	Resolve(ctx context.Context, instance string, v hypercube.Vertex) (transport.Addr, error)
}

// VertexKey derives the DHT key under which logical vertex v of index
// instance 'instance' is placed; g(v) is the DHT surrogate of this key.
// The instance name salts the mapping so that decomposed indexes (and
// independent deployments) spread differently over the same ring.
func VertexKey(instance string, v hypercube.Vertex) dht.ID {
	return dht.HashString("hx:" + instance + ":" + strconv.FormatUint(uint64(v), 16))
}

// OverlayResolver resolves vertices through a dht.Overlay lookup,
// caching (instance, vertex)→address bindings (the neighbor caching of
// Section 3.4, remark 4). Invalidate drops a cached binding after a
// send to it fails, so churn is handled by re-resolution.
type OverlayResolver struct {
	overlay dht.Overlay

	mu    sync.Mutex
	cache map[bindingKey]transport.Addr
}

type bindingKey struct {
	instance string
	vertex   hypercube.Vertex
}

var _ Resolver = (*OverlayResolver)(nil)

// NewOverlayResolver builds a caching resolver over the overlay.
func NewOverlayResolver(overlay dht.Overlay) *OverlayResolver {
	return &OverlayResolver{
		overlay: overlay,
		cache:   make(map[bindingKey]transport.Addr),
	}
}

// Resolve implements Resolver.
func (r *OverlayResolver) Resolve(ctx context.Context, instance string, v hypercube.Vertex) (transport.Addr, error) {
	key := bindingKey{instance: instance, vertex: v}
	r.mu.Lock()
	if addr, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return addr, nil
	}
	r.mu.Unlock()

	addr, _, err := r.overlay.Lookup(ctx, VertexKey(instance, v))
	if err != nil {
		return "", fmt.Errorf("resolve vertex %d: %w", v, err)
	}
	r.mu.Lock()
	r.cache[key] = addr
	r.mu.Unlock()
	return addr, nil
}

// Invalidate forgets the cached binding for v in the given instance.
func (r *OverlayResolver) Invalidate(instance string, v hypercube.Vertex) {
	r.mu.Lock()
	delete(r.cache, bindingKey{instance: instance, vertex: v})
	r.mu.Unlock()
}

// CacheSize returns the number of cached bindings (diagnostic).
func (r *OverlayResolver) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// FuncResolver adapts a plain instance-agnostic function to Resolver.
// The experiment harness uses it to model the one-logical-node-per-
// physical-node deployments of Section 4 without DHT traffic.
type FuncResolver func(v hypercube.Vertex) transport.Addr

var _ Resolver = (FuncResolver)(nil)

// Resolve implements Resolver, ignoring the instance name.
func (f FuncResolver) Resolve(_ context.Context, _ string, v hypercube.Vertex) (transport.Addr, error) {
	addr := f(v)
	if addr == "" {
		return "", fmt.Errorf("core: no address for vertex %d", v)
	}
	return addr, nil
}
