package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"github.com/p2pkeyword/keysearch/internal/dht"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Resolver implements the mapping g of Section 3.2: it resolves a
// logical hypercube vertex of one index instance to the transport
// address of the physical DHT node responsible for it. The instance
// name salts the mapping so independent instances (replicas,
// decomposed families) spread differently over the same nodes.
type Resolver interface {
	Resolve(ctx context.Context, instance string, v hypercube.Vertex) (transport.Addr, error)
}

// VertexKey derives the DHT key under which logical vertex v of index
// instance 'instance' is placed; g(v) is the DHT surrogate of this key.
// The instance name salts the mapping so that decomposed indexes (and
// independent deployments) spread differently over the same ring.
func VertexKey(instance string, v hypercube.Vertex) dht.ID {
	return dht.HashString("hx:" + instance + ":" + strconv.FormatUint(uint64(v), 16))
}

// BatchResolver is an optional Resolver extension for resolving a
// whole wave of vertices at once. dispatchWave prefers it when the
// configured resolver implements it; addrs and errs are positionally
// aligned with vs.
type BatchResolver interface {
	Resolver
	ResolveBatch(ctx context.Context, instance string, vs []hypercube.Vertex) (addrs []transport.Addr, errs []error)
}

// batchResolveFanout bounds the concurrent overlay lookups one
// ResolveBatch call may have in flight.
const batchResolveFanout = 16

// OverlayResolver resolves vertices through a dht.Overlay lookup,
// caching (instance, vertex)→address bindings (the neighbor caching of
// Section 3.4, remark 4). Invalidate drops a cached binding after a
// send to it fails, so churn is handled by re-resolution. Concurrent
// Resolve calls for the same cold binding are deduplicated: one caller
// performs the overlay lookup and the rest wait for its outcome.
type OverlayResolver struct {
	overlay dht.Overlay

	mu      sync.Mutex
	cache   map[bindingKey]transport.Addr
	flights map[bindingKey]*flight
}

type bindingKey struct {
	instance string
	vertex   hypercube.Vertex
}

// flight is one in-progress overlay lookup; joiners block on done.
type flight struct {
	done chan struct{}
	addr transport.Addr
	err  error
}

var (
	_ Resolver      = (*OverlayResolver)(nil)
	_ BatchResolver = (*OverlayResolver)(nil)
)

// NewOverlayResolver builds a caching resolver over the overlay.
func NewOverlayResolver(overlay dht.Overlay) *OverlayResolver {
	return &OverlayResolver{
		overlay: overlay,
		cache:   make(map[bindingKey]transport.Addr),
		flights: make(map[bindingKey]*flight),
	}
}

// Resolve implements Resolver.
func (r *OverlayResolver) Resolve(ctx context.Context, instance string, v hypercube.Vertex) (transport.Addr, error) {
	key := bindingKey{instance: instance, vertex: v}
	r.mu.Lock()
	if addr, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return addr, nil
	}
	if fl, ok := r.flights[key]; ok {
		// Another goroutine is already looking this binding up; wait
		// for its answer instead of stampeding the overlay.
		r.mu.Unlock()
		select {
		case <-fl.done:
			return fl.addr, fl.err
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	r.flights[key] = fl
	r.mu.Unlock()

	addr, _, err := r.overlay.Lookup(ctx, VertexKey(instance, v))
	if err != nil {
		err = fmt.Errorf("resolve vertex %d: %w", v, err)
	}
	fl.addr, fl.err = addr, err

	r.mu.Lock()
	if err == nil {
		r.cache[key] = addr
	}
	delete(r.flights, key)
	r.mu.Unlock()
	close(fl.done)
	if err != nil {
		return "", err
	}
	return addr, nil
}

// ResolveBatch resolves a wave of vertices with bounded concurrency.
// Duplicate vertices in vs and concurrent calls for overlapping waves
// collapse onto single overlay lookups via the cache and the
// singleflight table.
func (r *OverlayResolver) ResolveBatch(ctx context.Context, instance string, vs []hypercube.Vertex) ([]transport.Addr, []error) {
	addrs := make([]transport.Addr, len(vs))
	errs := make([]error, len(vs))
	sem := make(chan struct{}, batchResolveFanout)
	var wg sync.WaitGroup
	for i, v := range vs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, v hypercube.Vertex) {
			defer wg.Done()
			defer func() { <-sem }()
			addrs[i], errs[i] = r.Resolve(ctx, instance, v)
		}(i, v)
	}
	wg.Wait()
	return addrs, errs
}

// Invalidate forgets the cached binding for v in the given instance.
func (r *OverlayResolver) Invalidate(instance string, v hypercube.Vertex) {
	r.mu.Lock()
	delete(r.cache, bindingKey{instance: instance, vertex: v})
	r.mu.Unlock()
}

// CacheSize returns the number of cached bindings (diagnostic).
func (r *OverlayResolver) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// FuncResolver adapts a plain instance-agnostic function to Resolver.
// The experiment harness uses it to model the one-logical-node-per-
// physical-node deployments of Section 4 without DHT traffic.
type FuncResolver func(v hypercube.Vertex) transport.Addr

var (
	_ Resolver      = (FuncResolver)(nil)
	_ BatchResolver = (FuncResolver)(nil)
)

// Resolve implements Resolver, ignoring the instance name.
func (f FuncResolver) Resolve(_ context.Context, _ string, v hypercube.Vertex) (transport.Addr, error) {
	addr := f(v)
	if addr == "" {
		return "", fmt.Errorf("core: no address for vertex %d", v)
	}
	return addr, nil
}

// ResolveBatch implements BatchResolver; the mapping function is pure,
// so the batch is a plain loop.
func (f FuncResolver) ResolveBatch(ctx context.Context, instance string, vs []hypercube.Vertex) ([]transport.Addr, []error) {
	addrs := make([]transport.Addr, len(vs))
	errs := make([]error, len(vs))
	for i, v := range vs {
		addrs[i], errs[i] = f.Resolve(ctx, instance, v)
	}
	return addrs, errs
}
