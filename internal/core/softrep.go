package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// Soft replication of hot roots. The paper's load analysis (§5, Fig.
// 12) shows query popularity is heavily skewed — the top handful of
// keyword sets draw the majority of traffic — so the nodes owning
// their root vertices become hotspots no matter how well the hash
// spreads the index itself. The hot-vertex layer counters this with
// *soft replicas*: when a root's query count crosses a threshold, its
// owner pushes a copy of the root's table onto HotReplicas extra peers
// and starts advertising their addresses in its responses
// (respTQuery.SoftAddrs); clients then spread subsequent searches for
// that root across owner + replicas.
//
// Soft copies are deliberately weak state:
//
//   - Volatile: never WAL-logged, dropped on restart. The owner
//     re-promotes from live popularity if the root still matters.
//   - Generation-stamped: a push carries one generation number across
//     all its chunks and goes live only when the Done chunk lands, so a
//     half-pushed table never serves.
//   - Invalidated, not updated: any mutation of a promoted vertex
//     demotes it — the owner synchronously (best effort) tells each
//     replica to drop its copy, carrying the mutated SetKey so the
//     replica runs the same invalidateSubsetsOf event over its own
//     result cache. An unreachable replica keeps serving the stale
//     copy until its owner-side demotion propagates — the same
//     staleness contract the per-node result cache already has
//     (caches on non-mutating nodes go stale until their own
//     mutation arrives).
//
// Lock order: hot/soft locks are flat like the cache's — never held
// across a Send, never nested inside shard locks.

const (
	// DefaultHotPromoteThreshold is the fresh-query count at which a
	// root is promoted when HotReplicas > 0 and no explicit
	// ServerConfig.HotPromoteThreshold is set. Exported so offline
	// attribution studies model promotion at the same point.
	DefaultHotPromoteThreshold = 64
	// hotDecayEvery halves all popularity counters after this many
	// fresh rooted queries, so promotion tracks *current* popularity —
	// count-based, not wall-clock, to keep the layer deterministic.
	hotDecayEvery = 1024
	// hotCoolThreshold is the decayed count below which a promoted
	// root is demoted (its replicas dropped) at the next decay sweep.
	hotCoolThreshold = 8
	// softPushTimeout bounds one promotion push or invalidation send;
	// decoupled from any query deadline so a promotion triggered inside
	// a short-deadline search still completes.
	softPushTimeout = 5 * time.Second
)

// hotKey identifies one tracked root vertex.
type hotKey struct {
	instance string
	vertex   hypercube.Vertex
}

// softSet is the owner-side record of a promoted root: the replica
// peers holding its soft copy.
type softSet struct {
	gen   uint64
	addrs []transport.Addr
	strs  []string // pre-rendered for respTQuery.SoftAddrs
}

// hotVertexManager is the owner-side half of the layer: popularity
// tracking, promotion pushes, and demotion/invalidation.
type hotVertexManager struct {
	s         *Server
	replicas  int
	threshold int

	gen atomic.Uint64

	mu        sync.Mutex
	counts    map[hotKey]int
	promoted  map[hotKey]*softSet
	promoting map[hotKey]bool
	notes     int // fresh queries since the last decay sweep
	// mutGens counts mutations per root. promote reads it before
	// snapshotting and re-checks before committing: a mutation that
	// lands mid-push would otherwise miss the invalidation (the root is
	// not in promoted yet) and leave a stale copy serving indefinitely.
	mutGens map[hotKey]uint64
}

func newHotVertexManager(s *Server, replicas, threshold int) *hotVertexManager {
	if threshold <= 0 {
		threshold = DefaultHotPromoteThreshold
	}
	return &hotVertexManager{
		s:         s,
		replicas:  replicas,
		threshold: threshold,
		counts:    make(map[hotKey]int),
		promoted:  make(map[hotKey]*softSet),
		promoting: make(map[hotKey]bool),
		mutGens:   make(map[hotKey]uint64),
	}
}

func (h *hotVertexManager) enabled() bool { return h != nil && h.replicas > 0 }

// note records one fresh rooted query for (instance, v) and returns
// the soft-replica addresses to advertise if the root is promoted.
// Crossing the promotion threshold promotes inline (synchronously), so
// the very response that crossed it already carries the hint — and so
// the layer stays deterministic under a serial query log.
func (h *hotVertexManager) note(ctx context.Context, instance string, v hypercube.Vertex) []string {
	if !h.enabled() {
		return nil
	}
	k := hotKey{instance: instance, vertex: v}
	h.mu.Lock()
	h.counts[k]++
	h.notes++
	if h.notes >= hotDecayEvery {
		h.notes = 0
		for ck, c := range h.counts {
			c /= 2
			if c == 0 {
				delete(h.counts, ck)
			} else {
				h.counts[ck] = c
			}
			if set, ok := h.promoted[ck]; ok && c < hotCoolThreshold {
				delete(h.promoted, ck)
				h.demoteLocked(ck, set)
			}
		}
	}
	set := h.promoted[k]
	needPromote := set == nil && h.counts[k] >= h.threshold && !h.promoting[k]
	if needPromote {
		h.promoting[k] = true
	}
	h.mu.Unlock()

	if needPromote {
		set = h.promote(ctx, k)
	}
	if set == nil {
		return nil
	}
	return set.strs
}

// demoteLocked fires a cooling demotion: the replica drop is sent
// asynchronously (empty SetKey — the copy goes away but cached
// results derived from it remain valid). Callers hold h.mu; the
// goroutine takes no locks before its own sends.
func (h *hotVertexManager) demoteLocked(k hotKey, set *softSet) {
	h.s.met.hotDemotions.Inc()
	go h.sendInvalidate(k, set, "")
}

// promote snapshots the root's table and pushes it to the replica
// peers in migration-sized, generation-stamped chunks. On any push
// failure the whole promotion is abandoned (the replica set must be
// complete or absent — a partial set would skew the spreading) and the
// counter resets so a persistent failure doesn't retry every query.
func (h *hotVertexManager) promote(ctx context.Context, k hotKey) *softSet {
	defer func() {
		h.mu.Lock()
		delete(h.promoting, k)
		h.mu.Unlock()
	}()

	peers := h.pickPeers(ctx, k)
	if len(peers) == 0 {
		h.mu.Lock()
		h.counts[k] = 0
		h.mu.Unlock()
		return nil
	}
	h.mu.Lock()
	startGen := h.mutGens[k]
	h.mu.Unlock()
	entries := h.s.snapshotVertex(k.instance, k.vertex)
	gen := h.gen.Add(1)
	chunk := h.s.cfg.Migration.withDefaults().ChunkEntries

	pctx, cancel := context.WithTimeout(context.Background(), softPushTimeout)
	defer cancel()
	for _, addr := range peers {
		if err := h.pushCopy(pctx, addr, k, gen, entries, chunk); err != nil {
			// Tell any peer that already holds a complete copy of this
			// generation to drop it, then abandon the promotion.
			set := &softSet{gen: gen, addrs: peers}
			h.sendInvalidate(k, set, "")
			h.mu.Lock()
			h.counts[k] = 0
			h.mu.Unlock()
			return nil
		}
	}

	set := &softSet{gen: gen, addrs: peers, strs: make([]string, len(peers))}
	for i, a := range peers {
		set.strs[i] = string(a)
	}
	h.mu.Lock()
	if h.mutGens[k] != startGen {
		// The vertex mutated while we were pushing: the copies we just
		// installed snapshot a stale table, and the mutation's own
		// invalidation ran before the root entered promoted (so it
		// dropped nothing). Tear the copies down and abandon.
		h.mu.Unlock()
		h.sendInvalidate(k, set, "")
		return nil
	}
	h.promoted[k] = set
	h.mu.Unlock()
	h.s.met.hotPromotions.Inc()
	return set
}

// pickPeers derives the replica set for a root deterministically from
// the vertex: successive splitmix candidates masked into the cube,
// resolved through the normal resolver, skipping the owner itself and
// duplicates. Determinism matters — the seeded promotion test replays
// a query log and expects the identical replica sets.
func (h *hotVertexManager) pickPeers(ctx context.Context, k hotKey) []transport.Addr {
	own, err := h.s.cfg.Resolver.Resolve(ctx, k.instance, k.vertex)
	if err != nil {
		return nil
	}
	peers := make([]transport.Addr, 0, h.replicas)
	seen := map[transport.Addr]struct{}{own: {}}
	for _, cand := range SoftReplicaCandidates(k.vertex, h.s.cube.Dim(), h.replicas) {
		if len(peers) == h.replicas {
			break
		}
		addr, err := h.s.cfg.Resolver.Resolve(ctx, k.instance, cand)
		if err != nil {
			continue
		}
		if _, dup := seen[addr]; dup {
			continue
		}
		seen[addr] = struct{}{}
		peers = append(peers, addr)
	}
	return peers
}

// pushCopy sends one replica's full copy as a chunked sequence under
// one generation; the last chunk carries Done. An empty table still
// pushes one Done chunk — an empty live copy serves correctly.
func (h *hotVertexManager) pushCopy(ctx context.Context, addr transport.Addr, k hotKey, gen uint64, entries []BulkEntry, chunk int) error {
	for start := 0; ; start += chunk {
		end := start + chunk
		if end >= len(entries) {
			end = len(entries)
		}
		msg := msgSoftPromote{
			Instance: k.instance,
			Vertex:   uint64(k.vertex),
			Gen:      gen,
			Entries:  entries[start:end],
			Done:     end == len(entries),
		}
		if _, err := h.s.cfg.Sender.Send(ctx, addr, msg); err != nil {
			return err
		}
		if msg.Done {
			return nil
		}
	}
}

// noteMutation demotes a promoted root whose table just changed:
// drops the owner-side record, resets the popularity count (the next
// burst re-promotes with a fresh copy), and synchronously best-effort
// invalidates each replica. setKey is the mutated entry's key so
// replicas can invalidate their own result caches with the same
// subset-event the owner just ran.
func (h *hotVertexManager) noteMutation(instance string, v hypercube.Vertex, setKey string) {
	if !h.enabled() {
		return
	}
	k := hotKey{instance: instance, vertex: v}
	h.mu.Lock()
	h.mutGens[k]++
	set, ok := h.promoted[k]
	if ok {
		delete(h.promoted, k)
		h.counts[k] = 0
	}
	h.mu.Unlock()
	if !ok {
		return
	}
	h.s.met.hotDemotions.Inc()
	h.sendInvalidate(k, set, setKey)
}

// sendInvalidate tells each replica of set to drop its copy; best
// effort with a bounded timeout — an unreachable replica serves its
// stale copy until it hears otherwise, matching the result cache's
// staleness contract.
func (h *hotVertexManager) sendInvalidate(k hotKey, set *softSet, setKey string) {
	ctx, cancel := context.WithTimeout(context.Background(), softPushTimeout)
	defer cancel()
	msg := msgSoftInvalidate{
		Instance: k.instance,
		Vertex:   uint64(k.vertex),
		Gen:      set.gen,
		SetKey:   setKey,
	}
	for _, addr := range set.addrs {
		if _, err := h.s.cfg.Sender.Send(ctx, addr, msg); err == nil {
			h.s.met.softInvalidations.Inc()
		}
	}
}

// promotedRoots lists the currently promoted roots as "instance/vertex"
// strings in sorted order (the determinism test's fingerprint).
func (h *hotVertexManager) promotedRoots() []hotKey {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]hotKey, 0, len(h.promoted))
	for k := range h.promoted {
		out = append(out, k)
	}
	return out
}

// reset drops all tracking and promotion state (crash model: process
// memory is lost; no invalidations are sent — replicas age out via
// their own restarts or the next mutation cycle).
func (h *hotVertexManager) reset() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.counts = make(map[hotKey]int)
	h.promoted = make(map[hotKey]*softSet)
	h.promoting = make(map[hotKey]bool)
	h.mutGens = make(map[hotKey]uint64)
	h.notes = 0
	h.mu.Unlock()
}

// SoftReplicaCandidates returns the deterministic candidate-vertex
// walk replica placement resolves addresses from: successive
// splitmix64 values of the root vertex masked into the cube, enough
// for 8 resolution attempts per wanted replica. The caller (live:
// pickPeers; offline: the sim hot-spot study) dedups the resolved
// nodes and skips the owner.
func SoftReplicaCandidates(v hypercube.Vertex, dim, replicas int) []hypercube.Vertex {
	mask := uint64(1)<<uint(dim) - 1
	out := make([]hypercube.Vertex, 0, 8*(replicas+1))
	for salt := uint64(1); salt <= uint64(8*(replicas+1)); salt++ {
		out = append(out, hypercube.Vertex(splitmix64(uint64(v)+salt*0x9e3779b97f4a7c15)&mask))
	}
	return out
}

// splitmix64 is the SplitMix64 finalizer — the same mixing the hot
// cache's sketch uses, here deriving replica candidate vertices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// snapshotVertex copies one vertex's table into BulkEntries under the
// shard read lock (deterministic order — sorted keys, sorted IDs).
func (s *Server) snapshotVertex(instance string, v hypercube.Vertex) []BulkEntry {
	sh := s.shardFor(instance, v)
	sh.rlock(s.met.shardLockWait)
	defer sh.mu.RUnlock()
	tbl, ok := sh.tables[instance][v]
	if !ok {
		return nil
	}
	var out []BulkEntry
	for _, setKey := range tbl.sortedKeys() {
		for _, id := range tbl.entries[setKey].ids() {
			out = append(out, BulkEntry{
				Instance: instance, Vertex: uint64(v),
				SetKey: setKey, ObjectID: id,
			})
		}
	}
	return out
}

// softCopy is one replica-side soft table under construction or live.
type softCopy struct {
	gen uint64
	tbl *table
}

// softStore is the replica-side half: it holds the soft copies other
// owners pushed onto this node. Lookup is consulted on the search
// path before the ownership check, with a lock-free emptiness fast
// path so nodes holding no copies (the common case) pay one atomic
// load.
type softStore struct {
	live atomic.Int64 // count of live copies; fast-path gate

	mu      sync.RWMutex
	pending map[hotKey]*softCopy
	serving map[hotKey]*softCopy
}

func newSoftStore() *softStore {
	return &softStore{
		pending: make(map[hotKey]*softCopy),
		serving: make(map[hotKey]*softCopy),
	}
}

// applyPromote ingests one promotion chunk. Chunks of one generation
// accumulate in pending; Done moves the copy to serving. Stale
// generations (≤ an already-live copy's) are ignored.
func (st *softStore) applyPromote(msg msgSoftPromote) {
	k := hotKey{instance: msg.Instance, vertex: hypercube.Vertex(msg.Vertex)}
	st.mu.Lock()
	defer st.mu.Unlock()
	if cur, ok := st.serving[k]; ok && cur.gen >= msg.Gen {
		return
	}
	pend := st.pending[k]
	if pend == nil || pend.gen < msg.Gen {
		pend = &softCopy{gen: msg.Gen, tbl: &table{entries: make(map[string]*entry)}}
		st.pending[k] = pend
	} else if pend.gen > msg.Gen {
		return
	}
	for _, be := range msg.Entries {
		e, ok := pend.tbl.entries[be.SetKey]
		if !ok {
			e = &entry{set: keyword.ParseKey(be.SetKey), objects: make(map[string]struct{})}
			pend.tbl.entries[be.SetKey] = e
			pend.tbl.sorted.Store(nil)
		}
		if _, dup := e.objects[be.ObjectID]; !dup {
			e.objects[be.ObjectID] = struct{}{}
			e.sortedIDs.Store(nil)
		}
	}
	if msg.Done {
		delete(st.pending, k)
		st.serving[k] = pend
		st.live.Store(int64(len(st.serving)))
	}
}

// applyInvalidate drops the copy for generations ≥ the stored one and
// reports whether a SetKey-bearing invalidation should also run over
// this node's result cache (it always should: the owner mutated the
// vertex, so any cached result derived from serving the soft copy may
// now be stale — even if the copy itself is already gone).
func (st *softStore) applyInvalidate(msg msgSoftInvalidate) {
	k := hotKey{instance: msg.Instance, vertex: hypercube.Vertex(msg.Vertex)}
	st.mu.Lock()
	if cur, ok := st.serving[k]; ok && msg.Gen >= cur.gen {
		delete(st.serving, k)
		st.live.Store(int64(len(st.serving)))
	}
	if pend, ok := st.pending[k]; ok && msg.Gen >= pend.gen {
		delete(st.pending, k)
	}
	st.mu.Unlock()
}

// lookup returns the live soft table for (instance, v), or nil. The
// returned table is immutable once live — promotion builds a fresh
// table per generation and never mutates a serving one.
func (st *softStore) lookup(instance string, v hypercube.Vertex) *table {
	if st == nil || st.live.Load() == 0 {
		return nil
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	c, ok := st.serving[hotKey{instance: instance, vertex: v}]
	if !ok {
		return nil
	}
	return c.tbl
}

// dropLocal discards any soft copy of a vertex this node itself
// mutates: local authority supersedes a replica of someone else's
// (now conflicting) promotion. Cheap no-op when nothing is stored.
func (st *softStore) dropLocal(instance string, v hypercube.Vertex) {
	if st == nil || (st.live.Load() == 0 && !st.hasPending()) {
		return
	}
	k := hotKey{instance: instance, vertex: v}
	st.mu.Lock()
	if _, ok := st.serving[k]; ok {
		delete(st.serving, k)
		st.live.Store(int64(len(st.serving)))
	}
	delete(st.pending, k)
	st.mu.Unlock()
}

func (st *softStore) hasPending() bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.pending) > 0
}

// count reports the number of live soft copies (the gauge).
func (st *softStore) count() int {
	if st == nil {
		return 0
	}
	return int(st.live.Load())
}

// reset drops every copy (crash model; soft state is volatile).
func (st *softStore) reset() {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.pending = make(map[hotKey]*softCopy)
	st.serving = make(map[hotKey]*softCopy)
	st.live.Store(0)
	st.mu.Unlock()
}
