package core

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/transport"
)

// benchSender satisfies ServerConfig.Sender for benchmarks that never
// leave the local server.
type benchSender struct{}

func (benchSender) Send(context.Context, transport.Addr, any) (any, error) {
	return nil, fmt.Errorf("bench: no network")
}

// benchScanServer builds a standalone server with one crowded vertex:
// entries keyword sets, ids object IDs per entry.
func benchScanServer(b *testing.B, entries, ids int) (*Server, hypercube.Vertex, keyword.Set) {
	b.Helper()
	hasher := keyword.MustNewHasher(8, 42)
	srv, err := NewServer(ServerConfig{
		Hasher:   hasher,
		Resolver: FuncResolver(func(hypercube.Vertex) transport.Addr { return "bench-0" }),
		Sender:   benchSender{},
	})
	if err != nil {
		b.Fatal(err)
	}
	v := hypercube.Vertex(5)
	for i := 0; i < entries; i++ {
		key := keyword.NewSet("hub", "w"+strconv.Itoa(i)).Key()
		for j := 0; j < ids; j++ {
			srv.insertEntry(DefaultInstance, v, key, "o-"+strconv.Itoa(i)+"-"+strconv.Itoa(j))
		}
	}
	return srv, v, keyword.NewSet("hub")
}

// BenchmarkScanVertexSortedCache isolates the sorted-scan-order caching
// of table.sortedKeys and entry.ids: "warm" reuses the cached order
// built on the first scan (the steady state — scans vastly outnumber
// mutations), "cold" invalidates it before every scan, paying the
// full rebuild-and-sort on each, as every scan did before the cache.
func BenchmarkScanVertexSortedCache(b *testing.B) {
	const entries, ids = 200, 5
	for _, mode := range []string{"warm", "cold"} {
		b.Run(mode, func(b *testing.B) {
			srv, v, query := benchScanServer(b, entries, ids)
			srv.scanVertex(DefaultInstance, v, v, supersetPred(query.Key(), query), 0, -1) // build the cache once
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "cold" {
					sh := srv.shardFor(DefaultInstance, v)
					sh.mu.Lock()
					tbl := sh.tables[DefaultInstance][v]
					tbl.sorted.Store(nil)
					for _, e := range tbl.entries {
						e.sortedIDs.Store(nil)
					}
					sh.mu.Unlock()
				}
				matches, _ := srv.scanVertex(DefaultInstance, v, v, supersetPred(query.Key(), query), 0, -1)
				if len(matches) != entries*ids {
					b.Fatalf("scan returned %d matches, want %d", len(matches), entries*ids)
				}
			}
		})
	}
}
