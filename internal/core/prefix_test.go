package core

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"testing"
	"time"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// newPrefixDeployment is newDeploymentTuned plus an explicit cache
// policy, for the prefix equivalence matrix.
func newPrefixDeployment(t *testing.T, r, nServers, cacheCap int, mode BatchMode, policy string) *deployment {
	t.Helper()
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	hasher := keyword.MustNewHasher(r, 42)
	addrs := make([]transport.Addr, nServers)
	for i := range addrs {
		addrs[i] = transport.Addr("pfx-" + strconv.Itoa(i))
	}
	resolver := FuncResolver(func(v hypercube.Vertex) transport.Addr {
		return addrs[int(uint64(v)%uint64(nServers))]
	})
	servers := make([]*Server, nServers)
	for i := range servers {
		srv, err := NewServer(ServerConfig{
			Hasher:        hasher,
			Resolver:      resolver,
			Sender:        net,
			CacheCapacity: cacheCap,
			CachePolicy:   policy,
			BatchWaves:    mode,
		})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		servers[i] = srv
		if _, err := net.Bind(addrs[i], srv.Handler); err != nil {
			t.Fatalf("Bind: %v", err)
		}
	}
	client, err := NewClient(hasher, resolver, net)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return &deployment{net: net, hasher: hasher, servers: servers, addrs: addrs, client: client}
}

// prefixCorpus is a fixed corpus with clustered word prefixes: "kw1",
// "kw12", "kw120"… so prefixes of different lengths select nested
// object populations.
func prefixCorpus() []Object {
	return []Object{
		obj("a1", "kw1", "alpha"),
		obj("a2", "kw12", "alpha", "beta"),
		obj("a3", "kw120", "gamma"),
		obj("a4", "kw2", "alpha"),
		obj("a5", "kw21", "delta", "beta"),
		obj("b1", "other", "alpha"),
		obj("b2", "otter", "beta", "gamma", "delta"),
		obj("b3", "kw", "solo"),
		obj("c1", "zz", "kw129", "beta"),
		obj("c2", "zz", "kw3"),
	}
}

// prefixBruteForce returns the IDs of objects with at least one
// keyword starting with prefix.
func prefixBruteForce(objects []Object, prefix string) []string {
	var out []string
	for _, o := range objects {
		if o.Keywords.HasPrefix(prefix) {
			out = append(out, o.ID)
		}
	}
	sort.Strings(out)
	return out
}

func insertAll(t *testing.T, d *deployment, objects []Object) {
	t.Helper()
	ctx := context.Background()
	for _, o := range objects {
		if _, err := d.client.Insert(ctx, o); err != nil {
			t.Fatalf("Insert %s: %v", o.ID, err)
		}
	}
}

func TestPrefixSearchMatchesBruteForce(t *testing.T) {
	d := newDeployment(t, 8, 4, 0)
	objects := prefixCorpus()
	insertAll(t, d, objects)
	ctx := context.Background()

	for _, prefix := range []string{"kw", "kw1", "kw12", "kw120", "kw2", "ot", "zz", "nomatch"} {
		for _, order := range []TraversalOrder{TopDown, BottomUp, ParallelLevels} {
			res, err := d.client.PrefixSearch(ctx, prefix, All, SearchOptions{Order: order, NoCache: true})
			if err != nil {
				t.Fatalf("PrefixSearch(%q, %v): %v", prefix, order, err)
			}
			want := prefixBruteForce(objects, prefix)
			if got := matchIDs(res.Matches); !equalStrings(got, want) {
				t.Errorf("PrefixSearch(%q, %v) = %v, want %v", prefix, order, got, want)
			}
			if !res.Exhausted {
				t.Errorf("PrefixSearch(%q, %v): unbounded search not exhausted", prefix, order)
			}
			if res.Completeness != 1 || res.FailedSubtrees != 0 {
				t.Errorf("PrefixSearch(%q, %v): degraded on a healthy fleet: %+v", prefix, order, res)
			}
		}
	}
}

// TestPrefixSearchMaskedEquivalence: constraining the multicast to the
// dimensions the deployment vocabulary can hash to must not change the
// answer, and must not visit more nodes than the full broadcast.
func TestPrefixSearchMaskedEquivalence(t *testing.T) {
	d := newDeployment(t, 8, 4, 0)
	objects := prefixCorpus()
	insertAll(t, d, objects)
	ctx := context.Background()

	var vocab []string
	seen := map[string]bool{}
	for _, o := range objects {
		for _, w := range o.Keywords.Words() {
			if !seen[w] {
				seen[w] = true
				vocab = append(vocab, w)
			}
		}
	}
	for _, prefix := range []string{"kw", "kw1", "ot", "zz"} {
		mask := d.hasher.PrefixMask(vocab, prefix)
		if mask == 0 {
			t.Fatalf("PrefixMask(%q) = 0 despite matching vocabulary", prefix)
		}
		full, err := d.client.PrefixSearch(ctx, prefix, All, SearchOptions{NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		masked, err := d.client.PrefixSearchMasked(ctx, prefix, mask, All, SearchOptions{NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := matchIDs(masked.Matches), matchIDs(full.Matches); !equalStrings(got, want) {
			t.Errorf("masked prefix %q = %v, full broadcast %v", prefix, got, want)
		}
		if masked.Stats.NodesContacted > full.Stats.NodesContacted {
			t.Errorf("masked prefix %q contacted %d nodes, full broadcast only %d",
				prefix, masked.Stats.NodesContacted, full.Stats.NodesContacted)
		}
	}
}

func TestPrefixSearchThresholdStopsEarly(t *testing.T) {
	d := newDeployment(t, 8, 4, 0)
	objects := prefixCorpus()
	insertAll(t, d, objects)
	ctx := context.Background()

	res, err := d.client.PrefixSearch(ctx, "kw", 2, SearchOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 || len(res.Matches) > 2 {
		t.Fatalf("threshold 2 returned %d matches", len(res.Matches))
	}
	if res.Exhausted {
		t.Error("threshold-bounded prefix search claims exhaustion with matches left")
	}
	if _, err := d.client.PrefixSearch(ctx, "kw", 0, SearchOptions{}); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := d.client.PrefixSearch(ctx, "  ", All, SearchOptions{}); err == nil {
		t.Error("blank prefix accepted")
	}
}

// TestPrefixEquivalenceMatrix pins byte-identical prefix answers across
// {BatchWaves on/off} × {CachePolicy hot/fifo}: same matches, same
// order, same depths — wave batching and the cache policy are pure
// transport/serving optimizations. Each deployment also re-runs every
// query with the cache warm: the cached answer must byte-match the
// traversed one.
func TestPrefixEquivalenceMatrix(t *testing.T) {
	objects := prefixCorpus()
	prefixes := []string{"kw", "kw1", "kw12", "ot", "zz"}
	type combo struct {
		name   string
		mode   BatchMode
		policy string
	}
	combos := []combo{
		{"batch-hot", BatchOn, CachePolicyHot},
		{"batch-fifo", BatchOn, CachePolicyFIFO},
		{"nobatch-hot", BatchOff, CachePolicyHot},
		{"nobatch-fifo", BatchOff, CachePolicyFIFO},
	}
	ctx := context.Background()
	var baseline map[string][]Match
	for _, cb := range combos {
		d := newPrefixDeployment(t, 8, 4, 64, cb.mode, cb.policy)
		insertAll(t, d, objects)
		got := make(map[string][]Match, len(prefixes))
		for _, p := range prefixes {
			res, err := d.client.PrefixSearch(ctx, p, All, SearchOptions{Order: ParallelLevels})
			if err != nil {
				t.Fatalf("%s: PrefixSearch(%q): %v", cb.name, p, err)
			}
			got[p] = res.Matches
			warm, err := d.client.PrefixSearch(ctx, p, All, SearchOptions{Order: ParallelLevels})
			if err != nil {
				t.Fatalf("%s: warm PrefixSearch(%q): %v", cb.name, p, err)
			}
			if !warm.Stats.CacheHit {
				t.Errorf("%s: second PrefixSearch(%q) missed the cache", cb.name, p)
			}
			if !reflect.DeepEqual(warm.Matches, res.Matches) {
				t.Errorf("%s: cached PrefixSearch(%q) diverged:\n cold %v\n warm %v",
					cb.name, p, res.Matches, warm.Matches)
			}
		}
		if baseline == nil {
			baseline = got
			continue
		}
		for _, p := range prefixes {
			if !reflect.DeepEqual(got[p], baseline[p]) {
				t.Errorf("%s: PrefixSearch(%q) diverged from %s baseline:\n got %v\nwant %v",
					cb.name, p, combos[0].name, got[p], baseline[p])
			}
		}
	}
}

// TestPrefixSupersetCacheNoCollision: a prefix query and a superset
// query over the same query string must never serve each other's
// cached answers — the cache key carries the query class.
func TestPrefixSupersetCacheNoCollision(t *testing.T) {
	for _, policy := range []string{CachePolicyHot, CachePolicyFIFO} {
		t.Run(policy, func(t *testing.T) {
			d := newPrefixDeployment(t, 8, 1, 64, BatchAuto, policy)
			objects := []Object{
				obj("exact", "kw"),
				obj("longer", "kwx"),
			}
			insertAll(t, d, objects)
			ctx := context.Background()

			sup, err := d.client.SupersetSearch(ctx, keyword.NewSet("kw"), All, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got := matchIDs(sup.Matches); !equalStrings(got, []string{"exact"}) {
				t.Fatalf("superset(kw) = %v, want [exact]", got)
			}

			// The prefix query uses the same query string "kw" but must
			// not see the superset entry: its answer includes "longer".
			pre, err := d.client.PrefixSearch(ctx, "kw", All, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if pre.Stats.CacheHit {
				t.Error("first prefix query hit the superset query's cache entry")
			}
			if got := matchIDs(pre.Matches); !equalStrings(got, []string{"exact", "longer"}) {
				t.Fatalf("prefix(kw) = %v, want [exact longer]", got)
			}

			// And vice versa: the cached prefix entry must not answer a
			// later superset query.
			sup2, err := d.client.SupersetSearch(ctx, keyword.NewSet("kw"), All, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got := matchIDs(sup2.Matches); !equalStrings(got, []string{"exact"}) {
				t.Fatalf("superset(kw) after prefix caching = %v, want [exact]", got)
			}

			// Same prefix under a different dimension mask is a different
			// multicast: it may not reuse the full-mask cache entry.
			masked, err := d.client.PrefixSearchMasked(ctx, "kw", 1, All, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if masked.Stats.CacheHit {
				t.Error("masked prefix query hit the full-mask cache entry")
			}
		})
	}
}

// TestPrefixSoftOnlyBounced: prefix queries are coordinator work, not
// soft-replica work — a SoftOnly prefix query must bounce with
// errCodeNoSoftCopy (the client then falls back to the owner), never
// run the multicast on a replica.
func TestPrefixSoftOnlyBounced(t *testing.T) {
	d := newDeployment(t, 6, 1, 0)
	ctx := context.Background()
	raw, err := d.net.Send(ctx, d.addrs[0], msgTQuery{
		Instance: DefaultInstance, Dim: 6, Vertex: 1, QueryKey: "kw",
		Class: ClassPrefix, Threshold: All, SoftOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := raw.(respTQuery)
	if !ok {
		t.Fatalf("unexpected response %T", raw)
	}
	if resp.ErrCode != errCodeNoSoftCopy {
		t.Fatalf("SoftOnly prefix query answered %d, want errCodeNoSoftCopy", resp.ErrCode)
	}
}

// TestPrefixInvalidation: a mutation that adds a new prefix match must
// invalidate the cached prefix entry, like superset entries.
func TestPrefixInvalidation(t *testing.T) {
	d := newPrefixDeployment(t, 8, 1, 64, BatchAuto, CachePolicyHot)
	insertAll(t, d, []Object{obj("one", "kwa")})
	ctx := context.Background()

	res, err := d.client.PrefixSearch(ctx, "kw", All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := matchIDs(res.Matches); !equalStrings(got, []string{"one"}) {
		t.Fatalf("prefix(kw) = %v", got)
	}
	if _, err := d.client.Insert(ctx, obj("two", "kwb")); err != nil {
		t.Fatal(err)
	}
	res, err = d.client.PrefixSearch(ctx, "kw", All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHit {
		t.Error("prefix cache entry survived an insert matching the prefix")
	}
	if got := matchIDs(res.Matches); !equalStrings(got, []string{"one", "two"}) {
		t.Fatalf("prefix(kw) after insert = %v, want [one two]", got)
	}
}

// TestPrefixDoubleReadMergesOldOwner: a prefix-class scan during an
// open migration window must merge the old owner's view exactly like
// pin and superset scans — byte-identical to the union table.
func TestPrefixDoubleReadMergesOldOwner(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	src := newMigrateServer(t, net, "", MigrationConfig{})
	if _, err := net.Bind("src", src.Handler); err != nil {
		t.Fatal(err)
	}
	dst := newMigrateServer(t, net, "", MigrationConfig{ChunkEntries: 1, Throttle: time.Hour})
	union := newMigrateServer(t, net, "", MigrationConfig{})

	const inst = "inst-0"
	v := hypercube.Vertex(3)
	sets := []keyword.Set{
		keyword.NewSet("kwa", "shared"),
		keyword.NewSet("kwb", "shared"),
		keyword.NewSet("other", "shared"),
	}
	for i := 0; i < 6; i++ {
		set := sets[i%len(sets)]
		id := fmt.Sprintf("src-%d", i)
		if err := src.insertEntry(inst, v, set.Key(), id); err != nil {
			t.Fatal(err)
		}
		if err := union.insertEntry(inst, v, set.Key(), id); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.insertEntry(inst, v, sets[0].Key(), "local-0"); err != nil {
		t.Fatal(err)
	}
	if err := union.insertEntry(inst, v, sets[0].Key(), "local-0"); err != nil {
		t.Fatal(err)
	}

	dst.EnqueueMigration("src", wholeRingNew, wholeRingOwner)
	waitFor(t, 5*time.Second, func() bool { return dst.MigrationStats().Chunks >= 1 }, "first chunk")

	ctx := context.Background()
	pred := predFor(ClassPrefix, "kw")
	for _, win := range []struct{ skip, limit int }{{0, -1}, {0, 2}, {1, 2}} {
		got, gotRem := dst.scanVertexRead(ctx, 6, inst, v, v, pred, win.skip, win.limit)
		want, wantRem := union.scanVertex(inst, v, v, pred, win.skip, win.limit)
		if !reflect.DeepEqual(got, want) || gotRem != wantRem {
			t.Fatalf("prefix scan window %+v during migration:\n got %v (rem %d)\nwant %v (rem %d)",
				win, got, gotRem, want, wantRem)
		}
	}
	if st := dst.MigrationStats(); st.DoubleReads == 0 {
		t.Fatal("no double-reads counted despite open window")
	}
}

// TestSearchClassCounter: the per-class telemetry counter moves for
// each query class exactly once per coordinator-side query.
func TestSearchClassCounter(t *testing.T) {
	net := inmem.New(1)
	t.Cleanup(func() { net.Close() })
	reg := telemetry.New(16)
	hasher := keyword.MustNewHasher(6, 42)
	resolver := FuncResolver(func(v hypercube.Vertex) transport.Addr { return "one" })
	srv, err := NewServer(ServerConfig{Hasher: hasher, Resolver: resolver, Sender: net, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Bind("one", srv.Handler); err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(hasher, resolver, net)
	if err != nil {
		t.Fatal(err)
	}
	d := &deployment{net: net, hasher: hasher, servers: []*Server{srv}, addrs: []transport.Addr{"one"}, client: client}
	ctx := context.Background()
	insertAll(t, d, []Object{obj("o", "kw", "x")})

	if _, err := d.client.SupersetSearch(ctx, keyword.NewSet("kw"), All, SearchOptions{NoCache: true}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.client.PinSearch(ctx, keyword.NewSet("kw", "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.PrefixSearch(ctx, "k", All, SearchOptions{NoCache: true}); err != nil {
		t.Fatal(err)
	}
	classes := reg.CounterVec("core_search_class_total", "class")
	for _, class := range []string{"superset", "pin", "prefix"} {
		if got := classes.With(class).Value(); got == 0 {
			t.Errorf("core_search_class_total{%s} = 0 after a %s query", class, class)
		}
	}
}
