package core

import (
	"context"
	"fmt"
	"time"

	"github.com/p2pkeyword/keysearch/internal/hypercube"
)

// runPrefixSearch is the coordinator side of a prefix query: a
// constrained multicast over every vertex that intersects the query's
// dimension mask M. The candidate set {v : v ∧ M ≠ 0} is partitioned
// into one SBT branch per dimension d ∈ M — rooted at e_d, excluding
// the masked dimensions below d — so each candidate vertex is visited
// by exactly one branch (its lowest masked dimension) and the existing
// traversal, wave-batching, resilience, and double-read machinery run
// unchanged inside every branch. The receiving server owns e_d0 (the
// lowest masked dimension); later branch roots are remote vertices
// visited like any other frontier node.
func (s *Server) runPrefixSearch(ctx context.Context, msg msgTQuery) (respTQuery, error) {
	if msg.QueryKey == "" {
		return respTQuery{}, ErrEmptyQuery
	}
	if msg.Threshold <= 0 {
		return respTQuery{}, fmt.Errorf("core: threshold %d must be positive", msg.Threshold)
	}
	if msg.Cumulative || msg.SessionID != 0 {
		return respTQuery{}, fmt.Errorf("core: prefix search does not support cumulative sessions")
	}
	order := msg.Order
	if order == 0 {
		order = TopDown
	}
	if !order.valid() {
		return respTQuery{}, fmt.Errorf("core: invalid traversal order %d", order)
	}
	cube, err := s.cubeFor(msg.Dim)
	if err != nil {
		return respTQuery{}, err
	}
	full := hypercube.Vertex(1)<<uint(cube.Dim()) - 1
	mask := hypercube.Vertex(msg.DimMask) & full
	if mask == 0 {
		mask = full
	}
	coordRoot := hypercube.Vertex(msg.Vertex)
	pred := predFor(ClassPrefix, msg.QueryKey)
	pred.mask = uint64(mask)

	instrumented := s.cfg.Telemetry != nil
	var startedAt time.Time
	if instrumented {
		startedAt = time.Now()
	}

	// Same one-hit-or-one-miss accounting contract as runSearch: every
	// consultation of an enabled cache counts exactly once.
	if !msg.NoCache {
		if matches, exhausted, ok := s.cache.get(msg.Instance, pred, msg.Threshold); ok {
			s.met.cacheHits.Inc()
			resp := respTQuery{Matches: matches, Exhausted: exhausted, CacheHit: true}
			if instrumented {
				s.recordSearchSpan("prefix-search", msg, order, coordRoot, resp, startedAt, time.Since(startedAt).Nanoseconds(), nil)
			}
			return resp, nil
		} else if s.cache.enabled() {
			s.met.cacheMisses.Inc()
		}
	}

	collectSteps := msg.WantTrace
	if instrumented && !collectSteps {
		collectSteps = (s.searchSeq.Add(1)-1)%spanStepSampleEvery == 0
	}
	var trace *[]TraceStep
	if collectSteps {
		buf := make([]TraceStep, 0, 64)
		trace = &buf
	}

	var (
		collected []Match
		nodes     int
		msgs      int
		failed    int
		rounds    int
		frames    int
	)
	need := msg.Threshold
	exhausted := true
	for d := 0; d < cube.Dim(); d++ {
		bit := hypercube.Vertex(1) << uint(d)
		if mask&bit == 0 {
			continue
		}
		if need <= 0 {
			// Threshold met with branches left unexplored: the answer is
			// a correct prefix of the multicast, but not all of it.
			exhausted = false
			break
		}
		sess, err := newSession(cube, msg.Instance, pred, bit, order)
		if err != nil {
			return respTQuery{}, err
		}
		sess.exclude = mask & (bit - 1)
		sess.rootLocal = bit == coordRoot
		sess.selfVertex = coordRoot
		if sess.exclude != 0 {
			// BottomUp sessions pre-enumerate the branch subcube; drop
			// the vertices an earlier branch owns.
			sess.work = filterUnits(sess.work, sess.exclude)
		}
		var (
			bm                                   []Match
			bn, bmsgs, bfailed, brounds, bframes int
		)
		if order == ParallelLevels {
			bm, bn, bmsgs, bfailed, brounds, bframes = s.traverseParallel(ctx, sess, bit, need, trace)
		} else {
			bm, bn, bmsgs, bfailed, bframes = s.traverseSequential(ctx, sess, bit, need, trace)
			brounds = bn
		}
		collected = append(collected, bm...)
		nodes += bn
		msgs += bmsgs
		failed += bfailed
		rounds += brounds
		frames += bframes
		if need != All {
			// Keep the All sentinel intact so every branch's traversal
			// still recognizes the exhaustive (mega-wave-eligible) case.
			need -= len(bm)
		}
		if len(sess.work) > 0 {
			exhausted = false
		}
		if err := ctx.Err(); err != nil {
			s.met.searchAbandoned.Inc()
			return respTQuery{}, fmt.Errorf("core: search abandoned: %w", err)
		}
	}

	resp := respTQuery{
		Matches:     collected,
		Exhausted:   exhausted,
		SubNodes:    nodes,
		SubMsgs:     msgs,
		FailedNodes: failed,
		PhysFrames:  frames,
		Rounds:      rounds,
	}
	if msg.WantTrace && trace != nil {
		resp.Trace = *trace
	}
	if !msg.NoCache && failed == 0 {
		s.cache.put(msg.Instance, pred, collected, exhausted)
	}
	if instrumented {
		elapsedNS := time.Since(startedAt).Nanoseconds()
		s.met.searchNodes.Add(uint64(nodes))
		s.met.searchMsgs.Add(uint64(msgs))
		s.met.physFrames.Add(uint64(frames))
		s.met.searchFailed.Add(uint64(failed))
		s.met.searchRounds.Add(uint64(rounds))
		s.met.searchMatches.Add(uint64(len(collected)))
		s.met.searchLatency.Observe(elapsedNS)
		var steps []TraceStep
		if trace != nil {
			steps = *trace
		}
		s.recordSearchSpan("prefix-search", msg, order, coordRoot, resp, startedAt, elapsedNS, steps)
	}
	return resp, nil
}

// runPinQuery answers a ClassPin msgTQuery: the Section 3.4 exact-set
// lookup, now flowing through the unified dispatch path. The scan goes
// through scanVertexRead, so the double-read migration window covers
// pin queries exactly like the other classes; matches come back in
// (SetKey, ObjectID) order, which for a single set key is object-ID
// order — byte-identical to the legacy msgPinQuery answer.
func (s *Server) runPinQuery(ctx context.Context, msg msgTQuery) (respTQuery, error) {
	if msg.Cumulative || msg.SessionID != 0 {
		return respTQuery{}, fmt.Errorf("core: pin query does not support cumulative sessions")
	}
	cube, err := s.cubeFor(msg.Dim)
	if err != nil {
		return respTQuery{}, err
	}
	pred := predFor(ClassPin, msg.QueryKey)
	v := hypercube.Vertex(msg.Vertex)
	matches, _ := s.scanVertexRead(ctx, cube.Dim(), msg.Instance, v, v, pred, 0, -1)
	return respTQuery{Matches: matches, Exhausted: true, SubNodes: 1, Rounds: 1}, nil
}
