package core

import (
	"context"
	"strconv"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/keyword"
)

func TestCacheHitServesRepeatedQuery(t *testing.T) {
	d := newDeployment(t, 9, 4, 1000)
	ctx := context.Background()
	corpus(t, d, 200, 51)
	q := keyword.NewSet("isp")

	first, err := d.client.SupersetSearch(ctx, q, 5, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CacheHit {
		t.Error("first query claimed a cache hit")
	}
	second, err := d.client.SupersetSearch(ctx, q, 5, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.CacheHit {
		t.Fatal("second identical query missed the cache")
	}
	if second.Stats.NodesContacted != 1 {
		t.Errorf("cache hit contacted %d nodes, want 1 (root only)", second.Stats.NodesContacted)
	}
	if !equalStrings(matchIDs(second.Matches), matchIDs(first.Matches)) {
		t.Error("cached result differs from original")
	}
}

func TestCacheServesSmallerThreshold(t *testing.T) {
	d := newDeployment(t, 9, 4, 1000)
	ctx := context.Background()
	corpus(t, d, 200, 53)
	q := keyword.NewSet("news")
	if _, err := d.client.SupersetSearch(ctx, q, 10, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := d.client.SupersetSearch(ctx, q, 3, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.CacheHit {
		t.Error("smaller threshold should be served from cache")
	}
	if len(res.Matches) != 3 {
		t.Errorf("got %d matches, want 3", len(res.Matches))
	}
}

func TestCacheMissOnLargerThreshold(t *testing.T) {
	d := newDeployment(t, 9, 4, 1000)
	ctx := context.Background()
	objects := corpus(t, d, 200, 57)
	q := keyword.NewSet("news")
	all := bruteForce(objects, q)
	if len(all) < 6 {
		t.Fatalf("sparse corpus: %d", len(all))
	}
	if _, err := d.client.SupersetSearch(ctx, q, 3, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := d.client.SupersetSearch(ctx, q, 5, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHit {
		t.Error("larger threshold served from a partial cache entry")
	}
	if len(res.Matches) != 5 {
		t.Errorf("got %d matches, want 5", len(res.Matches))
	}
}

func TestCacheExhaustedEntryServesAnyThreshold(t *testing.T) {
	d := newDeployment(t, 9, 4, 1000)
	ctx := context.Background()
	objects := corpus(t, d, 200, 59)
	q := keyword.NewSet("mp3")
	all := bruteForce(objects, q)
	if _, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.CacheHit {
		t.Error("exhausted cached entry should satisfy any threshold")
	}
	if len(res.Matches) != len(all) {
		t.Errorf("got %d, want %d", len(res.Matches), len(all))
	}
	if !res.Exhausted {
		t.Error("cached exhaustive result lost Exhausted flag")
	}
}

func TestCacheInvalidatedByInsert(t *testing.T) {
	d := newDeployment(t, 9, 4, 1000)
	ctx := context.Background()
	q := keyword.NewSet("cachetest")
	if _, err := d.client.Insert(ctx, obj("a", "cachetest", "one")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{}); err != nil {
		t.Fatal(err)
	}

	// New matching object. Its index entry lands on some node; the
	// ROOT's cached result must be invalidated only if the entry lives
	// on the root server. To make the test deterministic, insert an
	// object with exactly the query keyword set (which is always
	// indexed at the root vertex itself).
	if _, err := d.client.Insert(ctx, obj("b", "cachetest")); err != nil {
		t.Fatal(err)
	}
	res, err := d.client.SupersetSearch(ctx, q, All, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := matchIDs(res.Matches)
	if !equalStrings(got, []string{"a", "b"}) {
		t.Errorf("after insert, matches = %v, want [a b]", got)
	}
}

func TestCacheBypass(t *testing.T) {
	d := newDeployment(t, 9, 4, 1000)
	ctx := context.Background()
	corpus(t, d, 100, 61)
	q := keyword.NewSet("isp")
	if _, err := d.client.SupersetSearch(ctx, q, 5, SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := d.client.SupersetSearch(ctx, q, 5, SearchOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHit {
		t.Error("NoCache query reported a cache hit")
	}
}

func TestFIFOCacheEviction(t *testing.T) {
	c := newFIFOCache(10)
	mk := func(n int, tag string) []Match {
		ms := make([]Match, n)
		for i := range ms {
			ms[i] = Match{ObjectID: tag + strconv.Itoa(i)}
		}
		return ms
	}
	c.put("main", supersetPred("q1", keyword.NewSet("a")), mk(4, "a"), true)
	c.put("main", supersetPred("q2", keyword.NewSet("b")), mk(4, "b"), true)
	c.put("main", supersetPred("q3", keyword.NewSet("c")), mk(4, "c"), true) // evicts q1
	if _, _, ok := c.get("main", supersetPred("q1", keyword.Set{}), 1); ok {
		t.Error("q1 should have been evicted (FIFO)")
	}
	if _, _, ok := c.get("main", supersetPred("q2", keyword.Set{}), 1); !ok {
		t.Error("q2 should survive")
	}
	if _, _, ok := c.get("main", supersetPred("q3", keyword.Set{}), 1); !ok {
		t.Error("q3 should survive")
	}
}

func TestFIFOCacheOversizedResultNotStored(t *testing.T) {
	c := newFIFOCache(3)
	ms := make([]Match, 5)
	c.put("main", supersetPred("big", keyword.NewSet("a")), ms, true)
	if _, _, ok := c.get("main", supersetPred("big", keyword.Set{}), 1); ok {
		t.Error("oversized result stored")
	}
}

func TestFIFOCacheDisabled(t *testing.T) {
	c := newFIFOCache(0)
	c.put("main", supersetPred("q", keyword.NewSet("a")), []Match{{ObjectID: "x"}}, true)
	if _, _, ok := c.get("main", supersetPred("q", keyword.Set{}), 1); ok {
		t.Error("disabled cache returned a hit")
	}
}

func TestFIFOCacheInvalidateSubsets(t *testing.T) {
	c := newFIFOCache(100)
	c.put("main", supersetPred("qa", keyword.NewSet("a")), []Match{{ObjectID: "1"}}, true)
	c.put("main", supersetPred("qab", keyword.NewSet("a", "b")), []Match{{ObjectID: "2"}}, true)
	c.put("main", supersetPred("qc", keyword.NewSet("c")), []Match{{ObjectID: "3"}}, true)
	// An index change under {a, b, x} affects queries {a} and {a,b}
	// but not {c}.
	c.invalidateSubsetsOf("main", keyword.NewSet("a", "b", "x"))
	if _, _, ok := c.get("main", supersetPred("qa", keyword.Set{}), 1); ok {
		t.Error("query {a} should be invalidated")
	}
	if _, _, ok := c.get("main", supersetPred("qab", keyword.Set{}), 1); ok {
		t.Error("query {a,b} should be invalidated")
	}
	if _, _, ok := c.get("main", supersetPred("qc", keyword.Set{}), 1); !ok {
		t.Error("query {c} should survive")
	}
	if c.len() != 1 {
		t.Errorf("cache len = %d, want 1", c.len())
	}
}

// Regression for the per-instance secondary index: an invalidation
// event in one index instance must only scan — and only drop — that
// instance's entries; another instance caching the same query key is
// untouched.
func TestFIFOCacheInvalidateInstanceScoped(t *testing.T) {
	c := newFIFOCache(100)
	c.put("main", supersetPred("qa", keyword.NewSet("a")), []Match{{ObjectID: "m"}}, true)
	c.put("main-replica-1", supersetPred("qa", keyword.NewSet("a")), []Match{{ObjectID: "r"}}, true)
	c.invalidateSubsetsOf("main", keyword.NewSet("a", "b"))
	if _, _, ok := c.get("main", supersetPred("qa", keyword.Set{}), 1); ok {
		t.Error("main-instance entry should be invalidated")
	}
	got, _, ok := c.get("main-replica-1", supersetPred("qa", keyword.Set{}), 1)
	if !ok {
		t.Fatal("replica-instance entry wrongly invalidated")
	}
	if len(got) != 1 || got[0].ObjectID != "r" {
		t.Errorf("replica-instance entry corrupted: %v", got)
	}
	// And the reverse event leaves main's (already gone) state alone
	// while dropping the replica's.
	c.invalidateSubsetsOf("main-replica-1", keyword.NewSet("a"))
	if c.len() != 0 {
		t.Errorf("cache len = %d after both invalidations, want 0", c.len())
	}
}

func TestFIFOCacheReplaceKeepsUnits(t *testing.T) {
	c := newFIFOCache(10)
	c.put("main", supersetPred("q", keyword.NewSet("a")), make([]Match, 6), false)
	c.put("main", supersetPred("q", keyword.NewSet("a")), make([]Match, 2), true)
	if c.units != 2 {
		t.Errorf("units = %d after replace, want 2", c.units)
	}
	got, exhausted, ok := c.get("main", supersetPred("q", keyword.Set{}), 2)
	if !ok || !exhausted || len(got) != 2 {
		t.Errorf("get after replace = %d matches, exhausted=%v, ok=%v", len(got), exhausted, ok)
	}
}

func TestCacheHitCountersAdvance(t *testing.T) {
	d := newDeployment(t, 9, 2, 1000)
	ctx := context.Background()
	corpus(t, d, 100, 63)
	q := keyword.NewSet("isp")
	d.client.SupersetSearch(ctx, q, 5, SearchOptions{})
	d.client.SupersetSearch(ctx, q, 5, SearchOptions{})
	rootSrv := d.serverFor(d.hasher.Vertex(q))
	hits, misses := rootSrv.CacheStats()
	if hits == 0 {
		t.Error("no cache hits recorded")
	}
	if misses == 0 {
		t.Error("no cache misses recorded")
	}
}
