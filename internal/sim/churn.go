package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/p2pkeyword/keysearch/internal/transport"
)

// ChurnConfig bounds a generated membership-churn schedule: joins of
// brand-new peers and graceful leaves of existing ones, interleaved
// with a query run. Like ChaosConfig it is pure data — one seed and
// config always reproduce the identical schedule.
type ChurnConfig struct {
	// Queries is the length of the query run the schedule spans; every
	// event lands at a boundary in [1, Queries) so at least one query
	// observes the pre-churn fleet.
	Queries int
	// Joins is the number of FaultJoin events. Joined peers are named
	// JoinerAddr(i) for i in [0, Joins); replayers create them on
	// demand.
	Joins int
	// Leaves is the number of FaultLeave events, drawn without
	// replacement from Leavable (typically the base fleet minus the
	// seed/anchor peer).
	Leaves int
	// Leavable is the population graceful leaves are drawn from.
	Leavable []transport.Addr
}

// JoinerAddr names the i-th joining peer of a churn schedule, so the
// replayer and any baseline reconstruction agree on addresses (and
// therefore ring IDs — address hashing decides vertex placement).
func JoinerAddr(i int) transport.Addr {
	return transport.Addr(fmt.Sprintf("churn-join-%d", i))
}

// GenerateChurn derives a membership-churn schedule from a single
// seed. Events are sorted by query boundary with same-boundary order
// deterministic, exactly like GenerateChaos.
func GenerateChurn(seed int64, cfg ChurnConfig) (ChaosSchedule, error) {
	if cfg.Queries < 2 {
		return ChaosSchedule{}, fmt.Errorf("sim: churn schedule needs a query span of at least 2")
	}
	if cfg.Leaves > len(cfg.Leavable) {
		return ChaosSchedule{}, fmt.Errorf("sim: %d leaves exceed %d leavable peers", cfg.Leaves, len(cfg.Leavable))
	}
	rng := rand.New(rand.NewSource(seed))
	var events []FaultEvent
	for i := 0; i < cfg.Joins; i++ {
		events = append(events, FaultEvent{
			AtQuery: 1 + rng.Intn(cfg.Queries-1),
			Kind:    FaultJoin,
			Node:    JoinerAddr(i),
		})
	}
	for _, vi := range pickDistinct(rng, len(cfg.Leavable), cfg.Leaves) {
		events = append(events, FaultEvent{
			AtQuery: 1 + rng.Intn(cfg.Queries-1),
			Kind:    FaultLeave,
			Node:    cfg.Leavable[vi],
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].AtQuery < events[j].AtQuery })
	return ChaosSchedule{Seed: seed, Events: events}, nil
}

// Membership folds a churn schedule over a base fleet and returns the
// final membership in event order: base peers that never leave,
// followed by joiners that never leave. Baseline reconstructions use
// it to build the static fleet the churned one must converge to.
func (s ChaosSchedule) Membership(base []transport.Addr) []transport.Addr {
	gone := make(map[transport.Addr]bool)
	joined := make([]transport.Addr, 0)
	for _, ev := range s.Events {
		switch ev.Kind {
		case FaultJoin:
			joined = append(joined, ev.Node)
		case FaultLeave:
			gone[ev.Node] = true
		}
	}
	out := make([]transport.Addr, 0, len(base)+len(joined))
	for _, a := range base {
		if !gone[a] {
			out = append(out, a)
		}
	}
	for _, a := range joined {
		if !gone[a] {
			out = append(out, a)
		}
	}
	return out
}
