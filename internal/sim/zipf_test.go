package sim

import (
	"context"
	"reflect"
	"testing"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
)

// zipfLog generates the small Zipf-popular query log both smoke tests
// replay.
func zipfLog(t testing.TB, c *corpus.Corpus) *corpus.QueryLog {
	t.Helper()
	log, err := corpus.GenerateQueryLog(c, corpus.QueryLogConfig{
		Queries:            1200,
		Templates:          150,
		Seed:               11,
		MaxTemplateResults: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// TestZipfSmokeByteIdentical replays a Zipf query log against a fleet
// with the full hot-vertex layer on (popularity cache, refinement
// reuse, soft replication, client spreading) and against a cache-off
// fleet, asserting every answer is byte-identical — the tentpole
// correctness contract: the layer must be invisible in the bytes.
func TestZipfSmokeByteIdentical(t *testing.T) {
	c := testCorpus(t, 4000)
	log := zipfLog(t, c)

	off, err := NewCustomDeployment(DeployConfig{R: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	hot, err := NewCustomDeployment(DeployConfig{
		R:                   6,
		CacheCapacity:       400,
		CachePolicy:         core.CachePolicyHot,
		CacheTargetHit:      0.5,
		HotReplicas:         2,
		HotPromoteThreshold: 8,
		HotSpread:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hot.Close()
	if err := off.InsertCorpus(c); err != nil {
		t.Fatal(err)
	}
	if err := hot.InsertCorpus(c); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var hits, softServes, refineHits, counted int
	for _, q := range log.Queries() {
		total := log.ResultSize(q.Template)
		if total == 0 {
			continue
		}
		counted++
		want, err := off.Client.SupersetSearch(ctx, q.Keywords, total, core.SearchOptions{})
		if err != nil {
			t.Fatalf("cache-off query %v: %v", q.Keywords, err)
		}
		got, err := hot.Client.SupersetSearch(ctx, q.Keywords, total, core.SearchOptions{})
		if err != nil {
			t.Fatalf("hot query %v: %v", q.Keywords, err)
		}
		if !reflect.DeepEqual(got.Matches, want.Matches) || got.Exhausted != want.Exhausted {
			t.Fatalf("query %v answers diverge (cacheHit=%v refineHit=%v softServed=%v)",
				q.Keywords, got.Stats.CacheHit, got.Stats.RefineHit, got.Stats.SoftServed)
		}
		if got.Stats.CacheHit {
			hits++
		}
		if got.Stats.SoftServed {
			softServes++
		}
		if got.Stats.RefineHit {
			refineHits++
		}
	}
	if counted == 0 {
		t.Fatal("no result-bearing queries in the log")
	}
	// The layer must actually have engaged for the comparison to mean
	// anything: the Zipf head guarantees repeats, repeats guarantee
	// cache hits and promotions.
	if hits == 0 {
		t.Error("hot fleet recorded no cache hits over a Zipf log")
	}
	if softServes == 0 {
		t.Error("no query was served by a soft replica despite spreading")
	}

	// Cross-client refinement reuse rides the same byte-identity bar:
	// derive a refined answer from a cached exhausted ancestor and
	// compare against the cache-off traversal.
	refined := pickRefinable(t, log)
	base := keyword.NewSet(refined.Words()[0])
	if _, err := hot.Client.SupersetSearch(ctx, base, core.All, core.SearchOptions{}); err != nil {
		t.Fatal(err)
	}
	rs, err := hot.Client.RefineSearch(ctx, base, refined, core.All, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Stats.RefineHit {
		t.Fatal("refinement fell back to a traversal despite an exhausted cached ancestor")
	}
	want, err := off.Client.SupersetSearch(ctx, refined, core.All, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs.Matches, want.Matches) {
		t.Errorf("derived refinement differs from the cache-off traversal for %v", refined)
	}
	t.Logf("zipf smoke: %d queries, %d cache hits, %d soft serves, %d in-search refine hits",
		counted, hits, softServes, refineHits)
}

// pickRefinable returns a multi-word template from the log (refinement
// needs a proper superset of a one-word base).
func pickRefinable(t *testing.T, log *corpus.QueryLog) keyword.Set {
	t.Helper()
	for _, tpl := range log.Templates() {
		if tpl.Len() >= 2 {
			return tpl
		}
	}
	t.Skip("no multi-word template in the log")
	return keyword.Set{}
}

// TestZipfSmokeAccounting replays the log on an instrumented hot fleet
// and checks the cache-hit accounting identities the BENCH fields rely
// on: every counted query consults exactly one server's result cache
// (hits+misses == queries, fleet-wide), serves exactly one root
// T_QUERY and one search span, and the soft-serve counter reconciles
// with the client's own view.
func TestZipfSmokeAccounting(t *testing.T) {
	c := testCorpus(t, 4000)
	log := zipfLog(t, c)

	reg := telemetry.New(64)
	d, err := NewCustomDeployment(DeployConfig{
		R:                   6,
		CacheCapacity:       400,
		CachePolicy:         core.CachePolicyHot,
		HotReplicas:         2,
		HotPromoteThreshold: 8,
		HotSpread:           true,
		Telemetry:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.InsertCorpus(c); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var counted, clientHits, clientSoft, clientRefine int
	for _, q := range log.Queries() {
		total := log.ResultSize(q.Template)
		if total == 0 {
			continue
		}
		res, err := d.Client.SupersetSearch(ctx, q.Keywords, total, core.SearchOptions{})
		if err != nil {
			t.Fatalf("query %v: %v", q.Keywords, err)
		}
		counted++
		if res.Stats.CacheHit {
			clientHits++
		}
		if res.Stats.SoftServed {
			clientSoft++
		}
		if res.Stats.RefineHit {
			clientRefine++
		}
	}

	snap := reg.Snapshot()
	hits := snap.Counters["core_cache_hits_total"]
	misses := snap.Counters["core_cache_misses_total"]
	if hits+misses != uint64(counted) {
		t.Errorf("cache consultations %d+%d != %d replayed queries", hits, misses, counted)
	}
	if hits != uint64(clientHits) {
		t.Errorf("telemetry hits %d != client-observed hits %d", hits, clientHits)
	}
	if ops := snap.Counters[`core_ops_total{op="superset-search"}`]; ops != uint64(counted) {
		t.Errorf("superset-search ops = %d, want %d", ops, counted)
	}
	if snap.SpansTotal != uint64(counted) {
		t.Errorf("spans recorded = %d, want %d", snap.SpansTotal, counted)
	}
	if soft := snap.Counters["core_soft_serves_total"]; soft != uint64(clientSoft) {
		t.Errorf("soft serves %d != client-observed %d", soft, clientSoft)
	}
	if rh := snap.Counters["core_refine_hits_total"]; rh != uint64(clientRefine) {
		t.Errorf("refine hits %d != client-observed %d", rh, clientRefine)
	}
	if hits == 0 || clientSoft == 0 {
		t.Errorf("layer never engaged: hits=%d softServes=%d", hits, clientSoft)
	}

	// The per-server snapshots must decompose the counter totals.
	var snapHits, snapMisses uint64
	for _, s := range d.Servers {
		cs := s.CacheSnapshot()
		snapHits += cs.Hits
		snapMisses += cs.Misses
	}
	if snapHits != hits || snapMisses != misses {
		t.Errorf("CacheSnapshot totals %d/%d != telemetry %d/%d", snapHits, snapMisses, hits, misses)
	}
}
