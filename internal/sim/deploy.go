package sim

import (
	"context"
	"fmt"
	"strconv"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/resilience"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// Deployment is a live in-memory index deployment with one physical
// node per logical hypercube vertex, the configuration of the paper's
// query experiments (Figures 8 and 9).
type Deployment struct {
	R       int
	Net     *inmem.Network
	Hasher  keyword.Hasher
	Servers []*core.Server // indexed by vertex
	Client  *core.Client
	// Telemetry is the registry shared by every node of the deployment
	// (nil for uninstrumented deployments). Because all 2^r servers
	// register their gauges on the one registry, its snapshot reports
	// deployment-wide totals.
	Telemetry *telemetry.Registry
	// Index is the replicated view over all replica clients
	// (Client == Index.Primary()). Nil unless the deployment was built
	// by NewResilientDeployment with replicas > 1.
	Index *core.Replicated
	// Resilience is the policy middleware every client and server sends
	// through. Nil unless the deployment was built with a policy.
	Resilience *resilience.Middleware
}

// NewDeployment builds a 2^r-node deployment. cacheCapacity is the
// per-node FIFO cache size in object-ID units (0 disables caching).
func NewDeployment(r, cacheCapacity int) (*Deployment, error) {
	return NewInstrumentedDeployment(r, cacheCapacity, nil)
}

// NewInstrumentedDeployment is NewDeployment with every node (and the
// in-memory network) wired to reg. A nil reg is equivalent to
// NewDeployment.
func NewInstrumentedDeployment(r, cacheCapacity int, reg *telemetry.Registry) (*Deployment, error) {
	return NewResilientDeployment(r, cacheCapacity, 1, reg, nil)
}

// NewResilientDeployment is the chaos-harness deployment: the same
// one-node-per-vertex fleet, optionally with replicas independent
// index instances (each with its own hash seed, mirroring the Peer
// replica wiring, so a crashed physical node silences different
// keyword sets in each instance) and with every client and root→wave
// send routed through a resilience.Middleware applying pol. replicas
// < 2 disables replication; a nil pol disables the middleware, making
// the deployment identical to NewInstrumentedDeployment.
func NewResilientDeployment(r, cacheCapacity, replicas int, reg *telemetry.Registry, pol *resilience.Policy) (*Deployment, error) {
	if r < 1 || r > 16 {
		return nil, fmt.Errorf("sim: deployment r=%d outside the tractable range [1, 16]", r)
	}
	net := inmem.New(1)
	net.SetTelemetry(reg)

	// Everything above the raw network — servers driving waves, clients
	// issuing queries — sends through the middleware when a policy is
	// given. Binding stays on the raw network either way.
	var sender transport.Sender = net
	var mw *resilience.Middleware
	if pol != nil {
		mw = resilience.Wrap(net, *pol)
		mw.SetReadOnly(core.ReadOnlyMessage)
		mw.SetTelemetry(reg)
		sender = mw
	}

	hasher := keyword.MustNewHasher(r, HashSeed)
	size := 1 << uint(r)
	addrs := make([]transport.Addr, size)
	for v := range addrs {
		addrs[v] = transport.Addr("v" + strconv.Itoa(v))
	}
	resolver := core.FuncResolver(func(v hypercube.Vertex) transport.Addr {
		return addrs[int(v)]
	})
	servers := make([]*core.Server, size)
	for v := range servers {
		srv, err := core.NewServer(core.ServerConfig{
			Hasher:        hasher,
			Resolver:      resolver,
			Sender:        sender,
			CacheCapacity: cacheCapacity,
			Telemetry:     reg,
		})
		if err != nil {
			net.Close()
			return nil, err
		}
		servers[v] = srv
		if _, err := net.Bind(addrs[v], srv.Handler); err != nil {
			net.Close()
			return nil, err
		}
	}

	if replicas < 1 {
		replicas = 1
	}
	// One client per index instance; the shared server fleet hosts every
	// instance's tables (same as a Peer deployment).
	clients := make([]*core.Client, replicas)
	for i := range clients {
		instance, seed := core.DefaultInstance, uint64(HashSeed)
		if i > 0 {
			instance = fmt.Sprintf("%s-replica-%d", core.DefaultInstance, i)
			seed += uint64(i) * 0x9e3779b97f4a7c15
		}
		var err error
		clients[i], err = core.NewInstanceClient(instance, keyword.MustNewHasher(r, seed), resolver, sender)
		if err != nil {
			net.Close()
			return nil, err
		}
	}
	d := &Deployment{
		R: r, Net: net, Hasher: hasher, Servers: servers,
		Client: clients[0], Telemetry: reg, Resilience: mw,
	}
	if replicas > 1 {
		index, err := core.NewReplicated(clients...)
		if err != nil {
			net.Close()
			return nil, err
		}
		index.SetTelemetry(reg)
		d.Index = index
	}
	return d, nil
}

// Close releases the deployment's network.
func (d *Deployment) Close() { d.Net.Close() }

// InsertCorpus indexes every record of the corpus — into every replica
// when the deployment is replicated.
func (d *Deployment) InsertCorpus(c *corpus.Corpus) error {
	ctx := context.Background()
	insert := func(ctx context.Context, obj core.Object) error {
		var err error
		if d.Index != nil {
			_, err = d.Index.Insert(ctx, obj)
		} else {
			_, err = d.Client.Insert(ctx, obj)
		}
		return err
	}
	for _, rec := range c.Records() {
		if err := insert(ctx, core.Object{ID: rec.ID, Keywords: rec.Keywords}); err != nil {
			return fmt.Errorf("index record %s: %w", rec.ID, err)
		}
	}
	return nil
}

// Nodes returns the number of logical (= physical) nodes, 2^r.
func (d *Deployment) Nodes() int { return 1 << uint(d.R) }
