package sim

import (
	"context"
	"fmt"
	"strconv"

	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// Deployment is a live in-memory index deployment with one physical
// node per logical hypercube vertex, the configuration of the paper's
// query experiments (Figures 8 and 9).
type Deployment struct {
	R       int
	Net     *inmem.Network
	Hasher  keyword.Hasher
	Servers []*core.Server // indexed by vertex
	Client  *core.Client
	// Telemetry is the registry shared by every node of the deployment
	// (nil for uninstrumented deployments). Because all 2^r servers
	// register their gauges on the one registry, its snapshot reports
	// deployment-wide totals.
	Telemetry *telemetry.Registry
}

// NewDeployment builds a 2^r-node deployment. cacheCapacity is the
// per-node FIFO cache size in object-ID units (0 disables caching).
func NewDeployment(r, cacheCapacity int) (*Deployment, error) {
	return NewInstrumentedDeployment(r, cacheCapacity, nil)
}

// NewInstrumentedDeployment is NewDeployment with every node (and the
// in-memory network) wired to reg. A nil reg is equivalent to
// NewDeployment.
func NewInstrumentedDeployment(r, cacheCapacity int, reg *telemetry.Registry) (*Deployment, error) {
	if r < 1 || r > 16 {
		return nil, fmt.Errorf("sim: deployment r=%d outside the tractable range [1, 16]", r)
	}
	net := inmem.New(1)
	net.SetTelemetry(reg)
	hasher := keyword.MustNewHasher(r, HashSeed)
	size := 1 << uint(r)
	addrs := make([]transport.Addr, size)
	for v := range addrs {
		addrs[v] = transport.Addr("v" + strconv.Itoa(v))
	}
	resolver := core.FuncResolver(func(v hypercube.Vertex) transport.Addr {
		return addrs[int(v)]
	})
	servers := make([]*core.Server, size)
	for v := range servers {
		srv, err := core.NewServer(core.ServerConfig{
			Hasher:        hasher,
			Resolver:      resolver,
			Sender:        net,
			CacheCapacity: cacheCapacity,
			Telemetry:     reg,
		})
		if err != nil {
			net.Close()
			return nil, err
		}
		servers[v] = srv
		if _, err := net.Bind(addrs[v], srv.Handler); err != nil {
			net.Close()
			return nil, err
		}
	}
	client, err := core.NewClient(hasher, resolver, net)
	if err != nil {
		net.Close()
		return nil, err
	}
	return &Deployment{R: r, Net: net, Hasher: hasher, Servers: servers, Client: client, Telemetry: reg}, nil
}

// Close releases the deployment's network.
func (d *Deployment) Close() { d.Net.Close() }

// InsertCorpus indexes every record of the corpus.
func (d *Deployment) InsertCorpus(c *corpus.Corpus) error {
	ctx := context.Background()
	for _, rec := range c.Records() {
		if _, err := d.Client.Insert(ctx, core.Object{ID: rec.ID, Keywords: rec.Keywords}); err != nil {
			return fmt.Errorf("index record %s: %w", rec.ID, err)
		}
	}
	return nil
}

// Nodes returns the number of logical (= physical) nodes, 2^r.
func (d *Deployment) Nodes() int { return 1 << uint(d.R) }
