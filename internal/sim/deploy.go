package sim

import (
	"context"
	"fmt"
	"path/filepath"
	"strconv"

	"github.com/p2pkeyword/keysearch/internal/admission"
	"github.com/p2pkeyword/keysearch/internal/core"
	"github.com/p2pkeyword/keysearch/internal/corpus"
	"github.com/p2pkeyword/keysearch/internal/hypercube"
	"github.com/p2pkeyword/keysearch/internal/keyword"
	"github.com/p2pkeyword/keysearch/internal/resilience"
	"github.com/p2pkeyword/keysearch/internal/store"
	"github.com/p2pkeyword/keysearch/internal/telemetry"
	"github.com/p2pkeyword/keysearch/internal/transport"
	"github.com/p2pkeyword/keysearch/internal/transport/inmem"
)

// Deployment is a live in-memory index deployment, by default with one
// physical node per logical hypercube vertex — the configuration of
// the paper's query experiments (Figures 8 and 9). DeployConfig.Peers
// folds the 2^r logical vertices onto fewer physical nodes
// round-robin, the realistic regime wave batching targets.
type Deployment struct {
	R       int
	Peers   int // physical nodes (default 2^r: one per vertex)
	Net     *inmem.Network
	Hasher  keyword.Hasher
	Servers []*core.Server   // indexed by peer
	Addrs   []transport.Addr // indexed by peer
	Client  *core.Client
	// Telemetry is the registry shared by every node of the deployment
	// (nil for uninstrumented deployments). Because all 2^r servers
	// register their gauges on the one registry, its snapshot reports
	// deployment-wide totals.
	Telemetry *telemetry.Registry
	// Index is the replicated view over all replica clients
	// (Client == Index.Primary()). Nil unless the deployment was built
	// by NewResilientDeployment with replicas > 1.
	Index *core.Replicated
	// Resilience is the policy middleware every client and server sends
	// through. Nil unless the deployment was built with a policy.
	Resilience *resilience.Middleware
	// Durable reports whether the fleet persists index state
	// (DeployConfig.DataDir was set). The chaos harness switches its
	// crash model on it: a durable crash wipes the node's memory and a
	// recover replays the node's data directory, instead of the
	// memory-survives model used for in-memory fleets.
	Durable bool
}

// NewDeployment builds a 2^r-node deployment. cacheCapacity is the
// per-node FIFO cache size in object-ID units (0 disables caching).
func NewDeployment(r, cacheCapacity int) (*Deployment, error) {
	return NewInstrumentedDeployment(r, cacheCapacity, nil)
}

// NewInstrumentedDeployment is NewDeployment with every node (and the
// in-memory network) wired to reg. A nil reg is equivalent to
// NewDeployment.
func NewInstrumentedDeployment(r, cacheCapacity int, reg *telemetry.Registry) (*Deployment, error) {
	return NewResilientDeployment(r, cacheCapacity, 1, reg, nil)
}

// NewResilientDeployment is the chaos-harness deployment: the same
// one-node-per-vertex fleet, optionally with replicas independent
// index instances (each with its own hash seed, mirroring the Peer
// replica wiring, so a crashed physical node silences different
// keyword sets in each instance) and with every client and root→wave
// send routed through a resilience.Middleware applying pol. replicas
// < 2 disables replication; a nil pol disables the middleware, making
// the deployment identical to NewInstrumentedDeployment.
func NewResilientDeployment(r, cacheCapacity, replicas int, reg *telemetry.Registry, pol *resilience.Policy) (*Deployment, error) {
	return NewCustomDeployment(DeployConfig{
		R: r, CacheCapacity: cacheCapacity, Replicas: replicas,
		Telemetry: reg, Policy: pol,
	})
}

// DeployConfig parameterizes NewCustomDeployment.
type DeployConfig struct {
	// R is the hypercube dimensionality (required, 1–16).
	R int
	// Peers is the number of physical nodes the 2^r logical vertices
	// fold onto, assigned round-robin (vertex v lives on peer v mod
	// Peers). 0 means one peer per vertex.
	Peers int
	// CacheCapacity is the per-node result-cache size in object-ID
	// units.
	CacheCapacity int
	// CachePolicy selects the result-cache policy ("" = hot, or
	// "fifo"). See core.ServerConfig.CachePolicy.
	CachePolicy string
	// CacheTargetHit is the hot policy's auto-tune target hit ratio
	// (0 disables auto-tuning).
	CacheTargetHit float64
	// HotReplicas soft-replicates promoted hot roots onto this many
	// extra peers (0 = disabled). See core.ServerConfig.HotReplicas.
	HotReplicas int
	// HotPromoteThreshold promotes a root after this many fresh
	// queries when HotReplicas > 0 (0 = library default).
	HotPromoteThreshold int
	// HotSpread makes the deployment's clients round-robin one-shot
	// searches for promoted roots across owner + soft replicas.
	HotSpread bool
	// Replicas is the number of independent index instances (< 2
	// disables replication).
	Replicas int
	// Telemetry instruments every node and the network when non-nil.
	Telemetry *telemetry.Registry
	// Policy routes every client and root→wave send through a
	// resilience middleware when non-nil.
	Policy *resilience.Policy
	// Batch selects wave batching for ParallelLevels searches on every
	// server of the fleet (BatchAuto = on).
	Batch core.BatchMode
	// Shards is the per-server lock-stripe count (0 = GOMAXPROCS
	// rounded up to a power of two; 1 = a single read-write lock). See
	// core.ServerConfig.Shards.
	Shards int
	// ScanParallelism bounds each server's batched-scan worker pool
	// (0 = GOMAXPROCS; 1 = sequential). See
	// core.ServerConfig.ScanParallelism.
	ScanParallelism int
	// DataDir, when non-empty, makes every peer durable: peer p logs
	// its index mutations under DataDir/peer-p and recovers them on
	// construction. See core.ServerConfig.DataDir.
	DataDir string
	// Fsync is the WAL flush policy for durable fleets.
	Fsync store.FsyncPolicy
	// SnapshotEvery is the per-peer WAL compaction threshold
	// (0 = library default, negative disables).
	SnapshotEvery int
	// Admission, when non-nil, installs a server-side admission
	// controller with this policy on every peer of the fleet: bounded
	// inflight client-facing requests, deadline-aware queue shedding,
	// and per-client fair queuing. Nil (default) admits everything.
	Admission *admission.Policy
}

// NewCustomDeployment builds an in-memory deployment from cfg.
func NewCustomDeployment(cfg DeployConfig) (*Deployment, error) {
	r := cfg.R
	if r < 1 || r > 16 {
		return nil, fmt.Errorf("sim: deployment r=%d outside the tractable range [1, 16]", r)
	}
	size := 1 << uint(r)
	peers := cfg.Peers
	if peers <= 0 || peers > size {
		peers = size
	}
	net := inmem.New(1)
	net.SetTelemetry(cfg.Telemetry)

	// Everything above the raw network — servers driving waves, clients
	// issuing queries — sends through the middleware when a policy is
	// given. Binding stays on the raw network either way.
	var sender transport.Sender = net
	var mw *resilience.Middleware
	if cfg.Policy != nil {
		mw = resilience.Wrap(net, *cfg.Policy)
		mw.SetReadOnly(core.ReadOnlyMessage)
		mw.SetTelemetry(cfg.Telemetry)
		sender = mw
	}

	hasher := keyword.MustNewHasher(r, HashSeed)
	addrs := make([]transport.Addr, peers)
	for p := range addrs {
		addrs[p] = transport.Addr("v" + strconv.Itoa(p))
	}
	resolver := core.FuncResolver(func(v hypercube.Vertex) transport.Addr {
		return addrs[int(uint64(v)%uint64(peers))]
	})
	servers := make([]*core.Server, peers)
	for p := range servers {
		dataDir := ""
		if cfg.DataDir != "" {
			dataDir = filepath.Join(cfg.DataDir, "peer-"+strconv.Itoa(p))
		}
		srv, err := core.NewServer(core.ServerConfig{
			Hasher:         hasher,
			Resolver:       resolver,
			Sender:         sender,
			CacheCapacity:  cfg.CacheCapacity,
			CachePolicy:    cfg.CachePolicy,
			CacheTargetHit: cfg.CacheTargetHit,
			HotReplicas:    cfg.HotReplicas,
			BatchWaves:     cfg.Batch,

			HotPromoteThreshold: cfg.HotPromoteThreshold,
			Shards:              cfg.Shards,
			ScanParallelism:     cfg.ScanParallelism,
			DataDir:             dataDir,
			Fsync:               cfg.Fsync,
			SnapshotEvery:       cfg.SnapshotEvery,
			Admission:           cfg.Admission,
			Telemetry:           cfg.Telemetry,
		})
		if err != nil {
			for _, s := range servers[:p] {
				s.Close()
			}
			net.Close()
			return nil, err
		}
		servers[p] = srv
		if _, err := net.Bind(addrs[p], srv.Handler); err != nil {
			for _, s := range servers[:p+1] {
				s.Close()
			}
			net.Close()
			return nil, err
		}
	}

	replicas := cfg.Replicas
	if replicas < 1 {
		replicas = 1
	}
	// One client per index instance; the shared server fleet hosts every
	// instance's tables (same as a Peer deployment).
	clients := make([]*core.Client, replicas)
	for i := range clients {
		instance, seed := core.DefaultInstance, uint64(HashSeed)
		if i > 0 {
			instance = fmt.Sprintf("%s-replica-%d", core.DefaultInstance, i)
			seed += uint64(i) * 0x9e3779b97f4a7c15
		}
		var err error
		clients[i], err = core.NewInstanceClient(instance, keyword.MustNewHasher(r, seed), resolver, sender)
		if err != nil {
			net.Close()
			return nil, err
		}
		clients[i].SetSpread(cfg.HotSpread)
	}
	d := &Deployment{
		R: r, Peers: peers, Net: net, Hasher: hasher, Servers: servers,
		Addrs: addrs, Client: clients[0], Telemetry: cfg.Telemetry, Resilience: mw,
		Durable: cfg.DataDir != "",
	}
	if replicas > 1 {
		index, err := core.NewReplicated(clients...)
		if err != nil {
			net.Close()
			return nil, err
		}
		index.SetTelemetry(cfg.Telemetry)
		d.Index = index
	}
	return d, nil
}

// Close releases the deployment's network and flushes every peer's
// durability layer (a no-op for in-memory fleets).
func (d *Deployment) Close() {
	for _, srv := range d.Servers {
		srv.Close()
	}
	d.Net.Close()
}

// InsertCorpus indexes every record of the corpus — into every replica
// when the deployment is replicated.
func (d *Deployment) InsertCorpus(c *corpus.Corpus) error {
	ctx := context.Background()
	insert := func(ctx context.Context, obj core.Object) error {
		var err error
		if d.Index != nil {
			_, err = d.Index.Insert(ctx, obj)
		} else {
			_, err = d.Client.Insert(ctx, obj)
		}
		return err
	}
	for _, rec := range c.Records() {
		if err := insert(ctx, core.Object{ID: rec.ID, Keywords: rec.Keywords}); err != nil {
			return fmt.Errorf("index record %s: %w", rec.ID, err)
		}
	}
	return nil
}

// Nodes returns the number of logical hypercube nodes, 2^r (the
// physical fleet size is Peers).
func (d *Deployment) Nodes() int { return 1 << uint(d.R) }
